(* hmn — command-line frontend to the testbed-mapping library.

   Subcommands:
     list          enumerate the available heuristics
     map           generate an instance, run a heuristic, print the mapping
     profile       run one mapping with full instrumentation and report
                   per-stage times, search-effort counters, and optionally
                   a Chrome trace
     experiments   regenerate the paper's Tables 2-3, correlation, Figure 1
     figure1       only the Figure 1 sweep
     online        run the online tenant service (streaming arrivals and
                   departures with admission control and defragmentation),
                   or a policy-comparison report across load levels
     export        compile a mapping into deployable testbed artifacts
                   (VM launch plan, bridge + tc/netem shaping plan,
                   manifest), with a round-trip dry-run verifier
     dot           emit the generated cluster or virtual topology as DOT *)

open Cmdliner

(* ---- shared options ---- *)

let seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"INT" ~doc:"Random seed.")

let cluster_t =
  let kind_conv =
    Arg.enum [ ("torus", Hmn_experiments.Scenario.Torus);
               ("switched", Hmn_experiments.Scenario.Switched) ]
  in
  Arg.(
    value
    & opt kind_conv Hmn_experiments.Scenario.Torus
    & info [ "cluster" ] ~docv:"torus|switched" ~doc:"Physical topology.")

let guests_t =
  Arg.(value & opt int 200 & info [ "guests"; "n" ] ~docv:"INT" ~doc:"Number of guests.")

let density_t =
  Arg.(
    value & opt float 0.02
    & info [ "density" ] ~docv:"FLOAT" ~doc:"Virtual graph edge density.")

let workload_t =
  let wl_conv =
    Arg.enum [ ("high", Hmn_experiments.Scenario.High_level);
               ("low", Hmn_experiments.Scenario.Low_level) ]
  in
  Arg.(
    value
    & opt wl_conv Hmn_experiments.Scenario.High_level
    & info [ "workload" ] ~docv:"high|low" ~doc:"Workload profile (Table 1).")

let build_problem ~seed ~cluster_kind ~guests ~density ~workload =
  let rng = Hmn_rng.Rng.create seed in
  let cluster = Hmn_experiments.Scenario.build_cluster cluster_kind ~rng in
  let profile =
    match workload with
    | Hmn_experiments.Scenario.High_level -> Hmn_vnet.Workload.high_level
    | Hmn_experiments.Scenario.Low_level -> Hmn_vnet.Workload.low_level
  in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, Hmn_experiments.Setup.fit_fraction)
      ~profile ~n:guests ~density ~rng ()
  in
  Hmn_mapping.Problem.make ~cluster ~venv

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun m ->
        Printf.printf "%-5s %s\n" m.Hmn_core.Mapper.name m.Hmn_core.Mapper.description)
      (Hmn_core.Registry.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List the available mapping heuristics.")
    Term.(const run $ const ())

(* ---- map ---- *)

let map_cmd =
  let heuristic_t =
    Arg.(
      value & opt string "HMN"
      & info [ "heuristic" ] ~docv:"NAME" ~doc:"Heuristic to run (see $(b,list)).")
  in
  let verbose_t =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print placement and link tables.")
  in
  let simulate_t =
    Arg.(value & flag & info [ "simulate" ] ~doc:"Run the emulated experiment too.")
  in
  let save_t =
    Arg.(
      value & opt (some string) None
      & info [ "save" ] ~docv:"FILE"
          ~doc:"Write the problem and mapping as a JSON bundle.")
  in
  let run seed cluster_kind guests density workload heuristic verbose simulate save =
    match Hmn_core.Registry.find heuristic with
    | None ->
      Printf.eprintf "unknown heuristic %s; try `hmn_cli list'\n" heuristic;
      exit 2
    | Some mapper ->
      let problem = build_problem ~seed ~cluster_kind ~guests ~density ~workload in
      Format.printf "%a@.@." Hmn_mapping.Problem.pp_summary problem;
      let outcome = mapper.Hmn_core.Mapper.run ~rng:(Hmn_rng.Rng.create (seed + 1)) problem in
      Format.printf "%s: %a@." mapper.Hmn_core.Mapper.name Hmn_core.Mapper.pp_outcome
        outcome;
      (match outcome.Hmn_core.Mapper.result with
      | Error _ -> exit 1
      | Ok mapping ->
        (match Hmn_mapping.Constraints.check mapping with
        | [] -> print_endline "constraints: all of Eqs. (1)-(9) hold"
        | vs ->
          Printf.printf "constraints: %d VIOLATIONS\n" (List.length vs);
          List.iter
            (fun v ->
              Format.printf "  %a@." Hmn_mapping.Constraints.pp_violation v)
            vs);
        print_endline (Hmn_mapping.Report.summary mapping);
        if verbose then begin
          print_newline ();
          print_string (Hmn_mapping.Report.placement_table mapping);
          print_newline ();
          print_string (Hmn_mapping.Report.link_table mapping);
          print_newline ();
          print_endline "Hottest physical links:";
          print_string (Hmn_mapping.Report.hot_links mapping)
        end;
        if simulate then begin
          let sim = Hmn_emulation.Exec_sim.run mapping in
          Printf.printf "emulated experiment: %.3f s (%d events)\n"
            sim.Hmn_emulation.Exec_sim.makespan_s sim.Hmn_emulation.Exec_sim.events
        end;
        match save with
        | None -> ()
        | Some path ->
          Hmn_io.Codec.save_bundle ~path mapping;
          Printf.printf "wrote %s\n" path)
  in
  Cmd.v
    (Cmd.info "map" ~doc:"Generate an instance and map it with one heuristic.")
    Term.(
      const run $ seed_t $ cluster_t $ guests_t $ density_t $ workload_t
      $ heuristic_t $ verbose_t $ simulate_t $ save_t)

(* ---- profile ---- *)

let profile_cmd =
  let module Metrics = Hmn_obs.Metrics in
  let module Trace = Hmn_obs.Trace in
  let module Pretty_table = Hmn_prelude.Pretty_table in
  let heuristic_t =
    Arg.(
      value & opt string "HMN"
      & info [ "heuristic" ] ~docv:"NAME" ~doc:"Heuristic to profile (see $(b,list)).")
  in
  let trace_t =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Also write a Chrome trace_event JSON of every span (stages, \
             virtual-link routing calls); open it in about:tracing or \
             https://ui.perfetto.dev.")
  in
  let prom_t =
    Arg.(
      value & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "Also write the metrics snapshot in Prometheus text exposition \
             format.")
  in
  let run seed cluster_kind guests density workload heuristic trace prom =
    match Hmn_core.Registry.find heuristic with
    | None ->
      Printf.eprintf "unknown heuristic %s; try `hmn_cli list'\n" heuristic;
      exit 2
    | Some mapper ->
      Metrics.enable ();
      Metrics.reset ();
      if trace <> None then Trace.enable ();
      let problem = build_problem ~seed ~cluster_kind ~guests ~density ~workload in
      Format.printf "%a@.@." Hmn_mapping.Problem.pp_summary problem;
      let outcome =
        mapper.Hmn_core.Mapper.run ~rng:(Hmn_rng.Rng.create (seed + 1)) problem
      in
      Format.printf "%s: %a@." mapper.Hmn_core.Mapper.name Hmn_core.Mapper.pp_outcome
        outcome;
      (match outcome.Hmn_core.Mapper.last_failure with
      | Some f when Result.is_ok outcome.Hmn_core.Mapper.result ->
        Printf.printf "last failed try: %s (%s)\n" f.Hmn_core.Mapper.stage
          f.Hmn_core.Mapper.reason
      | _ -> ());
      print_newline ();
      (* Per-stage wall time. Retrying baselines report no stage split;
         say so instead of printing an empty table. *)
      (match outcome.Hmn_core.Mapper.stage_seconds with
      | [] ->
        Printf.printf "no per-stage breakdown (%d tries, %.3f s total)\n\n"
          outcome.Hmn_core.Mapper.tries outcome.Hmn_core.Mapper.elapsed_s
      | stages ->
        let total = outcome.Hmn_core.Mapper.elapsed_s in
        let t =
          Pretty_table.create
            ~aligns:[ Pretty_table.Left; Right; Right ]
            ~header:[ "stage"; "seconds"; "% of total" ]
            ()
        in
        List.iter
          (fun (stage, s) ->
            Pretty_table.add_row t
              [
                stage;
                Printf.sprintf "%.6f" s;
                (if total > 0. then Printf.sprintf "%.1f" (100. *. s /. total)
                 else "-");
              ])
          stages;
        Pretty_table.add_row t
          [ "total"; Printf.sprintf "%.6f" total; (if total > 0. then "100.0" else "-") ];
        Pretty_table.print t;
        print_newline ());
      let snap = Metrics.snapshot () in
      if snap.Metrics.counters <> [] then begin
        let t =
          Pretty_table.create
            ~aligns:[ Pretty_table.Left; Right ]
            ~header:[ "counter"; "value" ] ()
        in
        List.iter
          (fun (name, v) -> Pretty_table.add_row t [ name; string_of_int v ])
          snap.Metrics.counters;
        Pretty_table.print t;
        print_newline ()
      end;
      if snap.Metrics.gauge_maxima <> [] then begin
        let t =
          Pretty_table.create
            ~aligns:[ Pretty_table.Left; Right ]
            ~header:[ "gauge"; "max" ] ()
        in
        List.iter
          (fun (name, v) -> Pretty_table.add_row t [ name; string_of_int v ])
          snap.Metrics.gauge_maxima;
        Pretty_table.print t;
        print_newline ()
      end;
      List.iter
        (fun (name, h) ->
          Printf.printf "histogram %s: %d observations\n" name
            h.Metrics.observations;
          Array.iteri
            (fun i n ->
              if n > 0 then
                if i < Array.length h.Metrics.bounds then
                  Printf.printf "  <= %g: %d\n" h.Metrics.bounds.(i) n
                else Printf.printf "  > %g: %d\n"
                    h.Metrics.bounds.(Array.length h.Metrics.bounds - 1)
                    n)
            h.Metrics.bucket_counts)
        snap.Metrics.histograms;
      (match trace with
      | None -> ()
      | Some path ->
        Trace.write ~path;
        Printf.printf "wrote %s (%d spans; load in about:tracing or Perfetto)\n"
          path (Trace.span_count ()));
      (match prom with
      | None -> ()
      | Some path ->
        let oc = open_out path in
        output_string oc (Hmn_obs.Expose.render snap);
        close_out oc;
        Printf.printf "wrote %s (Prometheus text exposition)\n" path);
      if Result.is_error outcome.Hmn_core.Mapper.result then exit 1
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one instrumented mapping and report per-stage wall time plus \
          the search-effort counters (A*Prune expansions and prune causes, \
          DFS backtracks, migration moves, retries, residual operations).")
    Term.(
      const run $ seed_t $ cluster_t $ guests_t $ density_t $ workload_t
      $ heuristic_t $ trace_t $ prom_t)

(* ---- validate ---- *)

let validate_cmd =
  let file_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"JSON bundle.")
  in
  let run file =
    match Hmn_io.Codec.load_bundle ~path:file with
    | Error msg ->
      Printf.eprintf "cannot load %s: %s\n" file msg;
      exit 2
    | Ok mapping -> (
      match Hmn_mapping.Constraints.check mapping with
      | [] ->
        print_endline "valid: all of Eqs. (1)-(9) hold";
        print_endline (Hmn_mapping.Report.summary mapping)
      | vs ->
        Printf.printf "INVALID: %d violations\n" (List.length vs);
        List.iter
          (fun v -> Format.printf "  %a@." Hmn_mapping.Constraints.pp_violation v)
          vs;
        exit 1)
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Load a saved mapping bundle and re-check every constraint.")
    Term.(const run $ file_t)

(* ---- fuzz ---- *)

let fuzz_cmd =
  let module Fuzz = Hmn_validate.Fuzz in
  let instances_t =
    Arg.(
      value & opt int 25
      & info [ "instances" ] ~docv:"INT" ~doc:"Number of random instances.")
  in
  let smoke_t =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Fixed-seed CI mode: 25 instances from the pinned smoke seed.")
  in
  let mapper_t =
    Arg.(
      value & opt_all string []
      & info [ "mapper" ] ~docv:"NAME"
          ~doc:"Restrict to this heuristic (repeatable; default: all).")
  in
  (* Pinned-instance options, used by the repro commands the fuzzer
     prints for (shrunk) failures. When any is given, all must be. *)
  let pin_cluster_t =
    Arg.(
      value
      & opt (some (Arg.enum [ ("torus", `Torus); ("switched", `Switched) ])) None
      & info [ "cluster" ] ~docv:"torus|switched" ~doc:"Pin the cluster shape.")
  in
  let rows_t =
    Arg.(value & opt int 3 & info [ "rows" ] ~docv:"INT" ~doc:"Torus rows (pinned mode).")
  in
  let cols_t =
    Arg.(value & opt int 3 & info [ "cols" ] ~docv:"INT" ~doc:"Torus cols (pinned mode).")
  in
  let hosts_t =
    Arg.(
      value & opt int 8 & info [ "hosts" ] ~docv:"INT" ~doc:"Switched hosts (pinned mode).")
  in
  let pin_guests_t =
    Arg.(
      value & opt (some int) None
      & info [ "guests"; "n" ] ~docv:"INT" ~doc:"Pin the number of guests.")
  in
  let pin_density_t =
    Arg.(
      value & opt (some float) None
      & info [ "density" ] ~docv:"FLOAT" ~doc:"Pin the virtual edge density.")
  in
  let pin_workload_t =
    Arg.(
      value & opt (some (Arg.enum [ ("high", false); ("low", true) ])) None
      & info [ "workload" ] ~docv:"high|low" ~doc:"Pin the workload profile.")
  in
  let run seed instances smoke mappers pin_cluster rows cols hosts pin_guests
      pin_density pin_workload =
    let mappers =
      match mappers with
      | [] -> None
      | names ->
        Some
          (List.map
             (fun name ->
               match Hmn_core.Registry.find name with
               | Some m -> m
               | None ->
                 Printf.eprintf "unknown heuristic %s; try `hmn_cli list'\n" name;
                 exit 2)
             names)
    in
    let params =
      match (pin_cluster, pin_guests, pin_density, pin_workload) with
      | None, None, None, None -> None
      | Some kind, Some n_guests, Some density, Some low_level ->
        let shape =
          match kind with
          | `Torus -> Fuzz.Torus { rows; cols }
          | `Switched -> Fuzz.Switched { hosts }
        in
        Some { Fuzz.shape; n_guests; density; low_level }
      | _ ->
        prerr_endline
          "hmn_cli fuzz: --cluster, --guests, --density and --workload must be \
           given together (they pin one exact instance)";
        exit 2
    in
    let seed = if smoke then Fuzz.smoke_seed else seed in
    let count = if smoke then 25 else instances in
    let stats = Fuzz.run ?mappers ?params ~seed ~count () in
    Format.printf "%a@." Fuzz.pp_stats stats;
    if stats.Fuzz.failures <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: map random instances with every heuristic, \
          re-validate each mapping against the paper's invariants, and \
          cross-check the router against exhaustive oracles.")
    Term.(
      const run $ seed_t $ instances_t $ smoke_t $ mapper_t $ pin_cluster_t
      $ rows_t $ cols_t $ hosts_t $ pin_guests_t $ pin_density_t $ pin_workload_t)

(* ---- experiments ---- *)

let experiments_cmd =
  let reps_t =
    Arg.(
      value & opt (some int) None
      & info [ "reps" ] ~docv:"INT"
          ~doc:"Repetitions per scenario (default: $(b,HMN_REPS) or 5; paper: 30).")
  in
  let jobs_t =
    Arg.(
      value & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"INT"
          ~doc:
            "Worker domains for the sweep (default: $(b,HMN_JOBS) or the \
             machine's core count minus one). Any value produces identical \
             tables; only wall time changes.")
  in
  let csv_t =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write per-cell results as CSV.")
  in
  let trace_t =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record a Chrome trace_event JSON of the sweep (one timeline row \
             per worker domain) and write it to $(docv); equivalent to \
             $(b,HMN_TRACE).")
  in
  let run reps jobs csv trace =
    let config =
      let c = Hmn_experiments.Runner.default_config () in
      let c =
        match reps with
        | None -> c
        | Some reps -> { c with Hmn_experiments.Runner.reps }
      in
      let c =
        match trace with
        | None -> c
        | Some _ -> { c with Hmn_experiments.Runner.trace }
      in
      match jobs with
      | None -> c
      | Some jobs when jobs >= 1 -> { c with Hmn_experiments.Runner.jobs }
      | Some _ ->
        prerr_endline "hmn_cli: --jobs must be >= 1";
        exit 2
    in
    let results = Hmn_experiments.Runner.run ~config () in
    (match config.Hmn_experiments.Runner.trace with
    | Some path -> Printf.eprintf "wrote %s (load in about:tracing or Perfetto)\n" path
    | None -> ());
    print_string (Hmn_experiments.Setup.render ());
    print_newline ();
    print_string (Hmn_experiments.Tables.table2 results);
    print_newline ();
    print_string (Hmn_experiments.Tables.table3 results);
    print_newline ();
    print_string (Hmn_experiments.Tables.mapping_time results);
    print_newline ();
    print_string (Hmn_experiments.Tables.correlation_report results);
    print_newline ();
    print_string
      (Hmn_experiments.Paper_check.render
         (Hmn_experiments.Paper_check.check_all results));
    match csv with
    | None -> ()
    | Some file ->
      let oc = open_out file in
      output_string oc (Hmn_experiments.Csv.cells results);
      close_out oc;
      Printf.printf "wrote %s\n" file
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate the paper's Tables 2-3 and the correlation result.")
    Term.(const run $ reps_t $ jobs_t $ csv_t $ trace_t)

(* ---- figure1 ---- *)

let figure1_cmd =
  let reps_t =
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"INT" ~doc:"Repetitions per point.")
  in
  let run reps seed =
    let points = Hmn_experiments.Figure1.run ~reps ~seed () in
    print_string (Hmn_experiments.Figure1.render points)
  in
  Cmd.v
    (Cmd.info "figure1" ~doc:"Regenerate Figure 1 (HMN mapping time vs links).")
    Term.(const run $ reps_t $ seed_t)

(* ---- ablation ---- *)

let ablation_cmd =
  let reps_t =
    Arg.(value & opt int 3 & info [ "reps" ] ~docv:"INT" ~doc:"Repetitions per point.")
  in
  let which_t =
    Arg.(
      value
      & opt
          (Arg.enum
             [ ("all", `All); ("migration", `Migration); ("routing", `Routing);
               ("topology", `Topology) ])
          `All
      & info [ "which" ] ~docv:"all|migration|routing|topology"
          ~doc:"Which ablation study to run.")
  in
  let run reps which =
    let text =
      match which with
      | `All -> Hmn_experiments.Ablation.all ~reps ()
      | `Migration -> Hmn_experiments.Ablation.migration ~reps ()
      | `Routing -> Hmn_experiments.Ablation.routing_metric ~reps ()
      | `Topology -> Hmn_experiments.Ablation.topology_sweep ~reps ()
    in
    print_string text
  in
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Run the Migration / routing-metric / topology ablation studies.")
    Term.(const run $ reps_t $ which_t)

(* ---- online ---- *)

let online_cmd =
  let module Service = Hmn_online.Service in
  let module Defrag = Hmn_online.Defrag in
  let module Flight = Hmn_online.Flight in
  let module Metrics = Hmn_obs.Metrics in
  let module Trace = Hmn_obs.Trace in
  let module Expose = Hmn_obs.Expose in
  let policy_t =
    Arg.(
      value & opt_all string []
      & info [ "policy" ] ~docv:"NAME"
          ~doc:
            "Admission policy (any registered heuristic; see $(b,list)). \
             Repeatable with $(b,--report); default HMN, or HMN,R,HS for a \
             report.")
  in
  let rate_t =
    Arg.(
      value & opt float (1. /. 30.)
      & info [ "rate" ] ~docv:"FLOAT" ~doc:"Arrival rate, requests per simulated second.")
  in
  let holding_t =
    Arg.(
      value & opt float 600.
      & info [ "holding" ] ~docv:"SECONDS" ~doc:"Mean tenant holding time (exponential).")
  in
  let duration_t =
    Arg.(
      value & opt float 3600.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Arrival horizon (simulated).")
  in
  let guests_lo_t =
    Arg.(value & opt int 4 & info [ "guests-lo" ] ~docv:"INT" ~doc:"Minimum guests per tenant.")
  in
  let guests_hi_t =
    Arg.(value & opt int 12 & info [ "guests-hi" ] ~docv:"INT" ~doc:"Maximum guests per tenant.")
  in
  let online_density_t =
    Arg.(
      value & opt float 0.3
      & info [ "density" ] ~docv:"FLOAT" ~doc:"Virtual edge density within each tenant.")
  in
  let scale_t =
    Arg.(
      value & opt float 0.25
      & info [ "scale" ] ~docv:"FRACTION"
          ~doc:"Per-tenant feasibility calibration against the full cluster.")
  in
  let no_defrag_t =
    Arg.(value & flag & info [ "no-defrag" ] ~doc:"Disable periodic defragmentation.")
  in
  let defrag_interval_t =
    Arg.(
      value & opt float 120.
      & info [ "defrag-interval" ] ~docv:"SECONDS" ~doc:"Simulated seconds between defrag checks.")
  in
  let defrag_trigger_t =
    Arg.(
      value & opt float 1.0
      & info [ "defrag-trigger" ] ~docv:"FACTOR"
          ~doc:
            "Defragment when the occupied LBF exceeds FACTOR times the empty \
             cluster's LBF.")
  in
  let defrag_moves_t =
    Arg.(
      value & opt int 4
      & info [ "defrag-moves" ] ~docv:"INT" ~doc:"Maximum migrations per defrag round.")
  in
  let validate_t =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Independently validate the full multi-tenant state after every \
             arrival, departure, and defrag move (also forced by \
             $(b,HMN_VALIDATE)).")
  in
  let smoke_t =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Fixed-seed CI mode: a pinned 3x4 torus and a short pinned \
             workload, with validation forced on. Output is byte-identical \
             across runs and machines.")
  in
  let report_t =
    Arg.(
      value & flag
      & info [ "report" ]
          ~doc:"Run the policy-comparison grid instead of a single session.")
  in
  let loads_t =
    Arg.(
      value & opt (list float) Hmn_experiments.Online_report.default_loads
      & info [ "loads" ] ~docv:"X,Y,..."
          ~doc:"Offered-load multipliers for $(b,--report).")
  in
  let csv_t =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the report cells as CSV.")
  in
  let events_t =
    Arg.(
      value & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:
            "Write the admission-decision journal as JSONL: one record per \
             admit/reject/departure/defrag-move, each rejection carrying its \
             cause from the closed taxonomy and the binding constraint. \
             Deterministic for a fixed seed.")
  in
  let timeline_t =
    Arg.(
      value & opt (some string) None
      & info [ "timeline" ] ~docv:"FILE"
          ~doc:
            "Write the simulated-clock time series (tenants, guests, LBF, \
             fragmentation, memory/bandwidth utilization, residual-bandwidth \
             dispersion, per-rack memory) as CSV.")
  in
  let trace_out_t =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write the timeline as Chrome trace_event counter tracks \
             (open in about:tracing or https://ui.perfetto.dev).")
  in
  let prom_t =
    Arg.(
      value & opt (some string) None
      & info [ "prom" ] ~docv:"FILE"
          ~doc:
            "Write the session's metrics snapshot in Prometheus text \
             exposition format (implies metrics collection).")
  in
  let defrag_on_reject_t =
    Arg.(
      value & flag
      & info [ "defrag-on-reject" ]
          ~doc:
            "Defrag-assisted admission: on a non-screen rejection, run one \
             defragmentation round and retry the request once against the \
             compacted cluster.")
  in
  let export_on_admit_t =
    Arg.(
      value & opt (some string) None
      & info [ "export-on-admit" ] ~docv:"DIR"
          ~doc:
            "Realize every admitted tenant as a deployable artifact delta \
             (shell grammar) under $(i,DIR)/t$(i,ID)/, verified by the \
             round-trip checker at write time. Progress goes to stderr; the \
             session summary is unchanged.")
  in
  let run seed cluster_kind workload policies rate holding duration guests_lo
      guests_hi density scale no_defrag defrag_interval defrag_trigger
      defrag_moves validate smoke report loads csv events timeline trace_out
      prom defrag_on_reject export_on_admit =
    let profile =
      match workload with
      | Hmn_experiments.Scenario.High_level -> Hmn_vnet.Workload.high_level
      | Hmn_experiments.Scenario.Low_level -> Hmn_vnet.Workload.low_level
    in
    let defrag =
      if no_defrag then None
      else
        Some
          {
            Defrag.interval_s = defrag_interval;
            trigger = defrag_trigger;
            max_moves_per_round = defrag_moves;
          }
    in
    let cluster, config =
      if smoke then
        (* pinned: small enough for CI, busy enough to exercise
           admission, rejection, departures and defragmentation *)
        ( Hmn_testbed.Cluster_gen.torus_cluster ~rows:3 ~cols:4
            ~rng:(Hmn_rng.Rng.create 7) (),
          {
            Service.seed = 11;
            arrival_rate_per_s = 1. /. 45.;
            mean_holding_s = 300.;
            duration_s = 1800.;
            guests_lo = 3;
            guests_hi = 6;
            density = 0.3;
            profile = Hmn_vnet.Workload.high_level;
            scale_frac = 0.3;
            defrag;
            defrag_on_reject;
            validate = true;
          } )
      else
        ( Hmn_experiments.Scenario.build_cluster cluster_kind
            ~rng:(Hmn_rng.Rng.create seed),
          {
            Service.seed;
            arrival_rate_per_s = rate;
            mean_holding_s = holding;
            duration_s = duration;
            guests_lo;
            guests_hi;
            density;
            profile;
            scale_frac = scale;
            defrag;
            defrag_on_reject;
            validate;
          } )
    in
    if Sys.getenv_opt "HMN_METRICS" <> None || prom <> None then begin
      Metrics.enable ();
      Metrics.reset ()
    end;
    if trace_out <> None then Trace.enable ();
    let write_file path contents what =
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Printf.printf "wrote %s (%s)\n" path what
    in
    try
      if report then begin
        let policies =
          if policies = [] then Hmn_experiments.Online_report.default_policies
          else policies
        in
        match
          Hmn_experiments.Online_report.run ~policies ~loads ~cluster ~config ()
        with
        | Error msg ->
          Printf.eprintf "hmn_cli online: %s\n" msg;
          exit 2
        | Ok results ->
          print_string (Hmn_experiments.Online_report.table results);
          (match csv with
          | None -> ()
          | Some file ->
            let oc = open_out file in
            output_string oc (Hmn_experiments.Online_report.csv results);
            close_out oc;
            Printf.printf "wrote %s\n" file)
      end
      else begin
        let name = match policies with [] -> "HMN" | name :: _ -> name in
        match Hmn_online.Admission.find_policy name with
        | Error msg ->
          Printf.eprintf "hmn_cli online: %s\n" msg;
          exit 2
        | Ok policy ->
          let want_journal = events <> None in
          let want_timeline = timeline <> None || trace_out <> None in
          let flight =
            if want_journal || want_timeline then
              Some
                (Flight.create ~journal:want_journal ~timeline:want_timeline
                   ~quantiles:true cluster)
            else None
          in
          let exported = ref 0 in
          let export_bad = ref 0 in
          let on_admit =
            match export_on_admit with
            | None -> None
            | Some dir ->
              Some
                (fun (t : Hmn_online.Tenant.t) ->
                  let bundle =
                    Hmn_artifact.Compile.of_tenant
                      ~format:Hmn_artifact.Spec.Shell ~cluster
                      ~venv:t.Hmn_online.Tenant.venv ~id:t.Hmn_online.Tenant.id
                      ~hosts:t.Hmn_online.Tenant.hosts
                      ~paths:t.Hmn_online.Tenant.paths ()
                  in
                  let tdir =
                    Filename.concat dir
                      (Printf.sprintf "t%d" t.Hmn_online.Tenant.id)
                  in
                  Hmn_artifact.Compile.write ~dir:tdir bundle;
                  incr exported;
                  (* dry-run verify each delta as it lands *)
                  match
                    Hmn_artifact.Decompile.run
                      ~files:bundle.Hmn_artifact.Compile.files
                  with
                  | Error msg ->
                    incr export_bad;
                    Printf.eprintf "export-on-admit: tenant %d: %s\n"
                      t.Hmn_online.Tenant.id msg
                  | Ok d ->
                    let report =
                      Hmn_validate.Artifact_check.check_tenant ~cluster
                        ~venv:t.Hmn_online.Tenant.venv
                        ~hosts:t.Hmn_online.Tenant.hosts
                        ~paths:t.Hmn_online.Tenant.paths d
                    in
                    if not (Hmn_validate.Artifact_check.ok report) then begin
                      incr export_bad;
                      Format.eprintf "export-on-admit: tenant %d: %a@."
                        t.Hmn_online.Tenant.id
                        Hmn_validate.Artifact_check.pp_report report
                    end)
          in
          let summary = Service.run ?flight ?on_admit ~cluster ~policy config in
          print_string (Hmn_online.Session.render_summary summary);
          (match export_on_admit with
          | None -> ()
          | Some dir ->
            Printf.eprintf
              "export-on-admit: %d tenant delta(s) under %s, %d with \
               violations\n"
              !exported dir !export_bad;
            if !export_bad > 0 then exit 1);
          (match flight with
          | None -> ()
          | Some f ->
            (match (events, Flight.events_jsonl f) with
            | Some path, Some jsonl ->
              write_file path jsonl "admission-decision journal"
            | _ -> ());
            (match (timeline, Flight.timeline_csv f) with
            | Some path, Some csv_text -> write_file path csv_text "timeline CSV"
            | _ -> ());
            match trace_out with
            | None -> ()
            | Some path ->
              Flight.emit_trace_counters f;
              Trace.write ~path;
              Printf.printf "wrote %s (counter tracks; load in about:tracing or Perfetto)\n"
                path)
      end;
      if Metrics.enabled () then begin
        (match prom with
        | None -> ()
        | Some path ->
          write_file path
            (Expose.render (Metrics.snapshot ()))
            "Prometheus text exposition");
        if Sys.getenv_opt "HMN_METRICS" <> None then
          print_string (Metrics.render (Metrics.snapshot ()))
      end
    with Service.Validation_failed msg ->
      Printf.eprintf "hmn_cli online: %s\n" msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "online"
       ~doc:
         "Drive a seeded stream of tenant arrivals and departures through the \
          shared cluster with admission control and periodic \
          defragmentation; $(b,--report) compares admission policies across \
          offered-load levels.")
    Term.(
      const run $ seed_t $ cluster_t $ workload_t $ policy_t $ rate_t
      $ holding_t $ duration_t $ guests_lo_t $ guests_hi_t $ online_density_t
      $ scale_t $ no_defrag_t $ defrag_interval_t $ defrag_trigger_t
      $ defrag_moves_t $ validate_t $ smoke_t $ report_t $ loads_t $ csv_t
      $ events_t $ timeline_t $ trace_out_t $ prom_t $ defrag_on_reject_t
      $ export_on_admit_t)

(* ---- slo ---- *)

let slo_cmd =
  let module Service = Hmn_online.Service in
  let module Defrag = Hmn_online.Defrag in
  let module Report = Hmn_experiments.Online_report in
  let policy_t =
    Arg.(
      value & opt_all string []
      & info [ "policy" ] ~docv:"NAME"
          ~doc:"Admission policy (repeatable); default HMN,R,HS.")
  in
  let loads_t =
    Arg.(
      value & opt (list float) Report.default_loads
      & info [ "loads" ] ~docv:"X,Y,..."
          ~doc:"Offered-load multipliers on the base arrival rate.")
  in
  let rate_t =
    Arg.(
      value & opt float (1. /. 30.)
      & info [ "rate" ] ~docv:"FLOAT" ~doc:"Base arrival rate, requests per simulated second.")
  in
  let holding_t =
    Arg.(
      value & opt float 600.
      & info [ "holding" ] ~docv:"SECONDS" ~doc:"Mean tenant holding time (exponential).")
  in
  let duration_t =
    Arg.(
      value & opt float 3600.
      & info [ "duration" ] ~docv:"SECONDS" ~doc:"Arrival horizon (simulated).")
  in
  let guests_lo_t =
    Arg.(value & opt int 4 & info [ "guests-lo" ] ~docv:"INT" ~doc:"Minimum guests per tenant.")
  in
  let guests_hi_t =
    Arg.(value & opt int 12 & info [ "guests-hi" ] ~docv:"INT" ~doc:"Maximum guests per tenant.")
  in
  let density_t =
    Arg.(
      value & opt float 0.3
      & info [ "density" ] ~docv:"FLOAT" ~doc:"Virtual edge density within each tenant.")
  in
  let scale_t =
    Arg.(
      value & opt float 0.25
      & info [ "scale" ] ~docv:"FRACTION"
          ~doc:"Per-tenant feasibility calibration against the full cluster.")
  in
  let unit_t =
    Arg.(
      value
      & opt (Arg.enum [ ("wall", Report.Wall_ms); ("work", Report.Work_units) ])
          Report.Wall_ms
      & info [ "unit" ] ~docv:"wall|work"
          ~doc:
            "Latency source: $(b,wall) is wall-clock milliseconds (real \
             benchmarking, machine-dependent); $(b,work) is the \
             deterministic admission work-unit proxy (byte-stable \
             percentiles for a fixed seed).")
  in
  let csv_t =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the SLO cells as CSV.")
  in
  let smoke_t =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Fixed-seed CI mode: the pinned 3x4 torus and workload of \
             $(b,online --smoke), work-unit latency. Output is \
             byte-identical across runs and machines.")
  in
  let run seed cluster_kind workload policies loads rate holding duration
      guests_lo guests_hi density scale unit csv smoke =
    let profile =
      match workload with
      | Hmn_experiments.Scenario.High_level -> Hmn_vnet.Workload.high_level
      | Hmn_experiments.Scenario.Low_level -> Hmn_vnet.Workload.low_level
    in
    let cluster, config, latency =
      if smoke then
        ( Hmn_testbed.Cluster_gen.torus_cluster ~rows:3 ~cols:4
            ~rng:(Hmn_rng.Rng.create 7) (),
          {
            Service.seed = 11;
            arrival_rate_per_s = 1. /. 45.;
            mean_holding_s = 300.;
            duration_s = 1800.;
            guests_lo = 3;
            guests_hi = 6;
            density = 0.3;
            profile = Hmn_vnet.Workload.high_level;
            scale_frac = 0.3;
            defrag = Some Defrag.default;
            defrag_on_reject = false;
            validate = false;
          },
          Report.Work_units )
      else
        ( Hmn_experiments.Scenario.build_cluster cluster_kind
            ~rng:(Hmn_rng.Rng.create seed),
          {
            Service.seed;
            arrival_rate_per_s = rate;
            mean_holding_s = holding;
            duration_s = duration;
            guests_lo;
            guests_hi;
            density;
            profile;
            scale_frac = scale;
            defrag = Some Defrag.default;
            defrag_on_reject = false;
            validate = false;
          },
          unit )
    in
    let policies = if policies = [] then Report.default_policies else policies in
    try
      match Report.run ~policies ~loads ~latency ~cluster ~config () with
      | Error msg ->
        Printf.eprintf "hmn_cli slo: %s\n" msg;
        exit 2
      | Ok results ->
        print_string (Report.slo_table results);
        (match csv with
        | None -> ()
        | Some file ->
          let oc = open_out file in
          output_string oc (Report.slo_csv results);
          close_out oc;
          Printf.printf "wrote %s\n" file)
    with Service.Validation_failed msg ->
      Printf.eprintf "hmn_cli slo: %s\n" msg;
      exit 1
  in
  Cmd.v
    (Cmd.info "slo"
       ~doc:
         "Admission-latency percentile tables (p50/p90/p99/p999/max) per \
          admission policy and offered-load level, from the flight \
          recorder's quantile histograms; $(b,--unit work) reports the \
          deterministic work-unit proxy instead of wall-clock \
          milliseconds.")
    Term.(
      const run $ seed_t $ cluster_t $ workload_t $ policy_t $ loads_t
      $ rate_t $ holding_t $ duration_t $ guests_lo_t $ guests_hi_t
      $ density_t $ scale_t $ unit_t $ csv_t $ smoke_t)

(* ---- scale ---- *)

let scale_cmd =
  let module Scale = Hmn_experiments.Scale in
  let hosts_t =
    Arg.(
      value & opt int 400
      & info [ "hosts" ] ~docv:"INT"
          ~doc:
            "Target host count; the fabric geometry may round it up \
             (fat-tree pod arithmetic, whole racks).")
  in
  let shape_t =
    Arg.(
      value
      & opt (Arg.enum [ ("clos", Scale.Clos); ("fat-tree", Scale.Fat_tree) ]) Scale.Clos
      & info [ "shape" ] ~docv:"clos|fat-tree" ~doc:"Physical fabric family.")
  in
  let ratio_t =
    Arg.(value & opt int 25 & info [ "ratio" ] ~docv:"INT" ~doc:"Guests per host.")
  in
  let jobs_t =
    Arg.(
      value & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"INT"
          ~doc:
            "Worker domains for the per-rack Hosting fan-out (default: \
             $(b,HMN_JOBS) or the machine's core count minus one). Any value \
             produces a byte-identical summary; only wall time changes.")
  in
  let validate_t =
    Arg.(
      value & flag
      & info [ "validate" ]
          ~doc:
            "Re-check the mapping with the independent validator (also \
             forced by $(b,HMN_VALIDATE)).")
  in
  let routing_counters_t =
    Arg.(
      value & flag
      & info [ "routing-counters" ]
          ~doc:
            "Append one deterministic line of Networking search-effort \
             counters (labels expanded/generated, cache and fast-path hits) \
             to the summary; CI pins it to catch engine drift.")
  in
  let run seed hosts shape ratio jobs validate routing_counters =
    let validate = validate || Sys.getenv_opt "HMN_VALIDATE" <> None in
    let jobs =
      match jobs with
      | Some _ -> jobs
      | None -> Option.bind (Sys.getenv_opt "HMN_JOBS") int_of_string_opt
    in
    (match jobs with
    | Some j when j < 1 ->
      prerr_endline "hmn_cli: --jobs must be >= 1";
      exit 2
    | _ -> ());
    let r = Scale.run ?jobs ~ratio ~seed ~validate ~shape ~hosts () in
    print_string (Scale.render_summary r);
    if routing_counters then print_string (Scale.render_routing_counters r);
    (* Timings are real wall clock — stderr only, so stdout stays
       byte-diffable across runs and jobs counts. *)
    prerr_string (Scale.render_timings r);
    if Result.is_error r.Scale.outcome.Hmn_core.Mapper.result then exit 1;
    if r.Scale.valid = Some false then exit 1
  in
  Cmd.v
    (Cmd.info "scale"
       ~doc:
         "Map one large deterministic instance (40 to 4000 hosts) with the \
          scale pipeline: two-level rack-sharded Hosting, capped Migration, \
          CSR + landmark-table Networking.")
    Term.(
      const run $ seed_t $ hosts_t $ shape_t $ ratio_t $ jobs_t $ validate_t
      $ routing_counters_t)

(* ---- gap ---- *)

let gap_cmd =
  let module Gap = Hmn_experiments.Gap_report in
  let smoke_t =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Fixed-seed CI configuration: the full 20-instance grid with the \
             default node budget; stdout is byte-deterministic and pinned by \
             $(b,dune runtest).")
  in
  let per_class_t =
    Arg.(
      value & opt int Gap.default_per_class
      & info [ "per-class" ] ~docv:"INT"
          ~doc:"Seeded instances per class (4 classes).")
  in
  let budget_t =
    Arg.(
      value & opt (some int) None
      & info [ "node-budget" ] ~docv:"INT"
          ~doc:
            "Branch-and-bound node budget per instance; on exhaustion the \
             instance is reported unproven, never wrong.")
  in
  let csv_t =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"PATH"
          ~doc:"Also write one (instance, mapper) line per row as CSV.")
  in
  let run seed smoke per_class node_budget csv =
    let seed = if smoke then Gap.default_seed else seed in
    let runs = Gap.run ?node_budget ~seed ~per_class () in
    print_string (Gap.render_table runs);
    (match csv with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc (Gap.render_csv runs);
      close_out oc);
    (* Wall times and node counts go to stderr so stdout stays pinnable. *)
    prerr_string (Gap.render_timings runs);
    if List.exists (fun r -> not r.Gap.proven) runs then exit 1
  in
  Cmd.v
    (Cmd.info "gap"
       ~doc:
         "Measure every paper heuristic's optimality gap against the exact \
          branch-and-bound baseline on a seeded grid of small instances (4-10 \
          hosts, 8-30 guests), each solved to proven optimality.")
    Term.(const run $ seed_t $ smoke_t $ per_class_t $ budget_t $ csv_t)

(* ---- export ---- *)

let export_cmd =
  let module Compile = Hmn_artifact.Compile in
  let module Decompile = Hmn_artifact.Decompile in
  let module Spec = Hmn_artifact.Spec in
  let module Check = Hmn_validate.Artifact_check in
  let module Scale = Hmn_experiments.Scale in
  let heuristic_t =
    Arg.(
      value & opt string "HMN"
      & info [ "heuristic" ] ~docv:"NAME"
          ~doc:"Heuristic for the generated instance (see $(b,list)).")
  in
  let bundle_t =
    Arg.(
      value & opt (some string) None
      & info [ "bundle" ] ~docv:"FILE"
          ~doc:"Export a saved problem+mapping bundle (see $(b,map --save)).")
  in
  let scale_hosts_t =
    Arg.(
      value & opt (some int) None
      & info [ "scale-hosts" ] ~docv:"INT"
          ~doc:
            "Map a scale-pipeline instance of this many hosts (see \
             $(b,scale)) and export it.")
  in
  let shape_t =
    Arg.(
      value
      & opt (Arg.enum [ ("clos", Scale.Clos); ("fat-tree", Scale.Fat_tree) ]) Scale.Clos
      & info [ "shape" ] ~docv:"clos|fat-tree"
          ~doc:"Fabric family for $(b,--scale-hosts).")
  in
  let ratio_t =
    Arg.(
      value & opt int 25
      & info [ "ratio" ] ~docv:"INT"
          ~doc:"Guests per host for $(b,--scale-hosts).")
  in
  let jobs_t =
    Arg.(
      value & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"INT"
          ~doc:
            "Worker domains for the $(b,--scale-hosts) mapping (default: \
             $(b,HMN_JOBS) or the machine's core count minus one). The \
             artifacts are byte-identical for any value — they derive from \
             the mapping alone.")
  in
  let format_t =
    Arg.(
      value
      & opt (Arg.enum [ ("shell", Spec.Shell); ("json", Spec.Json) ]) Spec.Shell
      & info [ "format" ] ~docv:"shell|json"
          ~doc:"Artifact grammar: POSIX-shell command plans or JSON documents.")
  in
  let out_dir_t =
    Arg.(
      value & opt (some string) None
      & info [ "out-dir" ] ~docv:"DIR"
          ~doc:
            "Write $(b,manifest.json) plus the VM and network artifacts under \
             DIR (created when missing).")
  in
  let stdout_t =
    Arg.(
      value & flag
      & info [ "stdout" ]
          ~doc:
            "Dump every artifact file to stdout under `=== name ===' headers \
             — byte-deterministic, which is what CI pins.")
  in
  let check_t =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Round-trip dry run: re-parse the emitted text with the \
             independent decompiler and cross-validate it against the \
             mapping; any violation exits non-zero.")
  in
  let run seed cluster_kind guests density workload heuristic bundle scale_hosts
      shape ratio jobs format out_dir to_stdout check =
    let jobs =
      match jobs with
      | Some _ -> jobs
      | None -> Option.bind (Sys.getenv_opt "HMN_JOBS") int_of_string_opt
    in
    (match jobs with
    | Some j when j < 1 ->
      prerr_endline "hmn_cli: --jobs must be >= 1";
      exit 2
    | _ -> ());
    if bundle <> None && scale_hosts <> None then begin
      prerr_endline
        "hmn_cli export: --bundle and --scale-hosts are mutually exclusive";
      exit 2
    end;
    let mapping =
      match (bundle, scale_hosts) with
      | Some path, _ -> (
        match Hmn_io.Codec.load_bundle ~path with
        | Ok m -> m
        | Error msg ->
          Printf.eprintf "hmn_cli export: %s\n" msg;
          exit 1)
      | None, Some hosts -> (
        let r = Scale.run ?jobs ~ratio ~seed ~shape ~hosts () in
        (* wall clock to stderr; stdout stays byte-diffable *)
        prerr_string (Scale.render_timings r);
        match r.Scale.outcome.Hmn_core.Mapper.result with
        | Ok m -> m
        | Error _ ->
          Format.eprintf "hmn_cli export: mapping failed: %a@."
            Hmn_core.Mapper.pp_outcome r.Scale.outcome;
          exit 1)
      | None, None -> (
        match Hmn_core.Registry.find heuristic with
        | None ->
          Printf.eprintf "unknown heuristic %s; try `hmn_cli list'\n" heuristic;
          exit 2
        | Some mapper -> (
          let problem =
            build_problem ~seed ~cluster_kind ~guests ~density ~workload
          in
          let outcome =
            mapper.Hmn_core.Mapper.run ~rng:(Hmn_rng.Rng.create (seed + 1))
              problem
          in
          match outcome.Hmn_core.Mapper.result with
          | Ok m -> m
          | Error _ ->
            Format.eprintf "hmn_cli export: mapping failed: %a@."
              Hmn_core.Mapper.pp_outcome outcome;
            exit 1))
    in
    let b = Compile.of_mapping ~format mapping in
    (match out_dir with
    | None -> ()
    | Some dir ->
      Compile.write ~dir b;
      Printf.printf "wrote %d files under %s\n" (List.length b.Compile.files) dir);
    if to_stdout then
      List.iter
        (fun (name, content) ->
          Printf.printf "=== %s ===\n" name;
          print_string content;
          if content = "" || content.[String.length content - 1] <> '\n' then
            print_newline ())
        b.Compile.files;
    Printf.printf "export: format=%s files=%d bytes=%d\n"
      (Spec.format_name format)
      (List.length b.Compile.files)
      (Compile.bytes b);
    if check then begin
      match Decompile.run ~files:b.Compile.files with
      | Error msg ->
        Printf.printf "check: decompile FAILED: %s\n" msg;
        exit 1
      | Ok d ->
        let report = Check.check ~mapping d in
        Format.printf "check: %a@." Check.pp_report report;
        if not (Check.ok report) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "export"
       ~doc:
         "Compile a mapping into deployable testbed artifacts — per-host VM \
          launch plan, OVS-style bridge plan and tc/netem shaping profile, \
          and a manifest tying them to the problem instance — and \
          optionally ($(b,--check)) prove the emitted text faithful by \
          decompiling it and cross-validating against the mapping.")
    Term.(
      const run $ seed_t $ cluster_t $ guests_t $ density_t $ workload_t
      $ heuristic_t $ bundle_t $ scale_hosts_t $ shape_t $ ratio_t $ jobs_t
      $ format_t $ out_dir_t $ stdout_t $ check_t)

(* ---- dot ---- *)

let dot_cmd =
  let what_t =
    Arg.(
      value & opt (Arg.enum [ ("cluster", `Cluster); ("venv", `Venv) ]) `Cluster
      & info [ "what" ] ~docv:"cluster|venv" ~doc:"Which graph to emit.")
  in
  let run seed cluster_kind guests density workload what =
    let problem = build_problem ~seed ~cluster_kind ~guests ~density ~workload in
    match what with
    | `Cluster ->
      let cluster = problem.Hmn_mapping.Problem.cluster in
      print_string
        (Hmn_graph.Dot.to_dot
           ~node_name:(fun i ->
             (Hmn_testbed.Cluster.node cluster i).Hmn_testbed.Node.name)
           ~edge_attr:(fun _ link ->
             Format.asprintf "label=\"%a\"" Hmn_testbed.Link.pp link)
           (Hmn_testbed.Cluster.graph cluster))
    | `Venv ->
      let venv = problem.Hmn_mapping.Problem.venv in
      print_string
        (Hmn_graph.Dot.to_dot
           ~node_name:(fun i ->
             (Hmn_vnet.Virtual_env.guest venv i).Hmn_vnet.Guest.name)
           (Hmn_vnet.Virtual_env.graph venv))
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Emit the generated physical or virtual topology as DOT.")
    Term.(
      const run $ seed_t $ cluster_t $ guests_t $ density_t $ workload_t $ what_t)

let () =
  let doc = "virtual machine and link mapping for emulation testbeds (HMN)" in
  (* Uniform usage-error exit: cmdliner answers a `Term error (unknown
     flag, missing positional) with ~term_err but a `Parse error (bad
     converter value) always with Exit.cli_error = 124. Fold both onto
     2, matching the hand-rolled argument checks, so every subcommand's
     usage error prints to stderr and exits 2. *)
  let code =
    Cmd.eval ~term_err:2
      (Cmd.group (Cmd.info "hmn_cli" ~doc)
         [
           list_cmd; map_cmd; profile_cmd; validate_cmd; fuzz_cmd;
           experiments_cmd; figure1_cmd; ablation_cmd; online_cmd; slo_cmd;
           scale_cmd;
           gap_cmd; export_cmd; dot_cmd;
         ])
  in
  exit (if code = Cmd.Exit.cli_error then 2 else code)
