(* The historical list-based A*Prune, retained verbatim (minus metrics)
   as the oracle for the arena engine's bit-identity property: same
   paths, same expanded/generated statistics, label for label. Do not
   "improve" this file — its value is that it is the old engine. *)

module Graph = Hmn_graph.Graph
module Csr = Hmn_graph.Csr
module Cluster = Hmn_testbed.Cluster
module Bitset = Hmn_dstruct.Bitset
module Heap = Hmn_dstruct.Binary_heap
module Residual = Hmn_routing.Residual
module Latency_table = Hmn_routing.Latency_table
module Path = Hmn_routing.Path

type stats = {
  expanded : int;
  generated : int;
}

type partial = {
  rev_nodes : int list;
  rev_edges : int list;
  last : int;
  hops : int;
  bottleneck : float;
  acc_latency : float;
  members : Bitset.t;
}

let compare_partial ar a b =
  let c = Float.compare b.bottleneck a.bottleneck in
  if c <> 0 then c
  else
    let proj p = p.acc_latency +. Latency_table.get ar p.last in
    let c = Float.compare (proj a) (proj b) in
    if c <> 0 then c else Int.compare a.hops b.hops

let route ?(prune_dominated = true) ~residual ~latency_tables ~src ~dst
    ~bandwidth_mbps ~latency_ms () =
  let cluster = Residual.cluster residual in
  let g = Cluster.graph cluster in
  let n = Graph.n_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Reference_astar.route: endpoint out of range";
  if not (bandwidth_mbps > 0.) then
    invalid_arg "Reference_astar.route: bandwidth must be positive";
  if latency_ms < 0. then
    invalid_arg "Reference_astar.route: negative latency bound";
  if src = dst then Some (Path.trivial src, { expanded = 0; generated = 0 })
  else begin
    let tab = Latency_table.to_destination latency_tables ~dst in
    let ar_base = tab.Latency_table.base and ar_offset = tab.Latency_table.offset in
    let ar x = if x = dst then 0. else ar_base.(x) +. ar_offset in
    let heap = Heap.create ~cmp:(compare_partial tab) () in
    let csr = Cluster.csr cluster in
    let offsets = Csr.offsets csr
    and neighbors = Csr.neighbors csr
    and edge_ids = Csr.edge_ids csr in
    let latencies = Cluster.link_latencies cluster in
    let avails = Residual.availabilities residual in
    let labels = Array.make n [] in
    let dominated v ~bottleneck ~latency =
      List.exists (fun (b, l) -> b >= bottleneck && l <= latency) labels.(v)
    in
    let record v ~bottleneck ~latency =
      let current = labels.(v) in
      let rest =
        if List.exists (fun (b, l) -> b <= bottleneck && l >= latency) current then
          List.filter (fun (b, l) -> not (b <= bottleneck && l >= latency)) current
        else current
      in
      labels.(v) <- (bottleneck, latency) :: rest
    in
    let generated = ref 0 and expanded = ref 0 in
    let push p =
      incr generated;
      Heap.push heap p
    in
    let start_members = Bitset.create n in
    Bitset.add start_members src;
    if ar src <= latency_ms then begin
      if prune_dominated then record src ~bottleneck:infinity ~latency:0.;
      push
        {
          rev_nodes = [ src ];
          rev_edges = [];
          last = src;
          hops = 1;
          bottleneck = infinity;
          acc_latency = 0.;
          members = start_members;
        }
    end;
    let result = ref None in
    let expand p =
      let u = p.last in
      for k = offsets.(u) to offsets.(u + 1) - 1 do
        let neighbor = neighbors.(k) in
        if not (Bitset.mem p.members neighbor) then begin
          let eid = edge_ids.(k) in
          let avail = avails.(eid) in
          let acc_latency = p.acc_latency +. latencies.(eid) in
          if avail < bandwidth_mbps then ()
          else if acc_latency +. ar neighbor > latency_ms then ()
          else begin
            let bottleneck = Float.min p.bottleneck avail in
            if
              prune_dominated
              && dominated neighbor ~bottleneck ~latency:acc_latency
            then ()
            else begin
              if prune_dominated then
                record neighbor ~bottleneck ~latency:acc_latency;
              let members = Bitset.copy p.members in
              Bitset.add members neighbor;
              push
                {
                  rev_nodes = neighbor :: p.rev_nodes;
                  rev_edges = eid :: p.rev_edges;
                  last = neighbor;
                  hops = p.hops + 1;
                  bottleneck;
                  acc_latency;
                  members;
                }
            end
          end
        end
      done
    in
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some p ->
        incr expanded;
        if p.last = dst then
          result :=
            Some
              (Path.make ~nodes:(List.rev p.rev_nodes)
                 ~edges:(List.rev p.rev_edges))
        else begin
          expand p;
          loop ()
        end
    in
    loop ();
    match !result with
    | None -> None
    | Some path -> Some (path, { expanded = !expanded; generated = !generated })
  end
