(* Tests for hmn_core: the three HMN stages, the assembled heuristic,
   the R/RA/HS baselines and the bin-packing extensions. The overall
   invariant — every mapping any heuristic returns satisfies
   Eqs. (1)-(9) — is checked both on hand-built fixtures and as a
   property over random instances. *)

module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Resources = Hmn_testbed.Resources
module Guest = Hmn_vnet.Guest
module Vlink = Hmn_vnet.Vlink
module Venv = Hmn_vnet.Virtual_env
module Problem = Hmn_mapping.Problem
module Placement = Hmn_mapping.Placement
module Objective = Hmn_mapping.Objective
module Constraints = Hmn_mapping.Constraints
module Mapper = Hmn_core.Mapper
module Hosting = Hmn_core.Hosting
module Migration = Hmn_core.Migration
module Networking = Hmn_core.Networking
module Hmn = Hmn_core.Hmn
module Baselines = Hmn_core.Baselines
module Packing = Hmn_core.Packing
module Registry = Hmn_core.Registry

let host ?(mips = 2000.) ?(mem = 2048.) ?(stor = 1000.) i =
  Node.host
    ~name:(Printf.sprintf "h%d" i)
    ~capacity:(Resources.make ~mips ~mem_mb:mem ~stor_gb:stor)

let guest ?(mips = 100.) ?(mem = 200.) ?(stor = 10.) name =
  Guest.make ~name ~demand:(Resources.make ~mips ~mem_mb:mem ~stor_gb:stor)

let line_cluster n = Hmn_testbed.Topology.line ~hosts:(Array.init n (host ?mips:None ?mem:None ?stor:None)) ~link:Link.gigabit

(* Random Table-1-style instance used by integration properties. *)
let random_problem ~seed ~n_guests =
  let rng = Hmn_rng.Rng.create seed in
  let cluster =
    Hmn_testbed.Cluster_gen.torus_cluster ~vmm:Hmn_testbed.Vmm.none ~rows:4 ~cols:5
      ~rng ()
  in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, 0.8)
      ~profile:Hmn_vnet.Workload.high_level ~n:n_guests ~density:0.04 ~rng ()
  in
  Problem.make ~cluster ~venv

(* ---- Hosting ---- *)

let test_hosting_affinity_colocates () =
  (* Two guests joined by a fat link and roomy hosts: both land on the
     same host. *)
  let cluster = line_cluster 3 in
  let guests = [| guest "a"; guest "b" |] in
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:50. ~latency_ms:40.));
  let problem = Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:vg) in
  match Hosting.run problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p ->
    Alcotest.(check bool) "all assigned" true (Placement.all_assigned p);
    Alcotest.(check bool) "co-located" true
      (Placement.host_of p ~guest:0 = Placement.host_of p ~guest:1)

let test_hosting_splits_when_too_big () =
  (* Each guest needs 1500 MB; hosts have 2048 MB: the pair cannot
     share, so Hosting must split them across hosts. *)
  let cluster = line_cluster 3 in
  let guests = [| guest ~mem:1500. "a"; guest ~mem:1500. "b" |] in
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:50. ~latency_ms:40.));
  let problem = Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:vg) in
  match Hosting.run problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p ->
    Alcotest.(check bool) "split" true
      (Placement.host_of p ~guest:0 <> Placement.host_of p ~guest:1)

let test_hosting_processes_links_by_bandwidth () =
  Alcotest.(check bool) "sorted_vlinks descending" true
    (let problem = random_problem ~seed:1 ~n_guests:40 in
     let order = Hosting.sorted_vlinks problem in
     let venv = problem.Problem.venv in
     let ok = ref true in
     for i = 0 to Array.length order - 2 do
       let bw e = (Venv.vlink venv e).Vlink.bandwidth_mbps in
       if bw order.(i) < bw order.(i + 1) then ok := false
     done;
     !ok)

let test_hosting_isolated_guests () =
  (* Guests with no virtual links still get placed. *)
  let cluster = line_cluster 2 in
  let guests = [| guest "a"; guest "b"; guest "c" |] in
  let vg = Graph.create ~n:3 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:1. ~latency_ms:40.));
  let problem = Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:vg) in
  match Hosting.run problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p -> Alcotest.(check bool) "all assigned" true (Placement.all_assigned p)

let test_hosting_fails_when_impossible () =
  let cluster = line_cluster 2 in
  (* One guest larger than any host's memory. *)
  let guests = [| guest ~mem:5000. "huge" |] in
  let problem =
    Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:(Graph.create ~n:1 ()))
  in
  match Hosting.run problem with
  | Ok _ -> Alcotest.fail "expected hosting failure"
  | Error f -> Alcotest.(check string) "stage" "hosting" f.Mapper.stage

let test_hosting_prefers_cpu_available_host () =
  (* With no affinity pressure, the first pair goes to the most
     CPU-available host. *)
  let hosts = [| host ~mips:500. 0; host ~mips:3000. 1; host ~mips:1000. 2 |] in
  let cluster = Hmn_testbed.Topology.line ~hosts ~link:Link.gigabit in
  let guests = [| guest "a"; guest "b" |] in
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:1. ~latency_ms:40.));
  let problem = Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:vg) in
  match Hosting.run problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p ->
    Alcotest.(check (option int)) "fat host chosen" (Some 1)
      (Placement.host_of p ~guest:0)

(* ---- Migration ---- *)

let test_migration_improves_or_keeps_lbf () =
  let problem = random_problem ~seed:2 ~n_guests:60 in
  match Hosting.run problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p ->
    let stats = Migration.run p in
    Alcotest.(check bool) "LBF non-increasing" true
      (stats.Migration.lbf_after <= stats.Migration.lbf_before +. 1e-9);
    Alcotest.(check (float 1e-9)) "lbf_after is current" stats.Migration.lbf_after
      (Objective.load_balance_factor p)

let test_migration_balances_obvious_imbalance () =
  (* All guests crammed on one host of three equal hosts: migration
     must spread them. *)
  let cluster = line_cluster 3 in
  let guests = Array.init 6 (fun i -> guest (Printf.sprintf "g%d" i)) in
  let vg = Graph.create ~n:6 () in
  let problem = Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:vg) in
  let p = Placement.create problem in
  for g = 0 to 5 do
    ignore (Placement.assign p ~guest:g ~host:0)
  done;
  let stats = Migration.run p in
  Alcotest.(check bool) "moved some" true (stats.Migration.moves > 0);
  Alcotest.(check bool) "strictly better" true
    (stats.Migration.lbf_after < stats.Migration.lbf_before);
  (* Perfect balance is achievable: 2 guests per host. *)
  Alcotest.(check (float 1e-6)) "perfectly balanced" 0. stats.Migration.lbf_after

let test_migration_victim_choice () =
  (* The victim is the guest with the least bandwidth to co-located
     guests. *)
  let cluster = line_cluster 2 in
  let guests = [| guest "a"; guest "b"; guest "c" |] in
  let vg = Graph.create ~n:3 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:100. ~latency_ms:40.));
  ignore (Graph.add_edge vg 1 2 (Vlink.make ~bandwidth_mbps:1. ~latency_ms:40.));
  let problem = Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:vg) in
  let p = Placement.create problem in
  for g = 0 to 2 do
    ignore (Placement.assign p ~guest:g ~host:0)
  done;
  Alcotest.(check (float 1e-9)) "a colocated bw" 100.
    (Migration.colocated_bandwidth p ~guest:0);
  Alcotest.(check (float 1e-9)) "b colocated bw" 101.
    (Migration.colocated_bandwidth p ~guest:1);
  Alcotest.(check (float 1e-9)) "c colocated bw" 1.
    (Migration.colocated_bandwidth p ~guest:2);
  ignore (Migration.run p);
  (* Guest c (cheapest to move) must be the one that left host 0. *)
  Alcotest.(check (option int)) "c moved" (Some 1) (Placement.host_of p ~guest:2);
  Alcotest.(check (option int)) "a stayed" (Some 0) (Placement.host_of p ~guest:0)

let test_migration_max_moves_cap () =
  let problem = random_problem ~seed:3 ~n_guests:60 in
  match Hosting.run problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p ->
    let stats = Migration.run ~max_moves:1 p in
    Alcotest.(check bool) "capped" true (stats.Migration.moves <= 1)

(* ---- Networking ---- *)

let test_networking_routes_all () =
  let problem = random_problem ~seed:4 ~n_guests:50 in
  match Hosting.run problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p -> (
    match Networking.run p with
    | Error f -> Alcotest.fail f.Mapper.reason
    | Ok (lm, stats) ->
      Alcotest.(check bool) "all mapped" true (Hmn_mapping.Link_map.all_mapped lm);
      Alcotest.(check int) "routed + intra = links"
        (Venv.n_vlinks problem.Problem.venv)
        (stats.Networking.routed + stats.Networking.intra_host))

let test_networking_intra_host_free () =
  (* Both guests on one host: no bandwidth may be consumed anywhere. *)
  let cluster = line_cluster 2 in
  let guests = [| guest "a"; guest "b" |] in
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:500. ~latency_ms:40.));
  let problem = Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:vg) in
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:0);
  ignore (Placement.assign p ~guest:1 ~host:0);
  match Networking.run p with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok (lm, stats) ->
    Alcotest.(check int) "intra count" 1 stats.Networking.intra_host;
    let residual = Hmn_mapping.Link_map.residual lm in
    Alcotest.(check (float 1e-9)) "no bandwidth used" 1000.
      (Hmn_routing.Residual.available residual 0)

let test_networking_fails_on_infeasible_demand () =
  (* A virtual link demanding more than the physical capacity between
     two separated guests. *)
  let cluster = line_cluster 2 in
  let guests = [| guest "a"; guest "b" |] in
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:2000. ~latency_ms:40.));
  let problem = Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:vg) in
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:0);
  ignore (Placement.assign p ~guest:1 ~host:1);
  match Networking.run p with
  | Ok _ -> Alcotest.fail "expected networking failure"
  | Error f -> Alcotest.(check string) "stage" "networking" f.Mapper.stage

let test_networking_incomplete_placement_rejected () =
  let problem = random_problem ~seed:5 ~n_guests:10 in
  let p = Placement.create problem in
  Alcotest.check_raises "incomplete"
    (Invalid_argument "Networking.run: placement is incomplete") (fun () ->
      ignore (Networking.run p))

(* ---- HMN end-to-end ---- *)

let test_hmn_end_to_end_valid () =
  let problem = random_problem ~seed:6 ~n_guests:80 in
  let outcome, report = Hmn.run_detailed problem in
  match outcome.Mapper.result with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok mapping ->
    Alcotest.(check int) "no violations" 0 (List.length (Constraints.check mapping));
    Alcotest.(check bool) "migration ran" true
      (report.Hmn.migration_stats <> None);
    Alcotest.(check bool) "networking ran" true
      (report.Hmn.networking_stats <> None);
    Alcotest.(check (list string)) "stage times recorded"
      [ "hosting"; "migration"; "networking"; "networking/precompute" ]
      (List.map fst outcome.Mapper.stage_seconds)

let test_hmn_beats_or_ties_no_migration () =
  (* The Migration stage can only improve the placement objective. *)
  let problem = random_problem ~seed:7 ~n_guests:80 in
  match ((Hmn.run problem).Mapper.result, (Hmn.without_migration problem).Mapper.result)
  with
  | Ok full, Ok ablated ->
    Alcotest.(check bool) "HMN <= HN" true
      (Hmn_mapping.Mapping.objective full
      <= Hmn_mapping.Mapping.objective ablated +. 1e-9)
  | _ -> Alcotest.fail "both variants should succeed on this instance"

let test_hmn_deterministic () =
  let problem = random_problem ~seed:8 ~n_guests:50 in
  match ((Hmn.run problem).Mapper.result, (Hmn.run problem).Mapper.result) with
  | Ok a, Ok b ->
    Alcotest.(check (float 1e-12)) "same objective"
      (Hmn_mapping.Mapping.objective a)
      (Hmn_mapping.Mapping.objective b)
  | _ -> Alcotest.fail "expected success"

(* ---- Baselines ---- *)

let run_mapper mapper ~seed problem =
  mapper.Mapper.run ~rng:(Hmn_rng.Rng.create seed) problem

let test_baselines_produce_valid_mappings () =
  let problem = random_problem ~seed:9 ~n_guests:60 in
  List.iter
    (fun mapper ->
      match (run_mapper mapper ~seed:1 problem).Mapper.result with
      | Error f ->
        Alcotest.failf "%s failed: %s" mapper.Mapper.name f.Mapper.reason
      | Ok mapping ->
        Alcotest.(check int)
          (mapper.Mapper.name ^ " violations")
          0
          (List.length (Constraints.check mapping)))
    (Registry.paper ~max_tries:100 ())

let test_random_mapper_counts_tries () =
  let problem = random_problem ~seed:10 ~n_guests:30 in
  let outcome = run_mapper (Baselines.random ~max_tries:100 ()) ~seed:2 problem in
  Alcotest.(check bool) "tries >= 1" true (outcome.Mapper.tries >= 1);
  match outcome.Mapper.result with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "easy instance should map"

let test_random_mapper_try_budget_exhausts () =
  (* An unmappable instance: guest larger than every host. *)
  let cluster = line_cluster 2 in
  let guests = [| guest ~mem:5000. "huge" |] in
  let problem =
    Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:(Graph.create ~n:1 ()))
  in
  let outcome = run_mapper (Baselines.random ~max_tries:7 ()) ~seed:3 problem in
  Alcotest.(check int) "tries = budget" 7 outcome.Mapper.tries;
  Alcotest.(check bool) "failed" true (Result.is_error outcome.Mapper.result)

let test_hs_does_not_retry_hosting () =
  (* HS fails immediately (tries = 1) when Hosting fails. *)
  let cluster = line_cluster 2 in
  let guests = [| guest ~mem:5000. "huge" |] in
  let problem =
    Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:(Graph.create ~n:1 ()))
  in
  let outcome = run_mapper (Baselines.hosting_search ~max_tries:50 ()) ~seed:4 problem in
  Alcotest.(check int) "single try" 1 outcome.Mapper.tries;
  match outcome.Mapper.result with
  | Error f -> Alcotest.(check string) "hosting stage" "hosting" f.Mapper.stage
  | Ok _ -> Alcotest.fail "expected failure"

let test_last_failure_kept_on_success () =
  (* Two default hosts (2048 MB), one big guest (1500) and two small
     ones (800): whenever R draws the smalls first and spreads them
     across both hosts, the big guest fits nowhere and the try is
     retried — for such a seed a failed try precedes the eventual
     success, and the outcome must still carry that last failed try. *)
  let cluster = line_cluster 2 in
  let guests =
    [| guest ~mem:1500. "big"; guest ~mem:800. "s1"; guest ~mem:800. "s2" |]
  in
  let problem =
    Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:(Graph.create ~n:3 ()))
  in
  let mapper = Baselines.random ~max_tries:50 () in
  let rec find_retrying seed =
    if seed > 200 then
      Alcotest.fail "no seed produced a success after a failed try"
    else
      let outcome = run_mapper mapper ~seed problem in
      if Result.is_ok outcome.Mapper.result && outcome.Mapper.tries > 1 then outcome
      else find_retrying (seed + 1)
  in
  let outcome = find_retrying 0 in
  match outcome.Mapper.last_failure with
  | None -> Alcotest.fail "last_failure dropped on eventual success"
  | Some f ->
    Alcotest.(check string) "failed stage recorded" "random-placement" f.Mapper.stage

let test_last_failure_absent_on_clean_success () =
  (* A single roomy host cannot fail: first try succeeds and no failure
     is recorded. *)
  let problem =
    Problem.make ~cluster:(line_cluster 1)
      ~venv:(Venv.create ~guests:[| guest "only" |] ~graph:(Graph.create ~n:1 ()))
  in
  let outcome = run_mapper (Baselines.random ~max_tries:10 ()) ~seed:5 problem in
  Alcotest.(check bool) "succeeded" true (Result.is_ok outcome.Mapper.result);
  Alcotest.(check int) "first try" 1 outcome.Mapper.tries;
  Alcotest.(check bool) "no failure recorded" true
    (outcome.Mapper.last_failure = None)

let test_last_failure_on_exhaustion () =
  (* When the budget runs out, last_failure and the Error payload are
     the same failure. *)
  let cluster = line_cluster 2 in
  let guests = [| guest ~mem:5000. "huge" |] in
  let problem =
    Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:(Graph.create ~n:1 ()))
  in
  let outcome = run_mapper (Baselines.random ~max_tries:7 ()) ~seed:3 problem in
  match (outcome.Mapper.result, outcome.Mapper.last_failure) with
  | Error f, Some lf ->
    Alcotest.(check string) "same stage" f.Mapper.stage lf.Mapper.stage;
    Alcotest.(check string) "same reason" f.Mapper.reason lf.Mapper.reason
  | Error _, None -> Alcotest.fail "last_failure missing on exhaustion"
  | Ok _, _ -> Alcotest.fail "unmappable instance mapped"

let test_dfs_route_all_valid () =
  let problem = random_problem ~seed:11 ~n_guests:40 in
  match Hosting.run problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p -> (
    match Baselines.dfs_route_all ~rng:(Hmn_rng.Rng.create 5) p with
    | Error f -> Alcotest.fail f.Mapper.reason
    | Ok lm ->
      let mapping = Hmn_mapping.Mapping.make ~placement:p ~link_map:lm in
      Alcotest.(check int) "valid" 0 (List.length (Constraints.check mapping)))

(* ---- Packing ---- *)

let test_packing_strategies_valid () =
  let problem = random_problem ~seed:12 ~n_guests:60 in
  List.iter
    (fun strategy ->
      match Packing.place strategy problem with
      | Error f -> Alcotest.failf "%s: %s" (Packing.strategy_name strategy) f.Mapper.reason
      | Ok p ->
        Alcotest.(check bool)
          (Packing.strategy_name strategy ^ " complete")
          true (Placement.all_assigned p))
    [ Packing.First_fit; Packing.Best_fit; Packing.Worst_fit; Packing.Consolidate ]

let test_consolidate_uses_fewer_hosts () =
  let problem = random_problem ~seed:13 ~n_guests:40 in
  match (Packing.place Packing.Consolidate problem, Packing.place Packing.Worst_fit problem)
  with
  | Ok cons, Ok worst ->
    Alcotest.(check bool) "consolidation packs tighter" true
      (Objective.active_hosts cons <= Objective.active_hosts worst)
  | _ -> Alcotest.fail "placements should succeed"

let test_worst_fit_balances_better () =
  let problem = random_problem ~seed:14 ~n_guests:40 in
  match (Packing.place Packing.Worst_fit problem, Packing.place Packing.Consolidate problem)
  with
  | Ok worst, Ok cons ->
    Alcotest.(check bool) "WFD at least as balanced" true
      (Objective.load_balance_factor worst
      <= Objective.load_balance_factor cons +. 1e-9)
  | _ -> Alcotest.fail "placements should succeed"

(* ---- Exhaustive (OPT oracle) ---- *)

(* Small instance where optimal balance is computable by hand: three
   equal 1000-MIPS hosts, six equal 100-MIPS guests, no links. Perfect
   balance (2 guests per host) has LBF 0. *)
let test_exhaustive_known_optimum () =
  let cluster = line_cluster 3 in
  let hosts_mips = 2000. in
  ignore hosts_mips;
  let guests = Array.init 6 (fun i -> guest (Printf.sprintf "g%d" i)) in
  let problem =
    Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:(Graph.create ~n:6 ()))
  in
  match Hmn_core.Exhaustive.optimal_placement problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok (placement, lbf) ->
    Alcotest.(check (float 1e-9)) "perfect balance" 0. lbf;
    Alcotest.(check (float 1e-9)) "lbf consistent" lbf
      (Objective.load_balance_factor placement)

let test_exhaustive_rejects_large () =
  let problem = random_problem ~seed:30 ~n_guests:50 in
  match Hmn_core.Exhaustive.optimal_placement problem with
  | Ok _ -> Alcotest.fail "expected a size rejection"
  | Error f -> Alcotest.(check string) "stage" "exhaustive" f.Mapper.stage

let test_exhaustive_infeasible () =
  let cluster = line_cluster 2 in
  let guests = [| guest ~mem:5000. "huge" |] in
  let problem =
    Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:(Graph.create ~n:1 ()))
  in
  match Hmn_core.Exhaustive.optimal_placement problem with
  | Ok _ -> Alcotest.fail "expected infeasibility"
  | Error f ->
    Alcotest.(check string) "reason" "no feasible placement exists" f.Mapper.reason

let prop_hmn_within_factor_of_opt =
  (* On tiny instances, HMN's objective is never better than OPT and
     the OPT mapping is valid. *)
  QCheck.Test.make ~name:"OPT lower-bounds HMN on tiny instances" ~count:25
    QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 9100) in
      let hosts =
        Array.init 3 (fun i ->
            host ~mips:(1000. +. (2000. *. Hmn_rng.Rng.float rng)) i)
      in
      let cluster = Hmn_testbed.Topology.ring ~hosts ~link:Hmn_testbed.Link.gigabit in
      let venv =
        Hmn_vnet.Venv_gen.generate ~profile:Hmn_vnet.Workload.high_level ~n:6
          ~density:0.3 ~rng ()
      in
      let problem = Problem.make ~cluster ~venv in
      match
        ( Hmn_core.Exhaustive.optimal_placement problem,
          (Hmn.run problem).Mapper.result )
      with
      | Error _, _ -> true
      | Ok (_, opt_lbf), Ok hmn_mapping ->
        Hmn_mapping.Mapping.objective hmn_mapping >= opt_lbf -. 1e-9
      | Ok _, Error _ -> true)

(* ---- Incremental ---- *)

let live_handle ?(seed = 31) ?(n_guests = 60) () =
  let problem = random_problem ~seed ~n_guests in
  match (Hmn.run problem).Mapper.result with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok mapping -> Hmn_core.Incremental.create mapping

let test_incremental_move_guest () =
  let t = live_handle () in
  let mapping = Hmn_core.Incremental.mapping t in
  let placement = mapping.Hmn_mapping.Mapping.placement in
  let cluster = (Hmn_mapping.Mapping.problem mapping).Problem.cluster in
  let guest = 0 in
  let origin = Placement.host_of_exn placement ~guest in
  (* Pick any other host that fits the guest. *)
  let target =
    Array.to_list (Cluster.host_ids cluster)
    |> List.find (fun h -> h <> origin && Placement.fits placement ~guest ~host:h)
  in
  (match Hmn_core.Incremental.move_guest t ~guest ~host:target with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (option int)) "moved" (Some target) (Placement.host_of placement ~guest);
  Alcotest.(check int) "mapping still valid" 0
    (List.length (Constraints.check mapping))

let test_incremental_move_rollback () =
  let t = live_handle () in
  let mapping = Hmn_core.Incremental.mapping t in
  let placement = mapping.Hmn_mapping.Mapping.placement in
  (* Moving to a switch (non-host) must fail and leave everything
     intact... the torus cluster has no switches, so instead move to a
     host that cannot fit by filling criteria: use an out-of-range-free
     approach — move onto the host it is already on is a no-op; use an
     invalid target via a full host. Simply verify failure keeps
     validity by attempting a move that cannot fit: find a host whose
     residual memory is smaller than the guest's demand, if any. *)
  let cluster = (Hmn_mapping.Mapping.problem mapping).Problem.cluster in
  let venv = (Hmn_mapping.Mapping.problem mapping).Problem.venv in
  let guest = 0 in
  let demand = Venv.demand venv guest in
  let non_fitting =
    Array.to_list (Cluster.host_ids cluster)
    |> List.find_opt (fun h ->
           Placement.host_of placement ~guest <> Some h
           && not
                (Hmn_testbed.Resources.fits_mem_stor ~demand
                   ~avail:(Placement.residual placement ~host:h)))
  in
  (match non_fitting with
  | None -> () (* nothing to test on this seed; validity check below still runs *)
  | Some target ->
    let before = Placement.host_of placement ~guest in
    Alcotest.(check bool) "move fails" true
      (Result.is_error (Hmn_core.Incremental.move_guest t ~guest ~host:target));
    Alcotest.(check (option int)) "guest unmoved" before
      (Placement.host_of placement ~guest));
  Alcotest.(check int) "still valid" 0 (List.length (Constraints.check mapping))

let test_incremental_evacuate () =
  let t = live_handle ~seed:32 () in
  let mapping = Hmn_core.Incremental.mapping t in
  let placement = mapping.Hmn_mapping.Mapping.placement in
  let cluster = (Hmn_mapping.Mapping.problem mapping).Problem.cluster in
  (* Evacuate the busiest host. *)
  let host =
    Hmn_prelude.Array_ext.max_by
      (fun h -> float_of_int (Placement.n_guests_on placement ~host:h))
      (Cluster.host_ids cluster)
  in
  let before = Placement.n_guests_on placement ~host in
  Alcotest.(check bool) "has guests to move" true (before > 0);
  (match Hmn_core.Incremental.evacuate_host t ~host with
  | Ok moved -> Alcotest.(check int) "all moved" before moved
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "host empty" 0 (Placement.n_guests_on placement ~host);
  Alcotest.(check int) "still valid" 0 (List.length (Constraints.check mapping))

(* A drain that must get stuck: h0 holds a small guest (fits anywhere)
   and a big guest (fits only h0), joined by a virtual link. The small
   guest moves, the big one cannot leave. *)
let stuck_evacuation_handle () =
  let mem = [| 4096.; 512.; 512. |] in
  let hosts =
    Array.init 3 (fun i ->
        Node.host
          ~name:(Printf.sprintf "h%d" i)
          ~capacity:(Resources.make ~mips:2000. ~mem_mb:mem.(i) ~stor_gb:1000.))
  in
  let cluster = Hmn_testbed.Topology.line ~hosts ~link:Link.gigabit in
  let guests =
    [|
      guest ~mem:200. "small";
      guest ~mem:2000. "big" (* only h0 has this much memory *);
    |]
  in
  let vgraph = Graph.create ~n:2 () in
  ignore
    (Graph.add_edge vgraph 0 1
       (Vlink.make ~bandwidth_mbps:10. ~latency_ms:100.));
  let venv = Venv.create ~guests ~graph:vgraph in
  let problem = Problem.make ~cluster ~venv in
  let placement = Placement.create problem in
  List.iter
    (fun g ->
      match Placement.assign placement ~guest:g ~host:0 with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    [ 0; 1 ];
  let link_map = Hmn_mapping.Link_map.create problem in
  (match Hmn_mapping.Link_map.assign link_map ~vlink:0 (Hmn_routing.Path.trivial 0) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Hmn_core.Incremental.create (Hmn_mapping.Mapping.make ~placement ~link_map)

let test_incremental_evacuate_rollback () =
  (* Default rollback: a failed drain leaves the mapping exactly as
     found — both guests back on h0, the link back on its trivial
     path. *)
  let t = stuck_evacuation_handle () in
  let mapping = Hmn_core.Incremental.mapping t in
  let placement = mapping.Hmn_mapping.Mapping.placement in
  let link_map = mapping.Hmn_mapping.Mapping.link_map in
  (match Hmn_core.Incremental.evacuate_host t ~host:0 with
  | Ok n -> Alcotest.failf "drain unexpectedly succeeded (%d moves)" n
  | Error e ->
    let contains_sub s sub =
      let n = String.length s and m = String.length sub in
      let rec at i = i + m <= n && (String.sub s i m = sub || at (i + 1)) in
      at 0
    in
    Alcotest.(check bool) "error names the stuck guest" true
      (contains_sub e "guest 1");
    Alcotest.(check bool) "error mentions the rollback" true
      (contains_sub e "rolled back"));
  Alcotest.(check (option int)) "small guest restored" (Some 0)
    (Placement.host_of placement ~guest:0);
  Alcotest.(check (option int)) "big guest untouched" (Some 0)
    (Placement.host_of placement ~guest:1);
  (match Hmn_mapping.Link_map.path_of link_map ~vlink:0 with
  | Some p ->
    Alcotest.(check bool) "link back on the intra-host path" true
      (Hmn_routing.Path.is_intra_host p)
  | None -> Alcotest.fail "link lost its path");
  Alcotest.(check int) "mapping exactly as found" 0
    (List.length (Constraints.check mapping));
  Alcotest.(check bool) "residual bandwidth fully restored" true
    (let residual = Hmn_mapping.Link_map.residual link_map in
     let g = Cluster.graph (Hmn_routing.Residual.cluster residual) in
     List.for_all
       (fun eid -> Hmn_routing.Residual.used residual eid <= 1e-9)
       (List.init (Graph.n_edges g) Fun.id))

let test_incremental_evacuate_no_rollback () =
  (* rollback:false keeps the partial drain: the small guest stays
     moved, the big one stays stuck on h0, and the mapping is still
     valid. *)
  let t = stuck_evacuation_handle () in
  let mapping = Hmn_core.Incremental.mapping t in
  let placement = mapping.Hmn_mapping.Mapping.placement in
  (match Hmn_core.Incremental.evacuate_host ~rollback:false t ~host:0 with
  | Ok n -> Alcotest.failf "drain unexpectedly succeeded (%d moves)" n
  | Error _ -> ());
  (match Placement.host_of placement ~guest:0 with
  | Some h -> Alcotest.(check bool) "small guest stays moved" true (h <> 0)
  | None -> Alcotest.fail "small guest lost");
  Alcotest.(check (option int)) "big guest still on h0" (Some 0)
    (Placement.host_of placement ~guest:1);
  Alcotest.(check int) "partial state still valid" 0
    (List.length (Constraints.check mapping))

let test_incremental_rebalance () =
  (* Build a deliberately unbalanced valid mapping: place everything
     with the consolidating packer, then rebalance. *)
  let problem = random_problem ~seed:33 ~n_guests:60 in
  match Packing.place Packing.Consolidate problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok placement -> (
    match Networking.run placement with
    | Error f -> Alcotest.fail f.Mapper.reason
    | Ok (link_map, _) ->
      let mapping = Hmn_mapping.Mapping.make ~placement ~link_map in
      let before = Hmn_mapping.Mapping.objective mapping in
      let t = Hmn_core.Incremental.create mapping in
      let moves = Hmn_core.Incremental.rebalance t in
      let after = Hmn_mapping.Mapping.objective mapping in
      Alcotest.(check bool) "moved some" true (moves > 0);
      Alcotest.(check bool) "improved" true (after < before);
      Alcotest.(check int) "still valid" 0 (List.length (Constraints.check mapping)))

let test_incremental_rejects_invalid () =
  let problem = random_problem ~seed:34 ~n_guests:10 in
  let placement = Placement.create problem in
  let link_map = Hmn_mapping.Link_map.create problem in
  let mapping = Hmn_mapping.Mapping.make ~placement ~link_map in
  Alcotest.(check bool) "raises on invalid mapping" true
    (match Hmn_core.Incremental.create mapping with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_incremental_random_ops_stay_valid =
  QCheck.Test.make ~name:"random live moves preserve mapping validity" ~count:15
    QCheck.small_nat
    (fun seed ->
      let problem = random_problem ~seed:(seed + 9200) ~n_guests:40 in
      match (Hmn.run problem).Mapper.result with
      | Error _ -> true
      | Ok mapping ->
        let t = Hmn_core.Incremental.create mapping in
        let cluster = (Hmn_mapping.Mapping.problem mapping).Problem.cluster in
        let hosts = Cluster.host_ids cluster in
        let rng = Hmn_rng.Rng.create seed in
        for _ = 1 to 20 do
          let guest = Hmn_rng.Rng.int rng ~bound:40 in
          let host = hosts.(Hmn_rng.Rng.int rng ~bound:(Array.length hosts)) in
          ignore (Hmn_core.Incremental.move_guest t ~guest ~host)
        done;
        Constraints.is_valid mapping)

(* ---- Annealing ---- *)

let test_annealing_never_worse () =
  let problem = random_problem ~seed:15 ~n_guests:60 in
  match Hosting.run problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p ->
    let before = Objective.load_balance_factor p in
    let accepted = Hmn_core.Annealing.anneal ~rng:(Hmn_rng.Rng.create 1) p in
    let after = Objective.load_balance_factor p in
    Alcotest.(check bool) "accepted some moves" true (accepted > 0);
    Alcotest.(check bool) "LBF not worse (best-state restore)" true
      (after <= before +. 1e-9);
    Alcotest.(check bool) "still complete" true (Placement.all_assigned p)

let test_annealing_mapper_valid () =
  let problem = random_problem ~seed:16 ~n_guests:60 in
  let mapper = Hmn_core.Annealing.mapper () in
  match (run_mapper mapper ~seed:2 problem).Mapper.result with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok mapping ->
    Alcotest.(check int) "valid" 0 (List.length (Constraints.check mapping))

let test_annealing_param_validation () =
  let problem = random_problem ~seed:17 ~n_guests:20 in
  match Hosting.run problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p ->
    Alcotest.check_raises "bad cooling"
      (Invalid_argument "Annealing: cooling must be in (0, 1)") (fun () ->
        ignore
          (Hmn_core.Annealing.anneal
             ~params:
               { Hmn_core.Annealing.iterations = 10; initial_temperature = 1.; cooling = 1.5 }
             ~rng:(Hmn_rng.Rng.create 1) p))

(* ---- Genetic ---- *)

let test_genetic_produces_feasible () =
  let problem = random_problem ~seed:18 ~n_guests:50 in
  match Hmn_core.Genetic.evolve ~rng:(Hmn_rng.Rng.create 3) problem with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok p ->
    Alcotest.(check bool) "complete" true (Placement.all_assigned p)

let test_genetic_mapper_valid () =
  let problem = random_problem ~seed:19 ~n_guests:50 in
  let params =
    { Hmn_core.Genetic.default_params with Hmn_core.Genetic.generations = 15 }
  in
  let mapper = Hmn_core.Genetic.mapper ~params () in
  match (run_mapper mapper ~seed:4 problem).Mapper.result with
  | Error f -> Alcotest.fail f.Mapper.reason
  | Ok mapping ->
    Alcotest.(check int) "valid" 0 (List.length (Constraints.check mapping))

let test_genetic_fails_on_impossible () =
  let cluster = line_cluster 2 in
  let guests = [| guest ~mem:5000. "huge" |] in
  let problem =
    Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:(Graph.create ~n:1 ()))
  in
  let params =
    { Hmn_core.Genetic.population = 8; generations = 5; crossover_rate = 0.9;
      mutation_rate = 0.05; tournament = 2 }
  in
  match Hmn_core.Genetic.evolve ~params ~rng:(Hmn_rng.Rng.create 5) problem with
  | Ok _ -> Alcotest.fail "expected infeasibility"
  | Error f -> Alcotest.(check string) "genetic stage" "genetic" f.Mapper.stage

let test_genetic_param_validation () =
  let problem = random_problem ~seed:20 ~n_guests:10 in
  Alcotest.check_raises "population too small"
    (Invalid_argument "Genetic: population >= 2 required") (fun () ->
      ignore
        (Hmn_core.Genetic.evolve
           ~params:
             { Hmn_core.Genetic.population = 1; generations = 1; crossover_rate = 0.5;
               mutation_rate = 0.1; tournament = 1 }
           ~rng:(Hmn_rng.Rng.create 1) problem))

(* ---- Registry ---- *)

let test_registry () =
  Alcotest.(check int) "paper pool" 4 (List.length (Registry.paper ()));
  Alcotest.(check int) "full pool" 11 (List.length (Registry.all ()));
  Alcotest.(check bool) "find case-insensitive" true
    (Option.is_some (Registry.find "hmn"));
  Alcotest.(check bool) "find unknown" true (Registry.find "nope" = None);
  Alcotest.(check (list string)) "names"
    [ "HMN"; "R"; "RA"; "HS"; "HN"; "FFD"; "BFD"; "WFD"; "CONS"; "SA"; "GA" ]
    (Registry.names ())

(* ---- integration properties ---- *)

let prop_hmn_mappings_always_valid =
  QCheck.Test.make
    ~name:"every successful HMN mapping satisfies Eqs. (1)-(9)" ~count:40
    QCheck.(pair small_nat (int_range 10 120))
    (fun (seed, n_guests) ->
      let problem = random_problem ~seed:(seed + 4000) ~n_guests in
      match (Hmn.run problem).Mapper.result with
      | Error _ -> true (* failing is allowed; returning junk is not *)
      | Ok mapping -> Constraints.is_valid mapping)

let prop_baseline_mappings_always_valid =
  QCheck.Test.make
    ~name:"every successful R/RA/HS mapping satisfies Eqs. (1)-(9)" ~count:15
    QCheck.small_nat
    (fun seed ->
      let problem = random_problem ~seed:(seed + 5000) ~n_guests:50 in
      List.for_all
        (fun mapper ->
          match (run_mapper mapper ~seed problem).Mapper.result with
          | Error _ -> true
          | Ok mapping -> Constraints.is_valid mapping)
        (Registry.all ~max_tries:30 ()))

let prop_migration_never_worsens =
  QCheck.Test.make ~name:"Migration never increases the LBF" ~count:30
    QCheck.small_nat
    (fun seed ->
      let problem = random_problem ~seed:(seed + 6000) ~n_guests:60 in
      match Hosting.run problem with
      | Error _ -> true
      | Ok p ->
        let stats = Migration.run p in
        stats.Migration.lbf_after <= stats.Migration.lbf_before +. 1e-9)

(* ---- sharded Hosting properties ---- *)

(* A rack-labelled leaf-spine instance sized like one "rack" of the
   scale path: 4 racks of 5 hosts, thin guests, ~1.5 vlinks/guest. *)
let racked_problem ~seed ~ratio =
  let rng = Hmn_rng.Rng.create seed in
  let cluster =
    Hmn_testbed.Cluster_gen.clos_cluster ~racks:4 ~hosts_per_rack:5 ~spines:2
      ~rng ()
  in
  let n = ratio * Cluster.n_hosts cluster in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, 0.8)
      ~profile:Hmn_vnet.Workload.low_level ~n
      ~density:(3. /. float_of_int (n - 1))
      ~rng ()
  in
  Problem.make ~cluster ~venv

let placements_equal a b =
  let pa = Placement.problem a in
  let n = Hmn_vnet.Virtual_env.n_guests pa.Problem.venv in
  let ok = ref true in
  for guest = 0 to n - 1 do
    if Placement.host_of a ~guest <> Placement.host_of b ~guest then ok := false
  done;
  !ok

let prop_sharded_hosting_jobs_invariant =
  QCheck.Test.make
    ~name:"sharded Hosting: identical placements at jobs=1 and jobs=3" ~count:15
    QCheck.small_nat
    (fun seed ->
      let problem = racked_problem ~seed:(seed + 9100) ~ratio:8 in
      match
        ( Hosting.run_sharded ~jobs:1 problem,
          Hosting.run_sharded ~jobs:3 problem )
      with
      | Ok a, Ok b -> Placement.all_assigned a && placements_equal a b
      | Error _, Error _ -> true
      | _ -> false)

let prop_sharded_pipeline_mappings_valid =
  QCheck.Test.make
    ~name:"sharded pipeline mappings satisfy Eqs. (1)-(9) on racked clusters"
    ~count:10 QCheck.small_nat
    (fun seed ->
      let problem = racked_problem ~seed:(seed + 9200) ~ratio:8 in
      let outcome, _ = Hmn.run_sharded_detailed ~jobs:2 problem in
      match outcome.Mapper.result with
      | Error _ -> true (* failing is allowed; returning junk is not *)
      | Ok mapping -> Constraints.is_valid mapping)

let prop_sharded_falls_back_to_flat_on_unracked =
  QCheck.Test.make
    ~name:"sharded Hosting equals flat Hosting on unracked clusters" ~count:15
    QCheck.small_nat
    (fun seed ->
      let problem = random_problem ~seed:(seed + 9300) ~n_guests:60 in
      match (Hosting.run_sharded ~jobs:3 problem, Hosting.run problem) with
      | Ok a, Ok b -> placements_equal a b
      | Error a, Error b -> a.Mapper.stage = b.Mapper.stage
      | _ -> false)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_core"
    [
      ( "hosting",
        [
          Alcotest.test_case "affinity co-locates" `Quick test_hosting_affinity_colocates;
          Alcotest.test_case "splits oversized pairs" `Quick
            test_hosting_splits_when_too_big;
          Alcotest.test_case "bandwidth-descending order" `Quick
            test_hosting_processes_links_by_bandwidth;
          Alcotest.test_case "isolated guests" `Quick test_hosting_isolated_guests;
          Alcotest.test_case "fails when impossible" `Quick
            test_hosting_fails_when_impossible;
          Alcotest.test_case "prefers CPU-available host" `Quick
            test_hosting_prefers_cpu_available_host;
        ] );
      ( "migration",
        [
          Alcotest.test_case "LBF non-increasing" `Quick
            test_migration_improves_or_keeps_lbf;
          Alcotest.test_case "balances obvious imbalance" `Quick
            test_migration_balances_obvious_imbalance;
          Alcotest.test_case "victim choice" `Quick test_migration_victim_choice;
          Alcotest.test_case "max moves cap" `Quick test_migration_max_moves_cap;
        ] );
      ( "networking",
        [
          Alcotest.test_case "routes all" `Quick test_networking_routes_all;
          Alcotest.test_case "intra-host free" `Quick test_networking_intra_host_free;
          Alcotest.test_case "fails on infeasible" `Quick
            test_networking_fails_on_infeasible_demand;
          Alcotest.test_case "rejects incomplete placement" `Quick
            test_networking_incomplete_placement_rejected;
        ] );
      ( "hmn",
        [
          Alcotest.test_case "end-to-end valid" `Quick test_hmn_end_to_end_valid;
          Alcotest.test_case "migration only helps" `Quick
            test_hmn_beats_or_ties_no_migration;
          Alcotest.test_case "deterministic" `Quick test_hmn_deterministic;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "valid mappings" `Quick
            test_baselines_produce_valid_mappings;
          Alcotest.test_case "R counts tries" `Quick test_random_mapper_counts_tries;
          Alcotest.test_case "R exhausts budget" `Quick
            test_random_mapper_try_budget_exhausts;
          Alcotest.test_case "HS keeps hosting fixed" `Quick
            test_hs_does_not_retry_hosting;
          Alcotest.test_case "last failure kept on success" `Quick
            test_last_failure_kept_on_success;
          Alcotest.test_case "last failure absent when clean" `Quick
            test_last_failure_absent_on_clean_success;
          Alcotest.test_case "last failure on exhaustion" `Quick
            test_last_failure_on_exhaustion;
          Alcotest.test_case "DFS routing valid" `Quick test_dfs_route_all_valid;
        ] );
      ( "packing",
        [
          Alcotest.test_case "strategies place" `Quick test_packing_strategies_valid;
          Alcotest.test_case "consolidation" `Quick test_consolidate_uses_fewer_hosts;
          Alcotest.test_case "worst-fit balances" `Quick test_worst_fit_balances_better;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "known optimum" `Quick test_exhaustive_known_optimum;
          Alcotest.test_case "rejects large" `Quick test_exhaustive_rejects_large;
          Alcotest.test_case "infeasible" `Quick test_exhaustive_infeasible;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "move guest" `Quick test_incremental_move_guest;
          Alcotest.test_case "move rollback" `Quick test_incremental_move_rollback;
          Alcotest.test_case "evacuate host" `Quick test_incremental_evacuate;
          Alcotest.test_case "evacuate rollback" `Quick
            test_incremental_evacuate_rollback;
          Alcotest.test_case "evacuate without rollback" `Quick
            test_incremental_evacuate_no_rollback;
          Alcotest.test_case "rebalance" `Quick test_incremental_rebalance;
          Alcotest.test_case "rejects invalid" `Quick test_incremental_rejects_invalid;
        ] );
      ( "annealing",
        [
          Alcotest.test_case "never worse" `Quick test_annealing_never_worse;
          Alcotest.test_case "mapper valid" `Quick test_annealing_mapper_valid;
          Alcotest.test_case "param validation" `Quick test_annealing_param_validation;
        ] );
      ( "genetic",
        [
          Alcotest.test_case "produces feasible" `Quick test_genetic_produces_feasible;
          Alcotest.test_case "mapper valid" `Quick test_genetic_mapper_valid;
          Alcotest.test_case "fails on impossible" `Quick
            test_genetic_fails_on_impossible;
          Alcotest.test_case "param validation" `Quick test_genetic_param_validation;
        ] );
      ("registry", [ Alcotest.test_case "lookup" `Quick test_registry ]);
      ( "properties",
        [
          q prop_hmn_mappings_always_valid;
          q prop_baseline_mappings_always_valid;
          q prop_migration_never_worsens;
          q prop_hmn_within_factor_of_opt;
          q prop_incremental_random_ops_stay_valid;
        ] );
      ( "sharded",
        [
          q prop_sharded_hosting_jobs_invariant;
          q prop_sharded_pipeline_mappings_valid;
          q prop_sharded_falls_back_to_flat_on_unracked;
        ] );
    ]
