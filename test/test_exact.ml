(* Tests for hmn_exact: the water-filling lower bound against
   hand-computed optima, and the branch-and-bound cross-checked against
   the brute-force [Exhaustive] search on tiny instances. *)

module Graph = Hmn_graph.Graph
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Resources = Hmn_testbed.Resources
module Guest = Hmn_vnet.Guest
module Vlink = Hmn_vnet.Vlink
module Venv = Hmn_vnet.Virtual_env
module Problem = Hmn_mapping.Problem
module Constraints = Hmn_mapping.Constraints
module Bound = Hmn_exact.Bound
module Solver = Hmn_exact.Solver

let host ?(mips = 2000.) ?(mem = 2048.) ?(stor = 1000.) i =
  Node.host
    ~name:(Printf.sprintf "h%d" i)
    ~capacity:(Resources.make ~mips ~mem_mb:mem ~stor_gb:stor)

let guest ?(mips = 100.) ?(mem = 200.) ?(stor = 10.) name =
  Guest.make ~name ~demand:(Resources.make ~mips ~mem_mb:mem ~stor_gb:stor)

let check_float = Alcotest.(check (float 1e-6))

(* ---- Bound ---- *)

let test_bound_uncapped () =
  (* r = [10; 0], demand 4: the water fills the taller host only,
     x = [4; 0], residuals [6; 0] around mean 3 — stddev 3. *)
  match
    Bound.stddev_lower ~residual_cpus:[| 10.; 0. |]
      ~caps:[| infinity; infinity |] ~demand:4.
  with
  | None -> Alcotest.fail "expected a bound"
  | Some b -> check_float "water-filling optimum" 3. b

let test_bound_perfect_balance () =
  (* Demand exactly levels the hosts: bound 0. *)
  match
    Bound.stddev_lower ~residual_cpus:[| 10.; 0. |]
      ~caps:[| infinity; infinity |] ~demand:10.
  with
  | None -> Alcotest.fail "expected a bound"
  | Some b -> check_float "levelled" 0. b

let test_bound_caps_bind () =
  (* Host 0 capped at 2: x = [2; 2], residuals [8; -2] around mean 3 —
     stddev 5. *)
  match
    Bound.stddev_lower ~residual_cpus:[| 10.; 0. |] ~caps:[| 2.; infinity |]
      ~demand:4.
  with
  | None -> Alcotest.fail "expected a bound"
  | Some b -> check_float "capped optimum" 5. b

let test_bound_infeasible () =
  Alcotest.(check bool)
    "sum caps < demand" true
    (Bound.stddev_lower ~residual_cpus:[| 10.; 0. |] ~caps:[| 1.; 1. |]
       ~demand:4.
    = None)

let test_bound_zero_demand () =
  (* Nothing left to place: the bound is the stddev of r itself. *)
  match
    Bound.stddev_lower ~residual_cpus:[| 4.; 0. |] ~caps:[| 0.; 0. |] ~demand:0.
  with
  | None -> Alcotest.fail "expected a bound"
  | Some b -> check_float "plain stddev" 2. b

let test_bound_validation () =
  Alcotest.check_raises "no hosts" (Invalid_argument "Bound.stddev_lower: no hosts")
    (fun () ->
      ignore (Bound.stddev_lower ~residual_cpus:[||] ~caps:[||] ~demand:1.));
  Alcotest.check_raises "negative demand"
    (Invalid_argument "Bound.stddev_lower: negative demand") (fun () ->
      ignore
        (Bound.stddev_lower ~residual_cpus:[| 1. |] ~caps:[| 1. |] ~demand:(-1.)))

let prop_bound_never_exceeds_leaves =
  (* The relaxation lower-bounds the best integral completion: compare
     against brute force on random micro-instances. *)
  QCheck.Test.make ~name:"bound is a true lower bound (brute force)" ~count:200
    QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 4242) in
      let nh = 2 + Hmn_rng.Rng.int rng ~bound:3 in
      let ng = 1 + Hmn_rng.Rng.int rng ~bound:5 in
      let r = Array.init nh (fun _ -> Hmn_rng.Rng.float_in rng ~lo:0. ~hi:10.) in
      let caps = Array.init nh (fun _ -> Hmn_rng.Rng.float_in rng ~lo:0.5 ~hi:8.) in
      let demands =
        Array.init ng (fun _ -> Hmn_rng.Rng.float_in rng ~lo:0.1 ~hi:2.)
      in
      let total = Array.fold_left ( +. ) 0. demands in
      let stddev xs =
        let n = float_of_int (Array.length xs) in
        let mean = Array.fold_left ( +. ) 0. xs /. n in
        let var =
          Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs /. n
        in
        sqrt var
      in
      (* Brute-force best integral assignment under the same caps. *)
      let best = ref infinity in
      let load = Array.make nh 0. in
      let rec go g =
        if g = ng then begin
          let res = Array.init nh (fun i -> r.(i) -. load.(i)) in
          let s = stddev res in
          if s < !best then best := s
        end
        else
          for i = 0 to nh - 1 do
            if load.(i) +. demands.(g) <= caps.(i) then begin
              load.(i) <- load.(i) +. demands.(g);
              go (g + 1);
              load.(i) <- load.(i) -. demands.(g)
            end
          done
      in
      go 0;
      match Bound.stddev_lower ~residual_cpus:r ~caps ~demand:total with
      | None -> !best = infinity || QCheck.Test.fail_report "bound said infeasible"
      | Some b -> !best = infinity || b <= !best +. 1e-9)

(* ---- Solver vs Exhaustive ---- *)

let tiny_problem seed =
  let rng = Hmn_rng.Rng.create (seed + 7300) in
  let nh = 3 + Hmn_rng.Rng.int rng ~bound:3 in
  let hosts =
    Array.init nh (fun i ->
        host
          ~mips:(1000. +. (2000. *. Hmn_rng.Rng.float rng))
          ~mem:(1024. +. (2048. *. Hmn_rng.Rng.float rng))
          i)
  in
  let cluster = Hmn_testbed.Topology.ring ~hosts ~link:Link.gigabit in
  let ng = 3 + Hmn_rng.Rng.int rng ~bound:6 in
  let venv =
    Hmn_vnet.Venv_gen.generate ~profile:Hmn_vnet.Workload.high_level ~n:ng
      ~density:0.3 ~rng ()
  in
  Problem.make ~cluster ~venv

let prop_solver_matches_exhaustive =
  QCheck.Test.make ~name:"placement-mode B&B agrees with Exhaustive" ~count:60
    QCheck.small_nat
    (fun seed ->
      let problem = tiny_problem seed in
      let config = { Solver.default_config with routing = false } in
      let result = Solver.solve ~config problem in
      if result.Solver.status <> Solver.Optimal then
        QCheck.Test.fail_report "budget exhausted on a tiny instance";
      match (Hmn_core.Exhaustive.optimal_placement problem, Solver.optimum result) with
      | Error _, Some _ -> QCheck.Test.fail_report "solver feasible, exhaustive not"
      | Ok _, None -> QCheck.Test.fail_report "exhaustive feasible, solver not"
      | Error _, None -> Solver.proven_optimal result
      | Ok (_, opt), Some o ->
        if Float.abs (o -. opt) > 1e-6 then
          QCheck.Test.fail_reportf "objectives differ: solver %.9f vs exhaustive %.9f"
            o opt;
        if not (Solver.proven_optimal result) then
          QCheck.Test.fail_reportf "optimum %.9f not proven (lower bound %.9f)" o
            result.Solver.lower_bound;
        true)

let prop_routing_mode_sound =
  (* Routing mode: the certified mapping is valid, its objective is
     within the proven bounds, and it never beats the placement-only
     optimum (its search space is a subset). *)
  QCheck.Test.make ~name:"routing-mode B&B returns valid proven mappings" ~count:25
    QCheck.small_nat
    (fun seed ->
      let problem = tiny_problem seed in
      let result = Solver.solve problem in
      if result.Solver.status <> Solver.Optimal then
        QCheck.Test.fail_report "budget exhausted on a tiny instance";
      match result.Solver.best_mapping with
      | None -> true
      | Some (obj, mapping) ->
        if Constraints.check mapping <> [] then
          QCheck.Test.fail_report "certified mapping violates constraints";
        if obj < result.Solver.lower_bound -. 1e-9 then
          QCheck.Test.fail_report "optimum below its own lower bound";
        (match Hmn_core.Exhaustive.optimal_placement problem with
        | Error _ -> QCheck.Test.fail_report "routable but placement-infeasible"
        | Ok (_, opt) ->
          if obj < opt -. 1e-6 then
            QCheck.Test.fail_report "mapping beats the placement optimum";
          true))

let test_budget_exhaustion () =
  (* A one-node budget still yields a valid (if loose) lower bound. *)
  let problem = tiny_problem 5 in
  let config = { Solver.node_budget = 1; routing = false } in
  let result = Solver.solve ~config problem in
  Alcotest.(check bool)
    "budget exhausted" true
    (result.Solver.status = Solver.Budget_exhausted);
  match Hmn_core.Exhaustive.optimal_placement problem with
  | Error _ -> ()
  | Ok (_, opt) ->
    Alcotest.(check bool)
      "bound below optimum" true
      (result.Solver.lower_bound <= opt +. 1e-9)

let test_infeasible_instance () =
  (* One host, two guests that cannot share its memory: proven empty. *)
  let cluster =
    Hmn_testbed.Topology.line
      ~hosts:[| host ~mem:1000. 0 |]
      ~link:Link.gigabit
  in
  let guests = [| guest ~mem:600. "a"; guest ~mem:600. "b" |] in
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.));
  let problem = Problem.make ~cluster ~venv:(Venv.create ~guests ~graph:vg) in
  let result = Solver.solve problem in
  Alcotest.(check bool) "no mapping" true (Solver.optimum result = None);
  Alcotest.(check bool) "proven infeasible" true (Solver.proven_optimal result);
  check_float "lower bound infinite" infinity result.Solver.lower_bound

let test_warm_start_accelerates () =
  (* Warm-starting with the solver's own optimum cannot change the
     answer and must not expand more nodes. *)
  let problem = tiny_problem 11 in
  let cold = Solver.solve problem in
  match cold.Solver.best_mapping with
  | None -> Alcotest.fail "expected a feasible tiny instance"
  | Some (obj, mapping) ->
    let warm = Solver.solve ~warm:[ mapping ] problem in
    (match Solver.optimum warm with
    | None -> Alcotest.fail "warm run lost the optimum"
    | Some o -> check_float "same optimum" obj o);
    Alcotest.(check bool)
      "warm expands no more nodes" true
      (warm.Solver.nodes <= cold.Solver.nodes)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_exact"
    [
      ( "bound",
        [
          Alcotest.test_case "uncapped water-filling" `Quick test_bound_uncapped;
          Alcotest.test_case "perfect balance" `Quick test_bound_perfect_balance;
          Alcotest.test_case "caps bind" `Quick test_bound_caps_bind;
          Alcotest.test_case "infeasible" `Quick test_bound_infeasible;
          Alcotest.test_case "zero demand" `Quick test_bound_zero_demand;
          Alcotest.test_case "validation" `Quick test_bound_validation;
          q prop_bound_never_exceeds_leaves;
        ] );
      ( "solver",
        [
          q prop_solver_matches_exhaustive;
          q prop_routing_mode_sound;
          Alcotest.test_case "budget exhaustion" `Quick test_budget_exhaustion;
          Alcotest.test_case "infeasible instance" `Quick test_infeasible_instance;
          Alcotest.test_case "warm start" `Quick test_warm_start_accelerates;
        ] );
    ]
