(* Tests for hmn_obs: registry semantics (counters, gauges, histogram
   bucketing), the disabled-sink no-op contract, the monotonic clock,
   the tracer's Chrome JSON output, and the cross-cutting determinism
   guarantee — a metrics-enabled sweep yields byte-identical aggregates
   at jobs=1 and jobs=4.

   Metrics and Trace are global, so every test starts by forcing the
   switch into the state it needs and resetting; names are kept unique
   per test so leftovers from earlier tests cannot alias. *)

module Metrics = Hmn_obs.Metrics
module Trace = Hmn_obs.Trace
module Clock = Hmn_prelude.Clock
module Json = Hmn_prelude.Json
module Runner = Hmn_experiments.Runner

let find_counter snap name =
  match List.assoc_opt name snap.Metrics.counters with
  | Some n -> n
  | None -> Alcotest.failf "counter %s not in snapshot" name

(* ---- registry semantics ---- *)

let test_counter_semantics () =
  Metrics.enable ();
  Metrics.reset ();
  let c = Metrics.counter "t.counter" in
  Metrics.Counter.incr c;
  Metrics.Counter.incr c;
  Metrics.Counter.add c 40;
  (* repeated lookup returns the same underlying cell *)
  Metrics.Counter.incr (Metrics.counter "t.counter");
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter total" 43 (find_counter snap "t.counter");
  Metrics.reset ();
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "reset zeroes" 0 (find_counter snap "t.counter");
  (* the handle stays valid across reset *)
  Metrics.Counter.incr c;
  Alcotest.(check int) "handle survives reset" 1
    (find_counter (Metrics.snapshot ()) "t.counter")

let test_gauge_keeps_maximum () =
  Metrics.enable ();
  Metrics.reset ();
  let g = Metrics.gauge "t.gauge" in
  Metrics.Gauge.observe g 3;
  Metrics.Gauge.observe g 11;
  Metrics.Gauge.observe g 7;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "max observed" 11
    (List.assoc "t.gauge" snap.Metrics.gauge_maxima)

let test_histogram_buckets () =
  Metrics.enable ();
  Metrics.reset ();
  let h = Metrics.histogram ~bounds:[| 1.; 2. |] "t.hist" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 1.0; 1.5; 3.0 ];
  let snap = Metrics.snapshot () in
  let hs = List.assoc "t.hist" snap.Metrics.histograms in
  (* bounds are upper-inclusive: 0.5 and 1.0 -> le 1, 1.5 -> le 2,
     3.0 -> overflow *)
  Alcotest.(check (array (float 0.))) "bounds kept" [| 1.; 2. |] hs.Metrics.bounds;
  Alcotest.(check (list int)) "bucket counts" [ 2; 1; 1 ]
    (Array.to_list hs.Metrics.bucket_counts);
  Alcotest.(check int) "observation count" 4 hs.Metrics.observations

let test_render_stable () =
  Metrics.enable ();
  Metrics.reset ();
  Metrics.Counter.incr (Metrics.counter "t.render.b");
  Metrics.Counter.add (Metrics.counter "t.render.a") 2;
  let r = Metrics.render (Metrics.snapshot ()) in
  let idx needle =
    let n = String.length needle in
    let rec find i =
      if i + n > String.length r then Alcotest.failf "%S not rendered" needle
      else if String.sub r i n = needle then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "sorted by name" true (idx "t.render.a" < idx "t.render.b");
  Alcotest.(check bool) "value rendered" true (idx "t.render.a 2" >= 0)

(* ---- disabled sink ---- *)

let test_disabled_is_inert () =
  Metrics.enable ();
  Metrics.reset ();
  Metrics.disable ();
  (* handles created while disabled are inert: no registration, no
     counting — even if metrics are enabled later. *)
  let c = Metrics.counter "t.inert" in
  Metrics.Counter.incr c;
  Metrics.Gauge.observe (Metrics.gauge "t.inert.g") 5;
  Metrics.Histogram.observe (Metrics.histogram "t.inert.h") 1.0;
  Metrics.enable ();
  Metrics.Counter.add c 100;
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int)) "no counter registered" None
    (List.assoc_opt "t.inert" snap.Metrics.counters);
  Alcotest.(check (option int)) "no gauge registered" None
    (List.assoc_opt "t.inert.g" snap.Metrics.gauge_maxima);
  Alcotest.(check bool) "no histogram registered" true
    (List.assoc_opt "t.inert.h" snap.Metrics.histograms = None)

(* ---- monotonic clock ---- *)

let test_clock_monotonic () =
  let t0 = Clock.now_s () in
  (* burn a little time so the difference is strictly observable on any
     reasonable clock resolution *)
  let acc = ref 0. in
  for i = 1 to 10_000 do
    acc := !acc +. float_of_int i
  done;
  ignore (Sys.opaque_identity !acc);
  let t1 = Clock.now_s () in
  Alcotest.(check bool) "time advances" true (t1 >= t0);
  Alcotest.(check bool) "elapsed non-negative" true (Clock.elapsed_s t0 >= 0.);
  let x, dt = Clock.time (fun () -> 42) in
  Alcotest.(check int) "time returns value" 42 x;
  Alcotest.(check bool) "measured duration non-negative" true (dt >= 0.)

(* ---- tracer ---- *)

let test_trace_spans_and_json () =
  Trace.enable ();
  Trace.clear ();
  let r =
    Trace.with_span ~cat:"test" ~args:[ ("k", "v") ] "outer" (fun () ->
        Trace.with_span "inner" (fun () -> 7))
  in
  Alcotest.(check int) "body result" 7 r;
  Alcotest.(check int) "two spans buffered" 2 (Trace.span_count ());
  let path = Filename.temp_file "hmn_trace" ".json" in
  Trace.write ~path;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (match Json.of_string text with
  | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  | Ok doc ->
    let open Json in
    let events =
      match
        let* evs = member "traceEvents" doc in
        to_list evs
      with
      | Ok evs -> evs
      | Error e -> Alcotest.failf "traceEvents: %s" e
    in
    Alcotest.(check int) "two events" 2 (List.length events);
    List.iter
      (fun ev ->
        let str_field f =
          match
            let* v = member f ev in
            to_str v
          with
          | Ok s -> s
          | Error e -> Alcotest.failf "field %s: %s" f e
        in
        Alcotest.(check string) "complete event" "X" (str_field "ph");
        let num_field f =
          match
            let* v = member f ev in
            to_float v
          with
          | Ok n -> n
          | Error e -> Alcotest.failf "field %s: %s" f e
        in
        Alcotest.(check bool) "ts non-negative" true (num_field "ts" >= 0.);
        Alcotest.(check bool) "dur non-negative" true (num_field "dur" >= 0.))
      events);
  Trace.disable ();
  Trace.clear ()

let test_trace_disabled_records_nothing () =
  Trace.disable ();
  Trace.clear ();
  let r = Trace.with_span "ghost" (fun () -> 3) in
  Alcotest.(check int) "body still runs" 3 r;
  Alcotest.(check int) "nothing buffered" 0 (Trace.span_count ())

(* ---- cross-domain determinism ---- *)

(* The observability contract mirrors the sweep's: aggregates must not
   depend on how the work was spread over domains. Run the same tiny
   metrics-enabled sweep at jobs=1 and jobs=4 and byte-compare the
   rendered registry. *)
let test_metrics_jobs_determinism () =
  let config jobs =
    {
      Runner.reps = 1;
      max_tries = 5;
      base_seed = 777;
      app = Hmn_emulation.App.default;
      simulate = false;
      mappers =
        List.filter
          (fun m -> List.mem m.Hmn_core.Mapper.name [ "HMN"; "R" ])
          (Hmn_core.Registry.paper ~max_tries:5 ());
      verbose = false;
      jobs;
      validate = false;
      metrics = true;
      trace = None;
    }
  in
  let rendered jobs =
    Metrics.enable ();
    Metrics.reset ();
    ignore (Runner.run ~config:(config jobs) ());
    Metrics.render (Metrics.snapshot ())
  in
  let seq = rendered 1 in
  let par = rendered 4 in
  Metrics.disable ();
  Alcotest.(check bool) "counters were recorded" true
    (String.length seq > 0 && String.contains seq '\n');
  Alcotest.(check string) "aggregates identical across jobs" seq par

let () =
  Alcotest.run "hmn_obs"
    [
      ( "metrics registry",
        [
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
          Alcotest.test_case "gauge keeps maximum" `Quick test_gauge_keeps_maximum;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "render stable" `Quick test_render_stable;
          Alcotest.test_case "disabled sink is inert" `Quick test_disabled_is_inert;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "tracer",
        [
          Alcotest.test_case "spans and JSON" `Quick test_trace_spans_and_json;
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_records_nothing;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 aggregates" `Quick
            test_metrics_jobs_determinism;
        ] );
    ]
