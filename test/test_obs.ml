(* Tests for hmn_obs: registry semantics (counters, gauges, histogram
   bucketing), the disabled-sink no-op contract, the monotonic clock,
   the tracer's Chrome JSON output, and the cross-cutting determinism
   guarantee — a metrics-enabled sweep yields byte-identical aggregates
   at jobs=1 and jobs=4.

   Metrics and Trace are global, so every test starts by forcing the
   switch into the state it needs and resetting; names are kept unique
   per test so leftovers from earlier tests cannot alias. *)

module Metrics = Hmn_obs.Metrics
module Trace = Hmn_obs.Trace
module Clock = Hmn_prelude.Clock
module Json = Hmn_prelude.Json
module Runner = Hmn_experiments.Runner

let find_counter snap name =
  match List.assoc_opt name snap.Metrics.counters with
  | Some n -> n
  | None -> Alcotest.failf "counter %s not in snapshot" name

(* ---- registry semantics ---- *)

let test_counter_semantics () =
  Metrics.enable ();
  Metrics.reset ();
  let c = Metrics.counter "t.counter" in
  Metrics.Counter.incr c;
  Metrics.Counter.incr c;
  Metrics.Counter.add c 40;
  (* repeated lookup returns the same underlying cell *)
  Metrics.Counter.incr (Metrics.counter "t.counter");
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "counter total" 43 (find_counter snap "t.counter");
  Metrics.reset ();
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "reset zeroes" 0 (find_counter snap "t.counter");
  (* the handle stays valid across reset *)
  Metrics.Counter.incr c;
  Alcotest.(check int) "handle survives reset" 1
    (find_counter (Metrics.snapshot ()) "t.counter")

let test_gauge_keeps_maximum () =
  Metrics.enable ();
  Metrics.reset ();
  let g = Metrics.gauge "t.gauge" in
  Metrics.Gauge.observe g 3;
  Metrics.Gauge.observe g 11;
  Metrics.Gauge.observe g 7;
  let snap = Metrics.snapshot () in
  Alcotest.(check int) "max observed" 11
    (List.assoc "t.gauge" snap.Metrics.gauge_maxima)

let test_histogram_buckets () =
  Metrics.enable ();
  Metrics.reset ();
  let h = Metrics.histogram ~bounds:[| 1.; 2. |] "t.hist" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 1.0; 1.5; 3.0 ];
  let snap = Metrics.snapshot () in
  let hs = List.assoc "t.hist" snap.Metrics.histograms in
  (* bounds are upper-inclusive: 0.5 and 1.0 -> le 1, 1.5 -> le 2,
     3.0 -> overflow *)
  Alcotest.(check (array (float 0.))) "bounds kept" [| 1.; 2. |] hs.Metrics.bounds;
  Alcotest.(check (list int)) "bucket counts" [ 2; 1; 1 ]
    (Array.to_list hs.Metrics.bucket_counts);
  Alcotest.(check int) "observation count" 4 hs.Metrics.observations

let test_render_stable () =
  Metrics.enable ();
  Metrics.reset ();
  Metrics.Counter.incr (Metrics.counter "t.render.b");
  Metrics.Counter.add (Metrics.counter "t.render.a") 2;
  let r = Metrics.render (Metrics.snapshot ()) in
  let idx needle =
    let n = String.length needle in
    let rec find i =
      if i + n > String.length r then Alcotest.failf "%S not rendered" needle
      else if String.sub r i n = needle then i
      else find (i + 1)
    in
    find 0
  in
  Alcotest.(check bool) "sorted by name" true (idx "t.render.a" < idx "t.render.b");
  Alcotest.(check bool) "value rendered" true (idx "t.render.a 2" >= 0)

(* ---- disabled sink ---- *)

let test_disabled_is_inert () =
  Metrics.enable ();
  Metrics.reset ();
  Metrics.disable ();
  (* handles created while disabled are inert: no registration, no
     counting — even if metrics are enabled later. *)
  let c = Metrics.counter "t.inert" in
  Metrics.Counter.incr c;
  Metrics.Gauge.observe (Metrics.gauge "t.inert.g") 5;
  Metrics.Histogram.observe (Metrics.histogram "t.inert.h") 1.0;
  Metrics.enable ();
  Metrics.Counter.add c 100;
  let snap = Metrics.snapshot () in
  Alcotest.(check (option int)) "no counter registered" None
    (List.assoc_opt "t.inert" snap.Metrics.counters);
  Alcotest.(check (option int)) "no gauge registered" None
    (List.assoc_opt "t.inert.g" snap.Metrics.gauge_maxima);
  Alcotest.(check bool) "no histogram registered" true
    (List.assoc_opt "t.inert.h" snap.Metrics.histograms = None)

(* ---- monotonic clock ---- *)

let test_clock_monotonic () =
  let t0 = Clock.now_s () in
  (* burn a little time so the difference is strictly observable on any
     reasonable clock resolution *)
  let acc = ref 0. in
  for i = 1 to 10_000 do
    acc := !acc +. float_of_int i
  done;
  ignore (Sys.opaque_identity !acc);
  let t1 = Clock.now_s () in
  Alcotest.(check bool) "time advances" true (t1 >= t0);
  Alcotest.(check bool) "elapsed non-negative" true (Clock.elapsed_s t0 >= 0.);
  let x, dt = Clock.time (fun () -> 42) in
  Alcotest.(check int) "time returns value" 42 x;
  Alcotest.(check bool) "measured duration non-negative" true (dt >= 0.)

(* ---- tracer ---- *)

let test_trace_spans_and_json () =
  Trace.enable ();
  Trace.clear ();
  let r =
    Trace.with_span ~cat:"test" ~args:[ ("k", "v") ] "outer" (fun () ->
        Trace.with_span "inner" (fun () -> 7))
  in
  Alcotest.(check int) "body result" 7 r;
  Alcotest.(check int) "two spans buffered" 2 (Trace.span_count ());
  let path = Filename.temp_file "hmn_trace" ".json" in
  Trace.write ~path;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  (match Json.of_string text with
  | Error e -> Alcotest.failf "trace JSON does not parse: %s" e
  | Ok doc ->
    let open Json in
    let events =
      match
        let* evs = member "traceEvents" doc in
        to_list evs
      with
      | Ok evs -> evs
      | Error e -> Alcotest.failf "traceEvents: %s" e
    in
    Alcotest.(check int) "two events" 2 (List.length events);
    List.iter
      (fun ev ->
        let str_field f =
          match
            let* v = member f ev in
            to_str v
          with
          | Ok s -> s
          | Error e -> Alcotest.failf "field %s: %s" f e
        in
        Alcotest.(check string) "complete event" "X" (str_field "ph");
        let num_field f =
          match
            let* v = member f ev in
            to_float v
          with
          | Ok n -> n
          | Error e -> Alcotest.failf "field %s: %s" f e
        in
        Alcotest.(check bool) "ts non-negative" true (num_field "ts" >= 0.);
        Alcotest.(check bool) "dur non-negative" true (num_field "dur" >= 0.))
      events);
  Trace.disable ();
  Trace.clear ()

let test_trace_disabled_records_nothing () =
  Trace.disable ();
  Trace.clear ();
  let r = Trace.with_span "ghost" (fun () -> 3) in
  Alcotest.(check int) "body still runs" 3 r;
  Alcotest.(check int) "nothing buffered" 0 (Trace.span_count ())

(* ---- cross-domain determinism ---- *)

(* The observability contract mirrors the sweep's: aggregates must not
   depend on how the work was spread over domains. Run the same tiny
   metrics-enabled sweep at jobs=1 and jobs=4 and byte-compare the
   rendered registry. *)
let test_metrics_jobs_determinism () =
  let config jobs =
    {
      Runner.reps = 1;
      max_tries = 5;
      base_seed = 777;
      app = Hmn_emulation.App.default;
      simulate = false;
      mappers =
        List.filter
          (fun m -> List.mem m.Hmn_core.Mapper.name [ "HMN"; "R" ])
          (Hmn_core.Registry.paper ~max_tries:5 ());
      verbose = false;
      jobs;
      validate = false;
      metrics = true;
      trace = None;
    }
  in
  let rendered jobs =
    Metrics.enable ();
    Metrics.reset ();
    ignore (Runner.run ~config:(config jobs) ());
    Metrics.render (Metrics.snapshot ())
  in
  let seq = rendered 1 in
  let par = rendered 4 in
  Metrics.disable ();
  Alcotest.(check bool) "counters were recorded" true
    (String.length seq > 0 && String.contains seq '\n');
  Alcotest.(check string) "aggregates identical across jobs" seq par

(* ---- quantile histograms ---- *)

module Quantile = Hmn_obs.Quantile

let test_quantile_exact_below_precision () =
  (* values below 2^p land in unit-width buckets: every quantile of a
     small-value multiset is exact *)
  let q = Quantile.create () in
  List.iter (Quantile.record q) [ 5; 1; 9; 5; 3 ];
  Alcotest.(check int) "count" 5 (Quantile.count q);
  Alcotest.(check int) "p0 = min" 1 (Quantile.quantile q 0.);
  Alcotest.(check int) "median" 5 (Quantile.quantile q 0.5);
  Alcotest.(check int) "max" 9 (Quantile.max_value q);
  Alcotest.(check int) "negative clamps to 0" 0
    (let q' = Quantile.create () in
     Quantile.record q' (-3);
     Quantile.quantile q' 1.)

let test_quantile_relative_error () =
  (* a single large value: the reported quantile over-estimates by at
     most the bucket's relative width 2^-(p-1) *)
  let p = 7 in
  let q = Quantile.create ~precision:p () in
  let bound = 1. /. float_of_int (1 lsl (p - 1)) in
  List.iter
    (fun v ->
      let q' = Quantile.copy q in
      Quantile.record q' v;
      let est = Quantile.quantile q' 0.5 in
      Alcotest.(check bool)
        (Printf.sprintf "estimate %d covers %d" est v)
        true (est >= v);
      Alcotest.(check bool)
        (Printf.sprintf "estimate %d within %g of %d" est bound v)
        true
        (float_of_int (est - v) <= bound *. float_of_int v))
    [ 1; 127; 128; 129; 1000; 123_456; 987_654_321; max_int / 2 ]

let prop_quantile_monotone_in_q =
  QCheck.Test.make ~name:"quantile is monotone in q" ~count:200
    QCheck.(pair small_nat (list small_nat))
    (fun (seed, values) ->
      let q = Quantile.create () in
      (* mix small and large magnitudes deterministically off the seed *)
      List.iteri
        (fun i v ->
          Quantile.record q (v * ((i + seed) mod 5 |> fun k -> 1 lsl (4 * k))))
        values;
      let qs = [ 0.; 0.1; 0.25; 0.5; 0.9; 0.99; 0.999; 1. ] in
      let vals = List.map (Quantile.quantile q) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b && mono rest
        | _ -> true
      in
      mono vals)

let prop_quantile_merge_exact =
  QCheck.Test.make
    ~name:"partitioned recordings merge to byte-identical quantiles"
    ~count:200
    QCheck.(pair (list small_nat) (list small_nat))
    (fun (xs, ys) ->
      let one = Quantile.create () in
      List.iter (Quantile.record one) (xs @ ys);
      let a = Quantile.create () and b = Quantile.create () in
      List.iter (Quantile.record a) xs;
      List.iter (Quantile.record b) ys;
      (* merge in the "wrong" order too: must not matter *)
      let merged = Quantile.create () in
      Quantile.merge_into ~into:merged b;
      Quantile.merge_into ~into:merged a;
      List.for_all
        (fun p -> Quantile.quantile merged p = Quantile.quantile one p)
        [ 0.; 0.5; 0.9; 0.99; 1. ]
      && Quantile.count merged = Quantile.count one)

let test_quantile_merge_guards () =
  let a = Quantile.create ~precision:7 () in
  let b = Quantile.create ~precision:8 () in
  Alcotest.check_raises "precision mismatch"
    (Invalid_argument "Quantile.merge_into: precision mismatch (7 vs 8)")
    (fun () -> Quantile.merge_into ~into:a b)

(* ---- time series ---- *)

module Timeseries = Hmn_obs.Timeseries

let test_timeseries_ring () =
  let ts = Timeseries.create ~capacity:4 ~columns:[ "a"; "b" ] () in
  for i = 0 to 5 do
    Timeseries.sample ts ~t_s:(float_of_int i) [| float_of_int i; 0.5 |]
  done;
  Alcotest.(check int) "retained" 4 (Timeseries.length ts);
  Alcotest.(check int) "total" 6 (Timeseries.total ts);
  Alcotest.(check int) "dropped" 2 (Timeseries.dropped ts);
  let stamps = ref [] in
  Timeseries.iter ts (fun ~t_s _ -> stamps := t_s :: !stamps);
  Alcotest.(check (list (float 0.))) "oldest first, window = last 4"
    [ 2.; 3.; 4.; 5. ] (List.rev !stamps);
  let csv = Timeseries.to_csv ts in
  Alcotest.(check bool) "header" true
    (String.length csv > 8 && String.sub csv 0 8 = "t_s,a,b\n");
  (* rows are copied on sample: mutating the caller's array later must
     not corrupt the series *)
  let row = [| 7.; 7. |] in
  Timeseries.sample ts ~t_s:6. row;
  row.(0) <- 999.;
  let last = ref [||] in
  Timeseries.iter ts (fun ~t_s:_ r -> last := Array.copy r);
  Alcotest.(check (float 0.)) "copied row" 7. !last.(0)

(* ---- exposition ---- *)

module Expose = Hmn_obs.Expose

let test_expose_render () =
  Metrics.enable ();
  Metrics.reset ();
  Metrics.Counter.add (Metrics.counter "t.expose/ops") 3;
  Metrics.Gauge.observe (Metrics.gauge "t.expose.depth") 12;
  let h = Metrics.histogram ~bounds:[| 1.; 10. |] "t.expose.lat" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 2.; 20. ];
  let text = Expose.render ~namespace:"tt" (Metrics.snapshot ()) in
  Metrics.disable ();
  let has needle =
    let n = String.length needle in
    let rec find i =
      i + n <= String.length text
      && (String.sub text i n = needle || find (i + 1))
    in
    find 0
  in
  List.iter
    (fun line ->
      Alcotest.(check bool) (Printf.sprintf "renders %S" line) true (has line))
    [
      "# TYPE tt_t_expose_ops_total counter";
      "tt_t_expose_ops_total 3";
      "tt_t_expose_depth_max 12";
      "tt_t_expose_lat_bucket{le=\"1\"} 1";
      "tt_t_expose_lat_bucket{le=\"10\"} 2";
      "tt_t_expose_lat_bucket{le=\"+Inf\"} 3";
      "tt_t_expose_lat_count 3";
      "tt_t_expose_lat_sum 22.5";
    ]

let test_expose_metric_name () =
  Alcotest.(check string) "sanitized + namespaced" "hmn_a_b_c"
    (Expose.metric_name "a.b/c");
  Alcotest.(check string) "no namespace" "a_b" (Expose.metric_name ~namespace:"" "a.b");
  (* a leading digit is illegal bare; the guard prefixes an underscore *)
  Alcotest.(check string) "leading digit guarded" "_9lives"
    (Expose.metric_name ~namespace:"" "9lives")

let test_log_bounds () =
  let b = Metrics.log_bounds ~lo:1e-3 ~hi:1e4 ~per_decade:3 in
  Alcotest.(check int) "22 edges" 22 (Array.length b);
  Alcotest.(check (float 1e-12)) "first edge" 1e-3 b.(0);
  Alcotest.(check (float 1e-9)) "last edge" 1e4 b.(Array.length b - 1);
  Array.iteri
    (fun i v -> if i > 0 then
        Alcotest.(check bool) "strictly increasing" true (v > b.(i - 1)))
    b;
  (* bit-identical across call sites: computed from integer exponents *)
  Alcotest.(check bool) "deterministic" true
    (Metrics.log_bounds ~lo:1e-3 ~hi:1e4 ~per_decade:3 = b)

let test_histogram_sum_milli () =
  Metrics.enable ();
  Metrics.reset ();
  let h = Metrics.histogram ~bounds:[| 1. |] "t.summilli" in
  List.iter (Metrics.Histogram.observe h) [ 0.0015; 2.5; 0.25 ];
  let snap = Metrics.snapshot () in
  let hs = List.assoc "t.summilli" snap.Metrics.histograms in
  Metrics.disable ();
  (* 2 + 2500 + 250: each observation contributes round (v * 1000) *)
  Alcotest.(check int) "integer milliunit sum" 2752 hs.Metrics.sum_milli

(* ---- trace counters, ordering and escaping ---- *)

let test_trace_counters_and_escaping () =
  Trace.enable ();
  Trace.clear ();
  (* counters buffered out of order and with a hostile name: the writer
     must sort deterministically and keep the JSON parseable *)
  Trace.counter ~name:"online/lbf" ~ts_us:20. [ ("v", 2.) ];
  Trace.counter ~name:"online/lbf" ~ts_us:10. [ ("v", 1.) ];
  Trace.counter ~name:"bad\xffname\n" ~ts_us:10. [ ("v", 0.) ];
  ignore (Trace.with_span ~args:[ ("k", "va\x01l") ] "span" (fun () -> ()));
  Alcotest.(check int) "four events" 4 (Trace.span_count ());
  let path = Filename.temp_file "hmn_trace_c" ".json" in
  Trace.write ~path;
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Trace.disable ();
  Trace.clear ();
  String.iter
    (fun c ->
      Alcotest.(check bool) "printable ASCII only" true
        (Char.code c >= 0x20 && Char.code c < 0x7F || c = '\n'))
    text;
  match Hmn_prelude.Json.of_string text with
  | Error e -> Alcotest.failf "counter trace does not parse: %s" e
  | Ok doc ->
    let open Hmn_prelude.Json in
    let events =
      match
        let* evs = member "traceEvents" doc in
        to_list evs
      with
      | Ok evs -> evs
      | Error e -> Alcotest.failf "traceEvents: %s" e
    in
    let phases =
      List.map
        (fun ev ->
          match
            let* v = member "ph" ev in
            to_str v
          with
          | Ok s -> s
          | Error e -> Alcotest.failf "ph: %s" e)
        events
    in
    (* total order: both ts=10 counters before the ts=20 one; names
       break the tie at ts=10 *)
    Alcotest.(check (list string)) "counter phases sorted with span" [ "C"; "C"; "C"; "X" ]
      (List.sort compare phases);
    let stamps =
      List.filter_map
        (fun ev ->
          match
            let* p = member "ph" ev in
            let* p = to_str p in
            if p <> "C" then Ok None
            else
              let* ts = member "ts" ev in
              let* ts = to_float ts in
              Ok (Some ts)
          with
          | Ok x -> x
          | Error e -> Alcotest.failf "ts: %s" e)
        events
    in
    Alcotest.(check (list (float 0.))) "counters time-ordered" [ 10.; 10.; 20. ]
      stamps

let test_trace_write_deterministic () =
  (* same buffered content, two writes: byte-identical files *)
  let fill () =
    Trace.enable ();
    Trace.clear ();
    Trace.counter ~name:"c" ~ts_us:5. [ ("v", 1.); ("w", 2.) ];
    Trace.counter ~name:"b" ~ts_us:5. [ ("v", 3.) ];
    let path = Filename.temp_file "hmn_trace_d" ".json" in
    Trace.write ~path;
    let ic = open_in_bin path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove path;
    Trace.disable ();
    Trace.clear ();
    text
  in
  Alcotest.(check string) "byte-identical rewrites" (fill ()) (fill ())

let () =
  Alcotest.run "hmn_obs"
    [
      ( "metrics registry",
        [
          Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
          Alcotest.test_case "gauge keeps maximum" `Quick test_gauge_keeps_maximum;
          Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
          Alcotest.test_case "render stable" `Quick test_render_stable;
          Alcotest.test_case "disabled sink is inert" `Quick test_disabled_is_inert;
        ] );
      ( "clock",
        [ Alcotest.test_case "monotonic" `Quick test_clock_monotonic ] );
      ( "tracer",
        [
          Alcotest.test_case "spans and JSON" `Quick test_trace_spans_and_json;
          Alcotest.test_case "disabled records nothing" `Quick
            test_trace_disabled_records_nothing;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "exact below precision" `Quick
            test_quantile_exact_below_precision;
          Alcotest.test_case "relative error bound" `Quick
            test_quantile_relative_error;
          QCheck_alcotest.to_alcotest prop_quantile_monotone_in_q;
          QCheck_alcotest.to_alcotest prop_quantile_merge_exact;
          Alcotest.test_case "merge guards" `Quick test_quantile_merge_guards;
        ] );
      ( "timeseries",
        [ Alcotest.test_case "ring buffer" `Quick test_timeseries_ring ] );
      ( "expose",
        [
          Alcotest.test_case "prometheus render" `Quick test_expose_render;
          Alcotest.test_case "metric names" `Quick test_expose_metric_name;
          Alcotest.test_case "log bounds" `Quick test_log_bounds;
          Alcotest.test_case "histogram milli sum" `Quick
            test_histogram_sum_milli;
        ] );
      ( "trace counters",
        [
          Alcotest.test_case "ordering and escaping" `Quick
            test_trace_counters_and_escaping;
          Alcotest.test_case "deterministic write" `Quick
            test_trace_write_deterministic;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "jobs=1 vs jobs=4 aggregates" `Quick
            test_metrics_jobs_determinism;
        ] );
    ]
