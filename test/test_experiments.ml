(* Tests for hmn_experiments: scenario definitions, instance building,
   a miniature end-to-end sweep, and the table/figure renderers. *)

module Scenario = Hmn_experiments.Scenario
module Setup = Hmn_experiments.Setup
module Runner = Hmn_experiments.Runner
module Tables = Hmn_experiments.Tables
module Figure1 = Hmn_experiments.Figure1
module Csv = Hmn_experiments.Csv

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_setup_constants () =
  Alcotest.(check int) "40 hosts" 40 Setup.n_hosts;
  Alcotest.(check int) "5x8 torus" 40 (Setup.torus_rows * Setup.torus_cols);
  Alcotest.(check int) "64-port switches" 64 Setup.switch_ports;
  Alcotest.(check int) "30 reps in the paper" 30 Setup.paper_repetitions;
  Alcotest.(check (float 1e-9)) "gigabit" 1000.
    Setup.physical_link.Hmn_testbed.Link.bandwidth_mbps;
  Alcotest.(check bool) "table renders" true (String.length (Setup.render ()) > 100)

let test_paper_scenarios () =
  let scenarios = Scenario.paper_scenarios in
  Alcotest.(check int) "16 rows" 16 (List.length scenarios);
  let high =
    List.filter (fun s -> s.Scenario.workload = Scenario.High_level) scenarios
  in
  let low = List.filter (fun s -> s.Scenario.workload = Scenario.Low_level) scenarios in
  Alcotest.(check int) "12 high-level" 12 (List.length high);
  Alcotest.(check int) "4 low-level" 4 (List.length low);
  List.iter
    (fun s ->
      Alcotest.(check bool) "low-level density is 0.01" true (s.Scenario.density = 0.01))
    low;
  (* Guest counts span the paper's 100-400 / 800-2000. *)
  let counts = List.map Scenario.n_guests scenarios in
  Alcotest.(check int) "min" 100 (List.fold_left min max_int counts);
  Alcotest.(check int) "max" 2000 (List.fold_left max 0 counts)

let test_scenario_labels () =
  let s = { Scenario.ratio = 2.5; density = 0.015; workload = Scenario.High_level } in
  Alcotest.(check string) "fractional ratio" "2.5:1 0.015" (Scenario.label s);
  let s = { Scenario.ratio = 20.; density = 0.01; workload = Scenario.Low_level } in
  Alcotest.(check string) "integer ratio" "20:1 0.01" (Scenario.label s);
  Alcotest.(check string) "torus" "2-D Torus" (Scenario.cluster_label Scenario.Torus);
  Alcotest.(check string) "switched" "Switched"
    (Scenario.cluster_label Scenario.Switched)

let test_build_deterministic () =
  let s = { Scenario.ratio = 2.5; density = 0.02; workload = Scenario.High_level } in
  let p1 = Scenario.build s Scenario.Torus ~seed:77 in
  let p2 = Scenario.build s Scenario.Torus ~seed:77 in
  Alcotest.(check int) "same guests"
    (Hmn_vnet.Virtual_env.n_guests p1.Hmn_mapping.Problem.venv)
    (Hmn_vnet.Virtual_env.n_guests p2.Hmn_mapping.Problem.venv);
  Alcotest.(check (float 1e-12)) "same total demand"
    (Hmn_vnet.Virtual_env.total_demand p1.Hmn_mapping.Problem.venv).Hmn_testbed.Resources.mips
    (Hmn_vnet.Virtual_env.total_demand p2.Hmn_mapping.Problem.venv).Hmn_testbed.Resources.mips;
  let p3 = Scenario.build s Scenario.Torus ~seed:78 in
  Alcotest.(check bool) "different seed differs" true
    ((Hmn_vnet.Virtual_env.total_demand p1.Hmn_mapping.Problem.venv).Hmn_testbed.Resources.mips
    <> (Hmn_vnet.Virtual_env.total_demand p3.Hmn_mapping.Problem.venv).Hmn_testbed.Resources.mips)

let test_build_cluster_kinds () =
  let rng = Hmn_rng.Rng.create 5 in
  let torus = Scenario.build_cluster Scenario.Torus ~rng in
  Alcotest.(check int) "torus nodes" 40 (Hmn_testbed.Cluster.n_nodes torus);
  let switched = Scenario.build_cluster Scenario.Switched ~rng in
  Alcotest.(check int) "switched hosts" 40 (Hmn_testbed.Cluster.n_hosts switched);
  Alcotest.(check int) "switched adds a switch" 41
    (Hmn_testbed.Cluster.n_nodes switched)

(* A miniature sweep: 2 scenarios' worth of work via a reduced config.
   Uses the full 16-scenario list but with 1 repetition and only HMN to
   stay fast would still be heavy, so restrict mappers and reps and
   check the bookkeeping on the small scenarios only by filtering the
   cells afterwards. *)
let mini_results =
  lazy
    (let config =
       {
         Runner.reps = 1;
         max_tries = 20;
         base_seed = 123;
         app = Hmn_emulation.App.default;
         simulate = true;
         mappers = Hmn_core.Registry.paper ~max_tries:20 ();
         verbose = false;
         jobs = 1;
         validate = true;
         metrics = false;
         trace = None;
       }
     in
     Runner.run ~config ())

let test_runner_cells_complete () =
  let results = Lazy.force mini_results in
  Alcotest.(check int) "16 scenarios" 16 (Array.length results.Runner.scenarios);
  (* Every (scenario, cluster, mapper) cell must exist with reps
     accounted for. *)
  Array.iteri
    (fun idx _ ->
      List.iter
        (fun cluster ->
          match Runner.cell results ~scenario:idx ~cluster ~mapper:"HMN" with
          | None -> Alcotest.failf "missing cell %d" idx
          | Some c ->
            Alcotest.(check int) "reps accounted" 1 (c.Runner.successes + c.Runner.failures))
        [ Scenario.Torus; Scenario.Switched ])
    results.Runner.scenarios

let test_runner_simulation_recorded () =
  let results = Lazy.force mini_results in
  (* Each success contributed a makespan observation and a correlation
     point. *)
  let successes = ref 0 in
  Hashtbl.iter (fun _ c -> successes := !successes + c.Runner.successes)
    results.Runner.cells;
  Alcotest.(check int) "correlation count = successes" !successes
    (Hmn_emulation.Correlate.count results.Runner.correlation);
  Alcotest.(check bool) "mostly successful" true (!successes > 20)

let test_tables_render () =
  let results = Lazy.force mini_results in
  let t2 = Tables.table2 results in
  Alcotest.(check bool) "table2 mentions scenario" true (contains ~needle:"2.5:1 0.015" t2);
  Alcotest.(check bool) "table2 has failures row" true (contains ~needle:"Failures" t2);
  let t3 = Tables.table3 results in
  Alcotest.(check bool) "table3 mentions cluster" true (contains ~needle:"2-D Torus" t3);
  let mt = Tables.mapping_time results in
  Alcotest.(check bool) "mapping time renders" true (String.length mt > 100);
  let corr = Tables.correlation_report results in
  Alcotest.(check bool) "correlation mentions Pearson" true
    (contains ~needle:"Pearson" corr)

let test_csv_export () =
  let results = Lazy.force mini_results in
  let csv = Csv.cells results in
  let lines = String.split_on_char '\n' (String.trim csv) in
  (* header + 16 scenarios x 2 clusters x 4 mappers *)
  Alcotest.(check int) "line count" 129 (List.length lines);
  Alcotest.(check bool) "header" true
    (contains ~needle:"scenario,cluster,heuristic" (List.hd lines))

let test_paper_check () =
  let results = Lazy.force mini_results in
  let verdicts = Hmn_experiments.Paper_check.check_all results in
  Alcotest.(check int) "seven claims" 7 (List.length verdicts);
  let find claim_fragment =
    List.find
      (fun v -> contains ~needle:claim_fragment v.Hmn_experiments.Paper_check.claim)
      verdicts
  in
  (* The robust claims must hold even at a single repetition. *)
  Alcotest.(check bool) "HMN beats R/RA" true
    (find "beats R and RA").Hmn_experiments.Paper_check.holds;
  Alcotest.(check bool) "R ~ RA" true
    (find "within 10%").Hmn_experiments.Paper_check.holds;
  Alcotest.(check bool) "correlation" true
    (find "Pearson").Hmn_experiments.Paper_check.holds;
  Alcotest.(check bool) "render mentions verdicts" true
    (contains ~needle:"[ok]"
       (Hmn_experiments.Paper_check.render verdicts))

(* The parallel sweep's contract: any jobs count yields byte-identical
   aggregates. Exercise it on a deliberately tiny configuration (1 rep,
   max_tries 5, only HMN and the R baseline) with more domains than
   there are cores, and compare the rendered tables — the user-visible
   output — rather than internal state. map_time is wall-clock and
   excluded by construction (Tables 2/3 and the correlation report do
   not show it). *)
let test_jobs_determinism () =
  let config jobs =
    {
      Runner.reps = 1;
      max_tries = 5;
      base_seed = 777;
      app = Hmn_emulation.App.default;
      simulate = true;
      mappers =
        List.filter
          (fun m -> List.mem m.Hmn_core.Mapper.name [ "HMN"; "R" ])
          (Hmn_core.Registry.paper ~max_tries:5 ());
      verbose = false;
      jobs;
      validate = false;
      metrics = false;
      trace = None;
    }
  in
  let seq = Runner.run ~config:(config 1) () in
  let par = Runner.run ~config:(config 4) () in
  Alcotest.(check string) "table2 identical" (Tables.table2 seq) (Tables.table2 par);
  Alcotest.(check string) "table3 identical" (Tables.table3 seq) (Tables.table3 par);
  Alcotest.(check string) "correlation identical"
    (Tables.correlation_report seq)
    (Tables.correlation_report par)

let test_figure1_small () =
  let points =
    Figure1.run ~sweep:[ (50, 0.05, Scenario.High_level); (100, 0.02, Scenario.High_level) ]
      ~reps:2 ~seed:9 ()
  in
  Alcotest.(check int) "two points" 2 (List.length points);
  List.iter
    (fun p ->
      Alcotest.(check bool) "positive time" true (p.Figure1.mean_s > 0.);
      Alcotest.(check int) "reps recorded" 2 p.Figure1.reps;
      Alcotest.(check bool) "links counted" true (p.Figure1.n_vlinks > 0))
    points;
  let render = Figure1.render points in
  Alcotest.(check bool) "render mentions links" true (contains ~needle:"links" render);
  let csv = Csv.figure1 points in
  Alcotest.(check int) "csv lines" 3 (List.length (String.split_on_char '\n' (String.trim csv)))

let () =
  Alcotest.run "hmn_experiments"
    [
      ( "setup & scenarios",
        [
          Alcotest.test_case "setup constants" `Quick test_setup_constants;
          Alcotest.test_case "paper scenarios" `Quick test_paper_scenarios;
          Alcotest.test_case "labels" `Quick test_scenario_labels;
          Alcotest.test_case "deterministic build" `Quick test_build_deterministic;
          Alcotest.test_case "cluster kinds" `Quick test_build_cluster_kinds;
        ] );
      ( "runner (mini sweep)",
        [
          Alcotest.test_case "cells complete" `Slow test_runner_cells_complete;
          Alcotest.test_case "simulation recorded" `Slow test_runner_simulation_recorded;
          Alcotest.test_case "tables render" `Slow test_tables_render;
          Alcotest.test_case "csv export" `Slow test_csv_export;
          Alcotest.test_case "paper shape checks" `Slow test_paper_check;
        ] );
      ( "parallel sweep",
        [ Alcotest.test_case "jobs=1 vs jobs=4 determinism" `Slow test_jobs_determinism ] );
      ("figure1", [ Alcotest.test_case "small sweep" `Slow test_figure1_small ]);
      ( "ablation",
        [
          Alcotest.test_case "migration" `Slow (fun () ->
              let t = Hmn_experiments.Ablation.migration ~reps:1 () in
              Alcotest.(check bool) "has rows" true (contains ~needle:"20:1 low" t));
          Alcotest.test_case "routing metric" `Slow (fun () ->
              let t = Hmn_experiments.Ablation.routing_metric ~reps:1 () in
              Alcotest.(check bool) "mentions A*Prune" true
                (contains ~needle:"A*Prune" t);
              Alcotest.(check bool) "mentions DFS" true (contains ~needle:"DFS" t));
          Alcotest.test_case "topology sweep" `Slow (fun () ->
              let t = Hmn_experiments.Ablation.topology_sweep ~reps:1 () in
              Alcotest.(check bool) "mentions fat-tree" true
                (contains ~needle:"fat-tree" t);
              Alcotest.(check bool) "mentions hypercube" true
                (contains ~needle:"hypercube" t));
        ] );
    ]
