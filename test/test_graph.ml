(* Tests for hmn_graph: the graph core, traversals, shortest/widest
   paths (cross-checked against Floyd–Warshall and brute force), the
   generic A*Prune, generators and DOT export. *)

module Graph = Hmn_graph.Graph
module Traversal = Hmn_graph.Traversal
module Dijkstra = Hmn_graph.Dijkstra
module Widest = Hmn_graph.Widest_path
module FW = Hmn_graph.Floyd_warshall
module KSP = Hmn_graph.Astar_prune_k
module Gen = Hmn_graph.Generators

(* A small weighted test graph:
     0 --1.0-- 1 --1.0-- 2
     |                   |
     +------- 5.0 -------+
   plus isolated node 3. *)
let diamond () =
  let g = Graph.create ~n:4 () in
  let e01 = Graph.add_edge g 0 1 1.0 in
  let e12 = Graph.add_edge g 1 2 1.0 in
  let e02 = Graph.add_edge g 0 2 5.0 in
  (g, e01, e12, e02)

let weight g eid = Graph.label g eid

(* ---- Graph core ---- *)

let test_graph_basic () =
  let g, e01, _, _ = diamond () in
  Alcotest.(check int) "nodes" 4 (Graph.n_nodes g);
  Alcotest.(check int) "edges" 3 (Graph.n_edges g);
  Alcotest.(check (pair int int)) "endpoints" (0, 1) (Graph.endpoints g e01);
  Alcotest.(check (float 0.)) "label" 1.0 (Graph.label g e01);
  Graph.set_label g e01 2.5;
  Alcotest.(check (float 0.)) "set_label" 2.5 (Graph.label g e01);
  Alcotest.(check int) "degree 0" 2 (Graph.degree g 0);
  Alcotest.(check int) "degree isolated" 0 (Graph.degree g 3);
  Alcotest.(check int) "other_end" 1 (Graph.other_end g e01 0);
  Alcotest.(check int) "other_end reverse" 0 (Graph.other_end g e01 1)

let test_graph_errors () =
  let g, e01, _, _ = diamond () in
  Alcotest.check_raises "self loop" (Invalid_argument "Graph.add_edge: self-loop")
    (fun () -> ignore (Graph.add_edge g 1 1 0.));
  Alcotest.check_raises "node range"
    (Invalid_argument "Graph.add_edge: node out of range") (fun () ->
      ignore (Graph.add_edge g 0 4 0.));
  Alcotest.check_raises "not endpoint"
    (Invalid_argument "Graph.other_end: node not an endpoint") (fun () ->
      ignore (Graph.other_end g e01 2))

let test_graph_adjacency () =
  let g, e01, _, e02 = diamond () in
  Alcotest.(check (list (pair int int))) "adj of 0" [ (1, e01); (2, e02) ]
    (Graph.adj_list g 0);
  Alcotest.(check (option int)) "find_edge" (Some e01) (Graph.find_edge g 0 1);
  Alcotest.(check (option int)) "find_edge sym" (Some e01) (Graph.find_edge g 1 0);
  Alcotest.(check (option int)) "find_edge none" None (Graph.find_edge g 0 3);
  let total = Graph.fold_edges g ~init:0. ~f:(fun acc ~eid:_ ~u:_ ~v:_ l -> acc +. l) in
  Alcotest.(check (float 0.)) "fold_edges" 7. total

let test_graph_directed () =
  let g = Graph.create ~kind:Graph.Directed ~n:3 () in
  let e = Graph.add_edge g 0 1 () in
  ignore (Graph.add_edge g 1 2 ());
  Alcotest.(check (option int)) "forward" (Some e) (Graph.find_edge g 0 1);
  Alcotest.(check (option int)) "not backward" None (Graph.find_edge g 1 0);
  Alcotest.(check int) "out-degree" 1 (Graph.degree g 0);
  Alcotest.(check int) "sink out-degree" 0 (Graph.degree g 2)

let test_graph_map_copy () =
  let g, _, _, _ = diamond () in
  let doubled = Graph.map_labels g ~f:(fun ~eid:_ l -> 2. *. l) in
  Alcotest.(check (float 0.)) "mapped label" 2. (Graph.label doubled 0);
  Alcotest.(check int) "same structure" 3 (Graph.n_edges doubled);
  let c = Graph.copy g in
  Graph.set_label c 0 99.;
  Alcotest.(check (float 0.)) "copy independent" 1. (Graph.label g 0)

(* ---- Traversal ---- *)

let test_bfs () =
  let g, _, _, _ = diamond () in
  Alcotest.(check (list int)) "bfs order" [ 0; 1; 2 ] (Traversal.bfs_order g ~src:0);
  let hops = Traversal.bfs_hops g ~src:0 in
  Alcotest.(check int) "hop to 2" 1 hops.(2);
  Alcotest.(check int) "unreachable" max_int hops.(3)

let test_dfs () =
  let g, _, _, _ = diamond () in
  Alcotest.(check (list int)) "dfs preorder" [ 0; 1; 2 ]
    (Traversal.dfs_preorder g ~src:0)

let test_components () =
  let g, _, _, _ = diamond () in
  let comp = Traversal.components g in
  Alcotest.(check int) "two components" 2 (Traversal.n_components g);
  Alcotest.(check bool) "0 and 2 together" true (comp.(0) = comp.(2));
  Alcotest.(check bool) "3 separate" true (comp.(3) <> comp.(0));
  Alcotest.(check bool) "not connected" false (Traversal.is_connected g);
  Alcotest.(check bool) "ring connected" true (Traversal.is_connected (Gen.ring 5))

let test_components_directed_weak () =
  let g = Graph.create ~kind:Graph.Directed ~n:3 () in
  ignore (Graph.add_edge g 1 0 ());
  ignore (Graph.add_edge g 1 2 ());
  (* Weak connectivity must see 0-1-2 as one component despite edge
     directions. *)
  Alcotest.(check int) "one weak component" 1 (Traversal.n_components g)

(* ---- Dijkstra ---- *)

let test_dijkstra_diamond () =
  let g, _, _, _ = diamond () in
  let res = Dijkstra.run g ~weight:(weight g) ~src:0 in
  Alcotest.(check (float 1e-9)) "direct vs 2-hop" 2. res.Dijkstra.dist.(2);
  Alcotest.(check (float 1e-9)) "self" 0. res.Dijkstra.dist.(0);
  Alcotest.(check bool) "unreachable" true (res.Dijkstra.dist.(3) = infinity);
  match Dijkstra.path_to res 2 with
  | Some (nodes, edges) ->
    Alcotest.(check (list int)) "path nodes" [ 0; 1; 2 ] nodes;
    Alcotest.(check int) "path edges" 2 (List.length edges)
  | None -> Alcotest.fail "expected a path"

let test_dijkstra_negative_weight () =
  let g = Graph.create ~n:2 () in
  ignore (Graph.add_edge g 0 1 (-1.));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Dijkstra.run: negative weight") (fun () ->
      ignore (Dijkstra.run g ~weight:(weight g) ~src:0))

let test_distances_to_undirected () =
  let g, _, _, _ = diamond () in
  let d = Dijkstra.distances_to g ~weight:(weight g) ~dst:2 in
  Alcotest.(check (float 1e-9)) "0 to 2" 2. d.(0);
  Alcotest.(check (float 1e-9)) "dst itself" 0. d.(2)

let test_distances_to_directed () =
  let g = Graph.create ~kind:Graph.Directed ~n:3 () in
  ignore (Graph.add_edge g 0 1 1.);
  ignore (Graph.add_edge g 1 2 1.);
  let d = Dijkstra.distances_to g ~weight:(weight g) ~dst:2 in
  Alcotest.(check (float 1e-9)) "0 reaches 2 forward" 2. d.(0);
  let d0 = Dijkstra.distances_to g ~weight:(weight g) ~dst:0 in
  Alcotest.(check bool) "2 cannot reach 0" true (d0.(2) = infinity)

(* ---- Widest path ---- *)

let test_widest_path () =
  (* 0-1 capacity 10, 1-2 capacity 3, 0-2 capacity 4: widest 0->2 is the
     direct edge (4), not through 1 (min(10,3)=3). *)
  let g = Graph.create ~n:3 () in
  ignore (Graph.add_edge g 0 1 10.);
  ignore (Graph.add_edge g 1 2 3.);
  ignore (Graph.add_edge g 0 2 4.);
  let res = Widest.run g ~capacity:(weight g) ~src:0 in
  Alcotest.(check (float 1e-9)) "width to 2" 4. res.Widest.width.(2);
  (match Widest.path_to res 2 with
  | Some (nodes, _) -> Alcotest.(check (list int)) "direct" [ 0; 2 ] nodes
  | None -> Alcotest.fail "expected path");
  Alcotest.(check bool) "src infinite" true (res.Widest.width.(0) = infinity)

(* ---- Floyd–Warshall vs Dijkstra ---- *)

let random_weighted_graph ~n ~rng =
  let shape = Gen.random_connected ~n ~density:0.3 ~rng in
  Graph.map_labels shape ~f:(fun ~eid:_ () -> 0.1 +. Hmn_rng.Rng.float rng)

let test_fw_matches_dijkstra () =
  let rng = Hmn_rng.Rng.create 7 in
  for _ = 1 to 5 do
    let g = random_weighted_graph ~n:12 ~rng in
    let fw = FW.run g ~weight:(weight g) in
    for src = 0 to 11 do
      let d = Dijkstra.run g ~weight:(weight g) ~src in
      for v = 0 to 11 do
        Alcotest.(check (float 1e-9))
          (Printf.sprintf "dist %d->%d" src v)
          fw.(src).(v) d.Dijkstra.dist.(v)
      done
    done
  done

(* ---- generic A*Prune ---- *)

let test_ksp_unconstrained_shortest () =
  let g, _, _, _ = diamond () in
  match KSP.k_shortest g ~k:2 ~cost:(weight g) ~constraints:[] ~src:0 ~dst:2 with
  | [ first; second ] ->
    Alcotest.(check (float 1e-9)) "best cost" 2. first.KSP.cost;
    Alcotest.(check (list int)) "best nodes" [ 0; 1; 2 ] first.KSP.nodes;
    Alcotest.(check (float 1e-9)) "second cost" 5. second.KSP.cost;
    Alcotest.(check (list int)) "second nodes" [ 0; 2 ] second.KSP.nodes
  | paths -> Alcotest.failf "expected 2 paths, got %d" (List.length paths)

let test_ksp_constraint_prunes () =
  let g, _, _, _ = diamond () in
  (* Hop-count <= 1 excludes the cheap two-hop path. *)
  let hop_constraint = { KSP.metric = (fun _ -> 1.); bound = 1. } in
  (match
     KSP.k_shortest g ~k:5 ~cost:(weight g) ~constraints:[ hop_constraint ] ~src:0
       ~dst:2
   with
  | [ only ] ->
    Alcotest.(check (list int)) "forced direct" [ 0; 2 ] only.KSP.nodes;
    Alcotest.(check (float 1e-9)) "constraint total" 1. only.KSP.constraint_totals.(0)
  | paths -> Alcotest.failf "expected 1 path, got %d" (List.length paths));
  (* An unsatisfiable constraint yields no paths. *)
  let impossible = { KSP.metric = (fun _ -> 1.); bound = 0. } in
  Alcotest.(check int) "unsatisfiable" 0
    (List.length
       (KSP.k_shortest g ~k:3 ~cost:(weight g) ~constraints:[ impossible ] ~src:0
          ~dst:2))

let test_ksp_src_eq_dst () =
  let g, _, _, _ = diamond () in
  match KSP.k_shortest g ~k:1 ~cost:(weight g) ~constraints:[] ~src:1 ~dst:1 with
  | [ p ] ->
    Alcotest.(check (list int)) "empty path" [ 1 ] p.KSP.nodes;
    Alcotest.(check (float 1e-9)) "zero cost" 0. p.KSP.cost
  | _ -> Alcotest.fail "expected the trivial path"

let test_ksp_loopless_and_ordered () =
  let rng = Hmn_rng.Rng.create 21 in
  let g = random_weighted_graph ~n:10 ~rng in
  let paths = KSP.k_shortest g ~k:6 ~cost:(weight g) ~constraints:[] ~src:0 ~dst:9 in
  Alcotest.(check bool) "found some" true (List.length paths > 0);
  let last = ref neg_infinity in
  List.iter
    (fun p ->
      Alcotest.(check bool) "non-decreasing" true (p.KSP.cost >= !last);
      last := p.KSP.cost;
      let dedup = List.sort_uniq compare p.KSP.nodes in
      Alcotest.(check int) "loopless" (List.length p.KSP.nodes) (List.length dedup))
    paths

(* ---- generators ---- *)

let test_gen_line_ring_star_complete () =
  Alcotest.(check int) "line edges" 4 (Graph.n_edges (Gen.line 5));
  Alcotest.(check int) "ring edges" 5 (Graph.n_edges (Gen.ring 5));
  Alcotest.(check int) "star edges" 4 (Graph.n_edges (Gen.star 5));
  Alcotest.(check int) "complete edges" 10 (Graph.n_edges (Gen.complete 5));
  Alcotest.(check int) "star center degree" 4 (Graph.degree (Gen.star 5) 0);
  Alcotest.check_raises "ring too small"
    (Invalid_argument "Generators.ring: n >= 3 required") (fun () ->
      ignore (Gen.ring 2))

let test_gen_torus () =
  let g = Gen.torus2d ~rows:5 ~cols:8 in
  Alcotest.(check int) "nodes" 40 (Graph.n_nodes g);
  (* A full torus with both dims > 2 has 2*r*c edges, degree 4 each. *)
  Alcotest.(check int) "edges" 80 (Graph.n_edges g);
  for v = 0 to 39 do
    Alcotest.(check int) (Printf.sprintf "degree of %d" v) 4 (Graph.degree g v)
  done;
  Alcotest.(check bool) "connected" true (Traversal.is_connected g)

let test_gen_torus_small_dims () =
  (* Size-2 dimensions must not create parallel edges. *)
  let g = Gen.torus2d ~rows:2 ~cols:2 in
  Alcotest.(check int) "2x2 edges" 4 (Graph.n_edges g);
  let g = Gen.torus2d ~rows:1 ~cols:4 in
  Alcotest.(check int) "1x4 is a ring" 4 (Graph.n_edges g);
  let g = Gen.torus2d ~rows:1 ~cols:2 in
  Alcotest.(check int) "1x2 single edge" 1 (Graph.n_edges g)

let test_gen_random_connected () =
  let rng = Hmn_rng.Rng.create 5 in
  let g = Gen.random_connected ~n:50 ~density:0.1 ~rng in
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check int) "edge target" (Gen.expected_edges ~n:50 ~density:0.1)
    (Graph.n_edges g);
  (* Density below the tree threshold still yields a connected tree. *)
  let sparse = Gen.random_connected ~n:50 ~density:0. ~rng in
  Alcotest.(check int) "spanning tree" 49 (Graph.n_edges sparse);
  Alcotest.(check bool) "tree connected" true (Traversal.is_connected sparse)

let test_gen_expected_edges () =
  (* The paper's extreme: 2000 guests at density 0.01 gives 19990. *)
  Alcotest.(check int) "paper scale" 19990 (Gen.expected_edges ~n:2000 ~density:0.01);
  Alcotest.(check int) "clamped at clique" 10 (Gen.expected_edges ~n:5 ~density:5.)

let test_gen_random_tree () =
  let rng = Hmn_rng.Rng.create 3 in
  let g = Gen.random_tree ~n:30 ~rng in
  Alcotest.(check int) "n-1 edges" 29 (Graph.n_edges g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g)

let test_gen_gnp () =
  let rng = Hmn_rng.Rng.create 11 in
  Alcotest.(check int) "p=0 empty" 0 (Graph.n_edges (Gen.gnp ~n:20 ~p:0. ~rng));
  Alcotest.(check int) "p=1 clique" 190 (Graph.n_edges (Gen.gnp ~n:20 ~p:1. ~rng))

let test_gen_barabasi_albert () =
  let rng = Hmn_rng.Rng.create 13 in
  let g = Gen.barabasi_albert ~n:100 ~m:2 ~rng in
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (* (n - m) joining nodes each add m edges. *)
  Alcotest.(check int) "edge count" ((100 - 2) * 2) (Graph.n_edges g);
  (* Preferential attachment concentrates degree: some hub should beat
     the 2m average clearly. *)
  let max_deg = ref 0 in
  for v = 0 to 99 do
    max_deg := max !max_deg (Graph.degree g v)
  done;
  Alcotest.(check bool) "has a hub" true (!max_deg > 8);
  Alcotest.check_raises "m >= n rejected"
    (Invalid_argument "Generators.barabasi_albert: 1 <= m < n required") (fun () ->
      ignore (Gen.barabasi_albert ~n:3 ~m:3 ~rng))

let test_gen_waxman () =
  let rng = Hmn_rng.Rng.create 17 in
  let g = Gen.waxman ~n:80 ~alpha:0.4 ~beta:0.3 ~rng in
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check bool) "at least a spanning tree" true (Graph.n_edges g >= 79);
  (* Higher alpha gives denser graphs. *)
  let sparse = Gen.waxman ~n:80 ~alpha:0.05 ~beta:0.1 ~rng:(Hmn_rng.Rng.create 17) in
  let dense = Gen.waxman ~n:80 ~alpha:1.0 ~beta:1.0 ~rng:(Hmn_rng.Rng.create 17) in
  Alcotest.(check bool) "alpha monotone" true
    (Graph.n_edges dense > Graph.n_edges sparse);
  Alcotest.check_raises "alpha out of range"
    (Invalid_argument "Generators.waxman: alpha in (0,1] required") (fun () ->
      ignore (Gen.waxman ~n:5 ~alpha:0. ~beta:0.5 ~rng))

(* ---- Yen ---- *)

let test_yen_diamond () =
  let g, _, _, _ = diamond () in
  match Hmn_graph.Yen.k_shortest g ~k:3 ~cost:(weight g) ~src:0 ~dst:2 with
  | [ first; second ] ->
    Alcotest.(check (float 1e-9)) "best" 2. first.Hmn_graph.Yen.cost;
    Alcotest.(check (list int)) "best nodes" [ 0; 1; 2 ] first.Hmn_graph.Yen.nodes;
    Alcotest.(check (float 1e-9)) "second" 5. second.Hmn_graph.Yen.cost
  | paths -> Alcotest.failf "expected exactly 2 paths, got %d" (List.length paths)

let test_yen_src_eq_dst () =
  let g, _, _, _ = diamond () in
  match Hmn_graph.Yen.k_shortest g ~k:2 ~cost:(weight g) ~src:1 ~dst:1 with
  | [ p ] ->
    Alcotest.(check (list int)) "trivial" [ 1 ] p.Hmn_graph.Yen.nodes;
    Alcotest.(check (float 1e-9)) "zero" 0. p.Hmn_graph.Yen.cost
  | _ -> Alcotest.fail "expected the empty path"

let test_yen_unreachable () =
  let g, _, _, _ = diamond () in
  Alcotest.(check int) "no path to isolated node" 0
    (List.length (Hmn_graph.Yen.k_shortest g ~k:3 ~cost:(weight g) ~src:0 ~dst:3))

let prop_yen_matches_astar_prune =
  (* Yen and the generic A*Prune must return identical cost sequences
     on unconstrained instances. *)
  QCheck.Test.make ~name:"Yen agrees with A*Prune on unconstrained K-shortest"
    ~count:50 QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 7000) in
      let g = random_weighted_graph ~n:10 ~rng in
      let yen = Hmn_graph.Yen.k_shortest g ~k:5 ~cost:(weight g) ~src:0 ~dst:9 in
      let ksp = KSP.k_shortest g ~k:5 ~cost:(weight g) ~constraints:[] ~src:0 ~dst:9 in
      List.length yen = List.length ksp
      && List.for_all2
           (fun (y : Hmn_graph.Yen.path) (a : KSP.path) ->
             Hmn_prelude.Float_ext.approx y.Hmn_graph.Yen.cost a.KSP.cost)
           yen ksp)

let prop_yen_paths_loopless_sorted =
  QCheck.Test.make ~name:"Yen paths are loopless, sorted, distinct" ~count:50
    QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 8000) in
      let g = random_weighted_graph ~n:10 ~rng in
      let paths = Hmn_graph.Yen.k_shortest g ~k:6 ~cost:(weight g) ~src:0 ~dst:9 in
      let costs = List.map (fun p -> p.Hmn_graph.Yen.cost) paths in
      let node_lists = List.map (fun p -> p.Hmn_graph.Yen.nodes) paths in
      List.sort Float.compare costs = costs
      && List.length (List.sort_uniq compare node_lists) = List.length node_lists
      && List.for_all
           (fun ns -> List.length (List.sort_uniq compare ns) = List.length ns)
           node_lists)

(* ---- Betweenness ---- *)

let test_betweenness_path_graph () =
  (* Path 0-1-2-3: the middle edge carries all 0,1 x 2,3 pairs. For
     edge (1,2): pairs crossing it = {0,1}x{2,3} both directions = 8. *)
  let g = Gen.line 4 in
  let eb = Hmn_graph.Betweenness.edges g in
  Alcotest.(check (float 1e-9)) "end edge" 6. eb.(0);
  Alcotest.(check (float 1e-9)) "middle edge" 8. eb.(1);
  let nb = Hmn_graph.Betweenness.nodes g in
  (* Node 1 lies on shortest paths 0-2, 0-3, and their reverses = 4. *)
  Alcotest.(check (float 1e-9)) "inner node" 4. nb.(1);
  Alcotest.(check (float 1e-9)) "leaf node" 0. nb.(0)

let test_betweenness_star () =
  (* Star: the hub lies on every leaf-to-leaf shortest path. *)
  let g = Gen.star 5 in
  let nb = Hmn_graph.Betweenness.nodes g in
  Alcotest.(check (float 1e-9)) "hub" (4. *. 3.) nb.(0);
  for leaf = 1 to 4 do
    Alcotest.(check (float 1e-9)) "leaf" 0. nb.(leaf)
  done

let prop_betweenness_matches_brute_force =
  (* Oracle: enumerate all shortest paths pair-by-pair on small graphs
     by counting via BFS DAG sigma products. *)
  QCheck.Test.make ~name:"edge betweenness matches brute force on small graphs"
    ~count:30 QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 11000) in
      let g = Gen.random_connected ~n:7 ~density:0.4 ~rng in
      let expected = Array.make (Graph.n_edges g) 0. in
      let n = Graph.n_nodes g in
      (* For every ordered pair (s, t): count shortest s-t paths and,
         per edge, shortest paths through it, by DFS enumeration. *)
      let hops = Array.init n (fun s -> Traversal.bfs_hops g ~src:s) in
      for s = 0 to n - 1 do
        for t = 0 to n - 1 do
          if s <> t then begin
            let total = ref 0 and per_edge = Hashtbl.create 8 in
            let rec walk v used =
              if v = t then begin
                incr total;
                List.iter
                  (fun e ->
                    Hashtbl.replace per_edge e
                      (1 + Option.value (Hashtbl.find_opt per_edge e) ~default:0))
                  used
              end
              else
                Graph.iter_adj g v (fun ~neighbor ~eid ->
                    if hops.(s).(neighbor) = hops.(s).(v) + 1
                       && hops.(neighbor).(t) = hops.(v).(t) - 1
                    then walk neighbor (eid :: used))
            in
            walk s [];
            if !total > 0 then
              Hashtbl.iter
                (fun e c ->
                  expected.(e) <-
                    expected.(e) +. (float_of_int c /. float_of_int !total))
                per_edge
          end
        done
      done;
      let got = Hmn_graph.Betweenness.edges g in
      let ok = ref true in
      Array.iteri
        (fun e v ->
          if not (Hmn_prelude.Float_ext.approx ~eps:1e-6 v got.(e)) then ok := false)
        expected;
      !ok)

(* ---- DOT ---- *)

let test_dot_output () =
  let g, _, _, _ = diamond () in
  let dot = Hmn_graph.Dot.to_dot ~name:"test" g in
  Alcotest.(check string) "graph header" "graph " (String.sub dot 0 6);
  let directed = Graph.create ~kind:Graph.Directed ~n:2 () in
  ignore (Graph.add_edge directed 0 1 ());
  let ddot = Hmn_graph.Dot.to_dot directed in
  Alcotest.(check string) "digraph header" "digraph" (String.sub ddot 0 7)

(* ---- properties ---- *)

let seed_gen = QCheck.small_nat

let prop_random_connected_always_connected =
  QCheck.Test.make ~name:"random_connected is connected at every density" ~count:100
    QCheck.(triple seed_gen (int_range 1 60) (float_range 0. 1.))
    (fun (seed, n, density) ->
      let rng = Hmn_rng.Rng.create seed in
      Traversal.is_connected (Gen.random_connected ~n ~density ~rng))

let prop_dijkstra_triangle_inequality =
  QCheck.Test.make ~name:"Dijkstra distances obey the triangle inequality" ~count:50
    seed_gen
    (fun seed ->
      let rng = Hmn_rng.Rng.create seed in
      let g = random_weighted_graph ~n:15 ~rng in
      let d0 = (Dijkstra.run g ~weight:(weight g) ~src:0).Dijkstra.dist in
      let ok = ref true in
      Graph.iter_edges g (fun ~eid ~u ~v w ->
          ignore eid;
          if d0.(v) > d0.(u) +. w +. 1e-9 then ok := false;
          if d0.(u) > d0.(v) +. w +. 1e-9 then ok := false);
      !ok)

let prop_widest_path_is_optimal =
  (* Brute-force all simple paths on small graphs and compare widths. *)
  QCheck.Test.make ~name:"widest path matches brute force on small graphs" ~count:50
    seed_gen
    (fun seed ->
      let rng = Hmn_rng.Rng.create seed in
      let shape = Gen.random_connected ~n:7 ~density:0.4 ~rng in
      let g =
        Graph.map_labels shape ~f:(fun ~eid:_ () -> 1. +. Hmn_rng.Rng.float rng)
      in
      let best = Array.make 7 neg_infinity in
      let visited = Array.make 7 false in
      let rec explore u width =
        if width > best.(u) then best.(u) <- width;
        Graph.iter_adj g u (fun ~neighbor ~eid ->
            if not visited.(neighbor) then begin
              visited.(neighbor) <- true;
              explore neighbor (Float.min width (Graph.label g eid));
              visited.(neighbor) <- false
            end)
      in
      visited.(0) <- true;
      explore 0 infinity;
      let res = Widest.run g ~capacity:(weight g) ~src:0 in
      let ok = ref true in
      for v = 1 to 6 do
        if not (Hmn_prelude.Float_ext.approx best.(v) res.Widest.width.(v)) then
          ok := false
      done;
      !ok)

let prop_ksp_first_matches_dijkstra =
  QCheck.Test.make ~name:"A*Prune first path = Dijkstra optimum" ~count:50 seed_gen
    (fun seed ->
      let rng = Hmn_rng.Rng.create seed in
      let g = random_weighted_graph ~n:12 ~rng in
      let dij = (Dijkstra.run g ~weight:(weight g) ~src:0).Dijkstra.dist in
      match KSP.k_shortest g ~k:1 ~cost:(weight g) ~constraints:[] ~src:0 ~dst:11 with
      | [ p ] -> Hmn_prelude.Float_ext.approx p.KSP.cost dij.(11)
      | [] -> dij.(11) = infinity
      | _ -> false)

let prop_bfs_hops_vs_dijkstra_unit =
  QCheck.Test.make ~name:"BFS hops equal unit-weight Dijkstra" ~count:50 seed_gen
    (fun seed ->
      let rng = Hmn_rng.Rng.create seed in
      let g = Gen.random_connected ~n:20 ~density:0.15 ~rng in
      let hops = Traversal.bfs_hops g ~src:0 in
      let d = (Dijkstra.run g ~weight:(fun _ -> 1.) ~src:0).Dijkstra.dist in
      let ok = ref true in
      for v = 0 to 19 do
        let h = if hops.(v) = max_int then infinity else float_of_int hops.(v) in
        if not (Hmn_prelude.Float_ext.approx h d.(v)) then ok := false
      done;
      !ok)

(* ---- CSR view & fabric properties ---- *)

module Csr = Hmn_graph.Csr

let prop_csr_matches_adjacency =
  QCheck.Test.make
    ~name:"CSR slices replay Graph adjacency: order, edge ids, degrees" ~count:100
    QCheck.(triple seed_gen (int_range 1 40) (float_range 0. 1.))
    (fun (seed, n, density) ->
      let rng = Hmn_rng.Rng.create seed in
      let g = Gen.random_connected ~n ~density ~rng in
      let csr = Csr.of_graph g in
      let ok =
        ref
          (Csr.n_nodes csr = n
          && Csr.n_edges csr = Graph.n_edges g
          && Csr.n_arcs csr = 2 * Graph.n_edges g)
      in
      for u = 0 to n - 1 do
        if Csr.adj_list csr u <> Graph.adj_list g u then ok := false;
        if Csr.degree csr u <> Graph.degree g u then ok := false;
        (match (Csr.sole_neighbor csr u, Graph.adj_list g u) with
        | Some (nb, eid), [ (nb', eid') ] ->
          if (nb, eid) <> (nb', eid') then ok := false
        | None, [ _ ] | Some _, ([] | _ :: _ :: _) -> ok := false
        | None, _ -> ())
      done;
      !ok)

let prop_csr_directed_outgoing_only =
  QCheck.Test.make ~name:"CSR holds outgoing arcs only on directed graphs"
    ~count:100 seed_gen
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 100) in
      let n = 10 in
      let g = Graph.create ~kind:Graph.Directed ~n () in
      for _ = 1 to 25 do
        let u = Hmn_rng.Rng.int rng ~bound:n in
        let v = Hmn_rng.Rng.int rng ~bound:n in
        if u <> v then ignore (Graph.add_edge g u v ())
      done;
      let csr = Csr.of_graph g in
      let ok = ref (Csr.n_arcs csr = Graph.n_edges g) in
      for u = 0 to n - 1 do
        if Csr.adj_list csr u <> Graph.adj_list g u then ok := false
      done;
      !ok)

let prop_csr_dijkstra_bit_identical =
  QCheck.Test.make
    ~name:"CSR Dijkstra is bit-identical to the adjacency Dijkstra" ~count:50
    seed_gen
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 200) in
      let g = random_weighted_graph ~n:15 ~rng in
      let w = Array.init (Graph.n_edges g) (Graph.label g) in
      let csr = Csr.of_graph g in
      Csr.dijkstra_from csr ~weight:w ~src:0
      = (Dijkstra.run g ~weight:(weight g) ~src:0).Dijkstra.dist)

let prop_fabric_invariants =
  QCheck.Test.make
    ~name:"fat-tree/clos fabrics: host count, leaf hosts, contiguous racks"
    ~count:30
    QCheck.(
      pair (int_range 1 4) (triple (int_range 1 4) (int_range 1 5) (int_range 1 6)))
    (fun (half_k, (spines, leafs, hosts_per_leaf)) ->
      let check (f : Gen.fabric) ~hosts ~racks =
        let n = Graph.n_nodes f.Gen.graph in
        f.Gen.n_hosts = hosts && f.Gen.n_racks = racks
        && Array.length f.Gen.rack_of_host = hosts
        && Array.length f.Gen.switch_names = n - hosts
        && Array.length f.Gen.edge_tiers = Graph.n_edges f.Gen.graph
        && Traversal.is_connected f.Gen.graph
        (* every host is a leaf behind exactly one Access cable *)
        && Array.for_all
             (fun h -> Graph.degree f.Gen.graph h = 1)
             (Array.init hosts Fun.id)
        && Array.fold_left
             (fun acc t -> if t = Gen.Access then acc + 1 else acc)
             0 f.Gen.edge_tiers
           = hosts
        (* rack ids 0..racks-1, ascending, no gaps *)
        && f.Gen.rack_of_host.(0) = 0
        && f.Gen.rack_of_host.(hosts - 1) = racks - 1
        &&
        let ok = ref true in
        Array.iteri
          (fun i r ->
            if
              i > 0
              && (r < f.Gen.rack_of_host.(i - 1)
                 || r > f.Gen.rack_of_host.(i - 1) + 1)
            then ok := false)
          f.Gen.rack_of_host;
        !ok
      in
      let k = 2 * half_k in
      check (Gen.fat_tree ~k) ~hosts:(k * k * k / 4) ~racks:(k * k / 2)
      && check
           (Gen.clos ~spines ~leafs ~hosts_per_leaf)
           ~hosts:(leafs * hosts_per_leaf) ~racks:leafs)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_graph"
    [
      ( "core",
        [
          Alcotest.test_case "basic" `Quick test_graph_basic;
          Alcotest.test_case "errors" `Quick test_graph_errors;
          Alcotest.test_case "adjacency" `Quick test_graph_adjacency;
          Alcotest.test_case "directed" `Quick test_graph_directed;
          Alcotest.test_case "map/copy" `Quick test_graph_map_copy;
        ] );
      ( "traversal",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "dfs" `Quick test_dfs;
          Alcotest.test_case "components" `Quick test_components;
          Alcotest.test_case "weak components" `Quick test_components_directed_weak;
        ] );
      ( "dijkstra",
        [
          Alcotest.test_case "diamond" `Quick test_dijkstra_diamond;
          Alcotest.test_case "negative weight" `Quick test_dijkstra_negative_weight;
          Alcotest.test_case "distances_to undirected" `Quick
            test_distances_to_undirected;
          Alcotest.test_case "distances_to directed" `Quick test_distances_to_directed;
        ] );
      ("widest", [ Alcotest.test_case "widest path" `Quick test_widest_path ]);
      ( "floyd-warshall",
        [ Alcotest.test_case "matches dijkstra" `Slow test_fw_matches_dijkstra ] );
      ( "astar_prune_k",
        [
          Alcotest.test_case "unconstrained shortest" `Quick
            test_ksp_unconstrained_shortest;
          Alcotest.test_case "constraint pruning" `Quick test_ksp_constraint_prunes;
          Alcotest.test_case "src = dst" `Quick test_ksp_src_eq_dst;
          Alcotest.test_case "loopless & ordered" `Quick test_ksp_loopless_and_ordered;
        ] );
      ( "generators",
        [
          Alcotest.test_case "line/ring/star/complete" `Quick
            test_gen_line_ring_star_complete;
          Alcotest.test_case "torus 5x8" `Quick test_gen_torus;
          Alcotest.test_case "torus small dims" `Quick test_gen_torus_small_dims;
          Alcotest.test_case "random connected" `Quick test_gen_random_connected;
          Alcotest.test_case "expected edges" `Quick test_gen_expected_edges;
          Alcotest.test_case "random tree" `Quick test_gen_random_tree;
          Alcotest.test_case "gnp" `Quick test_gen_gnp;
          Alcotest.test_case "barabasi-albert" `Quick test_gen_barabasi_albert;
          Alcotest.test_case "waxman" `Quick test_gen_waxman;
        ] );
      ( "yen",
        [
          Alcotest.test_case "diamond" `Quick test_yen_diamond;
          Alcotest.test_case "src = dst" `Quick test_yen_src_eq_dst;
          Alcotest.test_case "unreachable" `Quick test_yen_unreachable;
        ] );
      ( "betweenness",
        [
          Alcotest.test_case "path graph" `Quick test_betweenness_path_graph;
          Alcotest.test_case "star" `Quick test_betweenness_star;
          QCheck_alcotest.to_alcotest prop_betweenness_matches_brute_force;
        ] );
      ("dot", [ Alcotest.test_case "output" `Quick test_dot_output ]);
      ( "properties",
        [
          q prop_random_connected_always_connected;
          q prop_dijkstra_triangle_inequality;
          q prop_widest_path_is_optimal;
          q prop_ksp_first_matches_dijkstra;
          q prop_bfs_hops_vs_dijkstra_unit;
          q prop_yen_matches_astar_prune;
          q prop_yen_paths_loopless_sorted;
        ] );
      ( "csr",
        [
          q prop_csr_matches_adjacency;
          q prop_csr_directed_outgoing_only;
          q prop_csr_dijkstra_bit_identical;
          q prop_fabric_invariants;
        ] );
    ]
