(* Tests for hmn_routing: paths, residual bookkeeping, latency tables,
   the paper's modified A*Prune (Algorithm 1) and the DFS baseline
   router. A*Prune is verified against a brute-force enumeration of all
   simple paths on small clusters. *)

module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Resources = Hmn_testbed.Resources
module Path = Hmn_routing.Path
module Residual = Hmn_routing.Residual
module Latency_table = Hmn_routing.Latency_table
module Astar = Hmn_routing.Astar_prune
module Dfs = Hmn_routing.Dfs_route

let host i =
  Node.host
    ~name:(Printf.sprintf "h%d" i)
    ~capacity:(Resources.make ~mips:1000. ~mem_mb:1024. ~stor_gb:100.)

(* A 4-node cluster:
     0 --(100 Mbps, 5 ms)-- 1 --(100 Mbps, 5 ms)-- 2
     0 --------------(10 Mbps, 5 ms)-------------- 2
     2 --(100 Mbps, 5 ms)-- 3 *)
let small_cluster () =
  let g = Graph.create ~n:4 () in
  let mk bw = Link.make ~bandwidth_mbps:bw ~latency_ms:5. in
  let e01 = Graph.add_edge g 0 1 (mk 100.) in
  let e12 = Graph.add_edge g 1 2 (mk 100.) in
  let e02 = Graph.add_edge g 0 2 (mk 10.) in
  let e23 = Graph.add_edge g 2 3 (mk 100.) in
  (Cluster.create ~nodes:(Array.init 4 host) ~graph:g, e01, e12, e02, e23)

(* ---- Path ---- *)

let test_path_basics () =
  let cluster, e01, e12, _, _ = small_cluster () in
  let p = Path.make ~nodes:[ 0; 1; 2 ] ~edges:[ e01; e12 ] in
  Alcotest.(check int) "src" 0 (Path.src p);
  Alcotest.(check int) "dst" 2 (Path.dst p);
  Alcotest.(check int) "hops" 2 (Path.hop_count p);
  Alcotest.(check bool) "not intra" false (Path.is_intra_host p);
  Alcotest.(check (float 1e-9)) "latency" 10. (Path.total_latency cluster p);
  Alcotest.(check bool) "mem_edge" true (Path.mem_edge p e01);
  let trivial = Path.trivial 2 in
  Alcotest.(check bool) "trivial intra" true (Path.is_intra_host trivial);
  Alcotest.(check (float 1e-9)) "trivial latency" 0.
    (Path.total_latency cluster trivial);
  Alcotest.(check bool) "trivial infinite bottleneck" true
    (Path.bottleneck ~capacity:(fun _ -> 1.) trivial = infinity);
  Alcotest.(check (float 1e-9)) "bottleneck" 7.
    (Path.bottleneck ~capacity:(fun e -> if e = e01 then 7. else 9.) p)

let test_path_make_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Path.make: empty node list")
    (fun () -> ignore (Path.make ~nodes:[] ~edges:[]));
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Path.make: edge/node length mismatch") (fun () ->
      ignore (Path.make ~nodes:[ 0; 1 ] ~edges:[]))

let test_path_validate () =
  let cluster, e01, e12, e02, _ = small_cluster () in
  let ok p src dst = Path.validate cluster ~src ~dst p in
  let good = Path.make ~nodes:[ 0; 1; 2 ] ~edges:[ e01; e12 ] in
  Alcotest.(check bool) "valid" true (Result.is_ok (ok good 0 2));
  Alcotest.(check bool) "wrong src" true (Result.is_error (ok good 1 2));
  Alcotest.(check bool) "wrong dst" true (Result.is_error (ok good 0 3));
  (* Edge that does not join the stated nodes (Eq. 6 violation). *)
  let bad_edge = Path.make ~nodes:[ 0; 1; 2 ] ~edges:[ e01; e02 ] in
  Alcotest.(check bool) "edge mismatch" true (Result.is_error (ok bad_edge 0 2));
  (* Loop (Eq. 7 violation). *)
  let loopy = Path.make ~nodes:[ 0; 1; 0; 2 ] ~edges:[ e01; e01; e02 ] in
  Alcotest.(check bool) "loop rejected" true (Result.is_error (ok loopy 0 2))

(* ---- Residual ---- *)

let test_residual_reserve_release () =
  let cluster, e01, e12, _, _ = small_cluster () in
  let res = Residual.create cluster in
  Alcotest.(check (float 1e-9)) "initial" 100. (Residual.available res e01);
  let p = Path.make ~nodes:[ 0; 1; 2 ] ~edges:[ e01; e12 ] in
  (match Residual.reserve_path res p 30. with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (float 1e-9)) "after reserve" 70. (Residual.available res e01);
  Alcotest.(check (float 1e-9)) "used" 30. (Residual.used res e12);
  Residual.release_path res p 30.;
  Alcotest.(check (float 1e-9)) "after release" 100. (Residual.available res e01)

let test_residual_atomic_failure () =
  let cluster, e01, e12, _, _ = small_cluster () in
  let res = Residual.create cluster in
  (* Drain e12 so reserving along 0-1-2 must fail without touching e01. *)
  let p12 = Path.make ~nodes:[ 1; 2 ] ~edges:[ e12 ] in
  (match Residual.reserve_path res p12 95. with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let p = Path.make ~nodes:[ 0; 1; 2 ] ~edges:[ e01; e12 ] in
  Alcotest.(check bool) "reserve fails" true
    (Result.is_error (Residual.reserve_path res p 30.));
  Alcotest.(check (float 1e-9)) "e01 untouched" 100. (Residual.available res e01)

let test_residual_release_overflow () =
  let cluster, e01, _, _, _ = small_cluster () in
  let res = Residual.create cluster in
  let p = Path.make ~nodes:[ 0; 1 ] ~edges:[ e01 ] in
  Alcotest.check_raises "over-release"
    (Invalid_argument "Residual.release_path: release exceeds capacity") (fun () ->
      Residual.release_path res p 1.)

let test_residual_copy_and_utilization () =
  let cluster, e01, _, _, _ = small_cluster () in
  let res = Residual.create cluster in
  Alcotest.(check (float 1e-9)) "empty utilization" 0. (Residual.utilization res);
  let p = Path.make ~nodes:[ 0; 1 ] ~edges:[ e01 ] in
  (match Residual.reserve_path res p 50. with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let copy = Residual.copy res in
  Residual.release_path res p 50.;
  Alcotest.(check (float 1e-9)) "copy unaffected" 50. (Residual.available copy e01);
  Alcotest.(check (float 1e-9)) "copy utilization" 0.125 (Residual.utilization copy)

let random_cluster ~n ~rng =
  let shape = Hmn_graph.Generators.random_connected ~n ~density:0.3 ~rng in
  let g =
    Graph.map_labels shape ~f:(fun ~eid:_ () ->
        Link.make
          ~bandwidth_mbps:(10. +. (90. *. Hmn_rng.Rng.float rng))
          ~latency_ms:(1. +. (9. *. Hmn_rng.Rng.float rng)))
  in
  Cluster.create ~nodes:(Array.init n host) ~graph:g

(* Reserve/release cycles with awkward fractional bandwidths, then an
   exactly-saturating reservation: the shared tolerance must absorb the
   floating-point drift symmetrically (the historical bug: release
   tolerated 1e-6 of drift, reserve none, so a full-capacity request
   spuriously failed after churn). ~10^4 round-trips across the runs. *)
let prop_residual_round_trip =
  QCheck.Test.make
    ~name:"reserve/release round-trips preserve avail = capacity within tolerance"
    ~count:1000 QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 4000) in
      let cluster = random_cluster ~n:6 ~rng in
      let res = Residual.create cluster in
      let g = Cluster.graph cluster in
      let n_edges = Graph.n_edges g in
      let edge_path eid =
        let u, v = Graph.endpoints g eid in
        Path.make ~nodes:[ u; v ] ~edges:[ eid ]
      in
      for _ = 1 to 3 do
        (* A batch of fractional reservations that sums to <= capacity
           on every edge, then release them all. *)
        let m = 1 + Hmn_rng.Rng.int rng ~bound:6 in
        let batch =
          List.init m (fun _ ->
              let eid = Hmn_rng.Rng.int rng ~bound:n_edges in
              let cap = (Cluster.link cluster eid).Link.bandwidth_mbps in
              let bw = cap /. float_of_int m *. Hmn_rng.Rng.float rng in
              (eid, bw))
        in
        List.iter
          (fun (eid, bw) ->
            match Residual.reserve_path res (edge_path eid) bw with
            | Ok () -> ()
            | Error e -> Alcotest.fail e)
          batch;
        List.iter (fun (eid, bw) -> Residual.release_path res (edge_path eid) bw) batch
      done;
      (* Drift after full release stays within the documented bound... *)
      let within_tolerance = ref true in
      for eid = 0 to n_edges - 1 do
        let cap = (Cluster.link cluster eid).Link.bandwidth_mbps in
        if Float.abs (Residual.available res eid -. cap) > Residual.tolerance then
          within_tolerance := false
      done;
      (* ...and an exactly-saturating reservation still succeeds. *)
      let eid = Hmn_rng.Rng.int rng ~bound:n_edges in
      let cap = (Cluster.link cluster eid).Link.bandwidth_mbps in
      let saturates =
        Result.is_ok (Residual.reserve_path res (edge_path eid) cap)
      in
      (* Releasing it restores the pre-reserve value to within the
         single-tolerance ledger bound (the ledger is exact, so the
         saturating round-trip adds no drift of its own). *)
      if saturates then Residual.release_path res (edge_path eid) cap;
      !within_tolerance && saturates
      && Float.abs (Residual.available res eid -. cap) <= Residual.tolerance)

(* The exact-ledger guarantee the old clamp-at-zero reserve violated:
   once a saturated edge has absorbed its single tolerance of
   overshoot, further sub-tolerance reservations are rejected instead
   of being forgiven forever (unbounded overcommit). *)
let test_residual_overcommit_bounded () =
  let cluster, e01, _, _, _ = small_cluster () in
  let res = Residual.create cluster in
  let p = Path.make ~nodes:[ 0; 1 ] ~edges:[ e01 ] in
  (match Residual.reserve_path res p 100. with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (float 0.)) "saturated" 0. (Residual.available res e01);
  (* One tolerance-sized reservation rides the check's slack... *)
  (match Residual.reserve_path res p Residual.tolerance with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (float 1e-18))
    "deficit on the ledger" (-.Residual.tolerance)
    (Residual.available res e01);
  (* ...and from then on the deficit is charged: no further overcommit,
     however small the request. *)
  Alcotest.(check bool) "second overshoot rejected" true
    (Result.is_error (Residual.reserve_path res p Residual.tolerance));
  Alcotest.(check bool) "even a tiny one" true
    (Result.is_error (Residual.reserve_path res p (Residual.tolerance /. 8.)));
  (* Releasing everything reserved returns the edge to capacity. *)
  Residual.release_path res p Residual.tolerance;
  Residual.release_path res p 100.;
  Alcotest.(check (float 0.)) "capacity restored" 100.
    (Residual.available res e01)

let prop_residual_reserve_atomic =
  QCheck.Test.make ~name:"a failed multi-edge reserve leaves every edge untouched"
    ~count:200 QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 5000) in
      let cluster = random_cluster ~n:6 ~rng in
      let res = Residual.create cluster in
      let g = Cluster.graph cluster in
      (* Find a 2-hop path a - u - b through distinct neighbors. *)
      let found = ref None in
      for u = 0 to Graph.n_nodes g - 1 do
        if !found = None then
          match Graph.adj_list g u with
          | (a, ea) :: rest -> (
            match List.find_opt (fun (b, _) -> b <> a) rest with
            | Some (b, eb) -> found := Some (a, ea, u, b, eb)
            | None -> ())
          | [] -> ()
      done;
      match !found with
      | None -> QCheck.assume_fail ()  (* no 2-hop path in this draw *)
      | Some (a, ea, u, b, eb) ->
        let path = Path.make ~nodes:[ a; u; b ] ~edges:[ ea; eb ] in
        (* Drain eb below the request so the reserve must fail. *)
        let cap_b = (Cluster.link cluster eb).Link.bandwidth_mbps in
        (match
           Residual.reserve_path res (Path.make ~nodes:[ u; b ] ~edges:[ eb ])
             (cap_b -. 1.)
         with
        | Ok () -> ()
        | Error e -> Alcotest.fail e);
        let before = Array.init (Graph.n_edges g) (Residual.available res) in
        let failed = Result.is_error (Residual.reserve_path res path 5.) in
        failed
        && Array.for_all2 ( = ) before
             (Array.init (Graph.n_edges g) (Residual.available res)))

let test_utilization_zero_capacity_link () =
  (* A zero-bandwidth (administratively dead) cable must not poison the
     mean with NaN. *)
  let g = Graph.create ~n:3 () in
  let e01 = Graph.add_edge g 0 1 (Link.make ~bandwidth_mbps:100. ~latency_ms:5.) in
  ignore
    (Graph.add_edge g 1 2 { Link.bandwidth_mbps = 0.; latency_ms = 5. });
  let cluster = Cluster.create ~nodes:(Array.init 3 host) ~graph:g in
  let res = Residual.create cluster in
  (match Residual.reserve_path res (Path.make ~nodes:[ 0; 1 ] ~edges:[ e01 ]) 50. with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let u = Residual.utilization res in
  Alcotest.(check bool) "finite" true (Float.is_finite u);
  Alcotest.(check (float 1e-9)) "mean over live links only" 0.5 u

(* ---- Latency_table ---- *)

let test_latency_table () =
  let cluster, _, _, _, _ = small_cluster () in
  let tables = Latency_table.create cluster in
  let ar = Latency_table.to_destination tables ~dst:3 in
  Alcotest.(check (float 1e-9)) "dst itself" 0. (Latency_table.get ar 3);
  Alcotest.(check (float 1e-9)) "adjacent" 5. (Latency_table.get ar 2);
  Alcotest.(check (float 1e-9)) "0 via 2" 10. (Latency_table.get ar 0);
  ignore (Latency_table.to_destination tables ~dst:3);
  Alcotest.(check int) "cache hit" 1 (Latency_table.hits tables);
  Alcotest.(check int) "one miss" 1 (Latency_table.misses tables);
  (* Node 3 is a leaf (sole cable to host 2), so its table must come
     from the landmark scheme, not its own Dijkstra. *)
  Alcotest.(check int) "derived via landmark" 1 (Latency_table.derived tables);
  Alcotest.(check int) "one dijkstra" 1 (Latency_table.dijkstras tables);
  let full = Latency_table.to_array ar in
  Alcotest.(check (float 1e-9)) "to_array agrees" 10. full.(0)

(* ---- Astar_prune ---- *)

let test_astar_widest_choice () =
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  let tables = Latency_table.create cluster in
  (* 0->2 with a loose latency bound: the two-hop 100 Mbps path has the
     wider bottleneck than the direct 10 Mbps edge. *)
  match
    Astar.route ~residual ~latency_tables:tables ~src:0 ~dst:2 ~bandwidth_mbps:1.
      ~latency_ms:60. ()
  with
  | Some (p, _) ->
    Alcotest.(check int) "two hops" 2 (Path.hop_count p);
    Alcotest.(check (float 1e-9)) "bottleneck 100" 100.
      (Path.bottleneck ~capacity:(Residual.available residual) p)
  | None -> Alcotest.fail "expected a path"

let test_astar_latency_forces_direct () =
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  let tables = Latency_table.create cluster in
  (* Latency bound 5 ms only admits the direct edge. *)
  match
    Astar.route ~residual ~latency_tables:tables ~src:0 ~dst:2 ~bandwidth_mbps:1.
      ~latency_ms:5. ()
  with
  | Some (p, _) -> Alcotest.(check int) "direct" 1 (Path.hop_count p)
  | None -> Alcotest.fail "expected the direct path"

let test_astar_bandwidth_prunes () =
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  let tables = Latency_table.create cluster in
  (* Demanding 50 Mbps with a 5 ms bound: the only in-bound path (the
     direct 10 Mbps edge) lacks bandwidth -> no path. *)
  Alcotest.(check bool) "no feasible path" true
    (Astar.route ~residual ~latency_tables:tables ~src:0 ~dst:2 ~bandwidth_mbps:50.
       ~latency_ms:5. ()
    = None);
  (* With a loose bound the 100 Mbps detour qualifies. *)
  Alcotest.(check bool) "detour found" true
    (Astar.route ~residual ~latency_tables:tables ~src:0 ~dst:2 ~bandwidth_mbps:50.
       ~latency_ms:60. ()
    <> None)

let test_astar_trivial_and_errors () =
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  let tables = Latency_table.create cluster in
  (match
     Astar.route ~residual ~latency_tables:tables ~src:1 ~dst:1 ~bandwidth_mbps:1.
       ~latency_ms:0. ()
   with
  | Some (p, _) -> Alcotest.(check bool) "trivial" true (Path.is_intra_host p)
  | None -> Alcotest.fail "src = dst must yield the trivial path");
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Astar_prune.route: bandwidth must be positive") (fun () ->
      ignore
        (Astar.route ~residual ~latency_tables:tables ~src:0 ~dst:1
           ~bandwidth_mbps:0. ~latency_ms:1. ()))

let test_astar_respects_residual () =
  let cluster, e01, e12, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  let tables = Latency_table.create cluster in
  (* Consume the fat path; a 50 Mbps request must now fail even with a
     loose latency bound (direct edge has only 10). *)
  let p = Path.make ~nodes:[ 0; 1; 2 ] ~edges:[ e01; e12 ] in
  (match Residual.reserve_path residual p 60. with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "saturated" true
    (Astar.route ~residual ~latency_tables:tables ~src:0 ~dst:2 ~bandwidth_mbps:50.
       ~latency_ms:60. ()
    = None)

(* Brute-force oracle: enumerate all simple paths, keep those within
   the latency bound whose every edge offers the bandwidth, and return
   the maximum bottleneck. *)
let brute_force_widest residual ~src ~dst ~bandwidth_mbps ~latency_ms =
  let cluster = Residual.cluster residual in
  let g = Cluster.graph cluster in
  let n = Graph.n_nodes g in
  let visited = Array.make n false in
  let best = ref None in
  let rec explore u lat width =
    if u = dst then begin
      match !best with
      | Some w when w >= width -> ()
      | _ -> best := Some width
    end
    else
      Graph.iter_adj g u (fun ~neighbor ~eid ->
          if not visited.(neighbor) then begin
            let link = Cluster.link cluster eid in
            let lat' = lat +. link.Link.latency_ms in
            let avail = Residual.available residual eid in
            if lat' <= latency_ms && avail >= bandwidth_mbps then begin
              visited.(neighbor) <- true;
              explore neighbor lat' (Float.min width avail);
              visited.(neighbor) <- false
            end
          end)
  in
  visited.(src) <- true;
  if src = dst then Some infinity
  else begin
    explore src 0. infinity;
    !best
  end

let prop_astar_optimal_bottleneck =
  QCheck.Test.make
    ~name:"A*Prune returns the maximum-bottleneck feasible path (vs brute force)"
    ~count:100 QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 1000) in
      let cluster = random_cluster ~n:8 ~rng in
      let residual = Residual.create cluster in
      let tables = Latency_table.create cluster in
      let bandwidth_mbps = 5. +. (40. *. Hmn_rng.Rng.float rng) in
      let latency_ms = 5. +. (25. *. Hmn_rng.Rng.float rng) in
      let src = Hmn_rng.Rng.int rng ~bound:8 in
      let dst = Hmn_rng.Rng.int rng ~bound:8 in
      let oracle = brute_force_widest residual ~src ~dst ~bandwidth_mbps ~latency_ms in
      match
        ( Astar.route ~residual ~latency_tables:tables ~src ~dst ~bandwidth_mbps
            ~latency_ms (),
          oracle )
      with
      | None, None -> true
      | Some _, None | None, Some _ -> false
      | Some (p, _), Some w ->
        if src = dst then Path.is_intra_host p
        else
          let got = Path.bottleneck ~capacity:(Residual.available residual) p in
          Hmn_prelude.Float_ext.approx got w
          && Path.total_latency cluster p <= latency_ms +. 1e-9
          && Result.is_ok (Path.validate cluster ~src ~dst p))

let prop_astar_dominance_preserves_width =
  QCheck.Test.make
    ~name:"dominance pruning does not change the returned bottleneck" ~count:100
    QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 2000) in
      let cluster = random_cluster ~n:9 ~rng in
      let residual = Residual.create cluster in
      let tables = Latency_table.create cluster in
      let bandwidth_mbps = 5. +. (40. *. Hmn_rng.Rng.float rng) in
      let latency_ms = 5. +. (25. *. Hmn_rng.Rng.float rng) in
      let width p = Path.bottleneck ~capacity:(Residual.available residual) p in
      match
        ( Astar.route ~residual ~latency_tables:tables ~src:0 ~dst:8 ~bandwidth_mbps
            ~latency_ms (),
          Astar.route ~prune_dominated:false ~residual ~latency_tables:tables ~src:0
            ~dst:8 ~bandwidth_mbps ~latency_ms () )
      with
      | None, None -> true
      | Some (a, _), Some (b, _) -> Hmn_prelude.Float_ext.approx (width a) (width b)
      | _ -> false)

(* ---- Dijkstra_route ---- *)

let test_dijkstra_route_min_latency () =
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  (* 0->2 with modest bandwidth: the direct 1-hop (5 ms) edge wins over
     the 2-hop 10 ms detour — the opposite of A*Prune's choice. *)
  match
    Hmn_routing.Dijkstra_route.route ~residual ~src:0 ~dst:2 ~bandwidth_mbps:1.
      ~latency_ms:60. ()
  with
  | Some p -> Alcotest.(check int) "direct edge" 1 (Path.hop_count p)
  | None -> Alcotest.fail "expected a path"

let test_dijkstra_route_respects_bandwidth () =
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  (* Demanding 50 Mbps excludes the 10 Mbps direct edge: detour. *)
  (match
     Hmn_routing.Dijkstra_route.route ~residual ~src:0 ~dst:2 ~bandwidth_mbps:50.
       ~latency_ms:60. ()
   with
  | Some p -> Alcotest.(check int) "detour" 2 (Path.hop_count p)
  | None -> Alcotest.fail "expected the detour");
  (* And with a 5 ms bound nothing qualifies. *)
  Alcotest.(check bool) "bound excludes detour" true
    (Hmn_routing.Dijkstra_route.route ~residual ~src:0 ~dst:2 ~bandwidth_mbps:50.
       ~latency_ms:5. ()
    = None)

let test_dijkstra_route_trivial () =
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  match
    Hmn_routing.Dijkstra_route.route ~residual ~src:2 ~dst:2 ~bandwidth_mbps:1.
      ~latency_ms:0. ()
  with
  | Some p -> Alcotest.(check bool) "intra" true (Path.is_intra_host p)
  | None -> Alcotest.fail "expected the trivial path"

let prop_dijkstra_route_is_minimal_latency =
  QCheck.Test.make
    ~name:"Dijkstra route achieves the minimum feasible latency" ~count:100
    QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 9000) in
      let cluster = random_cluster ~n:10 ~rng in
      let residual = Residual.create cluster in
      let bandwidth_mbps = 5. +. (40. *. Hmn_rng.Rng.float rng) in
      let src = Hmn_rng.Rng.int rng ~bound:10 in
      let dst = Hmn_rng.Rng.int rng ~bound:10 in
      (* Oracle: Dijkstra over the filtered graph. *)
      let g = Cluster.graph cluster in
      let weight eid =
        if Residual.available residual eid >= bandwidth_mbps then
          (Cluster.link cluster eid).Link.latency_ms
        else infinity
      in
      let best = (Hmn_graph.Dijkstra.run g ~weight ~src).Hmn_graph.Dijkstra.dist.(dst) in
      match
        Hmn_routing.Dijkstra_route.route ~residual ~src ~dst ~bandwidth_mbps
          ~latency_ms:1000. ()
      with
      | None -> best = infinity || src = dst
      | Some p ->
        if src = dst then Path.is_intra_host p
        else Hmn_prelude.Float_ext.approx (Path.total_latency cluster p) best)

let prop_landmark_tables_equal_direct_dijkstra =
  QCheck.Test.make
    ~name:"leaf-landmark tables are bit-identical to per-destination Dijkstra"
    ~count:20
    QCheck.(pair small_nat (int_range 2 3))
    (fun (seed, half_k) ->
      let k = 2 * half_k in
      let rng = Hmn_rng.Rng.create (seed + 7000) in
      (* Random host resources; per-tier latencies drawn from dyadic
         values so every path latency is an exact float and bit
         equality is the right check. *)
      let lat () = [| 1.25; 2.5; 5.; 10. |].(Hmn_rng.Rng.int rng ~bound:4) in
      let link = Link.make ~bandwidth_mbps:1000. ~latency_ms:(lat ()) in
      let agg_link = Link.make ~bandwidth_mbps:10_000. ~latency_ms:(lat ()) in
      let core_link = Link.make ~bandwidth_mbps:10_000. ~latency_ms:(lat ()) in
      let cluster =
        Hmn_testbed.Cluster_gen.fat_tree_cluster ~link ~agg_link ~core_link ~k
          ~rng ()
      in
      let tables = Latency_table.create cluster in
      Latency_table.precompute tables;
      let g = Cluster.graph cluster in
      let weight eid = (Cluster.link cluster eid).Link.latency_ms in
      (* First access switch: exercises the non-leaf fallback too. One
         scratch buffer swept over every destination — [to_array] is a
         debug accessor and would allocate a fresh table per dst. *)
      let switch = Cluster.n_hosts cluster in
      let scratch = Array.make (Graph.n_nodes g) 0. in
      Array.for_all
        (fun dst ->
          let tab = Latency_table.to_destination tables ~dst in
          Latency_table.fill tab scratch;
          scratch = Hmn_graph.Dijkstra.distances_to g ~weight ~dst)
        (Array.append (Cluster.host_ids cluster) [| switch |])
      (* one Dijkstra per access-switch landmark, plus the switch dst *)
      && Latency_table.dijkstras tables = Cluster.n_racks cluster + 1)

(* ---- arena engine (Route_ctx) ---- *)

(* The tentpole's contract: with a default context the arena engine is
   the old engine, label for label. The reference implementation is the
   retained list-based copy in [Reference_astar]; the property churns
   the residual between queries (reserving each found path) so later
   queries run against partially drained links, and shares one context
   across every query so pool reuse itself is under test. *)
let prop_arena_engine_bit_identical =
  QCheck.Test.make
    ~name:"arena engine is bit-identical to the retained list engine" ~count:60
    QCheck.(pair small_nat bool)
    (fun (seed, use_fat_tree) ->
      let rng = Hmn_rng.Rng.create (seed + 11_000) in
      let cluster =
        if use_fat_tree then
          let lat () = [| 1.25; 2.5; 5.; 10. |].(Hmn_rng.Rng.int rng ~bound:4) in
          Hmn_testbed.Cluster_gen.fat_tree_cluster
            ~link:(Link.make ~bandwidth_mbps:1000. ~latency_ms:(lat ()))
            ~agg_link:(Link.make ~bandwidth_mbps:10_000. ~latency_ms:(lat ()))
            ~core_link:(Link.make ~bandwidth_mbps:10_000. ~latency_ms:(lat ()))
            ~k:4 ~rng ()
        else random_cluster ~n:10 ~rng
      in
      let n = Graph.n_nodes (Cluster.graph cluster) in
      let residual = Residual.create cluster in
      let tables = Latency_table.create cluster in
      let ctx = Hmn_routing.Route_ctx.create () in
      let ok = ref true in
      for _ = 1 to 12 do
        let src = Hmn_rng.Rng.int rng ~bound:n in
        let dst = Hmn_rng.Rng.int rng ~bound:n in
        let bandwidth_mbps = 5. +. (40. *. Hmn_rng.Rng.float rng) in
        let latency_ms = 4. +. (40. *. Hmn_rng.Rng.float rng) in
        let prune_dominated = Hmn_rng.Rng.int rng ~bound:2 = 0 in
        let reference =
          Reference_astar.route ~prune_dominated ~residual ~latency_tables:tables
            ~src ~dst ~bandwidth_mbps ~latency_ms ()
        and arena =
          Astar.route ~prune_dominated ~ctx ~residual ~latency_tables:tables ~src
            ~dst ~bandwidth_mbps ~latency_ms ()
        in
        match (reference, arena) with
        | None, None -> ()
        | Some (p0, s0), Some (p1, s1) ->
          if
            not
              (p0.Path.nodes = p1.Path.nodes
              && p0.Path.edges = p1.Path.edges
              && s0.Reference_astar.expanded = s1.Astar.expanded
              && s0.Reference_astar.generated = s1.Astar.generated)
          then ok := false;
          if not (Path.is_intra_host p1) then
            ignore (Residual.reserve_path residual p1 bandwidth_mbps)
        | _ -> ok := false
      done;
      !ok)

let test_ctx_cache_revalidates () =
  let cluster, e01, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  let tables = Latency_table.create cluster in
  let ctx = Hmn_routing.Route_ctx.create ~cache:true () in
  let route ~bandwidth_mbps () =
    Astar.route ~ctx ~residual ~latency_tables:tables ~src:0 ~dst:2
      ~bandwidth_mbps ~latency_ms:60. ()
  in
  (* First call searches and caches the widest path 0-1-2. *)
  (match route ~bandwidth_mbps:10. () with
  | Some (p, _) -> Alcotest.(check int) "widest detour" 2 (Path.hop_count p)
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check int) "miss" 1 (Hmn_routing.Route_ctx.cache_misses ctx);
  (* Second call revalidates the entry and skips the search. *)
  (match route ~bandwidth_mbps:10. () with
  | Some (p, s) ->
    Alcotest.(check int) "cached path" 2 (Path.hop_count p);
    Alcotest.(check int) "no search" 0 s.Astar.expanded
  | None -> Alcotest.fail "expected the cached path");
  Alcotest.(check int) "hit" 1 (Hmn_routing.Route_ctx.cache_hits ctx);
  (* Drain 0-1 to 5 Mbps: the cached 0-1-2 no longer carries 10 Mbps,
     so revalidation must reject it and the fresh search falls back to
     the 10 Mbps direct edge. *)
  (match
     Residual.reserve_path residual (Path.make ~nodes:[ 0; 1 ] ~edges:[ e01 ]) 95.
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match route ~bandwidth_mbps:10. () with
  | Some (p, _) -> Alcotest.(check int) "fell back to direct" 1 (Path.hop_count p)
  | None -> Alcotest.fail "expected the direct path");
  Alcotest.(check int) "revalidate failed" 1
    (Hmn_routing.Route_ctx.cache_revalidate_failed ctx)

let test_ctx_tree_fast_path () =
  (* A pure line 0-1-2-3: every route is forced, so the fast path must
     resolve it with zero search effort and the exact path the search
     would return. *)
  let g = Graph.create ~n:4 () in
  let mk () = Link.make ~bandwidth_mbps:100. ~latency_ms:5. in
  ignore (Graph.add_edge g 0 1 (mk ()));
  ignore (Graph.add_edge g 1 2 (mk ()));
  ignore (Graph.add_edge g 2 3 (mk ()));
  let cluster = Cluster.create ~nodes:(Array.init 4 host) ~graph:g in
  let residual = Residual.create cluster in
  let tables = Latency_table.create cluster in
  let ctx = Hmn_routing.Route_ctx.create ~tree_fast_path:true () in
  (match
     Astar.route ~ctx ~residual ~latency_tables:tables ~src:0 ~dst:3
       ~bandwidth_mbps:10. ~latency_ms:60. ()
   with
  | Some (p, s) ->
    Alcotest.(check bool) "forced path" true (p.Path.nodes = [| 0; 1; 2; 3 |]);
    Alcotest.(check int) "no expansions" 0 s.Astar.expanded;
    Alcotest.(check int) "no pushes" 0 s.Astar.generated
  | None -> Alcotest.fail "expected the line path");
  Alcotest.(check int) "fast path hit" 1 (Hmn_routing.Route_ctx.fast_path_hits ctx);
  (* The unique path cannot carry 200 Mbps: the fast path must prove
     infeasibility, not fall through to a search. *)
  Alcotest.(check bool) "infeasible" true
    (Astar.route ~ctx ~residual ~latency_tables:tables ~src:0 ~dst:3
       ~bandwidth_mbps:200. ~latency_ms:60. ()
    = None);
  Alcotest.(check int) "infeasible also counted" 2
    (Hmn_routing.Route_ctx.fast_path_hits ctx);
  (* Exceeding the latency bound along the forced path is likewise
     final. *)
  Alcotest.(check bool) "latency infeasible" true
    (Astar.route ~ctx ~residual ~latency_tables:tables ~src:0 ~dst:3
       ~bandwidth_mbps:10. ~latency_ms:10. ()
    = None)

let test_ctx_fast_path_meets_at_hub () =
  (* Star: leaves 1..3 hang off hub 0 — the two forced walks meet at
     the hub (the same-rack src -> switch -> dst shape). *)
  let g = Graph.create ~n:4 () in
  let mk () = Link.make ~bandwidth_mbps:100. ~latency_ms:5. in
  ignore (Graph.add_edge g 0 1 (mk ()));
  ignore (Graph.add_edge g 0 2 (mk ()));
  ignore (Graph.add_edge g 0 3 (mk ()));
  let cluster = Cluster.create ~nodes:(Array.init 4 host) ~graph:g in
  let residual = Residual.create cluster in
  let tables = Latency_table.create cluster in
  let ctx = Hmn_routing.Route_ctx.create ~tree_fast_path:true () in
  (match
     Astar.route ~ctx ~residual ~latency_tables:tables ~src:1 ~dst:3
       ~bandwidth_mbps:10. ~latency_ms:60. ()
   with
  | Some (p, s) ->
    Alcotest.(check bool) "through the hub" true (p.Path.nodes = [| 1; 0; 3 |]);
    Alcotest.(check int) "no expansions" 0 s.Astar.expanded
  | None -> Alcotest.fail "expected the hub path");
  Alcotest.(check int) "fast path hit" 1 (Hmn_routing.Route_ctx.fast_path_hits ctx)

let test_ctx_fast_path_declines_ambiguity () =
  (* small_cluster's 0 and 2 both have degree >= 2: no forced walk
     applies and the fast path must hand over to the search, which
     still picks the widest (2-hop) route. *)
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  let tables = Latency_table.create cluster in
  let ctx = Hmn_routing.Route_ctx.create ~tree_fast_path:true () in
  (match
     Astar.route ~ctx ~residual ~latency_tables:tables ~src:0 ~dst:2
       ~bandwidth_mbps:10. ~latency_ms:60. ()
   with
  | Some (p, s) ->
    Alcotest.(check int) "widest detour" 2 (Path.hop_count p);
    Alcotest.(check bool) "searched" true (s.Astar.expanded > 0)
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check int) "no fast path hit" 0
    (Hmn_routing.Route_ctx.fast_path_hits ctx)

let test_ctx_flushes_on_cluster_change () =
  (* Two physically distinct (if identical-looking) clusters: rebinding
     must flush the cache, so a path cached under one cluster is never
     served against the other's arrays. *)
  let cluster_a, _, _, _, _ = small_cluster () in
  let cluster_b, _, _, _, _ = small_cluster () in
  let ctx = Hmn_routing.Route_ctx.create ~cache:true () in
  let route cluster =
    Astar.route ~ctx
      ~residual:(Residual.create cluster)
      ~latency_tables:(Latency_table.create cluster)
      ~src:0 ~dst:2 ~bandwidth_mbps:10. ~latency_ms:60. ()
  in
  ignore (route cluster_a);
  ignore (route cluster_a);
  Alcotest.(check int) "hit within one cluster" 1
    (Hmn_routing.Route_ctx.cache_hits ctx);
  ignore (route cluster_b);
  Alcotest.(check int) "no hit across clusters" 1
    (Hmn_routing.Route_ctx.cache_hits ctx);
  Alcotest.(check int) "cold lookup after flush" 2
    (Hmn_routing.Route_ctx.cache_misses ctx)

(* ---- Dfs_route ---- *)

let test_dfs_finds_feasible () =
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  match Dfs.route ~residual ~src:0 ~dst:3 ~bandwidth_mbps:5. ~latency_ms:60. () with
  | Some p ->
    Alcotest.(check bool) "valid" true
      (Result.is_ok (Path.validate cluster ~src:0 ~dst:3 p));
    Alcotest.(check bool) "within latency" true (Path.total_latency cluster p <= 60.)
  | None -> Alcotest.fail "expected a path"

let test_dfs_latency_bound () =
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  (* 0->3 needs at least 2 hops (10 ms); bound 5 ms is infeasible. *)
  Alcotest.(check bool) "infeasible" true
    (Dfs.route ~residual ~src:0 ~dst:3 ~bandwidth_mbps:1. ~latency_ms:5. () = None)

let test_dfs_step_budget () =
  let cluster, _, _, _, _ = small_cluster () in
  let residual = Residual.create cluster in
  (* Destination 3 is two hops away; a 1-expansion budget cannot reach
     it. *)
  Alcotest.(check bool) "budget exhausts" true
    (Dfs.route ~max_steps:1 ~residual ~src:0 ~dst:3 ~bandwidth_mbps:1.
       ~latency_ms:1000. ()
    = None);
  Alcotest.(check bool) "enough budget succeeds" true
    (Dfs.route ~max_steps:1000 ~residual ~src:0 ~dst:3 ~bandwidth_mbps:1.
       ~latency_ms:1000. ()
    <> None)

let prop_dfs_paths_always_valid =
  QCheck.Test.make ~name:"DFS paths satisfy the constraints they were asked for"
    ~count:100 QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 3000) in
      let cluster = random_cluster ~n:10 ~rng in
      let residual = Residual.create cluster in
      let bandwidth_mbps = 5. +. (40. *. Hmn_rng.Rng.float rng) in
      let latency_ms = 5. +. (30. *. Hmn_rng.Rng.float rng) in
      let src = Hmn_rng.Rng.int rng ~bound:10 in
      let dst = Hmn_rng.Rng.int rng ~bound:10 in
      match Dfs.route ~rng ~residual ~src ~dst ~bandwidth_mbps ~latency_ms () with
      | None ->
        (* DFS is complete (no budget here): if it fails, the oracle
           must fail too. *)
        brute_force_widest residual ~src ~dst ~bandwidth_mbps ~latency_ms = None
      | Some p ->
        if src = dst then Path.is_intra_host p
        else
          Result.is_ok (Path.validate cluster ~src ~dst p)
          && Path.total_latency cluster p <= latency_ms +. 1e-9
          && Path.bottleneck ~capacity:(Residual.available residual) p
             >= bandwidth_mbps)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_routing"
    [
      ( "path",
        [
          Alcotest.test_case "basics" `Quick test_path_basics;
          Alcotest.test_case "make errors" `Quick test_path_make_errors;
          Alcotest.test_case "validate (Eqs. 4-7)" `Quick test_path_validate;
        ] );
      ( "residual",
        [
          Alcotest.test_case "reserve/release" `Quick test_residual_reserve_release;
          Alcotest.test_case "atomic failure" `Quick test_residual_atomic_failure;
          Alcotest.test_case "release overflow" `Quick test_residual_release_overflow;
          Alcotest.test_case "overcommit bounded by one tolerance" `Quick
            test_residual_overcommit_bounded;
          Alcotest.test_case "copy & utilization" `Quick
            test_residual_copy_and_utilization;
          Alcotest.test_case "zero-capacity utilization" `Quick
            test_utilization_zero_capacity_link;
        ] );
      ( "latency_table",
        [ Alcotest.test_case "table & cache" `Quick test_latency_table ] );
      ( "astar_prune",
        [
          Alcotest.test_case "widest choice" `Quick test_astar_widest_choice;
          Alcotest.test_case "latency forces direct" `Quick
            test_astar_latency_forces_direct;
          Alcotest.test_case "bandwidth pruning" `Quick test_astar_bandwidth_prunes;
          Alcotest.test_case "trivial & errors" `Quick test_astar_trivial_and_errors;
          Alcotest.test_case "respects residual" `Quick test_astar_respects_residual;
        ] );
      ( "route_ctx",
        [
          Alcotest.test_case "cache revalidates after reservation" `Quick
            test_ctx_cache_revalidates;
          Alcotest.test_case "tree fast path on a line" `Quick
            test_ctx_tree_fast_path;
          Alcotest.test_case "fast path meets at hub" `Quick
            test_ctx_fast_path_meets_at_hub;
          Alcotest.test_case "fast path declines ambiguity" `Quick
            test_ctx_fast_path_declines_ambiguity;
          Alcotest.test_case "cache flushes on cluster change" `Quick
            test_ctx_flushes_on_cluster_change;
        ] );
      ( "dijkstra_route",
        [
          Alcotest.test_case "min latency" `Quick test_dijkstra_route_min_latency;
          Alcotest.test_case "respects bandwidth" `Quick
            test_dijkstra_route_respects_bandwidth;
          Alcotest.test_case "trivial" `Quick test_dijkstra_route_trivial;
        ] );
      ( "dfs_route",
        [
          Alcotest.test_case "finds feasible" `Quick test_dfs_finds_feasible;
          Alcotest.test_case "latency bound" `Quick test_dfs_latency_bound;
          Alcotest.test_case "step budget" `Quick test_dfs_step_budget;
        ] );
      ( "properties",
        [
          q prop_residual_round_trip;
          q prop_residual_reserve_atomic;
          q prop_astar_optimal_bottleneck;
          q prop_astar_dominance_preserves_width;
          q prop_dfs_paths_always_valid;
          q prop_dijkstra_route_is_minimal_latency;
          q prop_landmark_tables_equal_direct_dijkstra;
          q prop_arena_engine_bit_identical;
        ] );
    ]
