(* Tests for hmn_io: JSON round-trips for problems and mappings, file
   persistence, and rejection of malformed or tampered documents. *)

module Json = Hmn_prelude.Json
module Codec = Hmn_io.Codec
module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Venv = Hmn_vnet.Virtual_env
module Problem = Hmn_mapping.Problem
module Constraints = Hmn_mapping.Constraints
module Mapping = Hmn_mapping.Mapping

let sample_problem ?(seed = 321) ?(guests = 40) () =
  let rng = Hmn_rng.Rng.create seed in
  let cluster =
    Hmn_testbed.Cluster_gen.switched_cluster ~vmm:Hmn_testbed.Vmm.none ~n:10 ~rng ()
  in
  let venv =
    Hmn_vnet.Venv_gen.generate ~scale_to_fit:(cluster, 0.8)
      ~profile:Hmn_vnet.Workload.high_level ~n:guests ~density:0.05 ~rng ()
  in
  Problem.make ~cluster ~venv

let sample_mapping ?seed ?guests () =
  let problem = sample_problem ?seed ?guests () in
  match (Hmn_core.Hmn.run problem).Hmn_core.Mapper.result with
  | Ok m -> m
  | Error f -> Alcotest.fail f.Hmn_core.Mapper.reason

let problems_equal a b =
  let ca = a.Problem.cluster and cb = b.Problem.cluster in
  let va = a.Problem.venv and vb = b.Problem.venv in
  Cluster.n_nodes ca = Cluster.n_nodes cb
  && Hmn_graph.Graph.n_edges (Cluster.graph ca) = Hmn_graph.Graph.n_edges (Cluster.graph cb)
  && Venv.n_guests va = Venv.n_guests vb
  && Venv.n_vlinks va = Venv.n_vlinks vb
  && Resources.equal (Cluster.total_capacity ca) (Cluster.total_capacity cb)
  && Resources.equal (Venv.total_demand va) (Venv.total_demand vb)
  && List.for_all
       (fun i ->
         Resources.equal (Venv.demand va i) (Venv.demand vb i)
         && (Venv.guest va i).Hmn_vnet.Guest.name = (Venv.guest vb i).Hmn_vnet.Guest.name)
       (List.init (Venv.n_guests va) Fun.id)

let test_problem_roundtrip () =
  let problem = sample_problem () in
  match Codec.problem_of_json (Codec.problem_to_json problem) with
  | Error e -> Alcotest.fail e
  | Ok problem' ->
    Alcotest.(check bool) "problems equal" true (problems_equal problem problem')

let test_mapping_roundtrip () =
  let mapping = sample_mapping () in
  let problem = Mapping.problem mapping in
  match Codec.mapping_of_json ~problem (Codec.mapping_to_json mapping) with
  | Error e -> Alcotest.fail e
  | Ok mapping' ->
    Alcotest.(check bool) "valid after reload" true (Constraints.is_valid mapping');
    Alcotest.(check (float 1e-9)) "same objective" (Mapping.objective mapping)
      (Mapping.objective mapping');
    Alcotest.(check int) "same hops" (Mapping.total_hops mapping)
      (Mapping.total_hops mapping')

let test_bundle_roundtrip () =
  let mapping = sample_mapping () in
  match Codec.bundle_of_json (Codec.bundle_to_json mapping) with
  | Error e -> Alcotest.fail e
  | Ok mapping' ->
    Alcotest.(check bool) "valid" true (Constraints.is_valid mapping');
    Alcotest.(check (float 1e-9)) "objective preserved" (Mapping.objective mapping)
      (Mapping.objective mapping')

let test_bundle_text_roundtrip () =
  (* Through the actual text representation, pretty-printed. *)
  let mapping = sample_mapping ~seed:99 () in
  let text = Json.to_string ~pretty:true (Codec.bundle_to_json mapping) in
  match Result.bind (Json.of_string text) Codec.bundle_of_json with
  | Error e -> Alcotest.fail e
  | Ok mapping' ->
    Alcotest.(check (float 1e-9)) "objective preserved" (Mapping.objective mapping)
      (Mapping.objective mapping')

let test_file_persistence () =
  let mapping = sample_mapping () in
  let path = Filename.temp_file "hmn_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Codec.save_bundle ~path mapping;
      match Codec.load_bundle ~path with
      | Error e -> Alcotest.fail e
      | Ok mapping' ->
        Alcotest.(check bool) "valid" true (Constraints.is_valid mapping'));
  (* Missing file is a clean error, not an exception. *)
  Alcotest.(check bool) "missing file" true
    (Result.is_error (Codec.load_bundle ~path:"/nonexistent/nope.json"))

let test_rejects_wrong_format () =
  let problem = sample_problem () in
  let j = Codec.problem_to_json problem in
  Alcotest.(check bool) "bundle loader rejects problem doc" true
    (Result.is_error (Codec.bundle_of_json j));
  Alcotest.(check bool) "problem loader rejects junk" true
    (Result.is_error (Codec.problem_of_json (Json.str "hello")))

let test_rejects_tampered_placement () =
  let mapping = sample_mapping () in
  let problem = Mapping.problem mapping in
  let j = Codec.mapping_to_json mapping in
  (* Point every guest at host 0: memory must overflow and decoding
     must fail through the Placement constructor. *)
  let tampered =
    match j with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "placement", Json.Arr xs ->
               ("placement", Json.Arr (List.map (fun _ -> Json.int 0) xs))
             | field -> field)
           fields)
    | _ -> Alcotest.fail "expected an object"
  in
  Alcotest.(check bool) "tampered placement rejected" true
    (Result.is_error (Codec.mapping_of_json ~problem tampered))

let test_rejects_overdrawn_paths () =
  let mapping = sample_mapping () in
  let problem = Mapping.problem mapping in
  let j = Codec.mapping_to_json mapping in
  (* Duplicate a vlink's path entry: the double reservation must be
     rejected by the Link_map. *)
  let tampered =
    match j with
    | Json.Obj fields ->
      Json.Obj
        (List.map
           (function
             | "paths", Json.Arr (p :: rest) -> ("paths", Json.Arr (p :: p :: rest))
             | field -> field)
           fields)
    | _ -> Alcotest.fail "expected an object"
  in
  Alcotest.(check bool) "duplicate path rejected" true
    (Result.is_error (Codec.mapping_of_json ~problem tampered))

let prop_roundtrip_many_seeds =
  QCheck.Test.make ~name:"bundle round-trip preserves validity across seeds" ~count:15
    QCheck.small_nat
    (fun seed ->
      let problem = sample_problem ~seed:(seed + 1) ~guests:25 () in
      match (Hmn_core.Hmn.run problem).Hmn_core.Mapper.result with
      | Error _ -> true
      | Ok mapping -> (
        match Codec.bundle_of_json (Codec.bundle_to_json mapping) with
        | Error _ -> false
        | Ok mapping' ->
          Constraints.is_valid mapping'
          && Hmn_prelude.Float_ext.approx (Mapping.objective mapping)
               (Mapping.objective mapping')))

(* encode -> decode -> re-encode must be the identity on the JSON tree:
   the codec is canonical (decoders rebuild exactly the state the
   encoder will serialise again, with no float drift since no text
   formatting is involved on this path). *)
let prop_reencode_fixpoint =
  QCheck.Test.make ~name:"bundle re-encode is structurally equal" ~count:15
    QCheck.small_nat
    (fun seed ->
      let problem = sample_problem ~seed:(seed + 1000) ~guests:25 () in
      match (Hmn_core.Hmn.run problem).Hmn_core.Mapper.result with
      | Error _ -> true
      | Ok mapping -> (
        let j = Codec.bundle_to_json mapping in
        match Codec.bundle_of_json j with
        | Error _ -> false
        | Ok mapping' -> Codec.bundle_to_json mapping' = j))

(* Over-capacity tampering: shrink every physical link to a bandwidth no
   inter-host path can afford. The bundle loader re-reserves every path
   through the Link_map, so the forgery must fail decoding (or, if it
   ever decoded, the constraints check). *)
let tamper_link_bandwidths ~bw json =
  let map_obj f = function
    | Json.Obj fields -> Json.Obj (List.map f fields)
    | _ -> Alcotest.fail "expected an object"
  in
  map_obj
    (function
      | "problem", problem ->
        ( "problem",
          map_obj
            (function
              | "cluster", cluster ->
                ( "cluster",
                  map_obj
                    (function
                      | "links", Json.Arr links ->
                        ( "links",
                          Json.Arr
                            (List.map
                               (map_obj (function
                                 | "bandwidth_mbps", _ ->
                                   ("bandwidth_mbps", Json.float bw)
                                 | field -> field))
                               links) )
                      | field -> field)
                    cluster )
              | field -> field)
            problem )
      | field -> field)
    json

let test_rejects_tampered_bandwidth () =
  let mapping = sample_mapping () in
  Alcotest.(check bool) "has inter-host links" true (Mapping.total_hops mapping > 0);
  let tampered = tamper_link_bandwidths ~bw:1e-6 (Codec.bundle_to_json mapping) in
  let rejected =
    match Codec.bundle_of_json tampered with
    | Error _ -> true
    | Ok mapping' -> not (Constraints.is_valid mapping')
  in
  Alcotest.(check bool) "over-capacity bundle rejected" true rejected

let () =
  Alcotest.run "hmn_io"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "problem" `Quick test_problem_roundtrip;
          Alcotest.test_case "mapping" `Quick test_mapping_roundtrip;
          Alcotest.test_case "bundle" `Quick test_bundle_roundtrip;
          Alcotest.test_case "bundle via text" `Quick test_bundle_text_roundtrip;
          Alcotest.test_case "files" `Quick test_file_persistence;
        ] );
      ( "rejection",
        [
          Alcotest.test_case "wrong format" `Quick test_rejects_wrong_format;
          Alcotest.test_case "tampered placement" `Quick test_rejects_tampered_placement;
          Alcotest.test_case "overdrawn paths" `Quick test_rejects_overdrawn_paths;
          Alcotest.test_case "tampered bandwidth" `Quick
            test_rejects_tampered_bandwidth;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_roundtrip_many_seeds;
          QCheck_alcotest.to_alcotest prop_reencode_fixpoint;
        ] );
    ]
