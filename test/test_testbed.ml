(* Tests for hmn_testbed: resource vectors, VMM overhead, nodes, links,
   clusters and the topology builders of Table 1. *)

module Resources = Hmn_testbed.Resources
module Vmm = Hmn_testbed.Vmm
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Cluster = Hmn_testbed.Cluster
module Topology = Hmn_testbed.Topology
module Cluster_gen = Hmn_testbed.Cluster_gen
module Graph = Hmn_graph.Graph

let r ~mips ~mem ~stor = Resources.make ~mips ~mem_mb:mem ~stor_gb:stor

let some_hosts n =
  Array.init n (fun i ->
      Node.host ~name:(Printf.sprintf "h%d" i)
        ~capacity:(r ~mips:2000. ~mem:2048. ~stor:1000.))

(* ---- Resources ---- *)

let test_resources_arith () =
  let a = r ~mips:100. ~mem:10. ~stor:1. in
  let b = r ~mips:50. ~mem:5. ~stor:2. in
  let s = Resources.add a b in
  Alcotest.(check (float 1e-9)) "add mips" 150. s.Resources.mips;
  let d = Resources.sub a b in
  Alcotest.(check (float 1e-9)) "sub stor may go negative" (-1.) d.Resources.stor_gb;
  let k = Resources.scale 2. a in
  Alcotest.(check (float 1e-9)) "scale" 20. k.Resources.mem_mb;
  let total = Resources.sum [ a; b; a ] in
  Alcotest.(check (float 1e-9)) "sum" 250. total.Resources.mips;
  Alcotest.(check bool) "zero is identity" true
    (Resources.equal a (Resources.add a Resources.zero))

let test_resources_orders () =
  let small = r ~mips:1. ~mem:1. ~stor:1. in
  let big = r ~mips:2. ~mem:2. ~stor:2. in
  Alcotest.(check bool) "le" true (Resources.le small big);
  Alcotest.(check bool) "not le" false (Resources.le big small);
  (* fits_mem_stor ignores CPU entirely (the paper's Eqs. 2-3). *)
  let cpu_hungry = r ~mips:1000. ~mem:1. ~stor:1. in
  Alcotest.(check bool) "CPU not a constraint" true
    (Resources.fits_mem_stor ~demand:cpu_hungry ~avail:big);
  let mem_hungry = r ~mips:0. ~mem:10. ~stor:1. in
  Alcotest.(check bool) "memory gates" false
    (Resources.fits_mem_stor ~demand:mem_hungry ~avail:big)

let test_resources_validation () =
  Alcotest.check_raises "negative" (Invalid_argument "Resources.make: bad mips")
    (fun () -> ignore (r ~mips:(-1.) ~mem:0. ~stor:0.));
  Alcotest.check_raises "nan" (Invalid_argument "Resources.make: bad mem_mb")
    (fun () -> ignore (r ~mips:0. ~mem:Float.nan ~stor:0.))

(* ---- Vmm ---- *)

let test_vmm_deduct () =
  let cap = r ~mips:1000. ~mem:1024. ~stor:100. in
  let eff = Vmm.deduct cap Vmm.xen_like in
  Alcotest.(check (float 1e-9)) "mips" 950. eff.Resources.mips;
  Alcotest.(check (float 1e-9)) "mem" 960. eff.Resources.mem_mb;
  Alcotest.(check (float 1e-9)) "stor" 96. eff.Resources.stor_gb;
  Alcotest.(check bool) "none is identity" true
    (Resources.equal cap (Vmm.deduct cap Vmm.none));
  (* Overhead larger than the host clamps at zero. *)
  let tiny = r ~mips:10. ~mem:10. ~stor:1. in
  let clamped = Vmm.deduct tiny Vmm.xen_like in
  Alcotest.(check (float 1e-9)) "clamped mips" 0. clamped.Resources.mips

(* ---- Node / Link ---- *)

let test_node () =
  let h = Node.host ~name:"x" ~capacity:(r ~mips:1. ~mem:1. ~stor:1.) in
  let s = Node.switch ~name:"sw" in
  Alcotest.(check bool) "host hosts" true (Node.can_host h);
  Alcotest.(check bool) "switch does not" false (Node.can_host s);
  Alcotest.(check bool) "switch has no capacity" true
    (Resources.equal Resources.zero s.Node.capacity)

let test_link () =
  Alcotest.(check (float 1e-9)) "gigabit bw" 1000. Link.gigabit.Link.bandwidth_mbps;
  Alcotest.(check (float 1e-9)) "gigabit lat" 5. Link.gigabit.Link.latency_ms;
  Alcotest.check_raises "zero bandwidth"
    (Invalid_argument "Link.make: bandwidth must be positive") (fun () ->
      ignore (Link.make ~bandwidth_mbps:0. ~latency_ms:1.));
  Alcotest.check_raises "negative latency"
    (Invalid_argument "Link.make: negative latency") (fun () ->
      ignore (Link.make ~bandwidth_mbps:1. ~latency_ms:(-1.)))

(* ---- Cluster ---- *)

let test_cluster_basics () =
  let cluster = Topology.ring ~hosts:(some_hosts 5) ~link:Link.gigabit in
  Alcotest.(check int) "nodes" 5 (Cluster.n_nodes cluster);
  Alcotest.(check int) "hosts" 5 (Cluster.n_hosts cluster);
  Alcotest.(check bool) "is_host" true (Cluster.is_host cluster 0);
  Alcotest.(check bool) "connected" true (Cluster.is_connected cluster);
  let total = Cluster.total_capacity cluster in
  Alcotest.(check (float 1e-9)) "total cpu" 10000. total.Resources.mips;
  Alcotest.(check (float 1e-9)) "link bw" 1000.
    (Cluster.link cluster 0).Link.bandwidth_mbps

let test_cluster_mismatch () =
  let graph = Hmn_graph.Generators.ring 4 in
  let graph = Graph.map_labels graph ~f:(fun ~eid:_ () -> Link.gigabit) in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Cluster.create: node array / graph size mismatch") (fun () ->
      ignore (Cluster.create ~nodes:(some_hosts 3) ~graph))

(* ---- Topology ---- *)

let test_topology_torus () =
  let cluster = Topology.torus ~hosts:(some_hosts 40) ~rows:5 ~cols:8 ~link:Link.gigabit in
  Alcotest.(check int) "hosts" 40 (Cluster.n_hosts cluster);
  Alcotest.(check int) "links" 80 (Graph.n_edges (Cluster.graph cluster));
  Alcotest.(check bool) "connected" true (Cluster.is_connected cluster);
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Topology.torus: rows * cols <> host count") (fun () ->
      ignore (Topology.torus ~hosts:(some_hosts 5) ~rows:2 ~cols:2 ~link:Link.gigabit))

let test_topology_switched_single () =
  (* 40 hosts on 64-port switches: one switch suffices. *)
  let cluster = Topology.switched ~hosts:(some_hosts 40) ~ports:64 ~link:Link.gigabit in
  Alcotest.(check int) "hosts" 40 (Cluster.n_hosts cluster);
  Alcotest.(check int) "one switch" 41 (Cluster.n_nodes cluster);
  Alcotest.(check int) "links = hosts" 40 (Graph.n_edges (Cluster.graph cluster));
  Alcotest.(check bool) "switch cannot host" false (Cluster.is_host cluster 40);
  Alcotest.(check bool) "connected" true (Cluster.is_connected cluster);
  (* Every host-to-host path is exactly 2 hops via the switch. *)
  let hops = Hmn_graph.Traversal.bfs_hops (Cluster.graph cluster) ~src:0 in
  for h = 1 to 39 do
    Alcotest.(check int) "2 hops" 2 hops.(h)
  done

let test_topology_switched_cascade () =
  (* 100 hosts on 8-port switches: chain capacity s*8-2(s-1) >= 100
     means 16 switches (6*14+2*7 = 98 < 100 with 16 -> check math via
     the function itself). *)
  let s = Topology.switches_needed ~n_hosts:100 ~ports:8 in
  Alcotest.(check bool) "capacity sufficient" true ((s * 8) - (2 * (s - 1)) >= 100);
  Alcotest.(check bool) "minimal" true (((s - 1) * 8) - (2 * (s - 2)) < 100);
  let cluster = Topology.switched ~hosts:(some_hosts 100) ~ports:8 ~link:Link.gigabit in
  Alcotest.(check int) "nodes" (100 + s) (Cluster.n_nodes cluster);
  Alcotest.(check int) "hosts" 100 (Cluster.n_hosts cluster);
  Alcotest.(check bool) "connected" true (Cluster.is_connected cluster);
  (* Port budget per switch is respected. *)
  let g = Cluster.graph cluster in
  for sw = 100 to 100 + s - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "switch %d within ports" sw)
      true
      (Graph.degree g sw <= 8)
  done

let test_topology_mesh () =
  let cluster = Topology.mesh ~hosts:(some_hosts 12) ~rows:3 ~cols:4 ~link:Link.gigabit in
  (* r*(c-1) + c*(r-1) = 3*3 + 4*2 = 17 edges; no wrap-around. *)
  Alcotest.(check int) "edges" 17 (Graph.n_edges (Cluster.graph cluster));
  Alcotest.(check bool) "connected" true (Cluster.is_connected cluster);
  Alcotest.(check int) "corner degree" 2 (Graph.degree (Cluster.graph cluster) 0);
  Alcotest.check_raises "dimension mismatch"
    (Invalid_argument "Topology.mesh: rows * cols <> host count") (fun () ->
      ignore (Topology.mesh ~hosts:(some_hosts 5) ~rows:2 ~cols:2 ~link:Link.gigabit))

let test_topology_hypercube () =
  let cluster = Topology.hypercube ~hosts:(some_hosts 16) ~link:Link.gigabit in
  let g = Cluster.graph cluster in
  (* d-cube: n * d / 2 edges, every node degree d. *)
  Alcotest.(check int) "edges" 32 (Graph.n_edges g);
  for v = 0 to 15 do
    Alcotest.(check int) (Printf.sprintf "degree %d" v) 4 (Graph.degree g v)
  done;
  Alcotest.(check bool) "connected" true (Cluster.is_connected cluster);
  Alcotest.check_raises "non-power-of-two"
    (Invalid_argument "Topology.hypercube: host count must be a power of two")
    (fun () -> ignore (Topology.hypercube ~hosts:(some_hosts 12) ~link:Link.gigabit))

let test_topology_fat_tree () =
  let cluster = Topology.fat_tree ~hosts:(some_hosts 16) ~k:4 ~link:Link.gigabit () in
  let g = Cluster.graph cluster in
  (* k=4: 16 hosts + 8 edge + 8 agg + 4 core = 36 nodes. *)
  Alcotest.(check int) "nodes" 36 (Cluster.n_nodes cluster);
  Alcotest.(check int) "hosts" 16 (Cluster.n_hosts cluster);
  (* Edges: 16 host links + k pods * (k/2)^2 edge-agg + k*(k/2)^2
     agg-core / ... = 16 + 16 + 16 = 48. *)
  Alcotest.(check int) "edges" 48 (Graph.n_edges g);
  Alcotest.(check bool) "connected" true (Cluster.is_connected cluster);
  (* Every switch has degree k. *)
  for sw = 16 to 35 do
    Alcotest.(check int) (Printf.sprintf "switch %d degree" sw) 4 (Graph.degree g sw)
  done;
  (* Hosts in different pods have multiple disjoint shortest paths:
     check the hop distance is 6 (host-edge-agg-core-agg-edge-host). *)
  let hops = Hmn_graph.Traversal.bfs_hops g ~src:0 in
  Alcotest.(check int) "cross-pod distance" 6 hops.(15);
  Alcotest.check_raises "odd k" (Invalid_argument "Topology.fat_tree: k must be even, >= 2")
    (fun () -> ignore (Topology.fat_tree ~hosts:(some_hosts 16) ~k:3 ~link:Link.gigabit ()));
  Alcotest.check_raises "wrong host count"
    (Invalid_argument "Topology.fat_tree: host count must be k^3/4") (fun () ->
      ignore (Topology.fat_tree ~hosts:(some_hosts 10) ~k:4 ~link:Link.gigabit ()))

let test_topology_line_ring () =
  let line = Topology.line ~hosts:(some_hosts 4) ~link:Link.gigabit in
  Alcotest.(check int) "line links" 3 (Graph.n_edges (Cluster.graph line));
  let ring = Topology.ring ~hosts:(some_hosts 4) ~link:Link.gigabit in
  Alcotest.(check int) "ring links" 4 (Graph.n_edges (Cluster.graph ring))

(* ---- Cluster_gen ---- *)

let test_cluster_gen_ranges () =
  let rng = Hmn_rng.Rng.create 1 in
  let hosts = Cluster_gen.gen_hosts ~vmm:Vmm.none ~n:100 ~rng () in
  Array.iter
    (fun h ->
      let c = h.Node.capacity in
      Alcotest.(check bool) "mips in [1000,3000)" true
        (c.Resources.mips >= 1000. && c.Resources.mips < 3000.);
      Alcotest.(check bool) "mem in [1GB,3GB)" true
        (c.Resources.mem_mb >= 1024. && c.Resources.mem_mb < 3072.);
      Alcotest.(check bool) "stor in [1TB,3TB)" true
        (c.Resources.stor_gb >= 1024. && c.Resources.stor_gb < 3072.))
    hosts

let test_cluster_gen_deterministic () =
  let build () =
    let rng = Hmn_rng.Rng.create 99 in
    Cluster_gen.torus_cluster ~rows:5 ~cols:8 ~rng ()
  in
  let a = build () and b = build () in
  for i = 0 to 39 do
    Alcotest.(check bool)
      (Printf.sprintf "host %d equal" i)
      true
      (Resources.equal (Cluster.capacity a i) (Cluster.capacity b i))
  done

let test_cluster_gen_applies_vmm () =
  let rng1 = Hmn_rng.Rng.create 7 and rng2 = Hmn_rng.Rng.create 7 in
  let raw = Cluster_gen.gen_hosts ~vmm:Vmm.none ~n:10 ~rng:rng1 () in
  let net = Cluster_gen.gen_hosts ~vmm:Vmm.xen_like ~n:10 ~rng:rng2 () in
  Array.iteri
    (fun i h ->
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "host %d mips reduced" i)
        (h.Node.capacity.Resources.mips -. 50.)
        net.(i).Node.capacity.Resources.mips)
    raw

(* ---- properties ---- *)

let prop_switched_always_connected =
  QCheck.Test.make ~name:"switched topology always connected & within ports"
    ~count:100
    QCheck.(pair (int_range 1 200) (int_range 3 64))
    (fun (n, ports) ->
      let cluster = Topology.switched ~hosts:(some_hosts n) ~ports ~link:Link.gigabit in
      let g = Cluster.graph cluster in
      let ok = ref (Cluster.is_connected cluster) in
      for v = n to Cluster.n_nodes cluster - 1 do
        if Graph.degree g v > ports then ok := false
      done;
      !ok)

let prop_torus_degree =
  QCheck.Test.make ~name:"torus node degree is 4 when dims > 2" ~count:50
    QCheck.(pair (int_range 3 8) (int_range 3 8))
    (fun (rows, cols) ->
      let cluster =
        Topology.torus ~hosts:(some_hosts (rows * cols)) ~rows ~cols
          ~link:Link.gigabit
      in
      let g = Cluster.graph cluster in
      let ok = ref true in
      for v = 0 to (rows * cols) - 1 do
        if Graph.degree g v <> 4 then ok := false
      done;
      !ok)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_testbed"
    [
      ( "resources",
        [
          Alcotest.test_case "arithmetic" `Quick test_resources_arith;
          Alcotest.test_case "orders" `Quick test_resources_orders;
          Alcotest.test_case "validation" `Quick test_resources_validation;
        ] );
      ("vmm", [ Alcotest.test_case "deduct" `Quick test_vmm_deduct ]);
      ( "node & link",
        [
          Alcotest.test_case "node" `Quick test_node;
          Alcotest.test_case "link" `Quick test_link;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "basics" `Quick test_cluster_basics;
          Alcotest.test_case "mismatch" `Quick test_cluster_mismatch;
        ] );
      ( "topology",
        [
          Alcotest.test_case "torus" `Quick test_topology_torus;
          Alcotest.test_case "switched single" `Quick test_topology_switched_single;
          Alcotest.test_case "switched cascade" `Quick test_topology_switched_cascade;
          Alcotest.test_case "mesh" `Quick test_topology_mesh;
          Alcotest.test_case "hypercube" `Quick test_topology_hypercube;
          Alcotest.test_case "fat-tree" `Quick test_topology_fat_tree;
          Alcotest.test_case "line & ring" `Quick test_topology_line_ring;
        ] );
      ( "cluster_gen",
        [
          Alcotest.test_case "table 1 ranges" `Quick test_cluster_gen_ranges;
          Alcotest.test_case "deterministic" `Quick test_cluster_gen_deterministic;
          Alcotest.test_case "vmm deduction" `Quick test_cluster_gen_applies_vmm;
        ] );
      ( "properties",
        [ q prop_switched_always_connected; q prop_torus_degree ] );
    ]
