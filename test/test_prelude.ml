(* Tests for hmn_prelude: numeric helpers, array/list utilities, the
   table renderer, unit conversions. *)

open Hmn_prelude

let check_float = Alcotest.(check (float 1e-9))

(* ---- Float_ext ---- *)

let test_approx_equal () =
  Alcotest.(check bool) "identical" true (Float_ext.approx 1.0 1.0);
  Alcotest.(check bool) "within eps" true (Float_ext.approx 1.0 (1.0 +. 1e-12));
  Alcotest.(check bool) "outside eps" false (Float_ext.approx 1.0 1.1);
  Alcotest.(check bool) "relative for large" true
    (Float_ext.approx ~eps:1e-9 1e12 (1e12 +. 1.))

let test_clamp () =
  check_float "below" 0. (Float_ext.clamp ~lo:0. ~hi:1. (-5.));
  check_float "above" 1. (Float_ext.clamp ~lo:0. ~hi:1. 5.);
  check_float "inside" 0.5 (Float_ext.clamp ~lo:0. ~hi:1. 0.5);
  Alcotest.check_raises "inverted bounds"
    (Invalid_argument "Float_ext.clamp: lo > hi") (fun () ->
      ignore (Float_ext.clamp ~lo:1. ~hi:0. 0.5))

let test_lerp () =
  check_float "t=0" 2. (Float_ext.lerp 2. 8. 0.);
  check_float "t=1" 8. (Float_ext.lerp 2. 8. 1.);
  check_float "midpoint" 5. (Float_ext.lerp 2. 8. 0.5)

let test_sum_kahan () =
  check_float "empty" 0. (Float_ext.sum [||]);
  check_float "simple" 6. (Float_ext.sum [| 1.; 2.; 3. |]);
  (* Kahan keeps small terms that naive summation drops. *)
  let xs = Array.make 10_000 1e-8 in
  xs.(0) <- 1e8;
  let s = Float_ext.sum xs in
  Alcotest.(check bool) "compensated" true
    (Float.abs (s -. (1e8 +. 9_999e-8)) < 1e-6)

let test_mean () =
  check_float "mean" 2. (Float_ext.mean [| 1.; 2.; 3. |]);
  Alcotest.check_raises "empty" (Invalid_argument "Float_ext.mean: empty array")
    (fun () -> ignore (Float_ext.mean [||]))

let test_round_to () =
  check_float "2 digits" 3.14 (Float_ext.round_to 2 3.14159);
  check_float "0 digits" 3. (Float_ext.round_to 0 3.14159);
  check_float "negative" (-2.7) (Float_ext.round_to 1 (-2.71))

let test_is_finite () =
  Alcotest.(check bool) "finite" true (Float_ext.is_finite 1.0);
  Alcotest.(check bool) "inf" false (Float_ext.is_finite infinity);
  Alcotest.(check bool) "nan" false (Float_ext.is_finite Float.nan)

(* ---- Array_ext ---- *)

let test_sum_by () =
  check_float "doubles" 12. (Array_ext.sum_by (fun x -> 2. *. x) [| 1.; 2.; 3. |]);
  check_float "empty" 0. (Array_ext.sum_by Fun.id [||])

let test_min_max_by () =
  Alcotest.(check int) "min_by" 3 (Array_ext.min_by float_of_int [| 5; 3; 4 |]);
  Alcotest.(check int) "max_by" 5 (Array_ext.max_by float_of_int [| 5; 3; 4 |]);
  (* Ties resolve to the earliest element. *)
  Alcotest.(check (pair int int)) "tie" (1, 0)
    (let xs = [| (1, 0); (1, 1) |] in
     Array_ext.min_by (fun (a, _) -> float_of_int a) xs);
  Alcotest.check_raises "empty" (Invalid_argument "Array_ext.arg_min: empty array")
    (fun () -> ignore (Array_ext.min_by Fun.id [||]))

let test_arg_min_max () =
  Alcotest.(check int) "arg_min" 1 (Array_ext.arg_min float_of_int [| 5; 3; 4 |]);
  Alcotest.(check int) "arg_max" 0 (Array_ext.arg_max float_of_int [| 5; 3; 4 |])

let test_sort_by () =
  let xs = [| 3; 1; 2 |] in
  Array_ext.sort_by float_of_int xs;
  Alcotest.(check (array int)) "ascending" [| 1; 2; 3 |] xs;
  Array_ext.sort_by_desc float_of_int xs;
  Alcotest.(check (array int)) "descending" [| 3; 2; 1 |] xs

let test_sort_stability () =
  (* Equal keys keep their input order. *)
  let xs = [| ("a", 1.); ("b", 1.); ("c", 0.) |] in
  Array_ext.sort_by snd xs;
  Alcotest.(check (list string)) "stable" [ "c"; "a"; "b" ]
    (Array.to_list (Array.map fst xs))

let test_swap_find_count () =
  let xs = [| 1; 2; 3 |] in
  Array_ext.swap xs 0 2;
  Alcotest.(check (array int)) "swap" [| 3; 2; 1 |] xs;
  Alcotest.(check (option int)) "find hit" (Some 1)
    (Array_ext.find_index_opt (( = ) 2) xs);
  Alcotest.(check (option int)) "find miss" None
    (Array_ext.find_index_opt (( = ) 9) xs);
  Alcotest.(check int) "count" 2 (Array_ext.count (fun x -> x > 1) xs)

let test_init_matrix () =
  let m = Array_ext.init_matrix 2 3 (fun i j -> (10 * i) + j) in
  Alcotest.(check int) "rows" 2 (Array.length m);
  Alcotest.(check (array int)) "row 1" [| 10; 11; 12 |] m.(1)

(* ---- List_ext ---- *)

let test_take_drop () =
  Alcotest.(check (list int)) "take" [ 1; 2 ] (List_ext.take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take too many" [ 1 ] (List_ext.take 5 [ 1 ]);
  Alcotest.(check (list int)) "take negative" [] (List_ext.take (-1) [ 1 ]);
  Alcotest.(check (list int)) "drop" [ 3 ] (List_ext.drop 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "drop all" [] (List_ext.drop 5 [ 1; 2 ])

let test_list_min_max () =
  Alcotest.(check int) "min_by" 3 (List_ext.min_by float_of_int [ 5; 3; 4 ]);
  Alcotest.(check int) "max_by" 5 (List_ext.max_by float_of_int [ 5; 3; 4 ]);
  Alcotest.check_raises "empty" (Invalid_argument "List_ext.min_by: empty list")
    (fun () -> ignore (List_ext.min_by Fun.id []))

let test_group_by () =
  let groups = List_ext.group_by (fun x -> x mod 2) [ 1; 2; 3; 4; 5 ] in
  Alcotest.(check int) "two groups" 2 (List.length groups);
  Alcotest.(check (list int)) "odds first (first-seen order)" [ 1; 3; 5 ]
    (List.assoc 1 groups);
  Alcotest.(check (list int)) "evens" [ 2; 4 ] (List.assoc 0 groups)

let test_pairs () =
  Alcotest.(check (list (pair int int)))
    "pairs" [ (1, 2); (1, 3); (2, 3) ] (List_ext.pairs [ 1; 2; 3 ]);
  Alcotest.(check (list (pair int int))) "singleton" [] (List_ext.pairs [ 1 ])

let test_unfold () =
  let countdown = List_ext.unfold (fun n -> if n = 0 then None else Some (n, n - 1)) 3 in
  Alcotest.(check (list int)) "countdown" [ 3; 2; 1 ] countdown

(* ---- Pretty_table ---- *)

let test_table_render () =
  let t = Pretty_table.create ~header:[ "a"; "bb" ] () in
  Pretty_table.add_row t [ "1"; "2" ];
  Pretty_table.add_row t [ "10"; "20" ];
  let out = Pretty_table.render t in
  Alcotest.(check bool) "has header" true
    (String.length out > 0 && String.sub out 0 1 = " ");
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "line count (header + rule + 2 rows + trailing)" 5
    (List.length lines);
  Alcotest.(check string) "first row right-aligned" " 1   2" (List.nth lines 2);
  Alcotest.(check string) "second row right-aligned" "10  20" (List.nth lines 3)

let test_table_align_left () =
  let t =
    Pretty_table.create
      ~aligns:[ Pretty_table.Left; Pretty_table.Right ]
      ~header:[ "name"; "v" ] ()
  in
  Pretty_table.add_row t [ "x"; "1" ];
  let lines = String.split_on_char '\n' (Pretty_table.render t) in
  Alcotest.(check string) "left padding" "x     1" (List.nth lines 2)

let test_table_arity_errors () =
  let t = Pretty_table.create ~header:[ "a" ] () in
  Alcotest.check_raises "row arity"
    (Invalid_argument "Pretty_table.add_row: arity mismatch") (fun () ->
      Pretty_table.add_row t [ "1"; "2" ]);
  Alcotest.check_raises "aligns arity"
    (Invalid_argument "Pretty_table.create: aligns/header arity mismatch")
    (fun () -> ignore (Pretty_table.create ~aligns:[] ~header:[ "a" ] ()))

(* ---- Units ---- *)

let test_conversions () =
  check_float "gbps" 1000. (Units.mbps_of_gbps 1.);
  check_float "kbps" 0.175 (Units.mbps_of_kbps 175.);
  check_float "gb" 2048. (Units.mb_of_gb 2.);
  check_float "tb" 3072. (Units.gb_of_tb 3.);
  check_float "ms" 0.005 (Units.seconds_of_ms 5.);
  check_float "s" 5. (Units.ms_of_seconds 0.005)

let test_pretty_units () =
  Alcotest.(check string) "gbps display" "1.00Gbps"
    (Format.asprintf "%a" Units.pp_bandwidth 1000.);
  Alcotest.(check string) "kbps display" "175kbps"
    (Format.asprintf "%a" Units.pp_bandwidth 0.175);
  Alcotest.(check string) "gb display" "2.00GB"
    (Format.asprintf "%a" Units.pp_memory 2048.);
  Alcotest.(check string) "tb display" "2.00TB"
    (Format.asprintf "%a" Units.pp_storage 2048.)

(* ---- Domain_pool ---- *)

let test_pool_many_tiny_tasks () =
  Domain_pool.with_pool ~jobs:4 (fun pool ->
      let hits = Atomic.make 0 in
      for _ = 1 to 1_000 do
        Domain_pool.run pool (fun () -> Atomic.incr hits)
      done;
      Domain_pool.wait pool;
      Alcotest.(check int) "all tasks ran" 1_000 (Atomic.get hits))

let test_pool_map_array_order () =
  Domain_pool.with_pool ~jobs:3 (fun pool ->
      let xs = Array.init 100 Fun.id in
      let ys = Domain_pool.map_array pool (fun x -> x * x) xs in
      Alcotest.(check (array int)) "in input order" (Array.map (fun x -> x * x) xs) ys)

let test_pool_exception_propagation () =
  Domain_pool.with_pool ~jobs:2 (fun pool ->
      let survivors = Atomic.make 0 in
      for i = 1 to 20 do
        Domain_pool.run pool (fun () ->
            if i = 7 then failwith "task 7 exploded" else Atomic.incr survivors)
      done;
      Alcotest.check_raises "wait re-raises the task's exception"
        (Failure "task 7 exploded") (fun () -> Domain_pool.wait pool);
      (* The failure neither cancelled the other tasks nor poisoned the
         pool: it is reusable after the failed batch. *)
      Alcotest.(check int) "other tasks completed" 19 (Atomic.get survivors);
      Domain_pool.run pool (fun () -> Atomic.incr survivors);
      Domain_pool.wait pool;
      Alcotest.(check int) "usable after failure" 20 (Atomic.get survivors))

let test_pool_reuse_after_wait () =
  Domain_pool.with_pool ~jobs:2 (fun pool ->
      let acc = Atomic.make 0 in
      for batch = 1 to 5 do
        for _ = 1 to 50 do
          Domain_pool.run pool (fun () -> Atomic.incr acc)
        done;
        Domain_pool.wait pool;
        Alcotest.(check int)
          (Printf.sprintf "batch %d drained" batch)
          (batch * 50) (Atomic.get acc)
      done)

let test_pool_misuse () =
  Alcotest.check_raises "zero jobs rejected"
    (Invalid_argument "Domain_pool.create: jobs must be >= 1") (fun () ->
      ignore (Domain_pool.create ~jobs:0 ()));
  let pool = Domain_pool.create ~jobs:1 () in
  Alcotest.(check int) "jobs recorded" 1 (Domain_pool.jobs pool);
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "run after shutdown"
    (Invalid_argument "Domain_pool.run: pool is shut down") (fun () ->
      Domain_pool.run pool (fun () -> ()))

(* ---- Json ---- *)

let test_json_print () =
  let v =
    Json.Obj
      [
        ("a", Json.int 1);
        ("b", Json.Arr [ Json.Bool true; Json.Null; Json.str "x" ]);
        ("c", Json.float 1.5);
      ]
  in
  Alcotest.(check string) "minified"
    {|{"a":1,"b":[true,null,"x"],"c":1.5}|}
    (Json.to_string v);
  Alcotest.(check bool) "pretty contains newlines" true
    (String.contains (Json.to_string ~pretty:true v) '\n')

let test_json_parse_basic () =
  let check_ok input expected =
    match Json.of_string input with
    | Ok v -> Alcotest.(check string) input expected (Json.to_string v)
    | Error e -> Alcotest.fail e
  in
  check_ok {|{"a": 1, "b": [true, null]}|} {|{"a":1,"b":[true,null]}|};
  check_ok "  42  " "42";
  check_ok {|"hi\nthere"|} {|"hi\nthere"|};
  check_ok "[-1.5e2]" "[-150]";
  check_ok "{}" "{}";
  check_ok "[]" "[]"

let test_json_parse_escapes () =
  (match Json.of_string {|"Aé€"|} with
  | Ok (Json.Str s) -> Alcotest.(check string) "unicode escapes" "A\xc3\xa9\xe2\x82\xac" s
  | _ -> Alcotest.fail "expected a string");
  match Json.of_string {|"😀"|} with
  | Ok (Json.Str s) ->
    Alcotest.(check string) "surrogate pair" "\xf0\x9f\x98\x80" s
  | _ -> Alcotest.fail "expected a string"

let test_json_parse_errors () =
  let fails input =
    Alcotest.(check bool) input true (Result.is_error (Json.of_string input))
  in
  fails "{";
  fails "[1,]";
  fails {|{"a" 1}|};
  fails "tru";
  fails "1 2";
  fails {|"unterminated|};
  fails ""

let test_json_accessors () =
  let v = Json.Obj [ ("n", Json.int 3); ("s", Json.str "x"); ("l", Json.Arr [ Json.int 1 ]) ] in
  Alcotest.(check bool) "member ok" true (Result.is_ok (Json.member "n" v));
  Alcotest.(check bool) "member missing" true (Result.is_error (Json.member "zz" v));
  Alcotest.(check (result int string)) "to_int" (Ok 3)
    (Result.bind (Json.member "n" v) Json.to_int);
  Alcotest.(check bool) "to_int on non-integer" true
    (Result.is_error (Json.to_int (Json.float 1.5)));
  Alcotest.(check bool) "to_str wrong type" true
    (Result.is_error (Result.bind (Json.member "n" v) Json.to_str));
  Alcotest.(check bool) "map_result short-circuits" true
    (Result.is_error (Json.map_result Json.to_int [ Json.int 1; Json.str "no" ]))

let prop_json_roundtrip =
  (* Random JSON trees survive print-then-parse. *)
  let rec gen_value depth =
    QCheck.Gen.(
      if depth = 0 then
        oneof
          [
            return Json.Null;
            map (fun b -> Json.Bool b) bool;
            map (fun i -> Json.int i) small_signed_int;
            map (fun s -> Json.str s) (string_size ~gen:printable (int_range 0 10));
          ]
      else
        frequency
          [
            (2, gen_value 0);
            ( 1,
              map (fun xs -> Json.Arr xs) (list_size (int_range 0 4) (gen_value (depth - 1)))
            );
            ( 1,
              map
                (fun kvs ->
                  (* Duplicate keys would not round-trip through assoc
                     lookup; deduplicate. *)
                  let seen = Hashtbl.create 8 in
                  Json.Obj
                    (List.filter
                       (fun (k, _) ->
                         if Hashtbl.mem seen k then false
                         else begin
                           Hashtbl.add seen k ();
                           true
                         end)
                       kvs))
                (list_size (int_range 0 4)
                   (pair (string_size ~gen:printable (int_range 1 6)) (gen_value (depth - 1))))
            );
          ])
  in
  QCheck.Test.make ~name:"JSON print/parse round-trip" ~count:300
    (QCheck.make (gen_value 3))
    (fun v ->
      match Json.of_string (Json.to_string v) with
      | Ok v' -> v = v'
      | Error _ -> false)

let prop_json_parser_never_raises =
  (* Fuzz: arbitrary bytes produce Ok or Error, never an exception. *)
  QCheck.Test.make ~name:"JSON parser is total on arbitrary input" ~count:500
    QCheck.(string_of_size Gen.(int_range 0 40))
    (fun s ->
      match Json.of_string s with Ok _ | Error _ -> true)

(* ---- properties ---- *)

let prop_clamp_in_range =
  QCheck.Test.make ~name:"clamp lands inside the interval" ~count:500
    QCheck.(triple (float_range (-100.) 100.) (float_range (-100.) 100.) float)
    (fun (a, b, x) ->
      let lo = Float.min a b and hi = Float.max a b in
      let r = Float_ext.clamp ~lo ~hi x in
      r >= lo && r <= hi)

let prop_sum_matches_fold =
  QCheck.Test.make ~name:"Kahan sum close to naive fold" ~count:300
    QCheck.(array_of_size Gen.(int_range 0 100) (float_range (-1e6) 1e6))
    (fun xs ->
      let naive = Array.fold_left ( +. ) 0. xs in
      Float_ext.approx ~eps:1e-6 naive (Float_ext.sum xs))

let prop_sort_by_sorts =
  QCheck.Test.make ~name:"sort_by yields ascending keys" ~count:300
    QCheck.(array_of_size Gen.(int_range 0 50) small_int)
    (fun xs ->
      Array_ext.sort_by float_of_int xs;
      let ok = ref true in
      for i = 0 to Array.length xs - 2 do
        if xs.(i) > xs.(i + 1) then ok := false
      done;
      !ok)

let prop_take_drop_partition =
  QCheck.Test.make ~name:"take n @ drop n = original" ~count:300
    QCheck.(pair small_nat (small_list int))
    (fun (n, xs) -> List_ext.take n xs @ List_ext.drop n xs = xs)

let prop_group_by_preserves_elements =
  QCheck.Test.make ~name:"group_by preserves the multiset" ~count:300
    QCheck.(small_list small_int)
    (fun xs ->
      let grouped = List_ext.group_by (fun x -> x mod 3) xs in
      let back = List.concat_map snd grouped in
      List.sort compare back = List.sort compare xs)

let prop_pairs_count =
  QCheck.Test.make ~name:"pairs yields n(n-1)/2 elements" ~count:100
    QCheck.(list_of_size Gen.(int_range 0 30) unit)
    (fun xs ->
      let n = List.length xs in
      List.length (List_ext.pairs xs) = n * (n - 1) / 2)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_prelude"
    [
      ( "float_ext",
        [
          Alcotest.test_case "approx" `Quick test_approx_equal;
          Alcotest.test_case "clamp" `Quick test_clamp;
          Alcotest.test_case "lerp" `Quick test_lerp;
          Alcotest.test_case "kahan sum" `Quick test_sum_kahan;
          Alcotest.test_case "mean" `Quick test_mean;
          Alcotest.test_case "round_to" `Quick test_round_to;
          Alcotest.test_case "is_finite" `Quick test_is_finite;
        ] );
      ( "array_ext",
        [
          Alcotest.test_case "sum_by" `Quick test_sum_by;
          Alcotest.test_case "min/max_by" `Quick test_min_max_by;
          Alcotest.test_case "arg_min/max" `Quick test_arg_min_max;
          Alcotest.test_case "sort_by" `Quick test_sort_by;
          Alcotest.test_case "sort stability" `Quick test_sort_stability;
          Alcotest.test_case "swap/find/count" `Quick test_swap_find_count;
          Alcotest.test_case "init_matrix" `Quick test_init_matrix;
        ] );
      ( "list_ext",
        [
          Alcotest.test_case "take/drop" `Quick test_take_drop;
          Alcotest.test_case "min/max_by" `Quick test_list_min_max;
          Alcotest.test_case "group_by" `Quick test_group_by;
          Alcotest.test_case "pairs" `Quick test_pairs;
          Alcotest.test_case "unfold" `Quick test_unfold;
        ] );
      ( "pretty_table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "left align" `Quick test_table_align_left;
          Alcotest.test_case "arity errors" `Quick test_table_arity_errors;
        ] );
      ( "units",
        [
          Alcotest.test_case "conversions" `Quick test_conversions;
          Alcotest.test_case "pretty printing" `Quick test_pretty_units;
        ] );
      ( "domain_pool",
        [
          Alcotest.test_case "many tiny tasks" `Quick test_pool_many_tiny_tasks;
          Alcotest.test_case "map_array order" `Quick test_pool_map_array_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception_propagation;
          Alcotest.test_case "reuse after wait" `Quick test_pool_reuse_after_wait;
          Alcotest.test_case "misuse" `Quick test_pool_misuse;
        ] );
      ( "json",
        [
          Alcotest.test_case "print" `Quick test_json_print;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basic;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          QCheck_alcotest.to_alcotest prop_json_roundtrip;
          QCheck_alcotest.to_alcotest prop_json_parser_never_raises;
        ] );
      ( "properties",
        [
          q prop_clamp_in_range;
          q prop_sum_matches_fold;
          q prop_sort_by_sorts;
          q prop_take_drop_partition;
          q prop_group_by_preserves_elements;
          q prop_pairs_count;
        ] );
    ]
