(* Tests for hmn_validate: the independent invariant oracle and the
   differential fuzz harness. The validator must accept every mapping
   the real heuristics produce, and reject a hand-corrupted view for
   each violation class — capacity overflow, disconnected / non-simple
   paths, latency violations, bandwidth overflow, residual drift and a
   wrong load-balance factor. *)

module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Resources = Hmn_testbed.Resources
module Guest = Hmn_vnet.Guest
module Vlink = Hmn_vnet.Vlink
module Virtual_env = Hmn_vnet.Virtual_env
module Problem = Hmn_mapping.Problem
module Placement = Hmn_mapping.Placement
module Link_map = Hmn_mapping.Link_map
module Mapping = Hmn_mapping.Mapping
module Path = Hmn_routing.Path
module Residual = Hmn_routing.Residual
module Validator = Hmn_validate.Validator
module Fuzz = Hmn_validate.Fuzz

let host i =
  Node.host
    ~name:(Printf.sprintf "h%d" i)
    ~capacity:(Resources.make ~mips:1000. ~mem_mb:1024. ~stor_gb:100.)

(* A line of four hosts plus a trailing switch:
     0 -- 1 -- 2 -- 3 -- 4(switch), all links 100 Mbps / 5 ms. *)
let fixture_cluster () =
  let g = Graph.create ~n:5 () in
  let mk () = Link.make ~bandwidth_mbps:100. ~latency_ms:5. in
  let e01 = Graph.add_edge g 0 1 (mk ()) in
  let e12 = Graph.add_edge g 1 2 (mk ()) in
  let e23 = Graph.add_edge g 2 3 (mk ()) in
  let e34 = Graph.add_edge g 3 4 (mk ()) in
  let nodes =
    Array.init 5 (fun i -> if i = 4 then Node.switch ~name:"sw" else host i)
  in
  (Cluster.create ~nodes ~graph:g, e01, e12, e23, e34)

(* Three guests; vlink 0 joins guests 0-1, vlink 1 joins guests 1-2. *)
let fixture_venv ~bw ~lat =
  let g = Graph.create ~n:3 () in
  ignore (Graph.add_edge g 0 1 (Vlink.make ~bandwidth_mbps:bw ~latency_ms:lat));
  ignore (Graph.add_edge g 1 2 (Vlink.make ~bandwidth_mbps:bw ~latency_ms:lat));
  let guests =
    Array.init 3 (fun i ->
        Guest.make
          ~name:(Printf.sprintf "vm%d" i)
          ~demand:(Resources.make ~mips:100. ~mem_mb:400. ~stor_gb:10.))
  in
  Virtual_env.create ~guests ~graph:g

let fixture ?(bw = 10.) ?(lat = 20.) () =
  let cluster, e01, e12, e23, e34 = fixture_cluster () in
  let venv = fixture_venv ~bw ~lat in
  (Problem.make ~cluster ~venv, e01, e12, e23, e34)

let ok_exn = function Ok () -> () | Error e -> Alcotest.fail e

(* guests 0,1 on hosts 0,1; guest 2 shares host 1, so vlink 1 is
   intra-host and only vlink 0 needs a (one-hop) path. *)
let valid_mapping problem e01 =
  let placement = Placement.create problem in
  ok_exn (Placement.assign placement ~guest:0 ~host:0);
  ok_exn (Placement.assign placement ~guest:1 ~host:1);
  ok_exn (Placement.assign placement ~guest:2 ~host:1);
  let link_map = Link_map.create problem in
  ok_exn (Link_map.assign link_map ~vlink:0 (Path.make ~nodes:[ 0; 1 ] ~edges:[ e01 ]));
  Mapping.make ~placement ~link_map

let labels report =
  List.map Validator.violation_label report.Validator.violations

let check_flags ~expected view =
  let report = Validator.check_view view in
  Alcotest.(check bool)
    (Printf.sprintf "%s flagged (got: %s)" expected
       (String.concat ", " (labels report)))
    true
    (List.mem expected (labels report))

(* ---- the valid mapping passes ---- *)

let test_accepts_valid () =
  let problem, e01, _, _, _ = fixture () in
  let m = valid_mapping problem e01 in
  let report = Validator.check m in
  Alcotest.(check (list string)) "no violations" [] (labels report);
  Alcotest.(check bool) "is_valid" true (Validator.is_valid m);
  Alcotest.(check int) "guests checked" 3 report.Validator.guests_checked;
  Alcotest.(check int) "vlinks checked" 2 report.Validator.vlinks_checked;
  match report.Validator.derived_lbf with
  | None -> Alcotest.fail "expected a derived LBF for a complete placement"
  | Some lbf ->
    Alcotest.(check (float 1e-6)) "derived = stated" (Mapping.objective m) lbf

(* ---- seeded corruption classes ---- *)

let base_view problem =
  {
    Validator.problem;
    host_of = (fun _ -> None);
    path_of = (fun _ -> None);
    residual_available = None;
    stated_lbf = None;
  }

let test_flags_unassigned () =
  let problem, _, _, _, _ = fixture () in
  check_flags ~expected:"unassigned-guest" (base_view problem)

let test_flags_non_host () =
  let problem, _, _, _, _ = fixture () in
  (* Node 4 is the switch. *)
  check_flags ~expected:"guest-on-non-host"
    { (base_view problem) with host_of = (fun _ -> Some 4) }

let test_flags_capacity_overflow () =
  let problem, _, _, _, _ = fixture () in
  (* All three guests on host 0: 1200 MB of demand in 1024 MB. *)
  let view = { (base_view problem) with host_of = (fun _ -> Some 0) } in
  check_flags ~expected:"memory-exceeded" view

let test_flags_unmapped_vlink () =
  let problem, _, _, _, _ = fixture () in
  let view =
    { (base_view problem) with host_of = (fun g -> Some (min g 2)) }
    (* guests on hosts 0,1,2: both vlinks inter-host, no paths given *)
  in
  check_flags ~expected:"unmapped-vlink" view

let test_flags_disconnected_path () =
  let problem, e01, e12, _, _ = fixture () in
  let view =
    {
      (base_view problem) with
      host_of = (fun g -> Some (min g 2));
      path_of =
        (fun vlink ->
          if vlink = 0 then
            (* e01 joins 0-1, not the stated hop 0-2. *)
            Some (Path.make ~nodes:[ 0; 2 ] ~edges:[ e01 ])
          else Some (Path.make ~nodes:[ 1; 2 ] ~edges:[ e12 ]));
    }
  in
  check_flags ~expected:"disconnected-path" view

let test_flags_non_simple_path () =
  let problem, e01, e12, _, _ = fixture () in
  let view =
    {
      (base_view problem) with
      host_of = (fun g -> Some (min g 2));
      path_of =
        (fun vlink ->
          if vlink = 0 then
            Some (Path.make ~nodes:[ 0; 1; 0; 1 ] ~edges:[ e01; e01; e01 ])
          else Some (Path.make ~nodes:[ 1; 2 ] ~edges:[ e12 ]));
    }
  in
  check_flags ~expected:"path-not-simple" view

let test_flags_endpoint_mismatch () =
  let problem, _, e12, _, _ = fixture () in
  let view =
    {
      (base_view problem) with
      host_of = (fun g -> Some (min g 2));
      (* vlink 0 joins guests on hosts 0 and 1 but the path runs 1-2. *)
      path_of = (fun _ -> Some (Path.make ~nodes:[ 1; 2 ] ~edges:[ e12 ]));
    }
  in
  check_flags ~expected:"endpoint-mismatch" view

let test_flags_latency () =
  (* Bound of 10 ms; the only offered path for vlink 0 runs 0-1-2-3 at
     15 ms. Guests 0 and 1 are placed at the path's ends so the
     endpoints are consistent and only the latency is wrong. *)
  let problem, e01, e12, e23, _ = fixture ~lat:10. () in
  let view =
    {
      (base_view problem) with
      host_of = (fun g -> if g = 0 then Some 0 else Some 3);
      path_of =
        (fun vlink ->
          if vlink = 0 then
            Some (Path.make ~nodes:[ 0; 1; 2; 3 ] ~edges:[ e01; e12; e23 ])
          else None);
    }
  in
  check_flags ~expected:"latency-exceeded" view

let test_flags_bandwidth_overflow () =
  (* Two 80 Mbps vlinks forced over the same 100 Mbps cable. *)
  let problem, e01, _, _, _ = fixture ~bw:80. () in
  let view =
    {
      (base_view problem) with
      host_of = (fun g -> Some (g mod 2));  (* guests 0,2 on host 0; 1 on 1 *)
      path_of = (fun _ -> Some (Path.make ~nodes:[ 0; 1 ] ~edges:[ e01 ]));
    }
  in
  check_flags ~expected:"bandwidth-exceeded" view

let test_flags_residual_mismatch () =
  let problem, e01, _, _, _ = fixture () in
  let m = valid_mapping problem e01 in
  let view =
    {
      (Validator.view_of_mapping m) with
      Validator.residual_available = Some (fun _ -> 999.);
    }
  in
  check_flags ~expected:"residual-mismatch" view

let test_flags_wrong_lbf () =
  let problem, e01, _, _, _ = fixture () in
  let m = valid_mapping problem e01 in
  let view =
    {
      (Validator.view_of_mapping m) with
      Validator.stated_lbf = Some (Mapping.objective m +. 10.);
    }
  in
  check_flags ~expected:"objective-mismatch" view

(* A live-state corruption end to end: reserve extra bandwidth directly
   on the link map's residual, which no per-path reconstruction can
   explain. check (not check_view) must see it. *)
let test_residual_drift_detected_on_mapping () =
  let problem, e01, _, e23, _ = fixture () in
  let m = valid_mapping problem e01 in
  let residual = Link_map.residual m.Mapping.link_map in
  (match Residual.reserve_path residual (Path.make ~nodes:[ 2; 3 ] ~edges:[ e23 ]) 5. with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let report = Validator.check m in
  Alcotest.(check bool) "drift flagged" true
    (List.mem "residual-mismatch" (labels report))

(* ---- properties ---- *)

(* Every mapping any registered heuristic produces on a random instance
   passes the oracle. This is the differential test the fuzz harness
   runs at scale; a small pinned sample keeps runtest fast. *)
let prop_mappers_produce_valid_mappings =
  QCheck.Test.make ~name:"registry mappings satisfy the oracle on random instances"
    ~count:15 QCheck.small_nat
    (fun seed ->
      let case_seed = 5000 + seed in
      let params = Fuzz.draw_params (Hmn_rng.Rng.create case_seed) in
      let problem = Fuzz.build_problem params ~seed:case_seed in
      List.for_all
        (fun mapper ->
          let rng = Hmn_rng.Rng.create (case_seed + 1) in
          match (mapper.Hmn_core.Mapper.run ~rng problem).Hmn_core.Mapper.result with
          | Error _ -> true
          | Ok mapping -> (Validator.check mapping).Validator.violations = [])
        (Hmn_core.Registry.all ~max_tries:20 ()))

let prop_fuzz_smoke_clean =
  QCheck.Test.make ~name:"fuzz harness finds nothing on a healthy build" ~count:3
    QCheck.small_nat
    (fun seed ->
      let stats = Fuzz.run ~seed:(Fuzz.smoke_seed + seed) ~count:2 () in
      stats.Fuzz.failures = [] && stats.Fuzz.cases = 2)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_validate"
    [
      ( "accepts",
        [ Alcotest.test_case "valid mapping passes" `Quick test_accepts_valid ] );
      ( "rejects",
        [
          Alcotest.test_case "unassigned guest" `Quick test_flags_unassigned;
          Alcotest.test_case "guest on non-host" `Quick test_flags_non_host;
          Alcotest.test_case "capacity overflow" `Quick test_flags_capacity_overflow;
          Alcotest.test_case "unmapped vlink" `Quick test_flags_unmapped_vlink;
          Alcotest.test_case "disconnected path" `Quick test_flags_disconnected_path;
          Alcotest.test_case "non-simple path" `Quick test_flags_non_simple_path;
          Alcotest.test_case "endpoint mismatch" `Quick test_flags_endpoint_mismatch;
          Alcotest.test_case "latency violation" `Quick test_flags_latency;
          Alcotest.test_case "bandwidth overflow" `Quick test_flags_bandwidth_overflow;
          Alcotest.test_case "residual mismatch" `Quick test_flags_residual_mismatch;
          Alcotest.test_case "wrong LBF" `Quick test_flags_wrong_lbf;
          Alcotest.test_case "live residual drift" `Quick
            test_residual_drift_detected_on_mapping;
        ] );
      ( "properties",
        [ q prop_mappers_produce_valid_mappings; q prop_fuzz_smoke_clean ] );
    ]
