(* Tests for hmn_dstruct: heaps, union-find, dynamic arrays, bitsets.
   The imperative heaps are cross-checked against the persistent
   pairing heap and against plain sorting. *)

module Binary_heap = Hmn_dstruct.Binary_heap
module Indexed_heap = Hmn_dstruct.Indexed_heap
module Pairing_heap = Hmn_dstruct.Pairing_heap
module Union_find = Hmn_dstruct.Union_find
module Dynarray = Hmn_dstruct.Dynarray
module Bitset = Hmn_dstruct.Bitset

(* ---- Binary_heap ---- *)

let test_bh_basic () =
  let h = Binary_heap.create ~cmp:Int.compare () in
  Alcotest.(check bool) "empty" true (Binary_heap.is_empty h);
  List.iter (Binary_heap.push h) [ 5; 1; 4; 2; 3 ];
  Alcotest.(check int) "length" 5 (Binary_heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Binary_heap.peek h);
  Alcotest.(check (list int)) "sorted drain" [ 1; 2; 3; 4; 5 ]
    (Binary_heap.to_sorted_list h);
  Alcotest.(check int) "to_sorted_list non-destructive" 5 (Binary_heap.length h)

let test_bh_pop_order () =
  let h = Binary_heap.create ~cmp:Int.compare () in
  List.iter (Binary_heap.push h) [ 3; 1; 2 ];
  Alcotest.(check (option int)) "pop 1" (Some 1) (Binary_heap.pop h);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Binary_heap.pop h);
  Binary_heap.push h 0;
  Alcotest.(check (option int)) "interleaved push" (Some 0) (Binary_heap.pop h);
  Alcotest.(check (option int)) "pop 3" (Some 3) (Binary_heap.pop h);
  Alcotest.(check (option int)) "empty" None (Binary_heap.pop h);
  Alcotest.check_raises "pop_exn empty"
    (Invalid_argument "Binary_heap.pop_exn: empty heap") (fun () ->
      ignore (Binary_heap.pop_exn h))

let test_bh_custom_cmp () =
  let h = Binary_heap.create ~cmp:(fun a b -> Int.compare b a) () in
  List.iter (Binary_heap.push h) [ 1; 3; 2 ];
  Alcotest.(check (option int)) "max-heap" (Some 3) (Binary_heap.pop h)

let test_bh_floats () =
  (* Regression guard for the float-array representation. *)
  let h = Binary_heap.create ~cmp:Float.compare () in
  List.iter (Binary_heap.push h) [ 3.5; 1.5; 2.5 ];
  Alcotest.(check (option (float 0.))) "float min" (Some 1.5) (Binary_heap.pop h)

let test_bh_clear_and_grow () =
  let h = Binary_heap.create ~capacity:2 ~cmp:Int.compare () in
  for i = 100 downto 1 do
    Binary_heap.push h i
  done;
  Alcotest.(check int) "grew" 100 (Binary_heap.length h);
  Binary_heap.clear h;
  Alcotest.(check bool) "cleared" true (Binary_heap.is_empty h);
  Binary_heap.push h 7;
  Alcotest.(check (option int)) "usable after clear" (Some 7) (Binary_heap.pop h)

(* ---- Indexed_heap ---- *)

let test_ih_basic () =
  let h = Indexed_heap.create 10 in
  Indexed_heap.insert h 3 5.;
  Indexed_heap.insert h 7 2.;
  Indexed_heap.insert h 1 8.;
  Alcotest.(check bool) "mem" true (Indexed_heap.mem h 3);
  Alcotest.(check bool) "not mem" false (Indexed_heap.mem h 0);
  Alcotest.(check (option (float 0.))) "priority" (Some 5.) (Indexed_heap.priority h 3);
  Alcotest.(check (option (pair int (float 0.)))) "pop min" (Some (7, 2.))
    (Indexed_heap.pop_min h);
  Alcotest.(check bool) "removed" false (Indexed_heap.mem h 7)

let test_ih_decrease () =
  let h = Indexed_heap.create 10 in
  Indexed_heap.insert h 0 10.;
  Indexed_heap.insert h 1 5.;
  Indexed_heap.decrease h 0 1.;
  Alcotest.(check (option (pair int (float 0.)))) "decreased wins" (Some (0, 1.))
    (Indexed_heap.pop_min h);
  Alcotest.check_raises "increase rejected"
    (Invalid_argument "Indexed_heap.decrease: priority increase") (fun () ->
      Indexed_heap.decrease h 1 9.)

let test_ih_insert_or_decrease () =
  let h = Indexed_heap.create 4 in
  Indexed_heap.insert_or_decrease h 2 5.;
  Indexed_heap.insert_or_decrease h 2 3.;
  Indexed_heap.insert_or_decrease h 2 7. (* no-op: higher *);
  Alcotest.(check (option (float 0.))) "kept the minimum" (Some 3.)
    (Indexed_heap.priority h 2)

let test_ih_errors () =
  let h = Indexed_heap.create 2 in
  Indexed_heap.insert h 0 1.;
  Alcotest.check_raises "duplicate insert"
    (Invalid_argument "Indexed_heap.insert: key already present") (fun () ->
      Indexed_heap.insert h 0 2.);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Indexed_heap.insert: key out of range") (fun () ->
      Indexed_heap.insert h 5 1.);
  Alcotest.check_raises "decrease absent"
    (Invalid_argument "Indexed_heap.decrease: key absent") (fun () ->
      Indexed_heap.decrease h 1 0.)

let test_ih_dijkstra_pattern () =
  (* The exact usage pattern of Dijkstra: repeated insert_or_decrease
     then drain; priorities must come out non-decreasing. *)
  let h = Indexed_heap.create 100 in
  let rng = Hmn_rng.Rng.create 13 in
  for k = 0 to 99 do
    Indexed_heap.insert h k (Hmn_rng.Rng.float rng *. 100.)
  done;
  for _ = 0 to 199 do
    let k = Hmn_rng.Rng.int rng ~bound:100 in
    match Indexed_heap.priority h k with
    | Some p when p > 1. -> Indexed_heap.decrease h k (p /. 2.)
    | _ -> ()
  done;
  let last = ref neg_infinity in
  let ok = ref true in
  let rec drain () =
    match Indexed_heap.pop_min h with
    | None -> ()
    | Some (_, p) ->
      if p < !last then ok := false;
      last := p;
      drain ()
  in
  drain ();
  Alcotest.(check bool) "monotone drain" true !ok

(* ---- Pairing_heap ---- *)

let test_ph_basic () =
  let h = Pairing_heap.of_list ~cmp:Int.compare [ 4; 2; 9; 1 ] in
  Alcotest.(check int) "size" 4 (Pairing_heap.length h);
  Alcotest.(check (option int)) "min" (Some 1) (Pairing_heap.find_min h);
  Alcotest.(check (list int)) "sorted" [ 1; 2; 4; 9 ] (Pairing_heap.to_sorted_list h);
  (* Persistence: the original heap is unchanged by delete_min. *)
  (match Pairing_heap.delete_min h with
  | Some (1, h') -> Alcotest.(check int) "new size" 3 (Pairing_heap.length h')
  | _ -> Alcotest.fail "expected min 1");
  Alcotest.(check int) "original intact" 4 (Pairing_heap.length h)

let test_ph_merge () =
  let a = Pairing_heap.of_list ~cmp:Int.compare [ 5; 1 ] in
  let b = Pairing_heap.of_list ~cmp:Int.compare [ 3; 0 ] in
  let m = Pairing_heap.merge a b in
  Alcotest.(check (list int)) "merged" [ 0; 1; 3; 5 ] (Pairing_heap.to_sorted_list m)

(* ---- Union_find ---- *)

let test_uf_basic () =
  let uf = Union_find.create 5 in
  Alcotest.(check int) "initial sets" 5 (Union_find.count uf);
  Alcotest.(check bool) "fresh union" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "redundant union" false (Union_find.union uf 0 1);
  Alcotest.(check bool) "same" true (Union_find.same uf 0 1);
  Alcotest.(check bool) "different" false (Union_find.same uf 0 2);
  Alcotest.(check int) "sets after union" 4 (Union_find.count uf)

let test_uf_transitivity () =
  let uf = Union_find.create 6 in
  ignore (Union_find.union uf 0 1);
  ignore (Union_find.union uf 1 2);
  ignore (Union_find.union uf 3 4);
  Alcotest.(check bool) "transitive" true (Union_find.same uf 0 2);
  Alcotest.(check bool) "disjoint groups" false (Union_find.same uf 2 3);
  ignore (Union_find.union uf 2 3);
  Alcotest.(check bool) "joined" true (Union_find.same uf 0 4);
  Alcotest.(check int) "two sets left" 2 (Union_find.count uf)

let test_uf_bounds () =
  let uf = Union_find.create 3 in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Union_find.find: element out of range") (fun () ->
      ignore (Union_find.find uf 3))

(* ---- Dynarray ---- *)

let test_dyn_basic () =
  let d = Dynarray.create () in
  Alcotest.(check bool) "empty" true (Dynarray.is_empty d);
  for i = 0 to 99 do
    Dynarray.push d i
  done;
  Alcotest.(check int) "length" 100 (Dynarray.length d);
  Alcotest.(check int) "get" 42 (Dynarray.get d 42);
  Dynarray.set d 42 (-1);
  Alcotest.(check int) "set" (-1) (Dynarray.get d 42);
  Alcotest.(check (option int)) "pop" (Some 99) (Dynarray.pop d);
  Alcotest.(check int) "after pop" 99 (Dynarray.length d)

let test_dyn_conversions () =
  let d = Dynarray.of_array [| 1; 2; 3 |] in
  Alcotest.(check (array int)) "roundtrip" [| 1; 2; 3 |] (Dynarray.to_array d);
  Alcotest.(check int) "fold" 6 (Dynarray.fold_left ( + ) 0 d);
  let acc = ref [] in
  Dynarray.iter (fun x -> acc := x :: !acc) d;
  Alcotest.(check (list int)) "iter order" [ 3; 2; 1 ] !acc;
  Dynarray.clear d;
  Alcotest.(check bool) "clear" true (Dynarray.is_empty d)

let test_dyn_errors () =
  let d = Dynarray.of_array [| 1 |] in
  Alcotest.check_raises "get oob"
    (Invalid_argument "Dynarray.get: index out of bounds") (fun () ->
      ignore (Dynarray.get d 1));
  Alcotest.check_raises "set oob"
    (Invalid_argument "Dynarray.set: index out of bounds") (fun () ->
      Dynarray.set d (-1) 0);
  ignore (Dynarray.pop d);
  Alcotest.(check (option int)) "pop empty" None (Dynarray.pop d)

let test_dyn_reset_truncate () =
  let d = Dynarray.of_array [| 1; 2; 3; 4; 5 |] in
  Dynarray.truncate d 3;
  Alcotest.(check (array int)) "truncated" [| 1; 2; 3 |] (Dynarray.to_array d);
  (* Truncation keeps storage: pushes refill the vacated slots. *)
  Dynarray.push d 9;
  Alcotest.(check (array int)) "refilled" [| 1; 2; 3; 9 |] (Dynarray.to_array d);
  Alcotest.check_raises "truncate beyond length"
    (Invalid_argument "Dynarray.truncate: bad length") (fun () ->
      Dynarray.truncate d 5);
  Alcotest.check_raises "negative truncate"
    (Invalid_argument "Dynarray.truncate: bad length") (fun () ->
      Dynarray.truncate d (-1));
  Dynarray.reset d;
  Alcotest.(check bool) "reset empties" true (Dynarray.is_empty d);
  Dynarray.push d 7;
  Alcotest.(check (array int)) "reusable after reset" [| 7 |]
    (Dynarray.to_array d)

(* ---- Bitset ---- *)

let test_bs_basic () =
  let b = Bitset.create 70 in
  Alcotest.(check int) "capacity" 70 (Bitset.capacity b);
  Alcotest.(check bool) "initially absent" false (Bitset.mem b 65);
  Bitset.add b 65;
  Bitset.add b 0;
  Bitset.add b 65 (* idempotent *);
  Alcotest.(check bool) "added" true (Bitset.mem b 65);
  Alcotest.(check int) "cardinal" 2 (Bitset.cardinal b);
  Bitset.remove b 65;
  Alcotest.(check bool) "removed" false (Bitset.mem b 65);
  Alcotest.(check int) "cardinal after remove" 1 (Bitset.cardinal b)

let test_bs_copy_iter () =
  let b = Bitset.create 16 in
  List.iter (Bitset.add b) [ 1; 5; 9 ];
  let c = Bitset.copy b in
  Bitset.add c 2;
  Alcotest.(check bool) "copy independent" false (Bitset.mem b 2);
  Alcotest.(check (list int)) "to_list sorted" [ 1; 5; 9 ] (Bitset.to_list b);
  Bitset.clear b;
  Alcotest.(check int) "cleared" 0 (Bitset.cardinal b)

let test_bs_bounds () =
  let b = Bitset.create 8 in
  Alcotest.check_raises "oob" (Invalid_argument "Bitset: element out of range")
    (fun () -> ignore (Bitset.mem b 8))

(* ---- properties ---- *)

let prop_bh_sorts =
  QCheck.Test.make ~name:"binary heap drains in sorted order" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let h = Binary_heap.create ~cmp:Int.compare () in
      List.iter (Binary_heap.push h) xs;
      Binary_heap.to_sorted_list h = List.sort Int.compare xs)

let prop_bh_matches_pairing =
  QCheck.Test.make ~name:"binary heap agrees with pairing heap" ~count:300
    QCheck.(list small_int)
    (fun xs ->
      let bh = Binary_heap.create ~cmp:Int.compare () in
      List.iter (Binary_heap.push bh) xs;
      let ph = Pairing_heap.of_list ~cmp:Int.compare xs in
      Binary_heap.to_sorted_list bh = Pairing_heap.to_sorted_list ph)

let prop_ih_drain_sorted =
  QCheck.Test.make ~name:"indexed heap drains monotonically" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0. 100.))
    (fun prios ->
      let n = List.length prios in
      let h = Indexed_heap.create n in
      List.iteri (fun k p -> Indexed_heap.insert h k p) prios;
      let rec drain last =
        match Indexed_heap.pop_min h with
        | None -> true
        | Some (_, p) -> p >= last && drain p
      in
      drain neg_infinity)

let prop_uf_components_partition =
  QCheck.Test.make ~name:"union-find set count decreases exactly on fresh unions"
    ~count:200
    QCheck.(list (pair (int_range 0 19) (int_range 0 19)))
    (fun edges ->
      let uf = Union_find.create 20 in
      let fresh = List.fold_left (fun acc (a, b) ->
          if Union_find.union uf a b then acc + 1 else acc) 0 edges in
      Union_find.count uf = 20 - fresh)

let prop_bitset_mirrors_set =
  QCheck.Test.make ~name:"bitset mirrors a reference set" ~count:200
    QCheck.(list (pair bool (int_range 0 63)))
    (fun ops ->
      let b = Bitset.create 64 in
      let reference = Hashtbl.create 16 in
      List.iter
        (fun (add, i) ->
          if add then begin
            Bitset.add b i;
            Hashtbl.replace reference i ()
          end
          else begin
            Bitset.remove b i;
            Hashtbl.remove reference i
          end)
        ops;
      Bitset.cardinal b = Hashtbl.length reference
      && List.for_all (fun i -> Bitset.mem b i = Hashtbl.mem reference i)
           (List.init 64 Fun.id))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_dstruct"
    [
      ( "binary_heap",
        [
          Alcotest.test_case "basic" `Quick test_bh_basic;
          Alcotest.test_case "pop order" `Quick test_bh_pop_order;
          Alcotest.test_case "custom cmp" `Quick test_bh_custom_cmp;
          Alcotest.test_case "floats" `Quick test_bh_floats;
          Alcotest.test_case "clear & grow" `Quick test_bh_clear_and_grow;
        ] );
      ( "indexed_heap",
        [
          Alcotest.test_case "basic" `Quick test_ih_basic;
          Alcotest.test_case "decrease-key" `Quick test_ih_decrease;
          Alcotest.test_case "insert_or_decrease" `Quick test_ih_insert_or_decrease;
          Alcotest.test_case "errors" `Quick test_ih_errors;
          Alcotest.test_case "dijkstra pattern" `Quick test_ih_dijkstra_pattern;
        ] );
      ( "pairing_heap",
        [
          Alcotest.test_case "basic & persistence" `Quick test_ph_basic;
          Alcotest.test_case "merge" `Quick test_ph_merge;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "basic" `Quick test_uf_basic;
          Alcotest.test_case "transitivity" `Quick test_uf_transitivity;
          Alcotest.test_case "bounds" `Quick test_uf_bounds;
        ] );
      ( "dynarray",
        [
          Alcotest.test_case "basic" `Quick test_dyn_basic;
          Alcotest.test_case "conversions" `Quick test_dyn_conversions;
          Alcotest.test_case "errors" `Quick test_dyn_errors;
          Alcotest.test_case "reset & truncate" `Quick test_dyn_reset_truncate;
        ] );
      ( "bitset",
        [
          Alcotest.test_case "basic" `Quick test_bs_basic;
          Alcotest.test_case "copy & iter" `Quick test_bs_copy_iter;
          Alcotest.test_case "bounds" `Quick test_bs_bounds;
        ] );
      ( "properties",
        [
          q prop_bh_sorts;
          q prop_bh_matches_pairing;
          q prop_ih_drain_sorted;
          q prop_uf_components_partition;
          q prop_bitset_mirrors_set;
        ] );
    ]
