(* Tests for hmn_stats: descriptive statistics with known values,
   percentiles, correlations and the Welford online aggregator. *)

module D = Hmn_stats.Descriptive
module C = Hmn_stats.Correlation
module R = Hmn_stats.Running

let check_float = Alcotest.(check (float 1e-9))

let test_mean_stddev () =
  check_float "mean" 3. (D.mean [| 1.; 2.; 3.; 4.; 5. |]);
  check_float "population sd" (sqrt 2.) (D.stddev [| 1.; 2.; 3.; 4.; 5. |]);
  check_float "sample sd" (sqrt 2.5) (D.stddev ~sample:true [| 1.; 2.; 3.; 4.; 5. |]);
  check_float "constant sd" 0. (D.stddev [| 7.; 7.; 7. |]);
  Alcotest.check_raises "empty" (Invalid_argument "Descriptive.variance: empty input")
    (fun () -> ignore (D.stddev [||]));
  Alcotest.check_raises "singleton sample variance"
    (Invalid_argument "Descriptive.variance: need at least two samples") (fun () ->
      ignore (D.variance ~sample:true [| 1. |]))

let test_summarize () =
  let s = D.summarize [| 4.; 1.; 3. |] in
  Alcotest.(check int) "n" 3 s.D.n;
  check_float "min" 1. s.D.min;
  check_float "max" 4. s.D.max;
  check_float "mean" (8. /. 3.) s.D.mean;
  Alcotest.(check bool) "pp" true
    (String.length (Format.asprintf "%a" D.pp_summary s) > 0)

let test_percentile () =
  let xs = [| 15.; 20.; 35.; 40.; 50. |] in
  check_float "p0" 15. (D.percentile xs ~p:0.);
  check_float "p100" 50. (D.percentile xs ~p:100.);
  check_float "median" 35. (D.median xs);
  check_float "p25" 20. (D.percentile xs ~p:25.);
  (* Interpolated percentile. *)
  check_float "p10 interpolated" 17. (D.percentile xs ~p:10.);
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Descriptive.percentile: p out of range") (fun () ->
      ignore (D.percentile xs ~p:101.))

let test_pearson_known () =
  check_float "perfect" 1. (C.pearson [| 1.; 2.; 3. |] [| 10.; 20.; 30. |]);
  check_float "perfect negative" (-1.) (C.pearson [| 1.; 2.; 3. |] [| 3.; 2.; 1. |]);
  let r = C.pearson [| 1.; 2.; 3.; 4. |] [| 1.; 3.; 2.; 4. |] in
  Alcotest.(check bool) "positive but imperfect" true (r > 0. && r < 1.);
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Correlation.pearson: length mismatch") (fun () ->
      ignore (C.pearson [| 1. |] [| 1.; 2. |]));
  Alcotest.check_raises "zero variance"
    (Invalid_argument "Correlation.pearson: zero variance") (fun () ->
      ignore (C.pearson [| 1.; 1. |] [| 1.; 2. |]))

let test_spearman () =
  (* Monotone but non-linear: Spearman 1, Pearson < 1. *)
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  let ys = Array.map (fun x -> x ** 5.) xs in
  check_float "monotone rho" 1. (C.spearman xs ys);
  Alcotest.(check bool) "pearson below" true (C.pearson xs ys < 1.);
  (* Ties get average ranks. *)
  let rho = C.spearman [| 1.; 1.; 2. |] [| 2.; 2.; 4. |] in
  check_float "tied ranks" 1. rho

let test_running_matches_batch () =
  let xs = [| 3.; 1.; 4.; 1.; 5.; 9.; 2.; 6. |] in
  let r = R.create () in
  Array.iter (R.add r) xs;
  Alcotest.(check int) "count" 8 (R.count r);
  check_float "mean" (D.mean xs) (R.mean r);
  check_float "stddev" (D.stddev xs) (R.stddev r);
  check_float "min" 1. (R.min r);
  check_float "max" 9. (R.max r)

let test_running_empty_and_single () =
  let r = R.create () in
  Alcotest.check_raises "empty mean" (Invalid_argument "Running.mean: no samples")
    (fun () -> ignore (R.mean r));
  R.add r 5.;
  check_float "single mean" 5. (R.mean r);
  check_float "single sd" 0. (R.stddev r)

let feed xs =
  let r = R.create () in
  Array.iter (R.add r) xs;
  r

let test_running_merge_matches_concat () =
  let a = [| 3.; 1.; 4.; 1.; 5. |] and b = [| 9.; 2.; 6.; 5.; 3.; 5. |] in
  let merged = R.merge (feed a) (feed b) in
  let whole = feed (Array.append a b) in
  Alcotest.(check int) "count" (R.count whole) (R.count merged);
  check_float "mean" (R.mean whole) (R.mean merged);
  check_float "stddev" (R.stddev whole) (R.stddev merged);
  check_float "min" (R.min whole) (R.min merged);
  check_float "max" (R.max whole) (R.max merged)

let test_running_merge_empty () =
  let xs = [| 2.; 7.; 1. |] in
  let some = feed xs in
  let from_left = R.merge (R.create ()) some in
  let from_right = R.merge some (R.create ()) in
  List.iter
    (fun m ->
      Alcotest.(check int) "count" 3 (R.count m);
      check_float "mean" (R.mean some) (R.mean m))
    [ from_left; from_right ];
  Alcotest.(check int) "empty + empty" 0 (R.count (R.merge (R.create ()) (R.create ())));
  (* merge must not alias its arguments *)
  R.add from_left 100.;
  Alcotest.(check int) "argument untouched" 3 (R.count some)

let prop_running_merge_equals_concat =
  QCheck.Test.make ~name:"merge(a,b) matches the concatenated stream" ~count:300
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 60) (float_range (-1000.) 1000.))
        (list_of_size Gen.(int_range 0 60) (float_range (-1000.) 1000.)))
    (fun (xs, ys) ->
      let a = Array.of_list xs and b = Array.of_list ys in
      let merged = R.merge (feed a) (feed b) in
      let whole = feed (Array.append a b) in
      R.count merged = R.count whole
      && (R.count whole = 0
         || Hmn_prelude.Float_ext.approx ~eps:1e-6 (R.mean merged) (R.mean whole)
            && Hmn_prelude.Float_ext.approx ~eps:1e-6 (R.stddev merged)
                 (R.stddev whole)
            && R.min merged = R.min whole
            && R.max merged = R.max whole))

let prop_running_equals_batch =
  QCheck.Test.make ~name:"Welford matches batch statistics" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 100) (float_range (-1000.) 1000.))
    (fun xs ->
      let arr = Array.of_list xs in
      let r = R.create () in
      Array.iter (R.add r) arr;
      Hmn_prelude.Float_ext.approx ~eps:1e-6 (R.mean r) (D.mean arr)
      && Hmn_prelude.Float_ext.approx ~eps:1e-6 (R.stddev r) (D.stddev arr))

let prop_pearson_bounded =
  QCheck.Test.make ~name:"Pearson r stays in [-1, 1]" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun pts ->
      let xs = Array.of_list (List.map fst pts) in
      let ys = Array.of_list (List.map snd pts) in
      match C.pearson xs ys with
      | r -> r >= -1.0000001 && r <= 1.0000001
      | exception Invalid_argument _ -> true)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0. 100.))
    (fun xs ->
      let arr = Array.of_list xs in
      let p25 = D.percentile arr ~p:25. in
      let p50 = D.percentile arr ~p:50. in
      let p75 = D.percentile arr ~p:75. in
      p25 <= p50 && p50 <= p75)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "mean & stddev" `Quick test_mean_stddev;
          Alcotest.test_case "summarize" `Quick test_summarize;
          Alcotest.test_case "percentiles" `Quick test_percentile;
        ] );
      ( "correlation",
        [
          Alcotest.test_case "pearson" `Quick test_pearson_known;
          Alcotest.test_case "spearman" `Quick test_spearman;
        ] );
      ( "running",
        [
          Alcotest.test_case "matches batch" `Quick test_running_matches_batch;
          Alcotest.test_case "empty & single" `Quick test_running_empty_and_single;
          Alcotest.test_case "merge matches concat" `Quick test_running_merge_matches_concat;
          Alcotest.test_case "merge with empty" `Quick test_running_merge_empty;
        ] );
      ( "properties",
        [
          q prop_running_equals_batch;
          q prop_running_merge_equals_concat;
          q prop_pearson_bounded;
          q prop_percentile_monotone;
        ] );
    ]
