(* Tests for hmn_online: occupancy bookkeeping round-trips exactly, the
   multi-tenant validator catches crafted cross-tenant violations, the
   service is deterministic for a fixed seed, rejects under overload,
   drains back to an empty cluster, and defragmentation lowers the
   occupied LBF while keeping the state valid. *)

module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Cluster_gen = Hmn_testbed.Cluster_gen
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Resources = Hmn_testbed.Resources
module Guest = Hmn_vnet.Guest
module Vlink = Hmn_vnet.Vlink
module Virtual_env = Hmn_vnet.Virtual_env
module Workload = Hmn_vnet.Workload
module Path = Hmn_routing.Path
module Rng = Hmn_rng.Rng
module Validator = Hmn_validate.Validator
module Registry = Hmn_core.Registry
module Tenant = Hmn_online.Tenant
module Occupancy = Hmn_online.Occupancy
module Admission = Hmn_online.Admission
module Defrag = Hmn_online.Defrag
module Service = Hmn_online.Service

let policy name =
  match Registry.find name with
  | Some p -> p
  | None -> Alcotest.fail ("no policy " ^ name)

(* A ring of four hosts with alternating CPU, so the empty cluster has a
   nonzero LBF and a deliberately skewed placement a much larger one. *)
let ring_cluster () =
  let g = Graph.create ~n:4 () in
  let mk () = Link.make ~bandwidth_mbps:100. ~latency_ms:5. in
  ignore (Graph.add_edge g 0 1 (mk ()));
  ignore (Graph.add_edge g 1 2 (mk ()));
  ignore (Graph.add_edge g 2 3 (mk ()));
  ignore (Graph.add_edge g 3 0 (mk ()));
  let nodes =
    Array.init 4 (fun i ->
        Node.host
          ~name:(Printf.sprintf "h%d" i)
          ~capacity:
            (Resources.make
               ~mips:(if i mod 2 = 0 then 1000. else 2000.)
               ~mem_mb:1024. ~stor_gb:100.))
  in
  Cluster.create ~nodes ~graph:g

(* A single-guest tenant pinned to [host], no virtual links. *)
let solo_tenant ~id ~host ~mips ~mem =
  let venv =
    Virtual_env.create
      ~guests:
        [|
          Guest.make
            ~name:(Printf.sprintf "t%d-vm0" id)
            ~demand:(Resources.make ~mips ~mem_mb:mem ~stor_gb:1.);
        |]
      ~graph:(Graph.create ~n:1 ())
  in
  {
    Tenant.id;
    venv;
    hosts = [| host |];
    paths = [||];
    arrived_at = 0.;
    holding_s = 1.;
  }

let torus ~seed = Cluster_gen.torus_cluster ~rows:3 ~cols:4 ~rng:(Rng.create seed) ()

(* --- occupancy ------------------------------------------------------ *)

let test_occupancy_round_trip () =
  let cluster = torus ~seed:5 in
  let occ = Occupancy.create cluster in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, 0.3)
      ~profile:Workload.high_level ~n:5 ~density:0.4 ~rng:(Rng.create 11) ()
  in
  (match
     Admission.try_admit ~occupancy:occ ~policy:(policy "HMN") ~venv
       ~rng:(Rng.create 1) ()
   with
  | Admission.Admitted { mapping = m; _ } ->
      let tn = Tenant.of_mapping ~id:0 ~arrived_at:0. ~holding_s:10. m in
      Occupancy.admit occ tn;
      Alcotest.(check int) "one tenant" 1 (Occupancy.n_tenants occ);
      Alcotest.(check int) "five guests" 5 (Occupancy.n_guests occ);
      Alcotest.(check bool) "occupied state validates" true
        (Validator.multi_ok (Occupancy.validate occ));
      (* the residual cluster lost the tenant's memory *)
      let residual = Occupancy.residual_cluster occ in
      let total_full = (Cluster.total_capacity cluster).Resources.mem_mb in
      let total_res = (Cluster.total_capacity residual).Resources.mem_mb in
      let demand = (Virtual_env.total_demand venv).Resources.mem_mb in
      Alcotest.(check (float 1e-6))
        "residual memory = full - demand" (total_full -. demand) total_res;
      ignore (Occupancy.release occ ~id:0);
      Alcotest.(check bool) "empty after release" true (Occupancy.is_empty occ)
  | Admission.Rejected { reason; _ } ->
      Alcotest.fail ("admission unexpectedly rejected: " ^ reason))

let test_occupancy_admit_guard () =
  let occ = Occupancy.create (ring_cluster ()) in
  (* 900 MB fits a 1024 MB host once, not twice *)
  Occupancy.admit occ (solo_tenant ~id:0 ~host:0 ~mips:10. ~mem:900.);
  Alcotest.check_raises "second 900 MB tenant on h0 rejected"
    (Invalid_argument "Occupancy.admit: node 0 memory over capacity")
    (fun () ->
      Occupancy.admit occ (solo_tenant ~id:1 ~host:0 ~mips:10. ~mem:900.));
  (* the failed admit must not have leaked any usage *)
  ignore (Occupancy.release occ ~id:0);
  Alcotest.(check bool) "empty again" true (Occupancy.is_empty occ)

(* The iteration contract the session rendering leans on: [tenants] is
   ascending by id no matter in which order tenants arrived, departed,
   or were replaced, so two occupancies holding the same tenant set are
   observationally identical. *)
let test_occupancy_tenant_ordering () =
  let ids occ = List.map (fun (tn : Tenant.t) -> tn.Tenant.id) (Occupancy.tenants occ) in
  let mk id = solo_tenant ~id ~host:(id mod 4) ~mips:10. ~mem:10. in
  (* shuffled admits, a release in the middle, a replace at the end *)
  let occ = Occupancy.create (ring_cluster ()) in
  List.iter (fun id -> Occupancy.admit occ (mk id)) [ 7; 2; 9; 0; 5 ];
  ignore (Occupancy.release occ ~id:9);
  List.iter (fun id -> Occupancy.admit occ (mk id)) [ 4; 1 ];
  Occupancy.replace occ (mk 5);
  Alcotest.(check (list int)) "ascending ids" [ 0; 1; 2; 4; 5; 7 ] (ids occ);
  Alcotest.(check int) "n_tenants" 6 (Occupancy.n_tenants occ);
  (* same final set reached in ascending order: identical observations *)
  let occ' = Occupancy.create (ring_cluster ()) in
  List.iter (fun id -> Occupancy.admit occ' (mk id)) [ 0; 1; 2; 4; 5; 7 ];
  Alcotest.(check (list int)) "order-independent" (ids occ') (ids occ);
  Alcotest.(check (float 1e-12)) "same lbf" (Occupancy.lbf occ') (Occupancy.lbf occ);
  Alcotest.(check bool) "validates" true
    (Validator.multi_ok (Occupancy.validate occ));
  (* find hits and misses *)
  Alcotest.(check bool) "find hit" true (Occupancy.find occ ~id:7 <> None);
  Alcotest.(check bool) "find miss" true (Occupancy.find occ ~id:9 = None)

(* --- multi-tenant validator ----------------------------------------- *)

let mk_venv_pair ~mem ~bw =
  (* two guests, one vlink *)
  let g = Graph.create ~n:2 () in
  ignore (Graph.add_edge g 0 1 (Vlink.make ~bandwidth_mbps:bw ~latency_ms:50.));
  Virtual_env.create
    ~guests:
      (Array.init 2 (fun i ->
           Guest.make
             ~name:(Printf.sprintf "vm%d" i)
             ~demand:(Resources.make ~mips:50. ~mem_mb:mem ~stor_gb:1.)))
    ~graph:g

let two_host_cluster () =
  let g = Graph.create ~n:2 () in
  let e01 = Graph.add_edge g 0 1 (Link.make ~bandwidth_mbps:100. ~latency_ms:5.) in
  let nodes =
    Array.init 2 (fun i ->
        Node.host
          ~name:(Printf.sprintf "h%d" i)
          ~capacity:(Resources.make ~mips:1000. ~mem_mb:1024. ~stor_gb:100.))
  in
  (Cluster.create ~nodes ~graph:g, e01)

let spanning_view ~e01 venv =
  (* guest 0 on host 0, guest 1 on host 1, vlink over the single link *)
  {
    Validator.venv;
    t_host_of = (fun g -> if g = 0 then Some 0 else Some 1);
    t_path_of = (fun _ -> Some (Path.make ~nodes:[ 0; 1 ] ~edges:[ e01 ]));
  }

let labels vs = List.map Validator.violation_label vs

let test_check_tenants_shared_overflow () =
  let cluster, e01 = two_host_cluster () in
  (* each tenant alone fits; two of them overflow both memory (2 x 600
     on each 1024 MB host) and bandwidth (2 x 60 on the 100 Mbps link) *)
  let venv = mk_venv_pair ~mem:600. ~bw:60. in
  let view = spanning_view ~e01 venv in
  let r =
    Validator.check_tenants ~cluster ~tenants:[ (0, view); (1, view) ] ()
  in
  Alcotest.(check bool) "not ok" false (Validator.multi_ok r);
  Alcotest.(check (list string)) "no per-tenant violations" []
    (List.concat_map (fun (_, vs) -> labels vs) r.Validator.per_tenant);
  let shared = labels r.Validator.shared in
  Alcotest.(check bool) "memory overflow on both hosts" true
    (List.length (List.filter (( = ) "memory-exceeded") shared) = 2);
  Alcotest.(check bool) "bandwidth overflow on the link" true
    (List.mem "bandwidth-exceeded" shared);
  (* one tenant alone is fine *)
  Alcotest.(check bool) "single tenant ok" true
    (Validator.multi_ok
       (Validator.check_tenants ~cluster ~tenants:[ (0, view) ] ()))

let test_check_tenants_structural_and_stated () =
  let cluster, e01 = two_host_cluster () in
  let venv = mk_venv_pair ~mem:100. ~bw:10. in
  let unassigned =
    {
      Validator.venv;
      t_host_of = (fun g -> if g = 0 then Some 0 else None);
      t_path_of = (fun _ -> None);
    }
  in
  (* with an endpoint unassigned the vlink check is skipped by design *)
  let r = Validator.check_tenants ~cluster ~tenants:[ (7, unassigned) ] () in
  (match r.Validator.per_tenant with
  | [ (7, vs) ] ->
      Alcotest.(check (list string)) "unassigned guest" [ "unassigned-guest" ]
        (labels vs)
  | _ -> Alcotest.fail "expected tenant 7 in per_tenant");
  let unmapped =
    {
      Validator.venv;
      t_host_of = (fun g -> Some (if g = 0 then 0 else 1));
      t_path_of = (fun _ -> None);
    }
  in
  let r1 = Validator.check_tenants ~cluster ~tenants:[ (8, unmapped) ] () in
  (match r1.Validator.per_tenant with
  | [ (8, vs) ] ->
      Alcotest.(check (list string)) "unmapped vlink" [ "unmapped-vlink" ]
        (labels vs)
  | _ -> Alcotest.fail "expected tenant 8 in per_tenant");
  (* stated accounting drift: residual CPU off by 1 MIPS on host 0 *)
  let ok_view = spanning_view ~e01 venv in
  let r2 =
    Validator.check_tenants
      ~stated_residual_cpu:(fun h -> if h = 0 then 951. else 950.)
      ~cluster
      ~tenants:[ (0, ok_view) ]
      ()
  in
  Alcotest.(check (list string)) "cpu drift caught"
    [ "cpu-accounting-mismatch" ] (labels r2.Validator.shared)

(* --- defrag --------------------------------------------------------- *)

let test_defrag_round_lowers_lbf () =
  let occ = Occupancy.create (ring_cluster ()) in
  let empty_lbf = Occupancy.lbf occ in
  (* four 200-MIPS tenants all crowded onto host 0 *)
  for id = 0 to 3 do
    Occupancy.admit occ (solo_tenant ~id ~host:0 ~mips:200. ~mem:100.)
  done;
  let before = Occupancy.lbf occ in
  Alcotest.(check bool) "skewed placement is imbalanced" true
    (before > empty_lbf);
  let validations = ref 0 in
  let moves =
    Defrag.round
      ~on_move:(fun (_ : int) ->
        incr validations;
        Alcotest.(check bool) "state valid after each move" true
          (Validator.multi_ok (Occupancy.validate occ)))
      ~occupancy:occ ~threshold:empty_lbf ~max_moves:8 ()
  in
  let after = Occupancy.lbf occ in
  Alcotest.(check bool) "at least one move" true (moves >= 1);
  Alcotest.(check int) "hook fired per move" moves !validations;
  Alcotest.(check bool) "lbf improved" true (after < before);
  Alcotest.(check int) "no tenant lost" 4 (Occupancy.n_tenants occ)

(* Regression for the routing path cache: defragmentation rebuilds the
   residual cluster ([Occupancy.residual_cluster] returns a fresh
   object), so a routing context that cached paths against the previous
   cluster must flush on rebind — a stale entry served across an
   [Occupancy.replace] would index arrays of a cluster that no longer
   exists. *)
let test_defrag_never_reuses_stale_cache () =
  let occ = Occupancy.create (ring_cluster ()) in
  Occupancy.admit occ (solo_tenant ~id:0 ~host:0 ~mips:400. ~mem:200.);
  let tables = Occupancy.latency_tables occ in
  let route ctx rc =
    Hmn_routing.Astar_prune.route ~ctx
      ~residual:(Hmn_routing.Residual.create rc)
      ~latency_tables:tables ~src:0 ~dst:2 ~bandwidth_mbps:30. ~latency_ms:60. ()
  in
  let ctx = Hmn_routing.Route_ctx.create ~cache:true () in
  let rc1 = Occupancy.residual_cluster occ in
  ignore (route ctx rc1);
  (match route ctx rc1 with
  | Some (_, s) ->
    Alcotest.(check int) "served from cache" 0 s.Hmn_routing.Astar_prune.expanded
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check int) "one hit before the move" 1
    (Hmn_routing.Route_ctx.cache_hits ctx);
  (* Defrag commit: the tenant moves and the residual cluster is
     rebuilt. *)
  Occupancy.replace occ (solo_tenant ~id:0 ~host:2 ~mips:400. ~mem:200.);
  let rc2 = Occupancy.residual_cluster occ in
  (match route ctx rc2 with
  | Some (p, s) ->
    Alcotest.(check bool) "really searched" true
      (s.Hmn_routing.Astar_prune.expanded > 0);
    (match route (Hmn_routing.Route_ctx.create ()) rc2 with
    | Some (q, _) ->
      Alcotest.(check bool) "matches a fresh search" true
        (p.Path.nodes = q.Path.nodes && p.Path.edges = q.Path.edges)
    | None -> Alcotest.fail "fresh search found no path")
  | None -> Alcotest.fail "expected a path after the move");
  Alcotest.(check int) "no stale hit across the replace" 1
    (Hmn_routing.Route_ctx.cache_hits ctx)

(* --- service -------------------------------------------------------- *)

let small_config =
  {
    Service.default_config with
    seed = 97;
    arrival_rate_per_s = 1. /. 60.;
    mean_holding_s = 240.;
    duration_s = 1200.;
    guests_lo = 3;
    guests_hi = 6;
    scale_frac = 0.3;
    validate = true;
  }

let test_service_deterministic () =
  let run () =
    Service.run ~cluster:(torus ~seed:5) ~policy:(policy "HMN") small_config
  in
  let a = run () and b = run () in
  Alcotest.(check string) "byte-identical rendering"
    (Hmn_online.Session.render_summary a)
    (Hmn_online.Session.render_summary b);
  Alcotest.(check bool) "some arrivals happened" true (a.arrivals > 0);
  Alcotest.(check int) "all admitted tenants departed" a.admitted a.departures

let test_service_rejects_under_overload () =
  (* large tenants arriving far faster than they leave on a small
     cluster: the residual must run out and admissions fail *)
  let config =
    {
      small_config with
      seed = 31;
      arrival_rate_per_s = 1. /. 5.;
      mean_holding_s = 2000.;
      duration_s = 600.;
      guests_lo = 8;
      guests_hi = 12;
      scale_frac = 0.45;
    }
  in
  let s = Service.run ~cluster:(torus ~seed:5) ~policy:(policy "HMN") config in
  Alcotest.(check bool) "some rejected" true (s.rejected > 0);
  Alcotest.(check bool) "acceptance below 1" true (s.acceptance < 1.);
  Alcotest.(check bool) "but not everything rejected" true (s.admitted > 0)

let test_service_defrag_engaged () =
  let config =
    {
      small_config with
      seed = 13;
      defrag =
        Some { Defrag.interval_s = 90.; trigger = 0.; max_moves_per_round = 4 };
    }
  in
  let s = Service.run ~cluster:(torus ~seed:5) ~policy:(policy "R") config in
  (* trigger 0 means every periodic check with a nonempty cluster runs a
     round; validation (validate = true) gates every move *)
  Alcotest.(check bool) "defrag rounds ran" true (s.defrag_rounds > 0)

(* --- flight recorder ------------------------------------------------ *)

module Flight = Hmn_online.Flight
module Quantile = Hmn_obs.Quantile

let count_substring hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go acc i =
    if i + n > h then acc
    else if String.sub hay i n = needle then go (acc + 1) (i + n)
    else go acc (i + 1)
  in
  go 0 0

let overload_config =
  {
    small_config with
    seed = 31;
    arrival_rate_per_s = 1. /. 5.;
    mean_holding_s = 2000.;
    duration_s = 600.;
    guests_lo = 8;
    guests_hi = 12;
    scale_frac = 0.45;
  }

let run_flight ?(config = overload_config) () =
  let cluster = torus ~seed:5 in
  let flight = Flight.create cluster in
  let s = Service.run ~flight ~cluster ~policy:(policy "HMN") config in
  (flight, s)

(* validate = true (inherited from small_config): every journaled
   rejection cause and candidate count was independently re-derived by
   Hmn_validate.Decision during the run — a disagreement with the
   admission-side classifier would have raised Validation_failed. *)
let test_journal_deterministic_and_checked () =
  let f1, s1 = run_flight () in
  let f2, s2 = run_flight () in
  Alcotest.(check bool) "rejections occurred" true (s1.rejected > 0);
  Alcotest.(check int) "same outcome" s1.rejected s2.rejected;
  let j1 = Option.get (Flight.events_jsonl f1) in
  Alcotest.(check string) "journal byte-identical across reruns" j1
    (Option.get (Flight.events_jsonl f2));
  Alcotest.(check string) "timeline byte-identical across reruns"
    (Option.get (Flight.timeline_csv f1))
    (Option.get (Flight.timeline_csv f2));
  (* journal coverage: one decision record per arrival outcome, every
     rejection carrying a cause from the closed taxonomy *)
  Alcotest.(check int) "one reject record per rejection" s1.rejected
    (count_substring j1 "\"event\":\"reject\"");
  Alcotest.(check int) "one admit record per admission" s1.admitted
    (count_substring j1 "\"event\":\"admit\"");
  Alcotest.(check int) "every reject names a cause" s1.rejected
    (count_substring j1 "\"cause\":\"");
  Alcotest.(check int) "one departure record each" s1.departures
    (count_substring j1 "\"event\":\"depart\"")

let test_work_quantiles_deterministic () =
  let f1, s1 = run_flight () in
  let f2, _ = run_flight () in
  let q1 = Option.get (Flight.admit_work f1) in
  let q2 = Option.get (Flight.admit_work f2) in
  Alcotest.(check int) "one sample per arrival" s1.arrivals
    (Quantile.count q1);
  List.iter
    (fun p ->
      Alcotest.(check int)
        (Printf.sprintf "p%g identical" (p *. 100.))
        (Quantile.quantile q1 p) (Quantile.quantile q2 p))
    [ 0.5; 0.9; 0.99; 0.999; 1. ]

(* The recorder must be passive: the deterministic summary is
   byte-identical with and without a flight recorder attached. *)
let test_flight_recorder_is_passive () =
  let bare =
    Service.run ~cluster:(torus ~seed:5) ~policy:(policy "HMN")
      overload_config
  in
  let _, recorded = run_flight () in
  Alcotest.(check string) "summary unchanged by the recorder"
    (Hmn_online.Session.render_summary bare)
    (Hmn_online.Session.render_summary recorded)

(* Defrag-assisted admission: on a non-screen rejection the service runs
   one compaction round and retries; when the retry lands the journal
   records an admit-defrag decision. The seed scan is deterministic, so
   the test always exercises the same session. *)
let test_defrag_assisted_admission () =
  let config seed =
    {
      overload_config with
      seed;
      defrag =
        Some { Defrag.interval_s = 90.; trigger = 0.; max_moves_per_round = 4 };
      defrag_on_reject = true;
    }
  in
  let rec scan seed =
    if seed > 40 then
      Alcotest.fail "no seed in 1..40 produced a defrag-assisted admission"
    else
      let flight, s = run_flight ~config:(config seed) () in
      let j = Option.get (Flight.events_jsonl flight) in
      let assisted = count_substring j "\"event\":\"admit-defrag\"" in
      if assisted = 0 then scan (seed + 1)
      else begin
        Alcotest.(check bool) "defrag moves were journaled" true
          (count_substring j "\"event\":\"defrag-move\"" > 0);
        (* an assisted admit still counts as admitted in the summary *)
        Alcotest.(check int) "admit records cover both kinds" s.admitted
          (count_substring j "\"event\":\"admit\"" + assisted)
      end
  in
  scan 1

let test_service_policy_independent_load () =
  (* the offered stream is pre-generated: every policy must see the same
     arrival count *)
  let run name =
    Service.run ~cluster:(torus ~seed:5) ~policy:(policy name)
      { small_config with validate = false }
  in
  let hmn = run "HMN" and r = run "R" and hs = run "HS" in
  Alcotest.(check int) "same arrivals HMN/R" hmn.arrivals r.arrivals;
  Alcotest.(check int) "same arrivals HMN/HS" hmn.arrivals hs.arrivals

let () =
  Alcotest.run "hmn_online"
    [
      ( "occupancy",
        [
          Alcotest.test_case "admit/release round trip" `Quick
            test_occupancy_round_trip;
          Alcotest.test_case "admit guard" `Quick test_occupancy_admit_guard;
          Alcotest.test_case "tenant ordering" `Quick
            test_occupancy_tenant_ordering;
        ] );
      ( "validator",
        [
          Alcotest.test_case "shared overflow" `Quick
            test_check_tenants_shared_overflow;
          Alcotest.test_case "structural and stated" `Quick
            test_check_tenants_structural_and_stated;
        ] );
      ( "defrag",
        [
          Alcotest.test_case "round lowers lbf" `Quick
            test_defrag_round_lowers_lbf;
          Alcotest.test_case "never reuses a stale cached path" `Quick
            test_defrag_never_reuses_stale_cache;
        ] );
      ( "service",
        [
          Alcotest.test_case "deterministic" `Quick test_service_deterministic;
          Alcotest.test_case "rejects under overload" `Quick
            test_service_rejects_under_overload;
          Alcotest.test_case "defrag engaged" `Quick test_service_defrag_engaged;
          Alcotest.test_case "policy-independent load" `Quick
            test_service_policy_independent_load;
        ] );
      ( "flight recorder",
        [
          Alcotest.test_case "journal determinism + validator agreement"
            `Quick test_journal_deterministic_and_checked;
          Alcotest.test_case "work quantiles deterministic" `Quick
            test_work_quantiles_deterministic;
          Alcotest.test_case "recorder is passive" `Quick
            test_flight_recorder_is_passive;
          Alcotest.test_case "defrag-assisted admission" `Quick
            test_defrag_assisted_admission;
        ] );
    ]
