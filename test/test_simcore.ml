(* Tests for hmn_simcore: event ordering, FIFO tie-breaking, clock
   semantics, bounded runs. *)

module Engine = Hmn_simcore.Engine

let test_empty_engine () =
  let e = Engine.create () in
  Alcotest.(check (float 0.)) "starts at 0" 0. (Engine.now e);
  Alcotest.(check int) "no pending" 0 (Engine.pending e);
  Alcotest.(check bool) "step on empty" false (Engine.step e);
  Engine.run e;
  Alcotest.(check int) "processed none" 0 (Engine.processed e)

let test_time_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e ~time:3. (fun _ -> log := 3 :: !log);
  Engine.schedule_at e ~time:1. (fun _ -> log := 1 :: !log);
  Engine.schedule_at e ~time:2. (fun _ -> log := 2 :: !log);
  Engine.run e;
  Alcotest.(check (list int)) "chronological" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 3. (Engine.now e);
  Alcotest.(check int) "processed" 3 (Engine.processed e)

let test_fifo_ties () =
  let e = Engine.create () in
  let log = ref [] in
  for i = 0 to 9 do
    Engine.schedule_at e ~time:5. (fun _ -> log := i :: !log)
  done;
  Engine.run e;
  Alcotest.(check (list int)) "FIFO at equal times" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !log)

let test_schedule_relative () =
  let e = Engine.create () in
  let seen = ref [] in
  Engine.schedule e ~delay:2. (fun e ->
      seen := Engine.now e :: !seen;
      Engine.schedule e ~delay:3. (fun e -> seen := Engine.now e :: !seen));
  Engine.run e;
  Alcotest.(check (list (float 1e-12))) "chained delays" [ 2.; 5. ] (List.rev !seen)

let test_schedule_errors () =
  let e = Engine.create () in
  Engine.schedule_at e ~time:10. (fun _ -> ());
  Engine.run e;
  Alcotest.check_raises "past" (Invalid_argument "Engine.schedule_at: time is in the past")
    (fun () -> Engine.schedule_at e ~time:5. (fun _ -> ()));
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Engine.schedule e ~delay:(-1.) (fun _ -> ()));
  Alcotest.check_raises "nan" (Invalid_argument "Engine.schedule_at: non-finite time")
    (fun () -> Engine.schedule_at e ~time:Float.nan (fun _ -> ()))

let test_run_until () =
  let e = Engine.create () in
  let count = ref 0 in
  List.iter
    (fun t -> Engine.schedule_at e ~time:t (fun _ -> incr count))
    [ 1.; 2.; 3.; 4. ];
  Engine.run ~until:2.5 e;
  Alcotest.(check int) "two fired" 2 !count;
  Alcotest.(check int) "two left" 2 (Engine.pending e);
  Engine.run e;
  Alcotest.(check int) "all fired" 4 !count

let test_until_boundary () =
  (* An event scheduled exactly at [until] fires. *)
  let e = Engine.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Engine.schedule_at e ~time:t (fun _ -> fired := t :: !fired))
    [ 1.; 2.; 3. ];
  Engine.run ~until:2. e;
  Alcotest.(check (list (float 0.))) "event at until fires" [ 1.; 2. ]
    (List.rev !fired);
  Alcotest.(check (float 0.)) "clock at until" 2. (Engine.now e);
  Alcotest.(check int) "later event pending" 1 (Engine.pending e)

let test_until_queue_drains_early () =
  (* The queue empties before [until]: the clock still advances to the
     horizon, so consecutive windows tile simulated time. *)
  let e = Engine.create () in
  Engine.schedule_at e ~time:1. (fun _ -> ());
  Engine.run ~until:10. e;
  Alcotest.(check (float 0.)) "clock advances to until" 10. (Engine.now e);
  Alcotest.(check int) "nothing pending" 0 (Engine.pending e);
  (* An empty run over a later window also lands on its horizon... *)
  Engine.run ~until:20. e;
  Alcotest.(check (float 0.)) "empty window advances too" 20. (Engine.now e);
  (* ...but an infinite horizon never touches the clock. *)
  Engine.run e;
  Alcotest.(check (float 0.)) "infinite horizon leaves clock" 20. (Engine.now e);
  (* A horizon in the past processes nothing and cannot move the clock
     backwards. *)
  Engine.run ~until:5. e;
  Alcotest.(check (float 0.)) "past horizon is a no-op" 20. (Engine.now e)

let test_max_events_mid_batch () =
  (* A max_events cutoff mid-batch leaves the clock at the last executed
     event, not at [until], and keeps the tail queued. *)
  let e = Engine.create () in
  let fired = ref 0 in
  List.iter
    (fun t -> Engine.schedule_at e ~time:t (fun _ -> incr fired))
    [ 1.; 2.; 3.; 4. ];
  Engine.run ~until:100. ~max_events:2 e;
  Alcotest.(check int) "two fired" 2 !fired;
  Alcotest.(check (float 0.)) "clock at last event" 2. (Engine.now e);
  Alcotest.(check int) "rest pending" 2 (Engine.pending e);
  (* Resuming with the same horizon finishes the batch and then lands on
     the horizon. *)
  Engine.run ~until:100. e;
  Alcotest.(check int) "all fired" 4 !fired;
  Alcotest.(check (float 0.)) "clock at horizon after resume" 100. (Engine.now e)

let test_run_max_events () =
  let e = Engine.create () in
  let count = ref 0 in
  (* A self-perpetuating event stream; only max_events bounds it. *)
  let rec tick engine =
    incr count;
    Engine.schedule engine ~delay:1. tick
  in
  Engine.schedule e ~delay:0. tick;
  Engine.run ~max_events:50 e;
  Alcotest.(check int) "bounded" 50 !count

let test_events_scheduled_during_run () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e ~time:1. (fun e ->
      log := "first" :: !log;
      (* Insert an event between pending ones. *)
      Engine.schedule_at e ~time:1.5 (fun _ -> log := "inserted" :: !log));
  Engine.schedule_at e ~time:2. (fun _ -> log := "second" :: !log);
  Engine.run e;
  Alcotest.(check (list string)) "interleaved" [ "first"; "inserted"; "second" ]
    (List.rev !log)

let prop_events_fire_in_time_order =
  QCheck.Test.make ~name:"random schedules fire in timestamp order" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range 0. 100.))
    (fun times ->
      let e = Engine.create () in
      let fired = ref [] in
      List.iter
        (fun t -> Engine.schedule_at e ~time:t (fun e -> fired := Engine.now e :: !fired))
        times;
      Engine.run e;
      let fired = List.rev !fired in
      List.sort Float.compare times = fired)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_simcore"
    [
      ( "engine",
        [
          Alcotest.test_case "empty" `Quick test_empty_engine;
          Alcotest.test_case "time order" `Quick test_time_order;
          Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
          Alcotest.test_case "relative schedule" `Quick test_schedule_relative;
          Alcotest.test_case "errors" `Quick test_schedule_errors;
          Alcotest.test_case "run until" `Quick test_run_until;
          Alcotest.test_case "until boundary" `Quick test_until_boundary;
          Alcotest.test_case "until with early drain" `Quick
            test_until_queue_drains_early;
          Alcotest.test_case "max events mid-batch" `Quick test_max_events_mid_batch;
          Alcotest.test_case "max events" `Quick test_run_max_events;
          Alcotest.test_case "mid-run scheduling" `Quick
            test_events_scheduled_during_run;
        ] );
      ("properties", [ q prop_events_fire_in_time_order ]);
    ]
