(* Tests for the artifact compiler: round-trip fidelity (compile →
   decompile → cross-validate) across grammars, topologies and every
   registered mapper; directed corruptions each caught with its own
   violation class; byte determinism; on-disk write/read; online
   per-tenant deltas. *)

module Compile = Hmn_artifact.Compile
module Decompile = Hmn_artifact.Decompile
module Spec = Hmn_artifact.Spec
module Check = Hmn_validate.Artifact_check
module Fuzz = Hmn_validate.Fuzz
module Mapper = Hmn_core.Mapper
module Mapping = Hmn_mapping.Mapping
module Placement = Hmn_mapping.Placement
module Link_map = Hmn_mapping.Link_map
module Problem = Hmn_mapping.Problem
module Venv = Hmn_vnet.Virtual_env
module Path = Hmn_routing.Path

let run_mapper problem =
  match (Hmn_core.Hmn.run problem).Mapper.result with
  | Ok m -> m
  | Error f -> Alcotest.fail f.Mapper.reason

let sample_mapping ?(seed = 7) ?(guests = 24) () =
  run_mapper
    (Fuzz.build_problem
       { Fuzz.shape = Fuzz.Torus { rows = 3; cols = 3 };
         n_guests = guests; density = 0.15; low_level = false }
       ~seed)

let roundtrip ~format mapping =
  let b = Compile.of_mapping ~format mapping in
  match Decompile.run ~files:b.Compile.files with
  | Error e -> Alcotest.fail e
  | Ok d -> Check.check ~mapping d

let check_clean what report =
  if not (Check.ok report) then
    Alcotest.failf "%s: %s" what (Format.asprintf "%a" Check.pp_report report)

let labels report =
  List.map Check.violation_label report.Check.violations
  |> List.sort_uniq String.compare

(* ---- clean round trips ---- *)

let test_roundtrip_shell () =
  check_clean "shell" (roundtrip ~format:Spec.Shell (sample_mapping ()))

let test_roundtrip_json () =
  check_clean "json" (roundtrip ~format:Spec.Json (sample_mapping ()))

let test_roundtrip_fat_tree () =
  (* the third topology family, not covered by Fuzz.draw_params *)
  let rng = Hmn_rng.Rng.create 31 in
  let cluster = Hmn_testbed.Cluster_gen.fat_tree_cluster ~k:4 ~rng () in
  let venv =
    Hmn_vnet.Venv_gen.generate ~scale_to_fit:(cluster, 0.3)
      ~profile:Hmn_vnet.Workload.high_level ~n:40 ~density:0.1 ~rng ()
  in
  let mapping = run_mapper (Problem.make ~cluster ~venv) in
  check_clean "fat-tree shell" (roundtrip ~format:Spec.Shell mapping);
  check_clean "fat-tree json" (roundtrip ~format:Spec.Json mapping)

let test_deterministic () =
  let m = sample_mapping () in
  List.iter
    (fun format ->
      let a = Compile.of_mapping ~format m and b = Compile.of_mapping ~format m in
      Alcotest.(check bool)
        (Spec.format_name format ^ " byte-identical")
        true (a.Compile.files = b.Compile.files))
    [ Spec.Shell; Spec.Json ]

let prop_roundtrip_every_mapper =
  QCheck.Test.make
    ~name:"export → decompile → check is clean for every registered mapper"
    ~count:8 QCheck.small_nat
    (fun s ->
      let seed = 1000 + s in
      let params = Fuzz.draw_params (Hmn_rng.Rng.create seed) in
      let problem = Fuzz.build_problem params ~seed in
      List.for_all
        (fun mapper ->
          match
            (mapper.Mapper.run ~rng:(Hmn_rng.Rng.create (seed + 1)) problem)
              .Mapper.result
          with
          | Error _ -> true (* giving up is allowed; exporting is not tested *)
          | Ok mapping ->
            List.for_all
              (fun format ->
                let b = Compile.of_mapping ~format mapping in
                match Decompile.run ~files:b.Compile.files with
                | Error _ -> false
                | Ok d -> Check.ok (Check.check ~mapping d))
              [ Spec.Shell; Spec.Json ])
        (Hmn_core.Registry.all ()))

(* ---- directed corruptions ---- *)

let with_file name f files =
  List.map (fun (n, c) -> if n = name then (n, f c) else (n, c)) files

let corrupted_report mapping files =
  match Decompile.run ~files with
  | Error e -> Alcotest.failf "corrupted bundle should still decompile: %s" e
  | Ok d -> Check.check ~mapping d

(* replace the digits of the first "htb rate <num>mbit" in net.sh *)
let tamper_rate content =
  let needle = "htb rate " in
  let i =
    match
      String.index_opt content 'h'
      |> fun _ ->
      let rec find from =
        match String.index_from_opt content from 'h' with
        | None -> None
        | Some j ->
          if
            j + String.length needle <= String.length content
            && String.sub content j (String.length needle) = needle
          then Some j
          else find (j + 1)
      in
      find 0
    with
    | Some j -> j + String.length needle
    | None -> Alcotest.fail "no htb rate line to tamper"
  in
  let rec num_end j =
    if j < String.length content && content.[j] <> 'm' then num_end (j + 1)
    else j
  in
  let j = num_end i in
  String.sub content 0 i ^ "12345"
  ^ String.sub content j (String.length content - j)

let test_tampered_rate () =
  let mapping = sample_mapping () in
  let b = Compile.of_mapping ~format:Spec.Shell mapping in
  let files = with_file "net.sh" tamper_rate b.Compile.files in
  let report = corrupted_report mapping files in
  let ls = labels report in
  Alcotest.(check bool) "flags rate-mismatch" true (List.mem "rate-mismatch" ls);
  Alcotest.(check bool)
    "and the tampered sum" true
    (List.mem "rate-sum-mismatch" ls);
  Alcotest.(check bool)
    "no guest or class noise" true
    (not (List.mem "guest-missing" ls || List.mem "class-duplicated" ls))

let test_dropped_vm_line () =
  let mapping = sample_mapping () in
  let b = Compile.of_mapping ~format:Spec.Shell mapping in
  let drop content =
    let lines = String.split_on_char '\n' content in
    let dropped = ref false in
    let kept =
      List.filter
        (fun l ->
          if (not !dropped) && String.length l >= 6 && String.sub l 0 6 = "hmn_vm"
          then (
            dropped := true;
            false)
          else true)
        lines
    in
    if not !dropped then Alcotest.fail "no launch line to drop";
    String.concat "\n" kept
  in
  let files = with_file "vms.sh" drop b.Compile.files in
  let report = corrupted_report mapping files in
  let ls = labels report in
  Alcotest.(check bool) "flags guest-missing" true (List.mem "guest-missing" ls);
  Alcotest.(check bool)
    "no rate or class noise" true
    (not (List.mem "rate-mismatch" ls || List.mem "class-duplicated" ls))

let test_duplicated_class () =
  let mapping = sample_mapping () in
  let b = Compile.of_mapping ~format:Spec.Shell mapping in
  let duplicate content =
    (* duplicate the first full class block: class + netem + filter *)
    let lines = String.split_on_char '\n' content in
    let rec go = function
      | (c :: n :: f :: _) as rest
        when String.length c >= 8 && String.sub c 0 8 = "tc class" ->
        ignore n;
        ignore f;
        let block = [ List.nth rest 0; List.nth rest 1; List.nth rest 2 ] in
        block @ rest
      | l :: rest -> l :: go rest
      | [] -> Alcotest.fail "no class block to duplicate"
    in
    String.concat "\n" (go lines)
  in
  let files = with_file "net.sh" duplicate b.Compile.files in
  let report = corrupted_report mapping files in
  let ls = labels report in
  Alcotest.(check bool)
    "flags class-duplicated" true
    (List.mem "class-duplicated" ls);
  Alcotest.(check bool)
    "no guest noise" true
    (not (List.mem "guest-missing" ls))

let test_tampered_schema () =
  let mapping = sample_mapping () in
  let b = Compile.of_mapping ~format:Spec.Shell mapping in
  let files =
    with_file Spec.manifest_file
      (fun c ->
        (* bump the manifest's recorded schema version *)
        let needle = Printf.sprintf "\"schema_version\": %d" Spec.schema_version in
        let repl = "\"schema_version\": 99" in
        match String.index_opt c '"' with
        | None -> Alcotest.fail "empty manifest"
        | Some _ ->
          let rec find from =
            if from + String.length needle > String.length c then
              Alcotest.fail "schema_version not found"
            else if String.sub c from (String.length needle) = needle then from
            else find (from + 1)
          in
          let i = find 0 in
          String.sub c 0 i ^ repl
          ^ String.sub c
              (i + String.length needle)
              (String.length c - i - String.length needle))
      b.Compile.files
  in
  let report = corrupted_report mapping files in
  Alcotest.(check bool)
    "flags schema-mismatch" true
    (List.mem "schema-mismatch" (labels report))

(* ---- disk round trip ---- *)

let test_write_read_dir () =
  let mapping = sample_mapping ~seed:13 () in
  let b = Compile.of_mapping ~format:Spec.Json mapping in
  let dir = "artifact-write-test" in
  Compile.write ~dir b;
  match Decompile.read_dir ~dir with
  | Error e -> Alcotest.fail e
  | Ok files ->
    Alcotest.(check bool) "same bytes back" true (files = b.Compile.files);
    (match Decompile.run ~files with
    | Error e -> Alcotest.fail e
    | Ok d -> check_clean "disk round trip" (Check.check ~mapping d))

(* ---- per-tenant deltas ---- *)

let tenant_pieces mapping =
  let problem = Mapping.problem mapping in
  let venv = problem.Problem.venv in
  let hosts =
    Array.init (Venv.n_guests venv) (fun g ->
        Placement.host_of_exn mapping.Mapping.placement ~guest:g)
  in
  let paths =
    Array.init (Venv.n_vlinks venv) (fun vl ->
        match Link_map.path_of mapping.Mapping.link_map ~vlink:vl with
        | Some p -> p
        | None -> Alcotest.failf "vlink %d unrouted" vl)
  in
  (problem.Problem.cluster, venv, hosts, paths)

let test_tenant_roundtrip () =
  let mapping = sample_mapping ~seed:17 ~guests:12 () in
  let cluster, venv, hosts, paths = tenant_pieces mapping in
  List.iter
    (fun format ->
      let b =
        Compile.of_tenant ~format ~cluster ~venv ~id:5 ~hosts ~paths ()
      in
      match Decompile.run ~files:b.Compile.files with
      | Error e -> Alcotest.fail e
      | Ok d ->
        (match d.Decompile.scope with
        | Decompile.Tenant 5 -> ()
        | _ -> Alcotest.fail "scope should be tenant 5");
        check_clean
          ("tenant " ^ Spec.format_name format)
          (Check.check_tenant ~cluster ~venv ~hosts ~paths d))
    [ Spec.Shell; Spec.Json ]

let test_tenant_misplacement_flagged () =
  let mapping = sample_mapping ~seed:17 ~guests:12 () in
  let cluster, venv, hosts, paths = tenant_pieces mapping in
  let b = Compile.of_tenant ~format:Spec.Shell ~cluster ~venv ~id:1 ~hosts ~paths () in
  (* claim a different placement than the artifacts were compiled from *)
  let lying = Array.copy hosts in
  lying.(0) <- hosts.(Array.length hosts - 1);
  match Decompile.run ~files:b.Compile.files with
  | Error e -> Alcotest.fail e
  | Ok d ->
    let report = Check.check_tenant ~cluster ~venv ~hosts:lying ~paths d in
    if hosts.(0) <> lying.(0) then
      Alcotest.(check bool)
        "misplacement flagged" true
        (List.mem "guest-misplaced" (labels report))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_artifact"
    [
      ( "roundtrip",
        [
          Alcotest.test_case "shell grammar" `Quick test_roundtrip_shell;
          Alcotest.test_case "json grammar" `Quick test_roundtrip_json;
          Alcotest.test_case "fat-tree topology" `Quick test_roundtrip_fat_tree;
          Alcotest.test_case "byte-deterministic" `Quick test_deterministic;
          Alcotest.test_case "disk write/read" `Quick test_write_read_dir;
          q prop_roundtrip_every_mapper;
        ] );
      ( "corruptions",
        [
          Alcotest.test_case "tampered rate" `Quick test_tampered_rate;
          Alcotest.test_case "dropped VM line" `Quick test_dropped_vm_line;
          Alcotest.test_case "duplicated qdisc class" `Quick test_duplicated_class;
          Alcotest.test_case "tampered schema version" `Quick test_tampered_schema;
        ] );
      ( "tenant",
        [
          Alcotest.test_case "delta round trip" `Quick test_tenant_roundtrip;
          Alcotest.test_case "misplacement flagged" `Quick
            test_tenant_misplacement_flagged;
        ] );
    ]
