(** Span-based tracer emitting Chrome [trace_event] JSON.

    Disabled by default: {!with_span} then costs one branch around the
    traced thunk. When enabled, every span records its wall-clock
    window ({!Hmn_prelude.Clock}, monotonic) and the id of the domain
    it ran on, buffered in a per-domain vector so worker domains never
    contend. {!write} merges the buffers into a single
    [{"traceEvents": [...]}] document of complete ("ph":"X") events
    that loads directly in [about:tracing] or {{:https://ui.perfetto.dev}Perfetto},
    with one timeline row per domain.

    {!write} and {!clear} must be called while no other domain is
    recording (e.g. after the pool has been shut down). *)

val enable : unit -> unit
(** Starts recording; also resets the time origin, so spans of one
    session start near ts=0. *)

val disable : unit -> unit
val enabled : unit -> bool

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()], recording a complete event around
    it (also when [f] raises). [cat] is the Chrome trace category
    (default ["hmn"]); [args] become the event's [args] object shown in
    the viewer's detail pane. *)

val span_count : unit -> int
(** Number of buffered events across all domains. *)

val write : path:string -> unit
(** Writes the merged trace (events sorted by start time) as JSON. *)

val clear : unit -> unit
(** Drops all buffered events. *)
