(** Span-based tracer emitting Chrome [trace_event] JSON.

    Disabled by default: {!with_span} then costs one branch around the
    traced thunk. When enabled, every span records its wall-clock
    window ({!Hmn_prelude.Clock}, monotonic) and the id of the domain
    it ran on, buffered in a per-domain vector so worker domains never
    contend. {!write} merges the buffers into a single
    [{"traceEvents": [...]}] document of complete ("ph":"X") span
    events and ("ph":"C") counter events that loads directly in
    [about:tracing] or {{:https://ui.perfetto.dev}Perfetto}, with one
    timeline row per domain and one counter track per {!counter} name.

    The merged event list is sorted under a total order (start time,
    then duration descending, then phase/name/category/tid/args) and
    every string is sanitized to printable ASCII (other bytes render as
    [\xNN]), so the file is byte-stable across buffer interleavings and
    valid JSON whatever tenant-derived names contain.

    {!write} and {!clear} must be called while no other domain is
    recording (e.g. after the pool has been shut down). *)

val enable : unit -> unit
(** Starts recording; also resets the time origin, so spans of one
    session start near ts=0. *)

val disable : unit -> unit
val enabled : unit -> bool

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span name f] runs [f ()], recording a complete event around
    it (also when [f] raises). [cat] is the Chrome trace category
    (default ["hmn"]); [args] become the event's [args] object shown in
    the viewer's detail pane. *)

val counter : ?cat:string -> name:string -> ts_us:float -> (string * float) list -> unit
(** [counter ~name ~ts_us series] buffers one Chrome counter event
    (["ph":"C"]) whose [args] are the numeric series values — Perfetto
    renders each distinct [name] as a stacked counter track. Unlike
    spans, [ts_us] is taken verbatim from the caller (the flight
    recorder passes {e simulated} microseconds). No-op while
    disabled. *)

val span_count : unit -> int
(** Number of buffered events across all domains. *)

val write : path:string -> unit
(** Writes the merged trace (events sorted by start time) as JSON. *)

val clear : unit -> unit
(** Drops all buffered events. *)
