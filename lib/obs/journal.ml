module Json = Hmn_prelude.Json

type resource = Mem | Stor | Cpu
type screen = Agg_mem | Agg_stor | Disconnected
type net = Latency | Bandwidth
type cause = Screened of screen | Hosting of resource | Networking of net

let cause_label = function
  | Screened Agg_mem -> "screened-mem"
  | Screened Agg_stor -> "screened-stor"
  | Screened Disconnected -> "screened-disconnected"
  | Hosting Mem -> "hosting-mem"
  | Hosting Stor -> "hosting-stor"
  | Hosting Cpu -> "hosting-cpu"
  | Networking Latency -> "networking-latency"
  | Networking Bandwidth -> "networking-bandwidth"

type detail =
  | No_detail
  | Guest of int
  | Vlink of {
      vlink : int;
      src_host : int;
      dst_host : int;
      bandwidth_mbps : float;
      latency_ms : float;
    }

type decision =
  | Admit of { defrag_assisted : bool }
  | Reject of { cause : cause; binding : string; detail : detail }

type event =
  | Decision of {
      req_id : int;
      n_guests : int;
      n_vlinks : int;
      candidate_hosts : int;
      work : int;
      decision : decision;
    }
  | Departure of { tenant : int }
  | Defrag_move of { tenant : int }
  | Eviction of { tenant : int }

type record = {
  seq : int;
  t_s : float;
  tenants : int;
  lbf : float;
  event : event;
}

type t = { mutable rev : record list; mutable n : int }

let create () = { rev = []; n = 0 }

let add t ~t_s ~tenants ~lbf event =
  t.rev <- { seq = t.n; t_s; tenants; lbf; event } :: t.rev;
  t.n <- t.n + 1

let length t = t.n
let records t = List.rev t.rev

let detail_fields = function
  | No_detail -> []
  | Guest g -> [ ("guest", Json.int g) ]
  | Vlink { vlink; src_host; dst_host; bandwidth_mbps; latency_ms } ->
      [
        ("vlink", Json.int vlink);
        ("src", Json.int src_host);
        ("dst", Json.int dst_host);
        ("bw_mbps", Json.float bandwidth_mbps);
        ("lat_ms", Json.float latency_ms);
      ]

let record_to_json r =
  let base tag fields =
    Json.Obj
      ([ ("seq", Json.int r.seq); ("t", Json.float r.t_s); ("event", Json.str tag) ]
      @ fields
      @ [ ("tenants", Json.int r.tenants); ("lbf", Json.float r.lbf) ])
  in
  match r.event with
  | Decision { req_id; n_guests; n_vlinks; candidate_hosts; work; decision } ->
      let tag, extra =
        match decision with
        | Admit { defrag_assisted = false } -> ("admit", [])
        | Admit { defrag_assisted = true } -> ("admit-defrag", [])
        | Reject { cause; binding; detail } ->
            ( "reject",
              [
                ("cause", Json.str (cause_label cause));
                ("binding", Json.str binding);
              ]
              @ detail_fields detail )
      in
      base tag
        ([
           ("id", Json.int req_id);
           ("guests", Json.int n_guests);
           ("vlinks", Json.int n_vlinks);
           ("candidates", Json.int candidate_hosts);
           ("work", Json.int work);
         ]
        @ extra)
  | Departure { tenant } -> base "depart" [ ("id", Json.int tenant) ]
  | Defrag_move { tenant } -> base "defrag-move" [ ("id", Json.int tenant) ]
  | Eviction { tenant } -> base "evict" [ ("id", Json.int tenant) ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun r ->
      Buffer.add_string buf (Json.to_string (record_to_json r));
      Buffer.add_char buf '\n')
    (records t);
  Buffer.contents buf
