let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

let metric_name ?(namespace = "hmn") name =
  let base = sanitize name in
  let base =
    (* a leading digit is invalid without a prefix *)
    if base = "" then "unnamed"
    else
      match base.[0] with '0' .. '9' -> "_" ^ base | _ -> base
  in
  if namespace = "" then base else sanitize namespace ^ "_" ^ base

let add_family buf ~name ~kind ~samples =
  Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
  List.iter (fun line -> Buffer.add_string buf line) samples

let render ?namespace (s : Metrics.snapshot) =
  let buf = Buffer.create 2048 in
  List.iter
    (fun (name, v) ->
      let n = metric_name ?namespace name ^ "_total" in
      add_family buf ~name:n ~kind:"counter"
        ~samples:[ Printf.sprintf "%s %d\n" n v ])
    s.counters;
  List.iter
    (fun (name, v) ->
      let n = metric_name ?namespace name ^ "_max" in
      add_family buf ~name:n ~kind:"gauge"
        ~samples:[ Printf.sprintf "%s %d\n" n v ])
    s.gauge_maxima;
  List.iter
    (fun (name, (h : Metrics.histogram_snapshot)) ->
      let n = metric_name ?namespace name in
      let cumulative = ref 0 in
      let buckets =
        Array.to_list
          (Array.mapi
             (fun i count ->
               cumulative := !cumulative + count;
               let le =
                 if i < Array.length h.bounds then
                   Printf.sprintf "%g" h.bounds.(i)
                 else "+Inf"
               in
               Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" n le !cumulative)
             h.bucket_counts)
      in
      add_family buf ~name:n ~kind:"histogram"
        ~samples:
          (buckets
          @ [
              Printf.sprintf "%s_count %d\n" n h.observations;
              Printf.sprintf "%s_sum %g\n" n
                (float_of_int h.sum_milli /. 1000.);
            ]))
    s.histograms;
  Buffer.contents buf
