type t = {
  columns : string list;
  n_cols : int;
  capacity : int;
  times : float array;
  rows : float array array;
  mutable total : int;  (* samples ever; head = total mod capacity *)
}

let create ?(capacity = 4096) ~columns () =
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be positive";
  let n_cols = List.length columns in
  if n_cols = 0 then invalid_arg "Timeseries.create: no columns";
  {
    columns;
    n_cols;
    capacity;
    times = Array.make capacity 0.;
    rows = Array.init capacity (fun _ -> Array.make n_cols 0.);
    total = 0;
  }

let columns t = t.columns

let sample t ~t_s row =
  if Array.length row <> t.n_cols then
    invalid_arg
      (Printf.sprintf "Timeseries.sample: %d values for %d columns"
         (Array.length row) t.n_cols);
  let slot = t.total mod t.capacity in
  t.times.(slot) <- t_s;
  Array.blit row 0 t.rows.(slot) 0 t.n_cols;
  t.total <- t.total + 1

let length t = Int.min t.total t.capacity
let total t = t.total
let dropped t = t.total - length t

let iter t f =
  let n = length t in
  let first = t.total - n in
  for i = first to t.total - 1 do
    let slot = i mod t.capacity in
    f ~t_s:t.times.(slot) t.rows.(slot)
  done

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "t_s";
  List.iter
    (fun c ->
      Buffer.add_char buf ',';
      Buffer.add_string buf c)
    t.columns;
  Buffer.add_char buf '\n';
  iter t (fun ~t_s row ->
      Buffer.add_string buf (Printf.sprintf "%g" t_s);
      Array.iter
        (fun v ->
          Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "%g" v))
        row;
      Buffer.add_char buf '\n');
  Buffer.contents buf
