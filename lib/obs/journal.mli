(** Admission-decision journal: a structured per-request event log with
    a closed rejection-cause taxonomy, serialized as deterministic
    JSONL.

    The journal itself is policy-free storage — the online service
    appends records stamped with {e simulated} time, and the validator
    independently re-derives each rejection cause from raw problem data
    (see [Hmn_validate.Decision]) and compares it against what was
    journaled. Two runs of the same seeded session produce byte-equal
    {!to_jsonl} output at any [HMN_JOBS].

    Cause taxonomy (closed — {!cause_label} enumerates every string
    that can appear in a record):
    - [Screened _]: rejected by the O(n) feasibility screen before any
      mapping attempt (aggregate memory, aggregate storage, or a
      disconnected cluster with virtual links present).
    - [Hosting r]: the hosting stage could not place some guest; [r] is
      the binding resource. [Cpu] is reserved — in the paper's model
      CPU is the balancing objective, never a placement gate — and is
      journaled only if a future policy makes CPU admission-gating.
    - [Networking b]: every guest was placed but some virtual link
      could not be routed; [b] says whether bandwidth or the latency
      bound was binding (judged against the fresh residual cluster, so
      a link that is only unroutable because of the request's own
      earlier reservations classifies as [Bandwidth]). *)

type resource = Mem | Stor | Cpu
type screen = Agg_mem | Agg_stor | Disconnected
type net = Latency | Bandwidth
type cause = Screened of screen | Hosting of resource | Networking of net

val cause_label : cause -> string
(** Stable wire string, e.g. ["hosting-mem"], ["networking-latency"]. *)

type detail =
  | No_detail
  | Guest of int  (** index of the unplaceable guest *)
  | Vlink of {
      vlink : int;
      src_host : int;
      dst_host : int;
      bandwidth_mbps : float;
      latency_ms : float;
    }  (** the unroutable virtual link, with its host endpoints *)

type decision =
  | Admit of { defrag_assisted : bool }
  | Reject of { cause : cause; binding : string; detail : detail }

type event =
  | Decision of {
      req_id : int;
      n_guests : int;
      n_vlinks : int;
      candidate_hosts : int;
          (** hosts whose residual memory and storage fit the request's
              most memory-demanding guest, counted before any
              reservation by this request *)
      work : int;
          (** deterministic admission effort:
              [1 + tries * (n_guests + 2 * n_vlinks)] summed over
              attempts — the pinnable latency proxy *)
      decision : decision;
    }
  | Departure of { tenant : int }
  | Defrag_move of { tenant : int }
  | Eviction of { tenant : int }  (** reserved for the elasticity PR *)

type record = {
  seq : int;  (** dense, assigned by {!add} *)
  t_s : float;  (** simulated time *)
  tenants : int;  (** resident tenants after the event *)
  lbf : float;  (** occupied LBF after the event *)
  event : event;
}

type t

val create : unit -> t
val add : t -> t_s:float -> tenants:int -> lbf:float -> event -> unit
val length : t -> int
val records : t -> record list
(** Oldest first. *)

val record_to_json : record -> Hmn_prelude.Json.t
val to_jsonl : t -> string
(** One compact JSON object per line, oldest first, trailing newline
    when non-empty. Key order is fixed; floats print through the
    prelude's deterministic number formatter. *)
