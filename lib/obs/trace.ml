module Clock = Hmn_prelude.Clock
module Json = Hmn_prelude.Json

type phase = Span | Counter

type event = {
  name : string;
  cat : string;
  ph : phase;
  ts_us : float;  (* since the session's time origin (spans); caller's
                     clock for counters *)
  dur_us : float;  (* 0 for counters *)
  tid : int;  (* domain id *)
  args : (string * string) list;  (* string args (spans) *)
  series : (string * float) list;  (* numeric args (counters) *)
}

type buffer = {
  mutable events : event list;  (* newest first *)
  mutable count : int;
}

let switch = Atomic.make false
let enabled () = Atomic.get switch

(* The origin is rebased on [enable] so a session's timestamps start
   near zero; spans only ever read it, so a plain ref under the
   publish-on-enable ordering of [Atomic.set] is enough. *)
let origin = Atomic.make 0.

let registry_mutex = Mutex.create ()
let registry : buffer list ref = ref []

let fresh_buffer () =
  let b = { events = []; count = 0 } in
  Mutex.lock registry_mutex;
  registry := b :: !registry;
  Mutex.unlock registry_mutex;
  b

let dls_key : buffer Domain.DLS.key = Domain.DLS.new_key fresh_buffer

let enable () =
  Atomic.set origin (Clock.now_s ());
  Atomic.set switch true

let disable () = Atomic.set switch false

let push e =
  let b = Domain.DLS.get dls_key in
  b.events <- e :: b.events;
  b.count <- b.count + 1

let record name cat args t0 t1 =
  let o = Atomic.get origin in
  push
    {
      name;
      cat;
      ph = Span;
      ts_us = (t0 -. o) *. 1e6;
      dur_us = Float.max 0. (t1 -. t0) *. 1e6;
      tid = (Domain.self () :> int);
      args;
      series = [];
    }

let with_span ?(cat = "hmn") ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Clock.now_s () in
    Fun.protect
      ~finally:(fun () -> record name cat args t0 (Clock.now_s ()))
      f
  end

let counter ?(cat = "hmn") ~name ~ts_us series =
  if enabled () then
    push
      {
        name;
        cat;
        ph = Counter;
        ts_us;
        dur_us = 0.;
        tid = (Domain.self () :> int);
        args = [];
        series;
      }

let all_buffers () =
  Mutex.lock registry_mutex;
  let bs = !registry in
  Mutex.unlock registry_mutex;
  bs

let span_count () = List.fold_left (fun acc b -> acc + b.count) 0 (all_buffers ())

let clear () =
  List.iter
    (fun b ->
      b.events <- [];
      b.count <- 0)
    (all_buffers ())

(* Tenant-derived names and args are arbitrary bytes. The JSON layer
   escapes quotes and control characters but passes bytes >= 0x80
   through raw, which would embed invalid UTF-8 in the trace file; map
   everything outside printable ASCII to a literal \xNN so the output
   is both valid JSON and valid UTF-8, lossily but readably. *)
let sanitize s =
  let printable c = c >= ' ' && c <= '~' in
  if String.for_all printable s then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if printable c then Buffer.add_char buf c
        else Buffer.add_string buf (Printf.sprintf "\\x%02x" (Char.code c)))
      s;
    Buffer.contents buf
  end

let event_to_json e =
  let args =
    match e.ph with
    | Span ->
        List.map (fun (k, v) -> (sanitize k, Json.str (sanitize v))) e.args
    | Counter -> List.map (fun (k, v) -> (sanitize k, Json.float v)) e.series
  in
  Json.Obj
    ([
       ("name", Json.str (sanitize e.name));
       ("cat", Json.str (sanitize e.cat));
       ("ph", Json.str (match e.ph with Span -> "X" | Counter -> "C"));
       ("ts", Json.float e.ts_us);
     ]
    @ (match e.ph with Span -> [ ("dur", Json.float e.dur_us) ] | Counter -> [])
    @ [ ("pid", Json.int 1); ("tid", Json.int e.tid); ("args", Json.Obj args) ])

(* Total order: start time, then longest span first (so an enclosing
   span precedes its children; counters sort after co-timed spans),
   then name/cat/tid/args — every component deterministic, so the
   written file is byte-stable however the per-domain buffers happened
   to interleave. *)
let compare_events a b =
  let c = Float.compare a.ts_us b.ts_us in
  if c <> 0 then c
  else
    let c = Float.compare b.dur_us a.dur_us in
    if c <> 0 then c
    else
      let c = compare a.ph b.ph in
      if c <> 0 then c
      else
        let c = String.compare a.name b.name in
        if c <> 0 then c
        else
          let c = String.compare a.cat b.cat in
          if c <> 0 then c
          else
            let c = Int.compare a.tid b.tid in
            if c <> 0 then c
            else
              let c = compare a.args b.args in
              if c <> 0 then c else compare a.series b.series

let write ~path =
  let events = List.concat_map (fun b -> b.events) (all_buffers ()) in
  let events = List.sort compare_events events in
  let doc =
    Json.Obj
      [
        ("traceEvents", Json.Arr (List.map event_to_json events));
        ("displayTimeUnit", Json.str "ms");
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc
