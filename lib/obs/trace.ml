module Clock = Hmn_prelude.Clock
module Json = Hmn_prelude.Json

type event = {
  name : string;
  cat : string;
  ts_us : float;  (* since the session's time origin *)
  dur_us : float;
  tid : int;  (* domain id *)
  args : (string * string) list;
}

type buffer = {
  mutable events : event list;  (* newest first *)
  mutable count : int;
}

let switch = Atomic.make false
let enabled () = Atomic.get switch

(* The origin is rebased on [enable] so a session's timestamps start
   near zero; spans only ever read it, so a plain ref under the
   publish-on-enable ordering of [Atomic.set] is enough. *)
let origin = Atomic.make 0.

let registry_mutex = Mutex.create ()
let registry : buffer list ref = ref []

let fresh_buffer () =
  let b = { events = []; count = 0 } in
  Mutex.lock registry_mutex;
  registry := b :: !registry;
  Mutex.unlock registry_mutex;
  b

let dls_key : buffer Domain.DLS.key = Domain.DLS.new_key fresh_buffer

let enable () =
  Atomic.set origin (Clock.now_s ());
  Atomic.set switch true

let disable () = Atomic.set switch false

let record name cat args t0 t1 =
  let b = Domain.DLS.get dls_key in
  let o = Atomic.get origin in
  b.events <-
    {
      name;
      cat;
      ts_us = (t0 -. o) *. 1e6;
      dur_us = Float.max 0. (t1 -. t0) *. 1e6;
      tid = (Domain.self () :> int);
      args;
    }
    :: b.events;
  b.count <- b.count + 1

let with_span ?(cat = "hmn") ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let t0 = Clock.now_s () in
    Fun.protect
      ~finally:(fun () -> record name cat args t0 (Clock.now_s ()))
      f
  end

let all_buffers () =
  Mutex.lock registry_mutex;
  let bs = !registry in
  Mutex.unlock registry_mutex;
  bs

let span_count () = List.fold_left (fun acc b -> acc + b.count) 0 (all_buffers ())

let clear () =
  List.iter
    (fun b ->
      b.events <- [];
      b.count <- 0)
    (all_buffers ())

let event_to_json e =
  Json.Obj
    [
      ("name", Json.str e.name);
      ("cat", Json.str e.cat);
      ("ph", Json.str "X");
      ("ts", Json.float e.ts_us);
      ("dur", Json.float e.dur_us);
      ("pid", Json.int 1);
      ("tid", Json.int e.tid);
      ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.str v)) e.args));
    ]

let write ~path =
  let events = List.concat_map (fun b -> b.events) (all_buffers ()) in
  let events =
    List.sort
      (fun a b ->
        let c = Float.compare a.ts_us b.ts_us in
        if c <> 0 then c else Float.compare b.dur_us a.dur_us)
      events
  in
  let doc =
    Json.Obj
      [
        ("traceEvents", Json.Arr (List.map event_to_json events));
        ("displayTimeUnit", Json.str "ms");
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string ~pretty:true doc);
  output_char oc '\n';
  close_out oc
