(* Handles carry a [live] flag instead of consulting the global switch
   on every update: updates stay a single branch on a field the caller
   already has in cache, and flipping the switch mid-run cannot tear a
   measurement in half. *)

type counter = {
  mutable count : int;
  c_live : bool;
}

type gauge = {
  mutable last : int;
  mutable max_v : int;
  g_live : bool;
}

type histogram = {
  bounds : float array;
  buckets : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable observations : int;
  (* running sum kept in integer milliunits so cross-domain merges stay
     exact and order-insensitive, like the bucket counts *)
  mutable sum_milli : int;
  h_live : bool;
}

let inert_counter = { count = 0; c_live = false }
let inert_gauge = { last = 0; max_v = 0; g_live = false }

let inert_histogram =
  { bounds = [||]; buckets = [| 0 |]; observations = 0; sum_milli = 0; h_live = false }

type collector = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

(* ---- global state ---- *)

let switch = Atomic.make false
let enable () = Atomic.set switch true
let disable () = Atomic.set switch false
let enabled () = Atomic.get switch

(* Every collector ever created, under a mutex taken only at collector
   creation (once per domain) and at snapshot/reset time — never on a
   metric update. *)
let registry_mutex = Mutex.create ()
let registry : collector list ref = ref []

let fresh_collector () =
  let c =
    {
      counters = Hashtbl.create 32;
      gauges = Hashtbl.create 8;
      histograms = Hashtbl.create 8;
    }
  in
  Mutex.lock registry_mutex;
  registry := c :: !registry;
  Mutex.unlock registry_mutex;
  c

(* The calling domain's private collector, created on first use. *)
let dls_key : collector Domain.DLS.key = Domain.DLS.new_key fresh_collector
let my_collector () = Domain.DLS.get dls_key

(* ---- handle creation ---- *)

let counter name =
  if not (enabled ()) then inert_counter
  else begin
    let c = my_collector () in
    match Hashtbl.find_opt c.counters name with
    | Some h -> h
    | None ->
      let h = { count = 0; c_live = true } in
      Hashtbl.add c.counters name h;
      h
  end

let gauge name =
  if not (enabled ()) then inert_gauge
  else begin
    let c = my_collector () in
    match Hashtbl.find_opt c.gauges name with
    | Some h -> h
    | None ->
      let h = { last = 0; max_v = 0; g_live = true } in
      Hashtbl.add c.gauges name h;
      h
  end

let default_bounds = [| 1.; 10.; 100.; 1e3; 1e4; 1e5; 1e6 |]

(* Edges are computed as 10^(k / per_decade) for integer k, not by
   repeated multiplication, so every call site asking for the same
   range gets bit-identical bounds (required by the cross-domain
   bounds-agreement check in [snapshot]). *)
let log_bounds ~lo ~hi ~per_decade =
  if per_decade <= 0 then invalid_arg "Metrics.log_bounds: per_decade must be positive";
  if not (lo > 0. && hi > lo) then
    invalid_arg "Metrics.log_bounds: need 0 < lo < hi";
  let pd = float_of_int per_decade in
  let k_lo = int_of_float (Float.round (Float.log10 lo *. pd)) in
  let k_hi = int_of_float (Float.ceil (Float.log10 hi *. pd -. 1e-9)) in
  Array.init (k_hi - k_lo + 1) (fun i ->
      10. ** (float_of_int (k_lo + i) /. pd))

let histogram ?(bounds = default_bounds) name =
  if not (enabled ()) then inert_histogram
  else begin
    if Array.length bounds = 0 then
      invalid_arg "Metrics.histogram: empty bounds";
    Array.iteri
      (fun i b ->
        if i > 0 && not (bounds.(i - 1) < b) then
          invalid_arg "Metrics.histogram: bounds must be strictly increasing")
      bounds;
    let c = my_collector () in
    match Hashtbl.find_opt c.histograms name with
    | Some h -> h
    | None ->
      let h =
        {
          bounds = Array.copy bounds;
          buckets = Array.make (Array.length bounds + 1) 0;
          observations = 0;
          sum_milli = 0;
          h_live = true;
        }
      in
      Hashtbl.add c.histograms name h;
      h
  end

(* ---- updates ---- *)

module Counter = struct
  let incr c = if c.c_live then c.count <- c.count + 1
  let add c n = if c.c_live then c.count <- c.count + n
end

module Gauge = struct
  let observe g v =
    if g.g_live then begin
      g.last <- v;
      if v > g.max_v then g.max_v <- v
    end
end

module Histogram = struct
  (* First bucket whose upper edge admits [v]; linear scan — bucket
     counts are small (default 7) and the arrays are contiguous. *)
  let bucket_of bounds v =
    let n = Array.length bounds in
    let i = ref 0 in
    while !i < n && v > bounds.(!i) do
      incr i
    done;
    !i

  let observe h v =
    if h.h_live then begin
      let b = bucket_of h.bounds v in
      h.buckets.(b) <- h.buckets.(b) + 1;
      h.observations <- h.observations + 1;
      h.sum_milli <- h.sum_milli + int_of_float (Float.round (v *. 1000.))
    end
end

(* ---- aggregation ---- *)

type histogram_snapshot = {
  bounds : float array;
  bucket_counts : int array;
  observations : int;
  sum_milli : int;
}

type snapshot = {
  counters : (string * int) list;
  gauge_maxima : (string * int) list;
  histograms : (string * histogram_snapshot) list;
}

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> String.compare a b) tbl

(* Integer sums and maxima are associative and commutative over exact
   values, so the merged result is independent of both the number of
   collectors and the order they registered in — jobs=1 and jobs=N
   sweeps aggregate byte-identically. *)
let snapshot () =
  Mutex.lock registry_mutex;
  let collectors = !registry in
  Mutex.unlock registry_mutex;
  let counters = Hashtbl.create 64 in
  let gauges = Hashtbl.create 16 in
  let histograms = Hashtbl.create 16 in
  List.iter
    (fun (c : collector) ->
      Hashtbl.iter
        (fun name h ->
          let prev = Option.value (Hashtbl.find_opt counters name) ~default:0 in
          Hashtbl.replace counters name (prev + h.count))
        c.counters;
      Hashtbl.iter
        (fun name h ->
          let prev = Option.value (Hashtbl.find_opt gauges name) ~default:0 in
          Hashtbl.replace gauges name (Stdlib.max prev h.max_v))
        c.gauges;
      Hashtbl.iter
        (fun name (h : histogram) ->
          match Hashtbl.find_opt histograms name with
          | None ->
            Hashtbl.add histograms name
              {
                bounds = Array.copy h.bounds;
                bucket_counts = Array.copy h.buckets;
                observations = h.observations;
                sum_milli = h.sum_milli;
              }
          | Some acc ->
            if acc.bounds <> h.bounds then
              invalid_arg
                ("Metrics.snapshot: histogram " ^ name
               ^ " has mismatched bounds across domains");
            Array.iteri
              (fun i n -> acc.bucket_counts.(i) <- acc.bucket_counts.(i) + n)
              h.buckets;
            Hashtbl.replace histograms name
              {
                acc with
                observations = acc.observations + h.observations;
                sum_milli = acc.sum_milli + h.sum_milli;
              })
        c.histograms)
    collectors;
  let bindings tbl = sorted_bindings (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  {
    counters = bindings counters;
    gauge_maxima = bindings gauges;
    histograms = bindings histograms;
  }

let reset () =
  Mutex.lock registry_mutex;
  let collectors = !registry in
  Mutex.unlock registry_mutex;
  List.iter
    (fun (c : collector) ->
      Hashtbl.iter (fun _ h -> h.count <- 0) c.counters;
      Hashtbl.iter
        (fun _ h ->
          h.last <- 0;
          h.max_v <- 0)
        c.gauges;
      Hashtbl.iter
        (fun _ h ->
          Array.fill h.buckets 0 (Array.length h.buckets) 0;
          h.observations <- 0;
          h.sum_milli <- 0)
        c.histograms)
    collectors

let render s =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, v) -> Buffer.add_string buf (Printf.sprintf "counter %s %d\n" name v))
    s.counters;
  List.iter
    (fun (name, v) ->
      Buffer.add_string buf (Printf.sprintf "gauge-max %s %d\n" name v))
    s.gauge_maxima;
  List.iter
    (fun (name, h) ->
      Buffer.add_string buf (Printf.sprintf "histogram %s n=%d" name h.observations);
      Array.iteri
        (fun i n ->
          if i < Array.length h.bounds then
            Buffer.add_string buf (Printf.sprintf " le%g=%d" h.bounds.(i) n)
          else Buffer.add_string buf (Printf.sprintf " inf=%d" n))
        h.bucket_counts;
      Buffer.add_char buf '\n')
    s.histograms;
  Buffer.contents buf
