(** Prometheus text-format exposition for a {!Metrics.snapshot}.

    Renders the standard families: counters as [<name>_total], gauge
    maxima as gauges, histograms as cumulative [_bucket{le="..."}]
    series plus [_count] and [_sum] (the sum comes from the snapshot's
    exact integer milliunit accumulator, divided by 1000). Metric names
    are sanitized to the Prometheus charset — every character outside
    [[a-zA-Z0-9_:]] becomes ['_'] — and prefixed with the namespace.

    Output is deterministic: the snapshot's name ordering is preserved
    and all numbers print through fixed formats, so the same merged
    snapshot renders byte-identically at any [HMN_JOBS]. *)

val metric_name : ?namespace:string -> string -> string
(** Sanitized, namespaced metric name. [namespace] defaults to
    ["hmn"]; pass [""] for none. *)

val render : ?namespace:string -> Metrics.snapshot -> string
(** The full exposition document: [# TYPE] comments and sample lines,
    one family per metric, terminated by a newline. *)
