(* HDR-style log-bucketed integer histogram.

   Layout for precision [p] (sub-bucket bits): values in [0, 2^p) land
   in bucket [v] exactly; a value with most-significant bit [e >= p]
   keeps its top [p] bits, giving index
     2^p + (e - p) * 2^(p-1) + ((v lsr (e - p + 1)) - 2^(p-1)).
   Every bucket above 2^p therefore spans [2^(e-p+1)] consecutive
   values — relative width 2^-(p-1) — and the whole 62-bit non-negative
   int range fits in 2^p + (62 - p) * 2^(p-1) buckets (3648 for p = 7).
   All state is an int array: merges are element-wise sums and every
   accessor is a pure integer walk, so results are independent of
   recording and merge order. *)

type t = { precision : int; counts : int array; mutable total : int }

let msb v =
  (* v > 0 *)
  let e = ref 0 in
  let x = ref (v lsr 1) in
  while !x > 0 do
    incr e;
    x := !x lsr 1
  done;
  !e

let n_buckets ~precision = (1 lsl precision) + ((62 - precision) * (1 lsl (precision - 1)))

let create ?(precision = 7) () =
  if precision < 2 || precision > 10 then
    invalid_arg (Printf.sprintf "Quantile.create: precision %d not in [2, 10]" precision);
  { precision; counts = Array.make (n_buckets ~precision) 0; total = 0 }

let precision t = t.precision

let index t v =
  let p = t.precision in
  if v < 1 lsl p then v
  else
    let e = msb v in
    (1 lsl p) + ((e - p) * (1 lsl (p - 1))) + ((v lsr (e - p + 1)) - (1 lsl (p - 1)))

(* Largest value mapping to bucket [idx] — the reported quantile edge. *)
let upper_edge t idx =
  let p = t.precision in
  if idx < 1 lsl p then idx
  else
    let half = 1 lsl (p - 1) in
    let off = idx - (1 lsl p) in
    let e = p + (off / half) in
    let sub = off mod half in
    let shift = e - p + 1 in
    ((half + sub) lsl shift) + (1 lsl shift) - 1

let record_n t v ~n =
  if n < 0 then invalid_arg "Quantile.record_n: negative count";
  if n > 0 then begin
    let v = if v < 0 then 0 else v in
    let idx = index t v in
    t.counts.(idx) <- t.counts.(idx) + n;
    t.total <- t.total + n
  end

let record t v = record_n t v ~n:1
let count t = t.total

let quantile t q =
  if t.total = 0 then 0
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int t.total)) in
      Int.max 1 (Int.min t.total r)
    in
    let idx = ref 0 in
    let seen = ref t.counts.(0) in
    while !seen < rank do
      incr idx;
      seen := !seen + t.counts.(!idx)
    done;
    upper_edge t !idx
  end

let max_value t = quantile t 1.

let merge_into ~into src =
  if into.precision <> src.precision then
    invalid_arg
      (Printf.sprintf "Quantile.merge_into: precision mismatch (%d vs %d)"
         into.precision src.precision);
  Array.iteri
    (fun i c -> if c <> 0 then into.counts.(i) <- into.counts.(i) + c)
    src.counts;
  into.total <- into.total + src.total

let copy t = { t with counts = Array.copy t.counts }
