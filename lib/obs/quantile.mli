(** Deterministic log-bucketed quantile histogram (HDR-style).

    Records non-negative integers (callers pick the unit — the online
    service records admission latency in nanoseconds and admission work
    in abstract units) into buckets whose width grows geometrically:
    values below [2^precision] are exact, and every larger bucket spans
    a [2^-(precision-1)] relative range, so any reported quantile is
    within that relative error of the true order statistic — see
    {!quantile}.

    Everything is integer arithmetic on a fixed bucket layout:
    {!merge_into} is an element-wise integer sum, hence associative,
    commutative, and {e exact} — merging per-domain histograms yields
    byte-identical quantiles regardless of how many domains recorded or
    in which order they merged, the same discipline as
    [Metrics.snapshot]. *)

type t

val create : ?precision:int -> unit -> t
(** [precision] (default 7, clamped meaning: must be in [2..10]) is the
    number of significant bits kept per value: buckets above
    [2^precision] have relative width [2^-(precision-1)] (default
    1/64 ≈ 1.6%). Raises [Invalid_argument] outside [2..10]. *)

val precision : t -> int

val record : t -> int -> unit
(** Records one value; negative values clamp to 0. *)

val record_n : t -> int -> n:int -> unit
(** Records the same value [n] times ([n < 0] is rejected). *)

val count : t -> int
(** Total recorded observations. *)

val quantile : t -> float -> int
(** [quantile t q] (with [q] clamped into [0, 1]) returns the upper
    edge of the bucket holding the observation of rank
    [ceil (q * count)] (rank 1 for [q = 0]); 0 when empty. The result
    is an over-estimate of the true order statistic by at most the
    bucket's relative width. Pure integer bucket walk — deterministic
    for a given multiset of recorded values. *)

val max_value : t -> int
(** [quantile t 1.] — upper edge of the highest occupied bucket. *)

val merge_into : into:t -> t -> unit
(** Element-wise integer bucket sum. Raises [Invalid_argument] when the
    precisions differ. The source is left untouched. *)

val copy : t -> t
