(** Ring-buffer time-series recorder for the online flight recorder.

    Samples are rows of floats under a fixed column schema, stamped with
    the caller's clock — the online service passes its {e simulated}
    time, never the wall clock, so exported series are byte-identical
    across reruns and job counts. When the buffer is full the oldest
    samples are overwritten and counted in {!dropped}; the retained
    window always holds the most recent [capacity] samples. *)

type t

val create : ?capacity:int -> columns:string list -> unit -> t
(** [capacity] defaults to 4096 samples. Raises [Invalid_argument] on a
    non-positive capacity or an empty column list. *)

val columns : t -> string list

val sample : t -> t_s:float -> float array -> unit
(** Appends one row. The array is copied; raises [Invalid_argument]
    when its length does not match the column count. Timestamps are not
    required to be monotone (the recorder is policy-free), but the
    online service only feeds event-ordered simulated time. *)

val length : t -> int
(** Samples currently retained (≤ capacity). *)

val total : t -> int
(** Samples ever recorded. *)

val dropped : t -> int
(** [total - length]: samples overwritten by ring wrap-around. *)

val iter : t -> (t_s:float -> float array -> unit) -> unit
(** Retained samples, oldest first. The row array is the internal
    storage — callers must not mutate or retain it. *)

val to_csv : t -> string
(** Header [t_s,<col>,...] then one row per retained sample, oldest
    first. Floats print with ["%g"] — deterministic for identical
    inputs. *)
