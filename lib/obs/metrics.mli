(** Metrics registry: named counters, gauges, and fixed-bucket
    histograms with O(1) updates, designed for the mapping hot paths.

    {b Sink model.} Metrics are globally disabled by default. While
    disabled, {!counter} / {!gauge} / {!histogram} hand out a shared
    inert handle whose update functions test one [live] flag and return
    — a hot loop pays a single predictable branch per update and no
    allocation, lookup, or locking. Enabling must happen before the
    instrumented code runs (the runner does it from [HMN_METRICS], the
    [profile] subcommand programmatically); handles created while
    disabled stay inert for their lifetime.

    {b Per-domain collectors.} Every domain that touches a metric lazily
    gets its own private collector (domain-local storage), so workers of
    [Hmn_prelude.Domain_pool] never contend on shared state.
    {!snapshot} merges all collectors ever created. Every merge
    operation is commutative and order-insensitive over exact values —
    integer sums for counters and histogram buckets, maxima for gauges —
    so the merged aggregate is {e byte-identical} no matter how many
    domains the work was spread over (the same discipline as
    [Running.merge] in the experiment sweep).

    Thread-safety: a handle must only be updated by the domain that
    created it; {!snapshot} and {!reset} must be called while no other
    domain is updating (e.g. after [Domain_pool.wait]). *)

(** {2 Global switch} *)

val enable : unit -> unit
val disable : unit -> unit
val enabled : unit -> bool

(** {2 Handles} *)

type counter
type gauge
type histogram

val counter : string -> counter
(** The named counter of the calling domain's collector, created on
    first use. Returns the inert handle while disabled. *)

val gauge : string -> gauge

val histogram : ?bounds:float array -> string -> histogram
(** [bounds] are the upper-inclusive bucket edges, strictly increasing;
    observations above the last edge land in an overflow bucket. The
    bounds of the first creation win for a given name (they must agree
    across domains, which they do when every site passes the same
    literal). Default: powers of ten from 1 to 1e6. *)

val log_bounds : lo:float -> hi:float -> per_decade:int -> float array
(** Log-scaled bucket edges [10^(k / per_decade)] covering [[lo, hi]],
    computed from integer exponents so every call site with the same
    arguments gets bit-identical bounds. E.g.
    [log_bounds ~lo:1e-3 ~hi:1e4 ~per_decade:3] gives 22 edges
    0.001, ~0.00215, ~0.00464, 0.01, … 10000 — fine enough to tell
    sub-millisecond admissions apart. *)

module Counter : sig
  val incr : counter -> unit
  val add : counter -> int -> unit
end

module Gauge : sig
  val observe : gauge -> int -> unit
  (** Records the value; the gauge keeps the last and the maximum
      observed. Merging keeps the maximum. *)
end

module Histogram : sig
  val observe : histogram -> float -> unit
end

(** {2 Aggregation} *)

type histogram_snapshot = {
  bounds : float array;
  bucket_counts : int array;  (** length [Array.length bounds + 1] *)
  observations : int;
  sum_milli : int;
      (** sum of observations in integer milliunits (each observation
          contributes [round (v * 1000)]) — exact under merging; used
          by [Expose] for the Prometheus [_sum] series *)
}

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauge_maxima : (string * int) list;  (** sorted by name *)
  histograms : (string * histogram_snapshot) list;  (** sorted by name *)
}

val snapshot : unit -> snapshot
(** Deterministic merge of every collector of every domain. *)

val reset : unit -> unit
(** Zeroes every metric in every collector (names and handles stay
    valid). For tests and repeated [profile] runs. *)

val render : snapshot -> string
(** Sorted plain-text rendering, one metric per line — stable across
    domain counts, usable for byte-comparison in tests. *)
