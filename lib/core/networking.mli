(** HMN stage 3 — Networking (paper §4.3).

    Maps each virtual link to a physical path with the modified
    1-constrained A\*Prune ({!Hmn_routing.Astar_prune}): paths are
    selected by greatest bottleneck bandwidth so that wide physical
    links are preserved for the links still to be mapped. Virtual links
    are processed in descending required-bandwidth order; links whose
    endpoints share a host are mapped to the trivial intra-host path
    (infinite bandwidth, zero latency) without touching the network.

    The stage — and any heuristic using it — fails on the first virtual
    link for which no feasible path exists under the current residual
    bandwidth. *)

type stats = {
  routed : int;  (** inter-host links actually routed *)
  intra_host : int;  (** links whose endpoints share a host *)
  expanded : int;  (** total A\*Prune expansions *)
  generated : int;  (** total A\*Prune queue pushes *)
  precompute_s : float;
      (** wall time of the eager latency-table fill (landmark
          Dijkstras) — kept out of the metrics registry, whose
          aggregates must stay deterministic across job counts *)
  cache_hits : int;
      (** cached paths reused after revalidation (0 unless
          [route_cache]) *)
  cache_revalidate_failed : int;
      (** cache entries rejected against the current residual state *)
  fast_path : int;
      (** routes resolved by the sole-neighbor tree fast path (0 unless
          [tree_fast_path]) *)
}

val run :
  ?router:
    (residual:Hmn_routing.Residual.t ->
    latency_tables:Hmn_routing.Latency_table.t ->
    src:int ->
    dst:int ->
    bandwidth_mbps:float ->
    latency_ms:float ->
    unit ->
    Hmn_routing.Path.t option) ->
  ?route_cache:bool ->
  ?tree_fast_path:bool ->
  Hmn_mapping.Placement.t ->
  (Hmn_mapping.Link_map.t * stats, Mapper.failure) result
(** [router] defaults to A\*Prune; the Hosting-with-Search baseline
    passes a DFS router instead. Raises nothing; all failures are
    returned. The placement must be complete
    ([Hmn_mapping.Placement.all_assigned]).

    Both accelerators default to [false], keeping the stage
    bit-identical to a per-call fresh search. [route_cache] reuses
    paths per host pair when they revalidate against the current
    residual bandwidths and latency bound — a revalidated path is
    feasible but not necessarily still the widest, so path selection
    may differ. [tree_fast_path] collapses unique-path (sole-neighbor)
    segments without search; returned paths are identical, but
    [expanded]/[generated] drop for such routes. Both only affect the
    default router; a custom [router] ignores them. *)
