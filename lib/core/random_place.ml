module Cluster = Hmn_testbed.Cluster
module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem

let run ~rng (problem : Problem.t) =
  let placement = Placement.create problem in
  let hosts = Cluster.host_ids problem.Problem.cluster in
  let n_guests = Virtual_env.n_guests problem.Problem.venv in
  let order = Array.init n_guests Fun.id in
  Hmn_rng.Sample.shuffle rng order;
  let exception Stuck of int in
  try
    Array.iter
      (fun guest ->
        let candidates =
          Array.of_list
            (List.filter
               (fun h -> Placement.fits placement ~guest ~host:h)
               (Array.to_list hosts))
        in
        if Array.length candidates = 0 then raise (Stuck guest);
        let host = Hmn_rng.Sample.choice rng candidates in
        match Placement.assign placement ~guest ~host with
        | Ok () -> ()
        | Error msg -> failwith ("Random_place.run: " ^ msg))
      order;
    Ok placement
  with Stuck guest ->
    Error
      (Mapper.fail_detail ~detail:(Mapper.Unplaceable_guest { guest })
         ~stage:"random-placement"
         ~reason:(Printf.sprintf "no host fits guest %d" guest))
