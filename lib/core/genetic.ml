module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Mapping = Hmn_mapping.Mapping

type params = {
  population : int;
  generations : int;
  crossover_rate : float;
  mutation_rate : float;
  tournament : int;
}

let default_params =
  { population = 40; generations = 60; crossover_rate = 0.9; mutation_rate = 0.02;
    tournament = 3 }

let validate_params p =
  if p.population < 2 then invalid_arg "Genetic: population >= 2 required";
  if p.generations < 1 then invalid_arg "Genetic: generations >= 1 required";
  if p.crossover_rate < 0. || p.crossover_rate > 1. then
    invalid_arg "Genetic: crossover_rate in [0,1] required";
  if p.mutation_rate < 0. || p.mutation_rate > 1. then
    invalid_arg "Genetic: mutation_rate in [0,1] required";
  if p.tournament < 1 then invalid_arg "Genetic: tournament >= 1 required"

(* Chromosome: host id per guest. Fitness (to MINIMIZE): LBF plus a
   large penalty per unit of memory/storage overflow, so feasibility
   dominates balance. *)
let penalty_weight = 1e4

let evaluate problem chromosome =
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let hosts = Cluster.host_ids cluster in
  let n_nodes = Cluster.n_nodes cluster in
  let mem = Array.make n_nodes 0. and stor = Array.make n_nodes 0. in
  let cpu = Array.make n_nodes 0. in
  Array.iteri
    (fun guest host ->
      let d = Virtual_env.demand venv guest in
      mem.(host) <- mem.(host) +. d.Resources.mem_mb;
      stor.(host) <- stor.(host) +. d.Resources.stor_gb;
      cpu.(host) <- cpu.(host) +. d.Resources.mips)
    chromosome;
  let overflow = ref 0. in
  let residuals =
    Array.map
      (fun h ->
        let cap = Cluster.capacity cluster h in
        if mem.(h) > cap.Resources.mem_mb then
          overflow := !overflow +. ((mem.(h) -. cap.Resources.mem_mb) /. cap.Resources.mem_mb);
        if stor.(h) > cap.Resources.stor_gb then
          overflow := !overflow +. ((stor.(h) -. cap.Resources.stor_gb) /. cap.Resources.stor_gb);
        cap.Resources.mips -. cpu.(h))
      hosts
  in
  let lbf = Hmn_stats.Descriptive.stddev residuals in
  (lbf +. (penalty_weight *. !overflow), !overflow = 0.)

let evolve ?(params = default_params) ~rng (problem : Problem.t) =
  validate_params params;
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let hosts = Cluster.host_ids cluster in
  let n_guests = Virtual_env.n_guests venv in
  let random_host () = hosts.(Hmn_rng.Rng.int rng ~bound:(Array.length hosts)) in
  let random_chromosome () = Array.init n_guests (fun _ -> random_host ()) in
  (* Seed one individual with the Hosting stage's answer when it
     exists: GA literature calls this a warm start, and Liu et al. seed
     with their greedy heuristic likewise. *)
  let seeded =
    match Hosting.run problem with
    | Ok placement ->
      Some (Array.init n_guests (fun g -> Placement.host_of_exn placement ~guest:g))
    | Error _ -> None
  in
  let population =
    Array.init params.population (fun i ->
        match (i, seeded) with 0, Some s -> Array.copy s | _ -> random_chromosome ())
  in
  let scores = Array.map (evaluate problem) population in
  let best = ref None in
  let note_best () =
    Array.iteri
      (fun i (score, feasible) ->
        if feasible then begin
          match !best with
          | Some (b, _) when b <= score -> ()
          | _ -> best := Some (score, Array.copy population.(i))
        end)
      scores
  in
  note_best ();
  let tournament () =
    let w = ref (Hmn_rng.Rng.int rng ~bound:params.population) in
    for _ = 2 to params.tournament do
      let c = Hmn_rng.Rng.int rng ~bound:params.population in
      if fst scores.(c) < fst scores.(!w) then w := c
    done;
    population.(!w)
  in
  for _ = 1 to params.generations do
    let elite_idx = ref 0 in
    Array.iteri (fun i (s, _) -> if s < fst scores.(!elite_idx) then elite_idx := i) scores;
    let next =
      Array.init params.population (fun slot ->
          if slot = 0 then Array.copy population.(!elite_idx)
          else begin
            let a = tournament () and b = tournament () in
            let child =
              if Hmn_rng.Rng.float rng < params.crossover_rate then
                Array.init n_guests (fun g ->
                    if Hmn_rng.Rng.bool rng then a.(g) else b.(g))
              else Array.copy a
            in
            Array.iteri
              (fun g _ ->
                if Hmn_rng.Rng.float rng < params.mutation_rate then
                  child.(g) <- random_host ())
              child;
            child
          end)
    in
    Array.blit next 0 population 0 params.population;
    Array.iteri (fun i c -> scores.(i) <- evaluate problem c) population;
    note_best ()
  done;
  match !best with
  | None ->
    Error
      (Mapper.fail ~stage:"genetic"
         ~reason:"no feasible individual after the final generation")
  | Some (_, chromosome) ->
    let placement = Placement.create problem in
    let exception Decode_failed of string in
    (try
       Array.iteri
         (fun guest host ->
           match Placement.assign placement ~guest ~host with
           | Ok () -> ()
           | Error msg -> raise (Decode_failed msg))
         chromosome;
       Ok placement
     with Decode_failed msg ->
       Error (Mapper.fail ~stage:"genetic" ~reason:("decode failed: " ^ msg)))

let mapper ?(params = default_params) () =
  {
    Mapper.name = "GA";
    description =
      "genetic-algorithm placement (Liu et al. 2005 style) + A*Prune networking";
    run =
      (fun ~rng problem ->
        let run_once () =
          match evolve ~params ~rng problem with
          | Error f -> Error f
          | Ok placement -> (
            match Networking.run placement with
            | Error f -> Error f
            | Ok (link_map, _) -> Ok (Mapping.make ~placement ~link_map))
        in
        let result, elapsed_s = Mapper.time run_once in
        Mapper.single_try ~result ~elapsed_s);
  }
