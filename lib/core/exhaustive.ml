module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Objective = Hmn_mapping.Objective
module Mapping = Hmn_mapping.Mapping

let max_states = 1_000_000

let state_count ~hosts ~guests =
  (* hosts^guests with overflow saturation. *)
  let rec go acc i =
    if i = guests then acc
    else if acc > max_states then acc
    else go (acc * hosts) (i + 1)
  in
  go 1 0

let optimal_placement (problem : Problem.t) =
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let hosts = Cluster.host_ids cluster in
  let n_hosts = Array.length hosts in
  let n_guests = Virtual_env.n_guests venv in
  if state_count ~hosts:n_hosts ~guests:n_guests > max_states then
    Error
      (Mapper.fail ~stage:"exhaustive"
         ~reason:
           (Printf.sprintf "instance too large: %d^%d states exceed the %d budget"
              n_hosts n_guests max_states))
  else begin
    let placement = Placement.create problem in
    let best = ref None in
    (* Depth-first over guests; the placement object carries the
       residual bookkeeping and prunes infeasible branches. *)
    let rec go guest =
      if guest = n_guests then begin
        let lbf = Objective.load_balance_factor placement in
        match !best with
        | Some (b, _) when b <= lbf -> ()
        | _ -> best := Some (lbf, Placement.copy placement)
      end
      else
        Array.iter
          (fun host ->
            match Placement.assign placement ~guest ~host with
            | Error _ -> ()
            | Ok () ->
              go (guest + 1);
              (match Placement.unassign placement ~guest with
              | Ok () -> ()
              | Error msg -> failwith ("Exhaustive: unassign failed: " ^ msg)))
          hosts
    in
    go 0;
    match !best with
    | None ->
      Error (Mapper.fail ~stage:"exhaustive" ~reason:"no feasible placement exists")
    | Some (lbf, placement) -> Ok (placement, lbf)
  end

let mapper =
  {
    Mapper.name = "OPT";
    description = "exhaustive optimal placement (tiny instances only) + A*Prune";
    run =
      (fun ~rng:_ problem ->
        let run_once () =
          match optimal_placement problem with
          | Error f -> Error f
          | Ok (placement, _) -> (
            match Networking.run placement with
            | Error f -> Error f
            | Ok (link_map, _) -> Ok (Mapping.make ~placement ~link_map))
        in
        let result, elapsed_s = Mapper.time run_once in
        Mapper.single_try ~result ~elapsed_s);
  }
