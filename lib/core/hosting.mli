(** HMN stage 1 — Hosting (paper §4.1).

    Produces a first assignment of guests to hosts driven by network
    affinity: virtual links are processed in descending bandwidth
    order, and both endpoints of a link are put on the same host
    whenever they fit, so the highest-bandwidth virtual links tend to
    become intra-host (free) links. The host list is kept sorted by
    descending available CPU and re-sorted after every assignment, as
    in the paper.

    Per the paper's rules, for each link [(vs, vd)]:
    - both endpoints already placed: skip;
    - neither placed: if both fit together on the first (most
      CPU-available) host, place both there; otherwise place the more
      CPU-demanding guest on the first host that fits it and the other
      guest on the next host down the list that fits (wrapping around
      the list end — a robustness extension over the paper's
      formulation, which leaves "next" unspecified at the list end);
    - exactly one placed: co-locate the other on the same host if it
      fits, else on the first host in the list that fits.

    Guests untouched by any link (possible only in non-generated
    environments; the paper's generator guarantees connectivity) are
    placed last, each on the first host that fits.

    The stage fails — and HMN with it — when some guest fits on no
    host. *)

val run : Hmn_mapping.Problem.t -> (Hmn_mapping.Placement.t, Mapper.failure) result

val run_sharded :
  ?jobs:int ->
  Hmn_mapping.Problem.t ->
  (Hmn_mapping.Placement.t, Mapper.failure) result
(** Two-level hosting for racked clusters (fat-tree, Clos, switched):
    stage A replays the flat pass at rack granularity (each rack one
    aggregate pseudo-host), stage B solves every rack as an
    independent subproblem — fanned over a domain pool when [jobs > 1]
    (default {!Hmn_prelude.Domain_pool.default_jobs}) — and a serial
    repair pass re-places the guests whose rack could not actually fit
    them. The merge is canonical (ascending rack, then guest id), so
    the resulting placement is byte-identical for every [jobs] value.
    Falls back to {!run} when the cluster has no rack structure
    ([Cluster.racks] empty or a single rack) or when rack packing
    fails in aggregate. Keeps the flat pass's affinity property within
    racks: high-bandwidth virtual links still co-locate. *)

val sorted_vlinks : Hmn_mapping.Problem.t -> int array
(** Virtual-link ids in descending [vbw] order (ties by id) — exposed
    because the Networking stage and tests use the same ordering. *)
