module Mapping = Hmn_mapping.Mapping
module Trace = Hmn_obs.Trace

type stage_report = {
  hosting_s : float;
  migration_s : float;
  networking_s : float;
  migration_stats : Migration.stats option;
  networking_stats : Networking.stats option;
}

(* Each stage runs inside both a timing wrapper (always) and a trace
   span (one branch when tracing is off), so the flat stage_seconds list
   and the Chrome trace describe the same windows. *)
let staged name f = Trace.with_span ~cat:"stage" name (fun () -> Mapper.time f)

let run_stages ?max_moves ?(hosting = Hosting.run) ~migrate problem =
  let hosting_result, hosting_s = staged "hosting" (fun () -> hosting problem) in
  match hosting_result with
  | Error f ->
    ( {
        Mapper.result = Error f;
        elapsed_s = hosting_s;
        stage_seconds = [ ("hosting", hosting_s) ];
        tries = 1;
        last_failure = Some f;
      },
      {
        hosting_s;
        migration_s = 0.;
        networking_s = 0.;
        migration_stats = None;
        networking_stats = None;
      } )
  | Ok placement ->
    let migration_stats, migration_s =
      if migrate then
        let s, t = staged "migration" (fun () -> Migration.run ?max_moves placement) in
        (Some s, t)
      else (None, 0.)
    in
    let networking_result, networking_s =
      staged "networking" (fun () -> Networking.run placement)
    in
    let elapsed_s = hosting_s +. migration_s +. networking_s in
    let result, networking_stats =
      match networking_result with
      | Error f -> (Error f, None)
      | Ok (link_map, stats) ->
        (Ok (Mapping.make ~placement ~link_map), Some stats)
    in
    let stage_seconds =
      ("hosting", hosting_s)
      :: (if migrate then [ ("migration", migration_s) ] else [])
      @ ("networking", networking_s)
        :: (* sub-stage (already inside networking's window): where the
              landmark-table fill sits in the stage cost *)
           (match networking_stats with
           | Some s -> [ ("networking/precompute", s.Networking.precompute_s) ]
           | None -> [])
    in
    let last_failure = match result with Error f -> Some f | Ok _ -> None in
    ( { Mapper.result; elapsed_s; stage_seconds; tries = 1; last_failure },
      { hosting_s; migration_s; networking_s; migration_stats; networking_stats } )

let run_detailed problem = run_stages ~migrate:true problem
let run problem = fst (run_detailed problem)
let without_migration problem = fst (run_stages ~migrate:false problem)

let run_sharded_detailed ?jobs ?max_moves problem =
  run_stages ?max_moves ~hosting:(Hosting.run_sharded ?jobs) ~migrate:true problem

let mapper =
  {
    Mapper.name = "HMN";
    description = "Hosting-Migration-Networking heuristic (the paper's contribution)";
    run = (fun ~rng:_ problem -> run problem);
  }

let mapper_without_migration =
  {
    Mapper.name = "HN";
    description = "HMN ablation: Hosting + Networking, no Migration stage";
    run = (fun ~rng:_ problem -> without_migration problem);
  }
