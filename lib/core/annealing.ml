module Cluster = Hmn_testbed.Cluster
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Objective = Hmn_mapping.Objective
module Mapping = Hmn_mapping.Mapping

type params = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
}

let default_params = { iterations = 2000; initial_temperature = 200.; cooling = 0.998 }

let validate_params p =
  if p.iterations < 0 then invalid_arg "Annealing: negative iterations";
  if p.initial_temperature <= 0. then invalid_arg "Annealing: non-positive temperature";
  if p.cooling <= 0. || p.cooling >= 1. then
    invalid_arg "Annealing: cooling must be in (0, 1)"

let anneal ?(params = default_params) ~rng placement =
  validate_params params;
  if not (Placement.all_assigned placement) then
    invalid_arg "Annealing.anneal: placement is incomplete";
  let problem = Placement.problem placement in
  let hosts = Cluster.host_ids problem.Problem.cluster in
  let n_guests = Hmn_vnet.Virtual_env.n_guests problem.Problem.venv in
  let current = ref (Objective.load_balance_factor placement) in
  let best_energy = ref !current in
  let best_state = ref (Placement.copy placement) in
  let temperature = ref params.initial_temperature in
  let accepted = ref 0 in
  for _ = 1 to params.iterations do
    let guest = Hmn_rng.Rng.int rng ~bound:n_guests in
    let host = hosts.(Hmn_rng.Rng.int rng ~bound:(Array.length hosts)) in
    (match Objective.load_balance_after_migration placement ~guest ~host with
    | None -> ()
    | Some candidate ->
      let delta = candidate -. !current in
      let accept =
        delta <= 0. || Hmn_rng.Rng.float rng < exp (-.delta /. !temperature)
      in
      if accept then begin
        match Placement.migrate placement ~guest ~host with
        | Ok () ->
          incr accepted;
          current := candidate;
          if candidate < !best_energy then begin
            best_energy := candidate;
            best_state := Placement.copy placement
          end
        | Error _ -> ()
      end);
    temperature := !temperature *. params.cooling
  done;
  (* Restore the best state seen: move every guest to its recorded
     host. Going via unassign-all avoids transient capacity conflicts. *)
  if !best_energy < !current -. 1e-12 then begin
    for guest = 0 to n_guests - 1 do
      ignore (Placement.unassign placement ~guest)
    done;
    for guest = 0 to n_guests - 1 do
      let host = Placement.host_of_exn !best_state ~guest in
      match Placement.assign placement ~guest ~host with
      | Ok () -> ()
      | Error msg -> failwith ("Annealing.anneal: restore failed: " ^ msg)
    done
  end;
  !accepted

let mapper ?(params = default_params) () =
  {
    Mapper.name = "SA";
    description = "simulated-annealing placement + A*Prune networking";
    run =
      (fun ~rng problem ->
        let run_once () =
          match Hosting.run problem with
          | Error f -> Error f
          | Ok placement -> (
            ignore (anneal ~params ~rng placement);
            match Networking.run placement with
            | Error f -> Error f
            | Ok (link_map, _) -> Ok (Mapping.make ~placement ~link_map))
        in
        let result, elapsed_s = Mapper.time run_once in
        Mapper.single_try ~result ~elapsed_s);
  }
