module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Domain_pool = Hmn_prelude.Domain_pool
module Metrics = Hmn_obs.Metrics

let sorted_vlinks (problem : Problem.t) =
  let venv = problem.Problem.venv in
  let links = Array.init (Virtual_env.n_vlinks venv) Fun.id in
  Hmn_prelude.Array_ext.sort_by_desc
    (fun eid -> (Virtual_env.vlink venv eid).Hmn_vnet.Vlink.bandwidth_mbps)
    links;
  links

let run (problem : Problem.t) =
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let placement = Placement.create problem in
  (* Host list in descending available-CPU order, re-sorted after every
     assignment (hosts are few; the paper re-sorts likewise). *)
  let hosts = Array.copy (Cluster.host_ids cluster) in
  let resort () =
    Hmn_prelude.Array_ext.sort_by_desc
      (fun h -> Placement.residual_cpu placement ~host:h)
      hosts
  in
  resort ();
  let exception Hosting_failed of int option * string in
  let assign guest host =
    match Placement.assign placement ~guest ~host with
    | Ok () -> resort ()
    | Error msg -> raise (Hosting_failed (Some guest, msg))
  in
  let first_fitting ?(from = 0) guest =
    let n = Array.length hosts in
    let rec scan k =
      if k >= n then None
      else begin
        let host = hosts.((from + k) mod n) in
        if Placement.fits placement ~guest ~host then Some ((from + k) mod n)
        else scan (k + 1)
      end
    in
    scan 0
  in
  let assign_first_fitting ?from guest =
    match first_fitting ?from guest with
    | Some idx ->
      let host = hosts.(idx) in
      assign guest host;
      host
    | None ->
      raise
        (Hosting_failed (Some guest, Printf.sprintf "no host can receive guest %d" guest))
  in
  let both_fit_first_host a b =
    let host = hosts.(0) in
    let d = Resources.add (Virtual_env.demand venv a) (Virtual_env.demand venv b) in
    Cluster.is_host cluster host
    && Resources.fits_mem_stor ~demand:d ~avail:(Placement.residual placement ~host)
  in
  let place_link vs vd =
    match (Placement.host_of placement ~guest:vs, Placement.host_of placement ~guest:vd)
    with
    | Some _, Some _ -> ()
    | None, None ->
      if both_fit_first_host vs vd then begin
        let host = hosts.(0) in
        assign vs host;
        assign vd host
      end
      else begin
        (* Most CPU-intensive guest first. *)
        let cpu g = (Virtual_env.demand venv g).Resources.mips in
        let first, second = if cpu vs >= cpu vd then (vs, vd) else (vd, vs) in
        let idx =
          match first_fitting first with
          | Some idx -> idx
          | None ->
            raise
              (Hosting_failed
                 (Some first, Printf.sprintf "no host can receive guest %d" first))
        in
        let host_first = hosts.(idx) in
        assign first host_first;
        (* The sort may have moved hosts; scan for the second guest
           starting just below the first guest's current position. *)
        let pos =
          match Hmn_prelude.Array_ext.find_index_opt (Int.equal host_first) hosts with
          | Some p -> p
          | None -> 0
        in
        ignore (assign_first_fitting ~from:(pos + 1) second)
      end
    | Some host, None | None, Some host ->
      let unplaced = if Placement.is_assigned placement ~guest:vs then vd else vs in
      if Placement.fits placement ~guest:unplaced ~host then assign unplaced host
      else ignore (assign_first_fitting unplaced)
  in
  try
    Array.iter
      (fun eid ->
        let vs, vd = Virtual_env.endpoints venv eid in
        place_link vs vd)
      (sorted_vlinks problem);
    (* Isolated guests (no incident virtual links). *)
    for guest = 0 to Virtual_env.n_guests venv - 1 do
      if not (Placement.is_assigned placement ~guest) then
        ignore (assign_first_fitting guest)
    done;
    Ok placement
  with Hosting_failed (guest, reason) ->
    Error
      (match guest with
      | Some guest ->
        Mapper.fail_detail ~detail:(Mapper.Unplaceable_guest { guest })
          ~stage:"hosting" ~reason
      | None -> Mapper.fail ~stage:"hosting" ~reason)

(* ---- Hierarchical (sharded) hosting ---- *)

(* Stage A: pack guests onto racks. The flat pass replayed with every
   rack abstracted as one big host (aggregate residual resources, rack
   list re-sorted by descending aggregate CPU after each assignment).
   Aggregate feasibility does not imply per-host feasibility — stage B
   surfaces such stragglers as leftovers and the serial repair pass
   re-places them — but it holds for the vast majority of guests,
   which is what keeps the per-rack subproblems independent. Returns
   [None] when some guest fits no rack even in aggregate; the caller
   then falls back to the flat pass for the exact failure message. *)
let pack_racks (problem : Problem.t) sorted =
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let racks = Cluster.racks cluster in
  let n_racks = Array.length racks in
  (* Aggregate rack feasibility overestimates what per-host bin packing
     inside the rack can realise: first-fit strands about half a mean
     guest demand of slack on every host. Derate each rack by one mean
     demand per host so stage B receives loads it can actually pack;
     without this, ~8% of the guests of a well-utilised instance come
     back as leftovers and the repair pass cannot absorb them. *)
  let n_guests = Virtual_env.n_guests venv in
  let mean_demand =
    if n_guests = 0 then Resources.zero
    else Resources.scale (1. /. float_of_int n_guests) (Virtual_env.total_demand venv)
  in
  let residual =
    Array.map
      (fun members ->
        let cap =
          Array.fold_left
            (fun acc h -> Resources.add acc (Cluster.capacity cluster h))
            Resources.zero members
        in
        Resources.sub cap
          (Resources.scale (float_of_int (Array.length members)) mean_demand))
      racks
  in
  let order = Array.init n_racks Fun.id in
  let resort () =
    Hmn_prelude.Array_ext.sort_by_desc
      (fun r -> residual.(r).Resources.mips)
      order
  in
  resort ();
  let rack_of_guest = Array.make (Virtual_env.n_guests venv) (-1) in
  let exception Pack_failed in
  let assign guest rack =
    rack_of_guest.(guest) <- rack;
    residual.(rack) <- Resources.sub residual.(rack) (Virtual_env.demand venv guest);
    resort ()
  in
  let fits guest rack =
    Resources.fits_mem_stor
      ~demand:(Virtual_env.demand venv guest)
      ~avail:residual.(rack)
  in
  let first_fitting ?(from = 0) guest =
    let rec scan k =
      if k >= n_racks then raise Pack_failed
      else
        let idx = (from + k) mod n_racks in
        if fits guest order.(idx) then idx else scan (k + 1)
    in
    scan 0
  in
  let assign_first_fitting ?from guest =
    let idx = first_fitting ?from guest in
    let rack = order.(idx) in
    assign guest rack;
    rack
  in
  let place_link vs vd =
    match (rack_of_guest.(vs) >= 0, rack_of_guest.(vd) >= 0) with
    | true, true -> ()
    | false, false ->
      let top = order.(0) in
      let d =
        Resources.add (Virtual_env.demand venv vs) (Virtual_env.demand venv vd)
      in
      if Resources.fits_mem_stor ~demand:d ~avail:residual.(top) then begin
        assign vs top;
        assign vd top
      end
      else begin
        let cpu g = (Virtual_env.demand venv g).Resources.mips in
        let first, second = if cpu vs >= cpu vd then (vs, vd) else (vd, vs) in
        let rack_first = assign_first_fitting first in
        let pos =
          match
            Hmn_prelude.Array_ext.find_index_opt (Int.equal rack_first) order
          with
          | Some p -> p
          | None -> 0
        in
        ignore (assign_first_fitting ~from:(pos + 1) second)
      end
    | true, false | false, true ->
      let placed, unplaced =
        if rack_of_guest.(vs) >= 0 then (vs, vd) else (vd, vs)
      in
      let rack = rack_of_guest.(placed) in
      if fits unplaced rack then assign unplaced rack
      else ignore (assign_first_fitting unplaced)
  in
  match
    Array.iter
      (fun eid ->
        let vs, vd = Virtual_env.endpoints venv eid in
        place_link vs vd)
      sorted;
    for guest = 0 to Virtual_env.n_guests venv - 1 do
      if rack_of_guest.(guest) < 0 then ignore (assign_first_fitting guest)
    done
  with
  | () -> Some rack_of_guest
  | exception Pack_failed -> None

(* Stage B: one rack as an independent flat subproblem. Pure — fresh
   private placement, read-only problem/sorted/rack_of_guest — so rack
   tasks fan out over the domain pool without changing the result.
   Intra-rack virtual links are processed in the global descending-
   bandwidth order; guests that fit no host of their rack come back as
   leftovers instead of failing the stage. *)
let solve_rack (problem : Problem.t) ~sorted ~rack_of_guest ~rack ~members =
  let venv = problem.Problem.venv in
  let placement = Placement.create problem in
  let hosts = Array.copy members in
  let resort () =
    Hmn_prelude.Array_ext.sort_by_desc
      (fun h -> Placement.residual_cpu placement ~host:h)
      hosts
  in
  resort ();
  let leftovers = ref [] in
  let given_up = Hashtbl.create 8 in
  let give_up guest =
    if not (Hashtbl.mem given_up guest) then begin
      Hashtbl.add given_up guest ();
      leftovers := guest :: !leftovers
    end
  in
  let alive guest = not (Hashtbl.mem given_up guest) in
  let assign guest host =
    match Placement.assign placement ~guest ~host with
    | Ok () -> resort ()
    | Error _ -> give_up guest
  in
  let first_fitting ?(from = 0) guest =
    let n = Array.length hosts in
    let rec scan k =
      if k >= n then None
      else
        let idx = (from + k) mod n in
        if Placement.fits placement ~guest ~host:hosts.(idx) then Some idx
        else scan (k + 1)
    in
    scan 0
  in
  let ensure guest =
    if alive guest && not (Placement.is_assigned placement ~guest) then
      match first_fitting guest with
      | Some idx -> assign guest hosts.(idx)
      | None -> give_up guest
  in
  let place_link vs vd =
    match
      (Placement.host_of placement ~guest:vs, Placement.host_of placement ~guest:vd)
    with
    | Some _, Some _ -> ()
    | None, None when alive vs && alive vd ->
      let d =
        Resources.add (Virtual_env.demand venv vs) (Virtual_env.demand venv vd)
      in
      let top = hosts.(0) in
      if
        Resources.fits_mem_stor ~demand:d
          ~avail:(Placement.residual placement ~host:top)
      then begin
        assign vs top;
        assign vd top
      end
      else begin
        let cpu g = (Virtual_env.demand venv g).Resources.mips in
        let first, second = if cpu vs >= cpu vd then (vs, vd) else (vd, vs) in
        match first_fitting first with
        | None ->
          give_up first;
          ensure second
        | Some idx ->
          let host_first = hosts.(idx) in
          assign first host_first;
          let pos =
            match
              Hmn_prelude.Array_ext.find_index_opt (Int.equal host_first) hosts
            with
            | Some p -> p
            | None -> 0
          in
          (match first_fitting ~from:(pos + 1) second with
          | Some j -> assign second hosts.(j)
          | None -> give_up second)
      end
    | Some host, None | None, Some host ->
      let unplaced =
        if Placement.is_assigned placement ~guest:vs then vd else vs
      in
      if alive unplaced then
        if Placement.fits placement ~guest:unplaced ~host then
          assign unplaced host
        else ensure unplaced
    | None, None ->
      ensure vs;
      ensure vd
  in
  Array.iter
    (fun eid ->
      let vs, vd = Virtual_env.endpoints venv eid in
      if rack_of_guest.(vs) = rack && rack_of_guest.(vd) = rack then
        place_link vs vd)
    sorted;
  for guest = 0 to Virtual_env.n_guests venv - 1 do
    if rack_of_guest.(guest) = rack then ensure guest
  done;
  let assignments = ref [] in
  Placement.iter_assigned placement (fun ~guest ~host ->
      assignments := (guest, host) :: !assignments);
  (* iter_assigned runs in ascending guest order, so the reversal is
     ascending again — the canonical order the merge relies on. *)
  (List.rev !assignments, List.sort Int.compare !leftovers)

let run_sharded ?jobs (problem : Problem.t) =
  let cluster = problem.Problem.cluster in
  let racks = Cluster.racks cluster in
  let n_racks = Array.length racks in
  if n_racks <= 1 then run problem
  else begin
    let sorted = sorted_vlinks problem in
    match pack_racks problem sorted with
    | None -> run problem
    | Some rack_of_guest ->
      let solve rack =
        solve_rack problem ~sorted ~rack_of_guest ~rack ~members:racks.(rack)
      in
      let rack_ids = Array.init n_racks Fun.id in
      let jobs =
        match jobs with Some j -> j | None -> Domain_pool.default_jobs ()
      in
      let solved =
        if jobs <= 1 then Array.map solve rack_ids
        else
          Domain_pool.with_pool ~jobs (fun pool ->
              Domain_pool.map_array pool solve rack_ids)
      in
      (* Canonical merge: racks in ascending id, assignments in
         ascending guest id — independent of how the pool interleaved
         the tasks, so the result is byte-identical for any [jobs]. *)
      let placement = Placement.create problem in
      let repair = ref [] in
      Array.iter
        (fun (assignments, leftovers) ->
          List.iter
            (fun (guest, host) ->
              match Placement.assign placement ~guest ~host with
              | Ok () -> ()
              | Error _ -> repair := guest :: !repair)
            assignments;
          List.iter (fun g -> repair := g :: !repair) leftovers)
        solved;
      let repair = List.sort_uniq Int.compare !repair in
      if Metrics.enabled () then begin
        Metrics.Counter.incr (Metrics.counter "hosting.sharded.runs");
        Metrics.Counter.add
          (Metrics.counter "hosting.sharded.repaired")
          (List.length repair)
      end;
      (* Serial repair pass over the merged placement for rack
         leftovers: ascending guest id, same descending-residual-CPU
         host discipline as the flat pass. Only here can the sharded
         mode still fail. *)
      let hosts = Array.copy (Cluster.host_ids cluster) in
      let resort () =
        Hmn_prelude.Array_ext.sort_by_desc
          (fun h -> Placement.residual_cpu placement ~host:h)
          hosts
      in
      resort ();
      let rec place_all = function
        | [] -> Ok placement
        | guest :: rest -> (
          match
            Hmn_prelude.Array_ext.find_index_opt
              (fun h -> Placement.fits placement ~guest ~host:h)
              hosts
          with
          | Some idx -> (
            match Placement.assign placement ~guest ~host:hosts.(idx) with
            | Ok () ->
              resort ();
              place_all rest
            | Error msg -> Error (Mapper.fail ~stage:"hosting" ~reason:msg))
          | None ->
            Error
              (Mapper.fail_detail ~detail:(Mapper.Unplaceable_guest { guest })
                 ~stage:"hosting"
                 ~reason:
                   (Printf.sprintf "no host can receive guest %d (repair)" guest)))
      in
      place_all repair
  end
