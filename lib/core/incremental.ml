module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Link_map = Hmn_mapping.Link_map
module Mapping = Hmn_mapping.Mapping
module Objective = Hmn_mapping.Objective
module Path = Hmn_routing.Path

type t = {
  mapping : Mapping.t;
  latency_tables : Hmn_routing.Latency_table.t;
}

let create ?latency_tables mapping =
  (match Hmn_mapping.Constraints.check mapping with
  | [] -> ()
  | v :: _ ->
    invalid_arg
      (Format.asprintf "Incremental.create: mapping is invalid: %a"
         Hmn_mapping.Constraints.pp_violation v));
  {
    mapping;
    latency_tables =
      (match latency_tables with
      | Some tables -> tables
      | None ->
        Hmn_routing.Latency_table.create (Mapping.problem mapping).Problem.cluster);
  }

let mapping t = t.mapping

(* The virtual links incident to [guest], with their current paths. *)
let incident_links t guest =
  let venv = (Mapping.problem t.mapping).Problem.venv in
  Graph.fold_adj (Virtual_env.graph venv) guest ~init:[]
    ~f:(fun acc ~neighbor ~eid ->
      (eid, neighbor, Link_map.path_of t.mapping.Mapping.link_map ~vlink:eid) :: acc)

let route_link t ~vlink ~src ~dst =
  let venv = (Mapping.problem t.mapping).Problem.venv in
  let spec = Virtual_env.vlink venv vlink in
  if src = dst then Some (Path.trivial src)
  else
    Hmn_routing.Astar_prune.widest_feasible
      ~residual:(Link_map.residual t.mapping.Mapping.link_map)
      ~latency_tables:t.latency_tables ~src ~dst
      ~bandwidth_mbps:spec.Hmn_vnet.Vlink.bandwidth_mbps
      ~latency_ms:spec.Hmn_vnet.Vlink.latency_ms ()

let move_guest t ~guest ~host =
  let placement = t.mapping.Mapping.placement in
  let link_map = t.mapping.Mapping.link_map in
  match Placement.host_of placement ~guest with
  | None -> Error (Printf.sprintf "guest %d is not placed" guest)
  | Some old_host when old_host = host -> Ok ()
  | Some old_host ->
    let links = incident_links t guest in
    (* Tear down the old paths first so their bandwidth is reusable,
       remembering them for rollback. *)
    List.iter
      (fun (vlink, _, path) ->
        match path with
        | Some _ -> (
          match Link_map.unassign link_map ~vlink with
          | Ok () -> ()
          | Error msg -> failwith ("Incremental.move_guest: " ^ msg))
        | None -> ())
      links;
    let restore_links () =
      List.iter
        (fun (vlink, _, path) ->
          match path with
          | Some p -> (
            match Link_map.assign link_map ~vlink p with
            | Ok () -> ()
            | Error msg -> failwith ("Incremental.move_guest: rollback: " ^ msg))
          | None -> ())
        links
    in
    (match Placement.migrate placement ~guest ~host with
    | Error msg ->
      restore_links ();
      Error msg
    | Ok () ->
      (* Re-route each affected link, keeping the paper's orientation:
         a path runs from the host of the link's first endpoint to the
         host of its second (Eq. 4). *)
      let venv = (Mapping.problem t.mapping).Problem.venv in
      let rec reroute done_links = function
        | [] -> Ok ()
        | (vlink, _neighbor, _) :: rest -> (
          let vs, vd = Virtual_env.endpoints venv vlink in
          let src = Placement.host_of_exn placement ~guest:vs in
          let dst = Placement.host_of_exn placement ~guest:vd in
          match route_link t ~vlink ~src ~dst with
          | Some path -> (
            match Link_map.assign link_map ~vlink path with
            | Ok () -> reroute (vlink :: done_links) rest
            | Error msg -> Error (done_links, msg))
          | None ->
            Error
              ( done_links,
                Printf.sprintf "no feasible path for virtual link %d after the move"
                  vlink ))
      in
      (match reroute [] links with
      | Ok () -> Ok ()
      | Error (done_links, msg) ->
        (* Unwind the new paths, move back, restore the old paths. *)
        List.iter
          (fun vlink ->
            match Link_map.unassign link_map ~vlink with
            | Ok () -> ()
            | Error m -> failwith ("Incremental.move_guest: rollback: " ^ m))
          done_links;
        (match Placement.migrate placement ~guest ~host:old_host with
        | Ok () -> ()
        | Error m -> failwith ("Incremental.move_guest: rollback migrate: " ^ m));
        restore_links ();
        Error msg))

let evacuate_host ?(rollback = true) t ~host =
  let placement = t.mapping.Mapping.placement in
  let link_map = t.mapping.Mapping.link_map in
  let cluster = (Mapping.problem t.mapping).Problem.cluster in
  let hosts = Cluster.host_ids cluster in
  let moved = ref 0 in
  (* Undo log for [rollback]: each entry is a guest that left [host]
     together with its incident (vlink, path) snapshot taken just before
     its move, most recent move first. Unwinding in LIFO order replays
     the exact inverse state transitions, so every intermediate restore
     is guaranteed to fit (each state was valid when first visited). *)
  let undo = ref [] in
  let unwind () =
    List.iter
      (fun (guest, old_links) ->
        List.iter
          (fun (vlink, _, _) ->
            match Link_map.path_of link_map ~vlink with
            | Some _ -> (
              match Link_map.unassign link_map ~vlink with
              | Ok () -> ()
              | Error m -> failwith ("Incremental.evacuate_host: rollback: " ^ m))
            | None -> ())
          old_links;
        (match Placement.migrate placement ~guest ~host with
        | Ok () -> ()
        | Error m ->
          failwith ("Incremental.evacuate_host: rollback migrate: " ^ m));
        List.iter
          (fun (vlink, _, path) ->
            match path with
            | Some p -> (
              match Link_map.assign link_map ~vlink p with
              | Ok () -> ()
              | Error m -> failwith ("Incremental.evacuate_host: rollback: " ^ m))
            | None -> ())
          old_links)
      !undo
  in
  let rec drain () =
    match Placement.guests_on placement ~host with
    | [] -> Ok !moved
    | guest :: _ ->
      (* Candidate targets ordered by the LBF the move would yield. *)
      let candidates =
        List.filter_map
          (fun h ->
            if h = host then None
            else
              Option.map
                (fun lbf -> (lbf, h))
                (Objective.load_balance_after_migration placement ~guest ~host:h))
          (Array.to_list hosts)
      in
      let ordered =
        List.map snd (List.sort (fun (a, _) (b, _) -> Float.compare a b) candidates)
      in
      let rec try_targets = function
        | [] ->
          Error
            (Printf.sprintf
               "guest %d cannot leave host %d: no target accepts it with its links"
               guest host)
        | target :: rest -> (
          let before = incident_links t guest in
          match move_guest t ~guest ~host:target with
          | Ok () ->
            undo := (guest, before) :: !undo;
            incr moved;
            Ok ()
          | Error _ -> try_targets rest)
      in
      (match try_targets ordered with Ok () -> drain () | Error e -> Error e)
  in
  match drain () with
  | Ok n -> Ok n
  | Error e when rollback ->
    unwind ();
    Error (e ^ Printf.sprintf "; rolled back the %d guest(s) already moved" !moved)
  | Error e -> Error e

let rebalance ?max_moves t =
  let placement = t.mapping.Mapping.placement in
  let problem = Mapping.problem t.mapping in
  let cluster = problem.Problem.cluster in
  let hosts = Cluster.host_ids cluster in
  let n_guests = Virtual_env.n_guests problem.Problem.venv in
  let max_moves = Option.value max_moves ~default:(4 * n_guests) in
  let moves = ref 0 in
  let try_round () =
    let current = Objective.load_balance_factor placement in
    (* Most loaded host that still has guests. *)
    let origin = ref None in
    Array.iter
      (fun h ->
        if Placement.n_guests_on placement ~host:h > 0 then begin
          let cpu = Placement.residual_cpu placement ~host:h in
          match !origin with
          | Some (_, best) when best <= cpu -> ()
          | _ -> origin := Some (h, cpu)
        end)
      hosts;
    match !origin with
    | None -> false
    | Some (origin, _) -> (
      match Placement.guests_on placement ~host:origin with
      | [] -> false
      | guests ->
        let victim =
          Hmn_prelude.List_ext.min_by
            (fun g -> Migration.colocated_bandwidth placement ~guest:g)
            guests
        in
        let targets =
          List.filter (fun h -> h <> origin) (Array.to_list hosts)
          |> Hmn_prelude.List_ext.sort_by_desc (fun h ->
                 Placement.residual_cpu placement ~host:h)
        in
        let rec attempt = function
          | [] -> false
          | target :: rest -> (
            match
              Objective.load_balance_after_migration placement ~guest:victim
                ~host:target
            with
            | Some lbf when lbf < current -. 1e-9 -> (
              match move_guest t ~guest:victim ~host:target with
              | Ok () ->
                incr moves;
                true
              | Error _ -> attempt rest)
            | _ -> attempt rest)
        in
        attempt targets)
  in
  let rec loop () = if !moves < max_moves && try_round () then loop () in
  loop ();
  !moves
