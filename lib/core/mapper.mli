(** The common interface every mapping heuristic implements: the four
    algorithms of the paper's evaluation (HMN, R, RA, HS) and the
    extension heuristics, uniformly runnable by the experiment
    harness. *)

(** Structured identification of {e what} a failed stage could not do,
    attached by the stages that know it (hosting-style placement and
    routing). The online admission journal and the validator's
    independent rejection-cause re-check both key off this — the
    human-readable [reason] string stays purely diagnostic. *)
type failure_detail =
  | Unplaceable_guest of { guest : int }
  | Unroutable_vlink of {
      vlink : int;
      src_host : int;  (** physical host of the vlink's source guest *)
      dst_host : int;
      bandwidth_mbps : float;
      latency_ms : float;  (** the vlink's latency bound *)
    }

type failure = {
  stage : string;  (** which stage gave up, e.g. ["hosting"] *)
  reason : string;
  detail : failure_detail option;
}

type outcome = {
  result : (Hmn_mapping.Mapping.t, failure) result;
  elapsed_s : float;  (** wall-clock of the whole mapping attempt *)
  stage_seconds : (string * float) list;
      (** per-stage wall time, in execution order *)
  tries : int;  (** attempts consumed by retrying mappers; 1 otherwise *)
  last_failure : failure option;
      (** the most recent failed try, also kept when a retrying mapper
          eventually succeeded — equal to the [Error] payload when
          [result] is an error, [None] only when no try ever failed *)
}

type t = {
  name : string;  (** short id used in tables, e.g. ["HMN"] *)
  description : string;
  run : rng:Hmn_rng.Rng.t -> Hmn_mapping.Problem.t -> outcome;
      (** deterministic mappers ignore [rng] *)
}

val fail : stage:string -> reason:string -> failure
(** [detail = None]. *)

val fail_detail :
  detail:failure_detail -> stage:string -> reason:string -> failure

val single_try :
  result:(Hmn_mapping.Mapping.t, failure) result -> elapsed_s:float -> outcome
(** Outcome of a mapper that runs exactly once: no stage breakdown,
    [tries = 1], [last_failure] derived from [result]. *)

val time : (unit -> 'a) -> 'a * float
(** Runs the thunk and returns its result with the seconds it took, on
    the monotonic clock ({!Hmn_prelude.Clock}). *)

val pp_outcome : Format.formatter -> outcome -> unit
