module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Mapping = Hmn_mapping.Mapping

type strategy = First_fit | Best_fit | Worst_fit | Consolidate

let strategy_name = function
  | First_fit -> "FFD"
  | Best_fit -> "BFD"
  | Worst_fit -> "WFD"
  | Consolidate -> "CONS"

let choose_host strategy placement hosts guest =
  let feasible =
    List.filter
      (fun h -> Placement.fits placement ~guest ~host:h)
      (Array.to_list hosts)
  in
  match feasible with
  | [] -> None
  | _ :: _ -> (
    match strategy with
    | First_fit -> Some (List.hd feasible)
    | Best_fit ->
      Some
        (Hmn_prelude.List_ext.min_by
           (fun h -> (Placement.residual placement ~host:h).Resources.mem_mb)
           feasible)
    | Worst_fit ->
      Some
        (Hmn_prelude.List_ext.max_by
           (fun h -> Placement.residual_cpu placement ~host:h)
           feasible)
    | Consolidate -> (
      match
        List.filter (fun h -> Placement.n_guests_on placement ~host:h > 0) feasible
      with
      | h :: _ -> Some h
      | [] -> Some (List.hd feasible)))

let place strategy (problem : Problem.t) =
  let placement = Placement.create problem in
  let hosts = Cluster.host_ids problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let order = Array.init (Virtual_env.n_guests venv) Fun.id in
  Hmn_prelude.Array_ext.sort_by_desc
    (fun g -> (Virtual_env.demand venv g).Resources.mips)
    order;
  let exception Stuck of int in
  try
    Array.iter
      (fun guest ->
        match choose_host strategy placement hosts guest with
        | None -> raise (Stuck guest)
        | Some host -> (
          match Placement.assign placement ~guest ~host with
          | Ok () -> ()
          | Error msg -> failwith ("Packing.place: " ^ msg)))
      order;
    Ok placement
  with Stuck guest ->
    Error
      (Mapper.fail
         ~stage:(strategy_name strategy ^ "-placement")
         ~reason:(Printf.sprintf "no host fits guest %d" guest))

let to_mapper strategy =
  {
    Mapper.name = strategy_name strategy;
    description =
      (match strategy with
      | First_fit -> "first-fit-decreasing placement + A*Prune networking"
      | Best_fit -> "best-fit-decreasing placement + A*Prune networking"
      | Worst_fit -> "worst-fit-decreasing placement + A*Prune networking"
      | Consolidate -> "consolidating placement (fewest hosts) + A*Prune networking");
    run =
      (fun ~rng:_ problem ->
        let run_once () =
          match place strategy problem with
          | Error _ as e -> e
          | Ok placement -> (
            match Networking.run placement with
            | Error f -> Error f
            | Ok (link_map, _) -> Ok (Mapping.make ~placement ~link_map))
        in
        let result, elapsed_s = Mapper.time run_once in
        Mapper.single_try ~result ~elapsed_s);
  }
