(** Incremental operations on a live mapping.

    The paper's context is a fully-automated emulation testbed: once an
    environment is deployed, testers reconfigure it — a host is drained
    for maintenance, a hot spot is rebalanced — without tearing down
    every guest. These operations mutate a complete, valid mapping
    while preserving validity: every move re-routes the affected
    virtual links and rolls the whole operation back if any of them
    cannot be re-routed.

    A handle caches the Dijkstra latency tables across operations. *)

type t

val create : ?latency_tables:Hmn_routing.Latency_table.t -> Hmn_mapping.Mapping.t -> t
(** Wraps a mapping. The mapping must be complete and valid
    ({!Hmn_mapping.Constraints.check} returns []); raises
    [Invalid_argument] otherwise. The handle owns the mapping: mutating
    it elsewhere voids the guarantees.

    [latency_tables] shares a precomputed Dijkstra cache instead of
    building a fresh one; it must have been built on a cluster with the
    same graph structure and link latencies (bandwidths are free to
    differ — the tables only read latencies). The online service passes
    the full cluster's tables when it replays tenants onto residual
    clusters, whose latencies are identical by construction. *)

val mapping : t -> Hmn_mapping.Mapping.t

val move_guest : t -> guest:int -> host:int -> (unit, string) result
(** Migrates one guest and re-routes its inter-host virtual links with
    A\*Prune. On any failure (target does not fit, or some link cannot
    be re-routed) the mapping is restored exactly and an explanation
    returned. *)

val evacuate_host : ?rollback:bool -> t -> host:int -> (int, string) result
(** Drains a host for maintenance: moves every resident guest to the
    feasible host currently yielding the best (lowest)
    post-move load-balance factor. Returns the number of guests moved.

    On failure (some guest cannot leave — the error names it), the
    default [rollback:true] unwinds the moves already made in LIFO
    order, restoring every migrated guest to [host] {e with its original
    link paths}, so a failed drain leaves the mapping exactly as found.
    With [~rollback:false] the guests moved so far remain moved (the old
    partial-drain semantics, useful when any progress towards an empty
    host is welcome). *)

val rebalance : ?max_moves:int -> t -> int
(** The Migration stage on a live mapping: repeatedly moves the
    cheapest-to-move guest off the most loaded host while the
    load-balance factor improves {e and} the move's links can be
    re-routed. Returns the number of moves (default cap: 4 × guests). *)
