(** The Hosting–Migration–Networking heuristic (paper §4): the three
    stages run in sequence.

    Deterministic: the supplied random source is ignored. *)

type stage_report = {
  hosting_s : float;
  migration_s : float;
  networking_s : float;
  migration_stats : Migration.stats option;  (** [None] when Hosting failed *)
  networking_stats : Networking.stats option;
}

val run : Hmn_mapping.Problem.t -> Mapper.outcome
val run_detailed : Hmn_mapping.Problem.t -> Mapper.outcome * stage_report

val run_sharded_detailed :
  ?jobs:int ->
  ?max_moves:int ->
  Hmn_mapping.Problem.t ->
  Mapper.outcome * stage_report
(** The scale pipeline: {!Hosting.run_sharded} (two-level, rack
    parallel) in place of the flat Hosting stage, then Migration —
    cappable via [max_moves], which large clusters set well below the
    [16 * guests] default — then Networking. Deterministic for every
    [jobs] value; identical to {!run_detailed} on clusters without
    rack structure (modulo the migration cap). *)

val without_migration : Hmn_mapping.Problem.t -> Mapper.outcome
(** Ablation: Hosting directly followed by Networking. Used by the
    benches to quantify what the Migration stage buys. *)

val mapper : Mapper.t
(** ["HMN"]. *)

val mapper_without_migration : Mapper.t
(** ["HN"] — the ablated variant. *)
