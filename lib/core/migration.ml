module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Objective = Hmn_mapping.Objective

type stats = {
  moves : int;
  lbf_before : float;
  lbf_after : float;
}

(* Strict-improvement threshold: protects termination against
   floating-point noise in the stddev computation. *)
let improvement_eps = 1e-9

let colocated_bandwidth placement ~guest =
  let problem = Placement.problem placement in
  let venv = problem.Problem.venv in
  match Placement.host_of placement ~guest with
  | None -> 0.
  | Some host ->
    Graph.fold_adj (Virtual_env.graph venv) guest ~init:0.
      ~f:(fun acc ~neighbor ~eid ->
        if Placement.host_of placement ~guest:neighbor = Some host then
          acc +. (Virtual_env.vlink venv eid).Hmn_vnet.Vlink.bandwidth_mbps
        else acc)

let most_loaded_host_with_guests placement hosts =
  let best = ref None in
  Array.iter
    (fun h ->
      if Placement.n_guests_on placement ~host:h > 0 then begin
        let cpu = Placement.residual_cpu placement ~host:h in
        match !best with
        | Some (_, best_cpu) when best_cpu <= cpu -> ()
        | _ -> best := Some (h, cpu)
      end)
    hosts;
  Option.map fst !best

let pick_victim placement ~host =
  match Placement.guests_on placement ~host with
  | [] -> None
  | guests -> Some (Hmn_prelude.List_ext.min_by (fun g -> colocated_bandwidth placement ~guest:g) guests)

let run ?max_moves placement =
  let problem = Placement.problem placement in
  let cluster = problem.Problem.cluster in
  let hosts = Cluster.host_ids cluster in
  let n_guests = Virtual_env.n_guests problem.Problem.venv in
  let max_moves = Option.value max_moves ~default:(16 * n_guests) in
  let lbf_before = Objective.load_balance_factor placement in
  let moves = ref 0 and tried = ref 0 in
  let try_round () =
    let current = Objective.load_balance_factor placement in
    match most_loaded_host_with_guests placement hosts with
    | None -> false
    | Some origin -> (
      match pick_victim placement ~host:origin with
      | None -> false
      | Some guest ->
        (* Targets from least loaded (largest residual CPU) upward. *)
        let targets =
          Array.of_list
            (List.filter (fun h -> h <> origin) (Array.to_list hosts))
        in
        Hmn_prelude.Array_ext.sort_by_desc
          (fun h -> Placement.residual_cpu placement ~host:h)
          targets;
        let moved = ref false and i = ref 0 in
        while (not !moved) && !i < Array.length targets do
          let target = targets.(!i) in
          incr i;
          incr tried;
          match Objective.load_balance_after_migration placement ~guest ~host:target with
          | Some lbf' when lbf' < current -. improvement_eps -> (
            match Placement.migrate placement ~guest ~host:target with
            | Ok () ->
              moved := true;
              incr moves
            | Error _ -> ())
          | Some _ | None -> ()
        done;
        !moved)
  in
  let rec loop () = if !moves < max_moves && try_round () then loop () in
  loop ();
  let module Metrics = Hmn_obs.Metrics in
  if Metrics.enabled () then begin
    Metrics.Counter.add (Metrics.counter "migration.moves_tried") !tried;
    Metrics.Counter.add (Metrics.counter "migration.moves_accepted") !moves
  end;
  { moves = !moves; lbf_before; lbf_after = Objective.load_balance_factor placement }
