module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Link_map = Hmn_mapping.Link_map
module Path = Hmn_routing.Path
module Astar_prune = Hmn_routing.Astar_prune
module Metrics = Hmn_obs.Metrics
module Trace = Hmn_obs.Trace

type stats = {
  routed : int;
  intra_host : int;
  expanded : int;
  generated : int;
  precompute_s : float;
  cache_hits : int;
  cache_revalidate_failed : int;
  fast_path : int;
}

let run ?router ?(route_cache = false) ?(tree_fast_path = false) placement =
  if not (Placement.all_assigned placement) then
    invalid_arg "Networking.run: placement is incomplete";
  let problem = Placement.problem placement in
  let venv = problem.Problem.venv in
  let link_map = Link_map.create problem in
  let latency_tables = Hmn_routing.Latency_table.create problem.Problem.cluster in
  (* Eager fill: every routed link targets a host, so from here on the
     table is a read-only lookup on the A*Prune hot path. *)
  Hmn_routing.Latency_table.precompute latency_tables;
  (* Per-vlink tallies live in local ints and are flushed into the
     stats record once at the end — the previous functional record
     update allocated a fresh record per routed vlink. *)
  let routed = ref 0 and intra_host = ref 0 in
  let expanded = ref 0 and generated = ref 0 in
  (* One reusable context for the whole pass: label arena, heap and
     Pareto pools reach a steady state after the first few routes. The
     cache and tree fast path stay off unless requested — they change
     expansion counts (and, for the cache, possibly path selection),
     while the default engine is bit-identical to a fresh search. *)
  let ctx = Hmn_routing.Route_ctx.create ~cache:route_cache ~tree_fast_path () in
  let default_router ~residual ~latency_tables ~src ~dst ~bandwidth_mbps ~latency_ms ()
      =
    match
      Astar_prune.route ~ctx ~residual ~latency_tables ~src ~dst ~bandwidth_mbps
        ~latency_ms ()
    with
    | None -> None
    | Some (path, s) ->
      expanded := !expanded + s.Astar_prune.expanded;
      generated := !generated + s.Astar_prune.generated;
      Some path
  in
  let router = Option.value router ~default:default_router in
  let exception Networking_failed of Mapper.failure_detail option * string in
  try
    Array.iter
      (fun vlink ->
        let vs, vd = Virtual_env.endpoints venv vlink in
        let hs = Placement.host_of_exn placement ~guest:vs in
        let hd = Placement.host_of_exn placement ~guest:vd in
        if hs = hd then begin
          (* Intra-host: trivial path, no bandwidth reserved. *)
          (match Link_map.assign link_map ~vlink (Path.trivial hs) with
          | Ok () -> ()
          | Error msg -> raise (Networking_failed (None, msg)));
          incr intra_host
        end
        else begin
          let spec = Virtual_env.vlink venv vlink in
          let route () =
            router
              ~residual:(Link_map.residual link_map)
              ~latency_tables ~src:hs ~dst:hd
              ~bandwidth_mbps:spec.Hmn_vnet.Vlink.bandwidth_mbps
              ~latency_ms:spec.Hmn_vnet.Vlink.latency_ms ()
          in
          match
            (* Argument strings are only built when tracing is on; the
               span itself is one branch otherwise. *)
            if Trace.enabled () then
              Trace.with_span ~cat:"routing" "route-vlink"
                ~args:
                  [
                    ("vlink", string_of_int vlink);
                    ("src_host", string_of_int hs);
                    ("dst_host", string_of_int hd);
                  ]
                route
            else route ()
          with
          | None ->
            let detail =
              Mapper.Unroutable_vlink
                {
                  vlink;
                  src_host = hs;
                  dst_host = hd;
                  bandwidth_mbps = spec.Hmn_vnet.Vlink.bandwidth_mbps;
                  latency_ms = spec.Hmn_vnet.Vlink.latency_ms;
                }
            in
            raise
              (Networking_failed
                 ( Some detail,
                   Printf.sprintf
                     "no feasible path for virtual link %d (hosts %d -> %d, %.3f \
                      Mbps, <= %.1f ms)"
                     vlink hs hd spec.Hmn_vnet.Vlink.bandwidth_mbps
                     spec.Hmn_vnet.Vlink.latency_ms ))
          | Some path -> (
            match Link_map.assign link_map ~vlink path with
            | Ok () -> incr routed
            | Error msg -> raise (Networking_failed (None, msg)))
        end)
      (Hosting.sorted_vlinks problem);
    if Metrics.enabled () then begin
      Metrics.Counter.add (Metrics.counter "networking.vlinks_routed") !routed;
      Metrics.Counter.add (Metrics.counter "networking.intra_host") !intra_host
    end;
    Ok
      ( link_map,
        {
          routed = !routed;
          intra_host = !intra_host;
          expanded = !expanded;
          generated = !generated;
          precompute_s =
            Hmn_routing.Latency_table.precompute_seconds latency_tables;
          cache_hits = Hmn_routing.Route_ctx.cache_hits ctx;
          cache_revalidate_failed =
            Hmn_routing.Route_ctx.cache_revalidate_failed ctx;
          fast_path = Hmn_routing.Route_ctx.fast_path_hits ctx;
        } )
  with Networking_failed (detail, reason) ->
    Error
      (match detail with
      | Some detail -> Mapper.fail_detail ~detail ~stage:"networking" ~reason
      | None -> Mapper.fail ~stage:"networking" ~reason)
