type failure_detail =
  | Unplaceable_guest of { guest : int }
  | Unroutable_vlink of {
      vlink : int;
      src_host : int;
      dst_host : int;
      bandwidth_mbps : float;
      latency_ms : float;
    }

type failure = {
  stage : string;
  reason : string;
  detail : failure_detail option;
}

type outcome = {
  result : (Hmn_mapping.Mapping.t, failure) result;
  elapsed_s : float;
  stage_seconds : (string * float) list;
  tries : int;
  last_failure : failure option;
}

type t = {
  name : string;
  description : string;
  run : rng:Hmn_rng.Rng.t -> Hmn_mapping.Problem.t -> outcome;
}

let fail ~stage ~reason = { stage; reason; detail = None }
let fail_detail ~detail ~stage ~reason = { stage; reason; detail = Some detail }

let single_try ~result ~elapsed_s =
  {
    result;
    elapsed_s;
    stage_seconds = [];
    tries = 1;
    last_failure = (match result with Error f -> Some f | Ok _ -> None);
  }

(* Monotonic, not wall-clock: an NTP step during a mapping must not
   produce a negative (or inflated) elapsed time. *)
let time f = Hmn_prelude.Clock.time f

let pp_outcome ppf o =
  (match o.result with
  | Ok m ->
    Format.fprintf ppf "mapped: objective %.2f MIPS" (Hmn_mapping.Mapping.objective m)
  | Error f -> Format.fprintf ppf "failed in %s: %s" f.stage f.reason);
  Format.fprintf ppf " (%.3f s, %d tries)" o.elapsed_s o.tries
