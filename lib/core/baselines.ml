module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Link_map = Hmn_mapping.Link_map
module Mapping = Hmn_mapping.Mapping
module Path = Hmn_routing.Path

let default_dfs_steps = 20_000
let default_max_tries = 100_000

let dfs_route_all ?rng ?(max_steps = default_dfs_steps) placement =
  if not (Placement.all_assigned placement) then
    invalid_arg "Baselines.dfs_route_all: placement is incomplete";
  let problem = Placement.problem placement in
  let venv = problem.Problem.venv in
  let link_map = Link_map.create problem in
  let exception Routing_failed of Mapper.failure_detail option * string in
  try
    for vlink = 0 to Virtual_env.n_vlinks venv - 1 do
      let vs, vd = Virtual_env.endpoints venv vlink in
      let hs = Placement.host_of_exn placement ~guest:vs in
      let hd = Placement.host_of_exn placement ~guest:vd in
      let path =
        if hs = hd then Some (Path.trivial hs)
        else begin
          let spec = Virtual_env.vlink venv vlink in
          Hmn_routing.Dfs_route.route ?rng ~max_steps
            ~residual:(Link_map.residual link_map)
            ~src:hs ~dst:hd
            ~bandwidth_mbps:spec.Hmn_vnet.Vlink.bandwidth_mbps
            ~latency_ms:spec.Hmn_vnet.Vlink.latency_ms ()
        end
      in
      match path with
      | None ->
        let spec = Virtual_env.vlink venv vlink in
        let detail =
          Mapper.Unroutable_vlink
            {
              vlink;
              src_host = hs;
              dst_host = hd;
              bandwidth_mbps = spec.Hmn_vnet.Vlink.bandwidth_mbps;
              latency_ms = spec.Hmn_vnet.Vlink.latency_ms;
            }
        in
        raise
          (Routing_failed
             ( Some detail,
               Printf.sprintf "DFS found no path for virtual link %d" vlink ))
      | Some path -> (
        match Link_map.assign link_map ~vlink path with
        | Ok () -> ()
        | Error msg -> raise (Routing_failed (None, msg)))
    done;
    Ok link_map
  with Routing_failed (detail, reason) ->
    Error
      (match detail with
      | Some detail -> Mapper.fail_detail ~detail ~stage:"dfs-routing" ~reason
      | None -> Mapper.fail ~stage:"dfs-routing" ~reason)

(* Retry loop shared by the three baselines: [attempt] produces a
   mapping or a failure. The failure of the most recent failed try is
   kept in the outcome even when a later try succeeds — the paper
   explains the baselines' behaviour by *where* the retries die (R burns
   up to 100 000 tries), so that information must not be discarded.
   With metrics enabled, every failed try also lands in a per-stage
   counter and the consumed tries in a histogram. *)
let with_retries ~max_tries ~attempt =
  let module Metrics = Hmn_obs.Metrics in
  let start = Hmn_prelude.Clock.now_s () in
  let record_failure (f : Mapper.failure) =
    if Metrics.enabled () then
      Metrics.Counter.incr (Metrics.counter ("baseline.failures." ^ f.Mapper.stage))
  in
  let finish ~tries ~result ~last_failure =
    if Metrics.enabled () then begin
      Metrics.Counter.add (Metrics.counter "baseline.tries") tries;
      Metrics.Histogram.observe
        (Metrics.histogram "baseline.tries_per_run")
        (float_of_int tries)
    end;
    {
      Mapper.result;
      elapsed_s = Hmn_prelude.Clock.elapsed_s start;
      stage_seconds = [];
      tries;
      last_failure;
    }
  in
  let rec go tries last_failure =
    if tries >= max_tries then begin
      let failure =
        Option.value last_failure
          ~default:(Mapper.fail ~stage:"retry" ~reason:"try budget exhausted")
      in
      finish ~tries ~result:(Error failure) ~last_failure:(Some failure)
    end
    else begin
      match attempt () with
      | Ok mapping -> finish ~tries:(tries + 1) ~result:(Ok mapping) ~last_failure
      | Error failure ->
        record_failure failure;
        go (tries + 1) (Some failure)
    end
  in
  go 0 None

let random ?(max_tries = default_max_tries) () =
  {
    Mapper.name = "R";
    description = "random placement + DFS routing, whole mapping retried";
    run =
      (fun ~rng problem ->
        with_retries ~max_tries ~attempt:(fun () ->
            match Random_place.run ~rng problem with
            | Error _ as e -> e
            | Ok placement -> (
              match dfs_route_all ~rng placement with
              | Error _ as e -> e
              | Ok link_map -> Ok (Mapping.make ~placement ~link_map))));
  }

let random_aprune ?(max_tries = default_max_tries) () =
  {
    Mapper.name = "RA";
    description = "random placement + A*Prune networking, whole mapping retried";
    run =
      (fun ~rng problem ->
        with_retries ~max_tries ~attempt:(fun () ->
            match Random_place.run ~rng problem with
            | Error _ as e -> e
            | Ok placement -> (
              match Networking.run placement with
              | Error _ as e -> e
              | Ok (link_map, _) -> Ok (Mapping.make ~placement ~link_map))));
  }

let hosting_search ?(max_tries = default_max_tries) () =
  {
    Mapper.name = "HS";
    description = "Hosting placement (kept fixed) + DFS routing, routing retried";
    run =
      (fun ~rng problem ->
        match Mapper.time (fun () -> Hosting.run problem) with
        | Error failure, elapsed_s ->
          {
            Mapper.result = Error failure;
            elapsed_s;
            stage_seconds = [ ("hosting", elapsed_s) ];
            tries = 1;
            last_failure = Some failure;
          }
        | Ok placement, hosting_s ->
          let outcome =
            with_retries ~max_tries ~attempt:(fun () ->
                match dfs_route_all ~rng placement with
                | Error _ as e -> e
                | Ok link_map -> Ok (Mapping.make ~placement ~link_map))
          in
          {
            outcome with
            Mapper.elapsed_s = outcome.Mapper.elapsed_s +. hosting_s;
            stage_seconds = [ ("hosting", hosting_s) ];
          });
  }
