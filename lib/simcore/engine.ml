type event = {
  time : float;
  seq : int;  (* FIFO tie-break for simultaneous events *)
  callback : t -> unit;
}

and t = {
  queue : event Hmn_dstruct.Binary_heap.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
}

let compare_event a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () =
  {
    queue = Hmn_dstruct.Binary_heap.create ~cmp:compare_event ();
    clock = 0.;
    next_seq = 0;
    processed = 0;
  }

let now t = t.clock

let schedule_at t ~time callback =
  if time < t.clock then invalid_arg "Engine.schedule_at: time is in the past";
  if not (Float.is_finite time) then invalid_arg "Engine.schedule_at: non-finite time";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Hmn_dstruct.Binary_heap.push t.queue { time; seq; callback }

let schedule t ~delay callback =
  if delay < 0. then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) callback

let pending t = Hmn_dstruct.Binary_heap.length t.queue
let processed t = t.processed

let step t =
  match Hmn_dstruct.Binary_heap.pop t.queue with
  | None -> false
  | Some ev ->
    t.clock <- ev.time;
    t.processed <- t.processed + 1;
    ev.callback t;
    true

let run ?(until = infinity) ?(max_events = max_int) t =
  let executed = ref 0 in
  let continue = ref true in
  while !continue && !executed < max_events do
    match Hmn_dstruct.Binary_heap.peek t.queue with
    | None -> continue := false
    | Some ev when ev.time > until -> continue := false
    | Some _ ->
      ignore (step t);
      incr executed
  done;
  (* When the run stopped at the horizon — queue empty, or the next
     event strictly beyond [until] — the clock advances to [until], so
     back-to-back [run ~until] windows tile simulated time and model
     code can read "it is now [until]" even in quiet periods. A
     [max_events] cutoff instead leaves the clock at the last executed
     event so the caller can resume exactly where it stopped. *)
  if (not !continue) && Float.is_finite until && t.clock < until then
    t.clock <- until
