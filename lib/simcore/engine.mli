(** Discrete-event simulation engine.

    A minimal, fast kernel in the spirit of what the paper uses
    CloudSim for: a clock and a time-ordered queue of event callbacks.
    Events scheduled for the same instant fire in scheduling order
    (FIFO tie-break), which keeps runs deterministic.

    Cancellation is by invalidation: model code that needs to
    supersede a scheduled event keeps its own epoch counter and has the
    stale callback return without effect (see {!Hmn_emulation} for the
    idiom). *)

type t

val create : unit -> t
(** Fresh engine at time [0.]. *)

val now : t -> float

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Raises [Invalid_argument] when [time] is in the past (before
    [now]). *)

val schedule : t -> delay:float -> (t -> unit) -> unit
(** [schedule t ~delay f] = [schedule_at t ~time:(now t +. delay) f];
    [delay >= 0.]. *)

val pending : t -> int
(** Events still queued. *)

val processed : t -> int
(** Events executed so far. *)

val step : t -> bool
(** Executes the next event; [false] when the queue is empty. *)

val run : ?until:float -> ?max_events:int -> t -> unit
(** Processes events until the queue empties, the clock passes
    [until], or [max_events] have run this call. The clock advances to
    each event's timestamp as it fires; an event scheduled exactly at
    [until] still fires.

    Boundary semantics: when the run stops at the horizon — the queue
    emptied, or the next event lies strictly beyond [until] — and
    [until] is finite, the clock is advanced to [until], so consecutive
    [run ~until] windows tile simulated time ([now t = until] after the
    call). When the run stops because [max_events] fired, the clock
    stays at the last executed event's timestamp and the remaining
    events stay queued. A horizon earlier than [now t] processes
    nothing and leaves the clock unchanged. *)
