module Graph = Hmn_graph.Graph
module Generators = Hmn_graph.Generators

let all_hosts nodes = Array.for_all Node.can_host nodes

let labelled shape link = Graph.map_labels shape ~f:(fun ~eid:_ () -> link)

let torus ~hosts ~rows ~cols ~link =
  if rows * cols <> Array.length hosts then
    invalid_arg "Topology.torus: rows * cols <> host count";
  if not (all_hosts hosts) then invalid_arg "Topology.torus: non-host node given";
  Cluster.create ~nodes:(Array.copy hosts)
    ~graph:(labelled (Generators.torus2d ~rows ~cols) link)

let ring ~hosts ~link =
  if not (all_hosts hosts) then invalid_arg "Topology.ring: non-host node given";
  Cluster.create ~nodes:(Array.copy hosts)
    ~graph:(labelled (Generators.ring (Array.length hosts)) link)

let line ~hosts ~link =
  if not (all_hosts hosts) then invalid_arg "Topology.line: non-host node given";
  Cluster.create ~nodes:(Array.copy hosts)
    ~graph:(labelled (Generators.line (Array.length hosts)) link)

let switches_needed ~n_hosts ~ports =
  if ports < 3 then invalid_arg "Topology.switches_needed: ports >= 3 required";
  if n_hosts < 1 then invalid_arg "Topology.switches_needed: at least one host";
  (* A chain of s switches spends 2*(s-1) ports on inter-switch cables,
     leaving s*ports - 2*(s-1) for hosts. Find the least such s. *)
  let rec search s =
    if (s * ports) - (2 * (s - 1)) >= n_hosts then s else search (s + 1)
  in
  search 1

let mesh ~hosts ~rows ~cols ~link =
  if rows * cols <> Array.length hosts then
    invalid_arg "Topology.mesh: rows * cols <> host count";
  if not (all_hosts hosts) then invalid_arg "Topology.mesh: non-host node given";
  let id r c = (r * cols) + c in
  let graph = Graph.create ~n:(rows * cols) () in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then ignore (Graph.add_edge graph (id r c) (id r (c + 1)) link);
      if r + 1 < rows then ignore (Graph.add_edge graph (id r c) (id (r + 1) c) link)
    done
  done;
  Cluster.create ~nodes:(Array.copy hosts) ~graph

let hypercube ~hosts ~link =
  let n = Array.length hosts in
  if n = 0 || n land (n - 1) <> 0 then
    invalid_arg "Topology.hypercube: host count must be a power of two";
  if not (all_hosts hosts) then invalid_arg "Topology.hypercube: non-host node given";
  let graph = Graph.create ~n () in
  let bit = ref 1 in
  while !bit < n do
    for v = 0 to n - 1 do
      if v land !bit = 0 then ignore (Graph.add_edge graph v (v lor !bit) link)
    done;
    bit := !bit lsl 1
  done;
  Cluster.create ~nodes:(Array.copy hosts) ~graph

(* Attach a link profile per tier and rack labels per host to a
   data-center fabric from [Generators]. Node ids, names, and edge
   insertion order are the fabric's, so clusters built this way are
   byte-compatible with the historical hand-rolled builders. *)
let of_fabric ~hosts ~tier_link ~who (fabric : Generators.fabric) =
  if Array.length hosts <> fabric.Generators.n_hosts then
    invalid_arg ("Topology." ^ who ^ ": host count does not match the fabric");
  if not (all_hosts hosts) then
    invalid_arg ("Topology." ^ who ^ ": non-host node given");
  let nodes =
    Array.append
      (Array.mapi
         (fun i h -> Node.with_rack h fabric.Generators.rack_of_host.(i))
         hosts)
      (Array.map (fun name -> Node.switch ~name) fabric.Generators.switch_names)
  in
  let graph =
    Graph.map_labels fabric.Generators.graph ~f:(fun ~eid () ->
        tier_link fabric.Generators.edge_tiers.(eid))
  in
  Cluster.create ~nodes ~graph

let fat_tree ?agg_link ?core_link ~hosts ~k ~link () =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topology.fat_tree: k must be even, >= 2";
  if Array.length hosts <> k * (k / 2) * (k / 2) then
    invalid_arg "Topology.fat_tree: host count must be k^3/4";
  let agg_link = Option.value agg_link ~default:link in
  let core_link = Option.value core_link ~default:link in
  let tier_link = function
    | Generators.Access -> link
    | Generators.Aggregation -> agg_link
    | Generators.Core -> core_link
  in
  of_fabric ~hosts ~tier_link ~who:"fat_tree" (Generators.fat_tree ~k)

let clos ?uplink ~hosts ~hosts_per_rack ~spines ~link () =
  let n = Array.length hosts in
  if hosts_per_rack < 1 then invalid_arg "Topology.clos: hosts_per_rack >= 1 required";
  if n = 0 || n mod hosts_per_rack <> 0 then
    invalid_arg "Topology.clos: host count must be a multiple of hosts_per_rack";
  let uplink = Option.value uplink ~default:link in
  let tier_link = function Generators.Access -> link | _ -> uplink in
  of_fabric ~hosts ~tier_link ~who:"clos"
    (Generators.clos ~spines ~leafs:(n / hosts_per_rack) ~hosts_per_leaf:hosts_per_rack)

let switched ~hosts ~ports ~link =
  if not (all_hosts hosts) then invalid_arg "Topology.switched: non-host node given";
  let h = Array.length hosts in
  let s = switches_needed ~n_hosts:h ~ports in
  (* Fill switches with hosts in order, respecting per-switch free
     ports: interior switches lose two ports to the chain, end switches
     one (or none when s = 1). The switch a host lands on is its rack. *)
  let free_ports i =
    if s = 1 then ports
    else if i = 0 || i = s - 1 then ports - 1
    else ports - 2
  in
  let switch_of_host = Array.make h 0 in
  let next_host = ref 0 in
  for i = 0 to s - 1 do
    let quota = ref (free_ports i) in
    while !quota > 0 && !next_host < h do
      switch_of_host.(!next_host) <- i;
      incr next_host;
      decr quota
    done
  done;
  assert (!next_host = h);
  let nodes =
    Array.append
      (Array.mapi (fun i host -> Node.with_rack host switch_of_host.(i)) hosts)
      (Array.init s (fun i -> Node.switch ~name:(Printf.sprintf "sw%d" i)))
  in
  let graph = Graph.create ~n:(h + s) () in
  (* Chain the switches. *)
  for i = 0 to s - 2 do
    ignore (Graph.add_edge graph (h + i) (h + i + 1) link)
  done;
  for host = 0 to h - 1 do
    ignore (Graph.add_edge graph host (h + switch_of_host.(host)) link)
  done;
  Cluster.create ~nodes ~graph
