(** A node of the physical cluster: a workstation (host) that can run
    guests, or a network switch that only forwards traffic.

    Switches exist because the paper's second topology connects hosts
    through cascaded 64-port switches; modelling them as zero-capacity
    non-hosting nodes lets every routing algorithm work on one uniform
    graph. *)

type kind = Host | Switch

type t = {
  name : string;
  kind : kind;
  capacity : Resources.t;
      (** usable capacity (already net of VMM overhead for hosts; zero
          for switches) *)
  rack : int option;
      (** physical placement group (the access switch a host hangs
          off) — [None] for switches and for flat topologies like the
          torus. The hierarchical Hosting mode shards by this. *)
}

val host : name:string -> capacity:Resources.t -> t
(** No rack label; attach one with {!with_rack}. *)

val switch : name:string -> t

val can_host : t -> bool
val rack : t -> int option

val with_rack : t -> int -> t
(** Raises [Invalid_argument] on a switch or a negative rack id. *)

val pp : Format.formatter -> t -> unit
