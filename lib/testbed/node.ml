type kind = Host | Switch

type t = {
  name : string;
  kind : kind;
  capacity : Resources.t;
  rack : int option;
}

let host ~name ~capacity = { name; kind = Host; capacity; rack = None }
let switch ~name = { name; kind = Switch; capacity = Resources.zero; rack = None }

let can_host t = t.kind = Host
let rack t = t.rack

let with_rack t rack =
  if t.kind <> Host then invalid_arg "Node.with_rack: switches have no rack";
  if rack < 0 then invalid_arg "Node.with_rack: negative rack id";
  { t with rack = Some rack }

let pp ppf t =
  match t.kind with
  | Host -> Format.fprintf ppf "host %s %a" t.name Resources.pp t.capacity
  | Switch -> Format.fprintf ppf "switch %s" t.name
