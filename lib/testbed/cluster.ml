module Graph = Hmn_graph.Graph
module Csr = Hmn_graph.Csr

type t = {
  nodes : Node.t array;
  graph : Link.t Graph.t;
  host_ids : int array;
  csr : Csr.t;
  link_latencies : float array;
  link_bandwidths : float array;
  racks : int array array;
  rack_of : int array;
}

(* Hosts grouped by their rack label, valid only when every host carries
   one: a partially-labelled cluster has no meaningful sharding. Rack
   ids are densified in ascending label order so builders may use any
   label scheme. *)
let group_racks nodes host_ids =
  let n = Array.length nodes in
  let rack_of = Array.make n (-1) in
  let all_racked =
    Array.length host_ids > 0
    && Array.for_all (fun i -> Node.rack nodes.(i) <> None) host_ids
  in
  if not all_racked then ([||], rack_of)
  else begin
    let labels =
      List.sort_uniq Int.compare
        (Array.to_list (Array.map (fun i -> Option.get (Node.rack nodes.(i))) host_ids))
    in
    let dense = Hashtbl.create 16 in
    List.iteri (fun d label -> Hashtbl.add dense label d) labels;
    let racks = Array.make (List.length labels) [] in
    (* host_ids is ascending: build each rack's member list ascending. *)
    for k = Array.length host_ids - 1 downto 0 do
      let i = host_ids.(k) in
      let d = Hashtbl.find dense (Option.get (Node.rack nodes.(i))) in
      rack_of.(i) <- d;
      racks.(d) <- i :: racks.(d)
    done;
    (Array.map Array.of_list racks, rack_of)
  end

let create ~nodes ~graph =
  if Array.length nodes <> Graph.n_nodes graph then
    invalid_arg "Cluster.create: node array / graph size mismatch";
  if Graph.kind graph = Graph.Directed then
    invalid_arg "Cluster.create: cluster graphs are undirected";
  let host_ids =
    Array.of_list
      (List.filter
         (fun i -> Node.can_host nodes.(i))
         (List.init (Array.length nodes) Fun.id))
  in
  let n_edges = Graph.n_edges graph in
  let link_latencies = Array.make n_edges 0. in
  let link_bandwidths = Array.make n_edges 0. in
  Graph.iter_edges graph (fun ~eid ~u:_ ~v:_ link ->
      link_latencies.(eid) <- link.Link.latency_ms;
      link_bandwidths.(eid) <- link.Link.bandwidth_mbps);
  let racks, rack_of = group_racks nodes host_ids in
  {
    nodes;
    graph;
    host_ids;
    csr = Csr.of_graph graph;
    link_latencies;
    link_bandwidths;
    racks;
    rack_of;
  }

let graph t = t.graph
let csr t = t.csr
let n_nodes t = Array.length t.nodes

let node t i =
  if i < 0 || i >= Array.length t.nodes then invalid_arg "Cluster.node: out of range";
  t.nodes.(i)

let host_ids t = t.host_ids
let n_hosts t = Array.length t.host_ids
let is_host t i = Node.can_host (node t i)

let capacity t i = (node t i).Node.capacity

let total_capacity t =
  Array.fold_left
    (fun acc i -> Resources.add acc (capacity t i))
    Resources.zero t.host_ids

let link t eid = Graph.label t.graph eid
let link_latencies t = t.link_latencies
let link_bandwidths t = t.link_bandwidths

let racks t = t.racks
let n_racks t = Array.length t.racks

let rack_of_node t i =
  if i < 0 || i >= Array.length t.rack_of then
    invalid_arg "Cluster.rack_of_node: out of range";
  let r = t.rack_of.(i) in
  if r < 0 then None else Some r

let is_connected t = Hmn_graph.Traversal.is_connected t.graph

let pp_summary ppf t =
  let switches = n_nodes t - n_hosts t in
  Format.fprintf ppf
    "cluster: %d hosts, %d switches, %d links; total %a" (n_hosts t) switches
    (Graph.n_edges t.graph) Resources.pp (total_capacity t)
