(** Builders for the physical topologies evaluated in the paper (2-D
    torus and cascaded switches) plus the ring/line shapes its related
    work mentions.

    Every builder takes the host nodes to place and a link profile used
    for every physical cable, and returns a connected {!Cluster.t}. *)

val torus : hosts:Node.t array -> rows:int -> cols:int -> link:Link.t -> Cluster.t
(** [rows * cols] must equal the host count. Each host gets the four
    wrap-around grid neighbours (fewer along dimensions of size <= 2). *)

val ring : hosts:Node.t array -> link:Link.t -> Cluster.t
(** Hosts on a cycle; requires at least 3 hosts. *)

val line : hosts:Node.t array -> link:Link.t -> Cluster.t
(** Hosts on a path; requires at least 1 host. *)

val switched : hosts:Node.t array -> ports:int -> link:Link.t -> Cluster.t
(** Hosts hang off a chain of [ports]-port switches, as in the paper's
    "cascade 64-port switches" setup. The minimal number of switches is
    used: a chain of [s] switches offers [s * ports - 2 * (s - 1)]
    host ports. Hosts fill switches in order. Requires [ports >= 3]
    and at least 1 host. Switch nodes are appended after the host
    nodes, so host ids are [0 .. n_hosts - 1]. Each host is
    rack-labelled with the switch it hangs off, so the sharded Hosting
    mode applies here too. *)

val switches_needed : n_hosts:int -> ports:int -> int
(** Number of switches {!switched} will chain. *)

val mesh : hosts:Node.t array -> rows:int -> cols:int -> link:Link.t -> Cluster.t
(** Plain [rows]×[cols] grid (no wrap-around) — the torus's
    little sibling, with higher diameter. *)

val hypercube : hosts:Node.t array -> link:Link.t -> Cluster.t
(** d-dimensional hypercube: requires a power-of-two host count; hosts
    whose ids differ in exactly one bit are adjacent. *)

val fat_tree :
  ?agg_link:Link.t ->
  ?core_link:Link.t ->
  hosts:Node.t array ->
  k:int ->
  link:Link.t ->
  unit ->
  Cluster.t
(** k-ary fat-tree over {!Hmn_graph.Generators.fat_tree}: [k] even,
    [k >= 2], exactly [k^3 / 4] hosts. Each of the [k] pods has [k/2]
    edge and [k/2] aggregation switches; [(k/2)^2] core switches join
    the pods. Hosts are nodes [0 .. k^3/4 - 1]; switches are appended
    after them; each host is rack-labelled with its edge switch. [link]
    cables the host tier and, by default, the whole fabric; [agg_link]
    / [core_link] override the edge–aggregation and aggregation–core
    tiers (the usual oversubscription knobs). The fabric provides many
    equal-cost paths, a good stress test for the Networking stage's
    bottleneck routing. *)

val clos :
  ?uplink:Link.t ->
  hosts:Node.t array ->
  hosts_per_rack:int ->
  spines:int ->
  link:Link.t ->
  unit ->
  Cluster.t
(** Two-tier leaf-spine Clos over {!Hmn_graph.Generators.clos}: the
    hosts are split into racks of [hosts_per_rack] (the count must
    divide evenly), one leaf switch per rack, every leaf cabled to
    every one of the [spines] spine switches. [link] cables the
    host–leaf tier; [uplink] (default [link]) the leaf–spine tier —
    give it more bandwidth to keep the fabric's bisection ahead of the
    rack access capacity. Hosts carry their rack label. *)
