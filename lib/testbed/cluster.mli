(** The physical environment: a graph [c = (C, E_c)] of nodes and links
    (paper §3.2), where some nodes are hosts (can run guests) and some
    are switches (forwarding only). *)

type t

val create : nodes:Node.t array -> graph:Link.t Hmn_graph.Graph.t -> t
(** Raises [Invalid_argument] when the node array length differs from
    the graph's node count, or the graph is directed. Eagerly builds
    the CSR routing view and the flat per-edge latency/bandwidth
    arrays — O(nodes + links), paid once per cluster. *)

val graph : t -> Link.t Hmn_graph.Graph.t
val n_nodes : t -> int
val node : t -> int -> Node.t

val host_ids : t -> int array
(** Ids of the nodes that can run guests, ascending. The array is owned
    by the cluster: do not mutate. *)

val n_hosts : t -> int
val is_host : t -> int -> bool

val capacity : t -> int -> Resources.t
(** Usable capacity of a node (zero for switches). *)

val total_capacity : t -> Resources.t
(** Sum over hosts. *)

val link : t -> int -> Link.t
(** Label of a physical link by edge id. *)

(** {2 Routing hot-path views}

    All owned by the cluster: do not mutate. *)

val csr : t -> Hmn_graph.Csr.t
(** Compact-sparse-row view of {!graph}, same successor order as
    [Graph.iter_adj]. *)

val link_latencies : t -> float array
(** [latency_ms] per edge id — [Csr.dijkstra_from]'s weight array and
    A\*Prune's per-hop cost, without touching the boxed labels. *)

val link_bandwidths : t -> float array
(** [bandwidth_mbps] per edge id. *)

(** {2 Racks}

    Available when {e every} host node carries a {!Node.rack} label
    (fat-tree / Clos / switched builders); empty otherwise. Rack ids
    are densified to [0 .. n_racks - 1] in ascending label order. *)

val racks : t -> int array array
(** [racks t.(r)] is rack [r]'s host ids, ascending; [[||]] when the
    cluster is not (fully) rack-labelled. Owned by the cluster. *)

val n_racks : t -> int

val rack_of_node : t -> int -> int option
(** Dense rack id of a node ([None] for switches and unracked hosts). *)

val is_connected : t -> bool

val pp_summary : Format.formatter -> t -> unit
(** One-paragraph description: node/host/link counts, capacity totals. *)
