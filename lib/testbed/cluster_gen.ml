module Dist = Hmn_rng.Dist

type host_profile = {
  mips : Dist.t;
  mem_mb : Dist.t;
  stor_gb : Dist.t;
}

let table1_profile =
  {
    mips = Dist.Uniform (1000., 3000.);
    mem_mb = Dist.Uniform (Hmn_prelude.Units.mb_of_gb 1., Hmn_prelude.Units.mb_of_gb 3.);
    stor_gb = Dist.Uniform (Hmn_prelude.Units.gb_of_tb 1., Hmn_prelude.Units.gb_of_tb 3.);
  }

let gen_hosts ?(vmm = Vmm.xen_like) ?(profile = table1_profile) ~n ~rng () =
  Array.init n (fun i ->
      let raw =
        Resources.make
          ~mips:(Dist.draw profile.mips rng)
          ~mem_mb:(Dist.draw profile.mem_mb rng)
          ~stor_gb:(Dist.draw profile.stor_gb rng)
      in
      Node.host ~name:(Printf.sprintf "h%d" i) ~capacity:(Vmm.deduct raw vmm))

let torus_cluster ?vmm ?profile ?(link = Link.gigabit) ~rows ~cols ~rng () =
  let hosts = gen_hosts ?vmm ?profile ~n:(rows * cols) ~rng () in
  Topology.torus ~hosts ~rows ~cols ~link

let switched_cluster ?vmm ?profile ?(link = Link.gigabit) ?(ports = 64) ~n ~rng () =
  let hosts = gen_hosts ?vmm ?profile ~n ~rng () in
  Topology.switched ~hosts ~ports ~link

let fat_tree_cluster ?vmm ?profile ?(link = Link.gigabit) ?agg_link ?core_link ~k
    ~rng () =
  let hosts = gen_hosts ?vmm ?profile ~n:(k * (k / 2) * (k / 2)) ~rng () in
  Topology.fat_tree ?agg_link ?core_link ~hosts ~k ~link ()

let clos_cluster ?vmm ?profile ?(link = Link.gigabit) ?uplink ~racks
    ~hosts_per_rack ~spines ~rng () =
  let hosts = gen_hosts ?vmm ?profile ~n:(racks * hosts_per_rack) ~rng () in
  Topology.clos ?uplink ~hosts ~hosts_per_rack ~spines ~link ()
