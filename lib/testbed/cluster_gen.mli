(** Random heterogeneous clusters per the paper's Table 1.

    Host resources are drawn independently per host: memory uniform in
    [1 GB, 3 GB], storage uniform in [1 TB, 3 TB], CPU uniform in
    [1000, 3000] MIPS. Physical links are 1 Gbps / 5 ms. *)

type host_profile = {
  mips : Hmn_rng.Dist.t;
  mem_mb : Hmn_rng.Dist.t;
  stor_gb : Hmn_rng.Dist.t;
}

val table1_profile : host_profile
(** The distributions above. *)

val gen_hosts :
  ?vmm:Vmm.t ->
  ?profile:host_profile ->
  n:int ->
  rng:Hmn_rng.Rng.t ->
  unit ->
  Node.t array
(** [n] host nodes named [h0 .. h<n-1>] with capacities drawn from
    [profile] (default {!table1_profile}) and VMM overhead (default
    {!Vmm.xen_like}) already deducted. *)

val torus_cluster :
  ?vmm:Vmm.t ->
  ?profile:host_profile ->
  ?link:Link.t ->
  rows:int ->
  cols:int ->
  rng:Hmn_rng.Rng.t ->
  unit ->
  Cluster.t
(** Random hosts on a [rows]×[cols] torus with [link] cables (default
    {!Link.gigabit}). The paper's first cluster is [rows = 5],
    [cols = 8]. *)

val switched_cluster :
  ?vmm:Vmm.t ->
  ?profile:host_profile ->
  ?link:Link.t ->
  ?ports:int ->
  n:int ->
  rng:Hmn_rng.Rng.t ->
  unit ->
  Cluster.t
(** Random hosts behind cascaded [ports]-port switches (default 64,
    the paper's second cluster). *)

val fat_tree_cluster :
  ?vmm:Vmm.t ->
  ?profile:host_profile ->
  ?link:Link.t ->
  ?agg_link:Link.t ->
  ?core_link:Link.t ->
  k:int ->
  rng:Hmn_rng.Rng.t ->
  unit ->
  Cluster.t
(** [k^3/4] random hosts on a k-ary fat-tree ({!Topology.fat_tree}),
    rack-labelled per edge switch. *)

val clos_cluster :
  ?vmm:Vmm.t ->
  ?profile:host_profile ->
  ?link:Link.t ->
  ?uplink:Link.t ->
  racks:int ->
  hosts_per_rack:int ->
  spines:int ->
  rng:Hmn_rng.Rng.t ->
  unit ->
  Cluster.t
(** [racks * hosts_per_rack] random hosts on a leaf-spine Clos
    ({!Topology.clos}), rack-labelled per leaf. *)
