(** Graph topology generators.

    All generators return unlabelled ([unit]) graphs; callers attach
    domain labels with {!Graph.map_labels}. Deterministic generators
    build the classic testbed topologies; randomized ones take an
    explicit {!Hmn_rng.Rng.t}. *)

val line : int -> unit Graph.t
(** Path graph on [n] nodes ([0—1—…—n-1]). [n >= 1]. *)

val ring : int -> unit Graph.t
(** Cycle on [n] nodes. [n >= 3]. *)

val star : int -> unit Graph.t
(** Node [0] joined to each of [1 .. n-1]. [n >= 1]. *)

val complete : int -> unit Graph.t
(** Clique on [n] nodes. [n >= 1]. *)

val torus2d : rows:int -> cols:int -> unit Graph.t
(** 2-D torus: node [(r, c)] is id [r * cols + c], joined to its four
    grid neighbours with wrap-around. Wrap edges are omitted along a
    dimension of size <= 2 so no parallel edges arise. [rows, cols >= 1]. *)

val random_tree : n:int -> rng:Hmn_rng.Rng.t -> unit Graph.t
(** Uniform random-attachment tree: node [i > 0] connects to a uniform
    earlier node. Always connected, [n - 1] edges. *)

val random_connected : n:int -> density:float -> rng:Hmn_rng.Rng.t -> unit Graph.t
(** Connected random graph with approximately
    [density * n * (n-1) / 2] edges (at least the [n - 1] of a spanning
    tree, at most the clique). This is the paper's virtual-topology
    generator: a random spanning tree over a shuffled node order
    guarantees connectivity, then distinct random extra edges are added
    up to the density target. Raises [Invalid_argument] unless
    [0. <= density <= 1.] and [n >= 1]. *)

val gnp : n:int -> p:float -> rng:Hmn_rng.Rng.t -> unit Graph.t
(** Erdős–Rényi G(n, p); connectivity not guaranteed. *)

val barabasi_albert : n:int -> m:int -> rng:Hmn_rng.Rng.t -> unit Graph.t
(** Preferential attachment (Barabási–Albert): each new node attaches
    to [m] distinct existing nodes with probability proportional to
    their degree (+1 smoothing). Connected by construction; models the
    heavy-tailed overlays P2P emulation experiments use. Requires
    [1 <= m < n]. *)

val waxman :
  n:int -> alpha:float -> beta:float -> rng:Hmn_rng.Rng.t -> unit Graph.t
(** Waxman (1988) random network: nodes get uniform coordinates in the
    unit square and each pair is joined with probability
    [alpha * exp (-d / (beta * sqrt 2))] where [d] is their Euclidean
    distance — the classic generator for internet-like emulated WANs.
    A random spanning tree is added first so the result is always
    connected. Requires [alpha, beta] in [(0, 1]]. *)

val expected_edges : n:int -> density:float -> int
(** The edge-count target {!random_connected} aims for. *)

(** {2 Data-center fabrics}

    The hierarchical topologies the scale path specialises for. Unlike
    the generators above they return a {!fabric} — the unit graph plus
    the host/rack/tier structure the testbed layer needs to attach
    per-tier link profiles and rack labels. *)

type tier =
  | Access  (** host → access (edge/leaf) switch *)
  | Aggregation  (** access → aggregation (or leaf → spine) *)
  | Core  (** aggregation → core *)

type fabric = {
  graph : unit Graph.t;
  n_hosts : int;  (** hosts are nodes [0 .. n_hosts - 1] *)
  n_racks : int;
  rack_of_host : int array;
      (** rack id per host; rack = the access switch the host hangs
          off, host ids contiguous per rack *)
  switch_names : string array;
      (** names for nodes [n_hosts ..], in node order *)
  edge_tiers : tier array;  (** tier per edge id *)
}

val fat_tree : k:int -> fabric
(** k-ary fat-tree (Al-Fares/Leiserson-style data-center fabric): [k]
    even, [k >= 2], [k^3/4] hosts. Each of the [k] pods has [k/2] edge
    and [k/2] aggregation switches; [(k/2)^2] core switches join the
    pods. One rack per edge switch ([k/2] hosts each). Node and edge
    insertion order is the historical [Topology.fat_tree] order, which
    keeps downstream tie-breaking stable. *)

val clos : spines:int -> leafs:int -> hosts_per_leaf:int -> fabric
(** Two-tier leaf-spine Clos: every leaf connects to every spine; one
    rack per leaf. [leafs * hosts_per_leaf] hosts. *)
