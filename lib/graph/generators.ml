module Rng = Hmn_rng.Rng

let require cond msg = if not cond then invalid_arg ("Generators." ^ msg)

let line n =
  require (n >= 1) "line: n >= 1 required";
  let g = Graph.create ~n () in
  for i = 0 to n - 2 do
    ignore (Graph.add_edge g i (i + 1) ())
  done;
  g

let ring n =
  require (n >= 3) "ring: n >= 3 required";
  let g = line n in
  ignore (Graph.add_edge g (n - 1) 0 ());
  g

let star n =
  require (n >= 1) "star: n >= 1 required";
  let g = Graph.create ~n () in
  for i = 1 to n - 1 do
    ignore (Graph.add_edge g 0 i ())
  done;
  g

let complete n =
  require (n >= 1) "complete: n >= 1 required";
  let g = Graph.create ~n () in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      ignore (Graph.add_edge g i j ())
    done
  done;
  g

let torus2d ~rows ~cols =
  require (rows >= 1 && cols >= 1) "torus2d: rows, cols >= 1 required";
  let id r c = (r * cols) + c in
  let g = Graph.create ~n:(rows * cols) () in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      (* Right neighbour: plain grid edge, plus wrap when the row is
         long enough for the wrap not to duplicate a grid edge. *)
      if c + 1 < cols then ignore (Graph.add_edge g (id r c) (id r (c + 1)) ());
      if c = cols - 1 && cols > 2 then ignore (Graph.add_edge g (id r c) (id r 0) ());
      if r + 1 < rows then ignore (Graph.add_edge g (id r c) (id (r + 1) c) ());
      if r = rows - 1 && rows > 2 then ignore (Graph.add_edge g (id r c) (id 0 c) ())
    done
  done;
  g

let random_tree ~n ~rng =
  require (n >= 1) "random_tree: n >= 1 required";
  let g = Graph.create ~n () in
  for i = 1 to n - 1 do
    ignore (Graph.add_edge g i (Rng.int rng ~bound:i) ())
  done;
  g

let expected_edges ~n ~density =
  let max_edges = n * (n - 1) / 2 in
  let target = int_of_float (Float.round (density *. float_of_int max_edges)) in
  min max_edges (max (n - 1) target)

let random_connected ~n ~density ~rng =
  require (n >= 1) "random_connected: n >= 1 required";
  require (density >= 0. && density <= 1.) "random_connected: density in [0,1] required";
  let g = Graph.create ~n () in
  let seen = Hashtbl.create (4 * n) in
  let key u v = if u < v then (u, v) else (v, u) in
  let add u v =
    let k = key u v in
    if u <> v && not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      ignore (Graph.add_edge g u v ());
      true
    end
    else false
  in
  (* Spanning tree over a shuffled order so the tree shape is not biased
     toward low node ids. *)
  let order = Array.init n (fun i -> i) in
  Hmn_rng.Sample.shuffle rng order;
  for i = 1 to n - 1 do
    ignore (add order.(i) order.(Rng.int rng ~bound:i))
  done;
  let target = expected_edges ~n ~density in
  while Graph.n_edges g < target do
    ignore (add (Rng.int rng ~bound:n) (Rng.int rng ~bound:n))
  done;
  g

let barabasi_albert ~n ~m ~rng =
  require (m >= 1 && m < n) "barabasi_albert: 1 <= m < n required";
  let g = Graph.create ~n () in
  (* Repeated-node trick: the attachment pool holds each node once per
     incident edge end, so sampling from it is degree-proportional;
     one smoothing copy per node avoids zero-degree sinks. *)
  let pool = Hmn_dstruct.Dynarray.create () in
  for v = 0 to m - 1 do
    Hmn_dstruct.Dynarray.push pool v
  done;
  for v = m to n - 1 do
    let chosen = Hashtbl.create m in
    while Hashtbl.length chosen < m do
      let t =
        Hmn_dstruct.Dynarray.get pool
          (Rng.int rng ~bound:(Hmn_dstruct.Dynarray.length pool))
      in
      if t <> v then Hashtbl.replace chosen t ()
    done;
    Hashtbl.iter
      (fun t () ->
        ignore (Graph.add_edge g v t ());
        Hmn_dstruct.Dynarray.push pool t;
        Hmn_dstruct.Dynarray.push pool v)
      chosen
  done;
  g

let waxman ~n ~alpha ~beta ~rng =
  require (n >= 1) "waxman: n >= 1 required";
  require (alpha > 0. && alpha <= 1.) "waxman: alpha in (0,1] required";
  require (beta > 0. && beta <= 1.) "waxman: beta in (0,1] required";
  let xs = Array.init n (fun _ -> Rng.float rng) in
  let ys = Array.init n (fun _ -> Rng.float rng) in
  let g = Graph.create ~n () in
  let seen = Hashtbl.create (4 * n) in
  let key u v = if u < v then (u, v) else (v, u) in
  let add u v =
    let k = key u v in
    if u <> v && not (Hashtbl.mem seen k) then begin
      Hashtbl.add seen k ();
      ignore (Graph.add_edge g u v ())
    end
  in
  (* Connectivity backbone first. *)
  let order = Array.init n (fun i -> i) in
  Hmn_rng.Sample.shuffle rng order;
  for i = 1 to n - 1 do
    add order.(i) order.(Rng.int rng ~bound:i)
  done;
  let max_dist = sqrt 2. in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let d = sqrt (((xs.(u) -. xs.(v)) ** 2.) +. ((ys.(u) -. ys.(v)) ** 2.)) in
      if Rng.float rng < alpha *. exp (-.d /. (beta *. max_dist)) then add u v
    done
  done;
  g

let gnp ~n ~p ~rng =
  require (n >= 1) "gnp: n >= 1 required";
  require (p >= 0. && p <= 1.) "gnp: p in [0,1] required";
  let g = Graph.create ~n () in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Rng.float rng < p then ignore (Graph.add_edge g i j ())
    done
  done;
  g

(* ---- data-center fabrics ---- *)

type tier = Access | Aggregation | Core

type fabric = {
  graph : unit Graph.t;
  n_hosts : int;
  n_racks : int;
  rack_of_host : int array;
  switch_names : string array;
  edge_tiers : tier array;
}

let fat_tree ~k =
  require (k >= 2 && k mod 2 = 0) "fat_tree: k must be even, >= 2";
  let half = k / 2 in
  let n_hosts = k * half * half in
  let n_edge = k * half and n_agg = k * half and n_core = half * half in
  let edge_base = n_hosts in
  let agg_base = edge_base + n_edge in
  let core_base = agg_base + n_agg in
  let switch_names =
    Array.concat
      [
        Array.init n_edge (Printf.sprintf "edge%d");
        Array.init n_agg (Printf.sprintf "agg%d");
        Array.init n_core (Printf.sprintf "core%d");
      ]
  in
  let tiers = Hmn_dstruct.Dynarray.create () in
  let graph = Graph.create ~n:(n_hosts + n_edge + n_agg + n_core) () in
  let add u v tier =
    ignore (Graph.add_edge graph u v ());
    Hmn_dstruct.Dynarray.push tiers tier
  in
  (* One rack per edge switch: hosts [0 .. half-1] of pod 0's first
     edge switch are rack 0, and so on — host ids are contiguous per
     rack, so rack = host / half. *)
  let rack_of_host = Array.init n_hosts (fun h -> h / half) in
  for pod = 0 to k - 1 do
    for e = 0 to half - 1 do
      let edge_sw = edge_base + (pod * half) + e in
      (* Hosts under this edge switch. *)
      for h = 0 to half - 1 do
        let host = (pod * half * half) + (e * half) + h in
        add host edge_sw Access
      done;
      (* Full bipartite edge-agg mesh within the pod. *)
      for a = 0 to half - 1 do
        add edge_sw (agg_base + (pod * half) + a) Aggregation
      done
    done;
    (* Aggregation switch a of each pod connects to core switches
       a*half .. a*half + half - 1. *)
    for a = 0 to half - 1 do
      let agg_sw = agg_base + (pod * half) + a in
      for c = 0 to half - 1 do
        add agg_sw (core_base + (a * half) + c) Core
      done
    done
  done;
  {
    graph;
    n_hosts;
    n_racks = n_edge;
    rack_of_host;
    switch_names;
    edge_tiers = Hmn_dstruct.Dynarray.to_array tiers;
  }

let clos ~spines ~leafs ~hosts_per_leaf =
  require (spines >= 1) "clos: spines >= 1 required";
  require (leafs >= 1) "clos: leafs >= 1 required";
  require (hosts_per_leaf >= 1) "clos: hosts_per_leaf >= 1 required";
  let n_hosts = leafs * hosts_per_leaf in
  let leaf_base = n_hosts in
  let spine_base = leaf_base + leafs in
  let switch_names =
    Array.append
      (Array.init leafs (Printf.sprintf "leaf%d"))
      (Array.init spines (Printf.sprintf "spine%d"))
  in
  let tiers = Hmn_dstruct.Dynarray.create () in
  let graph = Graph.create ~n:(n_hosts + leafs + spines) () in
  let add u v tier =
    ignore (Graph.add_edge graph u v ());
    Hmn_dstruct.Dynarray.push tiers tier
  in
  let rack_of_host = Array.init n_hosts (fun h -> h / hosts_per_leaf) in
  for l = 0 to leafs - 1 do
    for h = 0 to hosts_per_leaf - 1 do
      add ((l * hosts_per_leaf) + h) (leaf_base + l) Access
    done;
    for s = 0 to spines - 1 do
      add (leaf_base + l) (spine_base + s) Aggregation
    done
  done;
  {
    graph;
    n_hosts;
    n_racks = leafs;
    rack_of_host;
    switch_names;
    edge_tiers = Hmn_dstruct.Dynarray.to_array tiers;
  }
