(** Compact-sparse-row view of a {!Graph.t} — the routing hot path's
    representation.

    The adjacency of every node is a contiguous slice of two flat int
    arrays (neighbor ids and edge ids), delimited by an offsets array.
    Compared to chasing the per-node [Dynarray] structure, a scan of a
    node's successors touches three cache lines instead of following
    per-node pointers, and per-edge payloads (latency, bandwidth,
    residual capacity) live in caller-side float arrays indexed by edge
    id — exactly what A\*Prune's expansion loop and the latency-table
    Dijkstras need at cluster sizes in the thousands of hosts.

    The view is immutable and built once per graph. Arc order within a
    node's slice is exactly {!Graph.iter_adj} order (edge-insertion
    order), so an algorithm ported from the adjacency structure keeps
    its tie-breaking — and its output — byte-identical. For undirected
    graphs both arc directions are present; for directed graphs the
    slices hold outgoing arcs only. *)

type t

val of_graph : 'e Graph.t -> t
(** O(nodes + arcs). The labels are not captured: callers index
    label-derived arrays by edge id. *)

val n_nodes : t -> int

val n_arcs : t -> int
(** Total slice length: [2 * n_edges] for undirected graphs. *)

val n_edges : t -> int
(** Edge-id count of the source graph (edge ids are [0 .. n_edges-1]). *)

(** {2 Flat arrays}

    Owned by the view: callers must not mutate. A node [u]'s successors
    sit at indices [offsets.(u) .. offsets.(u+1) - 1] of [neighbors]
    and [edge_ids]. *)

val offsets : t -> int array
(** Length [n_nodes + 1]; [offsets.(n_nodes) = n_arcs]. *)

val neighbors : t -> int array
val edge_ids : t -> int array

(** {2 Derived queries} *)

val degree : t -> int -> int
(** Slice width — equals {!Graph.degree} of the source graph. *)

val iter_adj : t -> int -> (neighbor:int -> eid:int -> unit) -> unit
(** Same visiting order as {!Graph.iter_adj} on the source graph. *)

val adj_list : t -> int -> (int * int) list
(** [(neighbor, eid)] pairs in slice order — for tests. *)

val sole_neighbor : t -> int -> (int * int) option
(** [(neighbor, eid)] when the node has exactly one incident arc —
    a leaf host hanging off its access switch. The latency-table
    landmark scheme keys on this. *)

val dijkstra_from : t -> weight:float array -> src:int -> float array
(** Single-source shortest-path distances with per-edge-id weights,
    identical results to [Dijkstra.run] on the source graph (same
    relaxation order). On an undirected graph this is also the
    distance {e to} [src] from every node. Raises [Invalid_argument]
    on an out-of-range source, a negative weight, or a weight array
    shorter than {!n_edges}. *)
