type t = {
  n_nodes : int;
  n_arcs : int;
  n_edges : int;
  offsets : int array;
  neighbors : int array;
  edge_ids : int array;
}

let of_graph g =
  let n = Graph.n_nodes g in
  let offsets = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    offsets.(u + 1) <- offsets.(u) + Graph.degree g u
  done;
  let n_arcs = offsets.(n) in
  let neighbors = Array.make n_arcs 0 in
  let edge_ids = Array.make n_arcs 0 in
  (* Fill each node's slice in Graph.iter_adj order, so algorithms
     ported from the adjacency structure visit successors in the exact
     same sequence (their tie-breaking — and hence their output — is
     byte-identical). *)
  let pos = ref 0 in
  for u = 0 to n - 1 do
    Graph.iter_adj g u (fun ~neighbor ~eid ->
        neighbors.(!pos) <- neighbor;
        edge_ids.(!pos) <- eid;
        incr pos)
  done;
  { n_nodes = n; n_arcs; n_edges = Graph.n_edges g; offsets; neighbors; edge_ids }

let n_nodes t = t.n_nodes
let n_arcs t = t.n_arcs
let n_edges t = t.n_edges
let offsets t = t.offsets
let neighbors t = t.neighbors
let edge_ids t = t.edge_ids

let degree t u =
  if u < 0 || u >= t.n_nodes then invalid_arg "Csr.degree: node out of range";
  t.offsets.(u + 1) - t.offsets.(u)

let iter_adj t u f =
  if u < 0 || u >= t.n_nodes then invalid_arg "Csr.iter_adj: node out of range";
  for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
    f ~neighbor:t.neighbors.(k) ~eid:t.edge_ids.(k)
  done

let adj_list t u =
  let acc = ref [] in
  for k = t.offsets.(u + 1) - 1 downto t.offsets.(u) do
    acc := (t.neighbors.(k), t.edge_ids.(k)) :: !acc
  done;
  !acc

let sole_neighbor t u =
  if degree t u = 1 then begin
    let k = t.offsets.(u) in
    Some (t.neighbors.(k), t.edge_ids.(k))
  end
  else None

let dijkstra_from t ~weight ~src =
  let n = t.n_nodes in
  if src < 0 || src >= n then invalid_arg "Csr.dijkstra_from: source out of range";
  if Array.length weight < t.n_edges then
    invalid_arg "Csr.dijkstra_from: weight array shorter than edge count";
  let dist = Array.make n infinity in
  let heap = Hmn_dstruct.Indexed_heap.create n in
  dist.(src) <- 0.;
  Hmn_dstruct.Indexed_heap.insert heap src 0.;
  let rec loop () =
    match Hmn_dstruct.Indexed_heap.pop_min heap with
    | None -> ()
    | Some (u, du) ->
      for k = t.offsets.(u) to t.offsets.(u + 1) - 1 do
        let w = weight.(t.edge_ids.(k)) in
        if w < 0. then invalid_arg "Csr.dijkstra_from: negative weight";
        let alt = du +. w in
        let v = t.neighbors.(k) in
        if alt < dist.(v) then begin
          dist.(v) <- alt;
          Hmn_dstruct.Indexed_heap.insert_or_decrease heap v alt
        end
      done;
      loop ()
  in
  loop ();
  dist
