module Json = Hmn_prelude.Json
module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Resources = Hmn_testbed.Resources
module Guest = Hmn_vnet.Guest
module Vlink = Hmn_vnet.Vlink
module Venv = Hmn_vnet.Virtual_env
module Problem = Hmn_mapping.Problem
module Placement = Hmn_mapping.Placement
module Link_map = Hmn_mapping.Link_map
module Mapping = Hmn_mapping.Mapping
module Path = Hmn_routing.Path

open Json

(* ---- encoding ---- *)

let resources_to_json (r : Resources.t) =
  Obj
    [
      ("mips", float r.Resources.mips);
      ("mem_mb", float r.Resources.mem_mb);
      ("stor_gb", float r.Resources.stor_gb);
    ]

let node_to_json (node : Node.t) =
  Obj
    ([
       ("name", str node.Node.name);
       ("kind", str (match node.Node.kind with Node.Host -> "host" | Node.Switch -> "switch"));
       ("capacity", resources_to_json node.Node.capacity);
     ]
    (* Optional, and omitted when absent, so bundles from flat
       topologies keep their historical bytes. *)
    @ match node.Node.rack with None -> [] | Some r -> [ ("rack", int r) ])

let edge_to_json ~u ~v fields = Obj ([ ("u", int u); ("v", int v) ] @ fields)

let cluster_to_json cluster =
  let g = Cluster.graph cluster in
  let nodes =
    List.init (Cluster.n_nodes cluster) (fun i -> node_to_json (Cluster.node cluster i))
  in
  let links =
    List.rev
      (Graph.fold_edges g ~init:[] ~f:(fun acc ~eid:_ ~u ~v (link : Link.t) ->
           edge_to_json ~u ~v
             [
               ("bandwidth_mbps", float link.Link.bandwidth_mbps);
               ("latency_ms", float link.Link.latency_ms);
             ]
           :: acc))
  in
  Obj [ ("nodes", Arr nodes); ("links", Arr links) ]

let venv_to_json venv =
  let guests =
    List.init (Venv.n_guests venv) (fun i ->
        let g = Venv.guest venv i in
        Obj [ ("name", str g.Guest.name); ("demand", resources_to_json g.Guest.demand) ])
  in
  let vlinks =
    List.rev
      (Graph.fold_edges (Venv.graph venv) ~init:[]
         ~f:(fun acc ~eid:_ ~u ~v (l : Vlink.t) ->
           edge_to_json ~u ~v
             [
               ("bandwidth_mbps", float l.Vlink.bandwidth_mbps);
               ("latency_ms", float l.Vlink.latency_ms);
             ]
           :: acc))
  in
  Obj [ ("guests", Arr guests); ("vlinks", Arr vlinks) ]

let problem_to_json (problem : Problem.t) =
  Obj
    [
      ("format", str "hmn-problem");
      ("version", int 1);
      ("cluster", cluster_to_json problem.Problem.cluster);
      ("venv", venv_to_json problem.Problem.venv);
    ]

let mapping_to_json (m : Mapping.t) =
  let venv = (Mapping.problem m).Problem.venv in
  let placement =
    List.init (Venv.n_guests venv) (fun g ->
        int (Placement.host_of_exn m.Mapping.placement ~guest:g))
  in
  let paths = ref [] in
  Link_map.iter_mapped m.Mapping.link_map (fun ~vlink path ->
      let nodes = ref [] and edges = ref [] in
      Array.iter (fun v -> nodes := int v :: !nodes) path.Path.nodes;
      Path.iter_edges path (fun e -> edges := int e :: !edges);
      paths :=
        Obj
          [
            ("vlink", int vlink);
            ("nodes", Arr (List.rev !nodes));
            ("edges", Arr (List.rev !edges));
          ]
        :: !paths);
  Obj
    [
      ("format", str "hmn-mapping");
      ("version", int 1);
      ("placement", Arr placement);
      ("paths", Arr (List.rev !paths));
    ]

let bundle_to_json m =
  Obj
    [
      ("format", str "hmn-bundle");
      ("version", int 1);
      ("problem", problem_to_json (Mapping.problem m));
      ("mapping", mapping_to_json m);
    ]

(* ---- decoding ---- *)

let resources_of_json json =
  let* mips = Result.bind (member "mips" json) to_float in
  let* mem_mb = Result.bind (member "mem_mb" json) to_float in
  let* stor_gb = Result.bind (member "stor_gb" json) to_float in
  match Resources.make ~mips ~mem_mb ~stor_gb with
  | r -> Ok r
  | exception Invalid_argument msg -> Error msg

let node_of_json json =
  let* name = Result.bind (member "name" json) to_str in
  let* kind = Result.bind (member "kind" json) to_str in
  match kind with
  | "switch" -> Ok (Node.switch ~name)
  | "host" ->
    let* capacity = Result.bind (member "capacity" json) resources_of_json in
    let* rack =
      match member "rack" json with
      | Error _ -> Ok None
      | Ok j -> Result.map Option.some (to_int j)
    in
    let node = Node.host ~name ~capacity in
    Ok (match rack with None -> node | Some r -> Node.with_rack node r)
  | other -> Error (Printf.sprintf "unknown node kind %S" other)

let edge_endpoints json =
  let* u = Result.bind (member "u" json) to_int in
  let* v = Result.bind (member "v" json) to_int in
  Ok (u, v)

let cluster_of_json json =
  let* nodes_json = Result.bind (member "nodes" json) to_list in
  let* nodes = map_result node_of_json nodes_json in
  let nodes = Array.of_list nodes in
  let* links_json = Result.bind (member "links" json) to_list in
  let graph = Graph.create ~n:(Array.length nodes) () in
  let* () =
    List.fold_left
      (fun acc link_json ->
        let* () = acc in
        let* u, v = edge_endpoints link_json in
        let* bandwidth_mbps = Result.bind (member "bandwidth_mbps" link_json) to_float in
        let* latency_ms = Result.bind (member "latency_ms" link_json) to_float in
        match
          Graph.add_edge graph u v (Link.make ~bandwidth_mbps ~latency_ms)
        with
        | _ -> Ok ()
        | exception Invalid_argument msg -> Error msg)
      (Ok ()) links_json
  in
  match Cluster.create ~nodes ~graph with
  | c -> Ok c
  | exception Invalid_argument msg -> Error msg

let venv_of_json json =
  let* guests_json = Result.bind (member "guests" json) to_list in
  let* guests =
    map_result
      (fun g ->
        let* name = Result.bind (member "name" g) to_str in
        let* demand = Result.bind (member "demand" g) resources_of_json in
        Ok (Guest.make ~name ~demand))
      guests_json
  in
  let guests = Array.of_list guests in
  let* vlinks_json = Result.bind (member "vlinks" json) to_list in
  let graph = Graph.create ~n:(Array.length guests) () in
  let* () =
    List.fold_left
      (fun acc l ->
        let* () = acc in
        let* u, v = edge_endpoints l in
        let* bandwidth_mbps = Result.bind (member "bandwidth_mbps" l) to_float in
        let* latency_ms = Result.bind (member "latency_ms" l) to_float in
        match Graph.add_edge graph u v (Vlink.make ~bandwidth_mbps ~latency_ms) with
        | _ -> Ok ()
        | exception Invalid_argument msg -> Error msg)
      (Ok ()) vlinks_json
  in
  match Venv.create ~guests ~graph with
  | v -> Ok v
  | exception Invalid_argument msg -> Error msg

let check_format json expected =
  match Result.bind (member "format" json) to_str with
  | Ok actual when actual = expected -> Ok ()
  | Ok actual -> Error (Printf.sprintf "expected format %S, found %S" expected actual)
  | Error _ -> Error (Printf.sprintf "missing format marker (expected %S)" expected)

let problem_of_json json =
  let* () = check_format json "hmn-problem" in
  let* cluster = Result.bind (member "cluster" json) cluster_of_json in
  let* venv = Result.bind (member "venv" json) venv_of_json in
  match Problem.make ~cluster ~venv with
  | p -> Ok p
  | exception Invalid_argument msg -> Error msg

let mapping_of_json ~problem json =
  let* () = check_format json "hmn-mapping" in
  let* placement_json = Result.bind (member "placement" json) to_list in
  let* hosts = map_result to_int placement_json in
  let venv = problem.Problem.venv in
  if List.length hosts <> Venv.n_guests venv then
    Error "placement length does not match the guest count"
  else begin
    let placement = Placement.create problem in
    let* () =
      List.fold_left
        (fun acc (guest, host) ->
          let* () = acc in
          match Placement.assign placement ~guest ~host with
          | Ok () -> Ok ()
          | Error msg -> Error ("placement: " ^ msg)
          | exception Invalid_argument msg -> Error msg)
        (Ok ())
        (List.mapi (fun g h -> (g, h)) hosts)
    in
    let* paths_json = Result.bind (member "paths" json) to_list in
    let link_map = Link_map.create problem in
    let* () =
      List.fold_left
        (fun acc p ->
          let* () = acc in
          let* vlink = Result.bind (member "vlink" p) to_int in
          let* nodes = Result.bind (Result.bind (member "nodes" p) to_list) (map_result to_int) in
          let* edges = Result.bind (Result.bind (member "edges" p) to_list) (map_result to_int) in
          let* path =
            match Path.make ~nodes ~edges with
            | path -> Ok path
            | exception Invalid_argument msg -> Error msg
          in
          match Link_map.assign link_map ~vlink path with
          | Ok () -> Ok ()
          | Error msg -> Error ("link map: " ^ msg)
          | exception Invalid_argument msg -> Error msg)
        (Ok ()) paths_json
    in
    match Mapping.make ~placement ~link_map with
    | m -> Ok m
    | exception Invalid_argument msg -> Error msg
  end

let bundle_of_json json =
  let* () = check_format json "hmn-bundle" in
  let* problem = Result.bind (member "problem" json) problem_of_json in
  Result.bind (member "mapping" json) (mapping_of_json ~problem)

(* ---- files ---- *)

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let save_bundle ~path m = write_file path (Json.to_string ~pretty:true (bundle_to_json m))

let load_bundle ~path =
  match read_file path with
  | contents -> Result.bind (Json.of_string contents) bundle_of_json
  | exception Sys_error msg -> Error msg

let save_problem ~path p =
  write_file path (Json.to_string ~pretty:true (problem_to_json p))

let load_problem ~path =
  match read_file path with
  | contents -> Result.bind (Json.of_string contents) problem_of_json
  | exception Sys_error msg -> Error msg
