(** JSON persistence for problem instances and mappings.

    Lets a tester save a generated environment, share it, and reload it
    for exact reproduction — the paper's "reuse a given emulated
    environment … reproduce tests" motivation. Decoders rebuild
    everything through the normal constructors (placements re-assign,
    link maps re-reserve), so a loaded mapping satisfies the same
    invariants as a computed one; a tampered file fails decoding or the
    {!Hmn_mapping.Constraints} check rather than producing an
    inconsistent value.

    Node, guest and edge indices in the encoding follow the in-memory
    ids, which are stable for a given construction order. *)

val problem_to_json : Hmn_mapping.Problem.t -> Hmn_prelude.Json.t
val problem_of_json : Hmn_prelude.Json.t -> (Hmn_mapping.Problem.t, string) result

val venv_to_json : Hmn_vnet.Virtual_env.t -> Hmn_prelude.Json.t
(** The virtual environment alone — used by the artifact compiler to tie
    a per-tenant export to its request without the whole problem. *)

val venv_of_json :
  Hmn_prelude.Json.t -> (Hmn_vnet.Virtual_env.t, string) result

val mapping_to_json : Hmn_mapping.Mapping.t -> Hmn_prelude.Json.t
(** Encodes the placement and the link paths; the problem must be
    stored alongside (see {!bundle_to_json}). *)

val mapping_of_json :
  problem:Hmn_mapping.Problem.t ->
  Hmn_prelude.Json.t ->
  (Hmn_mapping.Mapping.t, string) result

val bundle_to_json : Hmn_mapping.Mapping.t -> Hmn_prelude.Json.t
(** Problem + mapping in one document (field ["problem"] and
    ["mapping"]). *)

val bundle_of_json :
  Hmn_prelude.Json.t -> (Hmn_mapping.Mapping.t, string) result

val save_bundle : path:string -> Hmn_mapping.Mapping.t -> unit
(** Pretty-printed {!bundle_to_json} to a file. *)

val load_bundle : path:string -> (Hmn_mapping.Mapping.t, string) result
val save_problem : path:string -> Hmn_mapping.Problem.t -> unit
val load_problem : path:string -> (Hmn_mapping.Problem.t, string) result
