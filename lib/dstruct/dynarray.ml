type 'a t = { mutable data : 'a array; mutable size : int }

let create () = { data = [||]; size = 0 }
let length t = t.size
let is_empty t = t.size = 0

let ensure_room t filler =
  if Array.length t.data = 0 then t.data <- Array.make 8 filler
  else if t.size = Array.length t.data then begin
    let data = Array.make (2 * Array.length t.data) filler in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let push t x =
  ensure_room t x;
  t.data.(t.size) <- x;
  t.size <- t.size + 1

let check t i name =
  if i < 0 || i >= t.size then invalid_arg ("Dynarray." ^ name ^ ": index out of bounds")

let get t i =
  check t i "get";
  t.data.(i)

let set t i x =
  check t i "set";
  t.data.(i) <- x

let pop t =
  if t.size = 0 then None
  else begin
    t.size <- t.size - 1;
    let x = t.data.(t.size) in
    (* Keep a live value in the slot so nothing is retained spuriously. *)
    if t.size > 0 then t.data.(t.size) <- t.data.(0);
    Some x
  end

let to_array t = Array.sub t.data 0 t.size

let of_array xs = { data = Array.copy xs; size = Array.length xs }

let iter f t =
  for i = 0 to t.size - 1 do
    f t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.size - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let clear t =
  t.data <- [||];
  t.size <- 0

let reset t = t.size <- 0

let truncate t n =
  if n < 0 || n > t.size then invalid_arg "Dynarray.truncate: bad length";
  t.size <- n
