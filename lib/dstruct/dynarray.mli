(** Growable array (OCaml 5.1 predates [Stdlib.Dynarray]).

    Amortized O(1) push; O(1) random access. Used by graph builders that
    accumulate edges before freezing them into flat arrays. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** Raises [Invalid_argument] out of bounds. *)

val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val to_array : 'a t -> 'a array
(** Fresh array of the current contents. *)

val of_array : 'a array -> 'a t

val iter : ('a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val clear : 'a t -> unit
(** Empties the array and releases its storage. *)

val reset : 'a t -> unit
(** Empties the array but keeps its storage for reuse, so a pooled
    array reaches a steady state where pushes never allocate. The
    vacated slots are not overwritten: reserve [reset] for unboxed
    elements (ints, floats), where nothing can be spuriously
    retained. *)

val truncate : 'a t -> int -> unit
(** Shrinks the array to its first [n] elements, keeping storage (same
    retention caveat as {!reset}). Raises [Invalid_argument] when [n]
    exceeds the current length or is negative. *)
