module Mapper = Hmn_core.Mapper
module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Link = Hmn_testbed.Link
module Graph = Hmn_graph.Graph
module Venv = Hmn_vnet.Virtual_env
module Journal = Hmn_obs.Journal

type verdict =
  | Admitted of { mapping : Hmn_mapping.Mapping.t; elapsed_s : float; tries : int }
  | Rejected of {
      stage : string;
      reason : string;
      elapsed_s : float;
      tries : int;
      detail : Mapper.failure_detail option;
    }

let try_admit ?residual ~occupancy ~policy ~venv ~rng () =
  let residual =
    match residual with
    | Some r -> r
    | None -> Occupancy.residual_cluster occupancy
  in
  let problem = Hmn_mapping.Problem.make ~cluster:residual ~venv in
  match Hmn_mapping.Problem.obviously_infeasible problem with
  | Some reason ->
      Rejected { stage = "screen"; reason; elapsed_s = 0.; tries = 0; detail = None }
  | None -> (
      let outcome = policy.Mapper.run ~rng problem in
      match outcome.result with
      | Ok mapping ->
          Admitted { mapping; elapsed_s = outcome.elapsed_s; tries = outcome.tries }
      | Error f ->
          Rejected
            {
              stage = f.stage;
              reason = f.reason;
              elapsed_s = outcome.elapsed_s;
              tries = outcome.tries;
              detail = f.detail;
            })

let work ~venv ~tries =
  1 + (tries * (Venv.n_guests venv + (2 * Venv.n_vlinks venv)))

(* ---- rejection-cause classification ----

   Everything below judges against the residual cluster as the request
   first saw it (before any of the request's own reservations), which
   makes the verdict independently re-derivable: the validator's
   [Hmn_validate.Decision] implements the same semantics over the raw
   graph and the service compares the two. *)

(* The request's most memory-demanding guest (ties: storage, then the
   lower index) — the probe for candidate counting. *)
let probe_guest venv =
  let best = ref 0 in
  for g = 1 to Venv.n_guests venv - 1 do
    let d = Venv.demand venv g and b = Venv.demand venv !best in
    if
      d.Resources.mem_mb > b.Resources.mem_mb
      || (d.Resources.mem_mb = b.Resources.mem_mb
         && d.Resources.stor_gb > b.Resources.stor_gb)
    then best := g
  done;
  !best

let fitting_hosts residual (d : Resources.t) =
  Array.fold_left
    (fun acc h ->
      if Resources.fits_mem_stor ~demand:d ~avail:(Cluster.capacity residual h)
      then acc + 1
      else acc)
    0 (Cluster.host_ids residual)

let candidate_hosts ~residual ~venv =
  fitting_hosts residual (Venv.demand venv (probe_guest venv))

(* Hosting-stage resource attribution for one guest. When the guest
   fits nowhere, the resource that locks it out of more hosts is
   binding; when it still fits somewhere (the mapper died packing other
   guests), the aggregate-scarcer resource is binding. CPU is never a
   gate in this model (Resources.fits_mem_stor), so [Journal.Cpu] is
   reserved. *)
let classify_hosting ~residual ~venv ~guest =
  let d = Venv.demand venv guest in
  let hosts = Cluster.host_ids residual in
  let count f = Array.fold_left (fun acc h -> if f h then acc + 1 else acc) 0 hosts in
  let mem_fits =
    count (fun h ->
        d.Resources.mem_mb <= (Cluster.capacity residual h).Resources.mem_mb)
  in
  let stor_fits =
    count (fun h ->
        d.Resources.stor_gb <= (Cluster.capacity residual h).Resources.stor_gb)
  in
  let both = fitting_hosts residual d in
  if both = 0 then begin
    let resource =
      if mem_fits = 0 then Journal.Mem
      else if stor_fits = 0 then Journal.Stor
      else if mem_fits <= stor_fits then Journal.Mem
      else Journal.Stor
    in
    let binding =
      Printf.sprintf
        "guest %d (%.0f MB, %.1f GB) fits no host: mem fits %d, stor fits %d"
        guest d.Resources.mem_mb d.Resources.stor_gb mem_fits stor_fits
    in
    (resource, binding)
  end
  else begin
    let total_res =
      Array.fold_left
        (fun acc h -> Resources.add acc (Cluster.capacity residual h))
        Resources.zero hosts
    in
    let total_dem = Venv.total_demand venv in
    let ratio dem cap = if cap <= 0. then Float.infinity else dem /. cap in
    let rm = ratio total_dem.Resources.mem_mb total_res.Resources.mem_mb in
    let rs = ratio total_dem.Resources.stor_gb total_res.Resources.stor_gb in
    let resource = if rm >= rs then Journal.Mem else Journal.Stor in
    let binding =
      Printf.sprintf
        "packing: guest %d fits %d hosts but placement exhausted them \
         (aggregate mem %.2f, stor %.2f of residual)"
        guest both rm rs
    in
    (resource, binding)
  end

(* The guest hardest to place — fewest jointly fitting hosts, ties to
   the larger memory demand then the lower index. Used when the failed
   stage did not identify the guest. *)
let hardest_guest ~residual ~venv =
  let best = ref 0 in
  let best_fit = ref max_int in
  let best_mem = ref neg_infinity in
  for g = 0 to Venv.n_guests venv - 1 do
    let d = Venv.demand venv g in
    let fit = fitting_hosts residual d in
    if fit < !best_fit || (fit = !best_fit && d.Resources.mem_mb > !best_mem)
    then begin
      best := g;
      best_fit := fit;
      best_mem := d.Resources.mem_mb
    end
  done;
  !best

(* Bandwidth-vs-latency attribution for an unroutable vlink: Dijkstra
   over edges with enough residual bandwidth is simultaneously a
   reachability check and the minimum achievable latency. A path that
   exists in the fresh residual but was killed by the request's own
   earlier reservations counts as bandwidth. *)
let classify_networking ~residual ~src ~dst ~bandwidth_mbps ~latency_ms =
  let graph = Cluster.graph residual in
  let n = Graph.n_nodes graph in
  let feasible eid =
    (Cluster.link residual eid).Link.bandwidth_mbps >= bandwidth_mbps
  in
  let dist = Array.make n Float.infinity in
  let visited = Array.make n false in
  dist.(src) <- 0.;
  let continue = ref true in
  while !continue do
    let u = ref (-1) in
    let best = ref Float.infinity in
    for v = 0 to n - 1 do
      if (not visited.(v)) && dist.(v) < !best then begin
        u := v;
        best := dist.(v)
      end
    done;
    if !u < 0 then continue := false
    else begin
      visited.(!u) <- true;
      Graph.iter_adj graph !u (fun ~neighbor ~eid ->
          if feasible eid then begin
            let d = dist.(!u) +. (Cluster.link residual eid).Link.latency_ms in
            if d < dist.(neighbor) then dist.(neighbor) <- d
          end)
    end
  done;
  if dist.(dst) = Float.infinity then
    ( Journal.Bandwidth,
      Printf.sprintf "no path with %.3f Mbps free between hosts %d and %d"
        bandwidth_mbps src dst )
  else if dist.(dst) > latency_ms then
    ( Journal.Latency,
      Printf.sprintf
        "best feasible path %.1f ms exceeds the %.1f ms bound (hosts %d -> %d)"
        dist.(dst) latency_ms src dst )
  else
    ( Journal.Bandwidth,
      Printf.sprintf
        "feasible in the fresh residual (%.1f ms <= %.1f ms); the request's \
         own reservations exhausted bandwidth"
        dist.(dst) latency_ms )

type explanation = {
  cause : Journal.cause;
  binding : string;
  detail : Journal.detail;
}

let networking_stages = [ "networking"; "dfs-routing" ]

let explain ~residual ~venv ~stage ~reason ~detail =
  match stage with
  | "screen" -> (
      let problem = Hmn_mapping.Problem.make ~cluster:residual ~venv in
      match Hmn_mapping.Problem.obviously_infeasible_cause problem with
      | Some (cause, msg) ->
          let screen =
            match cause with
            | Hmn_mapping.Problem.Aggregate_mem -> Journal.Agg_mem
            | Hmn_mapping.Problem.Aggregate_stor -> Journal.Agg_stor
            | Hmn_mapping.Problem.Disconnected -> Journal.Disconnected
          in
          {
            cause = Journal.Screened screen;
            binding = msg;
            detail = Journal.No_detail;
          }
      | None ->
          (* cannot happen: the stage only reports "screen" when the
             screen fired; fall back to the raw reason *)
          {
            cause = Journal.Screened Journal.Agg_mem;
            binding = reason;
            detail = Journal.No_detail;
          })
  | _ -> (
      match detail with
      | Some (Mapper.Unplaceable_guest { guest }) ->
          let resource, binding = classify_hosting ~residual ~venv ~guest in
          { cause = Journal.Hosting resource; binding; detail = Journal.Guest guest }
      | Some
          (Mapper.Unroutable_vlink
             { vlink; src_host; dst_host; bandwidth_mbps; latency_ms }) ->
          let net, binding =
            classify_networking ~residual ~src:src_host ~dst:dst_host
              ~bandwidth_mbps ~latency_ms
          in
          {
            cause = Journal.Networking net;
            binding;
            detail =
              Journal.Vlink
                { vlink; src_host; dst_host; bandwidth_mbps; latency_ms };
          }
      | None ->
          if List.mem stage networking_stages then
            (* the stage failed routing without naming the vlink (e.g. a
               reservation bug surfaced as an assign error): attributed
               to bandwidth by convention, mirrored by the validator *)
            {
              cause = Journal.Networking Journal.Bandwidth;
              binding = reason;
              detail = Journal.No_detail;
            }
          else begin
            let guest = hardest_guest ~residual ~venv in
            let resource, binding = classify_hosting ~residual ~venv ~guest in
            {
              cause = Journal.Hosting resource;
              binding;
              detail = Journal.Guest guest;
            }
          end)

let find_policy ?max_tries name =
  match Hmn_core.Registry.find ?max_tries name with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown policy %S (available: %s)" name
           (String.concat ", " (Hmn_core.Registry.names ())))
