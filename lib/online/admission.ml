module Mapper = Hmn_core.Mapper

type verdict =
  | Admitted of Hmn_mapping.Mapping.t * float
  | Rejected of { stage : string; reason : string; elapsed_s : float }

let try_admit ~occupancy ~policy ~venv ~rng =
  let residual = Occupancy.residual_cluster occupancy in
  let problem = Hmn_mapping.Problem.make ~cluster:residual ~venv in
  match Hmn_mapping.Problem.obviously_infeasible problem with
  | Some reason -> Rejected { stage = "screen"; reason; elapsed_s = 0. }
  | None -> (
      let outcome = policy.Mapper.run ~rng problem in
      match outcome.result with
      | Ok m -> Admitted (m, outcome.elapsed_s)
      | Error f ->
          Rejected
            { stage = f.stage; reason = f.reason; elapsed_s = outcome.elapsed_s })

let find_policy ?max_tries name =
  match Hmn_core.Registry.find ?max_tries name with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown policy %S (available: %s)" name
           (String.concat ", " (Hmn_core.Registry.names ())))
