module Problem = Hmn_mapping.Problem
module Placement = Hmn_mapping.Placement
module Link_map = Hmn_mapping.Link_map
module Mapping = Hmn_mapping.Mapping
module Incremental = Hmn_core.Incremental

type config = {
  interval_s : float;
  trigger : float;
  max_moves_per_round : int;
}

let default = { interval_s = 120.; trigger = 1.0; max_moves_per_round = 4 }

(* Rebuild a tenant's mapping on the residual cluster that excludes the
   tenant itself. Feasibility is an invariant (the tenant's demands are
   part of the usage that was subtracted out), so any failure here is a
   bookkeeping bug and fails loudly. *)
let replay occupancy (tn : Tenant.t) =
  let cluster = Occupancy.residual_cluster ~exclude:tn.id occupancy in
  let problem = Problem.make ~cluster ~venv:tn.venv in
  let placement = Placement.create problem in
  Array.iteri
    (fun g h ->
      match Placement.assign placement ~guest:g ~host:h with
      | Ok () -> ()
      | Error e ->
          failwith
            (Printf.sprintf "Defrag.replay: tenant %d guest %d: %s" tn.id g e))
    tn.hosts;
  let link_map = Link_map.create problem in
  Array.iteri
    (fun v p ->
      match Link_map.assign link_map ~vlink:v p with
      | Ok () -> ()
      | Error e ->
          failwith
            (Printf.sprintf "Defrag.replay: tenant %d vlink %d: %s" tn.id v e))
    tn.paths;
  Mapping.make ~placement ~link_map

let round ?(on_move = fun (_ : int) -> ()) ~occupancy ~threshold ~max_moves () =
  let moves = ref 0 in
  let progress = ref true in
  while !progress && !moves < max_moves && Occupancy.lbf occupancy > threshold
  do
    progress := false;
    let ids =
      List.map (fun (tn : Tenant.t) -> tn.id) (Occupancy.tenants occupancy)
    in
    List.iter
      (fun id ->
        if !moves < max_moves && Occupancy.lbf occupancy > threshold then
          match Occupancy.find occupancy ~id with
          | None -> ()
          | Some tn ->
              let mapping = replay occupancy tn in
              let inc =
                Incremental.create
                  ~latency_tables:(Occupancy.latency_tables occupancy)
                  mapping
              in
              (* one move at a time so the validation hook sees every
                 intermediate state *)
              let n = Incremental.rebalance ~max_moves:1 inc in
              if n > 0 then begin
                let tn' =
                  Tenant.of_mapping ~id ~arrived_at:tn.arrived_at
                    ~holding_s:tn.holding_s (Incremental.mapping inc)
                in
                Occupancy.replace occupancy tn';
                moves := !moves + n;
                progress := true;
                on_move id
              end)
      ids
  done;
  !moves
