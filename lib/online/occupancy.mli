(** The live state of the shared cluster: which tenants are resident and
    how much of every node and link they collectively consume.

    Bookkeeping is incremental — admission adds each tenant's raw
    demands, departure subtracts exactly the same values — and entirely
    separate from the mapping library's own residual structures, so
    {!Hmn_validate.Validator.check_tenants} (reachable via {!validate})
    is a genuinely independent oracle over it. *)

type t

val create : Hmn_testbed.Cluster.t -> t
(** An empty occupancy. Precomputes the Dijkstra latency tables once;
    every residual cluster derived from this occupancy shares them. *)

val cluster : t -> Hmn_testbed.Cluster.t
val latency_tables : t -> Hmn_routing.Latency_table.t

val tenants : t -> Tenant.t list
(** Resident tenants, ascending id — the order is part of the contract
    (session rendering iterates it) and is independent of the order in
    which tenants arrived, departed, or were replaced. Backed by an
    id-indexed store with a sorted-id cache: O(k log k) after a
    membership change, O(k) when the residency set is unchanged. *)

val n_tenants : t -> int
(** O(1). *)

val n_guests : t -> int

val find : t -> id:int -> Tenant.t option
(** O(1). *)

val admit : t -> Tenant.t -> unit
(** Reserves the tenant's memory, storage, CPU and path bandwidth.
    Raises [Invalid_argument] when the id is already resident or the
    reservation would exceed any capacity beyond float tolerance — the
    latter is a service bug (admission maps against the residual
    cluster), not an expected outcome, and leaves the state unchanged. *)

val release : t -> id:int -> Tenant.t
(** Returns every resource the tenant held — exactly the values
    {!admit} reserved — and removes it. Raises [Invalid_argument] on an
    unknown id or if the subtraction drives any total negative beyond
    tolerance (an accounting bug). *)

val replace : t -> Tenant.t -> unit
(** [release] the resident tenant with the same id, then [admit] the
    replacement — the defragmentation commit. *)

val is_empty : t -> bool
(** No tenants and every usage total within float dust of zero. *)

val residual_cluster : ?exclude:int -> t -> Hmn_testbed.Cluster.t
(** The cluster as the next request sees it: same graph structure and
    node/edge ids, same latencies, capacities net of current usage
    (residual CPU clamped at 0, residual bandwidth at a negligible
    positive floor). [exclude] additionally returns the excluded
    tenant's own usage — the defragmentation replay view, with a tiny
    capacity slack so the tenant is guaranteed to fit back. *)

val residual_cpu : t -> host:int -> float
(** Capacity MIPS minus resident demand; may be negative (CPU is
    balanced, not gated). *)

val lbf : t -> float
(** Population standard deviation of residual CPU across hosts — Eq. 10
    over the whole multi-tenant state. *)

val fragmentation : t -> float
(** Population standard deviation across hosts of the free-memory
    fraction: 0 when every host is equally full, high when free memory
    is concentrated on a few hosts. *)

val mem_utilization : t -> float
(** Aggregate resident memory over aggregate host memory. *)

val bw_utilization : t -> float
(** Mean used/capacity over physical links with positive capacity. *)

val bw_dispersion : t -> float
(** Coefficient of variation (population std over mean) of residual
    bandwidth across physical links — 0 when every link is equally
    loaded, growing as reservations concentrate; 0 on an edgeless
    cluster or when no bandwidth remains anywhere. *)

val rack_mem_utilization : t -> float array
(** Per-rack resident-memory over capacity, indexed by dense rack id;
    [[||]] when the cluster is not rack-labelled. *)

val stated_bw_available : t -> int -> float
(** The occupancy's own belief of an edge's remaining bandwidth, for
    cross-checking against the validator's reconstruction. *)

val validate : t -> Hmn_validate.Validator.multi_report
(** Full independent validation of the composed state, including the
    stated-vs-derived cross-checks. *)
