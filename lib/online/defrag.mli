(** Background defragmentation: when churn has skewed the residual-CPU
    distribution past a threshold, migrate guests of resident tenants —
    the paper's Migration stage applied to the live multi-tenant
    cluster.

    Each candidate tenant is {e replayed} onto the residual cluster that
    excludes the tenant itself (guaranteed feasible: its own usage was
    part of what was subtracted), then {!Hmn_core.Incremental.rebalance}
    proposes one move at a time; each committed move swaps a fresh
    {!Tenant.t} into the occupancy and fires the validation hook. *)

type config = {
  interval_s : float;  (** simulated seconds between checks *)
  trigger : float;
      (** run a round when the occupied LBF exceeds [trigger] times the
          {e empty} cluster's LBF (heterogeneous hosts give the empty
          cluster a nonzero Eq. 10 value — the natural baseline) *)
  max_moves_per_round : int;
}

val default : config
(** 120 s interval, trigger 1.0, at most 4 moves per round. *)

val round :
  ?on_move:(int -> unit) ->
  occupancy:Occupancy.t ->
  threshold:float ->
  max_moves:int ->
  unit ->
  int
(** One defragmentation round: sweeps resident tenants (ascending id),
    replaying each and committing single rebalance moves, until the
    occupancy's LBF drops to [threshold] (an {e absolute} Eq. 10 value),
    [max_moves] is reached, or a full sweep makes no progress. Returns
    the number of moves committed. [on_move] fires after each commit
    with the moved tenant's id — the service hangs per-move validation
    and journaling on it. *)
