module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Graph = Hmn_graph.Graph
module Venv = Hmn_vnet.Virtual_env
module Path = Hmn_routing.Path

type t = {
  cluster : Cluster.t;
  latency_tables : Hmn_routing.Latency_table.t;
  mem_used : float array;  (* per node, MB *)
  stor_used : float array;  (* per node, GB *)
  mips_used : float array;  (* per node, MIPS *)
  bw_used : float array;  (* per physical edge, Mbps *)
  (* id-indexed store: admit/release/find are O(1) in the tenant count.
     Iteration order (ascending id) is recovered on demand through a
     sorted-id cache, invalidated by every membership change. *)
  by_id : (int, Tenant.t) Hashtbl.t;
  mutable sorted_ids : int array;
  mutable sorted_dirty : bool;
  mutable n_guests : int;
  mutable n_vlinks : int;
}

let capacity_eps = 1e-6

let create cluster =
  let n = Cluster.n_nodes cluster in
  let ne = Graph.n_edges (Cluster.graph cluster) in
  let latency_tables = Hmn_routing.Latency_table.create cluster in
  (* precomputed once: every residual cluster the service builds shares
     this cache (latencies never change, only bandwidths) *)
  Hmn_routing.Latency_table.precompute latency_tables;
  {
    cluster;
    latency_tables;
    mem_used = Array.make n 0.;
    stor_used = Array.make n 0.;
    mips_used = Array.make n 0.;
    bw_used = Array.make ne 0.;
    by_id = Hashtbl.create 64;
    sorted_ids = [||];
    sorted_dirty = false;
    n_guests = 0;
    n_vlinks = 0;
  }

let cluster t = t.cluster
let latency_tables t = t.latency_tables

let sorted_ids t =
  if t.sorted_dirty then begin
    let ids = Array.make (Hashtbl.length t.by_id) 0 in
    let i = ref 0 in
    Hashtbl.iter
      (fun id _ ->
        ids.(!i) <- id;
        incr i)
      t.by_id;
    Array.sort compare ids;
    t.sorted_ids <- ids;
    t.sorted_dirty <- false
  end;
  t.sorted_ids

let tenants t =
  Array.to_list (Array.map (fun id -> Hashtbl.find t.by_id id) (sorted_ids t))

let n_tenants t = Hashtbl.length t.by_id
let n_guests t = t.n_guests
let find t ~id = Hashtbl.find_opt t.by_id id

(* Per-edge float slack for the bandwidth guard, matching the
   validator's aggregate tolerance: each tenant path reservation drifts
   by at most [Residual.tolerance]. *)
let bw_eps t =
  Hmn_routing.Residual.tolerance *. float_of_int (t.n_vlinks + 1)

let iter_usage (tn : Tenant.t) ~on_node ~on_edge =
  let venv = tn.venv in
  for g = 0 to Venv.n_guests venv - 1 do
    on_node tn.hosts.(g) (Venv.demand venv g)
  done;
  for v = 0 to Venv.n_vlinks venv - 1 do
    let bw = (Venv.vlink venv v).Hmn_vnet.Vlink.bandwidth_mbps in
    Path.iter_edges tn.paths.(v) (fun eid -> on_edge eid bw)
  done

let apply t ~sign (tn : Tenant.t) =
  iter_usage tn
    ~on_node:(fun nid (d : Resources.t) ->
      t.mem_used.(nid) <- t.mem_used.(nid) +. (sign *. d.mem_mb);
      t.stor_used.(nid) <- t.stor_used.(nid) +. (sign *. d.stor_gb);
      t.mips_used.(nid) <- t.mips_used.(nid) +. (sign *. d.mips))
    ~on_edge:(fun eid bw -> t.bw_used.(eid) <- t.bw_used.(eid) +. (sign *. bw))

(* Over-capacity scan of the running totals. Only an internal-bug guard:
   admission maps against the residual cluster, so a violation here
   means the service's bookkeeping (not the tenant) is wrong. *)
let first_violation t =
  let viol = ref None in
  let n = Cluster.n_nodes t.cluster in
  for nid = 0 to n - 1 do
    if !viol = None && Cluster.is_host t.cluster nid then begin
      let cap = Cluster.capacity t.cluster nid in
      if t.mem_used.(nid) > cap.mem_mb +. capacity_eps then
        viol := Some (Printf.sprintf "node %d memory over capacity" nid)
      else if t.stor_used.(nid) > cap.stor_gb +. capacity_eps then
        viol := Some (Printf.sprintf "node %d storage over capacity" nid)
    end
  done;
  let eps = bw_eps t in
  for eid = 0 to Array.length t.bw_used - 1 do
    if !viol = None then begin
      let cap = (Cluster.link t.cluster eid).Link.bandwidth_mbps in
      if t.bw_used.(eid) > cap +. eps then
        viol := Some (Printf.sprintf "edge %d bandwidth over capacity" eid)
    end
  done;
  !viol

let admit t (tn : Tenant.t) =
  (match find t ~id:tn.id with
  | Some _ ->
      invalid_arg
        (Printf.sprintf "Occupancy.admit: tenant %d already resident" tn.id)
  | None -> ());
  apply t ~sign:1. tn;
  (match first_violation t with
  | Some reason ->
      apply t ~sign:(-1.) tn;
      invalid_arg ("Occupancy.admit: " ^ reason)
  | None -> ());
  Hashtbl.replace t.by_id tn.id tn;
  t.sorted_dirty <- true;
  t.n_guests <- t.n_guests + Tenant.n_guests tn;
  t.n_vlinks <- t.n_vlinks + Tenant.n_vlinks tn

let release t ~id =
  match find t ~id with
  | None ->
      invalid_arg (Printf.sprintf "Occupancy.release: no tenant %d" id)
  | Some tn ->
      apply t ~sign:(-1.) tn;
      (* exact-release discipline: subtracting what was added can leave
         only sub-tolerance float dust, which we sweep to zero *)
      let sweep a =
        Array.iteri
          (fun i x ->
            if x < 0. then
              if x < -.capacity_eps then
                invalid_arg
                  (Printf.sprintf
                     "Occupancy.release: tenant %d usage underflow (%g)" id x)
              else a.(i) <- 0.)
          a
      in
      sweep t.mem_used;
      sweep t.stor_used;
      sweep t.mips_used;
      sweep t.bw_used;
      Hashtbl.remove t.by_id id;
      t.sorted_dirty <- true;
      t.n_guests <- t.n_guests - Tenant.n_guests tn;
      t.n_vlinks <- t.n_vlinks - Tenant.n_vlinks tn;
      tn

let replace t (tn' : Tenant.t) =
  ignore (release t ~id:tn'.id);
  admit t tn'

let is_empty t =
  Hashtbl.length t.by_id = 0
  && Array.for_all (fun x -> Float.abs x <= capacity_eps) t.mem_used
  && Array.for_all (fun x -> Float.abs x <= capacity_eps) t.stor_used
  && Array.for_all (fun x -> Float.abs x <= capacity_eps) t.mips_used
  && Array.for_all (fun x -> Float.abs x <= capacity_eps) t.bw_used

(* Smallest bandwidth [Link.make] accepts; far below any vlink demand
   (the low-level profile's minimum is 0.087 Mbps), so a saturated edge
   in the residual cluster is effectively unusable, as intended. *)
let min_bandwidth = 1e-9

let residual_cluster ?exclude t =
  let n = Cluster.n_nodes t.cluster in
  let ne = Array.length t.bw_used in
  let own_mem = Array.make n 0. in
  let own_stor = Array.make n 0. in
  let own_mips = Array.make n 0. in
  let own_bw = Array.make ne 0. in
  let slack =
    match exclude with
    | None -> 0.
    | Some id -> (
        match find t ~id with
        | None ->
            invalid_arg
              (Printf.sprintf "Occupancy.residual_cluster: no tenant %d" id)
        | Some tn ->
            iter_usage tn
              ~on_node:(fun nid (d : Resources.t) ->
                own_mem.(nid) <- own_mem.(nid) +. d.mem_mb;
                own_stor.(nid) <- own_stor.(nid) +. d.stor_gb;
                own_mips.(nid) <- own_mips.(nid) +. d.mips)
              ~on_edge:(fun eid bw -> own_bw.(eid) <- own_bw.(eid) +. bw);
            (* absorbs summation-order drift so the excluded tenant is
               guaranteed to fit back into the cluster it came from *)
            1e-9)
  in
  let nodes =
    Array.init n (fun i ->
        let node = Cluster.node t.cluster i in
        if not (Node.can_host node) then node
        else
          let cap = node.Node.capacity in
          let mem =
            Float.max 0. (cap.mem_mb -. (t.mem_used.(i) -. own_mem.(i)) +. slack)
          in
          let stor =
            Float.max 0.
              (cap.stor_gb -. (t.stor_used.(i) -. own_stor.(i)) +. slack)
          in
          (* residual CPU clamps at 0: Resources.make rejects negatives,
             and a CPU-overcommitted host should attract nothing *)
          let mips =
            Float.max 0. (cap.mips -. (t.mips_used.(i) -. own_mips.(i)))
          in
          Node.host ~name:node.Node.name
            ~capacity:(Resources.make ~mips ~mem_mb:mem ~stor_gb:stor))
  in
  let graph =
    Graph.map_labels (Cluster.graph t.cluster) ~f:(fun ~eid (l : Link.t) ->
        let avail = l.bandwidth_mbps -. (t.bw_used.(eid) -. own_bw.(eid)) in
        Link.make
          ~bandwidth_mbps:(Float.max min_bandwidth avail)
          ~latency_ms:l.latency_ms)
  in
  Cluster.create ~nodes ~graph

let residual_cpu t ~host =
  (Cluster.capacity t.cluster host).Resources.mips -. t.mips_used.(host)

let std_over_hosts t ~f =
  let hosts = Cluster.host_ids t.cluster in
  let n = float_of_int (Array.length hosts) in
  let mean =
    Array.fold_left (fun acc h -> acc +. f h) 0. hosts /. n
  in
  let var =
    Array.fold_left
      (fun acc h ->
        let d = f h -. mean in
        acc +. (d *. d))
      0. hosts
    /. n
  in
  sqrt var

let lbf t = std_over_hosts t ~f:(fun h -> residual_cpu t ~host:h)

let fragmentation t =
  std_over_hosts t ~f:(fun h ->
      let cap = (Cluster.capacity t.cluster h).Resources.mem_mb in
      if cap <= 0. then 0.
      else Float.max 0. (cap -. t.mem_used.(h)) /. cap)

let mem_utilization t =
  let hosts = Cluster.host_ids t.cluster in
  let used, cap =
    Array.fold_left
      (fun (u, c) h ->
        (u +. t.mem_used.(h), c +. (Cluster.capacity t.cluster h).Resources.mem_mb))
      (0., 0.) hosts
  in
  if cap <= 0. then 0. else used /. cap

let bw_utilization t =
  let ne = Array.length t.bw_used in
  if ne = 0 then 0.
  else begin
    let acc = ref 0. in
    let counted = ref 0 in
    for eid = 0 to ne - 1 do
      let cap = (Cluster.link t.cluster eid).Link.bandwidth_mbps in
      if cap > 0. then begin
        acc := !acc +. (t.bw_used.(eid) /. cap);
        incr counted
      end
    done;
    if !counted = 0 then 0. else !acc /. float_of_int !counted
  end

let bw_dispersion t =
  let ne = Array.length t.bw_used in
  if ne = 0 then 0.
  else begin
    let n = float_of_int ne in
    let avail eid =
      Float.max 0.
        ((Cluster.link t.cluster eid).Link.bandwidth_mbps -. t.bw_used.(eid))
    in
    let mean = ref 0. in
    for eid = 0 to ne - 1 do
      mean := !mean +. avail eid
    done;
    let mean = !mean /. n in
    if mean <= 0. then 0.
    else begin
      let var = ref 0. in
      for eid = 0 to ne - 1 do
        let d = avail eid -. mean in
        var := !var +. (d *. d)
      done;
      sqrt (!var /. n) /. mean
    end
  end

let rack_mem_utilization t =
  let racks = Cluster.racks t.cluster in
  Array.map
    (fun hosts ->
      let used = ref 0. and cap = ref 0. in
      Array.iter
        (fun h ->
          used := !used +. t.mem_used.(h);
          cap := !cap +. (Cluster.capacity t.cluster h).Resources.mem_mb)
        hosts;
      if !cap <= 0. then 0. else !used /. !cap)
    racks

let stated_bw_available t eid =
  Float.max 0.
    ((Cluster.link t.cluster eid).Link.bandwidth_mbps -. t.bw_used.(eid))

let validate t =
  let tenants = List.map (fun (tn : Tenant.t) -> (tn.id, Tenant.view tn)) (tenants t) in
  Hmn_validate.Validator.check_tenants
    ~stated_bw_available:(stated_bw_available t)
    ~stated_residual_cpu:(fun h -> residual_cpu t ~host:h)
    ~cluster:t.cluster ~tenants ()
