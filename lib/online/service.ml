module Engine = Hmn_simcore.Engine
module Rng = Hmn_rng.Rng
module Dist = Hmn_rng.Dist
module Validator = Hmn_validate.Validator
module Decision = Hmn_validate.Decision
module Mapper = Hmn_core.Mapper
module Journal = Hmn_obs.Journal

type config = {
  seed : int;
  arrival_rate_per_s : float;
  mean_holding_s : float;
  duration_s : float;
  guests_lo : int;
  guests_hi : int;
  density : float;
  profile : Hmn_vnet.Workload.profile;
  scale_frac : float;
  defrag : Defrag.config option;
  defrag_on_reject : bool;
  validate : bool;
}

let default_config =
  {
    seed = 42;
    arrival_rate_per_s = 1. /. 30.;
    mean_holding_s = 600.;
    duration_s = 3600.;
    guests_lo = 4;
    guests_hi = 12;
    density = 0.3;
    profile = Hmn_vnet.Workload.high_level;
    scale_frac = 0.25;
    defrag = Some Defrag.default;
    defrag_on_reject = false;
    validate = false;
  }

type request = {
  req_id : int;
  at : float;
  holding_s : float;
  n_guests : int;
  venv_seed : int;
  mapper_seed : int;
}

(* The whole offered load — arrival instants, sizes, holding times, and
   the seeds that will expand into environments — is drawn up front from
   one stream. It depends only on [config], never on the policy, so
   every policy faces the identical request sequence. *)
let gen_requests config =
  if config.arrival_rate_per_s <= 0. then
    invalid_arg "Service: arrival rate must be positive";
  if config.mean_holding_s <= 0. then
    invalid_arg "Service: mean holding time must be positive";
  if config.guests_lo < 1 || config.guests_hi < config.guests_lo then
    invalid_arg "Service: bad guest-count range";
  let rng = Rng.create config.seed in
  let arrival = Dist.Exponential config.arrival_rate_per_s in
  let holding = Dist.Exponential (1. /. config.mean_holding_s) in
  let rec loop acc id t =
    let t = t +. Dist.draw arrival rng in
    if t > config.duration_s then List.rev acc
    else
      let req =
        {
          req_id = id;
          at = t;
          holding_s = Dist.draw holding rng;
          n_guests = Rng.int_in rng ~lo:config.guests_lo ~hi:config.guests_hi;
          venv_seed = Rng.int rng ~bound:0x3FFFFFFF;
          mapper_seed = Rng.int rng ~bound:0x3FFFFFFF;
        }
      in
      loop (req :: acc) (id + 1) t
  in
  loop [] 0 0.

let env_validate () = Sys.getenv_opt "HMN_VALIDATE" <> None

exception Validation_failed of string

(* Retry seed for the defrag-assisted second attempt: deterministic,
   distinct from the first attempt's stream. *)
let retry_seed seed = seed lxor 0x5bd1e995

let run ?flight ?on_admit ~cluster ~policy config =
  let occ = Occupancy.create cluster in
  let session =
    Session.create ?flight ~policy:policy.Mapper.name ~seed:config.seed occ
  in
  let engine = Engine.create () in
  let requests = gen_requests config in
  let empty_lbf = Occupancy.lbf occ in
  let validating = config.validate || env_validate () in
  let journaling =
    match flight with Some f -> Flight.wants_journal f | None -> false
  in
  let validate_or_die label =
    if validating then begin
      let r = Occupancy.validate occ in
      if not (Validator.multi_ok r) then
        raise
          (Validation_failed
             (Format.asprintf "online state invalid after %s:@\n%a" label
                Validator.pp_multi_report r))
    end
  in
  let journal event =
    match flight with
    | Some f -> Flight.record f ~t_s:(Engine.now engine) ~occupancy:occ event
    | None -> ()
  in
  (* Independent re-derivation of a rejection's cause: the validator's
     Decision module works from the raw residual graph with its own
     search code; any disagreement with the admission-side classifier
     is a service bug and fails the run. *)
  let recheck_cause ~residual ~venv ~stage ~req_id
      (exp : Admission.explanation) ~candidates =
    if validating then begin
      let family = Decision.family_of_stage stage in
      (match Decision.derive ~residual ~venv ~family ~detail:exp.detail with
      | Some derived when derived <> exp.cause ->
          raise
            (Validation_failed
               (Printf.sprintf
                  "request %d: journaled rejection cause %s but the validator \
                   derives %s"
                  req_id
                  (Journal.cause_label exp.cause)
                  (Journal.cause_label derived)))
      | _ -> ());
      let derived_candidates = Decision.candidate_hosts ~residual ~venv in
      if derived_candidates <> candidates then
        raise
          (Validation_failed
             (Printf.sprintf
                "request %d: journaled %d candidate hosts but the validator \
                 counts %d"
                req_id candidates derived_candidates))
    end
  in
  let defrag_round () =
    match config.defrag with
    | None -> 0
    | Some d ->
        let threshold = d.trigger *. empty_lbf in
        Defrag.round
          ~on_move:(fun tenant ->
            journal (Journal.Defrag_move { tenant });
            validate_or_die "a defrag move")
          ~occupancy:occ ~threshold ~max_moves:d.max_moves_per_round ()
  in
  let on_arrival req e =
    let now = Engine.now e in
    Session.tick session ~now;
    let venv =
      Hmn_vnet.Venv_gen.generate
        ~scale_to_fit:(cluster, config.scale_frac)
        ~profile:config.profile ~n:req.n_guests ~density:config.density
        ~rng:(Rng.create req.venv_seed) ()
    in
    let admit_tenant ~mapping ~elapsed_s ~work ~candidates ~defrag_assisted =
      let tenant =
        Tenant.of_mapping ~id:req.req_id ~arrived_at:now
          ~holding_s:req.holding_s mapping
      in
      Occupancy.admit occ tenant;
      (match on_admit with Some f -> f tenant | None -> ());
      Session.observe_arrival session ~admitted:true ~admit_seconds:elapsed_s
        ~work;
      journal
        (Journal.Decision
           {
             req_id = req.req_id;
             n_guests = Hmn_vnet.Virtual_env.n_guests venv;
             n_vlinks = Hmn_vnet.Virtual_env.n_vlinks venv;
             candidate_hosts = candidates;
             work;
             decision = Journal.Admit { defrag_assisted };
           });
      Engine.schedule e ~delay:req.holding_s (fun e' ->
          Session.tick session ~now:(Engine.now e');
          ignore (Occupancy.release occ ~id:req.req_id);
          Session.observe_departure session;
          journal (Journal.Departure { tenant = req.req_id });
          validate_or_die
            (Printf.sprintf "the departure of tenant %d" req.req_id));
      validate_or_die (Printf.sprintf "the arrival of tenant %d" req.req_id)
    in
    let reject ~residual ~stage ~reason ~detail ~elapsed_s ~work ~candidates =
      Session.observe_arrival session ~admitted:false ~admit_seconds:elapsed_s
        ~work;
      if journaling || validating then begin
        let exp = Admission.explain ~residual ~venv ~stage ~reason ~detail in
        recheck_cause ~residual ~venv ~stage ~req_id:req.req_id exp
          ~candidates;
        journal
          (Journal.Decision
             {
               req_id = req.req_id;
               n_guests = Hmn_vnet.Virtual_env.n_guests venv;
               n_vlinks = Hmn_vnet.Virtual_env.n_vlinks venv;
               candidate_hosts = candidates;
               work;
               decision =
                 Journal.Reject
                   {
                     cause = exp.cause;
                     binding = exp.binding;
                     detail = exp.detail;
                   };
             })
      end
    in
    let residual = Occupancy.residual_cluster occ in
    let candidates =
      if journaling || validating then
        Admission.candidate_hosts ~residual ~venv
      else 0
    in
    match
      Admission.try_admit ~residual ~occupancy:occ ~policy ~venv
        ~rng:(Rng.create req.mapper_seed) ()
    with
    | Admitted { mapping; elapsed_s; tries } ->
        admit_tenant ~mapping ~elapsed_s
          ~work:(Admission.work ~venv ~tries)
          ~candidates ~defrag_assisted:false
    | Rejected r0 ->
        let w0 = Admission.work ~venv ~tries:r0.tries in
        (* defrag-assisted admission: compact the cluster once, then
           re-try the same request against the new residual *)
        let moves =
          if
            config.defrag_on_reject
            && config.defrag <> None
            && r0.stage <> "screen"
          then defrag_round ()
          else 0
        in
        if moves > 0 then Session.observe_defrag session ~moves;
        let retried = moves > 0 in
        if not retried then
          reject ~residual ~stage:r0.stage ~reason:r0.reason ~detail:r0.detail
            ~elapsed_s:r0.elapsed_s ~work:w0 ~candidates
        else begin
          let residual2 = Occupancy.residual_cluster occ in
          let candidates2 =
            if journaling || validating then
              Admission.candidate_hosts ~residual:residual2 ~venv
            else 0
          in
          match
            Admission.try_admit ~residual:residual2 ~occupancy:occ ~policy
              ~venv
              ~rng:(Rng.create (retry_seed req.mapper_seed))
              ()
          with
          | Admitted { mapping; elapsed_s; tries } ->
              admit_tenant ~mapping
                ~elapsed_s:(r0.elapsed_s +. elapsed_s)
                ~work:(w0 + Admission.work ~venv ~tries)
                ~candidates:candidates2 ~defrag_assisted:true
          | Rejected r1 ->
              reject ~residual:residual2 ~stage:r1.stage ~reason:r1.reason
                ~detail:r1.detail
                ~elapsed_s:(r0.elapsed_s +. r1.elapsed_s)
                ~work:(w0 + Admission.work ~venv ~tries:r1.tries)
                ~candidates:candidates2
        end
  in
  List.iter (fun req -> Engine.schedule_at engine ~time:req.at (on_arrival req))
    requests;
  (match config.defrag with
  | None -> ()
  | Some d ->
      if d.interval_s <= 0. then
        invalid_arg "Service: defrag interval must be positive";
      let threshold = d.trigger *. empty_lbf in
      let rec tick_defrag e =
        let now = Engine.now e in
        Session.tick session ~now;
        if Occupancy.lbf occ > threshold then begin
          let moves = defrag_round () in
          Session.observe_defrag session ~moves
        end;
        (* stop rescheduling past the arrival horizon: after it only
           departures remain, and rebalancing a draining cluster churns
           migrations nobody will benefit from *)
        if now +. d.interval_s <= config.duration_s then
          Engine.schedule e ~delay:d.interval_s tick_defrag
      in
      if d.interval_s <= config.duration_s then
        Engine.schedule_at engine ~time:d.interval_s tick_defrag);
  Engine.run engine;
  (* the queue drained: all departures fired, so the cluster must be
     exactly empty — a cheap conservation check that runs even without
     HMN_VALIDATE *)
  if not (Occupancy.is_empty occ) then
    raise
      (Validation_failed
         "cluster not empty after all tenants departed (leaked reservations)");
  Session.finalize session ~now:(Float.max (Engine.now engine) config.duration_s)
