module Engine = Hmn_simcore.Engine
module Rng = Hmn_rng.Rng
module Dist = Hmn_rng.Dist
module Validator = Hmn_validate.Validator
module Mapper = Hmn_core.Mapper

type config = {
  seed : int;
  arrival_rate_per_s : float;
  mean_holding_s : float;
  duration_s : float;
  guests_lo : int;
  guests_hi : int;
  density : float;
  profile : Hmn_vnet.Workload.profile;
  scale_frac : float;
  defrag : Defrag.config option;
  validate : bool;
}

let default_config =
  {
    seed = 42;
    arrival_rate_per_s = 1. /. 30.;
    mean_holding_s = 600.;
    duration_s = 3600.;
    guests_lo = 4;
    guests_hi = 12;
    density = 0.3;
    profile = Hmn_vnet.Workload.high_level;
    scale_frac = 0.25;
    defrag = Some Defrag.default;
    validate = false;
  }

type request = {
  req_id : int;
  at : float;
  holding_s : float;
  n_guests : int;
  venv_seed : int;
  mapper_seed : int;
}

(* The whole offered load — arrival instants, sizes, holding times, and
   the seeds that will expand into environments — is drawn up front from
   one stream. It depends only on [config], never on the policy, so
   every policy faces the identical request sequence. *)
let gen_requests config =
  if config.arrival_rate_per_s <= 0. then
    invalid_arg "Service: arrival rate must be positive";
  if config.mean_holding_s <= 0. then
    invalid_arg "Service: mean holding time must be positive";
  if config.guests_lo < 1 || config.guests_hi < config.guests_lo then
    invalid_arg "Service: bad guest-count range";
  let rng = Rng.create config.seed in
  let arrival = Dist.Exponential config.arrival_rate_per_s in
  let holding = Dist.Exponential (1. /. config.mean_holding_s) in
  let rec loop acc id t =
    let t = t +. Dist.draw arrival rng in
    if t > config.duration_s then List.rev acc
    else
      let req =
        {
          req_id = id;
          at = t;
          holding_s = Dist.draw holding rng;
          n_guests = Rng.int_in rng ~lo:config.guests_lo ~hi:config.guests_hi;
          venv_seed = Rng.int rng ~bound:0x3FFFFFFF;
          mapper_seed = Rng.int rng ~bound:0x3FFFFFFF;
        }
      in
      loop (req :: acc) (id + 1) t
  in
  loop [] 0 0.

let env_validate () = Sys.getenv_opt "HMN_VALIDATE" <> None

exception Validation_failed of string

let run ~cluster ~policy config =
  let occ = Occupancy.create cluster in
  let session = Session.create ~policy:policy.Mapper.name ~seed:config.seed occ in
  let engine = Engine.create () in
  let requests = gen_requests config in
  let empty_lbf = Occupancy.lbf occ in
  let validating = config.validate || env_validate () in
  let validate_or_die label =
    if validating then begin
      let r = Occupancy.validate occ in
      if not (Validator.multi_ok r) then
        raise
          (Validation_failed
             (Format.asprintf "online state invalid after %s:@\n%a" label
                Validator.pp_multi_report r))
    end
  in
  let on_arrival req e =
    let now = Engine.now e in
    Session.tick session ~now;
    let venv =
      Hmn_vnet.Venv_gen.generate
        ~scale_to_fit:(cluster, config.scale_frac)
        ~profile:config.profile ~n:req.n_guests ~density:config.density
        ~rng:(Rng.create req.venv_seed) ()
    in
    match
      Admission.try_admit ~occupancy:occ ~policy ~venv
        ~rng:(Rng.create req.mapper_seed)
    with
    | Admitted (m, elapsed) ->
        let tenant =
          Tenant.of_mapping ~id:req.req_id ~arrived_at:now
            ~holding_s:req.holding_s m
        in
        Occupancy.admit occ tenant;
        Session.observe_arrival session ~admitted:true ~admit_seconds:elapsed;
        Engine.schedule e ~delay:req.holding_s (fun e' ->
            Session.tick session ~now:(Engine.now e');
            ignore (Occupancy.release occ ~id:req.req_id);
            Session.observe_departure session;
            validate_or_die
              (Printf.sprintf "the departure of tenant %d" req.req_id));
        validate_or_die (Printf.sprintf "the arrival of tenant %d" req.req_id)
    | Rejected { elapsed_s; _ } ->
        Session.observe_arrival session ~admitted:false ~admit_seconds:elapsed_s
  in
  List.iter (fun req -> Engine.schedule_at engine ~time:req.at (on_arrival req))
    requests;
  (match config.defrag with
  | None -> ()
  | Some d ->
      if d.interval_s <= 0. then
        invalid_arg "Service: defrag interval must be positive";
      let threshold = d.trigger *. empty_lbf in
      let rec tick_defrag e =
        let now = Engine.now e in
        Session.tick session ~now;
        if Occupancy.lbf occ > threshold then begin
          let moves =
            Defrag.round
              ~on_move:(fun () -> validate_or_die "a defrag move")
              ~occupancy:occ ~threshold ~max_moves:d.max_moves_per_round ()
          in
          Session.observe_defrag session ~moves
        end;
        (* stop rescheduling past the arrival horizon: after it only
           departures remain, and rebalancing a draining cluster churns
           migrations nobody will benefit from *)
        if now +. d.interval_s <= config.duration_s then
          Engine.schedule e ~delay:d.interval_s tick_defrag
      in
      if d.interval_s <= config.duration_s then
        Engine.schedule_at engine ~time:d.interval_s tick_defrag);
  Engine.run engine;
  (* the queue drained: all departures fired, so the cluster must be
     exactly empty — a cheap conservation check that runs even without
     HMN_VALIDATE *)
  if not (Occupancy.is_empty occ) then
    raise
      (Validation_failed
         "cluster not empty after all tenants departed (leaked reservations)");
  Session.finalize session ~now:(Float.max (Engine.now engine) config.duration_s)
