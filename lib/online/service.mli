(** The online testbed service: a seeded stream of virtual-environment
    requests — Poisson arrivals, exponential holding times, sizes drawn
    by {!Hmn_vnet.Venv_gen} — driven through the discrete-event engine
    against one shared cluster, with admission control on arrival, exact
    release on departure, and optional periodic defragmentation.

    Reproducibility: the request stream (arrival instants, holding
    times, guest counts, per-request generator and mapper seeds) is
    pre-drawn from [config.seed] alone, so every admission policy faces
    the identical offered load, and a fixed [(cluster, config)] pair
    yields a byte-identical {!Session.summary} rendering. Environments
    are scaled against the {e full} cluster, keeping the offered load
    independent of the occupancy trajectory. *)

type config = {
  seed : int;
  arrival_rate_per_s : float;  (** Poisson arrival rate *)
  mean_holding_s : float;  (** exponential residency mean *)
  duration_s : float;  (** arrivals stop after this instant *)
  guests_lo : int;  (** tenant size range, uniform inclusive *)
  guests_hi : int;
  density : float;  (** virtual-topology edge density *)
  profile : Hmn_vnet.Workload.profile;
  scale_frac : float;
      (** per-tenant {!Hmn_vnet.Venv_gen.generate} calibration fraction,
          applied against the full cluster *)
  defrag : Defrag.config option;  (** [None] disables defragmentation *)
  defrag_on_reject : bool;
      (** defrag-assisted admission: when a request is rejected past the
          screen, run one defragmentation round (same trigger/threshold
          as the periodic cadence) and, if it moved anything, re-try the
          request once against the compacted residual; a success is
          journaled as [admit-defrag]. Off by default — it changes the
          session trajectory. *)
  validate : bool;
      (** validate the full multi-tenant state after every arrival,
          departure, and defrag move; also forced on by the
          [HMN_VALIDATE] environment variable *)
}

val default_config : config
(** Seed 42; one arrival per 30 s for one simulated hour, mean holding
    10 min; 4–12 guests at density 0.3, high-level profile scaled to
    25% of the cluster; default defragmentation; defrag-on-reject and
    validation off. *)

exception Validation_failed of string
(** Raised (when validating) with the pretty-printed
    {!Hmn_validate.Validator.multi_report}, or unconditionally when the
    cluster fails to drain back to empty after the last departure. *)

val run :
  ?flight:Flight.t ->
  ?on_admit:(Tenant.t -> unit) ->
  cluster:Hmn_testbed.Cluster.t ->
  policy:Hmn_core.Mapper.t ->
  config ->
  Session.summary
(** Runs the full lifecycle: schedules every arrival up front, admits or
    rejects each against the residual cluster, releases on departure,
    defragments on the configured cadence while arrivals last, then
    drains the queue (all departures fire) and closes the session at
    [max duration_s last-event-time].

    [on_admit] fires once per admission (including defrag-assisted
    re-admissions), right after the tenant enters the occupancy — the
    hook the artifact exporter uses to realize each admitted tenant as a
    deployable delta. It must not mutate service state; like [flight],
    it never changes the session.

    [flight] attaches a flight recorder: every admission decision,
    departure, and defrag move is journaled (with the rejection cause
    classified by {!Admission.explain}), the timeline samples at every
    event tick, and admission latency feeds the quantile channels. The
    recorder never changes the session — summaries are byte-identical
    with and without it. When validating, every journaled rejection
    cause and candidate count is re-derived independently by
    [Hmn_validate.Decision]; a disagreement raises
    {!Validation_failed}. *)
