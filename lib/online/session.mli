(** Per-run bookkeeping: event counts, peaks, and time-weighted means of
    the occupancy's quality signals, plus {!Hmn_obs.Metrics} handles.

    Determinism discipline: everything in {!summary} is derived from
    simulated time and simulated state only. Wall-clock quantities (the
    mapper's admission latency) go exclusively into the metrics
    histogram [online.admit_ms] and the flight recorder's wall-clock
    quantile channel, so a fixed seed yields a byte-identical rendered
    summary on any machine.

    When a {!Flight} recorder is attached, the session feeds it but
    never reads it back: the timeline samples the pre-mutation state at
    every tick (plus the empty cluster at t = 0), and each arrival's
    latency goes to the quantile channels — wall-clock nanoseconds and
    the deterministic work units. *)

type summary = {
  policy : string;
  seed : int;
  arrivals : int;
  admitted : int;
  rejected : int;
  departures : int;
  defrag_rounds : int;
  defrag_moves : int;
  horizon_s : float;  (** simulated span the means integrate over *)
  acceptance : float;  (** admitted / arrivals; 1 when no arrivals *)
  mean_tenants : float;  (** time-weighted mean resident tenants *)
  peak_tenants : int;
  mean_guests : float;
  peak_guests : int;
  mean_lbf : float;  (** time-weighted mean of Eq. 10 over the run *)
  final_lbf : float;
  mean_fragmentation : float;
  mean_mem_utilization : float;
  mean_bw_utilization : float;
}

type t

val create : ?flight:Flight.t -> policy:string -> seed:int -> Occupancy.t -> t

val tick : t -> now:float -> unit
(** Integrates the occupancy's {e current} readings over the interval
    since the previous tick. Call before the event at [now] mutates the
    occupancy (the state was constant on that interval). Raises
    [Invalid_argument] if simulated time goes backwards. *)

val observe_arrival :
  t -> admitted:bool -> admit_seconds:float -> work:int -> unit
(** Counts the arrival and its outcome. [admit_seconds] (wall-clock) is
    recorded only in the [online.admit_ms] histogram and the flight
    recorder's wall-clock quantile; [work]
    ({!Admission.work}, deterministic) feeds the pinnable quantile. *)

val observe_departure : t -> unit
val observe_defrag : t -> moves:int -> unit

val finalize : t -> now:float -> summary
(** Final tick up to [now], then the closed summary. *)

val render_summary : summary -> string
(** Fixed-format plain text — byte-stable for a given summary, used by
    the CLI smoke test's determinism diff. *)
