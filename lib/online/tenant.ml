module Venv = Hmn_vnet.Virtual_env
module Path = Hmn_routing.Path

type t = {
  id : int;
  venv : Venv.t;
  hosts : int array;
  paths : Path.t array;
  arrived_at : float;
  holding_s : float;
}

let of_mapping ~id ~arrived_at ~holding_s (m : Hmn_mapping.Mapping.t) =
  if id < 0 then invalid_arg "Tenant.of_mapping: negative id";
  if not (Float.is_finite holding_s) || holding_s < 0. then
    invalid_arg "Tenant.of_mapping: holding time must be finite and >= 0";
  let venv = (Hmn_mapping.Mapping.problem m).venv in
  let hosts =
    Array.init (Venv.n_guests venv) (fun g ->
        Hmn_mapping.Placement.host_of_exn m.placement ~guest:g)
  in
  let paths =
    Array.init (Venv.n_vlinks venv) (fun v ->
        match Hmn_mapping.Link_map.path_of m.link_map ~vlink:v with
        | Some p -> p
        | None ->
            (* a complete mapping routes every link; tolerate a missing
               intra-host entry by synthesising its trivial path *)
            let g, _ = Venv.endpoints venv v in
            Path.trivial hosts.(g))
  in
  { id; venv; hosts; paths; arrived_at; holding_s }

let departs_at t = t.arrived_at +. t.holding_s
let n_guests t = Venv.n_guests t.venv
let n_vlinks t = Venv.n_vlinks t.venv

let view t : Hmn_validate.Validator.tenant_view =
  {
    venv = t.venv;
    t_host_of =
      (fun g ->
        if g >= 0 && g < Array.length t.hosts then Some t.hosts.(g) else None);
    t_path_of =
      (fun v ->
        if v >= 0 && v < Array.length t.paths then Some t.paths.(v) else None);
  }
