module Metrics = Hmn_obs.Metrics

type summary = {
  policy : string;
  seed : int;
  arrivals : int;
  admitted : int;
  rejected : int;
  departures : int;
  defrag_rounds : int;
  defrag_moves : int;
  horizon_s : float;
  acceptance : float;
  mean_tenants : float;
  peak_tenants : int;
  mean_guests : float;
  peak_guests : int;
  mean_lbf : float;
  final_lbf : float;
  mean_fragmentation : float;
  mean_mem_utilization : float;
  mean_bw_utilization : float;
}

type t = {
  occ : Occupancy.t;
  flight : Flight.t option;
  policy : string;
  seed : int;
  mutable arrivals : int;
  mutable admitted : int;
  mutable rejected : int;
  mutable departures : int;
  mutable defrag_rounds : int;
  mutable defrag_moves : int;
  mutable peak_tenants : int;
  mutable peak_guests : int;
  (* piecewise-constant time integrals over [0, last_t] *)
  mutable last_t : float;
  mutable acc_tenants : float;
  mutable acc_guests : float;
  mutable acc_lbf : float;
  mutable acc_frag : float;
  mutable acc_mem : float;
  mutable acc_bw : float;
  c_arrivals : Metrics.counter;
  c_admitted : Metrics.counter;
  c_rejected : Metrics.counter;
  c_departures : Metrics.counter;
  c_defrag_moves : Metrics.counter;
  g_tenants : Metrics.gauge;
  g_guests : Metrics.gauge;
  h_admit_ms : Metrics.histogram;
}

let create ?flight ~policy ~seed occ =
  let t =
  {
    occ;
    flight;
    policy;
    seed;
    arrivals = 0;
    admitted = 0;
    rejected = 0;
    departures = 0;
    defrag_rounds = 0;
    defrag_moves = 0;
    peak_tenants = 0;
    peak_guests = 0;
    last_t = 0.;
    acc_tenants = 0.;
    acc_guests = 0.;
    acc_lbf = 0.;
    acc_frag = 0.;
    acc_mem = 0.;
    acc_bw = 0.;
    c_arrivals = Metrics.counter "online.arrivals";
    c_admitted = Metrics.counter "online.admitted";
    c_rejected = Metrics.counter "online.rejected";
    c_departures = Metrics.counter "online.departures";
    c_defrag_moves = Metrics.counter "online.defrag_moves";
    g_tenants = Metrics.gauge "online.tenants";
    g_guests = Metrics.gauge "online.guests";
    h_admit_ms =
      (* log-scaled edges (3 per decade, 1 us to 10 s) so sub-ms
         admissions land in distinguishable buckets *)
      Metrics.histogram
        ~bounds:(Metrics.log_bounds ~lo:1e-3 ~hi:1e4 ~per_decade:3)
        "online.admit_ms";
  }
  in
  (* the timeline's first row is the empty cluster at t = 0 *)
  (match flight with
  | Some f -> Flight.sample f ~t_s:0. occ
  | None -> ());
  t

(* Integrate the current occupancy readings over [last_t, now]. Must be
   called BEFORE the event at [now] mutates the occupancy: the state was
   constant on that half-open interval. *)
let tick t ~now =
  let dt = now -. t.last_t in
  if dt < -1e-9 then
    invalid_arg
      (Printf.sprintf "Session.tick: time went backwards (%g -> %g)" t.last_t
         now);
  if dt > 0. then begin
    (* pre-mutation state, stamped at the event instant — exactly the
       value the integrals below hold constant over [last_t, now) *)
    (match t.flight with
    | Some f -> Flight.sample f ~t_s:now t.occ
    | None -> ());
    t.acc_tenants <- t.acc_tenants +. (dt *. float_of_int (Occupancy.n_tenants t.occ));
    t.acc_guests <- t.acc_guests +. (dt *. float_of_int (Occupancy.n_guests t.occ));
    t.acc_lbf <- t.acc_lbf +. (dt *. Occupancy.lbf t.occ);
    t.acc_frag <- t.acc_frag +. (dt *. Occupancy.fragmentation t.occ);
    t.acc_mem <- t.acc_mem +. (dt *. Occupancy.mem_utilization t.occ);
    t.acc_bw <- t.acc_bw +. (dt *. Occupancy.bw_utilization t.occ);
    t.last_t <- now
  end

let note_population t =
  let nt = Occupancy.n_tenants t.occ and ng = Occupancy.n_guests t.occ in
  if nt > t.peak_tenants then t.peak_tenants <- nt;
  if ng > t.peak_guests then t.peak_guests <- ng;
  Metrics.Gauge.observe t.g_tenants nt;
  Metrics.Gauge.observe t.g_guests ng

let observe_arrival t ~admitted ~admit_seconds ~work =
  t.arrivals <- t.arrivals + 1;
  Metrics.Counter.incr t.c_arrivals;
  (* wall-clock admission latency feeds observability only; the
     deterministic summary never sees it *)
  Metrics.Histogram.observe t.h_admit_ms (admit_seconds *. 1000.);
  (match t.flight with
  | Some f -> Flight.observe_admission f ~seconds:admit_seconds ~work
  | None -> ());
  if admitted then begin
    t.admitted <- t.admitted + 1;
    Metrics.Counter.incr t.c_admitted
  end
  else begin
    t.rejected <- t.rejected + 1;
    Metrics.Counter.incr t.c_rejected
  end;
  note_population t

let observe_departure t =
  t.departures <- t.departures + 1;
  Metrics.Counter.incr t.c_departures;
  note_population t

let observe_defrag t ~moves =
  t.defrag_rounds <- t.defrag_rounds + 1;
  t.defrag_moves <- t.defrag_moves + moves;
  Metrics.Counter.add t.c_defrag_moves moves

let finalize t ~now =
  tick t ~now;
  let horizon = t.last_t in
  let mean acc = if horizon > 0. then acc /. horizon else 0. in
  {
    policy = t.policy;
    seed = t.seed;
    arrivals = t.arrivals;
    admitted = t.admitted;
    rejected = t.rejected;
    departures = t.departures;
    defrag_rounds = t.defrag_rounds;
    defrag_moves = t.defrag_moves;
    horizon_s = horizon;
    acceptance =
      (if t.arrivals = 0 then 1.
       else float_of_int t.admitted /. float_of_int t.arrivals);
    mean_tenants = mean t.acc_tenants;
    peak_tenants = t.peak_tenants;
    mean_guests = mean t.acc_guests;
    peak_guests = t.peak_guests;
    mean_lbf = mean t.acc_lbf;
    final_lbf = Occupancy.lbf t.occ;
    mean_fragmentation = mean t.acc_frag;
    mean_mem_utilization = mean t.acc_mem;
    mean_bw_utilization = mean t.acc_bw;
  }

let render_summary (s : summary) =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "online session: policy=%s seed=%d horizon=%.1fs" s.policy s.seed
    s.horizon_s;
  line "  arrivals    %4d  (admitted %d, rejected %d; acceptance %.3f)"
    s.arrivals s.admitted s.rejected s.acceptance;
  line "  departures  %4d" s.departures;
  line "  defrag      %4d rounds, %d moves" s.defrag_rounds s.defrag_moves;
  line "  tenants     mean %.2f  peak %d" s.mean_tenants s.peak_tenants;
  line "  guests      mean %.2f  peak %d" s.mean_guests s.peak_guests;
  line "  lbf         mean %.3f  final %.3f" s.mean_lbf s.final_lbf;
  line "  frag        mean %.4f" s.mean_fragmentation;
  line "  mem util    mean %.4f" s.mean_mem_utilization;
  line "  bw util     mean %.4f" s.mean_bw_utilization;
  Buffer.contents b
