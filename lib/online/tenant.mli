(** One admitted virtual environment, frozen to the raw facts the
    service needs after admission: which host runs each guest and which
    physical path carries each virtual link.

    A tenant is immutable; defragmentation produces a {e new} tenant
    value (same id, venv, arrival and holding time — new hosts/paths)
    and swaps it into the occupancy. *)

type t = {
  id : int;  (** service-wide tenant id (the request id) *)
  venv : Hmn_vnet.Virtual_env.t;
  hosts : int array;  (** guest id → node id, length [n_guests venv] *)
  paths : Hmn_routing.Path.t array;
      (** vlink id → physical path (trivial for intra-host links) *)
  arrived_at : float;  (** simulated admission time, seconds *)
  holding_s : float;  (** simulated residency duration *)
}

val of_mapping :
  id:int -> arrived_at:float -> holding_s:float -> Hmn_mapping.Mapping.t -> t
(** Freezes a complete mapping (every guest placed, every link routed).
    Raises [Invalid_argument] on a negative id, a non-finite or negative
    holding time, or an unplaced guest. *)

val departs_at : t -> float
val n_guests : t -> int
val n_vlinks : t -> int

val view : t -> Hmn_validate.Validator.tenant_view
(** The validator's read-only view of this tenant, for
    {!Hmn_validate.Validator.check_tenants}. *)
