(** Admission control: can this request be mapped onto what is left of
    the cluster, and with which heuristic?

    Any registered mapper ({!Hmn_core.Registry}) is an admission policy:
    the arriving environment is mapped against the {e residual} cluster
    (full capacities minus current occupancy), so a mapper that solves
    the paper's offline problem needs no changes to serve online. *)

type verdict =
  | Admitted of Hmn_mapping.Mapping.t * float
      (** the mapping onto the residual cluster, and the mapper's
          wall-clock seconds (observability only — never part of the
          deterministic summary) *)
  | Rejected of { stage : string; reason : string; elapsed_s : float }

val try_admit :
  occupancy:Occupancy.t ->
  policy:Hmn_core.Mapper.t ->
  venv:Hmn_vnet.Virtual_env.t ->
  rng:Hmn_rng.Rng.t ->
  verdict
(** Builds the residual cluster, screens with
    {!Hmn_mapping.Problem.obviously_infeasible} (stage ["screen"]), then
    runs the policy. The returned mapping's node and edge ids are the
    shared cluster's (residual clusters preserve ids). *)

val find_policy :
  ?max_tries:int -> string -> (Hmn_core.Mapper.t, string) result
(** Case-insensitive registry lookup; the error lists valid names. *)
