(** Admission control: can this request be mapped onto what is left of
    the cluster, and with which heuristic?

    Any registered mapper ({!Hmn_core.Registry}) is an admission policy:
    the arriving environment is mapped against the {e residual} cluster
    (full capacities minus current occupancy), so a mapper that solves
    the paper's offline problem needs no changes to serve online.

    This module also owns the service side of the rejection-cause
    classification — {!explain} turns a failed stage plus its
    structured {!Hmn_core.Mapper.failure_detail} into the journal's
    closed {!Hmn_obs.Journal.cause} taxonomy, judged against the fresh
    residual cluster. [Hmn_validate.Decision] re-derives the same
    semantics independently so the two can be cross-checked. *)

type verdict =
  | Admitted of {
      mapping : Hmn_mapping.Mapping.t;
          (** onto the residual cluster; node and edge ids are the
              shared cluster's (residual clusters preserve ids) *)
      elapsed_s : float;
          (** the mapper's wall-clock seconds (observability only —
              never part of the deterministic summary) *)
      tries : int;  (** attempts the (possibly retrying) mapper used *)
    }
  | Rejected of {
      stage : string;
      reason : string;
      elapsed_s : float;
      tries : int;  (** 0 when the screen rejected *)
      detail : Hmn_core.Mapper.failure_detail option;
    }

val try_admit :
  ?residual:Hmn_testbed.Cluster.t ->
  occupancy:Occupancy.t ->
  policy:Hmn_core.Mapper.t ->
  venv:Hmn_vnet.Virtual_env.t ->
  rng:Hmn_rng.Rng.t ->
  unit ->
  verdict
(** Screens with {!Hmn_mapping.Problem.obviously_infeasible} (stage
    ["screen"]), then runs the policy. [residual] (else computed from
    [occupancy]) lets the caller reuse one residual cluster for
    admission, candidate counting, and explanation. *)

val work : venv:Hmn_vnet.Virtual_env.t -> tries:int -> int
(** Deterministic admission effort for one [try_admit] call:
    [1 + tries * (n_guests + 2 * n_vlinks)] — proportional to the
    placement and routing work the attempt drove, independent of the
    machine running it. The flight recorder's pinnable latency proxy. *)

val candidate_hosts :
  residual:Hmn_testbed.Cluster.t -> venv:Hmn_vnet.Virtual_env.t -> int
(** Hosts whose residual memory and storage both fit the request's most
    memory-demanding guest (ties: storage, then lower index) — the
    journal's [candidates] field. *)

type explanation = {
  cause : Hmn_obs.Journal.cause;
  binding : string;  (** human-readable binding constraint *)
  detail : Hmn_obs.Journal.detail;
}

val explain :
  residual:Hmn_testbed.Cluster.t ->
  venv:Hmn_vnet.Virtual_env.t ->
  stage:string ->
  reason:string ->
  detail:Hmn_core.Mapper.failure_detail option ->
  explanation
(** Classifies a rejection. Stage ["screen"] re-derives the screen
    cause; a hosting-family failure attributes the binding resource for
    the named guest (or the hardest-to-place guest when unnamed); a
    networking-family failure ([networking]/[dfs-routing]) splits
    bandwidth vs latency by Dijkstra over bandwidth-feasible edges of
    the fresh residual. *)

val find_policy :
  ?max_tries:int -> string -> (Hmn_core.Mapper.t, string) result
(** Case-insensitive registry lookup; the error lists valid names. *)
