module Journal = Hmn_obs.Journal
module Timeseries = Hmn_obs.Timeseries
module Quantile = Hmn_obs.Quantile
module Trace = Hmn_obs.Trace
module Cluster = Hmn_testbed.Cluster

type t = {
  journal : Journal.t option;
  timeline : Timeseries.t option;
  q_admit_ns : Quantile.t option;
  q_admit_work : Quantile.t option;
  n_racks : int;
}

let base_columns = [ "tenants"; "guests"; "lbf"; "frag"; "mem_util"; "bw_util"; "bw_cv" ]

let create ?(journal = true) ?(timeline = true) ?timeline_capacity
    ?(quantiles = true) cluster =
  let n_racks = Cluster.n_racks cluster in
  let columns =
    base_columns
    @ List.init n_racks (fun r -> Printf.sprintf "rack%d_mem" r)
  in
  {
    journal = (if journal then Some (Journal.create ()) else None);
    timeline =
      (if timeline then
         Some (Timeseries.create ?capacity:timeline_capacity ~columns ())
       else None);
    q_admit_ns = (if quantiles then Some (Quantile.create ()) else None);
    q_admit_work = (if quantiles then Some (Quantile.create ()) else None);
    n_racks;
  }

let wants_journal t = t.journal <> None
let journal t = t.journal
let timeline t = t.timeline
let admit_ns t = t.q_admit_ns
let admit_work t = t.q_admit_work

let record t ~t_s ~occupancy event =
  match t.journal with
  | None -> ()
  | Some j ->
      Journal.add j ~t_s
        ~tenants:(Occupancy.n_tenants occupancy)
        ~lbf:(Occupancy.lbf occupancy) event

let sample t ~t_s occ =
  match t.timeline with
  | None -> ()
  | Some ts ->
      let rack = Occupancy.rack_mem_utilization occ in
      let row = Array.make (7 + t.n_racks) 0. in
      row.(0) <- float_of_int (Occupancy.n_tenants occ);
      row.(1) <- float_of_int (Occupancy.n_guests occ);
      row.(2) <- Occupancy.lbf occ;
      row.(3) <- Occupancy.fragmentation occ;
      row.(4) <- Occupancy.mem_utilization occ;
      row.(5) <- Occupancy.bw_utilization occ;
      row.(6) <- Occupancy.bw_dispersion occ;
      Array.iteri (fun r u -> if r < t.n_racks then row.(7 + r) <- u) rack;
      Timeseries.sample ts ~t_s row

let observe_admission t ~seconds ~work =
  (match t.q_admit_ns with
  | None -> ()
  | Some q ->
      Quantile.record q (int_of_float (Float.round (seconds *. 1e9))));
  match t.q_admit_work with None -> () | Some q -> Quantile.record q work

let timeline_csv t = Option.map Timeseries.to_csv t.timeline
let events_jsonl t = Option.map Journal.to_jsonl t.journal

let emit_trace_counters t =
  match t.timeline with
  | None -> ()
  | Some ts ->
      let columns = Array.of_list (Timeseries.columns ts) in
      Timeseries.iter ts (fun ~t_s row ->
          let ts_us = t_s *. 1e6 in
          Array.iteri
            (fun i col ->
              Trace.counter ~cat:"online" ~name:("online/" ^ col) ~ts_us
                [ ("v", row.(i)) ])
            columns)
