(** The flight recorder: one handle bundling the per-session
    observability channels — admission-decision journal
    ({!Hmn_obs.Journal}), simulated-clock time series
    ({!Hmn_obs.Timeseries}), and admission-latency quantile histograms
    ({!Hmn_obs.Quantile}) — each individually optional.

    The recorder is passive: it never influences admission, defrag, or
    the summary, so a session runs byte-identically with or without it.
    Everything it captures is deterministic except the wall-clock
    latency quantiles ({!admit_ns}), which exist for real benchmarking;
    the deterministic counterpart is the work-unit quantile
    ({!admit_work}), fed with
    [1 + tries * (n_guests + 2 * n_vlinks)] per attempt — an exact
    admission-effort proxy that is pinnable in smoke tests. *)

module Journal = Hmn_obs.Journal
module Timeseries = Hmn_obs.Timeseries
module Quantile = Hmn_obs.Quantile

type t

val create :
  ?journal:bool ->
  ?timeline:bool ->
  ?timeline_capacity:int ->
  ?quantiles:bool ->
  Hmn_testbed.Cluster.t ->
  t
(** All channels default to on; [timeline_capacity] defaults to the
    {!Hmn_obs.Timeseries} default. The cluster fixes the timeline's
    rack columns ([rack<i>_mem] per dense rack id, none when the
    cluster is unracked). *)

val wants_journal : t -> bool
val journal : t -> Journal.t option
val timeline : t -> Timeseries.t option
val admit_ns : t -> Quantile.t option
(** Wall-clock admission latency, nanoseconds. Not deterministic. *)

val admit_work : t -> Quantile.t option
(** Deterministic admission work units. *)

val record : t -> t_s:float -> occupancy:Occupancy.t -> Journal.event -> unit
(** Appends a journal record stamped with the post-event tenant count
    and LBF read from [occupancy]. No-op without a journal. *)

val sample : t -> t_s:float -> Occupancy.t -> unit
(** Appends one timeline row (tenants, guests, lbf, frag, mem_util,
    bw_util, bw_cv, per-rack memory utilization). No-op without a
    timeline. *)

val observe_admission : t -> seconds:float -> work:int -> unit
(** Feeds both quantile channels. No-op without quantiles. *)

val timeline_csv : t -> string option
val events_jsonl : t -> string option

val emit_trace_counters : t -> unit
(** Replays the retained timeline into {!Hmn_obs.Trace} counter events
    (one track per column, named [online/<column>], timestamped with
    simulated microseconds). Call after the run, while the tracer is
    enabled and before [Trace.write]. *)
