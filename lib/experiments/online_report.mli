(** Policy-comparison grid for the online testbed service: run the same
    pre-generated request stream under several admission policies and
    offered-load multipliers, and tabulate acceptance and balance.

    Because {!Hmn_online.Service} draws the stream from the seed alone,
    every cell with the same load faces the identical sequence of
    requests — differences between rows are attributable to the policy,
    exactly like the paper's Tables 2–3 attribute differences to the
    heuristic. *)

type cell = {
  policy : string;
  load : float;  (** multiplier on the base arrival rate *)
  summary : Hmn_online.Session.summary;
}

type results = {
  base_config : Hmn_online.Service.config;
  cells : cell list;  (** grouped by load, then policy, in input order *)
}

val default_policies : string list
(** HMN plus the R and HS baselines. *)

val default_loads : float list
(** 0.5x, 1.0x, 2.0x the base arrival rate. *)

val run :
  ?policies:string list ->
  ?loads:float list ->
  cluster:Hmn_testbed.Cluster.t ->
  config:Hmn_online.Service.config ->
  unit ->
  (results, string) result
(** Runs the full grid sequentially (each cell is itself a whole
    simulated session). [Error] on an unknown policy name or an empty /
    non-positive load list; a cell that raises (validation failure)
    propagates. *)

val table : results -> string
(** Plain-text comparison table, one row per (load, policy). *)

val csv : results -> string
(** One line per cell with every summary field, for external plotting. *)
