(** Policy-comparison grid for the online testbed service: run the same
    pre-generated request stream under several admission policies and
    offered-load multipliers, and tabulate acceptance and balance.

    Because {!Hmn_online.Service} draws the stream from the seed alone,
    every cell with the same load faces the identical sequence of
    requests — differences between rows are attributable to the policy,
    exactly like the paper's Tables 2–3 attribute differences to the
    heuristic.

    The grid can also collect per-cell admission-latency SLO data
    through a per-cell flight recorder (quantile channels only — no
    journal, no timeline, so memory stays flat across the grid). Two
    latency sources exist: wall-clock milliseconds for real
    benchmarking, and the deterministic work-unit proxy
    ({!Hmn_online.Admission.work}) whose percentiles are byte-stable
    across machines and therefore pinnable in smoke tests. *)

type latency_source =
  | Off  (** no SLO collection; cells carry [slo = None] *)
  | Wall_ms  (** wall-clock admission latency, milliseconds *)
  | Work_units  (** deterministic admission work units *)

type slo = {
  samples : int;  (** admission decisions observed (arrivals) *)
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max_v : float;
}
(** Quantiles are bucket upper edges ({!Hmn_obs.Quantile.quantile}): an
    over-estimate of the true order statistic by at most the bucket's
    relative width (1/64 at the default precision). *)

type cell = {
  policy : string;
  load : float;  (** multiplier on the base arrival rate *)
  summary : Hmn_online.Session.summary;
  slo : slo option;  (** [None] when the grid ran with [Off] *)
}

type results = {
  base_config : Hmn_online.Service.config;
  latency : latency_source;
  cells : cell list;  (** grouped by load, then policy, in input order *)
}

val default_policies : string list
(** HMN plus the R and HS baselines. *)

val default_loads : float list
(** 0.5x, 1.0x, 2.0x the base arrival rate. *)

val run :
  ?policies:string list ->
  ?loads:float list ->
  ?latency:latency_source ->
  cluster:Hmn_testbed.Cluster.t ->
  config:Hmn_online.Service.config ->
  unit ->
  (results, string) result
(** Runs the full grid sequentially (each cell is itself a whole
    simulated session). [latency] defaults to [Off]. [Error] on an
    unknown policy name or an empty / non-positive load list; a cell
    that raises (validation failure) propagates. *)

val table : results -> string
(** Plain-text comparison table, one row per (load, policy). Identical
    output for a given summary grid regardless of [latency]. *)

val csv : results -> string
(** One line per cell with every summary field, for external plotting.
    Like {!table}, independent of [latency]. *)

val slo_table : results -> string
(** Admission-latency percentile table (p50/p90/p99/p999/max and sample
    count) per (load, policy), with the latency unit in the title.
    Raises [Invalid_argument] when the grid ran with [Off]. *)

val slo_csv : results -> string
(** The SLO columns as CSV. Raises [Invalid_argument] under [Off]. *)
