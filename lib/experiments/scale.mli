(** Cluster-size scaling experiments: the paper's 40-host evaluation
    extended along a 40 → 400 → 4000 host axis.

    One size point = one deterministic instance: a rack-labelled
    fabric ({!shape}), [ratio] guests per host — drawn from the
    paper's workload for that ratio band (high-level up to 10:1,
    low-level beyond) with a size-independent ~1.5 virtual links per
    guest — mapped with the scale pipeline
    ({!Hmn_core.Hmn.run_sharded_detailed}: two-level Hosting, capped
    Migration, CSR + landmark-table Networking). The summary renderer
    is byte-deterministic for any [jobs] value; wall times are
    rendered separately so CI can diff summaries. *)

type shape =
  | Clos  (** leaf-spine; racks of 10 (40 at the 4000-host point) *)
  | Fat_tree  (** k-ary, k rounded up to cover the requested hosts *)

val shape_name : shape -> string

val uplink : Hmn_testbed.Link.t
(** Switch-to-switch tier: 10 Gbps / 5 ms (host cables stay at the
    paper's gigabit), keeping bisection bandwidth from collapsing as
    racks multiply. *)

val clos_geometry : hosts:int -> int * int * int
(** [(racks, hosts_per_rack, spines)] for a target host count. *)

val fat_tree_k : hosts:int -> int
(** Smallest even [k] with [k^3/4 >= hosts] — the built cluster may
    therefore round the host count up. *)

val cluster : shape:shape -> hosts:int -> rng:Hmn_rng.Rng.t -> Hmn_testbed.Cluster.t

val density : n_guests:int -> float
(** [3 / (n_guests - 1)]: ~1.5 virtual links per guest at every size. *)

val problem :
  shape:shape -> hosts:int -> ratio:int -> seed:int -> Hmn_mapping.Problem.t

type result = {
  shape : shape;
  n_hosts : int;  (** actual (after geometry rounding) *)
  n_racks : int;
  n_guests : int;
  n_vlinks : int;
  outcome : Hmn_core.Mapper.outcome;
  report : Hmn_core.Hmn.stage_report;
  valid : bool option;
      (** [Some] only when validation was requested and the mapping
          succeeded. *)
}

val run :
  ?jobs:int ->
  ?ratio:int ->
  ?seed:int ->
  ?validate:bool ->
  shape:shape ->
  hosts:int ->
  unit ->
  result
(** Defaults: [ratio = 25] (the paper's largest low-level ratio band),
    [seed = 42], [validate = false], [jobs] from
    {!Hmn_prelude.Domain_pool.default_jobs}. Migration is capped at
    [4 * hosts] moves. *)

val render_summary : result -> string
(** Byte-deterministic (no wall times) — safe to diff in CI. *)

val render_routing_counters : result -> string
(** One byte-deterministic line of Networking search-effort counters
    (labels expanded/generated, cache and fast-path hits); empty when
    the mapping failed before Networking. CI pins this for a fixture to
    catch any drift in the default engine's label-for-label
    equivalence. *)

val render_timings : result -> string
(** Wall-clock per stage; print to stderr, never into diffed output. *)
