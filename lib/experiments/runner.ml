module Mapper = Hmn_core.Mapper
module Running = Hmn_stats.Running
module Domain_pool = Hmn_prelude.Domain_pool

type config = {
  reps : int;
  max_tries : int;
  base_seed : int;
  app : Hmn_emulation.App.t;
  simulate : bool;
  mappers : Mapper.t list;
  verbose : bool;
  jobs : int;
  validate : bool;
  metrics : bool;
  trace : string option;
}

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s -> ( match int_of_string_opt s with Some v when v > 0 -> v | _ -> default)

let default_config () =
  let max_tries = env_int "HMN_MAX_TRIES" 200 in
  {
    reps = env_int "HMN_REPS" 5;
    max_tries;
    base_seed = env_int "HMN_SEED" 20090922;
    app = Hmn_emulation.App.default;
    simulate = true;
    mappers = Hmn_core.Registry.paper ~max_tries ();
    verbose = Sys.getenv_opt "HMN_VERBOSE" <> None;
    jobs = env_int "HMN_JOBS" (Domain_pool.default_jobs ());
    validate = Sys.getenv_opt "HMN_VALIDATE" <> None;
    metrics = Sys.getenv_opt "HMN_METRICS" <> None;
    trace = Sys.getenv_opt "HMN_TRACE";
  }

type cell = {
  successes : int;
  failures : int;
  objective : Running.t;
  map_time : Running.t;
  makespan : Running.t;
  tries : Running.t;
}

let fresh_cell () =
  {
    successes = 0;
    failures = 0;
    objective = Running.create ();
    map_time = Running.create ();
    makespan = Running.create ();
    tries = Running.create ();
  }

type results = {
  config : config;
  scenarios : Scenario.t array;
  cells : (int * Scenario.cluster_kind * string, cell) Hashtbl.t;
  correlation : Hmn_emulation.Correlate.t;
}

let instance_seed config ~scenario_idx ~cluster ~rep =
  let cluster_tag = match cluster with Scenario.Torus -> 0 | Scenario.Switched -> 1 in
  config.base_seed + (1_000_000 * scenario_idx) + (100_000 * cluster_tag) + rep

(* A distinct, deterministic stream per (instance, mapper): baselines
   must not share randomness or their retries would be correlated. *)
let mapper_rng ~seed ~mapper_name =
  Hmn_rng.Rng.create (seed + (17 * Hashtbl.hash mapper_name))

(* ---- parallel sweep ----

   Every (scenario, cluster, rep) instance is independent: it derives
   its own seed, builds its own problem and RNGs, and runs every mapper
   on its own domain, touching no shared state. The pure per-instance
   records below are then folded into [cells]/[correlation] by the main
   domain in the same canonical order the sequential loop used, so the
   aggregate (and every rendered table) is identical for any [jobs]. *)

type mapper_record = {
  m_name : string;
  m_tries : int;
  (* objective, mapping wall-clock, simulated makespan (when enabled);
     [None] when the mapper failed *)
  m_ok : (float * float * float option) option;
}

type instance_result = {
  i_scenario : int;
  i_cluster : Scenario.cluster_kind;
  i_records : mapper_record list;  (* in [config.mappers] order *)
  i_corr : Hmn_emulation.Correlate.t;  (* this instance's observations *)
}

let run_instance config scenarios (scenario_idx, cluster, rep) =
  let module Trace = Hmn_obs.Trace in
  let scenario = scenarios.(scenario_idx) in
  let seed = instance_seed config ~scenario_idx ~cluster ~rep in
  let in_instance_span f =
    if Trace.enabled () then
      Trace.with_span ~cat:"sweep" "instance"
        ~args:
          [
            ("scenario", Scenario.label scenario);
            ("cluster", Scenario.cluster_label cluster);
            ("rep", string_of_int rep);
          ]
        f
    else f ()
  in
  in_instance_span @@ fun () ->
  let problem = Scenario.build scenario cluster ~seed in
  let corr = Hmn_emulation.Correlate.create () in
  let records =
    List.map
      (fun mapper ->
        let rng = mapper_rng ~seed ~mapper_name:mapper.Mapper.name in
        let outcome =
          Trace.with_span ~cat:"mapper" mapper.Mapper.name (fun () ->
              mapper.Mapper.run ~rng problem)
        in
        if config.verbose then
          Printf.eprintf "[%s %s rep %d] %s: %s\n%!" (Scenario.label scenario)
            (Scenario.cluster_label cluster) rep mapper.Mapper.name
            (match outcome.Mapper.result with
            | Ok _ -> "ok"
            | Error f -> "FAIL " ^ f.Mapper.stage);
        match outcome.Mapper.result with
        | Error _ ->
          { m_name = mapper.Mapper.name; m_tries = outcome.Mapper.tries; m_ok = None }
        | Ok mapping ->
          if config.validate then begin
            let report = Hmn_validate.Validator.check mapping in
            if report.Hmn_validate.Validator.violations <> [] then
              failwith
                (Format.asprintf
                   "HMN_VALIDATE: %s on %s %s rep %d produced an invalid \
                    mapping — %a"
                   mapper.Mapper.name (Scenario.label scenario)
                   (Scenario.cluster_label cluster) rep
                   Hmn_validate.Validator.pp_report report)
          end;
          let objective = Hmn_mapping.Mapping.objective mapping in
          let makespan =
            if config.simulate then begin
              let sim = Hmn_emulation.Exec_sim.run ~app:config.app mapping in
              Hmn_emulation.Correlate.observe corr
                ~group:
                  (Scenario.label scenario ^ " " ^ Scenario.cluster_label cluster)
                ~objective ~makespan_s:sim.Hmn_emulation.Exec_sim.makespan_s;
              Some sim.Hmn_emulation.Exec_sim.makespan_s
            end
            else None
          in
          {
            m_name = mapper.Mapper.name;
            m_tries = outcome.Mapper.tries;
            m_ok = Some (objective, outcome.Mapper.elapsed_s, makespan);
          })
      config.mappers
  in
  { i_scenario = scenario_idx; i_cluster = cluster; i_records = records; i_corr = corr }

let run ?config () =
  let config = match config with Some c -> c | None -> default_config () in
  if config.metrics then Hmn_obs.Metrics.enable ();
  if config.trace <> None then Hmn_obs.Trace.enable ();
  let scenarios = Array.of_list Scenario.paper_scenarios in
  let clusters = [ Scenario.Torus; Scenario.Switched ] in
  (* Canonical instance order: scenario-major, then cluster, then rep —
     exactly the nesting of the original sequential loop. *)
  let instances =
    Array.of_list
      (List.concat_map
         (fun scenario_idx ->
           List.concat_map
             (fun cluster ->
               List.init config.reps (fun rep -> (scenario_idx, cluster, rep)))
             clusters)
         (List.init (Array.length scenarios) Fun.id))
  in
  let per_instance =
    if config.jobs <= 1 then Array.map (run_instance config scenarios) instances
    else
      Domain_pool.with_pool ~jobs:config.jobs (fun pool ->
          Domain_pool.map_array pool (run_instance config scenarios) instances)
  in
  let cells = Hashtbl.create 256 in
  let correlation = Hmn_emulation.Correlate.create () in
  let get_cell key =
    match Hashtbl.find_opt cells key with
    | Some c -> c
    | None ->
      let c = fresh_cell () in
      Hashtbl.add cells key c;
      c
  in
  Array.iter
    (fun inst ->
      List.iter
        (fun r ->
          let key = (inst.i_scenario, inst.i_cluster, r.m_name) in
          let c = get_cell key in
          Running.add c.tries (float_of_int r.m_tries);
          let c =
            match r.m_ok with
            | None -> { c with failures = c.failures + 1 }
            | Some (objective, elapsed_s, makespan) ->
              Running.add c.objective objective;
              Running.add c.map_time elapsed_s;
              Option.iter (Running.add c.makespan) makespan;
              { c with successes = c.successes + 1 }
          in
          Hashtbl.replace cells key c)
        inst.i_records;
      Hmn_emulation.Correlate.append correlation inst.i_corr)
    per_instance;
  (* The pool has been shut down by now, so the per-domain trace
     buffers are quiescent and safe to merge. *)
  Option.iter (fun path -> Hmn_obs.Trace.write ~path) config.trace;
  { config; scenarios; cells; correlation }

let cell results ~scenario ~cluster ~mapper =
  Hashtbl.find_opt results.cells (scenario, cluster, mapper)

let mapper_names results = List.map (fun m -> m.Mapper.name) results.config.mappers
