module Fuzz = Hmn_validate.Fuzz
module Solver = Hmn_exact.Solver
module Cluster = Hmn_testbed.Cluster
module Virtual_env = Hmn_vnet.Virtual_env
module Problem = Hmn_mapping.Problem
module Mapping = Hmn_mapping.Mapping
module Mapper = Hmn_core.Mapper
module Registry = Hmn_core.Registry
module Rng = Hmn_rng.Rng
module Table = Hmn_prelude.Pretty_table
module Clock = Hmn_prelude.Clock

type instance_run = {
  label : string;
  seed : int;
  params : Fuzz.params;
  n_hosts : int;
  n_guests : int;
  solver : Solver.t;
  optimum : float option;
  proven : bool;
  root_bound : float;
  wall_s : float;
  per_mapper : (string * float option) list;
}

(* Smallest to largest; the last class sits at the 10-host ceiling. Guest
   counts stop where every seeded instance still proves optimality well
   inside the default node budget: at 10 near-uniform switched hosts the
   water-filling bound goes flat (hundreds of near-ties per depth), and
   beyond ~14 guests single seeds blow past 10^6 nodes. Densities shrink
   with size so the virtual graphs keep ~1-3 links per guest. *)
let classes =
  [
    ( "torus2x2/high",
      {
        Fuzz.shape = Fuzz.Torus { rows = 2; cols = 2 };
        n_guests = 8;
        density = 0.3;
        low_level = false;
      } );
    ( "switch6/high",
      {
        Fuzz.shape = Fuzz.Switched { hosts = 6 };
        n_guests = 12;
        density = 0.2;
        low_level = false;
      } );
    ( "torus2x4/low",
      {
        Fuzz.shape = Fuzz.Torus { rows = 2; cols = 4 };
        n_guests = 14;
        density = 0.18;
        low_level = true;
      } );
    ( "switch10/high",
      {
        Fuzz.shape = Fuzz.Switched { hosts = 10 };
        n_guests = 12;
        density = 0.2;
        low_level = false;
      } );
  ]

let default_seed = 20090401
let default_per_class = 5

(* Same per-mapper stream derivation as the fuzzer, so a mapper sees
   the identical random sequence whether driven from here or from a
   fuzz repro of the same seed. *)
let mapper_rng ~seed ~mapper_name = Rng.create (seed + (17 * Hashtbl.hash mapper_name))

let gap_pct ~optimum ~objective =
  let g =
    if optimum > 1e-9 then 100. *. (objective -. optimum) /. optimum
    else objective
  in
  Float.max 0. g

let run_instance ?node_budget ~label ~params ~seed () =
  let problem = Fuzz.build_problem params ~seed in
  let mappers = Registry.paper ~max_tries:50 () in
  let mapped =
    List.map
      (fun m ->
        let name = m.Mapper.name in
        match
          (m.Mapper.run ~rng:(mapper_rng ~seed ~mapper_name:name) problem).Mapper.result
        with
        | Ok mapping -> (name, Some mapping)
        | Error _ -> (name, None))
      mappers
  in
  let per_mapper =
    List.map (fun (name, m) -> (name, Option.map Mapping.objective m)) mapped
  in
  let warm = List.filter_map snd mapped in
  let config =
    match node_budget with
    | None -> Solver.default_config
    | Some node_budget -> { Solver.default_config with node_budget }
  in
  (* Root relaxation, for bound-tightness reporting: a zero-node budget
     abandons the root immediately, leaving exactly the root bound. *)
  let root =
    Solver.solve ~config:{ config with node_budget = 0 } problem
  in
  let t0 = Clock.now_s () in
  let solver = Solver.solve ~config ~warm problem in
  let wall_s = Clock.elapsed_s t0 in
  {
    label;
    seed;
    params;
    n_hosts = Cluster.n_hosts problem.Problem.cluster;
    n_guests = Virtual_env.n_guests problem.Problem.venv;
    solver;
    optimum = Solver.optimum solver;
    proven = Solver.proven_optimal solver;
    root_bound = root.Solver.lower_bound;
    wall_s;
    per_mapper;
  }

let run ?node_budget ?(seed = default_seed) ?(per_class = default_per_class) () =
  List.concat_map
    (fun (label, params) ->
      List.init per_class (fun i ->
          run_instance ?node_budget ~label ~params ~seed:(seed + i) ()))
    classes

(* ---- rendering ---- *)

let mapper_names runs =
  match runs with [] -> [] | r :: _ -> List.map fst r.per_mapper

let fmt_opt = function None -> "-" | Some o -> Printf.sprintf "%.4f" o

let fmt_gap ~optimum objective =
  match (optimum, objective) with
  | _, None -> "-"
  | None, Some _ -> "!"  (* mapped an instance proven infeasible *)
  | Some opt, Some obj -> Printf.sprintf "%.2f" (gap_pct ~optimum:opt ~objective:obj)

let render_table runs =
  let names = mapper_names runs in
  let b = Buffer.create 1024 in
  let header =
    [ "instance"; "seed"; "hosts"; "guests"; "optimum"; "proven" ]
    @ List.map (fun n -> n ^ " gap%") names
  in
  let table =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) (List.tl header))
      ~header ()
  in
  List.iter
    (fun r ->
      Table.add_row table
        ([
           r.label;
           string_of_int r.seed;
           string_of_int r.n_hosts;
           string_of_int r.n_guests;
           fmt_opt r.optimum;
           (if r.proven then "yes" else "NO");
         ]
        @ List.map (fun n -> fmt_gap ~optimum:r.optimum (List.assoc n r.per_mapper)) names))
    runs;
  Buffer.add_string b (Table.render table);
  (* Per-mapper aggregate over the instances it mapped (and that have a
     finite optimum). *)
  let summary =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:[ "mapper"; "mapped"; "mean gap%"; "max gap%"; "optimal hits" ]
      ()
  in
  List.iter
    (fun name ->
      let gaps =
        List.filter_map
          (fun r ->
            match (r.optimum, List.assoc name r.per_mapper) with
            | Some opt, Some obj -> Some (gap_pct ~optimum:opt ~objective:obj)
            | _ -> None)
          runs
      in
      let n = List.length gaps in
      if n = 0 then Table.add_row summary [ name; "0"; "-"; "-"; "-" ]
      else begin
        let mean = List.fold_left ( +. ) 0. gaps /. float_of_int n in
        let max_gap = List.fold_left Float.max 0. gaps in
        let hits = List.length (List.filter (fun g -> g <= 1e-4) gaps) in
        Table.add_row summary
          [
            name;
            string_of_int n;
            Printf.sprintf "%.2f" mean;
            Printf.sprintf "%.2f" max_gap;
            Printf.sprintf "%d/%d" hits n;
          ]
      end)
    names;
  Buffer.add_string b "\n";
  Buffer.add_string b (Table.render summary);
  let proven = List.length (List.filter (fun r -> r.proven) runs) in
  Buffer.add_string b
    (Printf.sprintf "\n%d/%d instances solved to proven optimality\n" proven
       (List.length runs));
  Buffer.contents b

let render_csv runs =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "label,seed,hosts,guests,optimum,proven,nodes,mapper,objective,gap_pct\n";
  List.iter
    (fun r ->
      List.iter
        (fun (name, objective) ->
          let opt = match r.optimum with None -> "" | Some o -> Printf.sprintf "%.6f" o in
          let obj, gap =
            match (objective, r.optimum) with
            | None, _ -> ("", "")
            | Some o, None -> (Printf.sprintf "%.6f" o, "")
            | Some o, Some opt ->
              ( Printf.sprintf "%.6f" o,
                Printf.sprintf "%.4f" (gap_pct ~optimum:opt ~objective:o) )
          in
          Buffer.add_string b
            (Printf.sprintf "%s,%d,%d,%d,%s,%b,%d,%s,%s,%s\n" r.label r.seed
               r.n_hosts r.n_guests opt r.proven r.solver.Solver.nodes name obj gap))
        r.per_mapper)
    runs;
  Buffer.contents b

let render_timings runs =
  let b = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "timing: %s seed=%d nodes=%d leaves=%d certifications=%d \
            root_bound=%.3f lower_bound=%.3f wall=%.3fs\n"
           r.label r.seed r.solver.Solver.nodes r.solver.Solver.leaves
           r.solver.Solver.networking_runs r.root_bound
           r.solver.Solver.lower_bound r.wall_s))
    runs;
  Buffer.contents b
