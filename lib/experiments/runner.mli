(** The experiment driver: runs every heuristic on every scenario ×
    cluster, [reps] repetitions each, aggregating exactly what Tables
    2–3 report — mean objective value, failure counts, and the
    simulated experiment execution time — plus the pooled
    objective↔runtime correlation of §5.2.

    Each (scenario, cluster, repetition) triple deterministically
    derives one problem instance that all heuristics share, as in the
    paper ("each workload has been tested in both clusters").

    Instances are independent (each derives its own seed, problem and
    RNG streams), so the sweep fans them out across [jobs] worker
    domains. Every instance returns a pure record that the main domain
    merges in the canonical (scenario, cluster, rep) order, so
    [cells], [correlation] and every table rendered from them are
    identical whatever [jobs] is — only the mapping wall-clock
    measurements ([map_time]) vary between runs, as they always have.
    See "Parallel sweeps" in EXPERIMENTS.md. *)

type config = {
  reps : int;  (** repetitions per scenario (paper: 30) *)
  max_tries : int;  (** retry cap for R/RA/HS (paper: 100 000) *)
  base_seed : int;
  app : Hmn_emulation.App.t;
  simulate : bool;  (** run the emulated experiment on each success *)
  mappers : Hmn_core.Mapper.t list;
  verbose : bool;  (** progress lines on stderr *)
  jobs : int;  (** worker domains for the sweep; 1 = run in-process *)
  validate : bool;
      (** re-check every successful mapping with
          {!Hmn_validate.Validator} and abort the sweep (with the full
          violation report) on the first invalid one — the sweep's
          self-check, enabled by setting [HMN_VALIDATE] *)
  metrics : bool;
      (** enable the {!Hmn_obs.Metrics} registry for the sweep
          (counters/histograms from every stage, merged across worker
          domains); set by [HMN_METRICS]. Off by default so the hot
          paths pay only the inert-sink branch. *)
  trace : string option;
      (** when [Some path], record {!Hmn_obs.Trace} spans (every sweep
          instance, mapper run, stage and routed virtual link) and
          write the Chrome trace_event JSON there after the sweep; set
          by [HMN_TRACE=path]. *)
}

val default_config : unit -> config
(** Paper heuristics; [reps] from the [HMN_REPS] environment variable
    (default 5), [max_tries] from [HMN_MAX_TRIES] (default 200) — the
    defaults keep the full 16×2-cell sweep tractable on a laptop while
    [HMN_REPS=30 HMN_MAX_TRIES=100000] reproduces the paper's scale.
    [jobs] comes from [HMN_JOBS], defaulting to
    [Domain.recommended_domain_count () - 1] (floor 1); [validate] is
    true when [HMN_VALIDATE] is set (to anything); [metrics] when
    [HMN_METRICS] is set; [trace] from [HMN_TRACE].
    See EXPERIMENTS.md. *)

type cell = {
  successes : int;
  failures : int;
  objective : Hmn_stats.Running.t;  (** over successful runs *)
  map_time : Hmn_stats.Running.t;  (** mapping wall-clock, seconds *)
  makespan : Hmn_stats.Running.t;  (** simulated experiment time, seconds *)
  tries : Hmn_stats.Running.t;
}

type results = {
  config : config;
  scenarios : Scenario.t array;
  cells : (int * Scenario.cluster_kind * string, cell) Hashtbl.t;
      (** keyed by (scenario index, cluster, mapper name) *)
  correlation : Hmn_emulation.Correlate.t;
}

val run : ?config:config -> unit -> results

val cell :
  results -> scenario:int -> cluster:Scenario.cluster_kind -> mapper:string ->
  cell option

val mapper_names : results -> string list
(** In configuration order. *)
