(** Optimality-gap report: the paper's heuristics measured against the
    exact branch-and-bound baseline ({!Hmn_exact.Solver}).

    A fixed grid of seeded instance classes — 4 to 10 hosts, 8 to 30
    guests, both Table-1 workloads, torus and switched clusters, built
    with the fuzzer's generators so every instance has an
    [hmn_cli fuzz]-style repro — is mapped by the paper registry
    (HMN, R, RA, HS) and solved exactly. Per mapper the report gives
    the optimality gap

    {[ gap% = 100 * (objective - optimum) / optimum ]}

    (absolute when the optimum is ~0), plus the mean/max aggregate over
    the instances it mapped. The exact solver is warm-started with the
    heuristics' own mappings, which tightens pruning without affecting
    the proven bound. *)

type instance_run = {
  label : string;  (** class name, e.g. ["torus2x4/low"] *)
  seed : int;
  params : Hmn_validate.Fuzz.params;
  n_hosts : int;
  n_guests : int;
  solver : Hmn_exact.Solver.t;
  optimum : float option;  (** [None]: proven infeasible *)
  proven : bool;  (** solved to proven optimality within budget *)
  root_bound : float;
      (** the water-filling relaxation at the root — bound tightness is
          [root_bound / optimum] *)
  wall_s : float;  (** exact-solver wall time; never rendered in CI *)
  per_mapper : (string * float option) list;
      (** mapper name → objective; [None] when it declined *)
}

val classes : (string * Hmn_validate.Fuzz.params) list
(** The instance grid, smallest first: 2x2 torus / 8 guests (high),
    6-host switched / 12 guests (high), 2x4 torus / 20 guests (low),
    10-host switched / 30 guests (low). *)

val default_seed : int
val default_per_class : int  (** 5 — 20 instances over the 4 classes *)

val run :
  ?node_budget:int ->
  ?seed:int ->
  ?per_class:int ->
  unit ->
  instance_run list
(** Runs [per_class] seeded instances of every class; deterministic in
    [(seed, per_class, node_budget)]. Defaults: the solver's node
    budget, {!default_seed}, {!default_per_class}. *)

val gap_pct : optimum:float -> objective:float -> float
(** Non-negative relative gap in percent; falls back to the absolute
    objective when [optimum < 1e-9]. *)

val render_table : instance_run list -> string
(** Per-instance pretty table (hosts, guests, optimum, proven flag,
    per-mapper gap) followed by the per-mapper mean/max summary.
    Byte-deterministic — no wall times — safe to pin in CI. *)

val render_csv : instance_run list -> string
(** One line per (instance, mapper):
    [label,seed,hosts,guests,optimum,proven,nodes,mapper,objective,gap_pct]
    with empty fields where a value does not exist. *)

val render_timings : instance_run list -> string
(** Exact-solver wall time and node count per instance; print to
    stderr, never into diffed output. *)
