module Service = Hmn_online.Service
module Session = Hmn_online.Session
module Admission = Hmn_online.Admission
module Pretty_table = Hmn_prelude.Pretty_table

type cell = {
  policy : string;
  load : float;
  summary : Session.summary;
}

type results = {
  base_config : Service.config;
  cells : cell list;  (** grouped by load, then policy, in input order *)
}

let default_policies = [ "HMN"; "R"; "HS" ]
let default_loads = [ 0.5; 1.0; 2.0 ]

let run ?(policies = default_policies) ?(loads = default_loads) ~cluster
    ~config () =
  if loads = [] then Error "no load levels given"
  else if List.exists (fun l -> l <= 0.) loads then
    Error "load levels must be positive"
  else
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
          match Admission.find_policy name with
          | Ok p -> resolve ((name, p) :: acc) rest
          | Error e -> Error e)
    in
    match resolve [] policies with
    | Error e -> Error e
    | Ok resolved ->
        let cells =
          List.concat_map
            (fun load ->
              List.map
                (fun (name, policy) ->
                  let cfg =
                    {
                      config with
                      Service.arrival_rate_per_s =
                        config.Service.arrival_rate_per_s *. load;
                    }
                  in
                  { policy = name; load; summary = Service.run ~cluster ~policy cfg })
                resolved)
            loads
        in
        Ok { base_config = config; cells }

let table r =
  let t =
    Pretty_table.create
      ~aligns:
        [
          Pretty_table.Right; Left; Right; Right; Right; Right; Right; Right;
          Right;
        ]
      ~header:
        [
          "load"; "policy"; "arrivals"; "accept"; "tenants"; "lbf"; "frag";
          "mem util"; "moves";
        ]
      ()
  in
  List.iter
    (fun { policy; load; summary = s } ->
      Pretty_table.add_row t
        [
          Printf.sprintf "%.2fx" load;
          policy;
          string_of_int s.Session.arrivals;
          Printf.sprintf "%.3f" s.Session.acceptance;
          Printf.sprintf "%.2f" s.Session.mean_tenants;
          Printf.sprintf "%.1f" s.Session.mean_lbf;
          Printf.sprintf "%.4f" s.Session.mean_fragmentation;
          Printf.sprintf "%.3f" s.Session.mean_mem_utilization;
          string_of_int s.Session.defrag_moves;
        ])
    r.cells;
  "Online service: acceptance and balance by admission policy and offered load\n"
  ^ Printf.sprintf
      "(seed %d, base rate %.4f/s, mean holding %.0f s, horizon %.0f s, %d-%d \
       guests)\n"
      r.base_config.Service.seed r.base_config.Service.arrival_rate_per_s
      r.base_config.Service.mean_holding_s r.base_config.Service.duration_s
      r.base_config.Service.guests_lo r.base_config.Service.guests_hi
  ^ Pretty_table.render t

let csv r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "policy,load,seed,arrivals,admitted,rejected,acceptance,mean_tenants,peak_tenants,mean_guests,peak_guests,mean_lbf,final_lbf,mean_fragmentation,mean_mem_utilization,mean_bw_utilization,defrag_rounds,defrag_moves\n";
  List.iter
    (fun { policy; load; summary = s } ->
      Buffer.add_string b
        (Printf.sprintf
           "%s,%g,%d,%d,%d,%d,%.6f,%.6f,%d,%.6f,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d\n"
           policy load s.Session.seed s.Session.arrivals s.Session.admitted
           s.Session.rejected s.Session.acceptance s.Session.mean_tenants
           s.Session.peak_tenants s.Session.mean_guests s.Session.peak_guests
           s.Session.mean_lbf s.Session.final_lbf s.Session.mean_fragmentation
           s.Session.mean_mem_utilization s.Session.mean_bw_utilization
           s.Session.defrag_rounds s.Session.defrag_moves))
    r.cells;
  Buffer.contents b
