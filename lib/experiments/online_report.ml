module Service = Hmn_online.Service
module Session = Hmn_online.Session
module Admission = Hmn_online.Admission
module Flight = Hmn_online.Flight
module Quantile = Hmn_obs.Quantile
module Pretty_table = Hmn_prelude.Pretty_table

type latency_source = Off | Wall_ms | Work_units

type slo = {
  samples : int;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  max_v : float;
}

type cell = {
  policy : string;
  load : float;
  summary : Session.summary;
  slo : slo option;
}

type results = {
  base_config : Service.config;
  latency : latency_source;
  cells : cell list;  (** grouped by load, then policy, in input order *)
}

let default_policies = [ "HMN"; "R"; "HS" ]
let default_loads = [ 0.5; 1.0; 2.0 ]

(* nanoseconds for wall clock, raw units for work *)
let slo_of_quantile ~scale q =
  let at p = scale *. float_of_int (Quantile.quantile q p) in
  {
    samples = Quantile.count q;
    p50 = at 0.5;
    p90 = at 0.9;
    p99 = at 0.99;
    p999 = at 0.999;
    max_v = scale *. float_of_int (Quantile.max_value q);
  }

let run ?(policies = default_policies) ?(loads = default_loads)
    ?(latency = Off) ~cluster ~config () =
  if loads = [] then Error "no load levels given"
  else if List.exists (fun l -> l <= 0.) loads then
    Error "load levels must be positive"
  else
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest -> (
          match Admission.find_policy name with
          | Ok p -> resolve ((name, p) :: acc) rest
          | Error e -> Error e)
    in
    match resolve [] policies with
    | Error e -> Error e
    | Ok resolved ->
        let cells =
          List.concat_map
            (fun load ->
              List.map
                (fun (name, policy) ->
                  let cfg =
                    {
                      config with
                      Service.arrival_rate_per_s =
                        config.Service.arrival_rate_per_s *. load;
                    }
                  in
                  let flight =
                    match latency with
                    | Off -> None
                    | Wall_ms | Work_units ->
                        (* quantile channels only: no journal or
                           timeline accumulating across the grid *)
                        Some
                          (Flight.create ~journal:false ~timeline:false
                             ~quantiles:true cluster)
                  in
                  let summary = Service.run ?flight ~cluster ~policy cfg in
                  let slo =
                    match (latency, flight) with
                    | Off, _ | _, None -> None
                    | Wall_ms, Some f ->
                        Option.map
                          (slo_of_quantile ~scale:1e-6 (* ns -> ms *))
                          (Flight.admit_ns f)
                    | Work_units, Some f ->
                        Option.map (slo_of_quantile ~scale:1.)
                          (Flight.admit_work f)
                  in
                  { policy = name; load; summary; slo })
                resolved)
            loads
        in
        Ok { base_config = config; latency; cells }

let table r =
  let t =
    Pretty_table.create
      ~aligns:
        [
          Pretty_table.Right; Left; Right; Right; Right; Right; Right; Right;
          Right;
        ]
      ~header:
        [
          "load"; "policy"; "arrivals"; "accept"; "tenants"; "lbf"; "frag";
          "mem util"; "moves";
        ]
      ()
  in
  List.iter
    (fun { policy; load; summary = s; _ } ->
      Pretty_table.add_row t
        [
          Printf.sprintf "%.2fx" load;
          policy;
          string_of_int s.Session.arrivals;
          Printf.sprintf "%.3f" s.Session.acceptance;
          Printf.sprintf "%.2f" s.Session.mean_tenants;
          Printf.sprintf "%.1f" s.Session.mean_lbf;
          Printf.sprintf "%.4f" s.Session.mean_fragmentation;
          Printf.sprintf "%.3f" s.Session.mean_mem_utilization;
          string_of_int s.Session.defrag_moves;
        ])
    r.cells;
  "Online service: acceptance and balance by admission policy and offered load\n"
  ^ Printf.sprintf
      "(seed %d, base rate %.4f/s, mean holding %.0f s, horizon %.0f s, %d-%d \
       guests)\n"
      r.base_config.Service.seed r.base_config.Service.arrival_rate_per_s
      r.base_config.Service.mean_holding_s r.base_config.Service.duration_s
      r.base_config.Service.guests_lo r.base_config.Service.guests_hi
  ^ Pretty_table.render t

let csv r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    "policy,load,seed,arrivals,admitted,rejected,acceptance,mean_tenants,peak_tenants,mean_guests,peak_guests,mean_lbf,final_lbf,mean_fragmentation,mean_mem_utilization,mean_bw_utilization,defrag_rounds,defrag_moves\n";
  List.iter
    (fun { policy; load; summary = s; _ } ->
      Buffer.add_string b
        (Printf.sprintf
           "%s,%g,%d,%d,%d,%d,%.6f,%.6f,%d,%.6f,%d,%.6f,%.6f,%.6f,%.6f,%.6f,%d,%d\n"
           policy load s.Session.seed s.Session.arrivals s.Session.admitted
           s.Session.rejected s.Session.acceptance s.Session.mean_tenants
           s.Session.peak_tenants s.Session.mean_guests s.Session.peak_guests
           s.Session.mean_lbf s.Session.final_lbf s.Session.mean_fragmentation
           s.Session.mean_mem_utilization s.Session.mean_bw_utilization
           s.Session.defrag_rounds s.Session.defrag_moves))
    r.cells;
  Buffer.contents b

let require_slo r what =
  match r.latency with
  | Off ->
      invalid_arg
        (Printf.sprintf "Online_report.%s: grid ran without SLO collection"
           what)
  | Wall_ms | Work_units -> ()

let unit_label = function
  | Off -> assert false
  | Wall_ms -> "ms"
  | Work_units -> "work units"

(* wall-clock milliseconds get sub-bucket resolution; work units are
   integers by construction *)
let fmt_value latency v =
  match latency with
  | Off -> assert false
  | Wall_ms -> Printf.sprintf "%.3f" v
  | Work_units -> Printf.sprintf "%.0f" v

let slo_table r =
  require_slo r "slo_table";
  let t =
    Pretty_table.create
      ~aligns:
        [
          Pretty_table.Right; Left; Right; Right; Right; Right; Right; Right;
        ]
      ~header:
        [ "load"; "policy"; "samples"; "p50"; "p90"; "p99"; "p999"; "max" ]
      ()
  in
  List.iter
    (fun { policy; load; slo; _ } ->
      match slo with
      | None -> ()
      | Some s ->
          let f = fmt_value r.latency in
          Pretty_table.add_row t
            [
              Printf.sprintf "%.2fx" load;
              policy;
              string_of_int s.samples;
              f s.p50;
              f s.p90;
              f s.p99;
              f s.p999;
              f s.max_v;
            ])
    r.cells;
  Printf.sprintf
    "Admission latency SLO (%s) by admission policy and offered load\n"
    (unit_label r.latency)
  ^ Printf.sprintf
      "(seed %d, base rate %.4f/s, mean holding %.0f s, horizon %.0f s, %d-%d \
       guests)\n"
      r.base_config.Service.seed r.base_config.Service.arrival_rate_per_s
      r.base_config.Service.mean_holding_s r.base_config.Service.duration_s
      r.base_config.Service.guests_lo r.base_config.Service.guests_hi
  ^ Pretty_table.render t

let slo_csv r =
  require_slo r "slo_csv";
  let b = Buffer.create 512 in
  Buffer.add_string b "policy,load,unit,samples,p50,p90,p99,p999,max\n";
  List.iter
    (fun { policy; load; slo; _ } ->
      match slo with
      | None -> ()
      | Some s ->
          Buffer.add_string b
            (Printf.sprintf "%s,%g,%s,%d,%g,%g,%g,%g,%g\n" policy load
               (match r.latency with
               | Off -> assert false
               | Wall_ms -> "ms"
               | Work_units -> "work")
               s.samples s.p50 s.p90 s.p99 s.p999 s.max_v))
    r.cells;
  Buffer.contents b
