module Cluster = Hmn_testbed.Cluster
module Cluster_gen = Hmn_testbed.Cluster_gen
module Link = Hmn_testbed.Link
module Virtual_env = Hmn_vnet.Virtual_env
module Problem = Hmn_mapping.Problem
module Mapping = Hmn_mapping.Mapping
module Mapper = Hmn_core.Mapper
module Hmn = Hmn_core.Hmn
module Validator = Hmn_validate.Validator
module Rng = Hmn_rng.Rng

type shape = Clos | Fat_tree

let shape_name = function Clos -> "clos" | Fat_tree -> "fat-tree"

(* Edge (host) links stay at the paper's 1 Gbps / 5 ms; switch-to-switch
   tiers get 10 Gbps so bisection bandwidth does not collapse as racks
   multiply — at 4000 hosts a 1 Gbps spine uplink would be saturated by
   a handful of cross-rack virtual links, failing every instance for a
   reason the paper's 40-host tables never exhibit. *)
let uplink = Link.make ~bandwidth_mbps:10_000. ~latency_ms:5.

(* Rack geometry per target size: small sizes mirror the paper's
   switched cluster (10 hosts per switch); the 4000-host point uses
   100 racks of 40 so the per-rack subproblem stays the size of the
   whole paper cluster. *)
let clos_geometry ~hosts =
  let hosts_per_rack, spines =
    if hosts <= 40 then (10, 2) else if hosts <= 400 then (10, 4) else (40, 8)
  in
  let racks = max 1 ((hosts + hosts_per_rack - 1) / hosts_per_rack) in
  (racks, hosts_per_rack, spines)

(* Smallest even k with k^3/4 >= hosts. *)
let fat_tree_k ~hosts =
  let rec grow k = if k * k * k / 4 >= hosts then k else grow (k + 2) in
  grow 4

let cluster ~shape ~hosts ~rng =
  match shape with
  | Clos ->
    let racks, hosts_per_rack, spines = clos_geometry ~hosts in
    Cluster_gen.clos_cluster ~uplink ~racks ~hosts_per_rack ~spines ~rng ()
  | Fat_tree ->
    let k = fat_tree_k ~hosts in
    Cluster_gen.fat_tree_cluster ~agg_link:uplink ~core_link:uplink ~k ~rng ()

(* ~1.5 virtual links per guest independent of size: the paper's
   density is defined against the complete graph, so a fixed density
   would grow vlinks quadratically and drown the scaling signal in
   instance growth rather than cluster growth. *)
let density ~n_guests = if n_guests <= 1 then 1. else 3. /. float_of_int (n_guests - 1)

let problem ~shape ~hosts ~ratio ~seed =
  let rng = Rng.create seed in
  let cluster = cluster ~shape ~hosts ~rng in
  let n_guests = ratio * Cluster.n_hosts cluster in
  (* The paper's rule: fat high-level guests up to 10:1, thin low-level
     guests for 20:1 and beyond. At 25:1 the high-level profile put
     both memory and storage at the calibrated 85% ceiling, where
     two-dimensional packing strands each host in whichever dimension
     fills first and every algorithm (flat included) fails — a
     pressure artefact, not a scaling signal. *)
  let profile =
    if ratio <= 10 then Hmn_vnet.Workload.high_level
    else Hmn_vnet.Workload.low_level
  in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, Setup.fit_fraction)
      ~profile ~n:n_guests ~density:(density ~n_guests) ~rng ()
  in
  Problem.make ~cluster ~venv

type result = {
  shape : shape;
  n_hosts : int;
  n_racks : int;
  n_guests : int;
  n_vlinks : int;
  outcome : Mapper.outcome;
  report : Hmn.stage_report;
  valid : bool option;  (* None: validation off or mapping failed *)
}

let run ?jobs ?(ratio = 25) ?(seed = 42) ?(validate = false) ~shape ~hosts () =
  let problem = problem ~shape ~hosts ~ratio ~seed in
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  (* Unlimited migration is O(guests^2) in the worst case; at 100k
     guests the default 16x cap would dominate wall time for marginal
     LBF gains. Four moves per host keeps the stage linear in cluster
     size. *)
  let max_moves = 4 * Cluster.n_hosts cluster in
  let outcome, report = Hmn.run_sharded_detailed ?jobs ~max_moves problem in
  let valid =
    match outcome.Mapper.result with
    | Ok mapping when validate ->
      Some ((Validator.check mapping).Validator.violations = [])
    | _ -> None
  in
  {
    shape;
    n_hosts = Cluster.n_hosts cluster;
    n_racks = Cluster.n_racks cluster;
    n_guests = Virtual_env.n_guests venv;
    n_vlinks = Virtual_env.n_vlinks venv;
    outcome;
    report;
    valid;
  }

(* Deterministic summary: everything here must be byte-identical across
   runs, machines and jobs counts — wall times go to {!render_timings}
   (stderr) instead. *)
let render_summary r =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "scale: %s  hosts=%d racks=%d guests=%d vlinks=%d\n"
       (shape_name r.shape) r.n_hosts r.n_racks r.n_guests r.n_vlinks);
  (match r.outcome.Mapper.result with
  | Error f ->
    Buffer.add_string b
      (Printf.sprintf "result: FAILED at %s (%s)\n" f.Mapper.stage f.Mapper.reason)
  | Ok mapping ->
    Buffer.add_string b
      (Printf.sprintf "result: mapped  lbf=%.6f hops=%d mean-latency=%.3fms\n"
         (Mapping.objective mapping)
         (Mapping.total_hops mapping)
         (Mapping.mean_path_latency mapping));
    (match r.report.Hmn.migration_stats with
    | Some m ->
      Buffer.add_string b
        (Printf.sprintf "migration: %d moves (lbf %.6f -> %.6f)\n" m.Hmn_core.Migration.moves
           m.Hmn_core.Migration.lbf_before m.Hmn_core.Migration.lbf_after)
    | None -> ());
    (match r.report.Hmn.networking_stats with
    | Some s ->
      Buffer.add_string b
        (Printf.sprintf "networking: %d routed, %d intra-host, %d expansions\n"
           s.Hmn_core.Networking.routed s.Hmn_core.Networking.intra_host
           s.Hmn_core.Networking.expanded)
    | None -> ()));
  (match r.valid with
  | Some true -> Buffer.add_string b "validation: OK\n"
  | Some false -> Buffer.add_string b "validation: VIOLATIONS\n"
  | None -> ());
  Buffer.contents b

(* Deterministic like the summary: search-effort counters only, no wall
   time. CI pins these for the 432-host fixture — any drift means the
   default engine is no longer bit-identical to the reference. *)
let render_routing_counters r =
  match r.report.Hmn.networking_stats with
  | None -> ""
  | Some s ->
    Printf.sprintf "routing: expanded=%d generated=%d cache_hits=%d fast_path=%d\n"
      s.Hmn_core.Networking.expanded s.Hmn_core.Networking.generated
      s.Hmn_core.Networking.cache_hits s.Hmn_core.Networking.fast_path

let render_timings r =
  Printf.sprintf "timings: hosting=%.3fs migration=%.3fs networking=%.3fs total=%.3fs\n"
    r.report.Hmn.hosting_s r.report.Hmn.migration_s r.report.Hmn.networking_s
    r.outcome.Mapper.elapsed_s
