module Cluster = Hmn_testbed.Cluster
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Mapping = Hmn_mapping.Mapping
module Mapper = Hmn_core.Mapper
module Running = Hmn_stats.Running
module Table = Hmn_prelude.Pretty_table

let fmt_mean r = if Running.count r = 0 then "-" else Printf.sprintf "%.1f" (Running.mean r)
let fmt_mean3 r = if Running.count r = 0 then "-" else Printf.sprintf "%.3f" (Running.mean r)

(* ---- migration ablation ---- *)

let migration ?(reps = 3) ?(seed = 7100) () =
  let scenarios =
    [
      ("2.5:1 high", Hmn_vnet.Workload.high_level, 100, 0.02);
      ("7.5:1 high", Hmn_vnet.Workload.high_level, 300, 0.02);
      ("20:1 low", Hmn_vnet.Workload.low_level, 800, 0.01);
    ]
  in
  let table =
    Table.create
      ~aligns:Table.[ Left; Right; Right; Right; Right; Right ]
      ~header:
        [ "scenario"; "HMN obj"; "HN obj"; "moves"; "HMN sim (s)"; "HN sim (s)" ]
      ()
  in
  List.iter
    (fun (label, profile, n, density) ->
      let full_obj = Running.create () and abl_obj = Running.create () in
      let full_sim = Running.create () and abl_sim = Running.create () in
      let moves = Running.create () in
      for rep = 0 to reps - 1 do
        let rng = Hmn_rng.Rng.create (seed + rep) in
        let cluster = Scenario.build_cluster Scenario.Torus ~rng in
        let venv =
          Hmn_vnet.Venv_gen.generate ~scale_to_fit:(cluster, Setup.fit_fraction)
            ~profile ~n ~density ~rng ()
        in
        let problem = Problem.make ~cluster ~venv in
        let outcome, report = Hmn_core.Hmn.run_detailed problem in
        (match report.Hmn_core.Hmn.migration_stats with
        | Some s -> Running.add moves (float_of_int s.Hmn_core.Migration.moves)
        | None -> ());
        (match outcome.Mapper.result with
        | Ok m ->
          Running.add full_obj (Mapping.objective m);
          Running.add full_sim (Hmn_emulation.Exec_sim.run m).Hmn_emulation.Exec_sim.makespan_s
        | Error _ -> ());
        match (Hmn_core.Hmn.without_migration problem).Mapper.result with
        | Ok m ->
          Running.add abl_obj (Mapping.objective m);
          Running.add abl_sim (Hmn_emulation.Exec_sim.run m).Hmn_emulation.Exec_sim.makespan_s
        | Error _ -> ()
      done;
      Table.add_row table
        [ label; fmt_mean full_obj; fmt_mean abl_obj; fmt_mean moves;
          fmt_mean3 full_sim; fmt_mean3 abl_sim ])
    scenarios;
  "Ablation: Migration stage (HMN vs Hosting+Networking only, torus).\n"
  ^ Table.render table

(* ---- routing-metric ablation ---- *)

type router_kind = Widest | Min_latency | Dfs_first

let router_name = function
  | Widest -> "A*Prune (widest)"
  | Min_latency -> "Dijkstra (min latency)"
  | Dfs_first -> "DFS (first feasible)"

let router_of kind =
  match kind with
  | Widest -> None (* Networking's default *)
  | Min_latency ->
    Some
      (fun ~residual ~latency_tables:_ ~src ~dst ~bandwidth_mbps ~latency_ms () ->
        Hmn_routing.Dijkstra_route.route ~residual ~src ~dst ~bandwidth_mbps
          ~latency_ms ())
  | Dfs_first ->
    Some
      (fun ~residual ~latency_tables:_ ~src ~dst ~bandwidth_mbps ~latency_ms () ->
        Hmn_routing.Dfs_route.route ~max_steps:20000 ~residual ~src ~dst
          ~bandwidth_mbps ~latency_ms ())

let routing_metric ?(reps = 3) ?(seed = 7200) () =
  let table =
    Table.create
      ~aligns:Table.[ Left; Right; Right; Right; Right ]
      ~header:
        [ "router"; "success"; "net util (%)"; "mean hops"; "mean lat (ms)" ]
      ()
  in
  let kinds = [ Widest; Min_latency; Dfs_first ] in
  let stats =
    List.map (fun k -> (k, (ref 0, Running.create (), Running.create (), Running.create ()))) kinds
  in
  let total = ref 0 in
  for rep = 0 to reps - 1 do
    let rng = Hmn_rng.Rng.create (seed + rep) in
    let cluster = Scenario.build_cluster Scenario.Torus ~rng in
    let venv =
      Hmn_vnet.Venv_gen.generate ~scale_to_fit:(cluster, Setup.fit_fraction)
        ~profile:Hmn_vnet.Workload.high_level ~n:300 ~density:0.02 ~rng ()
    in
    let problem = Problem.make ~cluster ~venv in
    match Hmn_core.Hosting.run problem with
    | Error _ -> ()
    | Ok placement ->
      incr total;
      ignore (Hmn_core.Migration.run placement);
      List.iter
        (fun (kind, (succ, util, hops, lat)) ->
          match Hmn_core.Networking.run ?router:(router_of kind) placement with
          | Error _ -> ()
          | Ok (link_map, _) ->
            incr succ;
            let m = Mapping.make ~placement ~link_map in
            Running.add util
              (100. *. Hmn_routing.Residual.utilization (Hmn_mapping.Link_map.residual link_map));
            Running.add hops (float_of_int (Mapping.total_hops m));
            Running.add lat (Mapping.mean_path_latency m))
        stats
  done;
  List.iter
    (fun (kind, (succ, util, hops, lat)) ->
      Table.add_row table
        [
          router_name kind;
          Printf.sprintf "%d/%d" !succ !total;
          fmt_mean3 util;
          fmt_mean hops;
          fmt_mean lat;
        ])
    stats;
  "Ablation: Networking routing metric (same Hosting+Migration placements,\n\
   300 guests, density 0.02, torus).\n"
  ^ Table.render table

(* ---- topology sweep ---- *)

let topology_sweep ?(reps = 3) ?(seed = 7300) () =
  let ratio = 5 in
  let builders =
    [
      ("torus 5x8", fun hosts -> Hmn_testbed.Topology.torus ~hosts ~rows:5 ~cols:8 ~link:Setup.physical_link);
      ("switched", fun hosts -> Hmn_testbed.Topology.switched ~hosts ~ports:Setup.switch_ports ~link:Setup.physical_link);
      ("mesh 5x8", fun hosts -> Hmn_testbed.Topology.mesh ~hosts ~rows:5 ~cols:8 ~link:Setup.physical_link);
      ("ring", fun hosts -> Hmn_testbed.Topology.ring ~hosts ~link:Setup.physical_link);
      ("line", fun hosts -> Hmn_testbed.Topology.line ~hosts ~link:Setup.physical_link);
      ( "hypercube 32",
        fun hosts -> Hmn_testbed.Topology.hypercube ~hosts:(Array.sub hosts 0 32) ~link:Setup.physical_link );
      ( "fat-tree k=4",
        fun hosts -> Hmn_testbed.Topology.fat_tree ~hosts:(Array.sub hosts 0 16) ~k:4 ~link:Setup.physical_link () );
    ]
  in
  let table =
    Table.create
      ~aligns:Table.[ Left; Right; Right; Right; Right; Right ]
      ~header:[ "topology"; "success"; "objective"; "hops"; "lat (ms)"; "map time (s)" ]
      ()
  in
  List.iter
    (fun (label, build) ->
      let succ = ref 0 in
      let obj = Running.create () and hops = Running.create () in
      let lat = Running.create () and time = Running.create () in
      for rep = 0 to reps - 1 do
        let rng = Hmn_rng.Rng.create (seed + rep) in
        let all_hosts =
          Hmn_testbed.Cluster_gen.gen_hosts ~vmm:Setup.vmm ~profile:Setup.host_profile
            ~n:Setup.n_hosts ~rng ()
        in
        let cluster = build all_hosts in
        let n_guests = ratio * Cluster.n_hosts cluster in
        let venv =
          Hmn_vnet.Venv_gen.generate ~scale_to_fit:(cluster, Setup.fit_fraction)
            ~profile:Hmn_vnet.Workload.high_level ~n:n_guests ~density:0.02 ~rng ()
        in
        let problem = Problem.make ~cluster ~venv in
        let outcome = Hmn_core.Hmn.run problem in
        match outcome.Mapper.result with
        | Error _ -> ()
        | Ok m ->
          incr succ;
          Running.add obj (Mapping.objective m);
          Running.add hops (float_of_int (Mapping.total_hops m));
          Running.add lat (Mapping.mean_path_latency m);
          Running.add time outcome.Mapper.elapsed_s
      done;
      Table.add_row table
        [
          label;
          Printf.sprintf "%d/%d" !succ reps;
          fmt_mean obj;
          fmt_mean hops;
          fmt_mean lat;
          (if Running.count time = 0 then "-" else Printf.sprintf "%.4f" (Running.mean time));
        ])
    builders;
  Printf.sprintf
    "Ablation: HMN across physical topologies (%d guests per host, high-level\n\
     workload, density 0.02; host counts differ where the fabric dictates).\n"
    ratio
  ^ Table.render table

(* ---- affinity (the paper's §5.2 argument) ---- *)

(* Virtual environment where [n_fat] of the links demand 1.5 Gbps on a
   1 Gbps fabric: only co-location can satisfy them. *)
let affinity_venv ~cluster ~n ~n_fat ~rng =
  let venv =
    Hmn_vnet.Venv_gen.generate ~scale_to_fit:(cluster, Setup.fit_fraction)
      ~profile:Hmn_vnet.Workload.high_level ~n ~density:0.02 ~rng ()
  in
  let graph = Hmn_vnet.Virtual_env.graph venv in
  let n_links = Hmn_graph.Graph.n_edges graph in
  let fat = Hmn_rng.Sample.choose_k rng (min n_fat n_links) (Array.init n_links Fun.id) in
  let guests = Array.init n (Hmn_vnet.Virtual_env.guest venv) in
  let graph' =
    Hmn_graph.Graph.map_labels graph ~f:(fun ~eid label ->
        if Array.mem eid fat then
          Hmn_vnet.Vlink.make ~bandwidth_mbps:1500.
            ~latency_ms:label.Hmn_vnet.Vlink.latency_ms
        else label)
  in
  Hmn_vnet.Virtual_env.create ~guests ~graph:graph'

let affinity ?(reps = 5) ?(seed = 7400) () =
  let mappers = Hmn_core.Registry.paper ~max_tries:50 () in
  let table =
    Table.create
      ~aligns:Table.[ Left; Right; Right ]
      ~header:[ "heuristic"; "success"; "mean objective" ]
      ()
  in
  let stats = List.map (fun m -> (m, (ref 0, Running.create ()))) mappers in
  for rep = 0 to reps - 1 do
    let rng = Hmn_rng.Rng.create (seed + rep) in
    let cluster = Scenario.build_cluster Scenario.Torus ~rng in
    let venv = affinity_venv ~cluster ~n:150 ~n_fat:5 ~rng in
    let problem = Problem.make ~cluster ~venv in
    List.iter
      (fun (mapper, (succ, obj)) ->
        let rng' = Hmn_rng.Rng.create (seed + rep + (31 * Hashtbl.hash mapper.Mapper.name)) in
        match (mapper.Mapper.run ~rng:rng' problem).Mapper.result with
        | Ok m ->
          incr succ;
          Running.add obj (Mapping.objective m)
        | Error _ -> ())
      stats
  done;
  List.iter
    (fun (mapper, (succ, obj)) ->
      Table.add_row table
        [ mapper.Mapper.name; Printf.sprintf "%d/%d" !succ reps; fmt_mean obj ])
    stats;
  "Ablation: affinity (5.2's argument) — 5 virtual links demand 1.5 Gbps on a\n\
   1 Gbps fabric, so only co-location can map them (150 guests, torus).\n"
  ^ Table.render table

(* ---- virtual-shape sweep ---- *)

let shape_sweep ?(reps = 3) ?(seed = 7500) () =
  let shapes =
    [
      ("density 0.02", Hmn_vnet.Venv_gen.Random_connected 0.02);
      ("star", Hmn_vnet.Venv_gen.Star);
      ("tree", Hmn_vnet.Venv_gen.Random_tree);
      ("scale-free m=2", Hmn_vnet.Venv_gen.Barabasi_albert 2);
      ("waxman .4/.3", Hmn_vnet.Venv_gen.Waxman (0.4, 0.3));
    ]
  in
  let table =
    Table.create
      ~aligns:Table.[ Left; Right; Right; Right; Right ]
      ~header:[ "virtual shape"; "success"; "objective"; "vlinks"; "intra-host (%)" ]
      ()
  in
  List.iter
    (fun (label, shape) ->
      let succ = ref 0 in
      let obj = Running.create () and links = Running.create () in
      let intra = Running.create () in
      for rep = 0 to reps - 1 do
        let rng = Hmn_rng.Rng.create (seed + rep) in
        let cluster = Scenario.build_cluster Scenario.Torus ~rng in
        let venv =
          Hmn_vnet.Venv_gen.generate_shaped ~scale_to_fit:(cluster, Setup.fit_fraction)
            ~profile:Hmn_vnet.Workload.high_level ~n:200 ~shape ~rng ()
        in
        let problem = Problem.make ~cluster ~venv in
        match (Hmn_core.Hmn.run problem).Mapper.result with
        | Error _ -> ()
        | Ok m ->
          incr succ;
          Running.add obj (Mapping.objective m);
          let n_links = Hmn_vnet.Virtual_env.n_vlinks venv in
          Running.add links (float_of_int n_links);
          let n_intra = ref 0 in
          Hmn_mapping.Link_map.iter_mapped m.Mapping.link_map (fun ~vlink:_ p ->
              if Hmn_routing.Path.is_intra_host p then incr n_intra);
          Running.add intra (100. *. float_of_int !n_intra /. float_of_int (max n_links 1))
      done;
      Table.add_row table
        [
          label;
          Printf.sprintf "%d/%d" !succ reps;
          fmt_mean obj;
          fmt_mean links;
          fmt_mean intra;
        ])
    shapes;
  "Ablation: HMN across virtual-topology families (200 guests, torus).\n"
  ^ Table.render table

(* ---- feasibility sensitivity ---- *)

let feasibility ?(reps = 3) ?(seed = 7600) () =
  let fractions = [ 0.70; 0.80; 0.85; 0.90; 0.95; 1.0 ] in
  let mappers = Hmn_core.Registry.paper ~max_tries:100 () in
  let table =
    Table.create
      ~aligns:(Table.Left :: List.map (fun _ -> Table.Right) mappers)
      ~header:
        ("mem target"
        :: List.map (fun m -> m.Mapper.name ^ " ok") mappers)
      ()
  in
  List.iter
    (fun frac ->
      let successes = List.map (fun m -> (m, ref 0)) mappers in
      for rep = 0 to reps - 1 do
        let rng = Hmn_rng.Rng.create (seed + rep) in
        let cluster = Scenario.build_cluster Scenario.Torus ~rng in
        let venv =
          Hmn_vnet.Venv_gen.generate ~scale_to_fit:(cluster, frac)
            ~profile:Hmn_vnet.Workload.high_level ~n:400 ~density:0.02 ~rng ()
        in
        let problem = Problem.make ~cluster ~venv in
        List.iter
          (fun (mapper, count) ->
            let rng' =
              Hmn_rng.Rng.create (seed + rep + (31 * Hashtbl.hash mapper.Mapper.name))
            in
            match (mapper.Mapper.run ~rng:rng' problem).Mapper.result with
            | Ok _ -> incr count
            | Error _ -> ())
          successes
      done;
      Table.add_row table
        (Printf.sprintf "%.0f%%" (100. *. frac)
        :: List.map (fun (_, c) -> Printf.sprintf "%d/%d" !c reps) successes))
    fractions;
  "Ablation: feasibility calibration — success counts at 10:1 (400 guests,\n\
   torus) as the aggregate-memory target rises toward the paper's\n\
   uncalibrated ~96% level. (A 100% target leaves demands unscaled when they\n\
   already fit; the uncalibrated instance sits at ~96%.)\n"
  ^ Table.render table

let all ?reps ?seed () =
  String.concat "\n"
    [
      migration ?reps ?seed ();
      routing_metric ?reps ?seed ();
      topology_sweep ?reps ?seed ();
      affinity ?reps ?seed ();
      shape_sweep ?reps ?seed ();
      feasibility ?reps ?seed ();
    ]
