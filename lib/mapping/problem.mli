(** A mapping-problem instance: the physical cluster plus the virtual
    environment to be emulated on it (paper §3.2). *)

type t = {
  cluster : Hmn_testbed.Cluster.t;
  venv : Hmn_vnet.Virtual_env.t;
}

val make : cluster:Hmn_testbed.Cluster.t -> venv:Hmn_vnet.Virtual_env.t -> t
(** Raises [Invalid_argument] when the cluster has no hosts or the
    virtual environment no guests. *)

val guests_per_host_ratio : t -> float
(** Guests divided by hosts — the scenario parameter of Tables 2–3. *)

type screen_cause = Aggregate_mem | Aggregate_stor | Disconnected
(** Why the cheap screen rejected — the closed taxonomy the online
    admission journal records under [screened-*]. *)

val obviously_infeasible_cause : t -> (screen_cause * string) option
(** Cheap necessary-condition screen: total guest memory or storage
    exceeding the cluster total, or an unconnected cluster with
    cross-component demands, can never be mapped. [None] means "may be
    feasible". Checks run in the declared order, so the cause is
    deterministic when several apply. *)

val obviously_infeasible : t -> string option
(** [obviously_infeasible_cause] without the structured cause. *)

val pp_summary : Format.formatter -> t -> unit
