module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env

type t = {
  cluster : Cluster.t;
  venv : Virtual_env.t;
}

let make ~cluster ~venv =
  if Cluster.n_hosts cluster = 0 then invalid_arg "Problem.make: cluster has no hosts";
  if Virtual_env.n_guests venv = 0 then invalid_arg "Problem.make: no guests";
  { cluster; venv }

let guests_per_host_ratio t =
  float_of_int (Virtual_env.n_guests t.venv) /. float_of_int (Cluster.n_hosts t.cluster)

type screen_cause = Aggregate_mem | Aggregate_stor | Disconnected

let obviously_infeasible_cause t =
  let total_cap = Cluster.total_capacity t.cluster in
  let total_dem = Virtual_env.total_demand t.venv in
  if total_dem.Resources.mem_mb > total_cap.Resources.mem_mb then
    Some
      ( Aggregate_mem,
        Printf.sprintf "aggregate guest memory %.0f MB exceeds cluster total %.0f MB"
          total_dem.Resources.mem_mb total_cap.Resources.mem_mb )
  else if total_dem.Resources.stor_gb > total_cap.Resources.stor_gb then
    Some
      ( Aggregate_stor,
        Printf.sprintf "aggregate guest storage %.0f GB exceeds cluster total %.0f GB"
          total_dem.Resources.stor_gb total_cap.Resources.stor_gb )
  else if Virtual_env.n_vlinks t.venv > 0 && not (Cluster.is_connected t.cluster) then
    Some (Disconnected, "cluster is disconnected but virtual links exist")
  else None

let obviously_infeasible t = Option.map snd (obviously_infeasible_cause t)

let pp_summary ppf t =
  Format.fprintf ppf "%a@ %a@ ratio %.1f:1" Cluster.pp_summary t.cluster
    Virtual_env.pp_summary t.venv (guests_per_host_ratio t)
