type t = {
  mutable rows : (string * float * float) list;  (* reversed *)
  mutable n : int;
}

let create () = { rows = []; n = 0 }

let observe t ~group ~objective ~makespan_s =
  t.rows <- (group, objective, makespan_s) :: t.rows;
  t.n <- t.n + 1

let count t = t.n

(* Both row lists are newest-first, so placing [src.rows] in front of
   [t.rows] appends [src]'s observations, in their insertion order,
   after everything already in [t]. *)
let append t src =
  t.rows <- src.rows @ t.rows;
  t.n <- t.n + src.n

let merge a b =
  let t = create () in
  append t a;
  append t b;
  t

let arrays rows =
  ( Array.of_list (List.map (fun (_, o, _) -> o) rows),
    Array.of_list (List.map (fun (_, _, m) -> m) rows) )

let ordered t = List.rev t.rows

let pearson t =
  let xs, ys = arrays (ordered t) in
  Hmn_stats.Correlation.pearson xs ys

let spearman t =
  let xs, ys = arrays (ordered t) in
  Hmn_stats.Correlation.spearman xs ys

let within_group t =
  let groups = Hmn_prelude.List_ext.group_by (fun (g, _, _) -> g) (ordered t) in
  List.filter_map
    (fun (label, rows) ->
      if List.length rows < 3 then None
      else begin
        let xs, ys = arrays rows in
        match Hmn_stats.Correlation.pearson xs ys with
        | r -> Some (label, List.length rows, r)
        | exception Invalid_argument _ -> None
      end)
    groups

let median_within_group t =
  match within_group t with
  | [] -> None
  | groups ->
    let rs = Array.of_list (List.map (fun (_, _, r) -> r) groups) in
    Some (Hmn_stats.Descriptive.median rs)

let observations t = Array.of_list (ordered t)
