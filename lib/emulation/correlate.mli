(** Objective-function ↔ experiment-runtime correlation (paper §5.2).

    The paper reports r ≈ 0.7 between the load-balance factor of a
    mapping and the execution time of the emulated experiment, which it
    uses to justify Eq. (10) as the objective. Observations carry a
    group label (the scenario) because the objective's scale depends on
    the workload family: pooling heterogeneous scenarios understates
    the relationship, so the harness reports both the pooled
    coefficient and the median within-group coefficient. *)

type t

val create : unit -> t

val observe : t -> group:string -> objective:float -> makespan_s:float -> unit

val count : t -> int

val append : t -> t -> unit
(** [append t src] adds every observation of [src] to [t], after [t]'s
    existing rows and preserving [src]'s insertion order; [src] is left
    untouched. The parallel experiment runner gives each instance its
    own buffer and appends them in canonical order, so the merged
    buffer is identical to a sequential sweep's. *)

val merge : t -> t -> t
(** Fresh buffer holding [a]'s observations followed by [b]'s. *)

val pearson : t -> float
(** Pooled over all observations. Raises [Invalid_argument] with fewer
    than two observations or degenerate variance. *)

val spearman : t -> float

val within_group : t -> (string * int * float) list
(** Per-group (label, n, Pearson r), for groups with at least three
    observations and non-degenerate variance. *)

val median_within_group : t -> float option
(** Median of the within-group coefficients; [None] when no group
    qualifies. *)

val observations : t -> (string * float * float) array
(** Insertion-ordered (group, objective, makespan) triples. *)
