module Json = Hmn_prelude.Json

type vm = {
  guest : int;
  name : string;
  host : int;
  mem_mb : float;
  stor_gb : float;
  cpu_mips : float;
  iface : string;
  bridge : string;
}

type cls = { minor : int; vlink : int; rate_mbps : float; delay_ms : float }

type shaped_link = {
  edge : int;
  u : int;
  v : int;
  capacity_mbps : float;
  link_delay_ms : float;
  classes : cls list;
}

type bridge = { bridge_name : string; ports : string list }

type scope = Full | Tenant of int

type t = {
  artifact_format : Spec.format;
  schema_version : int;
  scope : scope;
  vmm_label : string;
  vms : vm list;
  bridges : bridge list;
  links : shaped_link list;
  problem : Json.t option;
  venv : Json.t option;
  counts : (string * int) list;
  tolerance_mbps : float;
}

exception Parse of string

let fail fmt = Printf.ksprintf (fun msg -> raise (Parse msg)) fmt

let int_field ctx s =
  match int_of_string_opt s with
  | Some n -> n
  | None -> fail "%s: expected an integer, got %S" ctx s

let float_field ctx s =
  match float_of_string_opt s with
  | Some x -> x
  | None -> fail "%s: expected a number, got %S" ctx s

(* strip a known prefix/suffix, e.g. "pe7" -> 7, "25mbit" -> "25" *)
let strip_prefix ctx ~prefix s =
  let np = String.length prefix and n = String.length s in
  if n > np && String.sub s 0 np = prefix then String.sub s np (n - np)
  else fail "%s: expected %s-prefixed token, got %S" ctx prefix s

let strip_suffix ctx ~suffix s =
  let ns = String.length suffix and n = String.length s in
  if n > ns && String.sub s (n - ns) ns = suffix then String.sub s 0 (n - ns)
  else fail "%s: expected %s-suffixed token, got %S" ctx suffix s

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun s -> s <> "")

let unquote s =
  let n = String.length s in
  if n >= 2 && s.[0] = '\'' && s.[n - 1] = '\'' then String.sub s 1 (n - 2)
  else s

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* "--flag value --flag value ..." -> assoc list *)
let rec flag_pairs ctx = function
  | [] -> []
  | flag :: value :: rest when starts_with ~prefix:"--" flag ->
    (String.sub flag 2 (String.length flag - 2), unquote value)
    :: flag_pairs ctx rest
  | tok :: _ -> fail "%s: malformed flag list at %S" ctx tok

let flag ctx pairs name =
  match List.assoc_opt name pairs with
  | Some v -> v
  | None -> fail "%s: missing --%s" ctx name

(* "k=v k=v ..." -> assoc list *)
let kv_pairs ctx toks =
  List.map
    (fun tok ->
      match String.index_opt tok '=' with
      | Some i ->
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
      | None -> fail "%s: expected key=value, got %S" ctx tok)
    toks

let kv ctx pairs name =
  match List.assoc_opt name pairs with
  | Some v -> v
  | None -> fail "%s: missing %s=" ctx name

let lines s = String.split_on_char '\n' s |> List.filter (fun l -> l <> "")

(* ---- shell grammar ---- *)

let parse_vms_shell content =
  List.filter_map
    (fun line ->
      if starts_with ~prefix:"hmn_vm launch " line then begin
        let ctx = "vms" in
        let pairs = flag_pairs ctx (List.tl (List.tl (tokens line))) in
        let f = flag ctx pairs in
        Some
          {
            guest = int_field ctx (f "guest");
            name = f "name";
            host = int_field ctx (f "host");
            mem_mb = float_field ctx (f "mem-mb");
            stor_gb = float_field ctx (f "stor-gb");
            cpu_mips = float_field ctx (f "cpu-mips");
            iface = f "iface";
            bridge = f "bridge";
          }
      end
      else None)
    (lines content)

(* Partial tc class being assembled from its three lines. *)
type partial = {
  p_minor : int;
  mutable p_rate : float option;
  mutable p_delay : float option;
  mutable p_vlink : int option;
}

let parse_net_shell content =
  let bridges = ref [] (* (name, ports ref) in reverse order *) in
  let bridge_ports name =
    match List.assoc_opt name !bridges with
    | Some ports -> ports
    | None ->
      (* tenant deltas add ports to pre-existing bridges *)
      let ports = ref [] in
      bridges := (name, ports) :: !bridges;
      ports
  in
  let links = ref [] in
  let current = ref None (* (shaped_link sans classes, partials rev) *) in
  let finalize () =
    match !current with
    | None -> ()
    | Some (link, partials) ->
      let classes =
        List.rev_map
          (fun p ->
            let need what = function
              | Some v -> v
              | None ->
                fail "net: link e%d class 1:%d missing its %s line" link.edge
                  p.p_minor what
            in
            {
              minor = p.p_minor;
              rate_mbps = need "class" p.p_rate;
              delay_ms = need "netem" p.p_delay;
              vlink = need "filter" p.p_vlink;
            })
          partials
      in
      links := { link with classes } :: !links;
      current := None
  in
  let expect_dev ctx dev =
    match !current with
    | Some (link, _) when dev = Printf.sprintf "pe%d" link.edge -> link
    | Some (link, _) ->
      fail "net: %s on dev %s outside its link block (current e%d)" ctx dev
        link.edge
    | None -> fail "net: %s on dev %s before any # link header" ctx dev
  in
  let find_partial ctx minor pick =
    match !current with
    | None -> assert false
    | Some (_, partials) -> (
      match List.find_opt pick partials with
      | Some p -> p
      | None -> fail "net: %s for class 1:%d has no matching class" ctx minor)
  in
  List.iter
    (fun line ->
      let toks = tokens line in
      match toks with
      | "ovs-vsctl" :: "add-br" :: name :: [] ->
        bridges := (name, ref []) :: !bridges
      | "ovs-vsctl" :: "add-port" :: br :: port :: [] ->
        let ports = bridge_ports br in
        ports := port :: !ports
      | "#" :: "link" :: rest ->
        finalize ();
        let ctx = "net link header" in
        (match rest with
        | e :: kvs ->
          let pairs = kv_pairs ctx kvs in
          let link =
            {
              edge = int_field ctx (strip_prefix ctx ~prefix:"e" e);
              u = int_field ctx (kv ctx pairs "u");
              v = int_field ctx (kv ctx pairs "v");
              capacity_mbps = float_field ctx (kv ctx pairs "cap-mbit");
              link_delay_ms = float_field ctx (kv ctx pairs "delay-ms");
              classes = [];
            }
          in
          current := Some (link, [])
        | [] -> fail "%s: empty" ctx)
      | "tc" :: "qdisc" :: "add" :: "dev" :: dev :: "root" :: _ ->
        ignore (expect_dev "root qdisc" dev)
      | "tc" :: "class" :: "add" :: "dev" :: dev :: "parent" :: "1:"
        :: "classid" :: classid :: "htb" :: "rate" :: rate :: _ ->
        let ctx = "net class" in
        ignore (expect_dev ctx dev);
        let minor =
          int_field ctx (strip_prefix ctx ~prefix:"1:" classid)
        in
        let p =
          {
            p_minor = minor;
            p_rate =
              Some (float_field ctx (strip_suffix ctx ~suffix:"mbit" rate));
            p_delay = None;
            p_vlink = None;
          }
        in
        (match !current with
        | Some (link, partials) -> current := Some (link, p :: partials)
        | None -> assert false)
      | "tc" :: "qdisc" :: "add" :: "dev" :: dev :: "parent" :: parent
        :: "handle" :: _ :: "netem" :: "delay" :: delay :: _ ->
        let ctx = "net netem" in
        ignore (expect_dev ctx dev);
        let minor = int_field ctx (strip_prefix ctx ~prefix:"1:" parent) in
        let p =
          find_partial ctx minor (fun p ->
              p.p_minor = minor && p.p_delay = None)
        in
        p.p_delay <- Some (float_field ctx (strip_suffix ctx ~suffix:"ms" delay))
      | "tc" :: "filter" :: "add" :: "dev" :: dev :: "parent" :: "1:"
        :: "handle" :: handle :: "fw" :: "flowid" :: flowid :: _ ->
        let ctx = "net filter" in
        ignore (expect_dev ctx dev);
        let minor = int_field ctx (strip_prefix ctx ~prefix:"1:" flowid) in
        let p =
          find_partial ctx minor (fun p ->
              p.p_minor = minor && p.p_vlink = None)
        in
        p.p_vlink <- Some (int_field ctx handle)
      | _ -> ())
    (lines content);
  finalize ();
  let bridges =
    List.rev_map
      (fun (name, ports) -> { bridge_name = name; ports = List.rev !ports })
      !bridges
  in
  (bridges, List.rev !links)

(* ---- JSON grammar ---- *)

let result_or_parse = function Ok v -> v | Error e -> raise (Parse e)

let j_member name json = result_or_parse (Json.member name json)
let j_int json = result_or_parse (Json.to_int json)
let j_float json = result_or_parse (Json.to_float json)
let j_str json = result_or_parse (Json.to_str json)
let j_list json = result_or_parse (Json.to_list json)

let parse_doc ctx content =
  match Json.of_string content with
  | Ok json -> json
  | Error e -> fail "%s: %s" ctx e

let parse_vms_json content =
  let json = parse_doc "vms.json" content in
  List.concat_map
    (fun host_entry ->
      let host = j_int (j_member "host" host_entry) in
      let bridge = j_str (j_member "bridge" host_entry) in
      List.map
        (fun vm ->
          {
            guest = j_int (j_member "guest" vm);
            name = j_str (j_member "name" vm);
            host;
            mem_mb = j_float (j_member "mem_mb" vm);
            stor_gb = j_float (j_member "stor_gb" vm);
            cpu_mips = j_float (j_member "cpu_mips" vm);
            iface = j_str (j_member "iface" vm);
            bridge;
          })
        (j_list (j_member "vms" host_entry)))
    (j_list (j_member "hosts" json))

let parse_net_json content =
  let json = parse_doc "net.json" content in
  let bridges =
    List.map
      (fun b ->
        {
          bridge_name = j_str (j_member "name" b);
          ports = List.map j_str (j_list (j_member "ports" b));
        })
      (j_list (j_member "bridges" json))
  in
  let links =
    List.map
      (fun l ->
        {
          edge = j_int (j_member "edge" l);
          u = j_int (j_member "u" l);
          v = j_int (j_member "v" l);
          capacity_mbps = j_float (j_member "capacity_mbps" l);
          link_delay_ms = j_float (j_member "delay_ms" l);
          classes =
            List.map
              (fun c ->
                {
                  minor = j_int (j_member "minor" c);
                  vlink = j_int (j_member "vlink" c);
                  rate_mbps = j_float (j_member "rate_mbps" c);
                  delay_ms = j_float (j_member "delay_ms" c);
                })
              (j_list (j_member "classes" l));
        })
      (j_list (j_member "links" json))
  in
  (bridges, links)

(* ---- manifest + assembly ---- *)

let run ~files =
  try
    let file name =
      match List.assoc_opt name files with
      | Some content -> content
      | None -> fail "bundle is missing %s" name
    in
    let manifest = parse_doc Spec.manifest_file (file Spec.manifest_file) in
    (match j_str (j_member "format" manifest) with
    | "hmn-artifact-manifest" -> ()
    | other -> fail "manifest: unexpected format %S" other);
    let artifact_format =
      result_or_parse (Spec.format_of_name (j_str (j_member "artifact_format" manifest)))
    in
    let scope =
      match j_str (j_member "scope" manifest) with
      | "full" -> Full
      | "tenant" -> Tenant (j_int (j_member "tenant_id" manifest))
      | other -> fail "manifest: unknown scope %S" other
    in
    let vms_text = file (Spec.vms_file artifact_format) in
    let net_text = file (Spec.net_file artifact_format) in
    let vms, (bridges, links) =
      match artifact_format with
      | Spec.Shell -> (parse_vms_shell vms_text, parse_net_shell net_text)
      | Spec.Json -> (parse_vms_json vms_text, parse_net_json net_text)
    in
    let opt name =
      match Json.member name manifest with Ok j -> Some j | Error _ -> None
    in
    let counts =
      match opt "counts" with
      | Some (Json.Obj fields) ->
        List.map (fun (k, v) -> (k, j_int v)) fields
      | _ -> fail "manifest: missing counts"
    in
    Ok
      {
        artifact_format;
        schema_version = j_int (j_member "schema_version" manifest);
        scope;
        vmm_label = j_str (j_member "label" (j_member "vmm" manifest));
        vms;
        bridges;
        links;
        problem = opt "problem";
        venv = opt "venv";
        counts;
        tolerance_mbps = j_float (j_member "tolerance_mbps" manifest);
      }
  with Parse msg -> Error ("decompile: " ^ msg)

let read_dir ~dir =
  try
    let read name =
      let path = Filename.concat dir name in
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let manifest = read Spec.manifest_file in
    let fmt =
      match Json.of_string manifest with
      | Ok json ->
        result_or_parse
          (Spec.format_of_name (j_str (j_member "artifact_format" json)))
      | Error e -> fail "%s: %s" Spec.manifest_file e
    in
    Ok
      [
        (Spec.manifest_file, manifest);
        (Spec.vms_file fmt, read (Spec.vms_file fmt));
        (Spec.net_file fmt, read (Spec.net_file fmt));
      ]
  with
  | Parse msg -> Error ("decompile: " ^ msg)
  | Sys_error msg -> Error ("decompile: " ^ msg)
