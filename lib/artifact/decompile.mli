(** The artifact decompiler: re-parse an emitted bundle back into a
    structured deployment description, from the {e text alone}.

    This module shares only the grammar ({!Spec}) with {!Compile} —
    never in-memory state — so a successful round trip through
    [Compile → Decompile → Hmn_validate.Artifact_check] is evidence the
    artifacts themselves are faithful, not merely that the compiler
    agrees with itself.

    Parsing is deliberately lenient about {e semantic} fidelity: it
    recovers structure and numbers and leaves judgement (is every guest
    launched once? do the rates sum to the reservations?) to the
    checker, so that a tampered bundle decompiles and is then rejected
    with a precise violation class. Only structurally unreadable input
    is a decompile error. *)

type vm = {
  guest : int;
  name : string;
  host : int;
  mem_mb : float;
  stor_gb : float;
  cpu_mips : float;
  iface : string;
  bridge : string;
}

type cls = {
  minor : int;  (** HTB class minor id *)
  vlink : int;  (** joined back via the fw-filter handle *)
  rate_mbps : float;
  delay_ms : float;  (** the class's netem stage *)
}

type shaped_link = {
  edge : int;
  u : int;
  v : int;
  capacity_mbps : float;
  link_delay_ms : float;
  classes : cls list;  (** in emission order *)
}

type bridge = {
  bridge_name : string;
  ports : string list;  (** in emission order *)
}

type scope = Full | Tenant of int

type t = {
  artifact_format : Spec.format;
  schema_version : int;  (** as recorded in the manifest *)
  scope : scope;
  vmm_label : string;
  vms : vm list;  (** in emission order *)
  bridges : bridge list;
  links : shaped_link list;
  problem : Hmn_prelude.Json.t option;  (** manifest ["problem"], full scope *)
  venv : Hmn_prelude.Json.t option;  (** manifest ["venv"], tenant scope *)
  counts : (string * int) list;  (** manifest ["counts"] *)
  tolerance_mbps : float;
}

val run : files:(string * string) list -> (t, string) result
(** [run ~files] decompiles a bundle given as [(name, content)] pairs —
    exactly the shape {!Compile} emits and {!Compile.write} puts on
    disk. The manifest names the artifact format; the vms/net files are
    then parsed under the shell or JSON grammar of {!Spec}. *)

val read_dir : dir:string -> ((string * string) list, string) result
(** Load the bundle files of [dir] (manifest first) for {!run}. *)
