(** The artifact compiler: realize a finished mapping as deployable
    emulation-testbed configuration.

    From a complete mapping (every guest placed, every virtual link
    routed) it emits, under the grammar of {!Spec}:

    - a {e VM launch plan}: one launch entry per guest — id, name,
      memory/storage reservation, CPU share (MIPS), attachment
      interface and host bridge — grouped by host, hosts ascending,
      guests ascending within a host;
    - a {e network plan}: one OVS-style bridge per node (ports for the
      incident physical links, plus the guest vifs on hosts) and, per
      physical link that carries routed virtual links, an HTB + netem
      shaping profile: one class per virtual link at
      [rate = the link's reserved bandwidth] and a netem stage at
      [delay = the physical link's latency], class minors assigned by
      {!Spec.minor_of_rank};
    - a {e manifest} tying the artifacts to the problem instance via
      {!Hmn_io.Codec} (full problem for a whole-mapping export, the
      tenant's virtual environment for an online per-tenant delta),
      with the grammar's [schema_version] and the bandwidth-ledger
      tolerance the checker must grant.

    Everything is derived from the mapping alone, in deterministic
    order — two compilations of the same mapping are byte-identical,
    regardless of how many domains computed it. *)

type bundle = {
  format : Spec.format;
  files : (string * string) list;
      (** [(name, content)], manifest first; the names are
          {!Spec.manifest_file}, {!Spec.vms_file}, {!Spec.net_file} *)
}

val bytes : bundle -> int
(** Total content size over the files. *)

val of_mapping :
  ?vmm:Hmn_testbed.Vmm.t -> format:Spec.format -> Hmn_mapping.Mapping.t -> bundle
(** Compile a whole mapping. The manifest embeds the full problem
    ([Hmn_io.Codec.problem_to_json]). [vmm] (default
    {!Hmn_testbed.Vmm.xen_like}) is recorded per host and in the
    manifest — the cluster's capacities are already net of it.
    Raises [Invalid_argument] when a guest is unplaced or a virtual
    link unrouted (compile only validated mappings). *)

val of_tenant :
  ?vmm:Hmn_testbed.Vmm.t ->
  format:Spec.format ->
  cluster:Hmn_testbed.Cluster.t ->
  venv:Hmn_vnet.Virtual_env.t ->
  id:int ->
  hosts:int array ->
  paths:Hmn_routing.Path.t array ->
  unit ->
  bundle
(** Compile one admitted tenant's artifact {e delta} against the shared
    cluster: only this tenant's launches and qdisc classes. The
    manifest embeds the tenant's virtual environment
    ([Hmn_io.Codec.venv_to_json]) and its id; guest and vlink ids are
    tenant-local. *)

val write : dir:string -> bundle -> unit
(** Write every file of the bundle under [dir] (created, with parents,
    when missing). *)
