(** The artifact emission grammar: every name, id scheme, and number
    format shared by the compiler ({!Compile}) and the independent
    decompiler ({!Decompile}).

    Centralizing the grammar here is what makes the round trip honest:
    the two sides share {e naming rules}, never rendered state. The
    decompiler consumes only the emitted text.

    {2 Naming}

    - host bridge: [br-h<node id>]; switch bridge: [br-s<node id>]
    - physical-link port (one per edge, same name on both endpoint
      bridges): [pe<edge id>]
    - guest attachment interface: [vif<guest id>.0]

    {2 Class ids}

    Each physical link that carries routed virtual links gets one HTB
    class plus one netem qdisc {e per} virtual link. Within a link the
    classes are ordered by ascending virtual-link id and numbered
    [minor_base + rank] — deterministic, so two exports of the same
    mapping are byte-identical and a duplicated or renumbered class is
    detectable without any side channel. The fw-mark filter handle is
    the virtual-link id itself, which is how the decompiler joins a
    class back to its virtual link. *)

type format = Shell | Json

val format_name : format -> string
(** ["shell"] / ["json"]. *)

val format_of_name : string -> (format, string) result

val schema_version : int
(** Version of the emission grammar, recorded in the manifest and
    checked by {!Decompile}. *)

val fmt_num : float -> string
(** The number format of every rate, delay and resource field, in both
    shell and JSON artifacts: integral values as ["%.0f"], everything
    else as ["%.17g"] — identical to [Hmn_prelude.Json]'s number
    rendering, and exact under [float_of_string] round-trip. *)

val host_bridge : int -> string
val switch_bridge : int -> string
val port : int -> string
val iface : int -> string

val minor_base : int
(** First HTB class minor id (16 = tc's [0x10]). *)

val minor_of_rank : int -> int
(** [minor_base + rank], where [rank] is the class's position in the
    link's ascending-vlink-id order. *)

val manifest_file : string
val vms_file : format -> string
val net_file : format -> string
