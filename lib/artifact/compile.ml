module Cluster = Hmn_testbed.Cluster
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Vmm = Hmn_testbed.Vmm
module Resources = Hmn_testbed.Resources
module Venv = Hmn_vnet.Virtual_env
module Guest = Hmn_vnet.Guest
module Vlink = Hmn_vnet.Vlink
module Path = Hmn_routing.Path
module Residual = Hmn_routing.Residual
module Mapping = Hmn_mapping.Mapping
module Placement = Hmn_mapping.Placement
module Link_map = Hmn_mapping.Link_map
module Problem = Hmn_mapping.Problem
module Json = Hmn_prelude.Json

type bundle = {
  format : Spec.format;
  files : (string * string) list;
}

let bytes b =
  List.fold_left (fun acc (_, content) -> acc + String.length content) 0 b.files

(* The common input: a cluster, a virtual environment, and total
   placement/routing functions over it. Whole mappings and online
   tenants both reduce to this. *)
type scope = Full | Tenant of int

let scope_name = function Full -> "full" | Tenant _ -> "tenant"

(* ---- derived placement tables, in canonical order ---- *)

(* host id -> its guests ascending; hosts ascending, only hosts that
   run at least one guest. *)
let launches_by_host ~venv ~host_of =
  let tbl = Hashtbl.create 64 in
  for g = 0 to Venv.n_guests venv - 1 do
    let h = host_of g in
    Hashtbl.replace tbl h (g :: Option.value (Hashtbl.find_opt tbl h) ~default:[])
  done;
  Hashtbl.fold (fun h gs acc -> (h, List.rev gs) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

(* edge id -> (vlink, rate) ascending vlink; edges ascending, only
   edges that carry at least one routed virtual link. *)
let classes_by_edge ~venv ~path_of =
  let tbl = Hashtbl.create 256 in
  for vl = 0 to Venv.n_vlinks venv - 1 do
    let path = path_of vl in
    if not (Path.is_intra_host path) then begin
      let rate = (Venv.vlink venv vl).Vlink.bandwidth_mbps in
      Path.iter_edges path (fun eid ->
          Hashtbl.replace tbl eid
            ((vl, rate) :: Option.value (Hashtbl.find_opt tbl eid) ~default:[]))
    end
  done;
  Hashtbl.fold (fun eid cls acc -> (eid, List.rev cls) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let vmm_label vmm =
  if vmm = Vmm.none then "none"
  else if vmm = Vmm.xen_like then "xen"
  else "custom"

let bridge_of_node cluster i =
  if Cluster.is_host cluster i then Spec.host_bridge i else Spec.switch_bridge i

(* Ports of a node's bridge: one per incident physical link (ascending
   edge id — adjacency order is per-node insertion order, so sort), then
   the vifs of the guests launched there (ascending guest id). *)
let bridge_ports ~cluster ~launches node =
  let edges = ref [] in
  Hmn_graph.Graph.iter_adj (Cluster.graph cluster) node
    (fun ~neighbor:_ ~eid -> edges := eid :: !edges);
  let edge_ports = List.map Spec.port (List.sort Int.compare !edges) in
  let vif_ports =
    match List.assoc_opt node launches with
    | Some guests -> List.map Spec.iface guests
    | None -> []
  in
  edge_ports @ vif_ports

(* ---- shell emission ---- *)

let sq s = "'" ^ s ^ "'"

let emit_vms_shell ~scope ~vmm ~cluster ~venv ~launches =
  let b = Buffer.create 4096 in
  Buffer.add_string b "#!/bin/sh\n";
  Printf.bprintf b "# hmn-artifact vms schema=%d format=shell scope=%s\n"
    Spec.schema_version (scope_name scope);
  List.iter
    (fun (host, guests) ->
      Printf.bprintf b "# host id=%d name=%s vmm=%s guests=%d\n" host
        (sq (Cluster.node cluster host).Node.name)
        (vmm_label vmm) (List.length guests);
      List.iter
        (fun g ->
          let guest = Venv.guest venv g in
          let d = guest.Guest.demand in
          Printf.bprintf b
            "hmn_vm launch --guest %d --name %s --host %d --mem-mb %s \
             --stor-gb %s --cpu-mips %s --iface %s --bridge %s\n"
            g (sq guest.Guest.name) host
            (Spec.fmt_num d.Resources.mem_mb)
            (Spec.fmt_num d.Resources.stor_gb)
            (Spec.fmt_num d.Resources.mips)
            (Spec.iface g)
            (bridge_of_node cluster host))
        guests)
    launches;
  Buffer.contents b

let emit_net_shell ~scope ~cluster ~launches ~edge_classes =
  let b = Buffer.create 4096 in
  Buffer.add_string b "#!/bin/sh\n";
  Printf.bprintf b "# hmn-artifact net schema=%d format=shell scope=%s\n"
    Spec.schema_version (scope_name scope);
  Buffer.add_string b "# bridges\n";
  (match scope with
  | Full ->
    for node = 0 to Cluster.n_nodes cluster - 1 do
      let br = bridge_of_node cluster node in
      Printf.bprintf b "ovs-vsctl add-br %s\n" br;
      List.iter
        (fun port -> Printf.bprintf b "ovs-vsctl add-port %s %s\n" br port)
        (bridge_ports ~cluster ~launches node)
    done
  | Tenant _ ->
    (* delta: the physical bridges and link ports exist already — only
       attach this tenant's vifs *)
    List.iter
      (fun (host, guests) ->
        let br = bridge_of_node cluster host in
        List.iter
          (fun g -> Printf.bprintf b "ovs-vsctl add-port %s %s\n" br (Spec.iface g))
          guests)
      launches);
  Buffer.add_string b "# shaping\n";
  List.iter
    (fun (eid, classes) ->
      let u, v = Hmn_graph.Graph.endpoints (Cluster.graph cluster) eid in
      let link = Cluster.link cluster eid in
      let dev = Spec.port eid in
      Printf.bprintf b "# link e%d u=%d v=%d cap-mbit=%s delay-ms=%s\n" eid u v
        (Spec.fmt_num link.Link.bandwidth_mbps)
        (Spec.fmt_num link.Link.latency_ms);
      (match scope with
      | Full -> Printf.bprintf b "tc qdisc add dev %s root handle 1: htb\n" dev
      | Tenant _ -> ());
      List.iteri
        (fun rank (vl, rate) ->
          let minor = Spec.minor_of_rank rank in
          Printf.bprintf b
            "tc class add dev %s parent 1: classid 1:%d htb rate %smbit ceil \
             %smbit\n"
            dev minor (Spec.fmt_num rate) (Spec.fmt_num rate);
          Printf.bprintf b
            "tc qdisc add dev %s parent 1:%d handle %d: netem delay %sms\n" dev
            minor minor
            (Spec.fmt_num link.Link.latency_ms);
          Printf.bprintf b
            "tc filter add dev %s parent 1: handle %d fw flowid 1:%d\n" dev vl
            minor)
        classes)
    edge_classes;
  Buffer.contents b

(* ---- JSON emission ---- *)

let scope_fields scope =
  ("scope", Json.str (scope_name scope))
  :: (match scope with Full -> [] | Tenant id -> [ ("tenant_id", Json.int id) ])

let emit_vms_json ~scope ~vmm ~cluster ~venv ~launches =
  let hosts =
    List.map
      (fun (host, guests) ->
        Json.Obj
          [
            ("host", Json.int host);
            ("name", Json.str (Cluster.node cluster host).Node.name);
            ("vmm", Json.str (vmm_label vmm));
            ("bridge", Json.str (bridge_of_node cluster host));
            ( "vms",
              Json.Arr
                (List.map
                   (fun g ->
                     let guest = Venv.guest venv g in
                     let d = guest.Guest.demand in
                     Json.Obj
                       [
                         ("guest", Json.int g);
                         ("name", Json.str guest.Guest.name);
                         ("mem_mb", Json.float d.Resources.mem_mb);
                         ("stor_gb", Json.float d.Resources.stor_gb);
                         ("cpu_mips", Json.float d.Resources.mips);
                         ("iface", Json.str (Spec.iface g));
                       ])
                   guests) );
          ])
      launches
  in
  Json.to_string ~pretty:true
    (Json.Obj
       ([
          ("format", Json.str "hmn-artifact-vms");
          ("schema_version", Json.int Spec.schema_version);
        ]
       @ scope_fields scope
       @ [ ("hosts", Json.Arr hosts) ]))
  ^ "\n"

let emit_net_json ~scope ~cluster ~launches ~edge_classes =
  let bridges =
    match scope with
    | Full ->
      List.init (Cluster.n_nodes cluster) (fun node ->
          Json.Obj
            [
              ("node", Json.int node);
              ( "kind",
                Json.str (if Cluster.is_host cluster node then "host" else "switch") );
              ("name", Json.str (bridge_of_node cluster node));
              ( "ports",
                Json.Arr
                  (List.map Json.str (bridge_ports ~cluster ~launches node)) );
            ])
    | Tenant _ ->
      List.map
        (fun (host, guests) ->
          Json.Obj
            [
              ("node", Json.int host);
              ("kind", Json.str "host");
              ("name", Json.str (bridge_of_node cluster host));
              ("ports", Json.Arr (List.map (fun g -> Json.str (Spec.iface g)) guests));
            ])
        launches
  in
  let links =
    List.map
      (fun (eid, classes) ->
        let u, v = Hmn_graph.Graph.endpoints (Cluster.graph cluster) eid in
        let link = Cluster.link cluster eid in
        Json.Obj
          [
            ("edge", Json.int eid);
            ("u", Json.int u);
            ("v", Json.int v);
            ("capacity_mbps", Json.float link.Link.bandwidth_mbps);
            ("delay_ms", Json.float link.Link.latency_ms);
            ( "classes",
              Json.Arr
                (List.mapi
                   (fun rank (vl, rate) ->
                     Json.Obj
                       [
                         ("minor", Json.int (Spec.minor_of_rank rank));
                         ("vlink", Json.int vl);
                         ("rate_mbps", Json.float rate);
                         ("delay_ms", Json.float link.Link.latency_ms);
                       ])
                   classes) );
          ])
      edge_classes
  in
  Json.to_string ~pretty:true
    (Json.Obj
       ([
          ("format", Json.str "hmn-artifact-net");
          ("schema_version", Json.int Spec.schema_version);
        ]
       @ scope_fields scope
       @ [ ("bridges", Json.Arr bridges); ("links", Json.Arr links) ]))
  ^ "\n"

(* ---- manifest ---- *)

let manifest ~scope ~format ~vmm ~cluster ~venv ~launches ~edge_classes ~payload
    ~files =
  let n_classes =
    List.fold_left (fun acc (_, cls) -> acc + List.length cls) 0 edge_classes
  in
  Json.to_string ~pretty:true
    (Json.Obj
       ([
          ("format", Json.str "hmn-artifact-manifest");
          ("schema_version", Json.int Spec.schema_version);
          ("artifact_format", Json.str (Spec.format_name format));
        ]
       @ scope_fields scope
       @ [
           ( "vmm",
             Json.Obj
               [
                 ("label", Json.str (vmm_label vmm));
                 ("mips", Json.float vmm.Vmm.mips);
                 ("mem_mb", Json.float vmm.Vmm.mem_mb);
                 ("stor_gb", Json.float vmm.Vmm.stor_gb);
               ] );
           ( "counts",
             Json.Obj
               [
                 ("nodes", Json.int (Cluster.n_nodes cluster));
                 ("hosts", Json.int (Cluster.n_hosts cluster));
                 ("links", Json.int (Hmn_graph.Graph.n_edges (Cluster.graph cluster)));
                 ("guests", Json.int (Venv.n_guests venv));
                 ("vlinks", Json.int (Venv.n_vlinks venv));
                 ("launch_hosts", Json.int (List.length launches));
                 ("shaped_links", Json.int (List.length edge_classes));
                 ("classes", Json.int n_classes);
               ] );
           (* the slack Artifact_check grants on per-link rate sums:
              the ledger tolerance times (vlinks + 1), mirroring
              Validator.residual_tolerance *)
           ( "tolerance_mbps",
             Json.float (Residual.tolerance *. float_of_int (Venv.n_vlinks venv + 1))
           );
           payload;
           ( "files",
             Json.Arr
               (List.map
                  (fun (name, content) ->
                    Json.Obj
                      [
                        ("name", Json.str name);
                        ("bytes", Json.int (String.length content));
                      ])
                  files) );
         ]))
  ^ "\n"

(* ---- entry points ---- *)

let emit ?(vmm = Vmm.xen_like) ~format ~scope ~cluster ~venv ~host_of ~path_of
    ~payload () =
  let launches = launches_by_host ~venv ~host_of in
  let edge_classes = classes_by_edge ~venv ~path_of in
  let vms, net =
    match format with
    | Spec.Shell ->
      ( emit_vms_shell ~scope ~vmm ~cluster ~venv ~launches,
        emit_net_shell ~scope ~cluster ~launches ~edge_classes )
    | Spec.Json ->
      ( emit_vms_json ~scope ~vmm ~cluster ~venv ~launches,
        emit_net_json ~scope ~cluster ~launches ~edge_classes )
  in
  let files =
    [ (Spec.vms_file format, vms); (Spec.net_file format, net) ]
  in
  let manifest =
    manifest ~scope ~format ~vmm ~cluster ~venv ~launches ~edge_classes ~payload
      ~files
  in
  { format; files = (Spec.manifest_file, manifest) :: files }

let of_mapping ?vmm ~format (m : Mapping.t) =
  let problem = Mapping.problem m in
  let cluster = problem.Problem.cluster and venv = problem.Problem.venv in
  let host_of g = Placement.host_of_exn m.Mapping.placement ~guest:g in
  let path_of vl =
    match Link_map.path_of m.Mapping.link_map ~vlink:vl with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Compile: virtual link %d is unrouted" vl)
  in
  emit ?vmm ~format ~scope:Full ~cluster ~venv ~host_of ~path_of
    ~payload:("problem", Hmn_io.Codec.problem_to_json problem)
    ()

let of_tenant ?vmm ~format ~cluster ~venv ~id ~hosts ~paths () =
  if Array.length hosts <> Venv.n_guests venv then
    invalid_arg "Compile.of_tenant: hosts length";
  if Array.length paths <> Venv.n_vlinks venv then
    invalid_arg "Compile.of_tenant: paths length";
  emit ?vmm ~format ~scope:(Tenant id) ~cluster ~venv
    ~host_of:(fun g -> hosts.(g))
    ~path_of:(fun vl -> paths.(vl))
    ~payload:("venv", Hmn_io.Codec.venv_to_json venv)
    ()

let rec mkdir_p dir =
  if dir <> "" && dir <> "." && dir <> "/" && not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ when Sys.file_exists dir -> ())
  end

let write ~dir bundle =
  mkdir_p dir;
  List.iter
    (fun (name, content) ->
      let oc = open_out (Filename.concat dir name) in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc content))
    bundle.files
