type format = Shell | Json

let format_name = function Shell -> "shell" | Json -> "json"

let format_of_name = function
  | "shell" -> Ok Shell
  | "json" -> Ok Json
  | other -> Error (Printf.sprintf "unknown artifact format %S" other)

let schema_version = 1

(* Mirrors Hmn_prelude.Json's number rendering so the shell and JSON
   artifacts agree byte-for-byte on every number, and float_of_string
   recovers the exact value (%.17g is lossless for doubles). *)
let fmt_num x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let host_bridge i = Printf.sprintf "br-h%d" i
let switch_bridge i = Printf.sprintf "br-s%d" i
let port eid = Printf.sprintf "pe%d" eid
let iface guest = Printf.sprintf "vif%d.0" guest

let minor_base = 16
let minor_of_rank rank = minor_base + rank

let manifest_file = "manifest.json"
let vms_file = function Shell -> "vms.sh" | Json -> "vms.json"
let net_file = function Shell -> "net.sh" | Json -> "net.json"
