(** Monotonic wall-clock timing.

    [Unix.gettimeofday] follows the system's wall clock, which NTP can
    step backwards mid-measurement; every elapsed-time measurement in
    the code base goes through this module instead, which wraps
    [clock_gettime(CLOCK_MONOTONIC)] and therefore never runs
    backwards. The epoch is arbitrary (typically boot time): values are
    only meaningful as differences. *)

val now_s : unit -> float
(** Seconds since an arbitrary fixed epoch; strictly non-decreasing. *)

val elapsed_s : float -> float
(** [elapsed_s t0] is [now_s () -. t0], clamped at [0.] for safety. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and returns its result together with the
    monotonic seconds it took. *)
