type t = {
  mutex : Mutex.t;
  work : Condition.t;  (* a task was enqueued, or shutdown began *)
  idle : Condition.t;  (* [pending] reached zero *)
  queue : (unit -> unit) Queue.t;
  mutable pending : int;  (* queued + currently running *)
  mutable stop : bool;
  mutable error : (exn * Printexc.raw_backtrace) option;  (* first task failure *)
  mutable workers : unit Domain.t list;
}

let default_jobs () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let worker t =
  Mutex.lock t.mutex;
  let running = ref true in
  while !running do
    match Queue.take_opt t.queue with
    | Some task ->
      Mutex.unlock t.mutex;
      let failure =
        match task () with
        | () -> None
        | exception exn -> Some (exn, Printexc.get_raw_backtrace ())
      in
      Mutex.lock t.mutex;
      (match failure with
      | Some _ when t.error = None -> t.error <- failure
      | _ -> ());
      t.pending <- t.pending - 1;
      if t.pending = 0 then Condition.broadcast t.idle
    | None ->
      if t.stop then running := false else Condition.wait t.work t.mutex
  done;
  Mutex.unlock t.mutex

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Domain_pool.create: jobs must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      idle = Condition.create ();
      queue = Queue.create ();
      pending = 0;
      stop = false;
      error = None;
      workers = [];
    }
  in
  t.workers <- List.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = List.length t.workers

let run t task =
  Mutex.lock t.mutex;
  if t.stop then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.run: pool is shut down"
  end;
  t.pending <- t.pending + 1;
  Queue.add task t.queue;
  Condition.signal t.work;
  Mutex.unlock t.mutex

let reraise_error t =
  (* Called with [t.mutex] held; unlocks before raising. *)
  let error = t.error in
  t.error <- None;
  Mutex.unlock t.mutex;
  match error with
  | Some (exn, bt) -> Printexc.raise_with_backtrace exn bt
  | None -> ()

let wait t =
  Mutex.lock t.mutex;
  while t.pending > 0 do
    Condition.wait t.idle t.mutex
  done;
  reraise_error t

let shutdown t =
  Mutex.lock t.mutex;
  while t.pending > 0 do
    Condition.wait t.idle t.mutex
  done;
  t.stop <- true;
  Condition.broadcast t.work;
  let workers = t.workers in
  t.workers <- [];
  Mutex.unlock t.mutex;
  List.iter Domain.join workers;
  Mutex.lock t.mutex;
  reraise_error t

let map_array t f xs =
  let n = Array.length xs in
  let out = Array.make n None in
  Array.iteri (fun i x -> run t (fun () -> out.(i) <- Some (f x))) xs;
  wait t;
  Array.map
    (function
      | Some y -> y
      | None -> failwith "Domain_pool.map_array: missing result (task failed)")
    out

let with_pool ?jobs f =
  let t = create ?jobs () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
