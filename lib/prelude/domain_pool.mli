(** A fixed-size pool of worker domains for fanning out independent
    CPU-bound tasks (OCaml 5 [Domain] + [Mutex]/[Condition], no work
    stealing: one shared FIFO queue).

    The pool is designed for the experiment sweep: tasks are pure
    functions writing into caller-owned slots, so parallelism never
    changes results — only wall-clock time. A pool is reusable: submit
    a batch, [wait], submit another batch.

    All functions may be called from the owning domain only; tasks
    themselves must not submit further tasks to the same pool. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1] (one slot is left for the
    submitting domain), floored at 1. *)

val create : ?jobs:int -> unit -> t
(** Spawns [jobs] worker domains (default {!default_jobs}). Raises
    [Invalid_argument] when [jobs < 1]. *)

val jobs : t -> int

val run : t -> (unit -> unit) -> unit
(** Enqueue one task. Raises [Invalid_argument] after {!shutdown}. *)

val wait : t -> unit
(** Block until every enqueued task has finished. If any task raised,
    re-raises the first such exception (with its backtrace); the
    remaining tasks still run to completion and the pool remains
    usable. *)

val shutdown : t -> unit
(** Wait for outstanding tasks, then join the worker domains. Pending
    task exceptions are re-raised as in {!wait}. Idempotent. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f xs] applies [f] to every element on the pool and
    returns the results in input order. Implies a {!wait}. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and shuts it down on the
    way out, whether [f] returns or raises. *)
