external now_s : unit -> (float[@unboxed])
  = "hmn_clock_monotonic_s" "hmn_clock_monotonic_s_unboxed"
[@@noalloc]

let elapsed_s t0 = Float.max 0. (now_s () -. t0)

let time f =
  let t0 = now_s () in
  let x = f () in
  (x, elapsed_s t0)
