/* Monotonic clock for Hmn_prelude.Clock.

   CLOCK_MONOTONIC is immune to NTP steps and manual clock changes, so
   deltas are always >= 0 — unlike Unix.gettimeofday, whose deltas can
   go negative when the wall clock is stepped backwards mid-run. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <time.h>

double hmn_clock_monotonic_s_unboxed(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (double)ts.tv_sec + (double)ts.tv_nsec * 1e-9;
}

CAMLprim value hmn_clock_monotonic_s(value unit)
{
  return caml_copy_double(hmn_clock_monotonic_s_unboxed(unit));
}
