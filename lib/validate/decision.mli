(** Independent re-derivation of online rejection causes.

    The online service classifies every rejection into the closed
    {!Hmn_obs.Journal.cause} taxonomy ([Hmn_online.Admission.explain]).
    This module re-derives the same verdict from raw data — the residual
    cluster the request saw and the request's virtual environment — with
    its own traversals (adjacency rebuilt from the edge list, its own
    Dijkstra and feasibility counting), sharing no code with the
    admission-side classifier. The service compares the two during
    validation; a disagreement fails the run.

    Shared semantics (both sides implement this contract):
    - judgments are against the {e fresh} residual cluster, before any
      reservation made by the rejected request itself;
    - hosting: if the identified guest fits no host, the resource
      locking it out of more hosts is binding (mem on ties); if it
      still fits somewhere, the aggregate-scarcer resource is binding
      (mem on ties). CPU never gates placement in this model.
    - networking: bandwidth-infeasible if no path carries the vlink's
      bandwidth; otherwise the latency bound decides; an
      intra-request bandwidth conflict (feasible in the fresh residual)
      is bandwidth.
    - a networking failure with no vlink detail is bandwidth by
      convention; a hosting failure with no guest detail is judged on
      the hardest-to-place guest (fewest fitting hosts, larger memory
      then lower index on ties). *)

type family = Screen | Hosting | Networking
(** Which stage family rejected — read off the journaled stage name. *)

val family_of_stage : string -> family
(** ["screen"] → [Screen]; ["networking"] and ["dfs-routing"] →
    [Networking]; anything else → [Hosting]. *)

val candidate_hosts :
  residual:Hmn_testbed.Cluster.t -> venv:Hmn_vnet.Virtual_env.t -> int
(** Hosts fitting (memory and storage) the request's most
    memory-demanding guest — must equal the journaled [candidates]. *)

val derive :
  residual:Hmn_testbed.Cluster.t ->
  venv:Hmn_vnet.Virtual_env.t ->
  family:family ->
  detail:Hmn_obs.Journal.detail ->
  Hmn_obs.Journal.cause option
(** The cause this module derives for the journaled record, or [None]
    when the record is malformed for its family (e.g. a [Screen] family
    whose screen re-check finds nothing wrong). *)
