(* Deliberately low-tech and self-contained: raw loops over node ids
   and the edge list, no reuse of Problem/Resources helpers beyond
   field access, so agreement with the admission-side classifier is
   evidence about the semantics, not about shared code. *)

module Cluster = Hmn_testbed.Cluster
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Resources = Hmn_testbed.Resources
module Graph = Hmn_graph.Graph
module Venv = Hmn_vnet.Virtual_env
module Journal = Hmn_obs.Journal

type family = Screen | Hosting | Networking

let family_of_stage = function
  | "screen" -> Screen
  | "networking" | "dfs-routing" -> Networking
  | _ -> Hosting

(* ---- raw views of the residual cluster ---- *)

let host_list residual =
  let n = Cluster.n_nodes residual in
  let acc = ref [] in
  for i = n - 1 downto 0 do
    if Node.can_host (Cluster.node residual i) then acc := i :: !acc
  done;
  !acc

let residual_of residual h = (Cluster.node residual h).Node.capacity

(* Adjacency rebuilt from the edge list (not Graph.iter_adj). *)
let adjacency residual =
  let g = Cluster.graph residual in
  let n = Graph.n_nodes g in
  let adj = Array.make n [] in
  Graph.iter_edges g (fun ~eid ~u ~v (_ : Link.t) ->
      adj.(u) <- (v, eid) :: adj.(u);
      adj.(v) <- (u, eid) :: adj.(v));
  adj

(* ---- per-guest fit counting ---- *)

let fits_count residual (d : Resources.t) =
  List.fold_left
    (fun acc h ->
      let r = residual_of residual h in
      if d.Resources.mem_mb <= r.Resources.mem_mb
         && d.Resources.stor_gb <= r.Resources.stor_gb
      then acc + 1
      else acc)
    0 (host_list residual)

let probe_guest venv =
  let best = ref 0 in
  for g = 1 to Venv.n_guests venv - 1 do
    let d = Venv.demand venv g and b = Venv.demand venv !best in
    if
      d.Resources.mem_mb > b.Resources.mem_mb
      || (d.Resources.mem_mb = b.Resources.mem_mb
         && d.Resources.stor_gb > b.Resources.stor_gb)
    then best := g
  done;
  !best

let candidate_hosts ~residual ~venv =
  fits_count residual (Venv.demand venv (probe_guest venv))

let hardest_guest ~residual ~venv =
  let best = ref 0 in
  let best_fit = ref max_int in
  let best_mem = ref neg_infinity in
  for g = 0 to Venv.n_guests venv - 1 do
    let d = Venv.demand venv g in
    let fit = fits_count residual d in
    if fit < !best_fit || (fit = !best_fit && d.Resources.mem_mb > !best_mem)
    then begin
      best := g;
      best_fit := fit;
      best_mem := d.Resources.mem_mb
    end
  done;
  !best

(* ---- family derivations ---- *)

let derive_screen ~residual ~venv =
  let total_dem = ref Resources.zero in
  for g = 0 to Venv.n_guests venv - 1 do
    total_dem := Resources.add !total_dem (Venv.demand venv g)
  done;
  let total_cap =
    List.fold_left
      (fun acc h -> Resources.add acc (Cluster.capacity residual h))
      Resources.zero (host_list residual)
  in
  let dem = !total_dem in
  if dem.Resources.mem_mb > total_cap.Resources.mem_mb then
    Some (Journal.Screened Journal.Agg_mem)
  else if dem.Resources.stor_gb > total_cap.Resources.stor_gb then
    Some (Journal.Screened Journal.Agg_stor)
  else if Venv.n_vlinks venv > 0 then begin
    (* own connectivity check: BFS over every edge from node 0 *)
    let g = Cluster.graph residual in
    let n = Graph.n_nodes g in
    if n = 0 then None
    else begin
      let adj = adjacency residual in
      let seen = Array.make n false in
      let queue = Queue.create () in
      Queue.add 0 queue;
      seen.(0) <- true;
      let reached = ref 1 in
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        List.iter
          (fun (v, _) ->
            if not seen.(v) then begin
              seen.(v) <- true;
              incr reached;
              Queue.add v queue
            end)
          adj.(u)
      done;
      if !reached < n then Some (Journal.Screened Journal.Disconnected)
      else None
    end
  end
  else None

let derive_hosting ~residual ~venv ~guest =
  let d = Venv.demand venv guest in
  let hosts = host_list residual in
  let mem_fits =
    List.fold_left
      (fun acc h ->
        if d.Resources.mem_mb <= (residual_of residual h).Resources.mem_mb then
          acc + 1
        else acc)
      0 hosts
  in
  let stor_fits =
    List.fold_left
      (fun acc h ->
        if d.Resources.stor_gb <= (residual_of residual h).Resources.stor_gb
        then acc + 1
        else acc)
      0 hosts
  in
  let both = fits_count residual d in
  if both = 0 then
    if mem_fits = 0 then Journal.Hosting Journal.Mem
    else if stor_fits = 0 then Journal.Hosting Journal.Stor
    else if mem_fits <= stor_fits then Journal.Hosting Journal.Mem
    else Journal.Hosting Journal.Stor
  else begin
    let total_res =
      List.fold_left
        (fun acc h -> Resources.add acc (residual_of residual h))
        Resources.zero hosts
    in
    let total_dem = ref Resources.zero in
    for g = 0 to Venv.n_guests venv - 1 do
      total_dem := Resources.add !total_dem (Venv.demand venv g)
    done;
    let dem = !total_dem in
    let ratio d c = if c <= 0. then Float.infinity else d /. c in
    let rm = ratio dem.Resources.mem_mb total_res.Resources.mem_mb in
    let rs = ratio dem.Resources.stor_gb total_res.Resources.stor_gb in
    if rm >= rs then Journal.Hosting Journal.Mem else Journal.Hosting Journal.Stor
  end

let derive_networking ~residual ~src ~dst ~bandwidth_mbps ~latency_ms =
  let g = Cluster.graph residual in
  let n = Graph.n_nodes g in
  let adj = adjacency residual in
  (* own O(V^2) Dijkstra over bandwidth-feasible edges *)
  let dist = Array.make n Float.infinity in
  let done_ = Array.make n false in
  dist.(src) <- 0.;
  let continue = ref true in
  while !continue do
    let u = ref (-1) in
    let best = ref Float.infinity in
    for v = 0 to n - 1 do
      if (not done_.(v)) && dist.(v) < !best then begin
        u := v;
        best := dist.(v)
      end
    done;
    if !u < 0 then continue := false
    else begin
      done_.(!u) <- true;
      List.iter
        (fun (v, eid) ->
          let link = Cluster.link residual eid in
          if link.Link.bandwidth_mbps >= bandwidth_mbps then begin
            let d = dist.(!u) +. link.Link.latency_ms in
            if d < dist.(v) then dist.(v) <- d
          end)
        adj.(!u)
    end
  done;
  if dist.(dst) = Float.infinity then Journal.Networking Journal.Bandwidth
  else if dist.(dst) > latency_ms then Journal.Networking Journal.Latency
  else Journal.Networking Journal.Bandwidth

let derive ~residual ~venv ~family ~detail =
  match (family, (detail : Journal.detail)) with
  | Screen, _ -> derive_screen ~residual ~venv
  | Hosting, Journal.Guest guest ->
      Some (derive_hosting ~residual ~venv ~guest)
  | Hosting, Journal.No_detail ->
      Some (derive_hosting ~residual ~venv ~guest:(hardest_guest ~residual ~venv))
  | Hosting, Journal.Vlink _ -> None
  | ( Networking,
      Journal.Vlink { src_host; dst_host; bandwidth_mbps; latency_ms; _ } ) ->
      Some
        (derive_networking ~residual ~src:src_host ~dst:dst_host
           ~bandwidth_mbps ~latency_ms)
  | Networking, Journal.No_detail ->
      (* convention mirrored from the admission classifier *)
      Some (Journal.Networking Journal.Bandwidth)
  | Networking, Journal.Guest _ -> None
