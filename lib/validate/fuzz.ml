module Rng = Hmn_rng.Rng
module Graph = Hmn_graph.Graph
module Generators = Hmn_graph.Generators
module Cluster = Hmn_testbed.Cluster
module Cluster_gen = Hmn_testbed.Cluster_gen
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Resources = Hmn_testbed.Resources
module Workload = Hmn_vnet.Workload
module Venv_gen = Hmn_vnet.Venv_gen
module Problem = Hmn_mapping.Problem
module Path = Hmn_routing.Path
module Residual = Hmn_routing.Residual
module Latency_table = Hmn_routing.Latency_table
module Astar = Hmn_routing.Astar_prune
module Dijkstra_route = Hmn_routing.Dijkstra_route
module Mapper = Hmn_core.Mapper
module Registry = Hmn_core.Registry

type cluster_shape =
  | Torus of { rows : int; cols : int }
  | Switched of { hosts : int }

type params = {
  shape : cluster_shape;
  n_guests : int;
  density : float;
  low_level : bool;
}

type what =
  | Invalid_mapping of { mapper : string; report : Validator.report }
  | Mapper_exception of { mapper : string; exn : string }
  | Route_disagreement of {
      src : int;
      dst : int;
      bandwidth_mbps : float;
      latency_ms : float;
      detail : string;
    }
  | Objective_below_optimum of {
      mapper : string;
      objective : float;
      lower_bound : float;
    }

type failure = {
  seed : int;
  params : params;
  what : what;
}

type stats = {
  cases : int;
  validated : int;
  mapper_gave_up : int;
  route_queries : int;
  oracle_checked : int;
  failures : failure list;
}

let smoke_seed = 20090922

(* Distinct offsets keep the parameter draw, the instance build and the
   router cross-check on independent streams of the same case seed, so
   pinning parameters on the command line (a shrunk repro) still
   regenerates the identical instance. *)
let instance_seed_offset = 7919
let route_seed_offset = 104729

let draw_params rng =
  let shape =
    if Rng.bool rng then
      Torus { rows = Rng.int_in rng ~lo:2 ~hi:3; cols = Rng.int_in rng ~lo:2 ~hi:4 }
    else Switched { hosts = Rng.int_in rng ~lo:4 ~hi:12 }
  in
  let hosts =
    match shape with Torus { rows; cols } -> rows * cols | Switched { hosts } -> hosts
  in
  {
    shape;
    n_guests = min 40 (max 2 (hosts * Rng.int_in rng ~lo:1 ~hi:4));
    density = Rng.float_in rng ~lo:0.05 ~hi:0.4;
    low_level = Rng.bool rng;
  }

let build_problem params ~seed =
  let rng = Rng.create (seed + instance_seed_offset) in
  let cluster =
    match params.shape with
    | Torus { rows; cols } -> Cluster_gen.torus_cluster ~rows ~cols ~rng ()
    | Switched { hosts } -> Cluster_gen.switched_cluster ~n:hosts ~rng ()
  in
  let profile = if params.low_level then Workload.low_level else Workload.high_level in
  let venv =
    Venv_gen.generate ~scale_to_fit:(cluster, 0.75) ~profile ~n:params.n_guests
      ~density:params.density ~rng ()
  in
  Problem.make ~cluster ~venv

(* ---- router differential check ---- *)

(* Exhaustive reference: every simple path within the latency bound
   whose edges all offer the bandwidth; returns the widest bottleneck. *)
let exhaustive_widest residual ~src ~dst ~bandwidth_mbps ~latency_ms =
  let cluster = Residual.cluster residual in
  let g = Cluster.graph cluster in
  let n = Graph.n_nodes g in
  let visited = Array.make n false in
  let best = ref None in
  let rec explore u lat width =
    if u = dst then begin
      match !best with
      | Some w when w >= width -> ()
      | _ -> best := Some width
    end
    else
      Graph.iter_adj g u (fun ~neighbor ~eid ->
          if not visited.(neighbor) then begin
            let link = Cluster.link cluster eid in
            let lat' = lat +. link.Link.latency_ms in
            let avail = Residual.available residual eid in
            if lat' <= latency_ms && avail >= bandwidth_mbps then begin
              visited.(neighbor) <- true;
              explore neighbor lat' (Float.min width avail);
              visited.(neighbor) <- false
            end
          end)
  in
  visited.(src) <- true;
  if src = dst then Some infinity
  else begin
    explore src 0. infinity;
    !best
  end

let route_host i =
  Node.host
    ~name:(Printf.sprintf "h%d" i)
    ~capacity:(Resources.make ~mips:1000. ~mem_mb:1024. ~stor_gb:100.)

let route_check ~seed =
  let rng = Rng.create (seed + route_seed_offset) in
  let n = Rng.int_in rng ~lo:5 ~hi:9 in
  let shape = Generators.random_connected ~n ~density:0.35 ~rng in
  let g =
    Graph.map_labels shape ~f:(fun ~eid:_ () ->
        Link.make
          ~bandwidth_mbps:(Rng.float_in rng ~lo:10. ~hi:100.)
          ~latency_ms:(Rng.float_in rng ~lo:1. ~hi:10.))
  in
  let cluster = Cluster.create ~nodes:(Array.init n route_host) ~graph:g in
  let residual = Residual.create cluster in
  (* A random partial load, reserved edge by edge, so the oracle sees a
     residual state shaped like mid-Networking, not a fresh cluster. *)
  Graph.iter_edges g (fun ~eid ~u ~v _ ->
      if Rng.bool rng then begin
        let cap = Residual.available residual eid in
        let p = Path.make ~nodes:[ u; v ] ~edges:[ eid ] in
        ignore (Residual.reserve_path residual p (0.8 *. cap *. Rng.float rng))
      end);
  let tables = Latency_table.create cluster in
  let failures = ref [] in
  let queries = 8 in
  for _ = 1 to queries do
    let src = Rng.int rng ~bound:n and dst = Rng.int rng ~bound:n in
    let bandwidth_mbps = Rng.float_in rng ~lo:5. ~hi:60. in
    let latency_ms = Rng.float_in rng ~lo:5. ~hi:40. in
    let disagree detail =
      failures :=
        Route_disagreement { src; dst; bandwidth_mbps; latency_ms; detail }
        :: !failures
    in
    if src <> dst then begin
      let oracle =
        exhaustive_widest residual ~src ~dst ~bandwidth_mbps ~latency_ms
      in
      let pruned =
        Astar.route ~residual ~latency_tables:tables ~src ~dst ~bandwidth_mbps
          ~latency_ms ()
      in
      let unpruned =
        Astar.route ~prune_dominated:false ~residual ~latency_tables:tables ~src
          ~dst ~bandwidth_mbps ~latency_ms ()
      in
      let width p = Path.bottleneck ~capacity:(Residual.available residual) p in
      (match (pruned, oracle) with
      | None, Some w ->
        disagree
          (Printf.sprintf "A*Prune found nothing; oracle has a %.3f Mbps path" w)
      | Some _, None -> disagree "A*Prune found a path; oracle says infeasible"
      | None, None -> ()
      | Some (p, _), Some w ->
        if Result.is_error (Path.validate cluster ~src ~dst p) then
          disagree "A*Prune path is structurally invalid"
        else if Path.total_latency cluster p > latency_ms +. 1e-9 then
          disagree "A*Prune path violates the latency bound"
        else if not (Hmn_prelude.Float_ext.approx (width p) w) then
          disagree
            (Printf.sprintf "bottleneck %.6f differs from oracle optimum %.6f"
               (width p) w));
      (match (pruned, unpruned) with
      | None, None -> ()
      | Some _, None ->
        disagree "pruned search found a path the unpruned reference missed"
      | None, Some _ ->
        disagree "unpruned reference found a path the pruned search missed"
      | Some (a, _), Some (b, _) ->
        if not (Hmn_prelude.Float_ext.approx (width a) (width b)) then
          disagree
            (Printf.sprintf "dominance pruning changed the bottleneck: %.6f vs %.6f"
               (width a) (width b)));
      let dij =
        Dijkstra_route.route ~residual ~src ~dst ~bandwidth_mbps ~latency_ms ()
      in
      match (dij, oracle) with
      | None, Some _ ->
        disagree "Dijkstra oracle found nothing where a feasible path exists"
      | Some _, None -> disagree "Dijkstra oracle found an infeasible path"
      | _ -> ()
    end
  done;
  (queries, List.rev !failures)

(* ---- mapper differential check ---- *)

let mapper_rng ~seed ~mapper_name = Rng.create (seed + (17 * Hashtbl.hash mapper_name))

(* Whole-mapping oracle: on instances small enough for the exact branch
   and bound, every validated mapping's objective must stay at or above
   the solver's proven lower bound — and none may exist at all when the
   solver proves the instance infeasible ([lower_bound = infinity]).
   The bound remains valid on budget exhaustion (just loose), so the
   check never yields a false positive. *)
let oracle_max_hosts = 6
let oracle_max_guests = 12
let oracle_node_budget = 50_000

let oracle_check problem ~mapped =
  let hosts = Cluster.n_hosts problem.Problem.cluster in
  let guests = Hmn_vnet.Virtual_env.n_guests problem.Problem.venv in
  if hosts > oracle_max_hosts || guests > oracle_max_guests then (0, [])
  else begin
    let result =
      Hmn_exact.Solver.solve
        ~config:{ Hmn_exact.Solver.node_budget = oracle_node_budget; routing = true }
        ~warm:(List.map snd mapped) problem
    in
    let lb = result.Hmn_exact.Solver.lower_bound in
    let violations =
      List.filter_map
        (fun (name, mapping) ->
          let objective = Hmn_mapping.Mapping.objective mapping in
          if objective < lb -. (1e-6 *. Float.max 1. (Float.abs objective)) then
            Some (Objective_below_optimum { mapper = name; objective; lower_bound = lb })
          else None)
        mapped
    in
    (1, violations)
  end

let run_case ~mappers ~params ~seed =
  let problem = build_problem params ~seed in
  let validated = ref 0 and gave_up = ref 0 in
  let failures = ref [] in
  let mapped = ref [] in
  List.iter
    (fun mapper ->
      let name = mapper.Mapper.name in
      match (mapper.Mapper.run ~rng:(mapper_rng ~seed ~mapper_name:name) problem).Mapper.result with
      | exception exn ->
        failures :=
          Mapper_exception { mapper = name; exn = Printexc.to_string exn }
          :: !failures
      | Error _ -> incr gave_up
      | Ok mapping ->
        incr validated;
        let report = Validator.check mapping in
        if report.Validator.violations <> [] then
          failures := Invalid_mapping { mapper = name; report } :: !failures
        else mapped := (name, mapping) :: !mapped)
    mappers;
  let oracle_checked, oracle_failures =
    oracle_check problem ~mapped:(List.rev !mapped)
  in
  let route_queries, route_failures = route_check ~seed in
  let whats = List.rev !failures @ oracle_failures @ route_failures in
  {
    cases = 1;
    validated = !validated;
    mapper_gave_up = !gave_up;
    route_queries;
    oracle_checked;
    failures = List.map (fun what -> { seed; params; what }) whats;
  }

(* ---- shrinking ---- *)

let reductions p =
  let guests = if p.n_guests > 2 then [ { p with n_guests = max 2 (p.n_guests / 2) } ] else [] in
  let shape =
    match p.shape with
    | Torus { rows; cols } ->
      (if cols > 2 then [ { p with shape = Torus { rows; cols = max 2 (cols / 2) } } ] else [])
      @ if rows > 2 then [ { p with shape = Torus { rows = max 2 (rows / 2); cols } } ] else []
    | Switched { hosts } ->
      if hosts > 2 then [ { p with shape = Switched { hosts = max 2 (hosts / 2) } } ] else []
  in
  let density =
    if p.density > 0.05 then [ { p with density = Float.max 0.05 (p.density /. 2.) } ]
    else []
  in
  guests @ shape @ density

let shrink ~mappers f =
  let rec go f budget =
    if budget = 0 then f
    else
      match
        List.find_map
          (fun p ->
            match (run_case ~mappers ~params:p ~seed:f.seed).failures with
            | [] -> None
            | g :: _ -> Some g)
          (reductions f.params)
      with
      | None -> f
      | Some f' -> go f' (budget - 1)
  in
  go f 16

(* ---- driver ---- *)

let empty_stats =
  {
    cases = 0;
    validated = 0;
    mapper_gave_up = 0;
    route_queries = 0;
    oracle_checked = 0;
    failures = [];
  }

let merge a b =
  {
    cases = a.cases + b.cases;
    validated = a.validated + b.validated;
    mapper_gave_up = a.mapper_gave_up + b.mapper_gave_up;
    route_queries = a.route_queries + b.route_queries;
    oracle_checked = a.oracle_checked + b.oracle_checked;
    failures = a.failures @ b.failures;
  }

let run ?mappers ?params ~seed ~count () =
  let mappers =
    match mappers with Some ms -> ms | None -> Registry.all ~max_tries:50 ()
  in
  let acc = ref empty_stats in
  for i = 0 to count - 1 do
    let case_seed = seed + i in
    let p =
      match params with
      | Some p -> p
      | None -> draw_params (Rng.create case_seed)
    in
    acc := merge !acc (run_case ~mappers ~params:p ~seed:case_seed)
  done;
  { !acc with failures = List.map (shrink ~mappers) !acc.failures }

(* ---- reporting ---- *)

let shape_args = function
  | Torus { rows; cols } -> Printf.sprintf "--cluster torus --rows %d --cols %d" rows cols
  | Switched { hosts } -> Printf.sprintf "--cluster switched --hosts %d" hosts

let repro_command f =
  Printf.sprintf "hmn_cli fuzz --instances 1 --seed %d %s --guests %d --density %g --workload %s"
    f.seed (shape_args f.params.shape) f.params.n_guests f.params.density
    (if f.params.low_level then "low" else "high")

let pp_params ppf p =
  let shape =
    match p.shape with
    | Torus { rows; cols } -> Printf.sprintf "%dx%d torus" rows cols
    | Switched { hosts } -> Printf.sprintf "%d-host switched" hosts
  in
  Format.fprintf ppf "%s, %d guests, density %g, %s workload" shape p.n_guests
    p.density
    (if p.low_level then "low-level" else "high-level")

let pp_what ppf = function
  | Invalid_mapping { mapper; report } ->
    Format.fprintf ppf "%s produced an invalid mapping: %a" mapper
      Validator.pp_report report
  | Mapper_exception { mapper; exn } ->
    Format.fprintf ppf "%s raised: %s" mapper exn
  | Route_disagreement { src; dst; bandwidth_mbps; latency_ms; detail } ->
    Format.fprintf ppf
      "router cross-check %d->%d (%.1f Mbps, <= %.1f ms): %s" src dst
      bandwidth_mbps latency_ms detail
  | Objective_below_optimum { mapper; objective; lower_bound } ->
    if lower_bound = infinity then
      Format.fprintf ppf
        "%s mapped an instance the exact solver proves infeasible (objective %.6f)"
        mapper objective
    else
      Format.fprintf ppf
        "%s reported objective %.6f below the proven optimum lower bound %.6f"
        mapper objective lower_bound

let pp_failure ppf f =
  Format.fprintf ppf "seed %d (%a)@\n  %a@\n  repro: %s" f.seed pp_params f.params
    pp_what f.what (repro_command f)

let pp_stats ppf s =
  Format.fprintf ppf
    "%d cases: %d mappings validated, %d mapper give-ups, %d route queries \
     cross-checked, %d exact-oracle checks, %d failure(s)"
    s.cases s.validated s.mapper_gave_up s.route_queries s.oracle_checked
    (List.length s.failures);
  List.iter (fun f -> Format.fprintf ppf "@\n%a" pp_failure f) s.failures
