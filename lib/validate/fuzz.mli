(** Differential fuzzing of the mapper registry and the router.

    Each case derives, from a reported integer seed, a random
    (cluster, virtual environment) instance via the production
    generators ({!Hmn_testbed.Cluster_gen}, {!Hmn_vnet.Venv_gen}), runs
    every mapper in the registry on it, and {!Validator.check}s every
    mapping produced — a mapper declining an instance is not a failure,
    producing an {e invalid} mapping (or raising) is. On instances
    small enough for the exact branch and bound
    ({!Hmn_exact.Solver}), every valid mapping is additionally held
    against the solver's proven lower bound on the objective: a mapper
    scoring {e below} it, or mapping an instance the solver proves
    infeasible, is a failure in whichever component is wrong.
    Independently, each case cross-checks {!Hmn_routing.Astar_prune} —
    pruned and unpruned — against an exhaustive widest-path oracle and
    {!Hmn_routing.Dijkstra_route} on a small random graph.

    Failing cases are shrunk by repeatedly halving the instance
    parameters while the failure persists, and carry an exact
    [hmn_cli fuzz] repro command. All randomness derives from the case
    seed, so the command reproduces the instance bit-for-bit. *)

type cluster_shape =
  | Torus of { rows : int; cols : int }
  | Switched of { hosts : int }

type params = {
  shape : cluster_shape;
  n_guests : int;
  density : float;  (** virtual-graph edge density *)
  low_level : bool;  (** workload family (Table 1) *)
}

type what =
  | Invalid_mapping of { mapper : string; report : Validator.report }
  | Mapper_exception of { mapper : string; exn : string }
  | Route_disagreement of {
      src : int;
      dst : int;
      bandwidth_mbps : float;
      latency_ms : float;
      detail : string;
    }
  | Objective_below_optimum of {
      mapper : string;
      objective : float;
      lower_bound : float;
          (** the exact solver's proven bound; [infinity] when it
              proved the instance infeasible *)
    }

type failure = {
  seed : int;  (** the case seed; feeds {!repro_command} *)
  params : params;
  what : what;
}

type stats = {
  cases : int;
  validated : int;  (** successful mapper runs, each re-checked *)
  mapper_gave_up : int;  (** [Error] outcomes — not failures *)
  route_queries : int;
  oracle_checked : int;
      (** cases small enough that the exact whole-mapping oracle ran *)
  failures : failure list;
}

val draw_params : Hmn_rng.Rng.t -> params
(** Small instances: 4–12 hosts, up to ~40 guests, both workloads. *)

val build_problem : params -> seed:int -> Hmn_mapping.Problem.t
(** Deterministic in [(params, seed)], independent of how [params] was
    obtained — so a shrunk parameter set replayed with the original
    seed regenerates the shrunk instance exactly. *)

val run_case :
  mappers:Hmn_core.Mapper.t list -> params:params -> seed:int -> stats
(** One instance: every mapper validated, plus the router cross-check. *)

val shrink : mappers:Hmn_core.Mapper.t list -> failure -> failure
(** Greedily halves guests/hosts/density while the case still fails;
    returns the smallest still-failing case (possibly the input). *)

val run :
  ?mappers:Hmn_core.Mapper.t list ->
  ?params:params ->
  seed:int ->
  count:int ->
  unit ->
  stats
(** [count] cases with seeds [seed, seed+1, ...]. [?params] pins the
    instance parameters (repro / shrink replay); otherwise each case
    draws its own from its seed. [?mappers] defaults to the full
    registry. Failures are shrunk before being returned. *)

val smoke_seed : int
(** The fixed seed of the CI smoke run. *)

val repro_command : failure -> string
(** An [hmn_cli fuzz] invocation that replays exactly this case. *)

val pp_failure : Format.formatter -> failure -> unit
val pp_stats : Format.formatter -> stats -> unit
