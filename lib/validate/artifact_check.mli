(** Cross-validation of decompiled deployment artifacts against the
    mapping they were compiled from — the dry-run verifier of the
    artifact round trip.

    [Hmn_artifact.Compile] emits text; [Hmn_artifact.Decompile] re-parses
    that text with no shared in-memory state; this module then re-derives
    what the artifacts {e should} say from the mapping alone and compares:

    - every guest is launched exactly once, on the host the placement
      assigned, with memory/storage/CPU fields equal to its demand
      (the artifacts must reproduce the loads Eqs. 2–3 were checked
      against) and the grammar's interface/bridge names;
    - every guest vif and every shaped link's port is present on the
      right bridge;
    - per physical link: exactly one shaping class per routed virtual
      link, with the deterministic class minor, a rate equal to the
      link's reserved bandwidth (and their sum equal to the Networking
      reservation within the ledger tolerance), and a netem delay equal
      to the physical link's latency — so each virtual link's latency
      along its route equals the sum of its netem stages;
    - the manifest's embedded problem (or tenant virtual environment)
      is byte-identical to a fresh canonical serialization, and its
      schema version is the grammar's.

    Numbers are compared {e exactly} where the emission grammar is
    lossless (it is — see [Spec.fmt_num]); only per-link rate {e sums}
    get the accounting tolerance, mirroring [Validator]'s residual
    policy. Never raises. *)

type violation =
  | Schema_mismatch of { expected : int; found : int }
  | Guest_missing of int  (** placed, never launched *)
  | Guest_duplicated of int  (** launched more than once *)
  | Unknown_guest of int  (** launched but not in the virtual env *)
  | Guest_misplaced of { guest : int; launched_on : int; mapped_to : int }
  | Guest_resources_mismatch of {
      guest : int;
      component : string;  (** ["mem_mb"] / ["stor_gb"] / ["mips"] *)
      artifact : float;
      demand : float;
    }
  | Iface_mismatch of { guest : int; field : string; found : string }
      (** wrong attachment interface or bridge name for the guest *)
  | Port_missing of { bridge : string; port : string }
  | Link_missing of int  (** a physical link carrying routed virtual
                             links has no shaping entry at all *)
  | Link_unknown of int  (** a shaping entry for a link that carries
                             nothing (or does not exist) *)
  | Link_meta_mismatch of {
      edge : int;
      field : string;  (** ["capacity_mbps"] / ["delay_ms"] *)
      artifact : float;
      expected : float;
    }
  | Class_missing of { edge : int; vlink : int }
  | Class_unknown of { edge : int; vlink : int }
  | Class_duplicated of { edge : int; vlink : int }
  | Class_id_mismatch of { edge : int; vlink : int; minor : int; expected : int }
  | Rate_mismatch of { edge : int; vlink : int; artifact : float; reserved : float }
  | Rate_sum_mismatch of { edge : int; artifact : float; reserved : float }
      (** summed shaped rates off the Networking reservation by more
          than the ledger tolerance *)
  | Delay_mismatch of { edge : int; vlink : int; artifact : float; expected : float }
  | Route_delay_mismatch of { vlink : int; artifact : float; expected : float }
      (** end-to-end: the sum of the virtual link's netem stages is not
          the route's latency *)
  | Manifest_mismatch of string
      (** the embedded problem/venv is not byte-identical to a canonical
          re-serialization, or is missing *)

type report = {
  violations : violation list;  (** in discovery order; [[]] = faithful *)
  launches_checked : int;
  classes_checked : int;
}

val ok : report -> bool

val check_view :
  cluster:Hmn_testbed.Cluster.t ->
  venv:Hmn_vnet.Virtual_env.t ->
  host_of:(int -> int) ->
  path_of:(int -> Hmn_routing.Path.t) ->
  ?expect_manifest:Hmn_prelude.Json.t ->
  Hmn_artifact.Decompile.t ->
  report
(** The core: compare a decompiled bundle against placement/routing
    functions over a cluster and virtual environment.
    [expect_manifest], when given, must match the bundle's embedded
    ["problem"] (full scope) or ["venv"] (tenant scope) byte-for-byte
    under canonical serialization. *)

val check : mapping:Hmn_mapping.Mapping.t -> Hmn_artifact.Decompile.t -> report
(** Whole-mapping bundles: derives the view from the mapping and expects
    the manifest to embed [Hmn_io.Codec.problem_to_json]. *)

val check_tenant :
  cluster:Hmn_testbed.Cluster.t ->
  venv:Hmn_vnet.Virtual_env.t ->
  hosts:int array ->
  paths:Hmn_routing.Path.t array ->
  Hmn_artifact.Decompile.t ->
  report
(** Per-tenant delta bundles (tenant-local ids); expects the manifest to
    embed [Hmn_io.Codec.venv_to_json]. *)

val violation_label : violation -> string
(** Stable class key, e.g. ["rate-mismatch"] — what the corruption tests
    and the CLI's [--check] summary report. *)

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit
