module Cluster = Hmn_testbed.Cluster
module Link = Hmn_testbed.Link
module Venv = Hmn_vnet.Virtual_env
module Guest = Hmn_vnet.Guest
module Vlink = Hmn_vnet.Vlink
module Resources = Hmn_testbed.Resources
module Path = Hmn_routing.Path
module Residual = Hmn_routing.Residual
module Mapping = Hmn_mapping.Mapping
module Placement = Hmn_mapping.Placement
module Link_map = Hmn_mapping.Link_map
module Problem = Hmn_mapping.Problem
module Json = Hmn_prelude.Json
module Spec = Hmn_artifact.Spec
module Decompile = Hmn_artifact.Decompile

type violation =
  | Schema_mismatch of { expected : int; found : int }
  | Guest_missing of int
  | Guest_duplicated of int
  | Unknown_guest of int
  | Guest_misplaced of { guest : int; launched_on : int; mapped_to : int }
  | Guest_resources_mismatch of {
      guest : int;
      component : string;
      artifact : float;
      demand : float;
    }
  | Iface_mismatch of { guest : int; field : string; found : string }
  | Port_missing of { bridge : string; port : string }
  | Link_missing of int
  | Link_unknown of int
  | Link_meta_mismatch of {
      edge : int;
      field : string;
      artifact : float;
      expected : float;
    }
  | Class_missing of { edge : int; vlink : int }
  | Class_unknown of { edge : int; vlink : int }
  | Class_duplicated of { edge : int; vlink : int }
  | Class_id_mismatch of { edge : int; vlink : int; minor : int; expected : int }
  | Rate_mismatch of { edge : int; vlink : int; artifact : float; reserved : float }
  | Rate_sum_mismatch of { edge : int; artifact : float; reserved : float }
  | Delay_mismatch of { edge : int; vlink : int; artifact : float; expected : float }
  | Route_delay_mismatch of { vlink : int; artifact : float; expected : float }
  | Manifest_mismatch of string

type report = {
  violations : violation list;
  launches_checked : int;
  classes_checked : int;
}

let ok r = r.violations = []

let bridge_of cluster node =
  if node >= 0 && node < Cluster.n_nodes cluster && Cluster.is_host cluster node
  then Spec.host_bridge node
  else Spec.switch_bridge node

let check_view ~cluster ~venv ~host_of ~path_of ?expect_manifest
    (d : Decompile.t) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  if d.Decompile.schema_version <> Spec.schema_version then
    add
      (Schema_mismatch
         { expected = Spec.schema_version; found = d.Decompile.schema_version });

  (* --- launches: every guest exactly once, where placed, at its demand --- *)
  let n_guests = Venv.n_guests venv in
  let seen = Array.make (max n_guests 1) 0 in
  List.iter
    (fun (vm : Decompile.vm) ->
      if vm.guest < 0 || vm.guest >= n_guests then add (Unknown_guest vm.guest)
      else begin
        seen.(vm.guest) <- seen.(vm.guest) + 1;
        if seen.(vm.guest) = 2 then add (Guest_duplicated vm.guest);
        let mapped = host_of vm.guest in
        if vm.host <> mapped then
          add
            (Guest_misplaced
               { guest = vm.guest; launched_on = vm.host; mapped_to = mapped });
        let dem = (Venv.guest venv vm.guest).Guest.demand in
        (* the grammar is numerically lossless, so exact comparison *)
        let res component artifact demand =
          if artifact <> demand then
            add (Guest_resources_mismatch { guest = vm.guest; component; artifact; demand })
        in
        res "mem_mb" vm.mem_mb dem.Resources.mem_mb;
        res "stor_gb" vm.stor_gb dem.Resources.stor_gb;
        res "mips" vm.cpu_mips dem.Resources.mips;
        if vm.iface <> Spec.iface vm.guest then
          add (Iface_mismatch { guest = vm.guest; field = "iface"; found = vm.iface });
        let expected_bridge = bridge_of cluster mapped in
        if vm.bridge <> expected_bridge then
          add
            (Iface_mismatch { guest = vm.guest; field = "bridge"; found = vm.bridge })
      end)
    d.Decompile.vms;
  for g = 0 to n_guests - 1 do
    if seen.(g) = 0 then add (Guest_missing g)
  done;

  (* --- bridge ports --- *)
  let ports_tbl = Hashtbl.create 1024 in
  List.iter
    (fun (b : Decompile.bridge) ->
      let set =
        match Hashtbl.find_opt ports_tbl b.bridge_name with
        | Some set -> set
        | None ->
          let set = Hashtbl.create 16 in
          Hashtbl.replace ports_tbl b.bridge_name set;
          set
      in
      List.iter (fun p -> Hashtbl.replace set p ()) b.ports)
    d.Decompile.bridges;
  let require_port bridge port =
    let present =
      match Hashtbl.find_opt ports_tbl bridge with
      | Some set -> Hashtbl.mem set port
      | None -> false
    in
    if not present then add (Port_missing { bridge; port })
  in
  for g = 0 to n_guests - 1 do
    require_port (bridge_of cluster (host_of g)) (Spec.iface g)
  done;

  (* --- expected shaping, re-derived from the routes --- *)
  let n_vlinks = Venv.n_vlinks venv in
  let expected = Hashtbl.create 256 in
  (* eid -> (vlink, rate) list, reverse discovery order for now *)
  let routed = Array.make (max n_vlinks 1) false in
  for vl = 0 to n_vlinks - 1 do
    let p = path_of vl in
    if not (Path.is_intra_host p) then begin
      routed.(vl) <- true;
      let rate = (Venv.vlink venv vl).Vlink.bandwidth_mbps in
      Path.iter_edges p (fun eid ->
          Hashtbl.replace expected eid
            ((vl, rate)
            :: Option.value (Hashtbl.find_opt expected eid) ~default:[]))
    end
  done;
  let expected =
    Hashtbl.fold
      (fun eid cls acc ->
        (eid, List.sort (fun (a, _) (b, _) -> Int.compare a b) cls) :: acc)
      expected []
  in
  let expected_tbl = Hashtbl.create 256 in
  List.iter (fun (eid, cls) -> Hashtbl.replace expected_tbl eid cls) expected;

  let classes_checked = ref 0 in
  let covered_edges = Hashtbl.create 256 in
  let art_route_delay = Hashtbl.create 256 in
  (* vlink -> summed netem delay *)
  List.iter
    (fun (l : Decompile.shaped_link) ->
      match Hashtbl.find_opt expected_tbl l.edge with
      | None -> add (Link_unknown l.edge)
      | Some exp_classes ->
        Hashtbl.replace covered_edges l.edge ();
        let link = Cluster.link cluster l.edge in
        if l.capacity_mbps <> link.Link.bandwidth_mbps then
          add
            (Link_meta_mismatch
               {
                 edge = l.edge;
                 field = "capacity_mbps";
                 artifact = l.capacity_mbps;
                 expected = link.Link.bandwidth_mbps;
               });
        if l.link_delay_ms <> link.Link.latency_ms then
          add
            (Link_meta_mismatch
               {
                 edge = l.edge;
                 field = "delay_ms";
                 artifact = l.link_delay_ms;
                 expected = link.Link.latency_ms;
               });
        (match d.Decompile.scope with
        | Decompile.Full ->
          let u, v =
            Hmn_graph.Graph.endpoints (Cluster.graph cluster) l.edge
          in
          require_port (bridge_of cluster u) (Spec.port l.edge);
          require_port (bridge_of cluster v) (Spec.port l.edge)
        | Decompile.Tenant _ -> ());
        (* minors follow ascending-vlink rank *)
        let minor_of = Hashtbl.create 16 in
        List.iteri
          (fun rank (vl, rate) ->
            Hashtbl.replace minor_of vl (Spec.minor_of_rank rank, rate))
          exp_classes;
        let seen_vl = Hashtbl.create 16 in
        List.iter
          (fun (c : Decompile.cls) ->
            incr classes_checked;
            Hashtbl.replace art_route_delay c.vlink
              (c.delay_ms
              +. Option.value
                   (Hashtbl.find_opt art_route_delay c.vlink)
                   ~default:0.);
            match Hashtbl.find_opt minor_of c.vlink with
            | None -> add (Class_unknown { edge = l.edge; vlink = c.vlink })
            | Some (minor, rate) ->
              if Hashtbl.mem seen_vl c.vlink then
                add (Class_duplicated { edge = l.edge; vlink = c.vlink })
              else begin
                Hashtbl.replace seen_vl c.vlink ();
                if c.minor <> minor then
                  add
                    (Class_id_mismatch
                       { edge = l.edge; vlink = c.vlink; minor = c.minor; expected = minor });
                if c.rate_mbps <> rate then
                  add
                    (Rate_mismatch
                       { edge = l.edge; vlink = c.vlink; artifact = c.rate_mbps; reserved = rate });
                if c.delay_ms <> link.Link.latency_ms then
                  add
                    (Delay_mismatch
                       {
                         edge = l.edge;
                         vlink = c.vlink;
                         artifact = c.delay_ms;
                         expected = link.Link.latency_ms;
                       })
              end)
          l.classes;
        List.iter
          (fun (vl, _) ->
            if not (Hashtbl.mem seen_vl vl) then
              add (Class_missing { edge = l.edge; vlink = vl }))
          exp_classes;
        (* per-link rate sum vs the Networking reservation, within the
           ledger tolerance (each reserve drifts ≤ Residual.tolerance) *)
        let art_sum =
          List.fold_left (fun acc (c : Decompile.cls) -> acc +. c.rate_mbps) 0.
            l.classes
        in
        let reserved_sum =
          List.fold_left (fun acc (_, r) -> acc +. r) 0. exp_classes
        in
        let slack = Residual.tolerance *. float_of_int (n_vlinks + 1) in
        if Float.abs (art_sum -. reserved_sum) > slack then
          add
            (Rate_sum_mismatch
               { edge = l.edge; artifact = art_sum; reserved = reserved_sum }))
    d.Decompile.links;
  List.iter
    (fun (eid, _) ->
      if not (Hashtbl.mem covered_edges eid) then add (Link_missing eid))
    (List.sort (fun (a, _) (b, _) -> Int.compare a b) expected);

  (* --- end-to-end: each route's netem stages sum to the route latency --- *)
  for vl = 0 to n_vlinks - 1 do
    if routed.(vl) then begin
      let expected_delay = Path.total_latency cluster (path_of vl) in
      let artifact =
        Option.value (Hashtbl.find_opt art_route_delay vl) ~default:0.
      in
      (* summation order differs between route order and artifact order *)
      let slack = 1e-9 *. (1. +. Float.abs expected_delay) in
      if Float.abs (artifact -. expected_delay) > slack then
        add (Route_delay_mismatch { vlink = vl; artifact; expected = expected_delay })
    end
  done;

  (* --- manifest ties the artifacts to the instance --- *)
  (match expect_manifest with
  | None -> ()
  | Some canonical ->
    let embedded =
      match d.Decompile.scope with
      | Decompile.Full -> d.Decompile.problem
      | Decompile.Tenant _ -> d.Decompile.venv
    in
    (match embedded with
    | None -> add (Manifest_mismatch "embedded problem/venv missing")
    | Some e ->
      if Json.to_string e <> Json.to_string canonical then
        add
          (Manifest_mismatch
             "embedded instance differs from canonical serialization")));

  {
    violations = List.rev !violations;
    launches_checked = List.length d.Decompile.vms;
    classes_checked = !classes_checked;
  }

let check ~mapping d =
  let problem = Mapping.problem mapping in
  let host_of g =
    Option.value
      (Placement.host_of mapping.Mapping.placement ~guest:g)
      ~default:(-1)
  in
  let path_of vl =
    match Link_map.path_of mapping.Mapping.link_map ~vlink:vl with
    | Some p -> p
    | None ->
      (* an unrouted link contributes no expected shaping; any class the
         artifacts claim for it then reads as Class_unknown *)
      Path.trivial 0
  in
  check_view ~cluster:problem.Problem.cluster ~venv:problem.Problem.venv
    ~host_of ~path_of
    ~expect_manifest:(Hmn_io.Codec.problem_to_json problem)
    d

let check_tenant ~cluster ~venv ~hosts ~paths d =
  check_view ~cluster ~venv
    ~host_of:(fun g -> hosts.(g))
    ~path_of:(fun vl -> paths.(vl))
    ~expect_manifest:(Hmn_io.Codec.venv_to_json venv)
    d

let violation_label = function
  | Schema_mismatch _ -> "schema-mismatch"
  | Guest_missing _ -> "guest-missing"
  | Guest_duplicated _ -> "guest-duplicated"
  | Unknown_guest _ -> "unknown-guest"
  | Guest_misplaced _ -> "guest-misplaced"
  | Guest_resources_mismatch _ -> "guest-resources-mismatch"
  | Iface_mismatch _ -> "iface-mismatch"
  | Port_missing _ -> "port-missing"
  | Link_missing _ -> "link-missing"
  | Link_unknown _ -> "link-unknown"
  | Link_meta_mismatch _ -> "link-meta-mismatch"
  | Class_missing _ -> "class-missing"
  | Class_unknown _ -> "class-unknown"
  | Class_duplicated _ -> "class-duplicated"
  | Class_id_mismatch _ -> "class-id-mismatch"
  | Rate_mismatch _ -> "rate-mismatch"
  | Rate_sum_mismatch _ -> "rate-sum-mismatch"
  | Delay_mismatch _ -> "delay-mismatch"
  | Route_delay_mismatch _ -> "route-delay-mismatch"
  | Manifest_mismatch _ -> "manifest-mismatch"

let pp_violation ppf v =
  let f = Format.fprintf in
  match v with
  | Schema_mismatch { expected; found } ->
    f ppf "schema version %d, grammar is %d" found expected
  | Guest_missing g -> f ppf "guest %d placed but never launched" g
  | Guest_duplicated g -> f ppf "guest %d launched more than once" g
  | Unknown_guest g -> f ppf "launch for unknown guest %d" g
  | Guest_misplaced { guest; launched_on; mapped_to } ->
    f ppf "guest %d launched on host %d, mapped to %d" guest launched_on mapped_to
  | Guest_resources_mismatch { guest; component; artifact; demand } ->
    f ppf "guest %d %s: artifact %g, demand %g" guest component artifact demand
  | Iface_mismatch { guest; field; found } ->
    f ppf "guest %d %s is %S, off the grammar" guest field found
  | Port_missing { bridge; port } -> f ppf "port %s missing on %s" port bridge
  | Link_missing e -> f ppf "link e%d carries traffic but has no shaping" e
  | Link_unknown e -> f ppf "shaping for link e%d which carries nothing" e
  | Link_meta_mismatch { edge; field; artifact; expected } ->
    f ppf "link e%d %s: artifact %g, cluster %g" edge field artifact expected
  | Class_missing { edge; vlink } ->
    f ppf "link e%d: no class for vlink %d" edge vlink
  | Class_unknown { edge; vlink } ->
    f ppf "link e%d: class for vlink %d which is not routed here" edge vlink
  | Class_duplicated { edge; vlink } ->
    f ppf "link e%d: duplicated class for vlink %d" edge vlink
  | Class_id_mismatch { edge; vlink; minor; expected } ->
    f ppf "link e%d vlink %d: classid 1:%d, expected 1:%d" edge vlink minor expected
  | Rate_mismatch { edge; vlink; artifact; reserved } ->
    f ppf "link e%d vlink %d: rate %g Mbps, reserved %g" edge vlink artifact reserved
  | Rate_sum_mismatch { edge; artifact; reserved } ->
    f ppf "link e%d: shaped rates sum to %g Mbps, reservations %g" edge artifact
      reserved
  | Delay_mismatch { edge; vlink; artifact; expected } ->
    f ppf "link e%d vlink %d: netem delay %g ms, link latency %g" edge vlink
      artifact expected
  | Route_delay_mismatch { vlink; artifact; expected } ->
    f ppf "vlink %d: netem stages sum to %g ms, route latency %g" vlink artifact
      expected
  | Manifest_mismatch reason -> f ppf "manifest: %s" reason

let pp_report ppf r =
  if ok r then
    Format.fprintf ppf "artifacts faithful (%d launches, %d classes)"
      r.launches_checked r.classes_checked
  else begin
    Format.fprintf ppf "%d violation(s) over %d launches, %d classes:"
      (List.length r.violations) r.launches_checked r.classes_checked;
    List.iter
      (fun v ->
        Format.fprintf ppf "@\n  [%s] %a" (violation_label v) pp_violation v)
      r.violations
  end
