(** Independent re-derivation of every paper invariant a finished
    mapping must satisfy.

    {!Constraints.check} (in [hmn_mapping]) validates a mapping through
    the same [Path]/[Placement] helpers the mappers themselves use. This
    module is the {e oracle}: it rebuilds each invariant from the raw
    problem data and the physical graph alone — walking path node/edge
    sequences against [Graph.endpoints] rather than [Path.validate],
    summing demands rather than reading [Placement]'s residual arrays,
    recomputing the load-balance factor without [Objective] — so a
    bookkeeping bug in any of those layers is caught rather than
    inherited. It additionally cross-checks the {e stated} mutable state
    ([Link_map]'s [Residual], the mapping's reported objective) against
    the reconstruction, which is how incremental-accounting drift
    (remapping, live operations) becomes visible.

    Checked invariants, by paper equation:
    - every guest assigned, and only to host nodes (Eq. 1);
    - per-host memory and storage loads within capacity (Eqs. 2–3);
    - every inter-host virtual link routed by a path that starts and
      ends at the placed endpoints, is connected edge-by-edge in the
      physical graph, and repeats no node (Eqs. 4–7);
    - accumulated path latency within the virtual link's bound (Eq. 8);
    - per-physical-edge bandwidth sums within capacity (Eq. 9), and
      consistent with the stated residual state within the documented
      tolerance;
    - the reported load-balance factor equal to an independent
      recomputation of Eq. 10.

    [check] never raises: every defect is a value in the report. *)

type violation =
  | Unassigned_guest of int
  | Guest_on_non_host of { guest : int; node : int }
  | Memory_exceeded of { host : int; used : float; capacity : float }
  | Storage_exceeded of { host : int; used : float; capacity : float }
  | Unmapped_vlink of int
  | Endpoint_mismatch of { vlink : int; reason : string }
      (** The path does not start/end at the hosts the placement put the
          link's guests on (Eqs. 4–5), including a non-trivial path for
          an intra-host link. *)
  | Disconnected_path of { vlink : int; reason : string }
      (** A stated edge does not join the consecutive nodes in the
          physical graph (Eq. 6), or ids are out of range. *)
  | Path_not_simple of { vlink : int; node : int }
      (** The path visits [node] twice (Eq. 7). *)
  | Latency_exceeded of { vlink : int; actual : float; bound : float }
  | Bandwidth_exceeded of { edge : int; used : float; capacity : float }
  | Residual_mismatch of { edge : int; stated : float; derived : float }
      (** The live [Residual] disagrees with capacity minus the sum of
          routed bandwidths by more than the accounting tolerance. *)
  | Objective_mismatch of { stated : float; derived : float }
      (** The reported load-balance factor is not the one Eq. 10 gives
          for this placement. *)
  | Cpu_accounting_mismatch of { host : int; stated : float; derived : float }
      (** Multi-tenant check only: the online service's stated residual
          CPU for a host disagrees with capacity minus the summed MIPS
          demand of every tenant guest placed there. *)

type report = {
  violations : violation list;  (** in discovery order; [[]] = valid *)
  guests_checked : int;
  vlinks_checked : int;
  edges_checked : int;
  derived_lbf : float option;
      (** The independently recomputed Eq. 10 value; [None] when some
          guest was unassigned (the LBF of a partial placement is not
          comparable). *)
}

(** A mapping reduced to the raw facts the validator consumes. The
    indirection exists so tests and the fuzzer can seed corrupted views
    (a placement function that overflows a host, a stated residual that
    drifted) without bypassing the library's safe constructors. *)
type view = {
  problem : Hmn_mapping.Problem.t;
  host_of : int -> int option;  (** guest id → node id *)
  path_of : int -> Hmn_routing.Path.t option;  (** vlink id → path *)
  residual_available : (int -> float) option;
      (** edge id → stated residual; [None] skips the cross-check *)
  stated_lbf : float option;  (** [None] skips the objective check *)
}

val view_of_mapping : Hmn_mapping.Mapping.t -> view

val residual_tolerance : Hmn_mapping.Problem.t -> float
(** Per-edge slack for {!Residual_mismatch}: [Residual.tolerance] times
    (number of virtual links + 1), since each reserve/release drifts by
    at most [Residual.tolerance] and an edge carries at most one
    operation per virtual link per direction of churn. *)

val check_view : view -> report

val check : Hmn_mapping.Mapping.t -> report
(** [check_view (view_of_mapping m)]. Never raises. *)

val is_valid : Hmn_mapping.Mapping.t -> bool

val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> report -> unit

val violation_label : violation -> string
(** Short class name, e.g. ["residual-mismatch"] — stable keys for the
    fuzzer's summaries. *)

(** {2 Multi-tenant validation}

    The online testbed service ({!Hmn_online}) runs many virtual
    environments on one shared cluster. [check_tenants] is the oracle
    for that composed state: it re-derives every per-host and per-edge
    load by summing the raw demands of {e all} tenants' guests and
    routed links against the cluster's raw capacities — sharing no code
    or state with the service's own occupancy bookkeeping — and
    cross-checks the service's stated residual bandwidth and residual
    CPU when provided. *)

(** One tenant reduced to the raw facts the multi-tenant check consumes.
    Guest and vlink ids are tenant-local; node/edge ids are the shared
    cluster's. *)
type tenant_view = {
  venv : Hmn_vnet.Virtual_env.t;
  t_host_of : int -> int option;  (** tenant guest id → node id *)
  t_path_of : int -> Hmn_routing.Path.t option;  (** tenant vlink id → path *)
}

type multi_report = {
  per_tenant : (int * violation list) list;
      (** tenants with structural violations (unassigned guests, broken
          or latency-violating paths), tagged by tenant id; only
          offending tenants appear *)
  shared : violation list;
      (** aggregate violations of the shared cluster: summed memory /
          storage / bandwidth over capacity, and stated-state drift *)
  tenants_checked : int;
  m_guests_checked : int;
  m_vlinks_checked : int;
}

val check_tenants :
  ?stated_bw_available:(int -> float) ->
  ?stated_residual_cpu:(int -> float) ->
  cluster:Hmn_testbed.Cluster.t ->
  tenants:(int * tenant_view) list ->
  unit ->
  multi_report
(** [check_tenants ~cluster ~tenants ()] re-checks the composed
    multi-tenant state. [stated_bw_available] (edge id → Mbps) and
    [stated_residual_cpu] (host id → MIPS) additionally cross-check the
    service's live accounting against the reconstruction
    ({!Residual_mismatch} / {!Cpu_accounting_mismatch}). Never
    raises. *)

val multi_ok : multi_report -> bool

val pp_multi_report : Format.formatter -> multi_report -> unit
