module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Problem = Hmn_mapping.Problem
module Mapping = Hmn_mapping.Mapping
module Placement = Hmn_mapping.Placement
module Link_map = Hmn_mapping.Link_map
module Path = Hmn_routing.Path
module Residual = Hmn_routing.Residual

type violation =
  | Unassigned_guest of int
  | Guest_on_non_host of { guest : int; node : int }
  | Memory_exceeded of { host : int; used : float; capacity : float }
  | Storage_exceeded of { host : int; used : float; capacity : float }
  | Unmapped_vlink of int
  | Endpoint_mismatch of { vlink : int; reason : string }
  | Disconnected_path of { vlink : int; reason : string }
  | Path_not_simple of { vlink : int; node : int }
  | Latency_exceeded of { vlink : int; actual : float; bound : float }
  | Bandwidth_exceeded of { edge : int; used : float; capacity : float }
  | Residual_mismatch of { edge : int; stated : float; derived : float }
  | Objective_mismatch of { stated : float; derived : float }
  | Cpu_accounting_mismatch of { host : int; stated : float; derived : float }

type report = {
  violations : violation list;
  guests_checked : int;
  vlinks_checked : int;
  edges_checked : int;
  derived_lbf : float option;
}

type view = {
  problem : Problem.t;
  host_of : int -> int option;
  path_of : int -> Hmn_routing.Path.t option;
  residual_available : (int -> float) option;
  stated_lbf : float option;
}

let view_of_mapping (m : Mapping.t) =
  let residual = Link_map.residual m.Mapping.link_map in
  {
    problem = Mapping.problem m;
    host_of = (fun guest -> Placement.host_of m.Mapping.placement ~guest);
    path_of = (fun vlink -> Link_map.path_of m.Mapping.link_map ~vlink);
    residual_available = Some (fun eid -> Residual.available residual eid);
    stated_lbf = Some (Mapping.objective m);
  }

(* Memory/storage capacity slack: pure accumulation error of summing a
   few hundred demands — Constraints' constant is plenty. *)
let capacity_eps = 1e-6

let residual_tolerance problem =
  Residual.tolerance
  *. float_of_int (Virtual_env.n_vlinks problem.Problem.venv + 1)

(* Eq. 10 from raw demands only: residual CPU per host is the host's
   MIPS capacity minus the summed MIPS demand of the guests the view
   puts there; the LBF is the population standard deviation over hosts.
   Deliberately shares no code with [Objective] or [Placement]. *)
let derive_lbf problem host_of =
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let n_nodes = Cluster.n_nodes cluster in
  let demand = Array.make n_nodes 0. in
  let complete = ref true in
  for guest = 0 to Virtual_env.n_guests venv - 1 do
    match host_of guest with
    | None -> complete := false
    | Some node ->
      if node >= 0 && node < n_nodes && Cluster.is_host cluster node then
        demand.(node) <-
          demand.(node) +. (Virtual_env.demand venv guest).Resources.mips
      else complete := false
  done;
  if not !complete then None
  else begin
    let hosts = Cluster.host_ids cluster in
    let n = float_of_int (Array.length hosts) in
    let rproc =
      Array.map
        (fun h -> (Cluster.capacity cluster h).Resources.mips -. demand.(h))
        hosts
    in
    let mean = Array.fold_left ( +. ) 0. rproc /. n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. rproc
      /. n
    in
    Some (sqrt var)
  end

(* Walks the path against the physical graph itself: ids in range, each
   stated edge joining the consecutive node pair ([Graph.endpoints], not
   [Path.validate]), no node repeated. Returns [Error] on the first
   structural defect; latency/bandwidth are only meaningful on
   structurally sound paths. *)
let check_path_structure cluster ~vlink (p : Path.t) =
  let g = Cluster.graph cluster in
  let n_nodes = Graph.n_nodes g in
  let n_edges = Graph.n_edges g in
  let nodes = p.Path.nodes and edges = p.Path.edges in
  let defect = ref None in
  let flag v = if !defect = None then defect := Some v in
  Array.iter
    (fun u ->
      if u < 0 || u >= n_nodes then
        flag
          (Disconnected_path
             { vlink; reason = Printf.sprintf "node %d out of range" u }))
    nodes;
  if !defect = None then begin
    let seen = Array.make n_nodes false in
    Array.iter
      (fun u ->
        if seen.(u) then flag (Path_not_simple { vlink; node = u });
        seen.(u) <- true)
      nodes
  end;
  if !defect = None then
    Array.iteri
      (fun i eid ->
        if !defect = None then
          if eid < 0 || eid >= n_edges then
            flag
              (Disconnected_path
                 { vlink; reason = Printf.sprintf "edge %d out of range" eid })
          else begin
            let u, v = Graph.endpoints g eid in
            let a = nodes.(i) and b = nodes.(i + 1) in
            if not ((u = a && v = b) || (u = b && v = a)) then
              flag
                (Disconnected_path
                   {
                     vlink;
                     reason =
                       Printf.sprintf
                         "edge %d joins %d-%d, not the consecutive nodes %d-%d"
                         eid u v a b;
                   })
          end)
      edges;
  match !defect with Some v -> Error v | None -> Ok ()

let check_view view =
  let problem = view.problem in
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let g = Cluster.graph cluster in
  let n_nodes = Cluster.n_nodes cluster in
  let n_guests = Virtual_env.n_guests venv in
  let n_vlinks = Virtual_env.n_vlinks venv in
  let n_edges = Graph.n_edges g in
  let violations = ref [] in
  let report v = violations := v :: !violations in
  (* Guests: assignment, host-ness, per-host memory/storage (Eqs. 1-3). *)
  let mem_used = Array.make n_nodes 0. and stor_used = Array.make n_nodes 0. in
  for guest = 0 to n_guests - 1 do
    match view.host_of guest with
    | None -> report (Unassigned_guest guest)
    | Some node ->
      if node < 0 || node >= n_nodes || not (Cluster.is_host cluster node) then
        report (Guest_on_non_host { guest; node })
      else begin
        let d = Virtual_env.demand venv guest in
        mem_used.(node) <- mem_used.(node) +. d.Resources.mem_mb;
        stor_used.(node) <- stor_used.(node) +. d.Resources.stor_gb
      end
  done;
  Array.iter
    (fun host ->
      let cap = Cluster.capacity cluster host in
      if mem_used.(host) > cap.Resources.mem_mb +. capacity_eps then
        report
          (Memory_exceeded
             { host; used = mem_used.(host); capacity = cap.Resources.mem_mb });
      if stor_used.(host) > cap.Resources.stor_gb +. capacity_eps then
        report
          (Storage_exceeded
             { host; used = stor_used.(host); capacity = cap.Resources.stor_gb }))
    (Cluster.host_ids cluster);
  (* Virtual links: structural path checks (Eqs. 4-7), latency (Eq. 8),
     and per-edge bandwidth accumulation for Eq. 9. *)
  let bw_used = Array.make n_edges 0. in
  for vlink = 0 to n_vlinks - 1 do
    let vs, vd = Virtual_env.endpoints venv vlink in
    match (view.host_of vs, view.host_of vd) with
    | None, _ | _, None -> ()  (* already reported as Unassigned_guest *)
    | Some hs, Some hd -> (
      match view.path_of vlink with
      | None -> if hs <> hd then report (Unmapped_vlink vlink)
      | Some p -> (
        match check_path_structure cluster ~vlink p with
        | Error v -> report v
        | Ok () ->
          let nodes = p.Path.nodes in
          let first = nodes.(0) and last = nodes.(Array.length nodes - 1) in
          (* The demand is undirected: either orientation serves it. *)
          if not ((first = hs && last = hd) || (first = hd && last = hs)) then
            report
              (Endpoint_mismatch
                 {
                   vlink;
                   reason =
                     Printf.sprintf
                       "path runs %d..%d but the guests are placed on %d and %d"
                       first last hs hd;
                 })
          else begin
            let spec = Virtual_env.vlink venv vlink in
            let latency = ref 0. in
            Path.iter_edges p (fun eid ->
                latency :=
                  !latency +. (Cluster.link cluster eid).Hmn_testbed.Link.latency_ms);
            if !latency > spec.Hmn_vnet.Vlink.latency_ms +. capacity_eps then
              report
                (Latency_exceeded
                   {
                     vlink;
                     actual = !latency;
                     bound = spec.Hmn_vnet.Vlink.latency_ms;
                   });
            Path.iter_edges p (fun eid ->
                bw_used.(eid) <- bw_used.(eid) +. spec.Hmn_vnet.Vlink.bandwidth_mbps)
          end))
  done;
  (* Eq. 9 against raw capacities, then the reconstruction against the
     stated residual state. *)
  let bw_eps = residual_tolerance problem in
  Array.iteri
    (fun eid used ->
      let cap = (Cluster.link cluster eid).Hmn_testbed.Link.bandwidth_mbps in
      if used > cap +. bw_eps then
        report (Bandwidth_exceeded { edge = eid; used; capacity = cap }))
    bw_used;
  (match view.residual_available with
  | None -> ()
  | Some stated_avail ->
    Array.iteri
      (fun eid used ->
        let cap = (Cluster.link cluster eid).Hmn_testbed.Link.bandwidth_mbps in
        (* [Residual]'s exact ledger may sit up to its tolerance below
           zero after absorbed churn; the reconstruction clamps at zero,
           and the aggregate [bw_eps] covers the difference. *)
        let derived = Float.max 0. (cap -. used) in
        let stated = stated_avail eid in
        if Float.abs (stated -. derived) > bw_eps then
          report (Residual_mismatch { edge = eid; stated; derived }))
      bw_used);
  (* Eq. 10, recomputed without [Objective]. *)
  let derived_lbf = derive_lbf problem view.host_of in
  (match (view.stated_lbf, derived_lbf) with
  | Some stated, Some derived
    when not (Hmn_prelude.Float_ext.approx ~eps:1e-6 stated derived) ->
    report (Objective_mismatch { stated; derived })
  | _ -> ());
  {
    violations = List.rev !violations;
    guests_checked = n_guests;
    vlinks_checked = n_vlinks;
    edges_checked = n_edges;
    derived_lbf;
  }

let check m = check_view (view_of_mapping m)

let is_valid m = (check m).violations = []

(* ---- Multi-tenant validation (the online service's oracle) ---- *)

type tenant_view = {
  venv : Virtual_env.t;
  t_host_of : int -> int option;
  t_path_of : int -> Hmn_routing.Path.t option;
}

type multi_report = {
  per_tenant : (int * violation list) list;
  shared : violation list;
  tenants_checked : int;
  m_guests_checked : int;
  m_vlinks_checked : int;
}

let multi_ok r = r.per_tenant = [] && r.shared = []

let check_tenants ?stated_bw_available ?stated_residual_cpu ~cluster ~tenants () =
  let g = Cluster.graph cluster in
  let n_nodes = Cluster.n_nodes cluster in
  let n_edges = Graph.n_edges g in
  (* Shared accumulation: demands of every tenant summed against the
     raw capacities — nothing is read from the service's own residual
     bookkeeping, which is exactly what makes this an oracle for it. *)
  let mem_used = Array.make n_nodes 0. in
  let stor_used = Array.make n_nodes 0. in
  let mips_used = Array.make n_nodes 0. in
  let bw_used = Array.make n_edges 0. in
  let total_guests = ref 0 and total_vlinks = ref 0 in
  let per_tenant =
    List.filter_map
      (fun (tenant_id, tv) ->
        let venv = tv.venv in
        let n_guests = Virtual_env.n_guests venv in
        let n_vlinks = Virtual_env.n_vlinks venv in
        total_guests := !total_guests + n_guests;
        total_vlinks := !total_vlinks + n_vlinks;
        let violations = ref [] in
        let report v = violations := v :: !violations in
        for guest = 0 to n_guests - 1 do
          match tv.t_host_of guest with
          | None -> report (Unassigned_guest guest)
          | Some node ->
            if node < 0 || node >= n_nodes || not (Cluster.is_host cluster node)
            then report (Guest_on_non_host { guest; node })
            else begin
              let d = Virtual_env.demand venv guest in
              mem_used.(node) <- mem_used.(node) +. d.Resources.mem_mb;
              stor_used.(node) <- stor_used.(node) +. d.Resources.stor_gb;
              mips_used.(node) <- mips_used.(node) +. d.Resources.mips
            end
        done;
        for vlink = 0 to n_vlinks - 1 do
          let vs, vd = Virtual_env.endpoints venv vlink in
          match (tv.t_host_of vs, tv.t_host_of vd) with
          | None, _ | _, None -> ()  (* already reported as Unassigned_guest *)
          | Some hs, Some hd -> (
            match tv.t_path_of vlink with
            | None -> if hs <> hd then report (Unmapped_vlink vlink)
            | Some p -> (
              match check_path_structure cluster ~vlink p with
              | Error v -> report v
              | Ok () ->
                let nodes = p.Path.nodes in
                let first = nodes.(0) and last = nodes.(Array.length nodes - 1) in
                if not ((first = hs && last = hd) || (first = hd && last = hs))
                then
                  report
                    (Endpoint_mismatch
                       {
                         vlink;
                         reason =
                           Printf.sprintf
                             "path runs %d..%d but the guests are placed on %d \
                              and %d"
                             first last hs hd;
                       })
                else begin
                  let spec = Virtual_env.vlink venv vlink in
                  let latency = ref 0. in
                  Path.iter_edges p (fun eid ->
                      latency :=
                        !latency
                        +. (Cluster.link cluster eid).Hmn_testbed.Link.latency_ms);
                  if !latency > spec.Hmn_vnet.Vlink.latency_ms +. capacity_eps then
                    report
                      (Latency_exceeded
                         {
                           vlink;
                           actual = !latency;
                           bound = spec.Hmn_vnet.Vlink.latency_ms;
                         });
                  Path.iter_edges p (fun eid ->
                      bw_used.(eid) <-
                        bw_used.(eid) +. spec.Hmn_vnet.Vlink.bandwidth_mbps)
                end))
        done;
        match List.rev !violations with
        | [] -> None
        | vs -> Some (tenant_id, vs))
      tenants
  in
  let shared = ref [] in
  let report v = shared := v :: !shared in
  Array.iter
    (fun host ->
      let cap = Cluster.capacity cluster host in
      if mem_used.(host) > cap.Resources.mem_mb +. capacity_eps then
        report
          (Memory_exceeded
             { host; used = mem_used.(host); capacity = cap.Resources.mem_mb });
      if stor_used.(host) > cap.Resources.stor_gb +. capacity_eps then
        report
          (Storage_exceeded
             { host; used = stor_used.(host); capacity = cap.Resources.stor_gb });
      match stated_residual_cpu with
      | None -> ()
      | Some stated_cpu ->
        let derived = (Cluster.capacity cluster host).Resources.mips -. mips_used.(host) in
        let stated = stated_cpu host in
        if not (Hmn_prelude.Float_ext.approx ~eps:1e-6 stated derived) then
          report (Cpu_accounting_mismatch { host; stated; derived }))
    (Cluster.host_ids cluster);
  let bw_eps = Residual.tolerance *. float_of_int (!total_vlinks + 1) in
  Array.iteri
    (fun eid used ->
      let cap = (Cluster.link cluster eid).Hmn_testbed.Link.bandwidth_mbps in
      if used > cap +. bw_eps then
        report (Bandwidth_exceeded { edge = eid; used; capacity = cap }))
    bw_used;
  (match stated_bw_available with
  | None -> ()
  | Some stated_avail ->
    Array.iteri
      (fun eid used ->
        let cap = (Cluster.link cluster eid).Hmn_testbed.Link.bandwidth_mbps in
        let derived = Float.max 0. (cap -. used) in
        let stated = stated_avail eid in
        if Float.abs (stated -. derived) > bw_eps then
          report (Residual_mismatch { edge = eid; stated; derived }))
      bw_used);
  {
    per_tenant;
    shared = List.rev !shared;
    tenants_checked = List.length tenants;
    m_guests_checked = !total_guests;
    m_vlinks_checked = !total_vlinks;
  }

let violation_label = function
  | Unassigned_guest _ -> "unassigned-guest"
  | Guest_on_non_host _ -> "guest-on-non-host"
  | Memory_exceeded _ -> "memory-exceeded"
  | Storage_exceeded _ -> "storage-exceeded"
  | Unmapped_vlink _ -> "unmapped-vlink"
  | Endpoint_mismatch _ -> "endpoint-mismatch"
  | Disconnected_path _ -> "disconnected-path"
  | Path_not_simple _ -> "path-not-simple"
  | Latency_exceeded _ -> "latency-exceeded"
  | Bandwidth_exceeded _ -> "bandwidth-exceeded"
  | Residual_mismatch _ -> "residual-mismatch"
  | Objective_mismatch _ -> "objective-mismatch"
  | Cpu_accounting_mismatch _ -> "cpu-accounting-mismatch"

let pp_violation ppf = function
  | Unassigned_guest g -> Format.fprintf ppf "guest %d is unassigned" g
  | Guest_on_non_host { guest; node } ->
    Format.fprintf ppf "guest %d placed on non-host node %d" guest node
  | Memory_exceeded { host; used; capacity } ->
    Format.fprintf ppf "host %d memory exceeded: %.1f/%.1f MB" host used capacity
  | Storage_exceeded { host; used; capacity } ->
    Format.fprintf ppf "host %d storage exceeded: %.1f/%.1f GB" host used capacity
  | Unmapped_vlink v -> Format.fprintf ppf "virtual link %d has no path" v
  | Endpoint_mismatch { vlink; reason } ->
    Format.fprintf ppf "virtual link %d endpoint mismatch: %s" vlink reason
  | Disconnected_path { vlink; reason } ->
    Format.fprintf ppf "virtual link %d path disconnected: %s" vlink reason
  | Path_not_simple { vlink; node } ->
    Format.fprintf ppf "virtual link %d path visits node %d twice" vlink node
  | Latency_exceeded { vlink; actual; bound } ->
    Format.fprintf ppf "virtual link %d latency %.2f ms exceeds bound %.2f ms"
      vlink actual bound
  | Bandwidth_exceeded { edge; used; capacity } ->
    Format.fprintf ppf "physical link %d bandwidth exceeded: %.3f/%.3f Mbps" edge
      used capacity
  | Residual_mismatch { edge; stated; derived } ->
    Format.fprintf ppf
      "physical link %d residual drift: state says %.6f Mbps free, links sum to \
       %.6f"
      edge stated derived
  | Objective_mismatch { stated; derived } ->
    Format.fprintf ppf "load-balance factor mismatch: reported %.6f, Eq. 10 gives %.6f"
      stated derived
  | Cpu_accounting_mismatch { host; stated; derived } ->
    Format.fprintf ppf
      "host %d residual-CPU drift: state says %.6f MIPS free, demands sum to %.6f"
      host stated derived

let pp_report ppf r =
  match r.violations with
  | [] ->
    Format.fprintf ppf
      "valid: %d guests, %d virtual links, %d physical links re-checked"
      r.guests_checked r.vlinks_checked r.edges_checked
  | vs ->
    Format.fprintf ppf "%d violation(s):" (List.length vs);
    List.iter (fun v -> Format.fprintf ppf "@\n  %a" pp_violation v) vs

let pp_multi_report ppf r =
  if multi_ok r then
    Format.fprintf ppf
      "valid: %d tenants (%d guests, %d virtual links) re-checked against the \
       shared cluster"
      r.tenants_checked r.m_guests_checked r.m_vlinks_checked
  else begin
    Format.fprintf ppf "%d tenant-local and %d shared violation(s):"
      (List.fold_left (fun acc (_, vs) -> acc + List.length vs) 0 r.per_tenant)
      (List.length r.shared);
    List.iter
      (fun (tenant, vs) ->
        List.iter
          (fun v -> Format.fprintf ppf "@\n  tenant %d: %a" tenant pp_violation v)
          vs)
      r.per_tenant;
    List.iter (fun v -> Format.fprintf ppf "@\n  shared: %a" pp_violation v) r.shared
  end
