module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Metrics = Hmn_obs.Metrics

type t = {
  cluster : Cluster.t;
  avail : float array;
}

let capacity t eid = (Cluster.link t.cluster eid).Hmn_testbed.Link.bandwidth_mbps

(* One tolerance, used symmetrically by reserve and release. Reserve and
   release must accept the same accumulation drift or an
   exactly-saturating reservation that survived many reserve/release
   cycles (incremental remapping, live operations) spuriously fails. *)
let tolerance = 1e-6

let create cluster =
  let n = Graph.n_edges (Cluster.graph cluster) in
  let t = { cluster; avail = Array.make n 0. } in
  for eid = 0 to n - 1 do
    t.avail.(eid) <- capacity t eid
  done;
  t

let copy t = { t with avail = Array.copy t.avail }

let cluster t = t.cluster

let available t eid = t.avail.(eid)
let availabilities t = t.avail

let reserve_path t path bw =
  if bw < 0. then invalid_arg "Residual.reserve_path: negative bandwidth";
  (* Check everything before touching anything, so failure is atomic.
     A path never repeats an edge (loop-free), so per-edge single
     deduction is correct. *)
  let shortage = ref None in
  Path.iter_edges path (fun eid ->
      if !shortage = None && t.avail.(eid) +. tolerance < bw then
        shortage := Some eid);
  match !shortage with
  | Some eid ->
    if Metrics.enabled () then
      Metrics.Counter.incr (Metrics.counter "residual.reserve_failures");
    Error
      (Printf.sprintf "edge %d: needs %.3f Mbps, only %.3f available" eid bw
         t.avail.(eid))
  | None ->
    (* Clamp at zero: a within-tolerance over-reservation must not leave
       a negative residual for later feasibility checks to trip over. *)
    Path.iter_edges path (fun eid ->
        t.avail.(eid) <- Float.max 0. (t.avail.(eid) -. bw));
    if Metrics.enabled () then
      Metrics.Counter.incr (Metrics.counter "residual.reserves");
    Ok ()

let release_path t path bw =
  if bw < 0. then invalid_arg "Residual.release_path: negative bandwidth";
  Path.iter_edges path (fun eid ->
      let cap = capacity t eid in
      let next = t.avail.(eid) +. bw in
      if next > cap +. tolerance then
        invalid_arg "Residual.release_path: release exceeds capacity";
      (* Clamp back to capacity so drift cannot accumulate upward. *)
      t.avail.(eid) <- Float.min next cap);
  if Metrics.enabled () then
    Metrics.Counter.incr (Metrics.counter "residual.releases")

let used t eid = capacity t eid -. t.avail.(eid)

let utilization t =
  (* A zero-capacity link (e.g. an administratively disabled cable)
     carries nothing: skipping it keeps the mean NaN-free. *)
  let acc = ref 0. and counted = ref 0 in
  for eid = 0 to Array.length t.avail - 1 do
    let cap = capacity t eid in
    if cap > 0. then begin
      acc := !acc +. (used t eid /. cap);
      incr counted
    end
  done;
  if !counted = 0 then 0. else !acc /. float_of_int !counted
