module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Metrics = Hmn_obs.Metrics

type t = {
  cluster : Cluster.t;
  avail : float array;
}

let capacity t eid = (Cluster.link t.cluster eid).Hmn_testbed.Link.bandwidth_mbps

(* One tolerance, used symmetrically by reserve and release. Reserve and
   release must accept the same accumulation drift or an
   exactly-saturating reservation that survived many reserve/release
   cycles (incremental remapping, live operations) spuriously fails.

   The ledger itself is exact: reserve stores [avail - bw], release
   stores [avail + bw], with no directional clamping. Only the
   feasibility checks grant the tolerance, so the stored value is
   confined to [-tolerance, capacity + tolerance] and the lifetime
   overcommit of an edge can never exceed one [tolerance]. The previous
   clamps broke exactly that: reserve's clamp-at-zero reset the deficit
   ledger on every operation, so a stream of sub-tolerance reservations
   against a saturated edge was admitted without bound (each one saw
   [avail = 0], paid at most [tolerance], and was clamped back to 0),
   and release's clamp-at-capacity likewise erased the surplus a
   subsequent over-release should have been charged against. *)
let tolerance = 1e-6

let create cluster =
  let n = Graph.n_edges (Cluster.graph cluster) in
  let t = { cluster; avail = Array.make n 0. } in
  for eid = 0 to n - 1 do
    t.avail.(eid) <- capacity t eid
  done;
  t

let copy t = { t with avail = Array.copy t.avail }

let cluster t = t.cluster

let available t eid = t.avail.(eid)
let availabilities t = t.avail

let reserve_path t path bw =
  if bw < 0. then invalid_arg "Residual.reserve_path: negative bandwidth";
  (* Check everything before touching anything, so failure is atomic.
     A path never repeats an edge (loop-free), so per-edge single
     deduction is correct. *)
  let shortage = ref None in
  Path.iter_edges path (fun eid ->
      if !shortage = None && t.avail.(eid) +. tolerance < bw then
        shortage := Some eid);
  match !shortage with
  | Some eid ->
    if Metrics.enabled () then
      Metrics.Counter.incr (Metrics.counter "residual.reserve_failures");
    Error
      (Printf.sprintf "edge %d: needs %.3f Mbps, only %.3f available" eid bw
         t.avail.(eid))
  | None ->
    (* Exact deduction; a within-tolerance over-reservation leaves a
       small negative residual that the next check is charged for. *)
    Path.iter_edges path (fun eid -> t.avail.(eid) <- t.avail.(eid) -. bw);
    if Metrics.enabled () then
      Metrics.Counter.incr (Metrics.counter "residual.reserves");
    Ok ()

let release_path t path bw =
  if bw < 0. then invalid_arg "Residual.release_path: negative bandwidth";
  Path.iter_edges path (fun eid ->
      let cap = capacity t eid in
      let next = t.avail.(eid) +. bw in
      if next > cap +. tolerance then
        invalid_arg "Residual.release_path: release exceeds capacity";
      (* Exact restitution; a within-tolerance surplus stays on the
         ledger and counts against the next release's check. *)
      t.avail.(eid) <- next);
  if Metrics.enabled () then
    Metrics.Counter.incr (Metrics.counter "residual.releases")

let used t eid = capacity t eid -. t.avail.(eid)

let utilization t =
  (* A zero-capacity link (e.g. an administratively disabled cable)
     carries nothing: skipping it keeps the mean NaN-free. *)
  let acc = ref 0. and counted = ref 0 in
  for eid = 0 to Array.length t.avail - 1 do
    let cap = capacity t eid in
    if cap > 0. then begin
      acc := !acc +. (used t eid /. cap);
      incr counted
    end
  done;
  if !counted = 0 then 0. else !acc /. float_of_int !counted
