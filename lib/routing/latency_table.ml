module Cluster = Hmn_testbed.Cluster

type t = {
  cluster : Cluster.t;
  tables : (int, float array) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
}

let create cluster = { cluster; tables = Hashtbl.create 64; hits = 0; misses = 0 }

let to_destination t ~dst =
  match Hashtbl.find_opt t.tables dst with
  | Some table ->
    t.hits <- t.hits + 1;
    table
  | None ->
    t.misses <- t.misses + 1;
    let weight eid = (Cluster.link t.cluster eid).Hmn_testbed.Link.latency_ms in
    let table = Hmn_graph.Dijkstra.distances_to (Cluster.graph t.cluster) ~weight ~dst in
    Hashtbl.add t.tables dst table;
    table

let precompute t =
  Array.iter
    (fun dst ->
      if not (Hashtbl.mem t.tables dst) then ignore (to_destination t ~dst))
    (Cluster.host_ids t.cluster)

let hits t = t.hits
let misses t = t.misses
