module Cluster = Hmn_testbed.Cluster
module Csr = Hmn_graph.Csr
module Metrics = Hmn_obs.Metrics

type table = {
  base : float array;
  offset : float;
  dst : int;
}

type t = {
  cluster : Cluster.t;
  tables : (int, table) Hashtbl.t;  (* per requested destination *)
  landmarks : (int, float array) Hashtbl.t;  (* per attachment switch *)
  mutable hits : int;
  mutable misses : int;
  mutable dijkstras : int;
  mutable derived : int;
  mutable precompute_s : float;
}

let create cluster =
  {
    cluster;
    tables = Hashtbl.create 64;
    landmarks = Hashtbl.create 16;
    hits = 0;
    misses = 0;
    dijkstras = 0;
    derived = 0;
    precompute_s = 0.;
  }

let get tab x = if x = tab.dst then 0. else tab.base.(x) +. tab.offset

let to_array tab =
  Array.init (Array.length tab.base) (fun x -> get tab x)

let fill tab out =
  if Array.length out <> Array.length tab.base then
    invalid_arg "Latency_table.fill: buffer length mismatch";
  for x = 0 to Array.length out - 1 do
    out.(x) <- get tab x
  done

let dijkstra_base t src =
  t.dijkstras <- t.dijkstras + 1;
  Csr.dijkstra_from (Cluster.csr t.cluster)
    ~weight:(Cluster.link_latencies t.cluster)
    ~src

(* Landmark base table for a node shared by every leaf hanging off it,
   computed once. *)
let landmark_base t node =
  match Hashtbl.find_opt t.landmarks node with
  | Some base -> base
  | None ->
    let base = dijkstra_base t node in
    Hashtbl.add t.landmarks node base;
    base

let to_destination t ~dst =
  match Hashtbl.find_opt t.tables dst with
  | Some tab ->
    t.hits <- t.hits + 1;
    if Metrics.enabled () then
      Metrics.Counter.incr (Metrics.counter "latency_table.hits");
    tab
  | None ->
    t.misses <- t.misses + 1;
    let tab =
      match Csr.sole_neighbor (Cluster.csr t.cluster) dst with
      | Some (switch, eid) ->
        (* Leaf landmark: [dst]'s only cable goes to [switch], so every
           path to [dst] from elsewhere ends with that cable and
           d(x, dst) = d(x, switch) + w exactly. One Dijkstra per
           attachment switch covers all its leaves — on a fat-tree or
           Clos that is hosts-per-rack fewer Dijkstras and tables. *)
        t.derived <- t.derived + 1;
        if Metrics.enabled () then
          Metrics.Counter.incr (Metrics.counter "latency_table.derived");
        {
          base = landmark_base t switch;
          offset = (Cluster.link_latencies t.cluster).(eid);
          dst;
        }
      | None ->
        (* Interior destination (torus host, switch): plain per-
           destination Dijkstra on the CSR view. *)
        { base = dijkstra_base t dst; offset = 0.; dst }
    in
    if Metrics.enabled () then
      Metrics.Counter.incr (Metrics.counter "latency_table.misses");
    Hashtbl.add t.tables dst tab;
    tab

let precompute t =
  let t0 = Hmn_prelude.Clock.now_s () in
  let dijkstras_before = t.dijkstras in
  Array.iter
    (fun dst ->
      if not (Hashtbl.mem t.tables dst) then ignore (to_destination t ~dst))
    (Cluster.host_ids t.cluster);
  (* Wall time stays out of the metrics registry — the registry's
     contract is byte-identical aggregates for any jobs count, so
     timings travel the stage_seconds path instead. *)
  t.precompute_s <- t.precompute_s +. Hmn_prelude.Clock.elapsed_s t0;
  if Metrics.enabled () then
    Metrics.Counter.add
      (Metrics.counter "latency_table.dijkstras")
      (t.dijkstras - dijkstras_before)

let hits t = t.hits
let misses t = t.misses
let dijkstras t = t.dijkstras
let derived t = t.derived
let precompute_seconds t = t.precompute_s
