(** Cached latency-to-destination tables with leaf landmarks.

    The paper's modified A\*Prune precomputes, for every node [c_i], the
    latency of the Dijkstra path from [c_i] to the link destination
    ([ar] in Algorithm 1). The Networking stage routes many virtual
    links toward a small set of hosts, so tables are cached per
    destination.

    {b Landmark scheme.} On hierarchical clusters (switched chain,
    fat-tree, Clos) every host is a {e leaf}: its only cable goes to an
    access switch [s] with latency [w], so [d(x, dst) = d(x, s) + w]
    for every [x <> dst] — exactly, not approximately. The cache
    therefore runs one Dijkstra per {e attachment switch} (the
    landmark) and represents each leaf's table as a shared base array
    plus a scalar offset: precompute drops from one Dijkstra (and one
    O(nodes) table) per host to one per rack, which is what makes
    4000-host precompute near-linear. Non-leaf destinations (torus
    hosts, switches) fall back to a plain per-destination Dijkstra on
    the cluster's CSR view. All the repo's cluster builders use one
    uniform per-tier latency, so the derived sums are exact dyadic
    floats and the tables are byte-identical to the direct Dijkstra
    answer; with arbitrary latencies they are still exact shortest
    distances up to one floating-point re-association. *)

type t

(** A destination's table: [base] is shared with every destination on
    the same landmark, so consult it only through {!get} (or the
    [offset]/[dst] fields, as the A\*Prune hot loop does). *)
type table = private {
  base : float array;  (** latency to the landmark (or to [dst] itself) *)
  offset : float;  (** leaf cable latency; [0.] for interior nodes *)
  dst : int;
}

val create : Hmn_testbed.Cluster.t -> t

val get : table -> int -> float
(** [get tab x] is the minimum accumulated physical latency from [x] to
    [tab.dst] ([infinity] when disconnected; [0.] at the destination). *)

val to_destination : t -> dst:int -> table
(** Cached per destination; counts one miss (and at most one Dijkstra)
    on first request. *)

val to_array : table -> float array
(** Debug accessor: a freshly allocated materialised copy of the whole
    table. For interactive inspection and one-off assertions only —
    never the hot path, and oracles iterating destinations should
    {!fill} one reused buffer instead. *)

val fill : table -> float array -> unit
(** [fill tab out] writes [get tab x] into [out.(x)] for every node —
    {!to_array} without the allocation, for oracles that sweep many
    destinations against one scratch buffer. Raises [Invalid_argument]
    when [out]'s length differs from the node count. *)

val precompute : t -> unit
(** Eagerly fill the table for every host destination (each counted as
    one miss). Routing only ever targets hosts, so after [precompute]
    the cache is read-only during routing — lookups allocate nothing
    and the table may be consulted from several domains at once without
    synchronisation. When metrics are enabled, records the Dijkstra
    count under [latency_table.dijkstras]; build wall time is kept out
    of the (deterministic) registry — read {!precompute_seconds}. *)

val hits : t -> int
val misses : t -> int

val dijkstras : t -> int
(** Dijkstra runs actually performed — [misses] minus the tables served
    by a landmark already computed. *)

val derived : t -> int
(** Tables answered via the leaf-landmark scheme (shared base +
    offset). *)

val precompute_seconds : t -> float
(** Cumulative wall time spent inside {!precompute} — reported by the
    CLI's profile output rather than the metrics registry, whose
    aggregates must stay deterministic across job counts. *)
