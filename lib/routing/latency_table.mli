(** Cached Dijkstra latency-to-destination tables.

    The paper's modified A\*Prune precomputes, for every node [c_i], the
    latency of the Dijkstra path from [c_i] to the link destination
    ([ar] in Algorithm 1). The Networking stage routes many virtual
    links toward a small set of hosts, so tables are cached per
    destination. *)

type t

val create : Hmn_testbed.Cluster.t -> t

val to_destination : t -> dst:int -> float array
(** [to_destination t ~dst] maps every node to the minimum accumulated
    physical latency of reaching [dst] ([infinity] when disconnected;
    [0.] at [dst]). The returned array is owned by the cache: do not
    mutate. *)

val precompute : t -> unit
(** Eagerly fill the table for every host destination (each counted as
    one miss). Routing only ever targets hosts, so after [precompute]
    the cache is read-only during routing — lookups allocate nothing
    and the table may be consulted from several domains at once without
    synchronisation. *)

val hits : t -> int
val misses : t -> int
(** Cache statistics, for the benchmarks. *)
