module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Bitset = Hmn_dstruct.Bitset
module Metrics = Hmn_obs.Metrics

let route ?rng ?(max_steps = max_int) ~residual ~src ~dst ~bandwidth_mbps
    ~latency_ms () =
  let cluster = Residual.cluster residual in
  let g = Cluster.graph cluster in
  let n = Graph.n_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Dfs_route.route: endpoint out of range";
  if not (bandwidth_mbps > 0.) then
    invalid_arg "Dfs_route.route: bandwidth must be positive";
  if latency_ms < 0. then invalid_arg "Dfs_route.route: negative latency bound";
  if src = dst then Some (Path.trivial src)
  else begin
    let visited = Bitset.create n in
    let steps = ref 0 and backtracks = ref 0 in
    let exception Budget_exhausted in
    let neighbors u =
      let adj = Array.of_list (Graph.adj_list g u) in
      (match rng with Some rng -> Hmn_rng.Sample.shuffle rng adj | None -> ());
      adj
    in
    (* DFS over loop-free prefixes; latency accumulates down the
       recursion and edges must carry the required bandwidth. *)
    let rec go u acc_latency rev_nodes rev_edges =
      incr steps;
      if !steps > max_steps then raise Budget_exhausted;
      if u = dst then
        Some (Path.make ~nodes:(List.rev rev_nodes) ~edges:(List.rev rev_edges))
      else begin
        let adj = neighbors u in
        let found = ref None and i = ref 0 in
        while !found = None && !i < Array.length adj do
          let v, eid = adj.(!i) in
          incr i;
          if not (Bitset.mem visited v) then begin
            let link = Cluster.link cluster eid in
            let lat = acc_latency +. link.Hmn_testbed.Link.latency_ms in
            if Residual.available residual eid >= bandwidth_mbps && lat <= latency_ms
            then begin
              Bitset.add visited v;
              (match go v lat (v :: rev_nodes) (eid :: rev_edges) with
              | Some _ as r -> found := r
              | None ->
                incr backtracks;
                Bitset.remove visited v)
            end
          end
        done;
        !found
      end
    in
    Bitset.add visited src;
    let result =
      try go src 0. [ src ] [] with
      | Budget_exhausted ->
        if Metrics.enabled () then
          Metrics.Counter.incr (Metrics.counter "dfs.budget_exhausted");
        None
    in
    if Metrics.enabled () then begin
      Metrics.Counter.add (Metrics.counter "dfs.steps") !steps;
      Metrics.Counter.add (Metrics.counter "dfs.backtracks") !backtracks;
      Metrics.Counter.incr
        (Metrics.counter
           (if Option.is_none result then "dfs.routes_failed"
            else "dfs.routes_found"))
    end;
    result
  end
