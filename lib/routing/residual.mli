(** Residual bandwidth bookkeeping over a cluster's physical links.

    Enforces Eq. (9): the bandwidths of the virtual links routed over a
    physical link may never exceed its capacity. Links are undirected
    shared capacity, matching the paper's model. *)

type t

val create : Hmn_testbed.Cluster.t -> t
(** All links at full capacity. *)

val copy : t -> t

val cluster : t -> Hmn_testbed.Cluster.t

val available : t -> int -> float
(** Remaining bandwidth (Mbps) of a physical edge id. The ledger is
    exact, so the value may sit up to {!tolerance} outside
    [[0, capacity]] after tolerance-absorbed churn — never further. *)

val availabilities : t -> float array
(** The live per-edge-id residual array itself — a read-only view for
    the routing hot loop (A\*Prune indexes it next to the cluster's
    CSR arrays). Owned by [t]: do not mutate; reserve/release on [t]
    are visible through it. *)

val tolerance : float
(** Floating-point slack ([1e-6] Mbps) applied symmetrically by the
    {!reserve_path} and {!release_path} feasibility checks, so that
    after arbitrarily many reserve/release cycles an exactly-saturating
    reservation still succeeds.

    Only the checks are tolerant; the stored residual is the exact
    running sum of the granted operations. The invariant this buys:
    every edge's residual stays within [[-tolerance,
    capacity + tolerance]], so the lifetime overcommit (or phantom
    surplus) of an edge is bounded by a single [tolerance] no matter
    how many operations it sees. Clamping the ledger instead — as this
    module once did — silently forgives the overshoot each time, which
    lets repeated sub-tolerance reservations overcommit a saturated
    edge without bound. *)

val reserve_path : t -> Path.t -> float -> (unit, string) result
(** Atomically reserves [bw] on every edge of the path; fails (leaving
    the state untouched) when any edge lacks capacity by more than
    {!tolerance}. On success each edge's residual is debited exactly
    [bw]. Reserving on the intra-host path is a no-op. *)

val release_path : t -> Path.t -> float -> unit
(** Returns previously reserved bandwidth, crediting each edge exactly
    [bw]. Raises [Invalid_argument] if a release would exceed an edge's
    full capacity by more than {!tolerance}. *)

val used : t -> int -> float
(** Capacity minus availability. *)

val utilization : t -> float
(** Mean used/capacity over the physical links with positive capacity
    (0 when there are none); zero-capacity links are skipped rather
    than poisoning the mean with NaN. *)
