(** The paper's modified 1-constrained A\*Prune (Algorithm 1).

    Finds, among the loop-free physical paths from [src] to [dst] that
    (a) keep accumulated latency within the virtual link's bound and
    (b) have at least the required residual bandwidth on every hop, a
    path with the {e greatest bottleneck bandwidth}. Inadmissible
    partial paths are pruned with the Dijkstra latency-to-go table
    [ar] (see {!Latency_table}).

    Note on fidelity: the paper's pseudocode prunes with
    [lat(d, h) + ar(h) <= latency], omitting the latency already
    accumulated along the partial path; taken literally that can emit
    paths violating Eq. (8). We include the accumulated term, so every
    returned path is feasible by construction (the stricter test also
    prunes earlier, never later).

    A Pareto-dominance cut is applied by default: a partial path
    reaching node [v] is dropped when another partial path already
    reached [v] with bottleneck at least as wide {e and} accumulated
    latency no larger. This preserves optimality of the returned
    bottleneck width and keeps the search polynomial in practice; it
    can be disabled for cross-checking. *)

type stats = {
  expanded : int;  (** paths popped from the open set *)
  generated : int;  (** paths pushed to the open set *)
}

val route :
  ?prune_dominated:bool ->
  ?ctx:Route_ctx.t ->
  residual:Residual.t ->
  latency_tables:Latency_table.t ->
  src:int ->
  dst:int ->
  bandwidth_mbps:float ->
  latency_ms:float ->
  unit ->
  (Path.t * stats) option
(** [None] when no feasible path exists. [src = dst] returns the
    intra-host trivial path. Raises [Invalid_argument] on out-of-range
    endpoints, non-positive bandwidth, or negative latency bound.

    [ctx] is an optional reusable {!Route_ctx.t}: passing one lets
    consecutive calls share the label arena, heap and Pareto pools
    (and, when enabled on the context, the path cache and tree fast
    path) instead of allocating per call. Omitting it allocates a
    fresh default context — same results, no reuse. With a default
    context ([Route_ctx.create ()] — cache and fast path off) the
    engine is bit-identical to the historical list-based
    implementation: same paths, same [stats], same metrics. Cached
    hits and fast-path hits report [stats] of zero (no search ran). *)

val widest_feasible :
  ?ctx:Route_ctx.t ->
  residual:Residual.t ->
  latency_tables:Latency_table.t ->
  src:int ->
  dst:int ->
  bandwidth_mbps:float ->
  latency_ms:float ->
  unit ->
  Path.t option
(** {!route} without the statistics. *)
