(** Reusable routing context: the allocation-free engine state behind
    {!Astar_prune}.

    One context owns everything a search needs besides the problem
    itself — the label arena (a struct-of-arrays store with
    parent-pointer path reconstruction), the open-set heap of label
    ids, pooled per-node Pareto sets, and the optional path cache — so
    the ~150k [route] calls of one Networking pass share one steady
    allocation instead of rebuilding cons-lists, bitsets and Pareto
    arrays per call.

    {b Determinism.} With both options off (the default), a context
    changes nothing observable: the engine produces bit-identical
    paths and identical expanded/generated statistics to the
    historical list-based implementation. The two opt-ins trade that
    guarantee for speed:

    - [cache]: paths are remembered per (src, dst) pair and reused
      when they revalidate against the {e current} residual state
      (minimum availability along the cached path at least the
      requested bandwidth, recomputed latency within the bound). A
      revalidated hit is feasible but not necessarily the widest
      bottleneck any more, so selection may differ from a fresh
      search.
    - [tree_fast_path]: unique-path segments (sole-neighbor chains —
      leaf hosts, pure trees, same-rack pairs) are collapsed without
      search. The returned path is the one the search would return
      (it is the only simple path), but the expanded/generated
      statistics are 0 for such routes.

    {b Staleness.} The context is (re)bound to a cluster on every
    [route] call; rebinding to a {e different} cluster (pointer
    inequality of the CSR view — defragmentation rebuilds residual
    clusters) flushes the cache and resizes the pools, so a stale
    entry can never be served across an [Occupancy.replace].

    A context must not be shared across domains. Fields are exposed
    for the engine's hot loop; treat everything except {!create} and
    the counter accessors as internal to [Hmn_routing]. *)

type t = {
  use_cache : bool;
  use_tree_fast_path : bool;
  mutable bound : Hmn_graph.Csr.t option;
  mutable n_nodes : int;
  (* label arena (struct of arrays, -1 = none for parent/via) *)
  mutable parent : int array;
  mutable node : int array;
  mutable via : int array;
  mutable hops : int array;
  mutable width : float array;
  mutable lat : float array;
  mutable proj : float array;
  mutable n_labels : int;
  (* open set: binary min-heap of label ids *)
  mutable heap : int array;
  mutable heap_size : int;
  (* pooled per-node Pareto sets, flattened (width, lat) pairs *)
  mutable pareto : float Hmn_dstruct.Dynarray.t option array;
  touched : int Hmn_dstruct.Dynarray.t;
  cache : (int, Path.t) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_revalidate_failed : int;
  mutable fast_path_hits : int;
}

val create : ?cache:bool -> ?tree_fast_path:bool -> unit -> t
(** Both options default to [false] — the byte-identical engine. *)

val use_cache : t -> bool
val use_tree_fast_path : t -> bool

(** {2 Counters}

    Cumulative over the context's lifetime; [bind]-triggered cache
    flushes do not reset them. *)

val cache_hits : t -> int
(** Cached paths served after successful revalidation. *)

val cache_misses : t -> int
(** Cache lookups that found no entry (counted only when the cache is
    enabled). *)

val cache_revalidate_failed : t -> int
(** Cache entries found but rejected by revalidation against the
    current residual state; the search then ran normally. *)

val fast_path_hits : t -> int
(** Routes resolved by the sole-neighbor tree fast path (feasible or
    proven infeasible) without a search. *)

(** {2 Engine internals} *)

val bind : t -> Hmn_testbed.Cluster.t -> unit
(** Size the pools for [cluster]; flush the cache and drop the pools
    when the cluster's CSR view is not physically the one last bound. *)

val reset_search : t -> unit
(** O(touched nodes): empty the arena, the heap and the Pareto sets
    used by the previous search, keeping all storage. *)

val add_label :
  t ->
  parent:int ->
  node:int ->
  via:int ->
  hops:int ->
  width:float ->
  lat:float ->
  proj:float ->
  int
(** Append an arena row, growing the store geometrically; returns the
    new label id. *)

val on_path : t -> int -> int -> bool
(** [on_path t label v]: does [v] occur on the path the label's parent
    chain spells? O(hops) — the replacement for the per-label member
    bitset. *)

val heap_push : t -> int -> unit

val heap_pop : t -> int
(** The open set's minimum label id, or [-1] when empty. Ordering:
    widest bottleneck first, then smallest projected total latency,
    then fewest hops — identical decisions to the historical record
    comparator. *)

val pareto_dominated : t -> int -> width:float -> lat:float -> bool
(** Early-exit scan of node's recorded (width, lat) pairs. *)

val pareto_record : t -> int -> width:float -> lat:float -> unit
(** Drop recorded pairs the new one dominates (in-place compaction),
    then append it. *)

val cache_find : t -> src:int -> dst:int -> Path.t option
(** [None] when caching is off or no entry exists. The caller must
    revalidate before use and count hits/misses itself. *)

val cache_store : t -> src:int -> dst:int -> Path.t -> unit
(** No-op when caching is off. *)
