module Graph = Hmn_graph.Graph
module Csr = Hmn_graph.Csr
module Cluster = Hmn_testbed.Cluster
module Bitset = Hmn_dstruct.Bitset
module Heap = Hmn_dstruct.Binary_heap
module Metrics = Hmn_obs.Metrics

type stats = {
  expanded : int;
  generated : int;
}

type partial = {
  rev_nodes : int list;
  rev_edges : int list;
  last : int;
  hops : int;  (* length of [rev_nodes], precomputed for the comparator *)
  bottleneck : float;  (* min residual bandwidth so far; infinity at origin *)
  acc_latency : float;
  members : Bitset.t;
}

(* Open-set order: widest bottleneck first (the algorithm's selection
   rule), then optimistic total latency, then fewer hops — the
   tie-breakers make the search deterministic. The comparator runs on
   every heap sift, so it must stay O(1): [hops] is carried in the
   label rather than recomputed as [List.length rev_nodes], and the
   latency-to-go heuristic is the landmark table's O(1) read. *)
let compare_partial ar a b =
  let c = Float.compare b.bottleneck a.bottleneck in
  if c <> 0 then c
  else
    let proj p = p.acc_latency +. Latency_table.get ar p.last in
    let c = Float.compare (proj a) (proj b) in
    if c <> 0 then c else Int.compare a.hops b.hops

let route ?(prune_dominated = true) ~residual ~latency_tables ~src ~dst
    ~bandwidth_mbps ~latency_ms () =
  let cluster = Residual.cluster residual in
  let g = Cluster.graph cluster in
  let n = Graph.n_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Astar_prune.route: endpoint out of range";
  if not (bandwidth_mbps > 0.) then
    invalid_arg "Astar_prune.route: bandwidth must be positive";
  if latency_ms < 0. then invalid_arg "Astar_prune.route: negative latency bound";
  if src = dst then Some (Path.trivial src, { expanded = 0; generated = 0 })
  else begin
    let tab = Latency_table.to_destination latency_tables ~dst in
    (* Destructured once: the hot loop reads the shared base array and
       scalar offset directly instead of paying a record access per
       lookup. [ar x] stays the exact [Latency_table.get] semantics —
       the [x = dst] case matters, labels ending at [dst] sit in the
       heap and must project with zero latency-to-go. *)
    let ar_base = tab.Latency_table.base and ar_offset = tab.Latency_table.offset in
    let ar x = if x = dst then 0. else ar_base.(x) +. ar_offset in
    let heap = Heap.create ~cmp:(compare_partial tab) () in
    let csr = Cluster.csr cluster in
    let offsets = Csr.offsets csr
    and neighbors = Csr.neighbors csr
    and edge_ids = Csr.edge_ids csr in
    let latencies = Cluster.link_latencies cluster in
    let avails = Residual.availabilities residual in
    (* Pareto labels per node: (bottleneck, latency) pairs of paths
       already queued there. *)
    let labels = Array.make n [] in
    let dominated v ~bottleneck ~latency =
      List.exists (fun (b, l) -> b >= bottleneck && l <= latency) labels.(v)
    in
    let record v ~bottleneck ~latency =
      (* Drop labels the new one dominates. Most insertions dominate
         nothing, so only rebuild the (pruned-in-place, never copied)
         list when a victim actually exists. *)
      let current = labels.(v) in
      let rest =
        if List.exists (fun (b, l) -> b <= bottleneck && l >= latency) current then
          List.filter (fun (b, l) -> not (b <= bottleneck && l >= latency)) current
        else current
      in
      labels.(v) <- (bottleneck, latency) :: rest
    in
    let generated = ref 0 and expanded = ref 0 in
    (* Search-effort tallies, kept in locals on the hot path and flushed
       to the metrics registry once per call (§5.2: search effort, not
       just wall time, is the result). *)
    let pruned_bandwidth = ref 0
    and pruned_latency = ref 0
    and pruned_dominated = ref 0
    and heap_max = ref 0 in
    let push p =
      incr generated;
      Heap.push heap p;
      let len = Heap.length heap in
      if len > !heap_max then heap_max := len
    in
    let start_members = Bitset.create n in
    Bitset.add start_members src;
    if ar src <= latency_ms then begin
      (* Label recording must track the flag: the unpruned reference
         mode would otherwise start with a seeded Pareto table. *)
      if prune_dominated then record src ~bottleneck:infinity ~latency:0.;
      push
        {
          rev_nodes = [ src ];
          rev_edges = [];
          last = src;
          hops = 1;
          bottleneck = infinity;
          acc_latency = 0.;
          members = start_members;
        }
    end;
    let result = ref None in
    let expand p =
      (* CSR slice walk: same arc order as [Graph.iter_adj] (the view
         preserves adjacency insertion order), but three flat array
         reads per arc instead of a closure call plus a link-record
         fetch — this loop dominates Networking wall time at scale. *)
      let u = p.last in
      for k = offsets.(u) to offsets.(u + 1) - 1 do
        let neighbor = neighbors.(k) in
        if not (Bitset.mem p.members neighbor) then begin
          let eid = edge_ids.(k) in
          let avail = avails.(eid) in
          let acc_latency = p.acc_latency +. latencies.(eid) in
          (* Prune: not enough residual bandwidth on this hop, or the
             latency budget cannot be met even via the cheapest
             completion. *)
          if avail < bandwidth_mbps then incr pruned_bandwidth
          else if acc_latency +. ar neighbor > latency_ms then
            incr pruned_latency
          else begin
            let bottleneck = Float.min p.bottleneck avail in
            if
              prune_dominated
              && dominated neighbor ~bottleneck ~latency:acc_latency
            then incr pruned_dominated
            else begin
              if prune_dominated then record neighbor ~bottleneck ~latency:acc_latency;
              let members = Bitset.copy p.members in
              Bitset.add members neighbor;
              push
                {
                  rev_nodes = neighbor :: p.rev_nodes;
                  rev_edges = eid :: p.rev_edges;
                  last = neighbor;
                  hops = p.hops + 1;
                  bottleneck;
                  acc_latency;
                  members;
                }
            end
          end
        end
      done
    in
    let rec loop () =
      match Heap.pop heap with
      | None -> ()
      | Some p ->
        incr expanded;
        if p.last = dst then
          result :=
            Some
              (Path.make ~nodes:(List.rev p.rev_nodes) ~edges:(List.rev p.rev_edges))
        else begin
          expand p;
          loop ()
        end
    in
    loop ();
    if Metrics.enabled () then begin
      Metrics.Counter.add (Metrics.counter "astar.labels_expanded") !expanded;
      Metrics.Counter.add (Metrics.counter "astar.labels_generated") !generated;
      Metrics.Counter.add (Metrics.counter "astar.pruned_bandwidth") !pruned_bandwidth;
      Metrics.Counter.add (Metrics.counter "astar.pruned_latency") !pruned_latency;
      Metrics.Counter.add (Metrics.counter "astar.pruned_dominated") !pruned_dominated;
      Metrics.Gauge.observe (Metrics.gauge "astar.heap_max") !heap_max;
      Metrics.Counter.incr
        (Metrics.counter
           (if Option.is_none !result then "astar.routes_failed"
            else "astar.routes_found"))
    end;
    match !result with
    | None -> None
    | Some path -> Some (path, { expanded = !expanded; generated = !generated })
  end

let widest_feasible ~residual ~latency_tables ~src ~dst ~bandwidth_mbps ~latency_ms () =
  Option.map fst
    (route ~residual ~latency_tables ~src ~dst ~bandwidth_mbps ~latency_ms ())
