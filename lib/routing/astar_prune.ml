module Graph = Hmn_graph.Graph
module Csr = Hmn_graph.Csr
module Cluster = Hmn_testbed.Cluster
module Metrics = Hmn_obs.Metrics

type stats = {
  expanded : int;
  generated : int;
}

let zero_stats = { expanded = 0; generated = 0 }

(* Cache revalidation and the fast path's feasibility test: every hop
   must offer the bandwidth and the accumulated latency (summed in
   path order, the same left-to-right association the search uses for
   [acc_latency]) must stay within the bound. *)
let feasible ~latencies ~avails ~bandwidth_mbps ~latency_ms (path : Path.t) =
  let edges = path.Path.edges in
  let m = Array.length edges in
  let rec go i acc =
    if i = m then acc <= latency_ms
    else
      let e = edges.(i) in
      avails.(e) >= bandwidth_mbps && go (i + 1) (acc +. latencies.(e))
  in
  m > 0 && go 0 0.

(* ---- tree fast path ---- *)

type forced = No_fast_path | Forced of Path.t option

(* The unique continuation arc of a simple path that entered [cur] via
   [prev] ([-1] at the walk's start): a degree-1 start, or a degree-2
   interior node whose other arc does not return to [prev]. *)
let forced_step ~offsets ~neighbors ~edge_ids ~prev ~cur =
  let k0 = offsets.(cur) in
  match offsets.(cur + 1) - k0 with
  | 1 ->
    let nb = neighbors.(k0) in
    if nb = prev then None else Some (nb, edge_ids.(k0))
  | 2 when prev >= 0 ->
    let n0 = neighbors.(k0) and n1 = neighbors.(k0 + 1) in
    if n0 = prev && n1 <> prev then Some (n1, edge_ids.(k0 + 1))
    else if n1 = prev && n0 <> prev then Some (n0, edge_ids.(k0))
    else None
  | _ -> None

let rec distinct = function
  | [] -> true
  | x :: tl -> (not (List.mem x tl)) && distinct tl

(* Collapse sole-neighbor chains: when the forced walks from [src] and
   [dst] spell the whole route (a pure tree segment, or the same-rack
   src -> switch -> dst triangle of a fabric), the unique simple path
   needs no search — it is feasible, or no path exists at all. *)
let forced_route ~offsets ~neighbors ~edge_ids ~n ~src ~dst =
  if
    offsets.(src + 1) - offsets.(src) <> 1
    && offsets.(dst + 1) - offsets.(dst) <> 1
  then No_fast_path
  else begin
    (* rev_nodes leads with the terminal: for the walk from [src] that
       is reversed path order; for the walk from [dst] it already reads
       forward, terminal -> dst. *)
    let walk ~start ~target =
      let rec go prev cur rev_nodes rev_edges steps =
        if cur = target || steps >= n then (rev_nodes, rev_edges, cur)
        else
          match forced_step ~offsets ~neighbors ~edge_ids ~prev ~cur with
          | None -> (rev_nodes, rev_edges, cur)
          | Some (nb, eid) ->
            go cur nb (nb :: rev_nodes) (eid :: rev_edges) (steps + 1)
      in
      go (-1) start [ start ] [] 0
    in
    let s_nodes, s_edges, s_term = walk ~start:src ~target:dst in
    if s_term = dst then
      let nodes = List.rev s_nodes in
      if distinct nodes then
        Forced (Some (Path.make ~nodes ~edges:(List.rev s_edges)))
      else No_fast_path
    else begin
      let d_nodes, d_edges, d_term = walk ~start:dst ~target:src in
      if d_term = src then
        if distinct d_nodes then
          Forced (Some (Path.make ~nodes:d_nodes ~edges:d_edges))
        else No_fast_path
      else if s_term = d_term then begin
        (* The walks meet: the terminal appears once, so every simple
           path runs prefix - terminal - suffix and is fully forced. *)
        let nodes = List.rev_append (List.tl s_nodes) d_nodes in
        if distinct nodes then
          Forced
            (Some (Path.make ~nodes ~edges:(List.rev_append s_edges d_edges)))
        else No_fast_path
      end
      else No_fast_path
    end
  end

(* ---- the arena search ---- *)

let search ~ctx ~latency_tables ~offsets ~neighbors ~edge_ids ~latencies ~avails
    ~prune_dominated ~src ~dst ~bandwidth_mbps ~latency_ms =
  let tab = Latency_table.to_destination latency_tables ~dst in
  (* Destructured once: the hot loop reads the shared base array and
     scalar offset directly instead of paying a record access per
     lookup. [ar x] stays the exact [Latency_table.get] semantics —
     the [x = dst] case matters, labels ending at [dst] sit in the
     heap and must project with zero latency-to-go. *)
  let ar_base = tab.Latency_table.base and ar_offset = tab.Latency_table.offset in
  let ar x = if x = dst then 0. else ar_base.(x) +. ar_offset in
  Route_ctx.reset_search ctx;
  let generated = ref 0 and expanded = ref 0 in
  (* Search-effort tallies, kept in locals on the hot path and flushed
     to the metrics registry once per call (§5.2: search effort, not
     just wall time, is the result). *)
  let pruned_bandwidth = ref 0
  and pruned_latency = ref 0
  and pruned_dominated = ref 0
  and heap_max = ref 0 in
  let push id =
    incr generated;
    Route_ctx.heap_push ctx id;
    let len = ctx.Route_ctx.heap_size in
    if len > !heap_max then heap_max := len
  in
  if ar src <= latency_ms then begin
    (* Label recording must track the flag: the unpruned reference
       mode would otherwise start with a seeded Pareto table. *)
    if prune_dominated then Route_ctx.pareto_record ctx src ~width:infinity ~lat:0.;
    push
      (Route_ctx.add_label ctx ~parent:(-1) ~node:src ~via:(-1) ~hops:1
         ~width:infinity ~lat:0. ~proj:(0. +. ar src))
  end;
  let expand p =
    (* CSR slice walk: same arc order as [Graph.iter_adj] (the view
       preserves adjacency insertion order), but three flat array
       reads per arc instead of a closure call plus a link-record
       fetch — this loop dominates Networking wall time at scale.
       Membership is an O(hops) parent-chain walk instead of the
       historical per-label bitset copy: paths on these fabrics are a
       handful of hops, so the walk is cheaper than duplicating n/8
       bytes per generated label. *)
    let u = ctx.Route_ctx.node.(p) in
    let p_lat = ctx.Route_ctx.lat.(p)
    and p_width = ctx.Route_ctx.width.(p)
    and p_hops = ctx.Route_ctx.hops.(p) in
    for k = offsets.(u) to offsets.(u + 1) - 1 do
      let neighbor = neighbors.(k) in
      if not (Route_ctx.on_path ctx p neighbor) then begin
        let eid = edge_ids.(k) in
        let avail = avails.(eid) in
        let acc_latency = p_lat +. latencies.(eid) in
        (* Prune: not enough residual bandwidth on this hop, or the
           latency budget cannot be met even via the cheapest
           completion. *)
        if avail < bandwidth_mbps then incr pruned_bandwidth
        else begin
          let proj = acc_latency +. ar neighbor in
          if proj > latency_ms then incr pruned_latency
          else begin
            let width = Float.min p_width avail in
            if
              prune_dominated
              && Route_ctx.pareto_dominated ctx neighbor ~width ~lat:acc_latency
            then incr pruned_dominated
            else begin
              if prune_dominated then
                Route_ctx.pareto_record ctx neighbor ~width ~lat:acc_latency;
              push
                (Route_ctx.add_label ctx ~parent:p ~node:neighbor ~via:eid
                   ~hops:(p_hops + 1) ~width ~lat:acc_latency ~proj)
            end
          end
        end
      end
    done
  in
  let result = ref (-1) in
  let rec loop () =
    let p = Route_ctx.heap_pop ctx in
    if p >= 0 then begin
      incr expanded;
      if ctx.Route_ctx.node.(p) = dst then result := p
      else begin
        expand p;
        loop ()
      end
    end
  in
  loop ();
  if Metrics.enabled () then begin
    Metrics.Counter.add (Metrics.counter "astar.labels_expanded") !expanded;
    Metrics.Counter.add (Metrics.counter "astar.labels_generated") !generated;
    Metrics.Counter.add (Metrics.counter "astar.pruned_bandwidth") !pruned_bandwidth;
    Metrics.Counter.add (Metrics.counter "astar.pruned_latency") !pruned_latency;
    Metrics.Counter.add (Metrics.counter "astar.pruned_dominated") !pruned_dominated;
    Metrics.Gauge.observe (Metrics.gauge "astar.heap_max") !heap_max;
    Metrics.Counter.incr
      (Metrics.counter
         (if !result < 0 then "astar.routes_failed" else "astar.routes_found"))
  end;
  if !result < 0 then None
  else begin
    (* Only the winning path is materialised: walk the parent chain
       once, consing forward node/edge lists for [Path.make]. *)
    let rec reconstruct i nodes edges =
      let nodes = ctx.Route_ctx.node.(i) :: nodes in
      let parent = ctx.Route_ctx.parent.(i) in
      if parent < 0 then (nodes, edges)
      else reconstruct parent nodes (ctx.Route_ctx.via.(i) :: edges)
    in
    let nodes, edges = reconstruct !result [] [] in
    Some (Path.make ~nodes ~edges, { expanded = !expanded; generated = !generated })
  end

let route ?(prune_dominated = true) ?ctx ~residual ~latency_tables ~src ~dst
    ~bandwidth_mbps ~latency_ms () =
  let cluster = Residual.cluster residual in
  let g = Cluster.graph cluster in
  let n = Graph.n_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Astar_prune.route: endpoint out of range";
  if not (bandwidth_mbps > 0.) then
    invalid_arg "Astar_prune.route: bandwidth must be positive";
  if latency_ms < 0. then invalid_arg "Astar_prune.route: negative latency bound";
  if src = dst then Some (Path.trivial src, zero_stats)
  else begin
    let ctx =
      match ctx with Some c -> c | None -> Route_ctx.create ()
    in
    (* Rebinding flushes the cache when the physical cluster changed
       (defrag rebuilds residual clusters), so a stale entry can never
       be revalidated against arrays it does not index. *)
    Route_ctx.bind ctx cluster;
    let csr = Cluster.csr cluster in
    let offsets = Csr.offsets csr
    and neighbors = Csr.neighbors csr
    and edge_ids = Csr.edge_ids csr in
    let latencies = Cluster.link_latencies cluster in
    let avails = Residual.availabilities residual in
    let cached =
      match Route_ctx.cache_find ctx ~src ~dst with
      | None ->
        if Route_ctx.use_cache ctx then
          ctx.Route_ctx.cache_misses <- ctx.Route_ctx.cache_misses + 1;
        None
      | Some path ->
        (* Revalidate against the current residual state: availability
           hop by hop, latency recomputed from the current cluster's
           table — the entry was cached under an earlier reservation
           state and a possibly different request. *)
        if feasible ~latencies ~avails ~bandwidth_mbps ~latency_ms path then begin
          ctx.Route_ctx.cache_hits <- ctx.Route_ctx.cache_hits + 1;
          if Metrics.enabled () then
            Metrics.Counter.incr (Metrics.counter "astar.cache_hits");
          Some path
        end
        else begin
          ctx.Route_ctx.cache_revalidate_failed <-
            ctx.Route_ctx.cache_revalidate_failed + 1;
          if Metrics.enabled () then
            Metrics.Counter.incr (Metrics.counter "astar.cache_revalidate_failed");
          None
        end
    in
    match cached with
    | Some path -> Some (path, zero_stats)
    | None -> (
      let forced =
        if Route_ctx.use_tree_fast_path ctx then
          forced_route ~offsets ~neighbors ~edge_ids ~n ~src ~dst
        else No_fast_path
      in
      match forced with
      | Forced maybe ->
        ctx.Route_ctx.fast_path_hits <- ctx.Route_ctx.fast_path_hits + 1;
        if Metrics.enabled () then
          Metrics.Counter.incr (Metrics.counter "astar.fast_path_hits");
        (match maybe with
        | Some path
          when feasible ~latencies ~avails ~bandwidth_mbps ~latency_ms path ->
          Route_ctx.cache_store ctx ~src ~dst path;
          Some (path, zero_stats)
        | Some _ | None ->
          (* The unique simple path is infeasible — so is the route. *)
          None)
      | No_fast_path -> (
        match
          search ~ctx ~latency_tables ~offsets ~neighbors ~edge_ids ~latencies
            ~avails ~prune_dominated ~src ~dst ~bandwidth_mbps ~latency_ms
        with
        | None -> None
        | Some (path, st) ->
          Route_ctx.cache_store ctx ~src ~dst path;
          Some (path, st)))
  end

let widest_feasible ?ctx ~residual ~latency_tables ~src ~dst ~bandwidth_mbps
    ~latency_ms () =
  Option.map fst
    (route ?ctx ~residual ~latency_tables ~src ~dst ~bandwidth_mbps ~latency_ms ())
