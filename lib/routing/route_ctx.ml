module Cluster = Hmn_testbed.Cluster
module Csr = Hmn_graph.Csr
module Dynarray = Hmn_dstruct.Dynarray

type t = {
  use_cache : bool;
  use_tree_fast_path : bool;
  (* The CSR view the pools and cache were last sized/filled against.
     Physical identity is the staleness test: defragmentation rebuilds
     residual clusters (fresh Cluster.t, fresh Csr.t), so a pointer
     mismatch means every cached path and pooled array may describe a
     graph that no longer exists. *)
  mutable bound : Csr.t option;
  mutable n_nodes : int;
  (* Label arena: struct-of-arrays, one row per generated label.
     [parent] is a label id (-1 at the origin), [node] the label's last
     node, [via] the edge id taken into [node] (-1 at the origin).
     [proj] caches acc_latency + ar(node) — the heap's second sort key,
     a pure function of the label, so the comparator never touches the
     latency table. *)
  mutable parent : int array;
  mutable node : int array;
  mutable via : int array;
  mutable hops : int array;
  mutable width : float array;
  mutable lat : float array;
  mutable proj : float array;
  mutable n_labels : int;
  (* Open set: a binary min-heap of label ids ordered by
     (width desc, proj asc, hops asc) — the selection rule. *)
  mutable heap : int array;
  mutable heap_size : int;
  (* Per-node Pareto sets, pooled: pairs are flattened as
     [width, lat, width, lat, ...] in a per-node dynarray that is
     created on a node's first label ever and then reused; [touched]
     remembers which nodes must be wiped between searches. *)
  mutable pareto : float Dynarray.t option array;
  touched : int Dynarray.t;
  (* Path cache, keyed by src * n_nodes + dst. Entries are only ever
     served after revalidation against the caller's current residual
     state (see Astar_prune); [bind] flushes it whenever the physical
     cluster changes. *)
  cache : (int, Path.t) Hashtbl.t;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_revalidate_failed : int;
  mutable fast_path_hits : int;
}

let create ?(cache = false) ?(tree_fast_path = false) () =
  {
    use_cache = cache;
    use_tree_fast_path = tree_fast_path;
    bound = None;
    n_nodes = 0;
    parent = [||];
    node = [||];
    via = [||];
    hops = [||];
    width = [||];
    lat = [||];
    proj = [||];
    n_labels = 0;
    heap = [||];
    heap_size = 0;
    pareto = [||];
    touched = Dynarray.create ();
    cache = Hashtbl.create 64;
    cache_hits = 0;
    cache_misses = 0;
    cache_revalidate_failed = 0;
    fast_path_hits = 0;
  }

let use_cache t = t.use_cache
let use_tree_fast_path t = t.use_tree_fast_path
let cache_hits t = t.cache_hits
let cache_misses t = t.cache_misses
let cache_revalidate_failed t = t.cache_revalidate_failed
let fast_path_hits t = t.fast_path_hits

let bind t cluster =
  let csr = Cluster.csr cluster in
  match t.bound with
  | Some c when c == csr -> ()
  | _ ->
    t.bound <- Some csr;
    t.n_nodes <- Csr.n_nodes csr;
    (* Pool sizes are per-node: a different graph means different node
       ids, so the pooled Pareto arrays are dropped wholesale rather
       than risking a stale set surviving under a recycled id. *)
    t.pareto <- Array.make t.n_nodes None;
    Dynarray.reset t.touched;
    Hashtbl.reset t.cache

(* ---- label arena ---- *)

let grow_labels t =
  let cap = Array.length t.parent in
  let cap' = if cap = 0 then 256 else 2 * cap in
  let grow_int a = Array.append a (Array.make (cap' - cap) 0) in
  let grow_float a = Array.append a (Array.make (cap' - cap) 0.) in
  t.parent <- grow_int t.parent;
  t.node <- grow_int t.node;
  t.via <- grow_int t.via;
  t.hops <- grow_int t.hops;
  t.width <- grow_float t.width;
  t.lat <- grow_float t.lat;
  t.proj <- grow_float t.proj

let add_label t ~parent ~node ~via ~hops ~width ~lat ~proj =
  if t.n_labels = Array.length t.parent then grow_labels t;
  let id = t.n_labels in
  t.parent.(id) <- parent;
  t.node.(id) <- node;
  t.via.(id) <- via;
  t.hops.(id) <- hops;
  t.width.(id) <- width;
  t.lat.(id) <- lat;
  t.proj.(id) <- proj;
  t.n_labels <- id + 1;
  id

(* Membership along a label's path: walk the parent chain. Paths in the
   fabrics this engine serves are a handful of hops, so the walk beats
   copying an n/8-byte bitset per generated label by a wide margin. *)
let on_path t label v =
  let rec go i = t.node.(i) = v || (t.parent.(i) >= 0 && go t.parent.(i)) in
  go label

(* ---- open set (binary min-heap of label ids) ---- *)

(* Strict heap order, byte-compatible with the historical record
   comparator: widest bottleneck first, then optimistic total latency,
   then fewer hops. *)
let label_lt t i j =
  let c = Float.compare t.width.(j) t.width.(i) in
  if c <> 0 then c < 0
  else
    let c = Float.compare t.proj.(i) t.proj.(j) in
    if c <> 0 then c < 0 else t.hops.(i) < t.hops.(j)

let heap_push t id =
  let cap = Array.length t.heap in
  if t.heap_size = cap then
    t.heap <- Array.append t.heap (Array.make (if cap = 0 then 256 else cap) 0);
  t.heap.(t.heap_size) <- id;
  t.heap_size <- t.heap_size + 1;
  let i = ref (t.heap_size - 1) in
  let continue = ref (!i > 0) in
  while !continue do
    let parent = (!i - 1) / 2 in
    if label_lt t t.heap.(!i) t.heap.(parent) then begin
      let tmp = t.heap.(!i) in
      t.heap.(!i) <- t.heap.(parent);
      t.heap.(parent) <- tmp;
      i := parent;
      continue := !i > 0
    end
    else continue := false
  done

(* -1 when empty (no option allocation on the hot path). *)
let heap_pop t =
  if t.heap_size = 0 then -1
  else begin
    let top = t.heap.(0) in
    t.heap_size <- t.heap_size - 1;
    if t.heap_size > 0 then begin
      t.heap.(0) <- t.heap.(t.heap_size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.heap_size && label_lt t t.heap.(l) t.heap.(!smallest) then
          smallest := l;
        if r < t.heap_size && label_lt t t.heap.(r) t.heap.(!smallest) then
          smallest := r;
        if !smallest <> !i then begin
          let tmp = t.heap.(!i) in
          t.heap.(!i) <- t.heap.(!smallest);
          t.heap.(!smallest) <- tmp;
          i := !smallest
        end
        else continue := false
      done
    end;
    top
  end

(* ---- Pareto pools ---- *)

let pareto_of t v =
  match t.pareto.(v) with
  | Some d -> d
  | None ->
    let d = Dynarray.create () in
    t.pareto.(v) <- Some d;
    d

let pareto_dominated t v ~width ~lat =
  match t.pareto.(v) with
  | None -> false
  | Some d ->
    let n = Dynarray.length d in
    let rec scan i =
      i < n
      && ((Dynarray.get d i >= width && Dynarray.get d (i + 1) <= lat)
         || scan (i + 2))
    in
    scan 0

let pareto_record t v ~width ~lat =
  let d = pareto_of t v in
  let n = Dynarray.length d in
  if n = 0 then Dynarray.push t.touched v
  else begin
    (* Drop entries the new label dominates, compacting in place; most
       insertions dominate nothing and leave the array untouched. *)
    let keep = ref 0 in
    for i = 0 to (n / 2) - 1 do
      let b = Dynarray.get d (2 * i) and l = Dynarray.get d ((2 * i) + 1) in
      if not (b <= width && l >= lat) then begin
        if !keep <> i then begin
          Dynarray.set d (2 * !keep) b;
          Dynarray.set d ((2 * !keep) + 1) l
        end;
        incr keep
      end
    done;
    if 2 * !keep <> n then Dynarray.truncate d (2 * !keep)
  end;
  Dynarray.push d width;
  Dynarray.push d lat

(* ---- per-search reset ---- *)

let reset_search t =
  t.n_labels <- 0;
  t.heap_size <- 0;
  Dynarray.iter
    (fun v ->
      match t.pareto.(v) with Some d -> Dynarray.reset d | None -> ())
    t.touched;
  Dynarray.reset t.touched

(* ---- path cache ---- *)

let cache_key t ~src ~dst = (src * t.n_nodes) + dst

let cache_find t ~src ~dst =
  if not t.use_cache then None
  else Hashtbl.find_opt t.cache (cache_key t ~src ~dst)

let cache_store t ~src ~dst path =
  if t.use_cache then Hashtbl.replace t.cache (cache_key t ~src ~dst) path
