type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;  (* sum of squared deviations *)
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x

let count t = t.n

let copy t = { n = t.n; mean = t.mean; m2 = t.m2; min = t.min; max = t.max }

(* Chan et al.'s parallel-axes combination of two Welford accumulators:
   the result summarises the concatenation of both sample streams. *)
let merge a b =
  if a.n = 0 then copy b
  else if b.n = 0 then copy a
  else begin
    let na = float_of_int a.n and nb = float_of_int b.n in
    let nf = na +. nb in
    let delta = b.mean -. a.mean in
    {
      n = a.n + b.n;
      mean = a.mean +. (delta *. nb /. nf);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. na *. nb /. nf);
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }
  end

let require_data t name =
  if t.n = 0 then invalid_arg ("Running." ^ name ^ ": no samples")

let mean t =
  require_data t "mean";
  t.mean

let stddev t =
  require_data t "stddev";
  sqrt (t.m2 /. float_of_int t.n)

let min t =
  require_data t "min";
  t.min

let max t =
  require_data t "max";
  t.max
