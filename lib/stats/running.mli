(** Welford's online mean/variance — used by the experiment runner to
    aggregate repetitions without retaining every sample. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int

val copy : t -> t
(** Independent snapshot of the accumulator. *)

val merge : t -> t -> t
(** [merge a b] is a fresh accumulator summarising the concatenation of
    the two sample streams (Chan et al.'s parallel combination of
    Welford states). Neither argument is modified. Up to the usual
    floating-point reassociation error, [merge a b] agrees with feeding
    every sample of [a] then every sample of [b] into one accumulator —
    used to combine per-domain partial statistics after a parallel
    sweep. *)

val mean : t -> float
(** Raises [Invalid_argument] before the first sample. *)

val stddev : t -> float
(** Population standard deviation; [0.] with a single sample. Raises
    before the first sample. *)

val min : t -> float
val max : t -> float
