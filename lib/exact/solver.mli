(** Exact branch-and-bound baseline for small instances.

    Depth-first search over guest → host assignments, guests in
    descending CPU demand (ties by ascending id), children ordered by
    ascending {!Bound.stddev_lower} (ties by ascending host id) — fully
    deterministic. Each node propagates:

    - Eqs. 2–3: a candidate host must fit the guest's memory and
      storage; any future guest left with no feasible host kills the
      subtree (dead end);
    - bandwidth admissibility (routing mode): every virtual link whose
      endpoints are both placed must admit a latency-feasible path of
      sufficient {e full-capacity} bandwidth between the two hosts,
      checked with the production A\*Prune widest-path machinery and
      memoized per (host pair, vlink). This is a necessary condition
      for any routable mapping, so discarding such subtrees never cuts
      a valid mapping;
    - the water-filling lower bound: a subtree whose bound cannot
      improve on the incumbent is pruned, its bound recorded so
      {!t.lower_bound} stays a proven bound over everything not
      explored.

    In routing mode every leaf that improves the incumbent is certified
    by running the actual Networking stage (sequential A\*Prune under
    residual bandwidth); [best_mapping] is therefore a real, valid
    mapping, and [lower_bound] a proven bound on the objective of
    {e every} valid mapping of the instance — by any mapper, with any
    router. When the two meet ({!proven_optimal}), the optimum is
    exact. *)

type status = Optimal | Budget_exhausted

type config = {
  node_budget : int;
      (** maximum internal search nodes expanded; on exhaustion the
          search stops, [status = Budget_exhausted], and every
          abandoned subtree's bound is folded into [lower_bound], which
          therefore remains valid (just possibly loose) *)
  routing : bool;
      (** [true]: propagate per-vlink admissibility and certify
          improving leaves with {!Hmn_core.Networking.run} (the
          optimum is a complete mapping). [false]: placement-only —
          the search space and objective are exactly those of
          {!Hmn_core.Exhaustive.optimal_placement}, for cross-checks. *)
}

val default_config : config
(** [{ node_budget = 2_000_000; routing = true }] *)

type t = {
  status : status;
  routing : bool;  (** the mode this result was produced under *)
  lower_bound : float;
      (** proven lower bound on the LBF of every complete assignment in
          the (relaxed) search space — hence of every valid mapping in
          routing mode; [infinity] when the space is proven empty *)
  best_placement : (float * Hmn_mapping.Placement.t) option;
      (** least-LBF feasible complete assignment encountered *)
  best_mapping : (float * Hmn_mapping.Mapping.t) option;
      (** least-LBF Networking-certified mapping found by the search
          itself — strictly better than any warm seed (routing mode
          only) *)
  warm_best : (float * Hmn_mapping.Mapping.t) option;
      (** best of the [warm] seeds; participates in {!optimum} but
          never in [lower_bound] *)
  nodes : int;  (** internal nodes expanded *)
  leaves : int;  (** complete assignments reached *)
  networking_runs : int;  (** leaf certifications attempted *)
  bound_prunes : int;
  admissibility_rejects : int;
      (** candidate (guest, host) pairs discarded by the widest-path
          admissibility propagation *)
  deadend_prunes : int;
}

val solve :
  ?config:config -> ?warm:Hmn_mapping.Mapping.t list -> Hmn_mapping.Problem.t -> t
(** [warm] seeds the pruning incumbent with existing valid mappings of
    the same problem instance (e.g. a heuristic's output). The best
    warm seed is itself a candidate solution ([warm_best], folded into
    {!optimum}), but it is kept out of [lower_bound]: the bound stays
    purely search-derived, so it independently bounds the warm
    mappings too — a warm mapping whose objective beats [lower_bound]
    exposes a bug in whichever component produced or scored it.
    Routing mode only; ignored otherwise. *)

val optimum : t -> float option
(** The objective of the best certified solution: the better of
    [best_mapping] and [warm_best] in routing mode, [best_placement]
    otherwise. *)

val proven_optimal : t -> bool
(** The search completed and [optimum] meets [lower_bound] within
    [1e-6 * max 1 |optimum|] — or the instance is proven infeasible
    ([optimum = None] and [lower_bound = infinity]). *)
