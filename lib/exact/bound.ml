(* Water-filling solution of the separable convex relaxation; see the
   .mli for the derivation. *)

(* Bisection precision is limited, and the final variance is computed
   from the water level we stopped at: shave a hair off the result so a
   not-quite-converged level can never yield a bound above the true
   relaxed optimum (which would over-prune the exact search). *)
let safety = 1e-9

let stddev_lower ~residual_cpus:r ~caps ~demand:d =
  let h = Array.length r in
  if h = 0 then invalid_arg "Bound.stddev_lower: no hosts";
  if Array.length caps <> h then
    invalid_arg "Bound.stddev_lower: caps length mismatch";
  if not (d >= 0.) then invalid_arg "Bound.stddev_lower: negative demand";
  (* No host can usefully absorb more than the whole remaining demand;
     capping here also makes every bisection bracket finite. *)
  let u = Array.map (fun c -> Float.min c d) caps in
  let total_u = Array.fold_left ( +. ) 0. u in
  if total_u +. 1e-9 < d then None
  else begin
    let hf = float_of_int h in
    let sum_r = Array.fold_left ( +. ) 0. r in
    let mu = (sum_r -. d) /. hf in
    let fill lambda =
      let s = ref 0. in
      for i = 0 to h - 1 do
        s := !s +. Float.min u.(i) (Float.max 0. (r.(i) -. lambda))
      done;
      !s
    in
    (* fill is nonincreasing in lambda: fill(lo) = sum u >= d and
       fill(hi) = 0 <= d bracket the water level. *)
    let lo = ref (Array.fold_left Float.min infinity r -. d -. 1.) in
    let hi = ref (Array.fold_left Float.max neg_infinity r) in
    if !hi < !lo then hi := !lo;
    for _ = 1 to 100 do
      let mid = 0.5 *. (!lo +. !hi) in
      if fill mid >= d then lo := mid else hi := mid
    done;
    let lambda = !lo in
    let var = ref 0. in
    for i = 0 to h - 1 do
      let x = Float.min u.(i) (Float.max 0. (r.(i) -. lambda)) in
      let dev = r.(i) -. x -. mu in
      var := !var +. (dev *. dev)
    done;
    Some (Float.max 0. (sqrt (!var /. hf) -. safety))
  end
