(** Lagrangian / LP-relaxation lower bound on the load-balance factor.

    Eq. 10 minimizes the population standard deviation of residual CPU
    across hosts. Relax the assignment polytope to fractional guests:
    the remaining CPU demand [demand] may be split arbitrarily across
    hosts, host [i] receiving [x_i] with [0 <= x_i <= caps.(i)], where
    [caps.(i)] bounds the CPU that could ever be packed onto host [i]
    (the solver derives it from the fractional knapsack over the
    remaining guests against the host's residual memory and storage —
    a relaxation of any integral packing, so the bound stays valid).

    Because the total residual CPU [sum residual_cpus - demand] is
    invariant under assignment, the mean residual is fixed and the
    relaxed problem is a separable convex program: minimize
    [sum_i (residual_cpus.(i) - x_i - mu)^2] subject to the box and the
    coupling constraint [sum x_i = demand]. Its KKT conditions give a
    water-filling solution [x_i = clamp(residual_cpus.(i) - lambda, 0,
    caps.(i))] for a single multiplier [lambda], found here by
    bisection. No external LP solver is involved.

    The result is a true lower bound on the LBF of {e every} complete
    assignment extending the current partial one (integral assignments
    are a subset of the fractional polytope); a small safety margin is
    subtracted so bisection rounding can never over-prune. *)

val stddev_lower :
  residual_cpus:float array -> caps:float array -> demand:float -> float option
(** [stddev_lower ~residual_cpus ~caps ~demand] is a lower bound on the
    population standard deviation of [residual_cpus - x] over any
    fractional split [x] of [demand] with [0 <= x_i <= caps.(i)], or
    [None] when [sum caps < demand] (even the relaxation cannot place
    the remaining CPU — the subtree is infeasible). [caps] entries may
    be [infinity]; [residual_cpus] entries may be negative (CPU is
    balanced, not gated). Raises [Invalid_argument] on empty hosts or
    negative [demand]. *)
