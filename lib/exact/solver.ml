module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Graph = Hmn_graph.Graph
module Problem = Hmn_mapping.Problem
module Placement = Hmn_mapping.Placement
module Objective = Hmn_mapping.Objective
module Mapping = Hmn_mapping.Mapping
module Residual = Hmn_routing.Residual
module Latency_table = Hmn_routing.Latency_table
module Astar = Hmn_routing.Astar_prune
module Networking = Hmn_core.Networking

type status = Optimal | Budget_exhausted

type config = {
  node_budget : int;
  routing : bool;
}

let default_config = { node_budget = 2_000_000; routing = true }

type t = {
  status : status;
  routing : bool;
  lower_bound : float;
  best_placement : (float * Placement.t) option;
  best_mapping : (float * Mapping.t) option;
  warm_best : (float * Mapping.t) option;
  nodes : int;
  leaves : int;
  networking_runs : int;
  bound_prunes : int;
  admissibility_rejects : int;
  deadend_prunes : int;
}

(* A subtree is pruned only when its bound cannot improve the incumbent
   by more than this; the reported optimum is exact to the same slack. *)
let improve_eps = 1e-9

let optimum t =
  if not t.routing then Option.map fst t.best_placement
  else
    match (t.best_mapping, t.warm_best) with
    | None, None -> None
    | Some (a, _), None | None, Some (a, _) -> Some a
    | Some (a, _), Some (b, _) -> Some (Float.min a b)

let proven_optimal t =
  t.status = Optimal
  &&
  match optimum t with
  | None -> t.lower_bound = infinity
  | Some o -> o <= t.lower_bound +. (1e-6 *. Float.max 1. (Float.abs o))

let solve ?(config = default_config) ?(warm = []) (problem : Problem.t) =
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let hosts = Cluster.host_ids cluster in
  let nh = Array.length hosts in
  let ng = Virtual_env.n_guests venv in
  let mips g = (Virtual_env.demand venv g).Resources.mips in
  (* Static branching order: descending CPU demand, ties by ascending
     guest id. Big guests first keeps the water-filling bound honest
     early, where pruning pays the most. *)
  let order = Array.init ng Fun.id in
  Array.sort
    (fun a b ->
      match compare (mips b) (mips a) with 0 -> compare a b | c -> c)
    order;
  (* Total CPU still to place from each depth of the branching order. *)
  let suffix_cpu = Array.make (ng + 1) 0. in
  for i = ng - 1 downto 0 do
    suffix_cpu.(i) <- suffix_cpu.(i + 1) +. mips order.(i)
  done;
  (* Per-depth fractional-knapsack orders: the guests still to place,
     sorted by CPU-per-MB (resp. CPU-per-GB) descending. The greedy
     fill of a host's residual memory/storage along this order is the
     LP optimum of the knapsack "most CPU packable into this host", so
     it upper-bounds what any integral completion can put there — a
     far tighter per-host cap than best-ratio x residual. *)
  let mem_of g = (Virtual_env.demand venv g).Resources.mem_mb in
  let stor_of g = (Virtual_env.demand venv g).Resources.stor_gb in
  let ratio_sorted den_of =
    let ratio g =
      let m = mips g in
      if m <= 0. then 0.
      else
        let den = den_of g in
        if den <= 0. then infinity else m /. den
    in
    Array.init (ng + 1) (fun d ->
        let rest = Array.sub order d (ng - d) in
        Array.sort
          (fun a b ->
            match compare (ratio b) (ratio a) with 0 -> compare a b | c -> c)
          rest;
        rest)
  in
  let mem_sorted = ratio_sorted mem_of in
  let stor_sorted = ratio_sorted stor_of in
  (* Zero-footprint guests sort first (infinite ratio), so the early
     exit below never skips one. Negative-CPU guests cannot raise a
     host's absorbed CPU — an optimal packing just omits them. *)
  let knap sorted resid den_of =
    let acc = ref 0. and rem = ref resid in
    (try
       Array.iter
         (fun g ->
           let m = mips g in
           if m > 0. then begin
             let need = den_of g in
             if need <= 0. then acc := !acc +. m
             else if !rem <= 0. then raise Exit
             else if need <= !rem then begin
               acc := !acc +. m;
               rem := !rem -. need
             end
             else begin
               acc := !acc +. (m *. (!rem /. need));
               rem := 0.
             end
           end)
         sorted
     with Exit -> ());
    !acc
  in
  (* Virtual adjacency: for admissibility propagation on assignment. *)
  let vadj = Array.make ng [] in
  Graph.iter_edges (Virtual_env.graph venv) (fun ~eid ~u ~v _ ->
      vadj.(u) <- (eid, v) :: vadj.(u);
      vadj.(v) <- (eid, u) :: vadj.(v));
  (* Widest-path admissibility on the empty (full-capacity) network — a
     necessary condition for any routable mapping — memoized per
     (host pair, vlink). *)
  let full_residual = lazy (Residual.create cluster) in
  let latency_tables =
    lazy
      (let t = Latency_table.create cluster in
       Latency_table.precompute t;
       t)
  in
  let memo : (int * int * int, bool) Hashtbl.t = Hashtbl.create 256 in
  let route_admissible ~vlink ~ha ~hb =
    ha = hb
    ||
    let a, b = if ha < hb then (ha, hb) else (hb, ha) in
    match Hashtbl.find_opt memo (a, b, vlink) with
    | Some ok -> ok
    | None ->
      let spec = Virtual_env.vlink venv vlink in
      let ok =
        Astar.widest_feasible ~residual:(Lazy.force full_residual)
          ~latency_tables:(Lazy.force latency_tables) ~src:a ~dst:b
          ~bandwidth_mbps:spec.Hmn_vnet.Vlink.bandwidth_mbps
          ~latency_ms:spec.Hmn_vnet.Vlink.latency_ms ()
        <> None
      in
      Hashtbl.add memo (a, b, vlink) ok;
      ok
  in
  let placement = Placement.create problem in
  (* Residual CPU per host index, mirrored incrementally with the exact
     same additions/subtractions [Placement] performs, so leaf bounds
     and [Objective.load_balance_factor] agree bit for bit. *)
  let r = Array.init nh (fun j -> (Cluster.capacity cluster hosts.(j)).Resources.mips) in
  let caps = Array.make nh 0. in
  let bound_below depth =
    for j = 0 to nh - 1 do
      let res = Placement.residual placement ~host:hosts.(j) in
      caps.(j) <-
        Float.min
          (knap mem_sorted.(depth) res.Resources.mem_mb mem_of)
          (knap stor_sorted.(depth) res.Resources.stor_gb stor_of)
    done;
    Bound.stddev_lower ~residual_cpus:r ~caps ~demand:suffix_cpu.(depth)
  in
  let nodes = ref 0 and leaves = ref 0 and networking_runs = ref 0 in
  let bound_prunes = ref 0 in
  let admissibility_rejects = ref 0 in
  let deadend_prunes = ref 0 in
  let budget_hit = ref false in
  let best_placement = ref None in
  let best_mapping = ref None in
  (* The incumbent objective pruning works against: the best certified
     mapping in routing mode, the best complete assignment otherwise.
     Warm mappings tighten it but are kept out of [best_placement] /
     [best_mapping], so [lower_bound] stays purely search-derived and
     independently bounds the warm mappings themselves — the fuzz
     oracle depends on that. *)
  let target = ref infinity in
  let warm_best = ref None in
  if config.routing then
    List.iter
      (fun m ->
        let obj = Mapping.objective m in
        (match !warm_best with
        | Some (b, _) when b <= obj -> ()
        | _ -> warm_best := Some (obj, m));
        if obj < !target then target := obj)
      warm;
  (* Bounds of subtrees not explored to the bottom — pruned by the
     incumbent or abandoned on budget exhaustion — fold into the final
     proven lower bound. *)
  let unexplored_lb = ref infinity in
  let note_unexplored b = if b < !unexplored_lb then unexplored_lb := b in
  let deadend depth =
    (* Some future guest fits no host at all: no completion exists. *)
    let rec go i =
      i < ng
      &&
      let g = order.(i) in
      let feasible = ref false in
      let j = ref 0 in
      while (not !feasible) && !j < nh do
        if Placement.fits placement ~guest:g ~host:hosts.(!j) then feasible := true;
        incr j
      done;
      if !feasible then go (i + 1) else true
    in
    go depth
  in
  let leaf () =
    incr leaves;
    let lbf = Objective.load_balance_factor placement in
    (match !best_placement with
    | Some (b, _) when b <= lbf -> ()
    | _ -> best_placement := Some (lbf, Placement.copy placement));
    if not config.routing then begin
      if lbf < !target then target := lbf
    end
    else if lbf < !target -. improve_eps then begin
      incr networking_runs;
      match Networking.run placement with
      | Error _ -> ()
      | Ok (link_map, _) ->
        target := lbf;
        best_mapping := Some (lbf, Mapping.make ~placement:(Placement.copy placement) ~link_map)
    end
  in
  let assign_exn ~guest ~host =
    match Placement.assign placement ~guest ~host with
    | Ok () -> ()
    | Error msg -> failwith ("Solver: assign failed: " ^ msg)
  in
  let unassign_exn ~guest =
    match Placement.unassign placement ~guest with
    | Ok () -> ()
    | Error msg -> failwith ("Solver: unassign failed: " ^ msg)
  in
  let rec dfs depth bound_in =
    if !budget_hit then note_unexplored bound_in
    else if depth = ng then leaf ()
    else begin
      incr nodes;
      if !nodes > config.node_budget then begin
        budget_hit := true;
        note_unexplored bound_in
      end
      else if deadend depth then incr deadend_prunes
      else begin
        let g = order.(depth) in
        let vproc = mips g in
        let cands = ref [] in
        for j = nh - 1 downto 0 do
          let h = hosts.(j) in
          if Placement.fits placement ~guest:g ~host:h then begin
            let admissible =
              (not config.routing)
              || List.for_all
                   (fun (vlink, g') ->
                     match Placement.host_of placement ~guest:g' with
                     | None -> true
                     | Some h' -> route_admissible ~vlink ~ha:h ~hb:h')
                   vadj.(g)
            in
            if not admissible then incr admissibility_rejects
            else begin
              assign_exn ~guest:g ~host:h;
              r.(j) <- r.(j) -. vproc;
              (match bound_below (depth + 1) with
              | Some b -> cands := (b, h, j) :: !cands
              | None -> ());
              r.(j) <- r.(j) +. vproc;
              unassign_exn ~guest:g
            end
          end
        done;
        let cands = List.sort compare !cands in
        List.iter
          (fun (b, h, j) ->
            if !budget_hit then note_unexplored b
            else if b >= !target -. improve_eps then begin
              incr bound_prunes;
              note_unexplored b
            end
            else begin
              assign_exn ~guest:g ~host:h;
              r.(j) <- r.(j) -. vproc;
              dfs (depth + 1) b;
              r.(j) <- r.(j) +. vproc;
              unassign_exn ~guest:g
            end)
          cands
      end
    end
  in
  (match bound_below 0 with
  | None -> ()  (* even the fractional relaxation cannot place the load *)
  | Some b0 -> dfs 0 b0);
  let leaf_lb =
    match !best_placement with Some (b, _) -> b | None -> infinity
  in
  {
    status = (if !budget_hit then Budget_exhausted else Optimal);
    routing = config.routing;
    lower_bound = Float.min leaf_lb !unexplored_lb;
    best_placement = !best_placement;
    best_mapping = !best_mapping;
    warm_best = !warm_best;
    nodes = !nodes;
    leaves = !leaves;
    networking_runs = !networking_runs;
    bound_prunes = !bound_prunes;
    admissibility_rejects = !admissibility_rejects;
    deadend_prunes = !deadend_prunes;
  }
