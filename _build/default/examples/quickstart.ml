(* Quickstart: build a tiny physical cluster by hand, describe a small
   virtual environment, run the HMN heuristic and inspect the mapping.

   Run with: dune exec examples/quickstart.exe *)

module Resources = Hmn_testbed.Resources
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Graph = Hmn_graph.Graph

let () =
  (* Physical side: four workstations on a ring, 1 Gbps / 5 ms cables. *)
  let host name mips mem_gb stor_gb =
    Node.host ~name
      ~capacity:
        (Resources.make ~mips ~mem_mb:(1024. *. mem_gb) ~stor_gb)
  in
  let hosts =
    [|
      host "alpha" 2000. 2. 500.;
      host "beta" 1500. 1. 400.;
      host "gamma" 3000. 3. 800.;
      host "delta" 1000. 2. 300.;
    |]
  in
  let cluster = Hmn_testbed.Topology.ring ~hosts ~link:Link.gigabit in

  (* Virtual side: a six-guest environment emulating a small wide-area
     deployment — a coordinator talking to five workers. *)
  let guest name mips mem_mb stor_gb =
    Hmn_vnet.Guest.make ~name ~demand:(Resources.make ~mips ~mem_mb ~stor_gb)
  in
  let guests =
    [|
      guest "coordinator" 400. 512. 50.;
      guest "worker1" 200. 256. 20.;
      guest "worker2" 200. 256. 20.;
      guest "worker3" 200. 256. 20.;
      guest "worker4" 200. 256. 20.;
      guest "worker5" 200. 256. 20.;
    |]
  in
  let vgraph = Graph.create ~n:(Array.length guests) () in
  for worker = 1 to 5 do
    ignore
      (Graph.add_edge vgraph 0 worker
         (Hmn_vnet.Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.))
  done;
  let venv = Hmn_vnet.Virtual_env.create ~guests ~graph:vgraph in

  let problem = Hmn_mapping.Problem.make ~cluster ~venv in
  Format.printf "Problem: %a@.@." Hmn_mapping.Problem.pp_summary problem;

  match (Hmn_core.Hmn.run problem).Hmn_core.Mapper.result with
  | Error f -> Format.printf "mapping failed in %s: %s@." f.stage f.reason
  | Ok mapping ->
    print_endline "Placement:";
    print_string (Hmn_mapping.Report.placement_table mapping);
    print_endline "\nVirtual links:";
    print_string (Hmn_mapping.Report.link_table mapping);
    print_endline "";
    print_endline (Hmn_mapping.Report.summary mapping);
    (* Every mapping returned by the library satisfies Eqs. (1)-(9);
       check it explicitly anyway, as a user would. *)
    assert (Hmn_mapping.Constraints.is_valid mapping);
    print_endline "constraint check: OK"
