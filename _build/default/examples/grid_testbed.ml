(* The paper's motivating scenario: testing a grid/cloud middleware
   stack ("high-level workload") on an emulation testbed built from a
   40-host torus cluster. Generates a Table-1 instance, runs all four
   paper heuristics plus the extensions, and compares objective value,
   mapping time and the simulated experiment duration.

   Run with: dune exec examples/grid_testbed.exe [seed] *)

let () =
  let seed =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 7
  in
  let rng = Hmn_rng.Rng.create seed in
  let cluster =
    Hmn_experiments.Scenario.build_cluster Hmn_experiments.Scenario.Torus ~rng
  in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, Hmn_experiments.Setup.fit_fraction)
      ~profile:Hmn_vnet.Workload.high_level ~n:200 ~density:0.02 ~rng ()
  in
  let problem = Hmn_mapping.Problem.make ~cluster ~venv in
  Format.printf "Grid-middleware testbed instance (seed %d):@.  %a@.@." seed
    Hmn_mapping.Problem.pp_summary problem;

  let table =
    Hmn_prelude.Pretty_table.create
      ~aligns:
        Hmn_prelude.Pretty_table.[ Left; Right; Right; Right; Right; Right ]
      ~header:
        [ "heuristic"; "objective"; "map time (s)"; "tries"; "hops"; "sim time (s)" ]
      ()
  in
  List.iter
    (fun mapper ->
      let outcome =
        mapper.Hmn_core.Mapper.run ~rng:(Hmn_rng.Rng.split rng) problem
      in
      match outcome.Hmn_core.Mapper.result with
      | Error f ->
        Hmn_prelude.Pretty_table.add_row table
          [ mapper.Hmn_core.Mapper.name; "failed: " ^ f.stage; ""; ""; ""; "" ]
      | Ok mapping ->
        let sim = Hmn_emulation.Exec_sim.run mapping in
        Hmn_prelude.Pretty_table.add_row table
          [
            mapper.Hmn_core.Mapper.name;
            Printf.sprintf "%.1f" (Hmn_mapping.Mapping.objective mapping);
            Printf.sprintf "%.4f" outcome.Hmn_core.Mapper.elapsed_s;
            string_of_int outcome.Hmn_core.Mapper.tries;
            string_of_int (Hmn_mapping.Mapping.total_hops mapping);
            Printf.sprintf "%.3f" sim.Hmn_emulation.Exec_sim.makespan_s;
          ])
    (Hmn_core.Registry.all ~max_tries:200 ());
  Hmn_prelude.Pretty_table.print table
