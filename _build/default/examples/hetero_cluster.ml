(* Heterogeneity is the reason the objective is residual-CPU stddev
   rather than a guest head-count: this example builds a deliberately
   lopsided cluster (a few big machines, many small ones), maps the
   same virtual environment with and without the Migration stage, and
   shows how migration rebalances residual CPU across unequal hosts.

   Run with: dune exec examples/hetero_cluster.exe *)

module Resources = Hmn_testbed.Resources

let () =
  let rng = Hmn_rng.Rng.create 11 in
  (* 4 "fat" hosts and 12 "thin" ones on a 4x4 torus. *)
  let hosts =
    Array.init 16 (fun i ->
        if i < 4 then
          Hmn_testbed.Node.host ~name:(Printf.sprintf "fat%d" i)
            ~capacity:(Resources.make ~mips:4000. ~mem_mb:8192. ~stor_gb:4000.)
        else
          Hmn_testbed.Node.host ~name:(Printf.sprintf "thin%d" i)
            ~capacity:(Resources.make ~mips:800. ~mem_mb:2048. ~stor_gb:1000.))
  in
  let cluster =
    Hmn_testbed.Topology.torus ~hosts ~rows:4 ~cols:4 ~link:Hmn_testbed.Link.gigabit
  in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, 0.5)
      ~profile:Hmn_vnet.Workload.high_level ~n:160 ~density:0.04 ~rng ()
  in
  let problem = Hmn_mapping.Problem.make ~cluster ~venv in
  Format.printf "%a@.@." Hmn_mapping.Problem.pp_summary problem;

  let describe label outcome =
    match outcome.Hmn_core.Mapper.result with
    | Error f -> Format.printf "%s: failed (%s)@." label f.reason
    | Ok mapping ->
      let placement = mapping.Hmn_mapping.Mapping.placement in
      let cpus = Hmn_mapping.Objective.residual_cpus placement in
      Format.printf "%s: LBF %.1f, residual CPU min %.0f / max %.0f MIPS@." label
        (Hmn_mapping.Mapping.objective mapping)
        (Array.fold_left Float.min infinity cpus)
        (Array.fold_left Float.max neg_infinity cpus)
  in
  describe "Hosting+Networking only (HN)" (Hmn_core.Hmn.without_migration problem);
  let outcome, report = Hmn_core.Hmn.run_detailed problem in
  describe "Full HMN " outcome;
  match report.Hmn_core.Hmn.migration_stats with
  | Some m ->
    Format.printf
      "migration moved %d guests; the load-balance factor went %.1f -> %.1f@."
      m.Hmn_core.Migration.moves m.Hmn_core.Migration.lbf_before
      m.Hmn_core.Migration.lbf_after
  | None -> ()
