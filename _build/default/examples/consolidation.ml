(* The paper's future-work objective (§6): "one could be interested in
   a mapping whose goal is to minimize the amount of hosts used in each
   emulation". This example contrasts the load-balancing HMN mapping
   with the consolidating CONS mapper on the same instance: HMN spreads
   guests across every host (low LBF), CONS packs them onto as few
   hosts as it can (few active hosts, poor LBF) — two valid answers to
   two different goals.

   Run with: dune exec examples/consolidation.exe *)

let () =
  let rng = Hmn_rng.Rng.create 3 in
  let cluster =
    Hmn_experiments.Scenario.build_cluster Hmn_experiments.Scenario.Switched ~rng
  in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, 0.5)
      ~profile:Hmn_vnet.Workload.high_level ~n:120 ~density:0.02 ~rng ()
  in
  let problem = Hmn_mapping.Problem.make ~cluster ~venv in
  Format.printf "%a@.@." Hmn_mapping.Problem.pp_summary problem;

  let report name mapper =
    match (mapper.Hmn_core.Mapper.run ~rng problem).Hmn_core.Mapper.result with
    | Error f -> Format.printf "%-20s failed: %s@." name f.reason
    | Ok mapping ->
      Format.printf
        "%-20s active hosts: %2d / %2d   LBF: %7.1f MIPS   intra-host links: %d@."
        name
        (Hmn_mapping.Objective.active_hosts mapping.Hmn_mapping.Mapping.placement)
        (Hmn_testbed.Cluster.n_hosts cluster)
        (Hmn_mapping.Mapping.objective mapping)
        (let n = ref 0 in
         Hmn_mapping.Link_map.iter_mapped mapping.Hmn_mapping.Mapping.link_map
           (fun ~vlink:_ p -> if Hmn_routing.Path.is_intra_host p then incr n);
         !n)
  in
  report "HMN (balance)" Hmn_core.Hmn.mapper;
  report "CONS (consolidate)" (Hmn_core.Packing.to_mapper Hmn_core.Packing.Consolidate);
  report "BFD (tight packing)" (Hmn_core.Packing.to_mapper Hmn_core.Packing.Best_fit);
  report "WFD (spreading)" (Hmn_core.Packing.to_mapper Hmn_core.Packing.Worst_fit)
