examples/consolidation.ml: Format Hmn_core Hmn_experiments Hmn_mapping Hmn_rng Hmn_routing Hmn_testbed Hmn_vnet
