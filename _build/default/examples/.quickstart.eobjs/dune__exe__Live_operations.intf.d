examples/live_operations.mli:
