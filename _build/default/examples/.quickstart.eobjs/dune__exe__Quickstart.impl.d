examples/quickstart.ml: Array Format Hmn_core Hmn_graph Hmn_mapping Hmn_testbed Hmn_vnet
