examples/grid_testbed.mli:
