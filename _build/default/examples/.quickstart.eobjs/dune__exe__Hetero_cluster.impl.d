examples/hetero_cluster.ml: Array Float Format Hmn_core Hmn_mapping Hmn_rng Hmn_testbed Hmn_vnet Printf
