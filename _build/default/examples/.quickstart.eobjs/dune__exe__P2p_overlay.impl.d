examples/p2p_overlay.ml: Format Hmn_core Hmn_emulation Hmn_experiments Hmn_mapping Hmn_rng Hmn_testbed Hmn_vnet
