examples/quickstart.mli:
