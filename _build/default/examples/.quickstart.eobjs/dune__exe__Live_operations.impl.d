examples/live_operations.ml: Filename Format Hmn_core Hmn_emulation Hmn_experiments Hmn_io Hmn_mapping Hmn_prelude Hmn_rng Hmn_testbed Hmn_vnet List Sys
