examples/consolidation.mli:
