examples/grid_testbed.ml: Array Format Hmn_core Hmn_emulation Hmn_experiments Hmn_mapping Hmn_prelude Hmn_rng Hmn_vnet List Printf Sys
