examples/hetero_cluster.mli:
