(* Day-two operations on a deployed emulation: save the environment to
   disk, drain a host for maintenance (all its guests migrate and their
   virtual links re-route), rebalance the cluster afterwards, and
   verify constraint validity at every step — the "fully-automated
   emulator" workflow the paper's project targets.

   Run with: dune exec examples/live_operations.exe *)

module Placement = Hmn_mapping.Placement
module Cluster = Hmn_testbed.Cluster

let check mapping label =
  match Hmn_mapping.Constraints.check mapping with
  | [] -> Format.printf "  [ok] %s: mapping valid (LBF %.1f)@." label
      (Hmn_mapping.Mapping.objective mapping)
  | vs ->
    Format.printf "  [!!] %s: %d violations@." label (List.length vs);
    exit 1

let () =
  let rng = Hmn_rng.Rng.create 77 in
  let cluster =
    Hmn_experiments.Scenario.build_cluster Hmn_experiments.Scenario.Torus ~rng
  in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, Hmn_experiments.Setup.fit_fraction)
      ~profile:Hmn_vnet.Workload.high_level ~n:200 ~density:0.02 ~rng ()
  in
  let problem = Hmn_mapping.Problem.make ~cluster ~venv in
  let mapping =
    match (Hmn_core.Hmn.run problem).Hmn_core.Mapper.result with
    | Ok m -> m
    | Error f -> failwith f.Hmn_core.Mapper.reason
  in
  Format.printf "deployed %d guests over %d hosts@."
    (Hmn_vnet.Virtual_env.n_guests venv)
    (Cluster.n_hosts cluster);
  check mapping "initial deployment";

  (* Persist the environment so the experiment is reproducible. *)
  let path = Filename.temp_file "hmn_live" ".json" in
  Hmn_io.Codec.save_bundle ~path mapping;
  Format.printf "  saved bundle to %s (%d bytes)@." path
    (let stats = open_in path in
     let len = in_channel_length stats in
     close_in stats;
     len);
  (match Hmn_io.Codec.load_bundle ~path with
  | Ok reloaded -> check reloaded "reloaded from disk"
  | Error e -> failwith e);
  Sys.remove path;

  (* Keep a snapshot (via the codec) so the day's changes can be
     summarized with a structural diff at the end. *)
  let snapshot =
    match Hmn_io.Codec.mapping_of_json
            ~problem (Hmn_io.Codec.mapping_to_json mapping)
    with
    | Ok m -> m
    | Error e -> failwith e
  in

  (* Host maintenance: drain the busiest host. *)
  let live = Hmn_core.Incremental.create mapping in
  let placement = mapping.Hmn_mapping.Mapping.placement in
  let victim =
    Hmn_prelude.Array_ext.max_by
      (fun h -> float_of_int (Placement.n_guests_on placement ~host:h))
      (Cluster.host_ids cluster)
  in
  Format.printf "draining host %s (%d guests)...@."
    (Cluster.node cluster victim).Hmn_testbed.Node.name
    (Placement.n_guests_on placement ~host:victim);
  (match Hmn_core.Incremental.evacuate_host live ~host:victim with
  | Ok moved -> Format.printf "  moved %d guests (links re-routed)@." moved
  | Error e -> failwith e);
  assert (Placement.n_guests_on placement ~host:victim = 0);
  check mapping "after evacuation";

  (* The drain skewed the load; rebalance. *)
  let before = Hmn_mapping.Mapping.objective mapping in
  let moves = Hmn_core.Incremental.rebalance live in
  Format.printf "rebalance: %d moves, LBF %.1f -> %.1f@." moves before
    (Hmn_mapping.Mapping.objective mapping);
  check mapping "after rebalance";

  (* What changed today, versus the morning snapshot? *)
  let d = Hmn_mapping.Diff.diff snapshot mapping in
  Format.printf "change log: %s@." (Hmn_mapping.Diff.summary d);

  (* And the emulated experiment still runs. *)
  let sim = Hmn_emulation.Exec_sim.run mapping in
  Format.printf "emulated experiment on the updated mapping: %.3f s@."
    sim.Hmn_emulation.Exec_sim.makespan_s
