(* The paper's second use case: testing a P2P protocol ("low-level
   workload") — many thin virtual machines, 20 guests per host, on the
   switched cluster. Shows the full pipeline: generate, map with HMN,
   validate, then run the emulated experiment and report per-stage
   detail.

   Run with: dune exec examples/p2p_overlay.exe *)

let () =
  let rng = Hmn_rng.Rng.create 2009 in
  let cluster =
    Hmn_experiments.Scenario.build_cluster Hmn_experiments.Scenario.Switched ~rng
  in
  let venv =
    Hmn_vnet.Venv_gen.generate
      ~scale_to_fit:(cluster, Hmn_experiments.Setup.fit_fraction)
      ~profile:Hmn_vnet.Workload.low_level ~n:800 ~density:0.01 ~rng ()
  in
  let problem = Hmn_mapping.Problem.make ~cluster ~venv in
  Format.printf "P2P overlay emulation (%d peers on %d hosts):@.  %a@.@."
    (Hmn_vnet.Virtual_env.n_guests venv)
    (Hmn_testbed.Cluster.n_hosts cluster)
    Hmn_mapping.Problem.pp_summary problem;

  let outcome, report = Hmn_core.Hmn.run_detailed problem in
  match outcome.Hmn_core.Mapper.result with
  | Error f -> Format.printf "mapping failed in %s: %s@." f.stage f.reason
  | Ok mapping ->
    Format.printf "HMN stages: hosting %.4fs, migration %.4fs, networking %.4fs@."
      report.Hmn_core.Hmn.hosting_s report.Hmn_core.Hmn.migration_s
      report.Hmn_core.Hmn.networking_s;
    (match report.Hmn_core.Hmn.migration_stats with
    | Some m ->
      Format.printf "migration: %d moves, LBF %.1f -> %.1f@." m.Hmn_core.Migration.moves
        m.Hmn_core.Migration.lbf_before m.Hmn_core.Migration.lbf_after
    | None -> ());
    (match report.Hmn_core.Hmn.networking_stats with
    | Some n ->
      Format.printf
        "networking: %d links routed, %d intra-host, %d A*Prune expansions@."
        n.Hmn_core.Networking.routed n.Hmn_core.Networking.intra_host
        n.Hmn_core.Networking.expanded
    | None -> ());
    assert (Hmn_mapping.Constraints.is_valid mapping);
    Format.printf "%s@." (Hmn_mapping.Report.summary mapping);
    let sim = Hmn_emulation.Exec_sim.run mapping in
    Format.printf
      "emulated BSP experiment: %.3f s makespan, %d events, max host slowdown \
       %.2fx, %d intra-host / %d inter-host messages@."
      sim.Hmn_emulation.Exec_sim.makespan_s sim.Hmn_emulation.Exec_sim.events
      sim.Hmn_emulation.Exec_sim.max_host_slowdown
      sim.Hmn_emulation.Exec_sim.intra_host_messages
      sim.Hmn_emulation.Exec_sim.inter_host_messages;
    (* A P2P protocol is request/response shaped; run the closed-loop
       client-server model too. *)
    let req = Hmn_emulation.Request_sim.run mapping in
    Format.printf
      "emulated RPC experiment: %.3f s, %d requests, mean RTT %.1f ms, max RTT \
       %.1f ms@."
      req.Hmn_emulation.Request_sim.makespan_s
      req.Hmn_emulation.Request_sim.requests_completed
      (1000. *. req.Hmn_emulation.Request_sim.mean_response_s)
      (1000. *. req.Hmn_emulation.Request_sim.max_response_s)
