(* Tests for hmn_emulation: the BSP experiment simulator on hand-sized
   mappings with analytically computable makespans, plus the
   correlation accumulator. *)

module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Resources = Hmn_testbed.Resources
module Guest = Hmn_vnet.Guest
module Vlink = Hmn_vnet.Vlink
module Venv = Hmn_vnet.Virtual_env
module Problem = Hmn_mapping.Problem
module Placement = Hmn_mapping.Placement
module Link_map = Hmn_mapping.Link_map
module Mapping = Hmn_mapping.Mapping
module Path = Hmn_routing.Path
module App = Hmn_emulation.App
module Exec_sim = Hmn_emulation.Exec_sim
module Correlate = Hmn_emulation.Correlate

let check_float = Alcotest.(check (float 1e-9))

(* Two hosts (1000 MIPS each) joined by one 5 ms link. *)
let two_host_cluster () =
  let hosts =
    Array.init 2 (fun i ->
        Node.host
          ~name:(Printf.sprintf "h%d" i)
          ~capacity:(Resources.make ~mips:1000. ~mem_mb:4096. ~stor_gb:1000.))
  in
  Hmn_testbed.Topology.line ~hosts ~link:Link.gigabit

let guest mips = Guest.make ~name:"vm" ~demand:(Resources.make ~mips ~mem_mb:100. ~stor_gb:1.)

(* Builds a mapping with the given per-guest hosts; the single virtual
   link (if guests are separated) is routed over the physical edge. *)
let build_mapping ~guests ~vgraph ~hosts_of =
  let cluster = two_host_cluster () in
  let venv = Venv.create ~guests ~graph:vgraph in
  let problem = Problem.make ~cluster ~venv in
  let placement = Placement.create problem in
  Array.iteri
    (fun g h ->
      match Placement.assign placement ~guest:g ~host:h with
      | Ok () -> ()
      | Error e -> Alcotest.fail e)
    hosts_of;
  let lm = Link_map.create problem in
  for vlink = 0 to Venv.n_vlinks venv - 1 do
    let vs, vd = Venv.endpoints venv vlink in
    let path =
      if hosts_of.(vs) = hosts_of.(vd) then Path.trivial hosts_of.(vs)
      else Path.make ~nodes:[ hosts_of.(vs); hosts_of.(vd) ] ~edges:[ 0 ]
    in
    match Link_map.assign lm ~vlink path with
    | Ok () -> ()
    | Error e -> Alcotest.fail e
  done;
  Mapping.make ~placement ~link_map:lm

let app ?(cpu_model = App.Proportional_share) ?(supersteps = 2) ?(chunk = 0.1)
    ?(msg = 0.01) () =
  App.make ~cpu_model ~supersteps ~chunk_seconds:chunk ~msg_seconds:msg ()

let test_single_guest_proportional () =
  (* One 100-MIPS guest on a 1000-MIPS host runs 10x nominal:
     makespan = K * chunk * (100/1000). *)
  let m =
    build_mapping ~guests:[| guest 100. |] ~vgraph:(Graph.create ~n:1 ())
      ~hosts_of:[| 0 |]
  in
  let r = Exec_sim.run ~app:(app ()) m in
  check_float "makespan" 0.02 r.Exec_sim.makespan_s;
  check_float "no slowdown" 1. r.Exec_sim.max_host_slowdown;
  Alcotest.(check int) "no messages" 0
    (r.Exec_sim.intra_host_messages + r.Exec_sim.inter_host_messages)

let test_single_guest_capped () =
  (* Capped model: the guest is pinned at its 100 MIPS, so each chunk
     takes exactly chunk_seconds. *)
  let m =
    build_mapping ~guests:[| guest 100. |] ~vgraph:(Graph.create ~n:1 ())
      ~hosts_of:[| 0 |]
  in
  let r = Exec_sim.run ~app:(app ~cpu_model:App.Capped_fair_share ()) m in
  check_float "makespan = K * chunk" 0.2 r.Exec_sim.makespan_s

let test_colocated_pair () =
  (* Two 100-MIPS guests sharing a 1000-MIPS host: each runs at 500
     MIPS; intra-host messages are free.
     makespan = K * chunk * (200/1000). *)
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.));
  let m = build_mapping ~guests:[| guest 100.; guest 100. |] ~vgraph:vg ~hosts_of:[| 0; 0 |] in
  let r = Exec_sim.run ~app:(app ()) m in
  check_float "makespan" 0.04 r.Exec_sim.makespan_s;
  Alcotest.(check int) "intra messages (2 per superstep)" 4
    r.Exec_sim.intra_host_messages;
  Alcotest.(check int) "no inter" 0 r.Exec_sim.inter_host_messages

let test_separated_pair () =
  (* Guests on different hosts: each superstep costs compute (0.01) +
     NIC occupancy (0.01) + path latency (0.005). *)
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.));
  let m = build_mapping ~guests:[| guest 100.; guest 100. |] ~vgraph:vg ~hosts_of:[| 0; 1 |] in
  let r = Exec_sim.run ~app:(app ()) m in
  check_float "makespan" (2. *. (0.01 +. 0.01 +. 0.005)) r.Exec_sim.makespan_s;
  Alcotest.(check int) "inter messages" 4 r.Exec_sim.inter_host_messages

let test_colocation_beats_separation () =
  (* The same workload is faster co-located than separated whenever the
     messaging overhead exceeds the added CPU contention — the premise
     of the Hosting stage. *)
  let make hosts_of =
    let vg = Graph.create ~n:2 () in
    ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.));
    build_mapping ~guests:[| guest 100.; guest 100. |] ~vgraph:vg ~hosts_of
  in
  let together = Exec_sim.run ~app:(app ()) (make [| 0; 0 |]) in
  let apart = Exec_sim.run ~app:(app ()) (make [| 0; 1 |]) in
  Alcotest.(check bool) "co-located faster" true
    (together.Exec_sim.makespan_s < apart.Exec_sim.makespan_s)

let test_capped_contention_slows () =
  (* Capped model: two 600-MIPS guests on a 1000-MIPS host exceed
     capacity, so both run at 5/6 speed: makespan = K * chunk * 1.2. *)
  let vg = Graph.create ~n:2 () in
  let m = build_mapping ~guests:[| guest 600.; guest 600. |] ~vgraph:vg ~hosts_of:[| 0; 0 |] in
  let r = Exec_sim.run ~app:(app ~cpu_model:App.Capped_fair_share ()) m in
  check_float "makespan" 0.24 r.Exec_sim.makespan_s;
  check_float "slowdown recorded" 1.2 r.Exec_sim.max_host_slowdown

let test_balance_reduces_makespan () =
  (* Four guests: 2+2 across hosts beats 3+1 under proportional
     sharing (the barrier waits for the loaded host). *)
  let make hosts_of =
    let vg = Graph.create ~n:4 () in
    build_mapping
      ~guests:(Array.init 4 (fun _ -> guest 100.))
      ~vgraph:vg ~hosts_of
  in
  let balanced = Exec_sim.run ~app:(app ()) (make [| 0; 0; 1; 1 |]) in
  let skewed = Exec_sim.run ~app:(app ()) (make [| 0; 0; 0; 1 |]) in
  Alcotest.(check bool) "balanced faster" true
    (balanced.Exec_sim.makespan_s < skewed.Exec_sim.makespan_s)

let test_more_supersteps_scale () =
  let m =
    build_mapping ~guests:[| guest 100. |] ~vgraph:(Graph.create ~n:1 ())
      ~hosts_of:[| 0 |]
  in
  let one = Exec_sim.run ~app:(app ~supersteps:1 ()) m in
  let four = Exec_sim.run ~app:(app ~supersteps:4 ()) m in
  check_float "linear in supersteps" (4. *. one.Exec_sim.makespan_s)
    four.Exec_sim.makespan_s

let test_unrouted_link_rejected () =
  let cluster = two_host_cluster () in
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.));
  let venv = Venv.create ~guests:[| guest 100.; guest 100. |] ~graph:vg in
  let problem = Problem.make ~cluster ~venv in
  let placement = Placement.create problem in
  ignore (Placement.assign placement ~guest:0 ~host:0);
  ignore (Placement.assign placement ~guest:1 ~host:1);
  let m = Mapping.make ~placement ~link_map:(Link_map.create problem) in
  Alcotest.check_raises "unrouted link"
    (Invalid_argument "Exec_sim.run: inter-host virtual link 0 unrouted") (fun () ->
      ignore (Exec_sim.run m))

let test_sims_deterministic () =
  (* Same mapping -> bit-identical simulation results, for both
     models (the DES has no hidden randomness). *)
  let rng = Hmn_rng.Rng.create 55 in
  let cluster =
    Hmn_testbed.Cluster_gen.torus_cluster ~vmm:Hmn_testbed.Vmm.none ~rows:3 ~cols:3
      ~rng ()
  in
  let venv =
    Hmn_vnet.Venv_gen.generate ~scale_to_fit:(cluster, 0.7)
      ~profile:Hmn_vnet.Workload.high_level ~n:30 ~density:0.1 ~rng ()
  in
  let problem = Problem.make ~cluster ~venv in
  match (Hmn_core.Hmn.run problem).Hmn_core.Mapper.result with
  | Error f -> Alcotest.fail f.Hmn_core.Mapper.reason
  | Ok mapping ->
    let a = Exec_sim.run mapping and b = Exec_sim.run mapping in
    check_float "BSP makespan" a.Exec_sim.makespan_s b.Exec_sim.makespan_s;
    Alcotest.(check int) "BSP events" a.Exec_sim.events b.Exec_sim.events;
    let ra = Hmn_emulation.Request_sim.run mapping in
    let rb = Hmn_emulation.Request_sim.run mapping in
    check_float "RPC makespan" ra.Hmn_emulation.Request_sim.makespan_s
      rb.Hmn_emulation.Request_sim.makespan_s

let test_zero_cpu_guest () =
  (* A guest demanding 0 MIPS has zero work and finishes instantly. *)
  let m =
    build_mapping ~guests:[| guest 0. |] ~vgraph:(Graph.create ~n:1 ())
      ~hosts_of:[| 0 |]
  in
  let r = Exec_sim.run ~app:(app ()) m in
  check_float "instant" 0. r.Exec_sim.makespan_s

(* ---- Request_sim ---- *)

module Request_sim = Hmn_emulation.Request_sim

let req_params ?(cpu_model = App.Proportional_share) ?(rounds = 1)
    ?(service = 0.02) () =
  { Request_sim.rounds; service_seconds = service; cpu_model }

let test_request_colocated_pair () =
  (* A and B co-located: zero latency; both serve one 2-MI job at rate
     500 MIPS (two active guests sharing 1000 MIPS): rtt = 0.004. *)
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.));
  let m = build_mapping ~guests:[| guest 100.; guest 100. |] ~vgraph:vg ~hosts_of:[| 0; 0 |] in
  let r = Request_sim.run ~params:(req_params ()) m in
  Alcotest.(check int) "both directions" 2 r.Request_sim.requests_completed;
  check_float "makespan" 0.004 r.Request_sim.makespan_s;
  check_float "mean rtt" 0.004 r.Request_sim.mean_response_s

let test_request_separated_pair () =
  (* Separated: 5 ms each way; each server is alone when serving and
     runs at 10x nominal (proportional): 2 MI / 1000 MIPS = 2 ms.
     rtt = 5 + 2 + 5 = 12 ms. *)
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.));
  let m = build_mapping ~guests:[| guest 100.; guest 100. |] ~vgraph:vg ~hosts_of:[| 0; 1 |] in
  let r = Request_sim.run ~params:(req_params ()) m in
  check_float "makespan" 0.012 r.Request_sim.makespan_s;
  check_float "max rtt" 0.012 r.Request_sim.max_response_s

let test_request_capped_model () =
  (* Capped: the server is pinned at its 100 MIPS: service = 20 ms;
     rtt = 5 + 20 + 5 = 30 ms. *)
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.));
  let m = build_mapping ~guests:[| guest 100.; guest 100. |] ~vgraph:vg ~hosts_of:[| 0; 1 |] in
  let r = Request_sim.run ~params:(req_params ~cpu_model:App.Capped_fair_share ()) m in
  check_float "makespan" 0.03 r.Request_sim.makespan_s

let test_request_rounds_scale () =
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.));
  let m = build_mapping ~guests:[| guest 100.; guest 100. |] ~vgraph:vg ~hosts_of:[| 0; 1 |] in
  let one = Request_sim.run ~params:(req_params ~rounds:1 ()) m in
  let three = Request_sim.run ~params:(req_params ~rounds:3 ()) m in
  Alcotest.(check int) "3x requests" (3 * one.Request_sim.requests_completed)
    three.Request_sim.requests_completed;
  check_float "closed loop: linear makespan" (3. *. one.Request_sim.makespan_s)
    three.Request_sim.makespan_s

let test_request_hub_queueing () =
  (* A star: the hub serves every leaf, so requests queue FIFO and the
     max response time exceeds an isolated pair's. *)
  let n = 5 in
  let vg = Graph.create ~n () in
  for leaf = 1 to n - 1 do
    ignore (Graph.add_edge vg 0 leaf (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.))
  done;
  let m =
    build_mapping
      ~guests:(Array.init n (fun _ -> guest 100.))
      ~vgraph:vg
      ~hosts_of:(Array.init n (fun i -> if i = 0 then 0 else 1))
  in
  let r = Request_sim.run ~params:(req_params ~cpu_model:App.Capped_fair_share ()) m in
  (* An isolated capped pair has rtt 0.03; the hub's FIFO makes the
     last leaf wait for the previous services. *)
  Alcotest.(check bool) "queueing visible" true (r.Request_sim.max_response_s > 0.03 +. 1e-9);
  Alcotest.(check int) "all answered" (2 * (n - 1)) r.Request_sim.requests_completed

let test_request_unrouted_rejected () =
  let cluster = two_host_cluster () in
  let vg = Graph.create ~n:2 () in
  ignore (Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:10. ~latency_ms:40.));
  let venv = Venv.create ~guests:[| guest 100.; guest 100. |] ~graph:vg in
  let problem = Problem.make ~cluster ~venv in
  let placement = Placement.create problem in
  ignore (Placement.assign placement ~guest:0 ~host:0);
  ignore (Placement.assign placement ~guest:1 ~host:1);
  let m = Mapping.make ~placement ~link_map:(Link_map.create problem) in
  Alcotest.check_raises "unrouted"
    (Invalid_argument "Request_sim.run: inter-host virtual link 0 unrouted")
    (fun () -> ignore (Request_sim.run m))

let prop_request_sim_finishes =
  QCheck.Test.make ~name:"request simulation always drains on valid mappings"
    ~count:20 QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 300) in
      let cluster =
        Hmn_testbed.Cluster_gen.torus_cluster ~vmm:Hmn_testbed.Vmm.none ~rows:3
          ~cols:3 ~rng ()
      in
      let venv =
        Hmn_vnet.Venv_gen.generate ~scale_to_fit:(cluster, 0.7)
          ~profile:Hmn_vnet.Workload.high_level ~n:25 ~density:0.1 ~rng ()
      in
      let problem = Problem.make ~cluster ~venv in
      match (Hmn_core.Hmn.run problem).Hmn_core.Mapper.result with
      | Error _ -> true
      | Ok mapping ->
        let r = Request_sim.run mapping in
        Float.is_finite r.Request_sim.makespan_s
        && r.Request_sim.requests_completed
           = 2 * Request_sim.default_params.Request_sim.rounds
             * Hmn_vnet.Virtual_env.n_vlinks venv)

(* ---- Correlate ---- *)

let test_correlate_basic () =
  let c = Correlate.create () in
  List.iter
    (fun (o, t) -> Correlate.observe c ~group:"g1" ~objective:o ~makespan_s:t)
    [ (1., 1.); (2., 2.); (3., 3.) ];
  Alcotest.(check int) "count" 3 (Correlate.count c);
  check_float "perfect pearson" 1. (Correlate.pearson c);
  check_float "perfect spearman" 1. (Correlate.spearman c)

let test_correlate_within_groups () =
  let c = Correlate.create () in
  (* Two groups, each internally perfectly correlated but offset so the
     pooled correlation is weaker. *)
  List.iter
    (fun (o, t) -> Correlate.observe c ~group:"a" ~objective:o ~makespan_s:t)
    [ (1., 10.); (2., 11.); (3., 12.) ];
  List.iter
    (fun (o, t) -> Correlate.observe c ~group:"b" ~objective:o ~makespan_s:t)
    [ (100., 1.); (200., 2.); (300., 3.) ];
  let within = Correlate.within_group c in
  Alcotest.(check int) "two groups" 2 (List.length within);
  List.iter (fun (_, n, r) ->
      Alcotest.(check int) "group size" 3 n;
      check_float "perfect within" 1. r)
    within;
  (match Correlate.median_within_group c with
  | Some r -> check_float "median" 1. r
  | None -> Alcotest.fail "expected a median");
  Alcotest.(check bool) "pooled weaker" true (Correlate.pearson c < 1.)

let test_correlate_small_groups_skipped () =
  let c = Correlate.create () in
  Correlate.observe c ~group:"tiny" ~objective:1. ~makespan_s:1.;
  Correlate.observe c ~group:"tiny" ~objective:2. ~makespan_s:2.;
  Alcotest.(check int) "group below threshold skipped" 0
    (List.length (Correlate.within_group c));
  Alcotest.(check bool) "no median" true (Correlate.median_within_group c = None);
  Alcotest.(check int) "observations kept" 2 (Array.length (Correlate.observations c))

(* ---- property: makespan behaves monotonically in load ---- *)

let prop_makespan_positive_and_finite =
  QCheck.Test.make ~name:"simulated makespans are finite and non-negative" ~count:30
    QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 100) in
      let cluster =
        Hmn_testbed.Cluster_gen.torus_cluster ~vmm:Hmn_testbed.Vmm.none ~rows:3
          ~cols:3 ~rng ()
      in
      let venv =
        Hmn_vnet.Venv_gen.generate ~scale_to_fit:(cluster, 0.7)
          ~profile:Hmn_vnet.Workload.high_level ~n:30 ~density:0.1 ~rng ()
      in
      let problem = Problem.make ~cluster ~venv in
      match (Hmn_core.Hmn.run problem).Hmn_core.Mapper.result with
      | Error _ -> true
      | Ok mapping ->
        let r = Exec_sim.run mapping in
        Float.is_finite r.Exec_sim.makespan_s
        && r.Exec_sim.makespan_s >= 0.
        && r.Exec_sim.max_host_slowdown >= 1.)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_emulation"
    [
      ( "exec_sim",
        [
          Alcotest.test_case "single guest proportional" `Quick
            test_single_guest_proportional;
          Alcotest.test_case "single guest capped" `Quick test_single_guest_capped;
          Alcotest.test_case "co-located pair" `Quick test_colocated_pair;
          Alcotest.test_case "separated pair" `Quick test_separated_pair;
          Alcotest.test_case "co-location wins" `Quick test_colocation_beats_separation;
          Alcotest.test_case "capped contention" `Quick test_capped_contention_slows;
          Alcotest.test_case "balance reduces makespan" `Quick
            test_balance_reduces_makespan;
          Alcotest.test_case "supersteps scale" `Quick test_more_supersteps_scale;
          Alcotest.test_case "unrouted rejected" `Quick test_unrouted_link_rejected;
          Alcotest.test_case "deterministic" `Quick test_sims_deterministic;
          Alcotest.test_case "zero-CPU guest" `Quick test_zero_cpu_guest;
        ] );
      ( "request_sim",
        [
          Alcotest.test_case "co-located pair" `Quick test_request_colocated_pair;
          Alcotest.test_case "separated pair" `Quick test_request_separated_pair;
          Alcotest.test_case "capped model" `Quick test_request_capped_model;
          Alcotest.test_case "rounds scale" `Quick test_request_rounds_scale;
          Alcotest.test_case "hub queueing" `Quick test_request_hub_queueing;
          Alcotest.test_case "unrouted rejected" `Quick test_request_unrouted_rejected;
          QCheck_alcotest.to_alcotest prop_request_sim_finishes;
        ] );
      ( "correlate",
        [
          Alcotest.test_case "basic" `Quick test_correlate_basic;
          Alcotest.test_case "within groups" `Quick test_correlate_within_groups;
          Alcotest.test_case "small groups skipped" `Quick
            test_correlate_small_groups_skipped;
        ] );
      ("properties", [ q prop_makespan_positive_and_finite ]);
    ]
