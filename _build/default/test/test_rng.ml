(* Tests for hmn_rng: generator determinism, stream independence,
   distribution ranges and moments, sampling utilities. *)

module Rng = Hmn_rng.Rng
module Dist = Hmn_rng.Dist
module Sample = Hmn_rng.Sample

let test_splitmix_deterministic () =
  let a = Hmn_rng.Splitmix64.create 1L and b = Hmn_rng.Splitmix64.create 1L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Hmn_rng.Splitmix64.next a)
      (Hmn_rng.Splitmix64.next b)
  done

let test_splitmix_known_value () =
  (* Reference value from the SplitMix64 paper's sequence for seed 0:
     first output is 0xE220A8397B1DCDAF. *)
  let g = Hmn_rng.Splitmix64.create 0L in
  Alcotest.(check int64) "published first output" 0xE220A8397B1DCDAFL
    (Hmn_rng.Splitmix64.next g)

let test_splitmix_bound () =
  let g = Hmn_rng.Splitmix64.create 7L in
  for _ = 1 to 1000 do
    let x = Hmn_rng.Splitmix64.next_in g ~bound:10 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 10)
  done;
  Alcotest.check_raises "bound 0" (Invalid_argument "Splitmix64.next_in: bound <= 0")
    (fun () -> ignore (Hmn_rng.Splitmix64.next_in g ~bound:0))

let test_xoshiro_deterministic () =
  let a = Hmn_rng.Xoshiro256ss.create 42L and b = Hmn_rng.Xoshiro256ss.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Hmn_rng.Xoshiro256ss.next a)
      (Hmn_rng.Xoshiro256ss.next b)
  done

let test_xoshiro_copy_independent () =
  let a = Hmn_rng.Xoshiro256ss.create 42L in
  let b = Hmn_rng.Xoshiro256ss.copy a in
  let xa = Hmn_rng.Xoshiro256ss.next a in
  let xb = Hmn_rng.Xoshiro256ss.next b in
  Alcotest.(check int64) "copy continues identically" xa xb;
  ignore (Hmn_rng.Xoshiro256ss.next a);
  (* advancing a must not affect b *)
  let b' = Hmn_rng.Xoshiro256ss.copy b in
  Alcotest.(check int64) "b unaffected" (Hmn_rng.Xoshiro256ss.next b)
    (Hmn_rng.Xoshiro256ss.next b')

let test_xoshiro_jump_changes_stream () =
  let a = Hmn_rng.Xoshiro256ss.create 42L in
  let b = Hmn_rng.Xoshiro256ss.create 42L in
  Hmn_rng.Xoshiro256ss.jump b;
  let differs = ref false in
  for _ = 1 to 16 do
    if Hmn_rng.Xoshiro256ss.next a <> Hmn_rng.Xoshiro256ss.next b then differs := true
  done;
  Alcotest.(check bool) "jumped stream differs" true !differs

let test_rng_float_range () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng in
    Alcotest.(check bool) "in [0,1)" true (x >= 0. && x < 1.)
  done

let test_rng_int_uniformity () =
  (* chi-square-lite: all 10 buckets within 3x of each other over 10k draws *)
  let rng = Rng.create 17 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let k = Rng.int rng ~bound:10 in
    counts.(k) <- counts.(k) + 1
  done;
  let mn = Array.fold_left min max_int counts in
  let mx = Array.fold_left max 0 counts in
  Alcotest.(check bool) "roughly uniform" true (mn > 0 && mx < 3 * mn)

let test_rng_int_in () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int_in rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "inclusive range" true (x >= -5 && x <= 5)
  done;
  Alcotest.(check int) "degenerate range" 7 (Rng.int_in rng ~lo:7 ~hi:7);
  Alcotest.check_raises "inverted" (Invalid_argument "Rng.int_in: lo > hi")
    (fun () -> ignore (Rng.int_in rng ~lo:1 ~hi:0))

let test_rng_split_independence () =
  (* The child stream must not track the parent stream. *)
  let p1 = Rng.create 9 in
  let c1 = Rng.split p1 in
  let p2 = Rng.create 9 in
  let c2 = Rng.split p2 in
  Alcotest.(check bool) "same-seed splits agree" true
    (Rng.int c1 ~bound:1_000_000 = Rng.int c2 ~bound:1_000_000);
  let overlap = ref 0 in
  for _ = 1 to 100 do
    if Rng.int p1 ~bound:1000 = Rng.int c1 ~bound:1000 then incr overlap
  done;
  Alcotest.(check bool) "parent/child do not mirror" true (!overlap < 20)

let test_dist_uniform_range () =
  let rng = Rng.create 23 in
  let d = Dist.Uniform (10., 20.) in
  for _ = 1 to 1000 do
    let x = Dist.draw d rng in
    Alcotest.(check bool) "in range" true (x >= 10. && x < 20.)
  done

let test_dist_uniform_mean () =
  let rng = Rng.create 23 in
  let d = Dist.Uniform (0., 1.) in
  let xs = Array.init 20_000 (fun _ -> Dist.draw d rng) in
  let mean = Hmn_prelude.Float_ext.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.02)

let test_dist_normal_moments () =
  let rng = Rng.create 29 in
  let d = Dist.Normal (5., 2.) in
  let xs = Array.init 20_000 (fun _ -> Dist.draw d rng) in
  let mean = Hmn_prelude.Float_ext.mean xs in
  let sd =
    sqrt
      (Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. xs
      /. float_of_int (Array.length xs))
  in
  Alcotest.(check bool) "mean near 5" true (Float.abs (mean -. 5.) < 0.1);
  Alcotest.(check bool) "sd near 2" true (Float.abs (sd -. 2.) < 0.1)

let test_dist_truncated_normal () =
  let rng = Rng.create 31 in
  let d = Dist.Truncated_normal (0., 10., -1., 1.) in
  for _ = 1 to 1000 do
    let x = Dist.draw d rng in
    Alcotest.(check bool) "within bounds" true (x >= -1. && x <= 1.)
  done

let test_dist_exponential () =
  let rng = Rng.create 37 in
  let d = Dist.Exponential 2. in
  let xs = Array.init 20_000 (fun _ -> Dist.draw d rng) in
  Alcotest.(check bool) "all non-negative" true (Array.for_all (fun x -> x >= 0.) xs);
  let mean = Hmn_prelude.Float_ext.mean xs in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let test_dist_errors_and_mean () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "negative sigma" (Invalid_argument "Dist.draw: negative sigma")
    (fun () -> ignore (Dist.draw (Dist.Normal (0., -1.)) rng));
  Alcotest.check_raises "bad rate" (Invalid_argument "Dist.draw: non-positive rate")
    (fun () -> ignore (Dist.draw (Dist.Exponential 0.) rng));
  Alcotest.(check (float 1e-9)) "uniform mean" 15. (Dist.mean (Dist.Uniform (10., 20.)));
  Alcotest.(check (float 1e-9)) "constant" 3. (Dist.draw (Dist.Constant 3.) rng)

let test_shuffle_permutation () =
  let rng = Rng.create 41 in
  let xs = Array.init 50 Fun.id in
  let shuffled = Sample.shuffled_copy rng xs in
  Alcotest.(check (array int)) "original untouched" (Array.init 50 Fun.id) xs;
  let sorted = Array.copy shuffled in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" xs sorted

let test_choice_and_choose_k () =
  let rng = Rng.create 43 in
  let xs = [| 1; 2; 3; 4; 5 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "choice member" true (Array.mem (Sample.choice rng xs) xs)
  done;
  let k = Sample.choose_k rng 3 xs in
  Alcotest.(check int) "k elements" 3 (Array.length k);
  let dedup = List.sort_uniq compare (Array.to_list k) in
  Alcotest.(check int) "distinct" 3 (List.length dedup);
  Alcotest.check_raises "k too large" (Invalid_argument "Sample.choose_k: bad k")
    (fun () -> ignore (Sample.choose_k rng 6 xs))

let test_weighted_index () =
  let rng = Rng.create 47 in
  let counts = Array.make 3 0 in
  for _ = 1 to 10_000 do
    let i = Sample.weighted_index rng [| 1.; 0.; 3. |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check int) "zero weight never drawn" 0 counts.(1);
  Alcotest.(check bool) "3:1 ratio approximately" true
    (float_of_int counts.(2) /. float_of_int counts.(0) > 2.);
  Alcotest.check_raises "all zero"
    (Invalid_argument "Sample.weighted_index: all-zero weights") (fun () ->
      ignore (Sample.weighted_index rng [| 0.; 0. |]))

(* ---- properties ---- *)

let prop_int_in_bounds =
  QCheck.Test.make ~name:"Rng.int stays below its bound" ~count:200
    QCheck.(pair small_nat (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create seed in
      let ok = ref true in
      for _ = 1 to 50 do
        let x = Rng.int rng ~bound in
        if x < 0 || x >= bound then ok := false
      done;
      !ok)

let prop_float_in_bounds =
  QCheck.Test.make ~name:"Rng.float_in stays inside [lo, hi)" ~count:200
    QCheck.(triple small_nat (float_range (-100.) 100.) (float_range 0.001 100.))
    (fun (seed, lo, width) ->
      let rng = Rng.create seed in
      let hi = lo +. width in
      let x = Rng.float_in rng ~lo ~hi in
      x >= lo && x < hi)

let prop_shuffle_multiset =
  QCheck.Test.make ~name:"shuffle preserves the multiset" ~count:200
    QCheck.(pair small_nat (array_of_size Gen.(int_range 0 30) small_int))
    (fun (seed, xs) ->
      let rng = Rng.create seed in
      let copy = Sample.shuffled_copy rng xs in
      List.sort compare (Array.to_list copy) = List.sort compare (Array.to_list xs))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_rng"
    [
      ( "splitmix64",
        [
          Alcotest.test_case "deterministic" `Quick test_splitmix_deterministic;
          Alcotest.test_case "known value" `Quick test_splitmix_known_value;
          Alcotest.test_case "bounded" `Quick test_splitmix_bound;
        ] );
      ( "xoshiro256**",
        [
          Alcotest.test_case "deterministic" `Quick test_xoshiro_deterministic;
          Alcotest.test_case "copy" `Quick test_xoshiro_copy_independent;
          Alcotest.test_case "jump" `Quick test_xoshiro_jump_changes_stream;
        ] );
      ( "rng",
        [
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int uniformity" `Quick test_rng_int_uniformity;
          Alcotest.test_case "int_in" `Quick test_rng_int_in;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
        ] );
      ( "dist",
        [
          Alcotest.test_case "uniform range" `Quick test_dist_uniform_range;
          Alcotest.test_case "uniform mean" `Quick test_dist_uniform_mean;
          Alcotest.test_case "normal moments" `Quick test_dist_normal_moments;
          Alcotest.test_case "truncated normal" `Quick test_dist_truncated_normal;
          Alcotest.test_case "exponential" `Quick test_dist_exponential;
          Alcotest.test_case "errors and means" `Quick test_dist_errors_and_mean;
        ] );
      ( "sample",
        [
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "choice / choose_k" `Quick test_choice_and_choose_k;
          Alcotest.test_case "weighted index" `Quick test_weighted_index;
        ] );
      ( "properties",
        [ q prop_int_in_bounds; q prop_float_in_bounds; q prop_shuffle_multiset ] );
    ]
