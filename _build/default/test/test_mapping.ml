(* Tests for hmn_mapping: problems, placements, link maps, the
   objective (Eqs. 10-12), the constraint validator (Eqs. 1-9) and the
   reporting helpers. *)

module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Node = Hmn_testbed.Node
module Link = Hmn_testbed.Link
module Resources = Hmn_testbed.Resources
module Guest = Hmn_vnet.Guest
module Vlink = Hmn_vnet.Vlink
module Venv = Hmn_vnet.Virtual_env
module Problem = Hmn_mapping.Problem
module Placement = Hmn_mapping.Placement
module Link_map = Hmn_mapping.Link_map
module Mapping = Hmn_mapping.Mapping
module Objective = Hmn_mapping.Objective
module Constraints = Hmn_mapping.Constraints
module Path = Hmn_routing.Path

(* Fixture: 3 hosts on a line (0-1-2), 4 guests in a star around guest
   0 (0-1, 0-2, 0-3). *)
let fixture () =
  let host i mips =
    Node.host
      ~name:(Printf.sprintf "h%d" i)
      ~capacity:(Resources.make ~mips ~mem_mb:1000. ~stor_gb:100.)
  in
  let hosts = [| host 0 1000.; host 1 2000.; host 2 3000. |] in
  let cluster = Hmn_testbed.Topology.line ~hosts ~link:Link.gigabit in
  let guest i = Guest.make ~name:(Printf.sprintf "vm%d" i)
      ~demand:(Resources.make ~mips:100. ~mem_mb:200. ~stor_gb:10.) in
  let guests = Array.init 4 guest in
  let vg = Graph.create ~n:4 () in
  let vlink = Vlink.make ~bandwidth_mbps:10. ~latency_ms:40. in
  let l1 = Graph.add_edge vg 0 1 vlink in
  let l2 = Graph.add_edge vg 0 2 vlink in
  let l3 = Graph.add_edge vg 0 3 vlink in
  let venv = Venv.create ~guests ~graph:vg in
  (Problem.make ~cluster ~venv, l1, l2, l3)

let phys_edge problem u v =
  match Graph.find_edge (Cluster.graph problem.Problem.cluster) u v with
  | Some e -> e
  | None -> Alcotest.failf "no physical edge %d-%d" u v

(* ---- Problem ---- *)

let test_problem_basics () =
  let problem, _, _, _ = fixture () in
  Alcotest.(check (float 1e-9)) "ratio" (4. /. 3.)
    (Problem.guests_per_host_ratio problem);
  Alcotest.(check (option string)) "feasible screen" None
    (Problem.obviously_infeasible problem)

let test_problem_infeasible_screen () =
  let problem, _, _, _ = fixture () in
  let big =
    Guest.make ~name:"big"
      ~demand:(Resources.make ~mips:0. ~mem_mb:1e7 ~stor_gb:0.)
  in
  let vg = Graph.create ~n:1 () in
  let venv = Venv.create ~guests:[| big |] ~graph:vg in
  let p = Problem.make ~cluster:problem.Problem.cluster ~venv in
  Alcotest.(check bool) "memory screen trips" true
    (Problem.obviously_infeasible p <> None)

(* ---- Placement ---- *)

let test_placement_assign () =
  let problem, _, _, _ = fixture () in
  let p = Placement.create problem in
  Alcotest.(check int) "none assigned" 0 (Placement.n_assigned p);
  Alcotest.(check bool) "assign ok" true (Result.is_ok (Placement.assign p ~guest:0 ~host:1));
  Alcotest.(check (option int)) "host_of" (Some 1) (Placement.host_of p ~guest:0);
  Alcotest.(check bool) "double assign" true
    (Result.is_error (Placement.assign p ~guest:0 ~host:2));
  Alcotest.(check (list int)) "guests_on" [ 0 ] (Placement.guests_on p ~host:1);
  Alcotest.(check (float 1e-9)) "residual cpu" 1900. (Placement.residual_cpu p ~host:1);
  Alcotest.(check (float 1e-9)) "residual mem" 800.
    (Placement.residual p ~host:1).Resources.mem_mb

let test_placement_cpu_not_constraint () =
  let problem, _, _, _ = fixture () in
  let p = Placement.create problem in
  (* Host 0 has 1000 MIPS; 4 guests of 100 MIPS each fit by memory and
     storage, so all assignments succeed even as CPU oversubscribes. *)
  for g = 0 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "guest %d" g)
      true
      (Result.is_ok (Placement.assign p ~guest:g ~host:0))
  done;
  Alcotest.(check bool) "all assigned" true (Placement.all_assigned p);
  Alcotest.(check (float 1e-9)) "cpu residual 600" 600.
    (Placement.residual_cpu p ~host:0)

let test_placement_memory_gates () =
  let problem, _, _, _ = fixture () in
  let p = Placement.create problem in
  (* Five 200 MB guests exhaust a 1000 MB host; the fixture only has
     four, so shrink the host by filling it first. *)
  for g = 0 to 3 do
    ignore (Placement.assign p ~guest:g ~host:0)
  done;
  Alcotest.(check (float 1e-9)) "mem exhausted to 200" 200.
    (Placement.residual p ~host:0).Resources.mem_mb;
  (* Unassign and try a fresh guest flow through migrate. *)
  Alcotest.(check bool) "unassign" true (Result.is_ok (Placement.unassign p ~guest:3));
  Alcotest.(check int) "count" 3 (Placement.n_assigned p)

let test_placement_migrate_rollback () =
  let problem, _, _, _ = fixture () in
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:0);
  (* Fill host 1's memory so the migration target cannot fit. *)
  ignore (Placement.assign p ~guest:1 ~host:1);
  ignore (Placement.assign p ~guest:2 ~host:1);
  ignore (Placement.assign p ~guest:3 ~host:1);
  (* Host 1 residual memory: 1000 - 600 = 400; guest 0 needs 200 ->
     fits. Make it not fit by migrating onto host 1 twice. *)
  Alcotest.(check bool) "first migrate ok" true
    (Result.is_ok (Placement.migrate p ~guest:0 ~host:1));
  Alcotest.(check (option int)) "moved" (Some 1) (Placement.host_of p ~guest:0);
  (* Now host 1 has 4 guests (800 MB); host 0 is empty. Migrate guest 0
     to host 2, then fill host 0 and fail a migration, checking
     rollback. *)
  Alcotest.(check bool) "migrate to h2" true
    (Result.is_ok (Placement.migrate p ~guest:0 ~host:2));
  Alcotest.(check (option int)) "at h2" (Some 2) (Placement.host_of p ~guest:0)

let test_placement_migrate_unfit_restores () =
  let problem, _, _, _ = fixture () in
  (* Shrink: a special venv where one guest is huge. *)
  let guests =
    [|
      Guest.make ~name:"big" ~demand:(Resources.make ~mips:1. ~mem_mb:900. ~stor_gb:1.);
      Guest.make ~name:"small" ~demand:(Resources.make ~mips:1. ~mem_mb:200. ~stor_gb:1.);
    |]
  in
  let vg = Graph.create ~n:2 () in
  let venv = Venv.create ~guests ~graph:vg in
  let problem2 = Problem.make ~cluster:problem.Problem.cluster ~venv in
  let p = Placement.create problem2 in
  ignore (Placement.assign p ~guest:0 ~host:0);
  ignore (Placement.assign p ~guest:1 ~host:1);
  (* big (900 MB) cannot join host 1 whose residual is 800 MB. *)
  Alcotest.(check bool) "migrate fails" true
    (Result.is_error (Placement.migrate p ~guest:0 ~host:1));
  Alcotest.(check (option int)) "restored to original host" (Some 0)
    (Placement.host_of p ~guest:0);
  Alcotest.(check (float 1e-9)) "residual restored" 100.
    (Placement.residual p ~host:0).Resources.mem_mb

let test_placement_copy_independent () =
  let problem, _, _, _ = fixture () in
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:0);
  let c = Placement.copy p in
  ignore (Placement.assign c ~guest:1 ~host:1);
  Alcotest.(check int) "original unchanged" 1 (Placement.n_assigned p);
  Alcotest.(check int) "copy advanced" 2 (Placement.n_assigned c)

let test_placement_switch_rejected () =
  (* Switched topology: switches cannot receive guests. *)
  let hosts =
    Array.init 3 (fun i ->
        Node.host
          ~name:(Printf.sprintf "h%d" i)
          ~capacity:(Resources.make ~mips:1000. ~mem_mb:1000. ~stor_gb:100.))
  in
  let cluster = Hmn_testbed.Topology.switched ~hosts ~ports:8 ~link:Link.gigabit in
  let guests = [| Guest.make ~name:"vm" ~demand:Resources.zero |] in
  let venv = Venv.create ~guests ~graph:(Graph.create ~n:1 ()) in
  let p = Placement.create (Problem.make ~cluster ~venv) in
  Alcotest.(check bool) "switch rejected" true
    (Result.is_error (Placement.assign p ~guest:0 ~host:3));
  Alcotest.(check bool) "fits false on switch" false (Placement.fits p ~guest:0 ~host:3)

(* ---- Objective ---- *)

let test_objective_known_value () =
  let problem, _, _, _ = fixture () in
  let p = Placement.create problem in
  (* Empty placement: residuals are capacities 1000/2000/3000.
     mean 2000, variance (1e6+0+1e6)/3. *)
  Alcotest.(check (float 1e-6)) "empty LBF" (sqrt (2e6 /. 3.))
    (Objective.load_balance_factor p);
  ignore (Placement.assign p ~guest:0 ~host:2);
  ignore (Placement.assign p ~guest:1 ~host:2);
  (* Residuals 1000/2000/2800. *)
  let cpus = Objective.residual_cpus p in
  Alcotest.(check (array (float 1e-9))) "residuals" [| 1000.; 2000.; 2800. |] cpus

let test_objective_after_migration_matches_real () =
  let problem, _, _, _ = fixture () in
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:0);
  ignore (Placement.assign p ~guest:1 ~host:0);
  ignore (Placement.assign p ~guest:2 ~host:1);
  ignore (Placement.assign p ~guest:3 ~host:2);
  match Objective.load_balance_after_migration p ~guest:0 ~host:2 with
  | None -> Alcotest.fail "expected a prediction"
  | Some predicted ->
    ignore (Placement.migrate p ~guest:0 ~host:2);
    Alcotest.(check (float 1e-9)) "prediction matches reality" predicted
      (Objective.load_balance_factor p)

let test_objective_after_migration_edge_cases () =
  let problem, _, _, _ = fixture () in
  let p = Placement.create problem in
  Alcotest.(check (option (float 0.))) "unassigned guest" None
    (Objective.load_balance_after_migration p ~guest:0 ~host:1);
  ignore (Placement.assign p ~guest:0 ~host:1);
  Alcotest.(check (option (float 0.))) "same host" None
    (Objective.load_balance_after_migration p ~guest:0 ~host:1)

let test_active_hosts_and_oversubscription () =
  let problem, _, _, _ = fixture () in
  let p = Placement.create problem in
  Alcotest.(check int) "no active" 0 (Objective.active_hosts p);
  for g = 0 to 3 do
    ignore (Placement.assign p ~guest:g ~host:0)
  done;
  Alcotest.(check int) "one active" 1 (Objective.active_hosts p);
  Alcotest.(check (float 1e-9)) "no oversubscription (600 residual)" 0.
    (Objective.cpu_oversubscription p)

(* ---- Link_map ---- *)

let test_link_map () =
  let problem, l1, _, _ = fixture () in
  let lm = Link_map.create problem in
  Alcotest.(check int) "none mapped" 0 (Link_map.n_mapped lm);
  let e01 = phys_edge problem 0 1 in
  let path = Path.make ~nodes:[ 0; 1 ] ~edges:[ e01 ] in
  (match Link_map.assign lm ~vlink:l1 path with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check int) "one mapped" 1 (Link_map.n_mapped lm);
  Alcotest.(check (float 1e-9)) "bandwidth reserved" 990.
    (Hmn_routing.Residual.available (Link_map.residual lm) e01);
  Alcotest.(check bool) "double assign" true
    (Result.is_error (Link_map.assign lm ~vlink:l1 path));
  (match Link_map.unassign lm ~vlink:l1 with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  Alcotest.(check (float 1e-9)) "bandwidth released" 1000.
    (Hmn_routing.Residual.available (Link_map.residual lm) e01);
  Alcotest.(check bool) "unassign twice" true
    (Result.is_error (Link_map.unassign lm ~vlink:l1))

(* ---- Constraints ---- *)

(* Builds a fully valid mapping of the fixture: all guests on distinct
   hosts where possible, each virtual link routed on the line. *)
let valid_mapping () =
  let problem, l1, l2, l3 = fixture () in
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:1);
  ignore (Placement.assign p ~guest:1 ~host:0);
  ignore (Placement.assign p ~guest:2 ~host:2);
  ignore (Placement.assign p ~guest:3 ~host:1);
  let lm = Link_map.create problem in
  let e01 = phys_edge problem 0 1 and e12 = phys_edge problem 1 2 in
  (* vm0@1 - vm1@0 over edge 1-0; vm0@1 - vm2@2 over edge 1-2;
     vm0@1 - vm3@1 intra-host. *)
  (match Link_map.assign lm ~vlink:l1 (Path.make ~nodes:[ 1; 0 ] ~edges:[ e01 ]) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Link_map.assign lm ~vlink:l2 (Path.make ~nodes:[ 1; 2 ] ~edges:[ e12 ]) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Link_map.assign lm ~vlink:l3 (Path.trivial 1) with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (problem, Mapping.make ~placement:p ~link_map:lm)

let test_constraints_valid () =
  let _, m = valid_mapping () in
  Alcotest.(check bool) "valid" true (Constraints.is_valid m);
  Alcotest.(check int) "no violations" 0 (List.length (Constraints.check m))

let test_constraints_unassigned () =
  let problem, l1, l2, l3 = fixture () in
  ignore (l1, l2, l3);
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:0);
  let m = Mapping.make ~placement:p ~link_map:(Link_map.create problem) in
  let vs = Constraints.check m in
  Alcotest.(check int) "three unassigned" 3
    (List.length
       (List.filter (function Constraints.Unassigned_guest _ -> true | _ -> false) vs))

let test_constraints_unmapped_link () =
  let problem, l1, _, _ = fixture () in
  ignore l1;
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:0);
  ignore (Placement.assign p ~guest:1 ~host:1);
  ignore (Placement.assign p ~guest:2 ~host:0);
  ignore (Placement.assign p ~guest:3 ~host:0);
  let m = Mapping.make ~placement:p ~link_map:(Link_map.create problem) in
  let vs = Constraints.check m in
  (* vm0@0-vm1@1 is inter-host and unmapped; the other two links are
     intra-host and fine without paths. *)
  Alcotest.(check int) "one unmapped" 1
    (List.length
       (List.filter (function Constraints.Unmapped_vlink _ -> true | _ -> false) vs))

let test_constraints_wrong_endpoint () =
  let problem, m = valid_mapping () in
  ignore problem;
  (* Mutate the placement so an existing path no longer starts at the
     right host. *)
  ignore (Placement.migrate m.Mapping.placement ~guest:1 ~host:2);
  let vs = Constraints.check m in
  Alcotest.(check bool) "bad path reported" true
    (List.exists (function Constraints.Bad_path _ -> true | _ -> false) vs)

let test_constraints_latency_violation () =
  let problem, l1, _, _ = fixture () in
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:0);
  ignore (Placement.assign p ~guest:1 ~host:2);
  ignore (Placement.assign p ~guest:2 ~host:0);
  ignore (Placement.assign p ~guest:3 ~host:0);
  (* Replace vlink l1's latency bound with something tiny by building a
     venv variant is heavy; instead map it over a path whose latency
     (10 ms) is fine but check the validator's arithmetic through a
     tight bound link: build a long path 0-1-2 for a 40 ms bound — ok;
     so instead lower the bound by constructing a new fixture with a
     5 ms bound. *)
  ignore (p, l1);
  let guests =
    Array.init 2 (fun i ->
        Guest.make ~name:(Printf.sprintf "vm%d" i)
          ~demand:(Resources.make ~mips:1. ~mem_mb:1. ~stor_gb:1.))
  in
  let vg = Graph.create ~n:2 () in
  let tight = Graph.add_edge vg 0 1 (Vlink.make ~bandwidth_mbps:1. ~latency_ms:5.) in
  let venv = Venv.create ~guests ~graph:vg in
  let problem2 = Problem.make ~cluster:problem.Problem.cluster ~venv in
  let p2 = Placement.create problem2 in
  ignore (Placement.assign p2 ~guest:0 ~host:0);
  ignore (Placement.assign p2 ~guest:1 ~host:2);
  let lm = Link_map.create problem2 in
  let e01 = phys_edge problem2 0 1 and e12 = phys_edge problem2 1 2 in
  (match
     Link_map.assign lm ~vlink:tight (Path.make ~nodes:[ 0; 1; 2 ] ~edges:[ e01; e12 ])
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let m = Mapping.make ~placement:p2 ~link_map:lm in
  let vs = Constraints.check m in
  Alcotest.(check bool) "latency violation (10 ms > 5 ms bound)" true
    (List.exists (function Constraints.Latency_exceeded _ -> true | _ -> false) vs)

let test_constraints_pp () =
  let _, m = valid_mapping () in
  ignore (Placement.migrate m.Mapping.placement ~guest:1 ~host:2);
  List.iter
    (fun v ->
      let s = Format.asprintf "%a" Constraints.pp_violation v in
      Alcotest.(check bool) "non-empty message" true (String.length s > 0))
    (Constraints.check m)

(* ---- Mapping metrics & report ---- *)

let test_mapping_metrics () =
  let _, m = valid_mapping () in
  Alcotest.(check int) "total hops" 2 (Mapping.total_hops m);
  Alcotest.(check (float 1e-9)) "mean latency (two 1-hop paths)" 5.
    (Mapping.mean_path_latency m);
  Alcotest.(check bool) "objective non-negative" true (Mapping.objective m >= 0.)

let test_mapping_problem_mismatch () =
  let problem1, _, _, _ = fixture () in
  let problem2, _, _, _ = fixture () in
  let p = Placement.create problem1 in
  let lm = Link_map.create problem2 in
  Alcotest.check_raises "different problems"
    (Invalid_argument "Mapping.make: placement and link map disagree on the problem")
    (fun () -> ignore (Mapping.make ~placement:p ~link_map:lm))

let test_report_renders () =
  let _, m = valid_mapping () in
  let placement_table = Hmn_mapping.Report.placement_table m in
  Alcotest.(check bool) "placement table mentions h0" true
    (Option.is_some
       (Seq.find_index (fun _ -> true)
          (Seq.filter (String.equal "h0")
             (Seq.map (fun s -> String.trim (String.sub s 0 (min 3 (String.length s))))
                (List.to_seq (String.split_on_char '\n' placement_table))))));
  let link_table = Hmn_mapping.Report.link_table m in
  Alcotest.(check bool) "link table non-empty" true (String.length link_table > 0);
  let summary = Hmn_mapping.Report.summary m in
  Alcotest.(check bool) "summary mentions objective" true
    (String.length summary > 0);
  let hot = Hmn_mapping.Report.hot_links ~top:2 m in
  (* Header + rule + 2 rows + trailing newline. *)
  Alcotest.(check int) "hot links truncated to top 2" 5
    (List.length (String.split_on_char '\n' hot))

(* ---- Diff ---- *)

let test_diff_identical () =
  let _, m = valid_mapping () in
  let d = Hmn_mapping.Diff.diff m m in
  Alcotest.(check bool) "empty" true (Hmn_mapping.Diff.is_empty d);
  Alcotest.(check (float 1e-9)) "objective unchanged" d.Hmn_mapping.Diff.objective_before
    d.Hmn_mapping.Diff.objective_after

let test_diff_detects_changes () =
  let problem, before = valid_mapping () in
  (* Build an "after" mapping on the SAME problem with guest 1 moved
     and its link routed differently. *)
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:1);
  ignore (Placement.assign p ~guest:1 ~host:2) (* was host 0 *);
  ignore (Placement.assign p ~guest:2 ~host:2);
  ignore (Placement.assign p ~guest:3 ~host:1);
  let lm = Link_map.create problem in
  let e12 = phys_edge problem 1 2 in
  (* vm0@1 - vm1@2 over edge 1-2; vm0@1 - vm2@2 likewise; vm0-vm3 intra. *)
  ignore (Link_map.assign lm ~vlink:0 (Path.make ~nodes:[ 1; 2 ] ~edges:[ e12 ]));
  ignore (Link_map.assign lm ~vlink:1 (Path.make ~nodes:[ 1; 2 ] ~edges:[ e12 ]));
  ignore (Link_map.assign lm ~vlink:2 (Path.trivial 1));
  let after = Mapping.make ~placement:p ~link_map:lm in
  let d = Hmn_mapping.Diff.diff before after in
  Alcotest.(check (list (triple int int int))) "guest 1 moved" [ (1, 0, 2) ]
    d.Hmn_mapping.Diff.moved_guests;
  Alcotest.(check (list int)) "vlink 0 rerouted" [ 0 ] d.Hmn_mapping.Diff.rerouted_links;
  Alcotest.(check bool) "summary mentions move" true
    (String.length (Hmn_mapping.Diff.summary d) > 0);
  Alcotest.(check bool) "not empty" false (Hmn_mapping.Diff.is_empty d)

let test_diff_unmapped_tracking () =
  let problem, full = valid_mapping () in
  let p = Placement.create problem in
  ignore (Placement.assign p ~guest:0 ~host:1);
  ignore (Placement.assign p ~guest:1 ~host:0);
  ignore (Placement.assign p ~guest:2 ~host:2);
  ignore (Placement.assign p ~guest:3 ~host:1);
  let lm = Link_map.create problem in
  let partial = Mapping.make ~placement:p ~link_map:lm in
  let d = Hmn_mapping.Diff.diff full partial in
  Alcotest.(check int) "three links lost" 3 (List.length d.Hmn_mapping.Diff.unmapped);
  let d' = Hmn_mapping.Diff.diff partial full in
  Alcotest.(check int) "three links gained" 3
    (List.length d'.Hmn_mapping.Diff.newly_mapped)

let test_diff_rejects_different_problems () =
  let _, a = valid_mapping () in
  let _, b = valid_mapping () in
  Alcotest.check_raises "different problems"
    (Invalid_argument "Diff.diff: mappings of different problems") (fun () ->
      ignore (Hmn_mapping.Diff.diff a b))

(* ---- property: random valid operations keep internal accounting
   consistent with a from-scratch recomputation ---- *)

let prop_placement_accounting_consistent =
  QCheck.Test.make
    ~name:"placement residuals equal capacity minus the sum of resident demands"
    ~count:100 QCheck.small_nat
    (fun seed ->
      let rng = Hmn_rng.Rng.create (seed + 500) in
      let problem, _, _, _ = fixture () in
      let p = Placement.create problem in
      (* Random assign/unassign/migrate churn. *)
      for _ = 1 to 60 do
        let guest = Hmn_rng.Rng.int rng ~bound:4 in
        let host = Hmn_rng.Rng.int rng ~bound:3 in
        match Hmn_rng.Rng.int rng ~bound:3 with
        | 0 -> ignore (Placement.assign p ~guest ~host)
        | 1 -> ignore (Placement.unassign p ~guest)
        | _ -> ignore (Placement.migrate p ~guest ~host)
      done;
      let ok = ref true in
      Array.iter
        (fun host ->
          let expected =
            List.fold_left
              (fun acc g ->
                Resources.add acc (Venv.demand problem.Problem.venv g))
              Resources.zero
              (Placement.guests_on p ~host)
          in
          let recomputed =
            Resources.sub (Cluster.capacity problem.Problem.cluster host) expected
          in
          if not (Resources.equal ~eps:1e-9 recomputed (Placement.residual p ~host))
          then ok := false)
        (Cluster.host_ids problem.Problem.cluster);
      !ok)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_mapping"
    [
      ( "problem",
        [
          Alcotest.test_case "basics" `Quick test_problem_basics;
          Alcotest.test_case "infeasibility screen" `Quick
            test_problem_infeasible_screen;
        ] );
      ( "placement",
        [
          Alcotest.test_case "assign" `Quick test_placement_assign;
          Alcotest.test_case "CPU is not a constraint" `Quick
            test_placement_cpu_not_constraint;
          Alcotest.test_case "memory gates" `Quick test_placement_memory_gates;
          Alcotest.test_case "migrate" `Quick test_placement_migrate_rollback;
          Alcotest.test_case "migrate rollback" `Quick
            test_placement_migrate_unfit_restores;
          Alcotest.test_case "copy" `Quick test_placement_copy_independent;
          Alcotest.test_case "switches rejected" `Quick test_placement_switch_rejected;
        ] );
      ( "objective",
        [
          Alcotest.test_case "known value" `Quick test_objective_known_value;
          Alcotest.test_case "migration prediction" `Quick
            test_objective_after_migration_matches_real;
          Alcotest.test_case "prediction edge cases" `Quick
            test_objective_after_migration_edge_cases;
          Alcotest.test_case "active hosts & oversubscription" `Quick
            test_active_hosts_and_oversubscription;
        ] );
      ("link_map", [ Alcotest.test_case "assign/unassign" `Quick test_link_map ]);
      ( "constraints",
        [
          Alcotest.test_case "valid mapping" `Quick test_constraints_valid;
          Alcotest.test_case "unassigned guests" `Quick test_constraints_unassigned;
          Alcotest.test_case "unmapped link" `Quick test_constraints_unmapped_link;
          Alcotest.test_case "wrong endpoint" `Quick test_constraints_wrong_endpoint;
          Alcotest.test_case "latency violation" `Quick
            test_constraints_latency_violation;
          Alcotest.test_case "violation printing" `Quick test_constraints_pp;
        ] );
      ( "mapping & report",
        [
          Alcotest.test_case "metrics" `Quick test_mapping_metrics;
          Alcotest.test_case "problem mismatch" `Quick test_mapping_problem_mismatch;
          Alcotest.test_case "report renders" `Quick test_report_renders;
        ] );
      ( "diff",
        [
          Alcotest.test_case "identical" `Quick test_diff_identical;
          Alcotest.test_case "detects changes" `Quick test_diff_detects_changes;
          Alcotest.test_case "unmapped tracking" `Quick test_diff_unmapped_tracking;
          Alcotest.test_case "rejects different problems" `Quick
            test_diff_rejects_different_problems;
        ] );
      ("properties", [ q prop_placement_accounting_consistent ]);
    ]
