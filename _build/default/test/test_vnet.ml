(* Tests for hmn_vnet: guests, virtual links, the virtual environment,
   the Table-1 workload profiles and the instance generator. *)

module Resources = Hmn_testbed.Resources
module Guest = Hmn_vnet.Guest
module Vlink = Hmn_vnet.Vlink
module Venv = Hmn_vnet.Virtual_env
module Workload = Hmn_vnet.Workload
module Venv_gen = Hmn_vnet.Venv_gen
module Graph = Hmn_graph.Graph

let small_venv () =
  let guests =
    Array.init 3 (fun i ->
        Guest.make
          ~name:(Printf.sprintf "vm%d" i)
          ~demand:
            (Resources.make
               ~mips:(float_of_int (10 * (i + 1)))
               ~mem_mb:100. ~stor_gb:10.))
  in
  let g = Graph.create ~n:3 () in
  let e01 = Graph.add_edge g 0 1 (Vlink.make ~bandwidth_mbps:5. ~latency_ms:40.) in
  let e12 = Graph.add_edge g 1 2 (Vlink.make ~bandwidth_mbps:2. ~latency_ms:50.) in
  (Venv.create ~guests ~graph:g, e01, e12)

let test_vlink_validation () =
  Alcotest.check_raises "zero bw"
    (Invalid_argument "Vlink.make: bandwidth must be positive") (fun () ->
      ignore (Vlink.make ~bandwidth_mbps:0. ~latency_ms:1.));
  Alcotest.check_raises "negative latency"
    (Invalid_argument "Vlink.make: negative latency") (fun () ->
      ignore (Vlink.make ~bandwidth_mbps:1. ~latency_ms:(-0.1)))

let test_venv_accessors () =
  let venv, e01, _ = small_venv () in
  Alcotest.(check int) "guests" 3 (Venv.n_guests venv);
  Alcotest.(check int) "vlinks" 2 (Venv.n_vlinks venv);
  Alcotest.(check string) "guest name" "vm1" (Venv.guest venv 1).Guest.name;
  Alcotest.(check (float 1e-9)) "demand" 20. (Venv.demand venv 1).Resources.mips;
  Alcotest.(check (float 1e-9)) "vlink bw" 5. (Venv.vlink venv e01).Vlink.bandwidth_mbps;
  Alcotest.(check (pair int int)) "endpoints" (0, 1) (Venv.endpoints venv e01);
  Alcotest.(check (float 1e-9)) "total demand" 60. (Venv.total_demand venv).Resources.mips;
  Alcotest.(check bool) "connected" true (Venv.is_connected venv)

let test_guest_degree_bandwidth () =
  let venv, _, _ = small_venv () in
  (* vm1 touches both links: 5 + 2. *)
  Alcotest.(check (float 1e-9)) "middle guest" 7. (Venv.guest_degree_bandwidth venv 1);
  Alcotest.(check (float 1e-9)) "edge guest" 5. (Venv.guest_degree_bandwidth venv 0)

let test_venv_validation () =
  let guests = [| Guest.make ~name:"a" ~demand:Resources.zero |] in
  let g = Graph.create ~n:2 () in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Virtual_env.create: guest array / graph size mismatch")
    (fun () -> ignore (Venv.create ~guests ~graph:g))

let test_workload_ranges () =
  let rng = Hmn_rng.Rng.create 2 in
  for _ = 1 to 200 do
    let d = Workload.draw_demand Workload.high_level rng in
    Alcotest.(check bool) "hl mem" true
      (d.Resources.mem_mb >= 128. && d.Resources.mem_mb < 256.);
    Alcotest.(check bool) "hl mips" true
      (d.Resources.mips >= 50. && d.Resources.mips < 100.);
    Alcotest.(check bool) "hl stor" true
      (d.Resources.stor_gb >= 100. && d.Resources.stor_gb < 200.);
    let l = Workload.draw_vlink Workload.high_level rng in
    Alcotest.(check bool) "hl bw" true
      (l.Vlink.bandwidth_mbps >= 0.5 && l.Vlink.bandwidth_mbps < 1.);
    Alcotest.(check bool) "hl lat" true
      (l.Vlink.latency_ms >= 30. && l.Vlink.latency_ms < 60.)
  done;
  for _ = 1 to 200 do
    let d = Workload.draw_demand Workload.low_level rng in
    Alcotest.(check bool) "ll mem" true
      (d.Resources.mem_mb >= 19. && d.Resources.mem_mb < 38.);
    let l = Workload.draw_vlink Workload.low_level rng in
    Alcotest.(check bool) "ll bw (87-175 kbps)" true
      (l.Vlink.bandwidth_mbps >= 0.087 && l.Vlink.bandwidth_mbps < 0.175)
  done

let test_venv_gen_counts () =
  let rng = Hmn_rng.Rng.create 3 in
  let venv =
    Venv_gen.generate ~profile:Workload.high_level ~n:100 ~density:0.02 ~rng ()
  in
  Alcotest.(check int) "guests" 100 (Venv.n_guests venv);
  Alcotest.(check int) "link count from density"
    (Venv_gen.expected_vlinks ~n:100 ~density:0.02)
    (Venv.n_vlinks venv);
  Alcotest.(check bool) "connected" true (Venv.is_connected venv);
  Alcotest.(check string) "names" "vm0" (Venv.guest venv 0).Guest.name

let test_venv_gen_deterministic () =
  let gen () =
    let rng = Hmn_rng.Rng.create 55 in
    Venv_gen.generate ~profile:Workload.low_level ~n:50 ~density:0.05 ~rng ()
  in
  let a = gen () and b = gen () in
  Alcotest.(check int) "same links" (Venv.n_vlinks a) (Venv.n_vlinks b);
  for i = 0 to 49 do
    Alcotest.(check bool)
      (Printf.sprintf "guest %d equal" i)
      true
      (Resources.equal (Venv.demand a i) (Venv.demand b i))
  done

let test_scale_to_fit () =
  let rng = Hmn_rng.Rng.create 4 in
  let cluster =
    Hmn_testbed.Cluster_gen.torus_cluster ~vmm:Hmn_testbed.Vmm.none ~rows:2 ~cols:2
      ~rng ()
  in
  (* 100 high-level guests vastly exceed 4 hosts: memory and storage
     must be scaled to the requested fraction. *)
  let venv =
    Venv_gen.generate ~scale_to_fit:(cluster, 0.8) ~profile:Workload.high_level
      ~n:100 ~density:0.02 ~rng ()
  in
  let total = Venv.total_demand venv in
  let cap = Hmn_testbed.Cluster.total_capacity cluster in
  Alcotest.(check bool) "memory at target" true
    (Hmn_prelude.Float_ext.approx ~eps:1e-6 total.Resources.mem_mb
       (0.8 *. cap.Resources.mem_mb));
  Alcotest.(check bool) "storage at target" true
    (Hmn_prelude.Float_ext.approx ~eps:1e-6 total.Resources.stor_gb
       (0.8 *. cap.Resources.stor_gb))

let test_scale_to_fit_noop_when_loose () =
  let rng = Hmn_rng.Rng.create 4 in
  let cluster =
    Hmn_testbed.Cluster_gen.torus_cluster ~vmm:Hmn_testbed.Vmm.none ~rows:5 ~cols:8
      ~rng ()
  in
  let gen scale =
    let rng = Hmn_rng.Rng.create 77 in
    Venv_gen.generate ?scale_to_fit:scale ~profile:Workload.low_level ~n:100
      ~density:0.02 ~rng ()
  in
  let unscaled = gen None and scaled = gen (Some (cluster, 0.9)) in
  (* 100 low-level guests are far below 90% of a 40-host cluster; the
     calibration must not touch them. *)
  for i = 0 to 99 do
    Alcotest.(check bool)
      (Printf.sprintf "guest %d untouched" i)
      true
      (Resources.equal (Venv.demand unscaled i) (Venv.demand scaled i))
  done;
  (* CPU is never scaled even when memory is. *)
  let tight_cluster =
    Hmn_testbed.Cluster_gen.torus_cluster ~vmm:Hmn_testbed.Vmm.none ~rows:2 ~cols:2
      ~rng ()
  in
  let gen2 scale =
    let rng = Hmn_rng.Rng.create 78 in
    Venv_gen.generate ?scale_to_fit:scale ~profile:Workload.high_level ~n:100
      ~density:0.02 ~rng ()
  in
  let u = gen2 None and s = gen2 (Some (tight_cluster, 0.5)) in
  Alcotest.(check (float 1e-9)) "cpu preserved"
    (Venv.total_demand u).Resources.mips (Venv.total_demand s).Resources.mips

let test_generate_shaped () =
  let rng = Hmn_rng.Rng.create 6 in
  let shapes =
    [
      ("star", Venv_gen.Star, fun venv -> Venv.n_vlinks venv = 29);
      ("tree", Venv_gen.Random_tree, fun venv -> Venv.n_vlinks venv = 29);
      ( "barabasi-albert",
        Venv_gen.Barabasi_albert 2,
        fun venv -> Venv.n_vlinks venv = (30 - 2) * 2 );
      ("waxman", Venv_gen.Waxman (0.4, 0.4), fun venv -> Venv.n_vlinks venv >= 29);
      ( "random-connected",
        Venv_gen.Random_connected 0.1,
        fun venv -> Venv.n_vlinks venv = Venv_gen.expected_vlinks ~n:30 ~density:0.1 );
    ]
  in
  List.iter
    (fun (name, shape, check_links) ->
      let venv =
        Venv_gen.generate_shaped ~profile:Workload.high_level ~n:30 ~shape ~rng ()
      in
      Alcotest.(check int) (name ^ " guests") 30 (Venv.n_guests venv);
      Alcotest.(check bool) (name ^ " connected") true (Venv.is_connected venv);
      Alcotest.(check bool) (name ^ " link count") true (check_links venv))
    shapes;
  (* The star hub is guest 0 with degree n-1. *)
  let star =
    Venv_gen.generate_shaped ~profile:Workload.high_level ~n:10 ~shape:Venv_gen.Star
      ~rng ()
  in
  Alcotest.(check int) "hub degree" 9 (Graph.degree (Venv.graph star) 0)

(* ---- properties ---- *)

let prop_generated_always_connected =
  QCheck.Test.make ~name:"generated virtual environments are connected" ~count:100
    QCheck.(pair small_nat (int_range 2 150))
    (fun (seed, n) ->
      let rng = Hmn_rng.Rng.create seed in
      let venv =
        Venv_gen.generate ~profile:Workload.low_level ~n ~density:0.01 ~rng ()
      in
      Venv.is_connected venv)

let prop_degree_bandwidth_sums_to_twice_total =
  QCheck.Test.make ~name:"sum of guest degree bandwidth = 2 * total link bandwidth"
    ~count:50
    QCheck.(pair small_nat (int_range 2 60))
    (fun (seed, n) ->
      let rng = Hmn_rng.Rng.create seed in
      let venv =
        Venv_gen.generate ~profile:Workload.high_level ~n ~density:0.1 ~rng ()
      in
      let per_guest = ref 0. in
      for g = 0 to n - 1 do
        per_guest := !per_guest +. Venv.guest_degree_bandwidth venv g
      done;
      let per_link = ref 0. in
      for e = 0 to Venv.n_vlinks venv - 1 do
        per_link := !per_link +. (Venv.vlink venv e).Vlink.bandwidth_mbps
      done;
      Hmn_prelude.Float_ext.approx ~eps:1e-6 !per_guest (2. *. !per_link))

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "hmn_vnet"
    [
      ( "vlink & venv",
        [
          Alcotest.test_case "vlink validation" `Quick test_vlink_validation;
          Alcotest.test_case "accessors" `Quick test_venv_accessors;
          Alcotest.test_case "degree bandwidth" `Quick test_guest_degree_bandwidth;
          Alcotest.test_case "venv validation" `Quick test_venv_validation;
        ] );
      ( "workload",
        [ Alcotest.test_case "table 1 ranges" `Quick test_workload_ranges ] );
      ( "venv_gen",
        [
          Alcotest.test_case "counts & connectivity" `Quick test_venv_gen_counts;
          Alcotest.test_case "deterministic" `Quick test_venv_gen_deterministic;
          Alcotest.test_case "scale_to_fit" `Quick test_scale_to_fit;
          Alcotest.test_case "scale_to_fit no-op" `Quick test_scale_to_fit_noop_when_loose;
          Alcotest.test_case "shaped topologies" `Quick test_generate_shaped;
        ] );
      ( "properties",
        [ q prop_generated_always_connected; q prop_degree_bandwidth_sums_to_twice_total ] );
    ]
