test/test_core.ml: Alcotest Array Hmn_core Hmn_graph Hmn_mapping Hmn_prelude Hmn_rng Hmn_routing Hmn_testbed Hmn_vnet List Option Printf QCheck QCheck_alcotest Result
