test/test_routing.ml: Alcotest Array Float Hmn_graph Hmn_prelude Hmn_rng Hmn_routing Hmn_testbed Printf QCheck QCheck_alcotest Result
