test/test_dstruct.ml: Alcotest Float Fun Gen Hashtbl Hmn_dstruct Hmn_rng Int List QCheck QCheck_alcotest
