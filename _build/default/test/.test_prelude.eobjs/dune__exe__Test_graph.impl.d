test/test_graph.ml: Alcotest Array Float Hashtbl Hmn_graph Hmn_prelude Hmn_rng List Option Printf QCheck QCheck_alcotest String
