test/test_vnet.ml: Alcotest Array Hmn_graph Hmn_prelude Hmn_rng Hmn_testbed Hmn_vnet List Printf QCheck QCheck_alcotest
