test/test_simcore.ml: Alcotest Float Gen Hmn_simcore List QCheck QCheck_alcotest
