test/test_rng.ml: Alcotest Array Float Fun Gen Hmn_prelude Hmn_rng List QCheck QCheck_alcotest
