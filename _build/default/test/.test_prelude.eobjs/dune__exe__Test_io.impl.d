test/test_io.ml: Alcotest Filename Fun Hmn_core Hmn_graph Hmn_io Hmn_mapping Hmn_prelude Hmn_rng Hmn_testbed Hmn_vnet List QCheck QCheck_alcotest Result Sys
