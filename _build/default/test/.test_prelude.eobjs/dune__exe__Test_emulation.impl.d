test/test_emulation.ml: Alcotest Array Float Hmn_core Hmn_emulation Hmn_graph Hmn_mapping Hmn_rng Hmn_routing Hmn_testbed Hmn_vnet List Printf QCheck QCheck_alcotest
