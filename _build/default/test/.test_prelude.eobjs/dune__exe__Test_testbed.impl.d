test/test_testbed.ml: Alcotest Array Float Hmn_graph Hmn_rng Hmn_testbed Printf QCheck QCheck_alcotest
