test/test_prelude.ml: Alcotest Array Array_ext Float Float_ext Format Fun Gen Hashtbl Hmn_prelude Json List List_ext Pretty_table QCheck QCheck_alcotest Result String Units
