test/test_mapping.ml: Alcotest Array Format Hmn_graph Hmn_mapping Hmn_rng Hmn_routing Hmn_testbed Hmn_vnet List Option Printf QCheck QCheck_alcotest Result Seq String
