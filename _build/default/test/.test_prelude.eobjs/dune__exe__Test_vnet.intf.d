test/test_vnet.mli:
