test/test_experiments.ml: Alcotest Array Hashtbl Hmn_core Hmn_emulation Hmn_experiments Hmn_mapping Hmn_rng Hmn_testbed Hmn_vnet Lazy List String
