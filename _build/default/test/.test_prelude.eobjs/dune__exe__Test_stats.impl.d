test/test_stats.ml: Alcotest Array Format Gen Hmn_prelude Hmn_stats List QCheck QCheck_alcotest String
