test/test_emulation.mli:
