(** Mutable guest → host assignment with per-host residual resources.

    Feasibility is the paper's: a guest fits when its memory and
    storage fit the host's residual (Eqs. 2–3); CPU is deducted too but
    never gates an assignment — residual CPU may go negative and is
    what the objective balances. *)

type t

val create : Problem.t -> t
(** Empty placement; every host at full capacity. *)

val problem : t -> Problem.t
val copy : t -> t

val host_of : t -> guest:int -> int option

val is_assigned : t -> guest:int -> bool

val n_assigned : t -> int
val all_assigned : t -> bool

val fits : t -> guest:int -> host:int -> bool
(** Memory/storage feasibility of assigning the guest to the host now.
    [false] for non-host nodes (switches). *)

val assign : t -> guest:int -> host:int -> (unit, string) result
(** Fails when the guest is already assigned, the node cannot host, or
    it does not fit. *)

val unassign : t -> guest:int -> (unit, string) result

val migrate : t -> guest:int -> host:int -> (unit, string) result
(** Atomic unassign + assign; restores the original assignment when the
    target does not fit. *)

val residual : t -> host:int -> Hmn_testbed.Resources.t
(** Host capacity minus demands of the guests placed there. *)

val residual_cpu : t -> host:int -> float
(** The [rproc] of Eq. (11); may be negative. *)

val guests_on : t -> host:int -> int list
(** Ascending guest ids currently on the host. *)

val n_guests_on : t -> host:int -> int

val iter_assigned : t -> (guest:int -> host:int -> unit) -> unit

val host_of_exn : t -> guest:int -> int
(** Raises [Invalid_argument] when unassigned. *)
