(** Mutable virtual-link → physical-path assignment with residual
    bandwidth accounting (Eq. 9). *)

type t

val create : Problem.t -> t
(** No links mapped; the residual network at full capacity. *)

val problem : t -> Problem.t
val residual : t -> Hmn_routing.Residual.t
(** Live view of the remaining bandwidth; mutated by {!assign} /
    {!unassign}. *)

val path_of : t -> vlink:int -> Hmn_routing.Path.t option

val assign : t -> vlink:int -> Hmn_routing.Path.t -> (unit, string) result
(** Reserves the virtual link's bandwidth along the path. Fails when the
    link is already mapped or capacity is lacking; the path's
    endpoint/shape validity is the caller's (or {!Constraints}') concern. *)

val unassign : t -> vlink:int -> (unit, string) result

val n_mapped : t -> int
val all_mapped : t -> bool

val iter_mapped : t -> (vlink:int -> Hmn_routing.Path.t -> unit) -> unit
