module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Path = Hmn_routing.Path

type violation =
  | Unassigned_guest of int
  | Memory_exceeded of { host : int; used : float; capacity : float }
  | Storage_exceeded of { host : int; used : float; capacity : float }
  | Unmapped_vlink of int
  | Bad_path of { vlink : int; reason : string }
  | Latency_exceeded of { vlink : int; actual : float; bound : float }
  | Bandwidth_exceeded of { edge : int; used : float; capacity : float }
  | Guest_on_non_host of { guest : int; node : int }

(* Floating-point accumulation slack for the capacity comparisons. *)
let eps = 1e-6

let check (m : Mapping.t) =
  let problem = Mapping.problem m in
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let violations = ref [] in
  let report v = violations := v :: !violations in
  (* Eq. 1 and per-host loads (Eqs. 2-3), recomputed from raw demands. *)
  let n_nodes = Cluster.n_nodes cluster in
  let mem_used = Array.make n_nodes 0. and stor_used = Array.make n_nodes 0. in
  for guest = 0 to Virtual_env.n_guests venv - 1 do
    match Placement.host_of m.Mapping.placement ~guest with
    | None -> report (Unassigned_guest guest)
    | Some node ->
      if not (Cluster.is_host cluster node) then
        report (Guest_on_non_host { guest; node })
      else begin
        let d = Virtual_env.demand venv guest in
        mem_used.(node) <- mem_used.(node) +. d.Resources.mem_mb;
        stor_used.(node) <- stor_used.(node) +. d.Resources.stor_gb
      end
  done;
  Array.iter
    (fun host ->
      let cap = Cluster.capacity cluster host in
      if mem_used.(host) > cap.Resources.mem_mb +. eps then
        report
          (Memory_exceeded
             { host; used = mem_used.(host); capacity = cap.Resources.mem_mb });
      if stor_used.(host) > cap.Resources.stor_gb +. eps then
        report
          (Storage_exceeded
             { host; used = stor_used.(host); capacity = cap.Resources.stor_gb }))
    (Cluster.host_ids cluster);
  (* Per-link path checks (Eqs. 4-8) and physical bandwidth loads (Eq. 9). *)
  let bw_used = Array.make (Graph.n_edges (Cluster.graph cluster)) 0. in
  for vlink = 0 to Virtual_env.n_vlinks venv - 1 do
    let vs, vd = Virtual_env.endpoints venv vlink in
    match
      ( Placement.host_of m.Mapping.placement ~guest:vs,
        Placement.host_of m.Mapping.placement ~guest:vd )
    with
    | None, _ | _, None -> ()  (* already reported as Unassigned_guest *)
    | Some hs, Some hd -> (
      match Link_map.path_of m.Mapping.link_map ~vlink with
      | None ->
        (* Intra-host links need no path; anything else does. *)
        if hs <> hd then report (Unmapped_vlink vlink)
      | Some path -> (
        match Path.validate cluster ~src:hs ~dst:hd path with
        | Error reason -> report (Bad_path { vlink; reason })
        | Ok () ->
          let spec = Virtual_env.vlink venv vlink in
          let latency = Path.total_latency cluster path in
          if latency > spec.Hmn_vnet.Vlink.latency_ms +. eps then
            report
              (Latency_exceeded
                 { vlink; actual = latency; bound = spec.Hmn_vnet.Vlink.latency_ms });
          Path.iter_edges path (fun eid ->
              bw_used.(eid) <- bw_used.(eid) +. spec.Hmn_vnet.Vlink.bandwidth_mbps)))
  done;
  Array.iteri
    (fun eid used ->
      let cap = (Cluster.link cluster eid).Hmn_testbed.Link.bandwidth_mbps in
      if used > cap +. eps then
        report (Bandwidth_exceeded { edge = eid; used; capacity = cap }))
    bw_used;
  List.rev !violations

let is_valid m = check m = []

let pp_violation ppf = function
  | Unassigned_guest g -> Format.fprintf ppf "guest %d is unassigned" g
  | Memory_exceeded { host; used; capacity } ->
    Format.fprintf ppf "host %d memory exceeded: %.1f/%.1f MB" host used capacity
  | Storage_exceeded { host; used; capacity } ->
    Format.fprintf ppf "host %d storage exceeded: %.1f/%.1f GB" host used capacity
  | Unmapped_vlink v -> Format.fprintf ppf "virtual link %d has no path" v
  | Bad_path { vlink; reason } ->
    Format.fprintf ppf "virtual link %d has an invalid path: %s" vlink reason
  | Latency_exceeded { vlink; actual; bound } ->
    Format.fprintf ppf "virtual link %d latency %.1f ms exceeds bound %.1f ms" vlink
      actual bound
  | Bandwidth_exceeded { edge; used; capacity } ->
    Format.fprintf ppf "physical link %d bandwidth exceeded: %.3f/%.3f Mbps" edge used
      capacity
  | Guest_on_non_host { guest; node } ->
    Format.fprintf ppf "guest %d placed on non-host node %d" guest node
