(** Independent validator for the problem's constraints, Eqs. (1)–(9).

    Everything is recomputed from scratch — host loads from the raw
    guest demands, link loads from the raw paths — so the validator
    catches bookkeeping bugs in {!Placement} / {!Link_map} as well as
    algorithmic ones in the heuristics. Every returned mapping in the
    test suite must pass this check. *)

type violation =
  | Unassigned_guest of int  (** Eq. 1: guest has no host *)
  | Memory_exceeded of { host : int; used : float; capacity : float }  (** Eq. 2 *)
  | Storage_exceeded of { host : int; used : float; capacity : float }  (** Eq. 3 *)
  | Unmapped_vlink of int  (** no path for an inter-host virtual link *)
  | Bad_path of { vlink : int; reason : string }  (** Eqs. 4–7 *)
  | Latency_exceeded of { vlink : int; actual : float; bound : float }  (** Eq. 8 *)
  | Bandwidth_exceeded of { edge : int; used : float; capacity : float }  (** Eq. 9 *)
  | Guest_on_non_host of { guest : int; node : int }

val check : Mapping.t -> violation list
(** Empty list ⇔ the mapping is a valid solution. *)

val is_valid : Mapping.t -> bool

val pp_violation : Format.formatter -> violation -> unit
