module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Path = Hmn_routing.Path
module Table = Hmn_prelude.Pretty_table

let placement_table (m : Mapping.t) =
  let problem = Mapping.problem m in
  let cluster = problem.Problem.cluster in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right; Table.Right ]
      ~header:[ "host"; "guests"; "res. CPU (MIPS)"; "res. mem (MB)"; "res. stor (GB)" ]
      ()
  in
  Array.iter
    (fun host ->
      let r = Placement.residual m.Mapping.placement ~host in
      Table.add_row table
        [
          (Cluster.node cluster host).Hmn_testbed.Node.name;
          string_of_int (Placement.n_guests_on m.Mapping.placement ~host);
          Printf.sprintf "%.1f" r.Resources.mips;
          Printf.sprintf "%.0f" r.Resources.mem_mb;
          Printf.sprintf "%.0f" r.Resources.stor_gb;
        ])
    (Cluster.host_ids cluster);
  Table.render table

let link_table ?(limit = 40) (m : Mapping.t) =
  let problem = Mapping.problem m in
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Left; Table.Right; Table.Right; Table.Right ]
      ~header:[ "vlink"; "path"; "hops"; "lat (ms)"; "bound (ms)" ]
      ()
  in
  let shown = ref 0 and total = ref 0 in
  Link_map.iter_mapped m.Mapping.link_map (fun ~vlink path ->
      incr total;
      if !shown < limit then begin
        incr shown;
        let vs, vd = Virtual_env.endpoints venv vlink in
        let spec = Virtual_env.vlink venv vlink in
        Table.add_row table
          [
            Printf.sprintf "%s-%s"
              (Virtual_env.guest venv vs).Hmn_vnet.Guest.name
              (Virtual_env.guest venv vd).Hmn_vnet.Guest.name;
            Format.asprintf "%a" Path.pp path;
            string_of_int (Path.hop_count path);
            Printf.sprintf "%.1f" (Path.total_latency cluster path);
            Printf.sprintf "%.1f" spec.Hmn_vnet.Vlink.latency_ms;
          ]
      end);
  let body = Table.render table in
  if !total > !shown then
    body ^ Printf.sprintf "... and %d more mapped links\n" (!total - !shown)
  else body

let hot_links ?(top = 10) (m : Mapping.t) =
  let problem = Mapping.problem m in
  let cluster = problem.Problem.cluster in
  let g = Cluster.graph cluster in
  let residual = Link_map.residual m.Mapping.link_map in
  let centrality = Hmn_graph.Betweenness.edges (Cluster.graph cluster) in
  let edges =
    Array.init (Hmn_graph.Graph.n_edges g) (fun eid ->
        let link = Cluster.link cluster eid in
        (eid, Hmn_routing.Residual.used residual eid /. link.Hmn_testbed.Link.bandwidth_mbps))
  in
  Hmn_prelude.Array_ext.sort_by_desc snd edges;
  let table =
    Table.create
      ~aligns:[ Table.Left; Table.Right; Table.Right; Table.Right ]
      ~header:[ "link"; "used (Mbps)"; "utilization (%)"; "betweenness" ]
      ()
  in
  Array.iteri
    (fun rank (eid, util) ->
      if rank < top then begin
        let u, v = Hmn_graph.Graph.endpoints g eid in
        Table.add_row table
          [
            Printf.sprintf "%s - %s" (Cluster.node cluster u).Hmn_testbed.Node.name
              (Cluster.node cluster v).Hmn_testbed.Node.name;
            Printf.sprintf "%.3f" (Hmn_routing.Residual.used residual eid);
            Printf.sprintf "%.2f" (100. *. util);
            Printf.sprintf "%.0f" centrality.(eid);
          ]
      end)
    edges;
  Table.render table

let summary (m : Mapping.t) =
  let residual = Link_map.residual m.Mapping.link_map in
  Printf.sprintf
    "objective (LBF): %.2f MIPS | active hosts: %d | mapped links: %d | total hops: \
     %d | mean path latency: %.1f ms | network utilization: %.1f%%"
    (Mapping.objective m)
    (Objective.active_hosts m.Mapping.placement)
    (Link_map.n_mapped m.Mapping.link_map)
    (Mapping.total_hops m) (Mapping.mean_path_latency m)
    (100. *. Hmn_routing.Residual.utilization residual)
