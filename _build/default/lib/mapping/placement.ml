module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env

type t = {
  problem : Problem.t;
  host_of : int array;  (* guest -> host id or -1 *)
  residual : Resources.t array;  (* indexed by cluster node id *)
  on_host : (int, unit) Hashtbl.t array;  (* node id -> set of guests *)
  mutable assigned : int;
}

let create problem =
  let n_nodes = Cluster.n_nodes problem.Problem.cluster in
  {
    problem;
    host_of = Array.make (Virtual_env.n_guests problem.Problem.venv) (-1);
    residual = Array.init n_nodes (Cluster.capacity problem.Problem.cluster);
    on_host = Array.init n_nodes (fun _ -> Hashtbl.create 8);
    assigned = 0;
  }

let problem t = t.problem

let copy t =
  {
    t with
    host_of = Array.copy t.host_of;
    residual = Array.copy t.residual;
    on_host = Array.map Hashtbl.copy t.on_host;
  }

let check_guest t guest =
  if guest < 0 || guest >= Array.length t.host_of then
    invalid_arg "Placement: guest out of range"

let check_host t host =
  if host < 0 || host >= Array.length t.residual then
    invalid_arg "Placement: host out of range"

let host_of t ~guest =
  check_guest t guest;
  if t.host_of.(guest) = -1 then None else Some t.host_of.(guest)

let is_assigned t ~guest = host_of t ~guest <> None

let n_assigned t = t.assigned
let all_assigned t = t.assigned = Array.length t.host_of

let demand t guest = Virtual_env.demand t.problem.Problem.venv guest

let fits t ~guest ~host =
  check_guest t guest;
  check_host t host;
  Cluster.is_host t.problem.Problem.cluster host
  && Resources.fits_mem_stor ~demand:(demand t guest) ~avail:t.residual.(host)

let assign t ~guest ~host =
  check_guest t guest;
  check_host t host;
  if t.host_of.(guest) <> -1 then
    Error (Printf.sprintf "guest %d already assigned to host %d" guest t.host_of.(guest))
  else if not (Cluster.is_host t.problem.Problem.cluster host) then
    Error (Printf.sprintf "node %d cannot run guests" host)
  else if not (fits t ~guest ~host) then
    Error (Printf.sprintf "guest %d does not fit on host %d" guest host)
  else begin
    t.host_of.(guest) <- host;
    t.residual.(host) <- Resources.sub t.residual.(host) (demand t guest);
    Hashtbl.replace t.on_host.(host) guest ();
    t.assigned <- t.assigned + 1;
    Ok ()
  end

let unassign t ~guest =
  check_guest t guest;
  match t.host_of.(guest) with
  | -1 -> Error (Printf.sprintf "guest %d is not assigned" guest)
  | host ->
    t.host_of.(guest) <- -1;
    t.residual.(host) <- Resources.add t.residual.(host) (demand t guest);
    Hashtbl.remove t.on_host.(host) guest;
    t.assigned <- t.assigned - 1;
    Ok ()

let migrate t ~guest ~host =
  check_guest t guest;
  check_host t host;
  match t.host_of.(guest) with
  | -1 -> Error (Printf.sprintf "guest %d is not assigned" guest)
  | old_host -> (
    match unassign t ~guest with
    | Error _ as e -> e
    | Ok () -> (
      match assign t ~guest ~host with
      | Ok () -> Ok ()
      | Error _ as e ->
        (* Roll back; re-assignment to the previous host cannot fail. *)
        (match assign t ~guest ~host:old_host with
        | Ok () -> ()
        | Error msg -> failwith ("Placement.migrate: rollback failed: " ^ msg));
        e))

let residual t ~host =
  check_host t host;
  t.residual.(host)

let residual_cpu t ~host = (residual t ~host).Resources.mips

let guests_on t ~host =
  check_host t host;
  List.sort Int.compare (Hashtbl.fold (fun g () acc -> g :: acc) t.on_host.(host) [])

let n_guests_on t ~host =
  check_host t host;
  Hashtbl.length t.on_host.(host)

let iter_assigned t f =
  Array.iteri (fun guest host -> if host <> -1 then f ~guest ~host) t.host_of

let host_of_exn t ~guest =
  match host_of t ~guest with
  | Some h -> h
  | None -> invalid_arg (Printf.sprintf "Placement.host_of_exn: guest %d unassigned" guest)
