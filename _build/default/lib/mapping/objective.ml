module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env

let residual_cpus placement =
  let cluster = (Placement.problem placement).Problem.cluster in
  Array.map (fun h -> Placement.residual_cpu placement ~host:h) (Cluster.host_ids cluster)

let stddev xs =
  let n = float_of_int (Array.length xs) in
  let mean = Hmn_prelude.Float_ext.sum xs /. n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.)) 0. xs /. n
  in
  sqrt var

let load_balance_factor placement = stddev (residual_cpus placement)

let load_balance_after_migration placement ~guest ~host =
  match Placement.host_of placement ~guest with
  | None -> None
  | Some current when current = host -> None
  | Some current ->
    if not (Placement.fits placement ~guest ~host) then None
    else begin
      let cluster = (Placement.problem placement).Problem.cluster in
      let venv = (Placement.problem placement).Problem.venv in
      let vproc = (Virtual_env.demand venv guest).Resources.mips in
      let cpus = residual_cpus placement in
      let hosts = Cluster.host_ids cluster in
      Array.iteri
        (fun i h ->
          if h = current then cpus.(i) <- cpus.(i) +. vproc
          else if h = host then cpus.(i) <- cpus.(i) -. vproc)
        hosts;
      Some (stddev cpus)
    end

let active_hosts placement =
  let cluster = (Placement.problem placement).Problem.cluster in
  Hmn_prelude.Array_ext.count
    (fun h -> Placement.n_guests_on placement ~host:h > 0)
    (Cluster.host_ids cluster)

let cpu_oversubscription placement =
  Array.fold_left
    (fun acc r -> if r < 0. then acc -. r else acc)
    0. (residual_cpus placement)
