module Virtual_env = Hmn_vnet.Virtual_env
module Residual = Hmn_routing.Residual
module Path = Hmn_routing.Path

type t = {
  problem : Problem.t;
  paths : Path.t option array;  (* indexed by vlink edge id *)
  residual : Residual.t;
  mutable mapped : int;
}

let create problem =
  {
    problem;
    paths = Array.make (Virtual_env.n_vlinks problem.Problem.venv) None;
    residual = Residual.create problem.Problem.cluster;
    mapped = 0;
  }

let problem t = t.problem
let residual t = t.residual

let check_vlink t vlink =
  if vlink < 0 || vlink >= Array.length t.paths then
    invalid_arg "Link_map: vlink out of range"

let path_of t ~vlink =
  check_vlink t vlink;
  t.paths.(vlink)

let bandwidth t vlink =
  (Virtual_env.vlink t.problem.Problem.venv vlink).Hmn_vnet.Vlink.bandwidth_mbps

let assign t ~vlink path =
  check_vlink t vlink;
  match t.paths.(vlink) with
  | Some _ -> Error (Printf.sprintf "virtual link %d already mapped" vlink)
  | None -> (
    match Residual.reserve_path t.residual path (bandwidth t vlink) with
    | Error _ as e -> e
    | Ok () ->
      t.paths.(vlink) <- Some path;
      t.mapped <- t.mapped + 1;
      Ok ())

let unassign t ~vlink =
  check_vlink t vlink;
  match t.paths.(vlink) with
  | None -> Error (Printf.sprintf "virtual link %d is not mapped" vlink)
  | Some path ->
    Residual.release_path t.residual path (bandwidth t vlink);
    t.paths.(vlink) <- None;
    t.mapped <- t.mapped - 1;
    Ok ()

let n_mapped t = t.mapped
let all_mapped t = t.mapped = Array.length t.paths

let iter_mapped t f =
  Array.iteri
    (fun vlink path -> match path with Some p -> f ~vlink p | None -> ())
    t.paths
