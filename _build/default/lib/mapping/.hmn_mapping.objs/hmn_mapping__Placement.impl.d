lib/mapping/placement.ml: Array Hashtbl Hmn_testbed Hmn_vnet Int List Printf Problem
