lib/mapping/report.mli: Mapping
