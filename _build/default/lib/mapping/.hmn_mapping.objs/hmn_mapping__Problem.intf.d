lib/mapping/problem.mli: Format Hmn_testbed Hmn_vnet
