lib/mapping/diff.ml: Format Hmn_routing Hmn_vnet Link_map List Mapping Placement Printf Problem
