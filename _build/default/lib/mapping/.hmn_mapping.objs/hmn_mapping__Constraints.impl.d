lib/mapping/constraints.ml: Array Format Hmn_graph Hmn_routing Hmn_testbed Hmn_vnet Link_map List Mapping Placement Problem
