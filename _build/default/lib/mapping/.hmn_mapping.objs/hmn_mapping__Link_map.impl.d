lib/mapping/link_map.ml: Array Hmn_routing Hmn_vnet Printf Problem
