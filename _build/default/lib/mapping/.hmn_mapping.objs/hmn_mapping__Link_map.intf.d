lib/mapping/link_map.mli: Hmn_routing Problem
