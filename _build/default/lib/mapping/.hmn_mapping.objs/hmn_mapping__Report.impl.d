lib/mapping/report.ml: Array Format Hmn_graph Hmn_prelude Hmn_routing Hmn_testbed Hmn_vnet Link_map Mapping Objective Placement Printf Problem
