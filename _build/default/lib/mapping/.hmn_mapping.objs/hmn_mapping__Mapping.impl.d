lib/mapping/mapping.ml: Hmn_routing Link_map Objective Placement Problem
