lib/mapping/diff.mli: Format Mapping
