lib/mapping/mapping.mli: Link_map Placement Problem
