lib/mapping/placement.mli: Hmn_testbed Problem
