lib/mapping/constraints.mli: Format Mapping
