lib/mapping/objective.ml: Array Hmn_prelude Hmn_testbed Hmn_vnet Placement Problem
