lib/mapping/problem.ml: Format Hmn_testbed Hmn_vnet Printf
