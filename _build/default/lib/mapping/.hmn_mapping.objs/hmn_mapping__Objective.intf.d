lib/mapping/objective.mli: Placement
