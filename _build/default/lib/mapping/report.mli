(** Human-readable mapping reports, used by the CLI and the examples. *)

val placement_table : Mapping.t -> string
(** One row per host: guests placed, residual CPU/memory/storage. *)

val link_table : ?limit:int -> Mapping.t -> string
(** One row per mapped virtual link: endpoints, path, hop count,
    latency vs bound. [limit] truncates long environments (default
    40 rows). *)

val summary : Mapping.t -> string
(** Headline figures: objective value, active hosts, hop totals,
    network utilization. *)

val hot_links : ?top:int -> Mapping.t -> string
(** The [top] (default 10) most-utilized physical links: endpoints,
    reserved/total bandwidth, and the link's edge-betweenness
    centrality — whether the load is workload luck or topology
    destiny. *)
