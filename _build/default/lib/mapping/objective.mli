(** Objective functions over placements.

    The paper's objective (Eqs. 10–12) is the population standard
    deviation of residual CPU across hosts — the {e load-balance
    factor} (LBF); smaller is better-balanced. An alternative
    consolidation objective (count of hosts in use) implements the
    future-work variant discussed in §6. *)

val residual_cpus : Placement.t -> float array
(** [rproc(c_i)] for every host, in {!Hmn_testbed.Cluster.host_ids}
    order. *)

val load_balance_factor : Placement.t -> float
(** Eq. (10). Zero for a single-host cluster. *)

val load_balance_after_migration :
  Placement.t -> guest:int -> host:int -> float option
(** The LBF the placement would have if [guest] moved to [host],
    computed in O(hosts) without mutating the placement; [None] when
    the guest is unassigned, already there, or would not fit. The
    Migration stage evaluates candidate moves with this. *)

val active_hosts : Placement.t -> int
(** Hosts running at least one guest — the consolidation objective. *)

val cpu_oversubscription : Placement.t -> float
(** Total negative residual CPU, as a positive number ([0.] when no
    host is oversubscribed). Useful diagnostics for scenarios near
    capacity. *)
