module Virtual_env = Hmn_vnet.Virtual_env
module Path = Hmn_routing.Path

type t = {
  moved_guests : (int * int * int) list;
  rerouted_links : int list;
  newly_mapped : int list;
  unmapped : int list;
  objective_before : float;
  objective_after : float;
}

let same_path a b =
  let edges p =
    let acc = ref [] in
    Path.iter_edges p (fun e -> acc := e :: !acc);
    List.rev !acc
  in
  Path.src a = Path.src b && Path.dst a = Path.dst b && edges a = edges b

let diff (before : Mapping.t) (after : Mapping.t) =
  if not (Mapping.problem before == Mapping.problem after) then
    invalid_arg "Diff.diff: mappings of different problems";
  let venv = (Mapping.problem before).Problem.venv in
  let moved = ref [] in
  for guest = Virtual_env.n_guests venv - 1 downto 0 do
    match
      ( Placement.host_of before.Mapping.placement ~guest,
        Placement.host_of after.Mapping.placement ~guest )
    with
    | Some a, Some b when a <> b -> moved := (guest, a, b) :: !moved
    | _ -> ()
  done;
  let rerouted = ref [] and newly = ref [] and gone = ref [] in
  for vlink = Virtual_env.n_vlinks venv - 1 downto 0 do
    match
      ( Link_map.path_of before.Mapping.link_map ~vlink,
        Link_map.path_of after.Mapping.link_map ~vlink )
    with
    | Some a, Some b -> if not (same_path a b) then rerouted := vlink :: !rerouted
    | None, Some _ -> newly := vlink :: !newly
    | Some _, None -> gone := vlink :: !gone
    | None, None -> ()
  done;
  {
    moved_guests = !moved;
    rerouted_links = !rerouted;
    newly_mapped = !newly;
    unmapped = !gone;
    objective_before = Mapping.objective before;
    objective_after = Mapping.objective after;
  }

let is_empty t =
  t.moved_guests = [] && t.rerouted_links = [] && t.newly_mapped = []
  && t.unmapped = []

let summary t =
  Printf.sprintf "%d guests moved, %d links re-routed (+%d/-%d), LBF %.1f -> %.1f"
    (List.length t.moved_guests)
    (List.length t.rerouted_links)
    (List.length t.newly_mapped) (List.length t.unmapped) t.objective_before
    t.objective_after

let pp ppf t =
  Format.fprintf ppf "%s@." (summary t);
  List.iter
    (fun (guest, from_host, to_host) ->
      Format.fprintf ppf "  guest %d: host %d -> host %d@." guest from_host to_host)
    t.moved_guests;
  List.iter (fun v -> Format.fprintf ppf "  vlink %d re-routed@." v) t.rerouted_links;
  List.iter (fun v -> Format.fprintf ppf "  vlink %d newly mapped@." v) t.newly_mapped;
  List.iter (fun v -> Format.fprintf ppf "  vlink %d no longer mapped@." v) t.unmapped
