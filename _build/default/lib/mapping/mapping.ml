type t = {
  placement : Placement.t;
  link_map : Link_map.t;
}

let make ~placement ~link_map =
  if not (Placement.problem placement == Link_map.problem link_map) then
    invalid_arg "Mapping.make: placement and link map disagree on the problem";
  { placement; link_map }

let problem t = Placement.problem t.placement

let objective t = Objective.load_balance_factor t.placement

let total_hops t =
  let acc = ref 0 in
  Link_map.iter_mapped t.link_map (fun ~vlink:_ path ->
      acc := !acc + Hmn_routing.Path.hop_count path);
  !acc

let mean_path_latency t =
  let cluster = (problem t).Problem.cluster in
  let total = ref 0. and count = ref 0 in
  Link_map.iter_mapped t.link_map (fun ~vlink:_ path ->
      if not (Hmn_routing.Path.is_intra_host path) then begin
        total := !total +. Hmn_routing.Path.total_latency cluster path;
        incr count
      end);
  if !count = 0 then 0. else !total /. float_of_int !count
