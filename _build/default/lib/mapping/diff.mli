(** Structural difference between two mappings of the same problem —
    what a testbed operator wants in the log after a live operation:
    which guests moved, which virtual links were re-routed, and how the
    objective changed. *)

type t = {
  moved_guests : (int * int * int) list;  (** (guest, old host, new host) *)
  rerouted_links : int list;  (** vlink ids whose path changed *)
  newly_mapped : int list;  (** vlinks mapped only in the second mapping *)
  unmapped : int list;  (** vlinks mapped only in the first *)
  objective_before : float;
  objective_after : float;
}

val diff : Mapping.t -> Mapping.t -> t
(** Raises [Invalid_argument] when the two mappings were built from
    different problem instances. *)

val is_empty : t -> bool
(** No guest moved and no link changed. *)

val summary : t -> string
(** One-line human description. *)

val pp : Format.formatter -> t -> unit
(** Multi-line listing of every change. *)
