(** A complete solution: a placement of every guest plus a physical path
    for every virtual link. *)

type t = {
  placement : Placement.t;
  link_map : Link_map.t;
}

val make : placement:Placement.t -> link_map:Link_map.t -> t
(** Raises [Invalid_argument] when the two halves were built from
    different problem instances. Completeness and feasibility are
    checked by {!Constraints.check}, not here, so partial mappings can
    be inspected while a heuristic is still running. *)

val problem : t -> Problem.t

val objective : t -> float
(** The paper's load-balance factor of the placement (Eq. 10). *)

val total_hops : t -> int
(** Sum of physical hops over mapped links — a secondary quality
    signal for the benches. *)

val mean_path_latency : t -> float
(** Mean accumulated latency over mapped inter-host links; [0.] when
    there are none. *)
