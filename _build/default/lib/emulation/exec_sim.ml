module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Link_map = Hmn_mapping.Link_map
module Mapping = Hmn_mapping.Mapping
module Path = Hmn_routing.Path
module Engine = Hmn_simcore.Engine

type result = {
  makespan_s : float;
  events : int;
  max_host_slowdown : float;
  intra_host_messages : int;
  inter_host_messages : int;
}

type guest_state = {
  mutable superstep : int;
  mutable remaining_mi : float;
  mutable rate : float;  (* MIPS currently delivered *)
  mutable last_update : float;
  mutable epoch : int;  (* invalidates stale compute-finish events *)
  mutable compute_done : bool;
  mutable nic_free_at : float;
  mutable finished : bool;
  recv : (int, int) Hashtbl.t;  (* superstep tag -> messages received *)
}

let run ?(app = App.default) (mapping : Mapping.t) =
  let problem = Mapping.problem mapping in
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let placement = mapping.Mapping.placement in
  let n_guests = Virtual_env.n_guests venv in
  let host_of = Array.init n_guests (fun g -> Placement.host_of_exn placement ~guest:g) in
  (* Path latency (seconds) per virtual link; None = intra-host. *)
  let link_latency_s =
    Array.init (Virtual_env.n_vlinks venv) (fun vlink ->
        let vs, vd = Virtual_env.endpoints venv vlink in
        if host_of.(vs) = host_of.(vd) then None
        else begin
          match Link_map.path_of mapping.Mapping.link_map ~vlink with
          | None ->
            invalid_arg
              (Printf.sprintf "Exec_sim.run: inter-host virtual link %d unrouted" vlink)
          | Some path ->
            Some (Hmn_prelude.Units.seconds_of_ms (Path.total_latency cluster path))
        end)
  in
  let vproc g = (Virtual_env.demand venv g).Resources.mips in
  let work_mi g = vproc g *. app.App.chunk_seconds in
  let degree g = Graph.degree (Virtual_env.graph venv) g in
  let states =
    Array.init n_guests (fun _ ->
        {
          superstep = 0;
          remaining_mi = 0.;
          rate = 0.;
          last_update = 0.;
          epoch = 0;
          compute_done = false;
          nic_free_at = 0.;
          finished = false;
          recv = Hashtbl.create 8;
        })
  in
  let active : (int, unit) Hashtbl.t array =
    Array.make (Cluster.n_nodes cluster) (Hashtbl.create 0)
  in
  Array.iteri (fun i _ -> active.(i) <- Hashtbl.create 8) active;
  let engine = Engine.create () in
  let finished_count = ref 0 in
  let makespan = ref 0. in
  let max_slowdown = ref 1. in
  let intra_msgs = ref 0 and inter_msgs = ref 0 in
  (* --- CPU model: fair share capped at each guest's vproc. --- *)
  let rec recompute_host host =
    let now = Engine.now engine in
    let demand = ref 0. in
    Hashtbl.iter (fun g () -> demand := !demand +. vproc g) active.(host);
    let capacity = (Cluster.capacity cluster host).Resources.mips in
    let factor =
      if !demand = 0. then 1.
      else begin
        match app.App.cpu_model with
        | App.Proportional_share -> capacity /. !demand
        | App.Capped_fair_share ->
          if !demand <= capacity then 1. else capacity /. !demand
      end
    in
    if factor < 1. && 1. /. factor > !max_slowdown then max_slowdown := 1. /. factor;
    Hashtbl.iter
      (fun g () ->
        let s = states.(g) in
        s.remaining_mi <- Float.max 0. (s.remaining_mi -. (s.rate *. (now -. s.last_update)));
        s.last_update <- now;
        s.rate <- vproc g *. factor;
        s.epoch <- s.epoch + 1;
        let eta =
          if s.remaining_mi <= 0. then 0.
          else if s.rate <= 0. then infinity
          else s.remaining_mi /. s.rate
        in
        if eta < infinity then begin
          let epoch = s.epoch in
          Engine.schedule engine ~delay:eta (fun _ ->
              if s.epoch = epoch && not s.compute_done then finish_compute g)
        end)
      active.(host)
  and finish_compute g =
    let s = states.(g) in
    s.compute_done <- true;
    s.epoch <- s.epoch + 1;
    Hashtbl.remove active.(host_of.(g)) g;
    recompute_host host_of.(g);
    send_messages g s.superstep;
    check_advance g
  and send_messages g tag =
    let now = Engine.now engine in
    let s = states.(g) in
    Graph.iter_adj (Virtual_env.graph venv) g (fun ~neighbor ~eid ->
        match link_latency_s.(eid) with
        | None ->
          (* Co-located: instantaneous, no NIC occupancy. *)
          incr intra_msgs;
          Engine.schedule engine ~delay:0. (fun _ -> deliver neighbor tag)
        | Some latency_s ->
          incr inter_msgs;
          let start = Float.max now s.nic_free_at in
          s.nic_free_at <- start +. app.App.msg_seconds;
          Engine.schedule_at engine
            ~time:(s.nic_free_at +. latency_s)
            (fun _ -> deliver neighbor tag))
  and deliver g tag =
    let s = states.(g) in
    Hashtbl.replace s.recv tag (1 + Option.value (Hashtbl.find_opt s.recv tag) ~default:0);
    check_advance g
  and check_advance g =
    let s = states.(g) in
    if (not s.finished) && s.compute_done then begin
      let got = Option.value (Hashtbl.find_opt s.recv s.superstep) ~default:0 in
      if got >= degree g then begin
        Hashtbl.remove s.recv s.superstep;
        if s.superstep = app.App.supersteps - 1 then begin
          s.finished <- true;
          incr finished_count;
          if Engine.now engine > !makespan then makespan := Engine.now engine
        end
        else begin
          s.superstep <- s.superstep + 1;
          s.compute_done <- false;
          start_compute g
        end
      end
    end
  and start_compute g =
    let s = states.(g) in
    s.remaining_mi <- work_mi g;
    s.last_update <- Engine.now engine;
    s.rate <- 0.;
    Hashtbl.replace active.(host_of.(g)) g ();
    recompute_host host_of.(g)
  in
  for g = 0 to n_guests - 1 do
    start_compute g
  done;
  Engine.run engine;
  if !finished_count <> n_guests then
    invalid_arg
      (Printf.sprintf "Exec_sim.run: deadlock — only %d/%d guests finished"
         !finished_count n_guests);
  {
    makespan_s = !makespan;
    events = Engine.processed engine;
    max_host_slowdown = !max_slowdown;
    intra_host_messages = !intra_msgs;
    inter_host_messages = !inter_msgs;
  }
