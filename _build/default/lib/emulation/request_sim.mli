(** Closed-loop request/response experiment model — the second workload
    family of the emulated applications (client/server protocols, RPC
    middleware), complementing the BSP model of {!Exec_sim}.

    Every guest acts as a client toward each of its virtual-link
    neighbours: it keeps one outstanding request per incident link
    (closed loop). A request crosses the mapped path (accumulated
    latency; co-located pairs communicate instantaneously), is served
    by the neighbour — a CPU job of [vproc(server) * service_seconds]
    instructions queued FIFO at the server and executed at the server's
    fair CPU share — and the response returns over the same path. The
    experiment ends when every guest has received [rounds] responses on
    every incident link.

    Server CPU contention couples the model to placement balance the
    same way {!Exec_sim} does, while the request queues make it
    sensitive to {e hot} guests (high degree), which the BSP model is
    not. *)

type params = {
  rounds : int;  (** responses required per link direction *)
  service_seconds : float;  (** nominal CPU time to serve one request *)
  cpu_model : App.cpu_model;
}

val default_params : params
(** 3 rounds, 20 ms service time, proportional share. *)

type result = {
  makespan_s : float;
  events : int;
  requests_completed : int;
  mean_response_s : float;  (** mean request round-trip *)
  max_response_s : float;
}

val run : ?params:params -> Hmn_mapping.Mapping.t -> result
(** Same input contract as {!Exec_sim.run}: a complete, valid
    mapping. *)
