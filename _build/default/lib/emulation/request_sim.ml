module Graph = Hmn_graph.Graph
module Cluster = Hmn_testbed.Cluster
module Resources = Hmn_testbed.Resources
module Virtual_env = Hmn_vnet.Virtual_env
module Placement = Hmn_mapping.Placement
module Problem = Hmn_mapping.Problem
module Link_map = Hmn_mapping.Link_map
module Mapping = Hmn_mapping.Mapping
module Path = Hmn_routing.Path
module Engine = Hmn_simcore.Engine

type params = {
  rounds : int;
  service_seconds : float;
  cpu_model : App.cpu_model;
}

let default_params =
  { rounds = 3; service_seconds = 0.02; cpu_model = App.Proportional_share }

type result = {
  makespan_s : float;
  events : int;
  requests_completed : int;
  mean_response_s : float;
  max_response_s : float;
}

(* Per-guest server state: a FIFO of pending jobs. A guest computes
   whenever its queue is non-empty; the host's shares are recomputed on
   every activation/deactivation, exactly as in Exec_sim. *)
type server = {
  jobs : (float * (unit -> unit)) Queue.t;
      (* (remaining work of the HEAD is tracked separately; queued
         entries hold (total_mi, completion callback)) *)
  mutable head_remaining_mi : float;
  mutable head_done : (unit -> unit) option;
  mutable rate : float;
  mutable last_update : float;
  mutable epoch : int;
}

let run ?(params = default_params) (mapping : Mapping.t) =
  if params.rounds <= 0 then invalid_arg "Request_sim.run: rounds must be positive";
  if params.service_seconds < 0. then
    invalid_arg "Request_sim.run: negative service time";
  let problem = Mapping.problem mapping in
  let cluster = problem.Problem.cluster in
  let venv = problem.Problem.venv in
  let placement = mapping.Mapping.placement in
  let n_guests = Virtual_env.n_guests venv in
  let host_of = Array.init n_guests (fun g -> Placement.host_of_exn placement ~guest:g) in
  let link_latency_s =
    Array.init (Virtual_env.n_vlinks venv) (fun vlink ->
        let vs, vd = Virtual_env.endpoints venv vlink in
        if host_of.(vs) = host_of.(vd) then 0.
        else begin
          match Link_map.path_of mapping.Mapping.link_map ~vlink with
          | None ->
            invalid_arg
              (Printf.sprintf "Request_sim.run: inter-host virtual link %d unrouted"
                 vlink)
          | Some path ->
            Hmn_prelude.Units.seconds_of_ms (Path.total_latency cluster path)
        end)
  in
  let vproc g = (Virtual_env.demand venv g).Resources.mips in
  let engine = Engine.create () in
  let servers =
    Array.init n_guests (fun _ ->
        {
          jobs = Queue.create ();
          head_remaining_mi = 0.;
          head_done = None;
          rate = 0.;
          last_update = 0.;
          epoch = 0;
        })
  in
  let active : (int, unit) Hashtbl.t array =
    Array.init (Cluster.n_nodes cluster) (fun _ -> Hashtbl.create 8)
  in
  let completed = ref 0 in
  let response_total = ref 0. and response_max = ref 0. and responses = ref 0 in
  let rec recompute_host host =
    let now = Engine.now engine in
    let demand = ref 0. in
    Hashtbl.iter (fun g () -> demand := !demand +. vproc g) active.(host);
    let capacity = (Cluster.capacity cluster host).Resources.mips in
    let factor =
      if !demand = 0. then 1.
      else begin
        match params.cpu_model with
        | App.Proportional_share -> capacity /. !demand
        | App.Capped_fair_share ->
          if !demand <= capacity then 1. else capacity /. !demand
      end
    in
    Hashtbl.iter
      (fun g () ->
        let s = servers.(g) in
        s.head_remaining_mi <-
          Float.max 0. (s.head_remaining_mi -. (s.rate *. (now -. s.last_update)));
        s.last_update <- now;
        s.rate <- vproc g *. factor;
        s.epoch <- s.epoch + 1;
        let eta =
          if s.head_remaining_mi <= 0. then 0.
          else if s.rate <= 0. then infinity
          else s.head_remaining_mi /. s.rate
        in
        if eta < infinity then begin
          let epoch = s.epoch in
          Engine.schedule engine ~delay:eta (fun _ ->
              if s.epoch = epoch then finish_head g)
        end)
      active.(host)
  and start_head g =
    let s = servers.(g) in
    match Queue.peek_opt s.jobs with
    | None ->
      Hashtbl.remove active.(host_of.(g)) g;
      recompute_host host_of.(g)
    | Some (mi, on_done) ->
      s.head_remaining_mi <- mi;
      s.head_done <- Some on_done;
      s.last_update <- Engine.now engine;
      s.rate <- 0.;
      Hashtbl.replace active.(host_of.(g)) g ();
      recompute_host host_of.(g)
  and finish_head g =
    let s = servers.(g) in
    s.epoch <- s.epoch + 1;
    (match s.head_done with Some f -> f () | None -> ());
    s.head_done <- None;
    ignore (Queue.pop s.jobs);
    start_head g
  and enqueue_job g mi on_done =
    let s = servers.(g) in
    let was_idle = Queue.is_empty s.jobs in
    Queue.add (mi, on_done) s.jobs;
    if was_idle then start_head g
  in
  (* Client loops: one outstanding request per (guest, incident link). *)
  let rec issue_request ~client ~server ~vlink ~remaining =
    if remaining > 0 then begin
      let sent_at = Engine.now engine in
      let lat = link_latency_s.(vlink) in
      Engine.schedule engine ~delay:lat (fun _ ->
          (* Request arrives at the server; queue the service job. *)
          enqueue_job server
            (vproc server *. params.service_seconds)
            (fun () ->
              Engine.schedule engine ~delay:lat (fun _ ->
                  (* Response back at the client. *)
                  let rtt = Engine.now engine -. sent_at in
                  incr responses;
                  response_total := !response_total +. rtt;
                  if rtt > !response_max then response_max := rtt;
                  incr completed;
                  issue_request ~client ~server ~vlink ~remaining:(remaining - 1))))
    end
  in
  let expected = ref 0 in
  Graph.iter_edges (Virtual_env.graph venv) (fun ~eid ~u ~v _ ->
      (* Both directions act as client/server pairs. *)
      expected := !expected + (2 * params.rounds);
      issue_request ~client:u ~server:v ~vlink:eid ~remaining:params.rounds;
      issue_request ~client:v ~server:u ~vlink:eid ~remaining:params.rounds);
  Engine.run engine;
  if !completed <> !expected then
    invalid_arg
      (Printf.sprintf "Request_sim.run: stalled — %d/%d requests completed" !completed
         !expected);
  {
    makespan_s = Engine.now engine;
    events = Engine.processed engine;
    requests_completed = !completed;
    mean_response_s = (if !responses = 0 then 0. else !response_total /. float_of_int !responses);
    max_response_s = !response_max;
  }
