lib/emulation/correlate.mli:
