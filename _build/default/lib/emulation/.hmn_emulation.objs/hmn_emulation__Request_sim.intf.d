lib/emulation/request_sim.mli: App Hmn_mapping
