lib/emulation/request_sim.ml: App Array Float Hashtbl Hmn_graph Hmn_mapping Hmn_prelude Hmn_routing Hmn_simcore Hmn_testbed Hmn_vnet Printf Queue
