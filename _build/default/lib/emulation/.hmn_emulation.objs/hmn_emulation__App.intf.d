lib/emulation/app.mli:
