lib/emulation/correlate.ml: Array Hmn_prelude Hmn_stats List
