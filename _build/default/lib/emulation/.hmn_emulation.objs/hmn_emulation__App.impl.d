lib/emulation/app.ml:
