lib/emulation/exec_sim.mli: App Hmn_mapping
