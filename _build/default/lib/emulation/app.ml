type cpu_model = Proportional_share | Capped_fair_share

type t = {
  supersteps : int;
  chunk_seconds : float;
  msg_seconds : float;
  cpu_model : cpu_model;
}

let default =
  {
    supersteps = 4;
    chunk_seconds = 0.3;
    msg_seconds = 0.01;
    cpu_model = Proportional_share;
  }

let make ?(cpu_model = Proportional_share) ~supersteps ~chunk_seconds ~msg_seconds () =
  if supersteps <= 0 then invalid_arg "App.make: supersteps must be positive";
  if chunk_seconds < 0. || msg_seconds < 0. then
    invalid_arg "App.make: negative duration";
  { supersteps; chunk_seconds; msg_seconds; cpu_model }
